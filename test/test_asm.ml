(* Assembler tests: parsing, label resolution, pseudo expansion, and
   end-to-end execution of assembled programs on the golden machine. *)

let check_int = Alcotest.(check int)

let asm src = Dts_asm.Assembler.assemble src

let run_golden ?(fuel = 1_000_000) program =
  let st = Dts_asm.Program.boot program in
  let g = Dts_golden.Golden.of_state st in
  ignore (Dts_golden.Golden.run ~max_instructions:fuel g);
  Alcotest.(check bool) "program halted" true st.Dts_isa.State.halted;
  st

let vis st r = Dts_isa.State.get_reg st ~cwp:st.Dts_isa.State.cwp r

let test_simple_program () =
  let p =
    asm {|
start:  mov   7, %o0
        add   %o0, 5, %o1
        halt
|}
  in
  let st = run_golden p in
  check_int "o1" 12 (vis st 9)

let test_loop_sum () =
  (* the paper's Figure 2 kernel: sum an array *)
  let p =
    asm
      {|
        .data
arr:    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10
        .text
start:  mov   0, %o0          ! sum
        set   arr, %o1
        mov   0, %o2          ! i*4
loop:   ld    [%o1+%o2], %o3
        add   %o0, %o3, %o0
        add   %o2, 4, %o2
        cmp   %o2, 40
        bl    loop
        halt
|}
  in
  let st = run_golden p in
  check_int "sum 1..10" 55 (vis st 8)

let test_call_convention () =
  let p =
    asm
      {|
start:  mov   21, %o0
        call  double
        add   %o0, 1, %o1
        halt
double: save  %sp, -96, %sp
        add   %i0, %i0, %i0
        restore %i0, 0, %o0
        retl
|}
  in
  (* without delay slots the epilogue is restore-then-retl: after the
     restore the return address is the caller-frame %o7 again *)
  let st = run_golden p in
  check_int "doubled" 42 (vis st 8);
  check_int "after call" 43 (vis st 9)

let test_set_large_constant () =
  let p = asm {|
start:  set   0x12345678, %o0
        set   100, %o1
        halt
|} in
  let st = run_golden p in
  check_int "large" 0x12345678 (vis st 8);
  check_int "small" 100 (vis st 9)

let test_data_directives () =
  let p =
    asm
      {|
        .data
bytes:  .byte 1, 2, 255
        .align 2
halves: .half 1000, 2000
        .align 4
words:  .word 123456, bytes
        .text
start:  set   bytes, %o0
        ldub  [%o0+2], %o1
        set   halves, %o0
        ldsh  [%o0+2], %o2
        set   words, %o0
        ld    [%o0], %o3
        ld    [%o0+4], %o4
        halt
|}
  in
  let st = run_golden p in
  check_int "byte" 255 (vis st 9);
  check_int "half" 2000 (vis st 10);
  check_int "word" 123456 (vis st 11);
  check_int "label in .word" (Dts_asm.Program.symbol p "bytes") (vis st 12)

let test_branch_conditions () =
  let p =
    asm
      {|
start:  mov   0, %o0
        cmp   %o0, 1
        bl    less
        halt
less:   mov   -1, %o1
        cmp   %o1, 1
        bgu   unsigned_greater   ! 0xFFFFFFFF > 1 unsigned
        halt
unsigned_greater:
        mov   99, %o2
        halt
|}
  in
  let st = run_golden p in
  check_int "reached end" 99 (vis st 10)

let test_store_byte_halt () =
  let p =
    asm
      {|
        .data
buf:    .space 16
        .text
start:  set   buf, %o0
        mov   0xAB, %o1
        stb   %o1, [%o0+3]
        ldub  [%o0+3], %o2
        halt
|}
  in
  let st = run_golden p in
  check_int "stb/ldub" 0xAB (vis st 10)

let test_error_unknown_mnemonic () =
  match asm "start: frobnicate %o0, %o1\nhalt\n" with
  | exception Dts_asm.Assembler.Error { line = 1; _ } -> ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected assembler error"

let test_error_undefined_symbol () =
  match asm "start: ba nowhere\n" with
  | exception Dts_asm.Assembler.Error { msg; _ } ->
    Alcotest.(check bool) "mentions symbol" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected assembler error"

let test_error_duplicate_label () =
  match asm "a: nop\na: nop\n" with
  | exception Dts_asm.Assembler.Error { line = 2; _ } -> ()
  | _ -> Alcotest.fail "expected duplicate label error"

let test_error_immediate_range () =
  match asm "start: add %o0, 100000, %o1\n" with
  | exception Dts_asm.Assembler.Error { msg; _ } ->
    Alcotest.(check bool) "has message" true (String.length msg > 0)
  | _ -> Alcotest.fail "expected range error"

let test_hi_lo () =
  let p =
    asm
      {|
        .data
        .org 0x123400
var:    .word 77
        .text
start:  sethi hi(var), %o0
        or    %o0, lo(var), %o0
        ld    [%o0], %o1
        halt
|}
  in
  let st = run_golden p in
  check_int "hi/lo addressing" 77 (vis st 9)

let test_comments_and_blank_lines () =
  let p =
    asm
      {|
! full line comment
start:  nop            ; trailing comment
        # another style

        mov 5, %o0
        halt
|}
  in
  let st = run_golden p in
  check_int "survives comments" 5 (vis st 8)

let test_disasm_roundtrip_text () =
  let p = asm {|
start:  add %o0, 5, %o1
        halt
|} in
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Dts_asm.Program.pp fmt p;
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "mentions add" true
    (String.length (Buffer.contents buf) > 0)

let test_pseudo_ops () =
  let p =
    asm
      {|
start:  mov   10, %o0
        inc   %o0
        inc   %o0
        dec   %o0
        tst   %o0
        be    never
        clr   %o1
        cmp   %o0, 11
        be    good
        halt
good:   mov   1, %o2
        halt
never:  halt
|}
  in
  let st = run_golden p in
  check_int "inc/dec" 11 (vis st 8);
  check_int "clr" 0 (vis st 9);
  check_int "reached good" 1 (vis st 10)

let test_reg_plus_reg_addressing () =
  let p =
    asm
      {|
        .data
tbl:    .word 11, 22, 33
        .text
start:  set   tbl, %o0
        mov   8, %o1
        ld    [%o0+%o1], %o2
        halt
|}
  in
  let st = run_golden p in
  check_int "reg+reg load" 33 (vis st 10)

let test_org_in_text () =
  let p = asm {|
        .text
        .org 0x4000
start:  mov 5, %o0
        halt
|} in
  Alcotest.(check int) "entry at org" 0x4000 p.entry

let suite =
  [
    Alcotest.test_case "simple program" `Quick test_simple_program;
    Alcotest.test_case "loop sum (fig 2 kernel)" `Quick test_loop_sum;
    Alcotest.test_case "call convention" `Quick test_call_convention;
    Alcotest.test_case "set large constant" `Quick test_set_large_constant;
    Alcotest.test_case "data directives" `Quick test_data_directives;
    Alcotest.test_case "branch conditions" `Quick test_branch_conditions;
    Alcotest.test_case "store byte" `Quick test_store_byte_halt;
    Alcotest.test_case "error: unknown mnemonic" `Quick test_error_unknown_mnemonic;
    Alcotest.test_case "error: undefined symbol" `Quick test_error_undefined_symbol;
    Alcotest.test_case "error: duplicate label" `Quick test_error_duplicate_label;
    Alcotest.test_case "error: immediate range" `Quick test_error_immediate_range;
    Alcotest.test_case "hi/lo" `Quick test_hi_lo;
    Alcotest.test_case "comments" `Quick test_comments_and_blank_lines;
    Alcotest.test_case "program pp" `Quick test_disasm_roundtrip_text;
    Alcotest.test_case "pseudo ops" `Quick test_pseudo_ops;
    Alcotest.test_case "reg+reg addressing" `Quick test_reg_plus_reg_addressing;
    Alcotest.test_case ".org in text" `Quick test_org_in_text;
  ]
