(* Equivalence of the bucketed aliasing log (Dts_vliw.Aliaslog) with the
   original single-list implementation it replaced.

   The oracle below is the old Engine code verbatim: one list of events,
   scanned in full on every memory operation, with Table 3's load/store
   list sizes recomputed by filtering the list. The property drives both
   implementations with random event sequences and demands they raise a
   violation at exactly the same event — and that the running list-size
   statistics agree at every step. A fixed-workload regression pins Table
   3's max_load_list/max_store_list to the values the list implementation
   produced on the seed. *)

open Dts_vliw

let check_int = Alcotest.(check int)

(* ---- the old list-scan implementation, kept as the oracle ---- *)

exception Oracle_violation

type oracle = {
  mutable log : Aliaslog.event list;
  mutable max_load : int;
  mutable max_store : int;
}

let oracle_create () = { log = []; max_load = 0; max_store = 0 }

let oracle_check o ~is_store ~addr ~size ~order ~li_idx =
  let open Aliaslog in
  let overlap e = addr < e.ev_addr + e.ev_size && e.ev_addr < addr + size in
  List.iter
    (fun e ->
      if overlap e && e.ev_order <> order then
        if is_store then begin
          if e.ev_is_store then begin
            if
              (order < e.ev_order && li_idx >= e.ev_li)
              || (order > e.ev_order && li_idx <= e.ev_li)
            then raise Oracle_violation
          end
          else if
            (order < e.ev_order && li_idx >= e.ev_li)
            || (order > e.ev_order && li_idx < e.ev_li)
          then raise Oracle_violation
        end
        else if e.ev_is_store then begin
          if
            (e.ev_order < order && e.ev_li >= li_idx)
            || (e.ev_order > order && e.ev_li < li_idx)
          then raise Oracle_violation
        end)
    o.log

let oracle_add o (ev : Aliaslog.event) =
  let open Aliaslog in
  oracle_check o ~is_store:ev.ev_is_store ~addr:ev.ev_addr ~size:ev.ev_size
    ~order:ev.ev_order ~li_idx:ev.ev_li;
  o.log <- ev :: o.log;
  let count p = List.length (List.filter p o.log) in
  if ev.ev_cross then
    if ev.ev_is_store then
      o.max_store <-
        max o.max_store (count (fun e -> e.ev_is_store && e.ev_cross))
    else
      o.max_load <-
        max o.max_load (count (fun e -> (not e.ev_is_store) && e.ev_cross))

(* ---- random event sequences ---- *)

(* A tight address range and small order/li domains force plenty of
   overlaps, order collisions and events straddling the 16-byte bucket
   boundary of the new implementation. *)
let gen_event =
  let open QCheck2.Gen in
  let* ev_addr = int_range 0 48 in
  let* ev_size = oneofl [ 1; 2; 4 ] in
  let* ev_order = int_range 0 7 in
  let* ev_li = int_range 0 4 in
  let* ev_is_store = bool in
  let+ ev_cross = bool in
  Aliaslog.{ ev_addr; ev_size; ev_order; ev_li; ev_is_store; ev_cross }

let gen_sequence = QCheck2.Gen.(list_size (int_range 0 40) gen_event)

(* Feed [events] into an implementation until the first violation; return
   (index of the violating event or -1, max load list, max store list). *)
let drive_oracle events =
  let o = oracle_create () in
  let rec go i = function
    | [] -> (-1, o.max_load, o.max_store)
    | ev :: rest -> (
      match oracle_add o ev with
      | () -> go (i + 1) rest
      | exception Oracle_violation -> (i, o.max_load, o.max_store))
  in
  go 0 events

let drive_bucketed events =
  let t = Aliaslog.create () in
  let max_load = ref 0 and max_store = ref 0 in
  let note (ev : Aliaslog.event) =
    if ev.ev_cross then
      if ev.ev_is_store then
        max_store := max !max_store (Aliaslog.cross_stores t)
      else max_load := max !max_load (Aliaslog.cross_loads t)
  in
  let rec go i = function
    | [] -> (-1, !max_load, !max_store)
    | ev :: rest -> (
      match Aliaslog.add t ev with
      | () ->
        note ev;
        go (i + 1) rest
      | exception Aliaslog.Alias_violation -> (i, !max_load, !max_store))
  in
  go 0 events

let prop_equivalence =
  QCheck2.Test.make ~count:2000
    ~name:"bucketed aliasing log == list-scan oracle (violation + stats)"
    gen_sequence
    (fun events -> drive_bucketed events = drive_oracle events)

(* a directed sequence that must violate: store (order 0) committing in a
   later li than a load (order 1) reads — both implementations agree *)
let test_directed_violation () =
  let open Aliaslog in
  let load =
    {
      ev_addr = 0x10;
      ev_size = 4;
      ev_order = 1;
      ev_li = 0;
      ev_is_store = false;
      ev_cross = true;
    }
  in
  let store = { load with ev_order = 0; ev_li = 1; ev_is_store = true } in
  let events = [ load; store ] in
  let b = drive_bucketed events and o = drive_oracle events in
  Alcotest.(check (triple int int int)) "agree" o b;
  check_int "violates at the store" 1 (match b with i, _, _ -> i)

(* ---- Table 3 regression: list-size stats on a fixed workload ---- *)

let table3_stats name =
  let r =
    Dts_experiments.Experiments.run_dtsvliw ~budget:20_000
      (Dts_core.Config.feasible ())
      name
  in
  (r.max_load_list, r.max_store_list)

let test_table3_list_sizes_compress () =
  let load, store = table3_stats "compress" in
  check_int "compress max_load_list" 0 load;
  check_int "compress max_store_list" 2 store

let test_table3_list_sizes_xlisp () =
  let load, store = table3_stats "xlisp" in
  check_int "xlisp max_load_list" 2 load;
  check_int "xlisp max_store_list" 4 store

let suite =
  [
    QCheck_alcotest.to_alcotest prop_equivalence;
    Alcotest.test_case "directed violation agrees" `Quick
      test_directed_violation;
    Alcotest.test_case "table3 list sizes: compress" `Quick
      test_table3_list_sizes_compress;
    Alcotest.test_case "table3 list sizes: xlisp" `Quick
      test_table3_list_sizes_xlisp;
  ]
