(* Golden reference machine tests: budgets, halting, and the test-mode
   synchronisation primitive. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot src =
  let program = Dts_asm.Assembler.assemble src in
  let st = Dts_asm.Program.boot program in
  (Dts_golden.Golden.of_state st, st)

let counting_loop =
  {|
start:  mov   0, %o0
loop:   add   %o0, 1, %o0
        cmp   %o0, 100
        bl    loop
        halt
|}

let test_run_to_halt () =
  let g, st = boot counting_loop in
  let n = Dts_golden.Golden.run g in
  check_bool "halted" true st.halted;
  check_int "o0" 100 (Dts_isa.State.get_reg st ~cwp:st.cwp 8);
  (* 1 mov + 100*(add,cmp,branch) + halt *)
  check_int "instruction count" (1 + 300 + 1) n

let test_budget_stops_early () =
  let g, st = boot counting_loop in
  let n = Dts_golden.Golden.run ~max_instructions:10 g in
  check_int "retired exactly the budget" 10 n;
  check_bool "not halted" false st.halted;
  (* a second call continues from where it stopped *)
  let n2 = Dts_golden.Golden.run g in
  check_int "total" 302 (n + n2)

let test_step_raises_on_halt () =
  let g, _ = boot "start: halt\n" in
  (try
     Dts_golden.Golden.step g;
     Alcotest.fail "expected Program_halted"
   with Dts_golden.Golden.Program_halted -> ());
  (* stepping a halted machine keeps raising *)
  try
    Dts_golden.Golden.step g;
    Alcotest.fail "expected Program_halted again"
  with Dts_golden.Golden.Program_halted -> ()

let test_run_until_pc () =
  let g, st = boot counting_loop in
  let loop_pc = 0x1004 in
  check_bool "reaches the loop head" true
    (Dts_golden.Golden.run_until_pc g ~pc:loop_pc);
  check_int "stopped there" loop_pc st.pc;
  (* reaches it again on the next iteration *)
  Dts_golden.Golden.step g;
  check_bool "reaches it again" true (Dts_golden.Golden.run_until_pc g ~pc:loop_pc)

let test_run_until_pc_fuel () =
  let g, _ = boot counting_loop in
  check_bool "unreachable pc exhausts fuel" false
    (Dts_golden.Golden.run_until_pc ~fuel:50 g ~pc:0xDEAD00)

(* Regression: a machine sitting halted *at* the target must answer true
   regardless of whether the halt happened before or during the call —
   the answer depends only on the architectural state. The old code
   checked [halted] before the PC and returned two different answers. *)
let test_run_until_pc_halted_at_target () =
  let g, st = boot counting_loop in
  ignore (Dts_golden.Golden.run g);
  check_bool "halted" true st.halted;
  let halt_pc = st.pc in
  (* entered already halted at the target: same answer as halting there
     during the call *)
  check_bool "halted at target answers true" true
    (Dts_golden.Golden.run_until_pc g ~pc:halt_pc);
  check_bool "and repeatably so" true
    (Dts_golden.Golden.run_until_pc g ~pc:halt_pc);
  (* halted away from the target is still a failure to reach it *)
  check_bool "halted away from target answers false" false
    (Dts_golden.Golden.run_until_pc g ~pc:0x1000);
  (* a fresh machine reaching the same address during the call agrees: the
     answer for [halt_pc] is true whether the machine is parked there
     halted or just arrived *)
  let g2, st2 = boot counting_loop in
  check_bool "reaches the halt pc during the call" true
    (Dts_golden.Golden.run_until_pc g2 ~pc:halt_pc);
  check_int "same pc" halt_pc st2.pc

let suite =
  [
    Alcotest.test_case "run to halt" `Quick test_run_to_halt;
    Alcotest.test_case "budget stops early" `Quick test_budget_stops_early;
    Alcotest.test_case "step raises on halt" `Quick test_step_raises_on_halt;
    Alcotest.test_case "run_until_pc" `Quick test_run_until_pc;
    Alcotest.test_case "run_until_pc fuel" `Quick test_run_until_pc_fuel;
    Alcotest.test_case "run_until_pc halted at target" `Quick
      test_run_until_pc_halted_at_target;
  ]
