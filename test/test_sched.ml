(* Scheduler Unit tests: insertion, move-up, install, split, tags, order
   fields, block finalisation — plus property tests that cross-check the
   behavioural scheduler against the §3.7 signal equations and check the
   structural invariants of finished blocks. *)

open Dts_sched
open Dts_sched.Schedtypes

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* build a retired record by hand; observations need not be semantically
   deep for scheduler-only tests *)
let ret ?(cwp = 0) ?(taken = false) ?(next = -1) ?mem ~addr instr =
  {
    Dts_primary.Primary.instr;
    addr;
    cwp;
    next_pc = (if next >= 0 then next else addr + 4);
    taken;
    mem;
    rwsets = Dts_isa.Rwsets.of_instr ~nwindows:32 ~cwp ?mem instr;
    trapped = false;
    cycles = 1;
    icache_stall = 0;
    dcache_stall = 0;
  }

let cfg ?(width = 3) ?(height = 4) ?(renaming = true) () =
  { Sched_unit.default_config with width; height; renaming }

let insert_ok t r =
  match Sched_unit.insert t r with
  | `Ok -> ()
  | `Full -> Alcotest.fail "unexpected full list"

(* shorthand instruction builders *)
let alu ?(cc = false) ?(op = Dts_isa.Instr.Add) rs1 op2 rd =
  Dts_isa.Instr.Alu { op; cc; rs1; op2 = Imm op2; rd }

let alu_rr ?(cc = false) ?(op = Dts_isa.Instr.Add) rs1 rs2 rd =
  Dts_isa.Instr.Alu { op; cc; rs1; op2 = Reg rs2; rd }

(* ---- insertion ---- *)

let test_independent_ops_share_li () =
  let t = Sched_unit.create (cfg ()) in
  insert_ok t (ret ~addr:0x1000 (alu 1 1 2));
  insert_ok t (ret ~addr:0x1004 (alu 3 1 4));
  insert_ok t (ret ~addr:0x1008 (alu 5 1 6));
  check_int "one element" 1 (Sched_unit.length t);
  check_int "three ops in li0" 3 (li_count (Sched_unit.element t 0).e_li)

let test_flow_dep_new_element () =
  let t = Sched_unit.create (cfg ()) in
  insert_ok t (ret ~addr:0x1000 (alu 1 1 2));
  insert_ok t (ret ~addr:0x1004 (alu 2 1 3));
  (* reads r2 *)
  check_int "two elements" 2 (Sched_unit.length t)

let test_resource_dep_new_element () =
  let t = Sched_unit.create (cfg ~width:2 ()) in
  insert_ok t (ret ~addr:0x1000 (alu 1 1 2));
  insert_ok t (ret ~addr:0x1004 (alu 3 1 4));
  insert_ok t (ret ~addr:0x1008 (alu 5 1 6));
  (* no free slot in tail li *)
  check_int "spilled to second element" 2 (Sched_unit.length t)

let test_move_up () =
  let t = Sched_unit.create (cfg ()) in
  insert_ok t (ret ~addr:0x1000 (alu 1 1 2));
  insert_ok t (ret ~addr:0x1004 (alu 2 1 3));
  (* dependent: element 1 *)
  insert_ok t (ret ~addr:0x1008 (alu 5 1 6));
  (* independent but lands in tail element; should move up *)
  check_int "two elements" 2 (Sched_unit.length t);
  ignore (Sched_unit.tick t);
  (* the independent op moves to element 0 *)
  check_int "li0 has two ops" 2 (li_count (Sched_unit.element t 0).e_li);
  check_int "li1 has one op" 1 (li_count (Sched_unit.element t 1).e_li)

let test_install_on_flow () =
  let t = Sched_unit.create (cfg ()) in
  insert_ok t (ret ~addr:0x1000 (alu 1 1 2));
  insert_ok t (ret ~addr:0x1004 (alu 2 1 3));
  let decisions = ref [] in
  decisions := Sched_unit.tick t;
  (* the dependent candidate must install, not move *)
  check_bool "installed" true
    (List.exists (fun (_, d) -> d = Sched_unit.D_install) !decisions)

let test_split_on_output_dep () =
  let t = Sched_unit.create (cfg ()) in
  (* op1 writes r2; op2 also writes r2 (different source, no flow) *)
  insert_ok t (ret ~addr:0x1000 (alu 1 1 2));
  insert_ok t (ret ~addr:0x1004 (alu 1 2 2));
  (* output dep on tail element forces second element at insert *)
  check_int "two elements" 2 (Sched_unit.length t);
  let d = Sched_unit.tick t in
  check_bool "split happened" true
    (List.exists (fun (_, x) -> x = Sched_unit.D_split) d);
  (* element 0's li now holds op1, renamed op2; element... the copy sits in
     the old li *)
  let copies =
    li_fold
      (fun acc _ op _ -> match op with Copy _ -> acc + 1 | Op _ -> acc)
      0
      (Sched_unit.element t 1).e_li
  in
  check_int "copy left behind" 1 copies

let test_split_on_anti_dep () =
  let t = Sched_unit.create (cfg ()) in
  (* op1 writes r2; op2 reads r2 (flow → element 1); op3 writes r2 again:
     anti dependency with op2 *)
  insert_ok t (ret ~addr:0x1000 (alu 1 1 2));
  insert_ok t (ret ~addr:0x1004 (alu_rr 2 0 3));
  insert_ok t (ret ~addr:0x1008 (alu 4 7 2));
  ignore (Sched_unit.tick t);
  ignore (Sched_unit.tick t);
  (* op3 should have split rather than stalled below op2 *)
  let all_copies =
    List.concat_map
      (fun i ->
        li_fold
          (fun acc _ op _ -> match op with Copy c -> c :: acc | Op _ -> acc)
          []
          (Sched_unit.element t i).e_li)
      (List.init (Sched_unit.length t) Fun.id)
  in
  check_bool "a split copy exists" true (all_copies <> [])

let test_branch_installs_immediately () =
  let t = Sched_unit.create (cfg ()) in
  insert_ok t (ret ~addr:0x1000 (alu 1 1 2));
  insert_ok t
    (ret ~addr:0x1004 ~taken:true ~next:0x2000
       (Dts_isa.Instr.Branch { cond = E; target = 0x2000 }));
  (* branch shares the li but establishes a tag *)
  check_int "single element" 1 (Sched_unit.length t);
  check_int "tag established" 1 (Sched_unit.element t 0).e_li.n_branches;
  (* ops placed after the branch get the new tag *)
  insert_ok t (ret ~addr:0x2000 (alu 3 1 4));
  let tags =
    li_fold (fun acc _ _ tag -> tag :: acc) [] (Sched_unit.element t 0).e_li
  in
  check_bool "gated op present" true (List.mem 1 tags)

let test_order_fields_and_cross_bits () =
  let t = Sched_unit.create (cfg ~width:4 ()) in
  insert_ok t
    (ret ~addr:0x1000 ~mem:(0x100, 4)
       (Dts_isa.Instr.Load { size = Lw; rs1 = 1; op2 = Imm 0; rd = 2 }));
  insert_ok t
    (ret ~addr:0x1004 ~mem:(0x200, 4)
       (Dts_isa.Instr.Store { size = Sw; rs = 3; rs1 = 4; op2 = Imm 0 }));
  let el = Sched_unit.element t 0 in
  let mem_ops =
    li_fold
      (fun acc _ op _ ->
        match op with
        | Op s when Dts_isa.Instr.is_mem s.instr -> s :: acc
        | _ -> acc)
      [] el.e_li
  in
  check_int "two mem ops" 2 (List.length mem_ops);
  let orders = List.sort compare (List.map (fun s -> s.order) mem_ops) in
  check_bool "orders 0,1" true (orders = [ 0; 1 ]);
  (* both share a li with a store -> cross bits set *)
  check_bool "cross bits set" true (List.for_all (fun s -> s.cross) mem_ops)

let test_finish_block () =
  let t = Sched_unit.create (cfg ()) in
  insert_ok t (ret ~cwp:5 ~addr:0x1000 (alu 1 1 2));
  insert_ok t (ret ~cwp:5 ~addr:0x1004 (alu 2 1 3));
  let b = Option.get (Sched_unit.finish_block t ~nba_addr:0x1008) in
  check_int "tag" 0x1000 b.tag_addr;
  check_int "entry cwp" 5 b.entry_cwp;
  check_int "nba addr" 0x1008 b.nba_addr;
  check_int "nba idx" 1 b.nba_idx;
  check_int "slots" 2 b.n_slots_filled;
  check_bool "list empty after" true (Sched_unit.is_empty t);
  check_bool "no block from empty list" true
    (Sched_unit.finish_block t ~nba_addr:0 = None)

let test_full_list_reports_full () =
  let t = Sched_unit.create (cfg ~width:1 ~height:2 ()) in
  insert_ok t (ret ~addr:0x1000 (alu 1 1 2));
  insert_ok t (ret ~addr:0x1004 (alu 3 1 4));
  match Sched_unit.insert t (ret ~addr:0x1008 (alu 5 1 6)) with
  | `Full -> ()
  | `Ok -> Alcotest.fail "expected full"

let test_no_renaming_config () =
  let t = Sched_unit.create (cfg ~renaming:false ()) in
  insert_ok t (ret ~addr:0x1000 (alu 1 1 2));
  insert_ok t (ret ~addr:0x1004 (alu 1 2 2));
  let d = Sched_unit.tick t in
  check_bool "no split without renaming" true
    (List.for_all (fun (_, x) -> x <> Sched_unit.D_split) d)

(* A conditional branch's read set is consulted through the forwarding
   table at insertion, like any other op's: after a flags producer splits,
   the branch's Flags source is substituted with the renaming register
   ([prep_sop] forwards Flags alongside Int_reg/Fp_reg), recorded in
   [subs], and the branch lands strictly below the renamed producer — not
   merely below the original (now copy-holding) long instruction. *)
let test_branch_flags_forwarded_after_split () =
  let t = Sched_unit.create (cfg ()) in
  (* two flags writers: the WAW forces the second into a new element, and
     the tick splits it — its Flags output is renamed and forwarded *)
  insert_ok t (ret ~addr:0x1000 (alu_rr ~cc:true 1 2 3));
  insert_ok t (ret ~addr:0x1004 (alu_rr ~cc:true 4 5 6));
  check_int "WAW made two elements" 2 (Sched_unit.length t);
  let d = Sched_unit.tick t in
  check_bool "the second flags writer split" true
    (List.exists (fun (_, x) -> x = Sched_unit.D_split) d);
  insert_ok t
    (ret ~addr:0x1008 ~taken:true ~next:0x2000
       (Dts_isa.Instr.Branch { cond = E; target = 0x2000 }));
  let find pred =
    let found = ref None in
    List.iter
      (fun i ->
        li_iter
          (fun _ op _ ->
            match op with
            | Op s when !found = None && pred s -> found := Some (i, s)
            | _ -> ())
          (Sched_unit.element t i).e_li)
      (List.init (Sched_unit.length t) Fun.id);
    !found
  in
  let renamed_li, renamed =
    Option.get
      (find (fun s ->
           List.exists (fun (w, _) -> w = Dts_isa.Storage.Flags) s.redirect))
  in
  let branch_li, branch =
    Option.get
      (find (fun s -> Dts_isa.Instr.is_conditional_ctrl s.instr))
  in
  (* the branch reads the renaming register the split established *)
  let sub =
    List.assoc_opt Dts_isa.Storage.Flags branch.subs
  in
  check_bool "Flags forwarded into the branch's subs" true (sub <> None);
  check_bool "branch reads the flag renaming register" true
    (match sub with
    | Some rr ->
      List.mem (storage_of_rref rr) branch.reads
      && List.mem_assoc Dts_isa.Storage.Flags renamed.redirect
      && Option.get sub = List.assoc Dts_isa.Storage.Flags renamed.redirect
    | None -> false);
  check_bool
    (Printf.sprintf "branch (li %d) strictly below the renamed producer (li %d)"
       branch_li renamed_li)
    true
    (branch_li > renamed_li)

(* ---- multicycle latencies ([14]) ---- *)

let test_latency_distance_enforced () =
  let t =
    Sched_unit.create
      {
        (cfg ~width:4 ~height:8 ()) with
        latencies = { Dts_isa.Instr.unit_latencies with l_mul = 3 };
      }
  in
  (* mul r1*r1 -> r2 ; consumer of r2 must land >= 3 lis below *)
  insert_ok t
    (ret ~addr:0x1000
       (Dts_isa.Instr.Alu { op = Smul; cc = false; rs1 = 1; op2 = Reg 1; rd = 2 }));
  insert_ok t (ret ~addr:0x1004 (alu_rr 2 0 3));
  (* producer in element 0; consumer must be at index >= 3 *)
  check_int "padded to latency distance" 4 (Sched_unit.length t);
  let consumer_li = Sched_unit.length t - 1 in
  check_bool "distance >= latency" true (consumer_li >= 3)

let test_latency_blocks_move_up () =
  let t =
    Sched_unit.create
      {
        (cfg ~width:4 ~height:8 ()) with
        latencies = { Dts_isa.Instr.unit_latencies with l_mul = 2 };
      }
  in
  insert_ok t
    (ret ~addr:0x1000
       (Dts_isa.Instr.Alu { op = Smul; cc = false; rs1 = 1; op2 = Reg 1; rd = 2 }));
  (* unrelated chain to grow the list *)
  insert_ok t (ret ~addr:0x1004 (alu 4 1 5));
  insert_ok t (ret ~addr:0x1008 (alu_rr 5 0 6));
  (* consumer of the mul result, inserted low; it may climb to distance 2
     below the mul but no further *)
  insert_ok t (ret ~addr:0x100c (alu_rr 2 0 7));
  for _ = 1 to 6 do
    ignore (Sched_unit.tick t)
  done;
  let b = Option.get (Sched_unit.finish_block t ~nba_addr:0x1010) in
  let li_of_uid target_rd =
    let found = ref (-1) in
    Array.iteri
      (fun i li ->
        li_iter
          (fun _ op _ ->
            match op with
            | Op s -> (
              match s.instr with
              | Dts_isa.Instr.Alu { rd; _ } when rd = target_rd -> found := i
              | _ -> ())
            | Copy _ -> ())
          li)
      b.lis;
    !found
  in
  let mul_li = li_of_uid 2 and use_li = li_of_uid 7 in
  check_bool
    (Printf.sprintf "consumer li %d >= mul li %d + 2" use_li mul_li)
    true
    (use_li >= mul_li + 2)

let test_multicycle_op_does_not_split () =
  let t =
    Sched_unit.create
      {
        (cfg ()) with
        latencies = { Dts_isa.Instr.unit_latencies with l_mul = 2 };
      }
  in
  (* output-dependent pair of muls: the second must install, not split *)
  insert_ok t
    (ret ~addr:0x1000
       (Dts_isa.Instr.Alu { op = Smul; cc = false; rs1 = 1; op2 = Reg 1; rd = 2 }));
  insert_ok t
    (ret ~addr:0x1004
       (Dts_isa.Instr.Alu { op = Smul; cc = false; rs1 = 3; op2 = Reg 3; rd = 2 }));
  let d = Sched_unit.tick t in
  check_bool "no split for multicycle" true
    (List.for_all (fun (_, x) -> x <> Sched_unit.D_split) d)

(* ---- the paper's Figure 2 example ---- *)

let fig2_program x =
  (* 1: or r0,0,r9 / 2: sethi / 3: or r8,8,r11 / 4: or r0,0,r10
     5: ld [r10+r11],r8 / 6: add r9,r8,r9 / 7: add r10,4,r10
     8: subcc r10,4x-1,r0 / 9: ble loop *)
  [
    ret ~addr:0x1000 (alu 0 0 9);
    ret ~addr:0x1004 (Dts_isa.Instr.Sethi { imm = 56; rd = 8 });
    ret ~addr:0x1008 (alu 8 8 11);
    ret ~addr:0x100c (alu 0 0 10);
    ret ~addr:0x1010 ~mem:(0xE008, 4)
      (Dts_isa.Instr.Load { size = Lw; rs1 = 10; op2 = Reg 11; rd = 8 });
    ret ~addr:0x1014 (alu_rr 9 8 9);
    ret ~addr:0x1018 (alu 10 4 10);
    ret ~addr:0x101c
      (alu_rr ~cc:true ~op:Dts_isa.Instr.Sub 10 0 0 |> fun i ->
       match i with
       | Dts_isa.Instr.Alu a -> Dts_isa.Instr.Alu { a with op2 = Imm ((4 * x) - 1) }
       | _ -> assert false);
    ret ~addr:0x1020 ~taken:true ~next:0x1010
      (Dts_isa.Instr.Branch { cond = LE; target = 0x1010 });
  ]

let test_fig2_schedule () =
  (* 3 instructions wide, 4 long instructions deep, as in the paper. The
     extra tick before instruction 8 mirrors the paper's pipeline timing
     (snapshots at cycles 3, 8, 9, 11): the split of instruction 7 completes
     before the subcc arrives, so the subcc is inserted with its r10 source
     already forwarded to the renaming register. *)
  let t = Sched_unit.create (cfg ~width:3 ~height:4 ()) in
  List.iteri
    (fun k r ->
      ignore (Sched_unit.tick t);
      if k = 7 then ignore (Sched_unit.tick t);
      insert_ok t r)
    (fig2_program 10);
  (* let remaining candidates settle *)
  for _ = 1 to 4 do
    ignore (Sched_unit.tick t)
  done;
  let b = Option.get (Sched_unit.finish_block t ~nba_addr:0x1024) in
  (* paper's snapshot: 4 long instructions, instruction 7 split (a COPY is
     present), and the load sits above the add that consumes it *)
  check_int "4 long instructions" 4 (Array.length b.lis);
  let has_copy =
    Array.exists
      (fun li ->
        li_fold
          (fun acc _ op _ -> acc || match op with Copy _ -> true | Op _ -> false)
          false li)
      b.lis
  in
  check_bool "instruction 7 split into add+copy" true has_copy;
  (* the subcc consuming the renamed r10 must carry a forwarded source *)
  let subcc_forwarded =
    Array.exists
      (fun li ->
        li_fold
          (fun acc _ op _ ->
            acc
            ||
            match op with
            | Op s -> (
              match s.instr with
              | Dts_isa.Instr.Alu { cc = true; _ } -> s.subs <> []
              | _ -> false)
            | Copy _ -> false)
          false li)
      b.lis
  in
  check_bool "subcc reads the renaming register" true subcc_forwarded;
  (* the branch must sit strictly below the subcc producing its flags *)
  let li_of pred =
    let found = ref (-1) in
    Array.iteri
      (fun i li ->
        li_iter
          (fun _ op _ -> if !found < 0 && pred op then found := i)
          li)
      b.lis;
    !found
  in
  let subcc_li =
    li_of (function
      | Op s -> (
        match s.instr with Dts_isa.Instr.Alu { cc = true; _ } -> true | _ -> false)
      | Copy _ -> false)
  in
  let ble_li =
    li_of (function
      | Op s -> Dts_isa.Instr.is_conditional_ctrl s.instr
      | Copy _ -> false)
  in
  check_bool
    (Printf.sprintf "ble (li %d) after subcc (li %d)" ble_li subcc_li)
    true
    (subcc_li >= 0 && ble_li > subcc_li)

(* ---- signals cross-validation (property) ---- *)

let gen_stream =
  (* a random stream of simple ops over a small register set, with
     occasional branches and memory ops *)
  let open QCheck2.Gen in
  let reg = int_range 1 6 in
  let instr =
    frequency
      [
        ( 6,
          map3
            (fun rs1 rs2 rd -> alu_rr rs1 rs2 rd)
            reg reg reg );
        (2, map3 (fun rs1 rs2 rd -> alu_rr ~cc:true rs1 rs2 rd) reg reg reg);
        ( 2,
          map2
            (fun rs1 rd ->
              Dts_isa.Instr.Load { size = Lw; rs1; op2 = Imm 0; rd })
            reg reg );
        ( 2,
          map2
            (fun rs rs1 ->
              Dts_isa.Instr.Store { size = Sw; rs; rs1; op2 = Imm 0 })
            reg reg );
        (1, return (Dts_isa.Instr.Branch { cond = E; target = 0x9000 }));
      ]
  in
  list_size (int_range 5 40) (tup2 instr (int_range 0 7))

let run_stream ?(width = 3) ?(height = 4) stream check =
  let t = Sched_unit.create (cfg ~width ~height ()) in
  let addr = ref 0x1000 in
  List.iter
    (fun (instr, memslot) ->
      check t;
      ignore (Sched_unit.tick t);
      let mem =
        if Dts_isa.Instr.is_mem instr then Some (0x8000 + (memslot * 4), 4)
        else None
      in
      let r = ret ~addr:!addr ?mem instr in
      addr := !addr + 4;
      match Sched_unit.insert t r with
      | `Ok -> ()
      | `Full ->
        ignore (Sched_unit.finish_block t ~nba_addr:!addr);
        insert_ok t r)
    stream;
  t

let prop_signals_match_behaviour =
  QCheck2.Test.make ~count:400 ~name:"§3.7 signals ≡ behavioural decisions"
    gen_stream (fun stream ->
      let ok = ref true in
      ignore
        (run_stream stream (fun t ->
             let expected = Signals.verdicts t in
             let actual = Sched_unit.tick t in
             (* tick was consumed by the check; compare decisions *)
             List.iter2
               (fun (i1, v) (i2, d) ->
                 if i1 <> i2 then ok := false
                 else
                   let matches =
                     match (v, d) with
                     | Signals.V_install, Sched_unit.D_install
                     | Signals.V_split, Sched_unit.D_split
                     | Signals.V_move, Sched_unit.D_move ->
                       true
                     (* the signal formulation computes from start-of-cycle
                        state and may conservatively install when a partial
                        split upstream freed the dependency mid-cycle *)
                     | Signals.V_install, (Sched_unit.D_move | D_split) -> true
                     | _ -> false
                   in
                   if not matches then ok := false)
               expected actual));
      !ok)

(* ---- structural invariants of finished blocks (property) ---- *)

let block_invariants (b : block) =
  let ok = ref true in
  let fail _msg = ok := false in
  (* every renaming register is written exactly once *)
  let writes = Hashtbl.create 16 in
  Array.iter
    (fun li ->
      li_iter
        (fun _ op _ ->
          match op with
          | Op s ->
            List.iter
              (fun (_, rr) ->
                if Hashtbl.mem writes rr then fail "rr written twice"
                else Hashtbl.replace writes rr ())
              s.redirect
          | Copy c ->
            List.iter
              (function
                | _, T_ren rr ->
                  if Hashtbl.mem writes rr then fail "rr written twice (copy)"
                  else Hashtbl.replace writes rr ()
                | _, T_arch _ -> ())
              c.c_moves)
        li)
    b.lis;
  (* no op reads a position that an earlier-program-order op writes in the
     same or a later long instruction (flow respected) *)
  let li_of_uid = Hashtbl.create 16 in
  Array.iteri
    (fun i li ->
      li_iter
        (fun _ op _ ->
          match op with
          | Op s -> Hashtbl.replace li_of_uid s.uid i
          | Copy _ -> ())
        li)
    b.lis;
  Array.iteri
    (fun i li ->
      li_iter
        (fun _ op _ ->
          match op with
          | Op s ->
            (* for every read, its producer (latest earlier writer of the
               position among block ops) must sit strictly above *)
            Array.iteri
              (fun j lj ->
                li_iter
                  (fun _ op2 _ ->
                    match op2 with
                    | Op p when p.uid < s.uid ->
                      let wr = slot_arch_writes (Op p) in
                      if
                        Dts_isa.Storage.any_overlap s.reads wr
                        && (not (Dts_isa.Instr.is_mem p.instr))
                        && j >= i
                        (* memory flow handled by aliasing machinery *)
                        && List.exists
                             (fun w ->
                               List.exists (Dts_isa.Storage.overlaps w) s.reads
                               &&
                               (* only if p is the LATEST writer before s *)
                               not
                                 (Array.exists
                                    (fun lk ->
                                      li_fold
                                        (fun acc _ op3 _ ->
                                          acc
                                          ||
                                          match op3 with
                                          | Op q ->
                                            q.uid > p.uid && q.uid < s.uid
                                            && List.exists
                                                 (Dts_isa.Storage.overlaps w)
                                                 (slot_arch_writes (Op q))
                                          | Copy _ -> false)
                                        false lk)
                                    b.lis))
                             wr
                      then fail "flow violated"
                    | _ -> ())
                  lj)
              b.lis
          | Copy _ -> ())
        li)
    b.lis;
  ignore li_of_uid;
  !ok

let prop_block_invariants =
  QCheck2.Test.make ~count:200 ~name:"finished block invariants" gen_stream
    (fun stream ->
      let t = run_stream stream (fun _ -> ()) in
      match Sched_unit.finish_block t ~nba_addr:0xFFFF with
      | None -> true
      | Some b -> block_invariants b)

let prop_mem_orders_monotone =
  QCheck2.Test.make ~count:200 ~name:"load/store order fields monotone"
    gen_stream (fun stream ->
      let t = run_stream stream (fun _ -> ()) in
      match Sched_unit.finish_block t ~nba_addr:0xFFFF with
      | None -> true
      | Some b ->
        let orders = ref [] in
        Array.iter
          (fun li ->
            li_iter
              (fun _ op _ ->
                match op with
                | Op s when Dts_isa.Instr.is_mem s.instr ->
                  orders := (s.uid, s.order) :: !orders
                | _ -> ())
              li)
          b.lis;
        let sorted = List.sort compare !orders in
        let rec mono = function
          | (_, o1) :: ((_, o2) :: _ as rest) -> o1 < o2 && mono rest
          | _ -> true
        in
        mono sorted)

let suite =
  [
    Alcotest.test_case "independent ops share li" `Quick
      test_independent_ops_share_li;
    Alcotest.test_case "flow dep new element" `Quick test_flow_dep_new_element;
    Alcotest.test_case "resource dep new element" `Quick
      test_resource_dep_new_element;
    Alcotest.test_case "move up" `Quick test_move_up;
    Alcotest.test_case "install on flow" `Quick test_install_on_flow;
    Alcotest.test_case "split on output dep" `Quick test_split_on_output_dep;
    Alcotest.test_case "split on anti dep" `Quick test_split_on_anti_dep;
    Alcotest.test_case "branch installs immediately" `Quick
      test_branch_installs_immediately;
    Alcotest.test_case "order fields and cross bits" `Quick
      test_order_fields_and_cross_bits;
    Alcotest.test_case "finish block" `Quick test_finish_block;
    Alcotest.test_case "full list" `Quick test_full_list_reports_full;
    Alcotest.test_case "no renaming config" `Quick test_no_renaming_config;
    Alcotest.test_case "branch flags forwarded after split" `Quick
      test_branch_flags_forwarded_after_split;
    Alcotest.test_case "latency distance at insert" `Quick
      test_latency_distance_enforced;
    Alcotest.test_case "latency blocks move-up" `Quick
      test_latency_blocks_move_up;
    Alcotest.test_case "multicycle op never splits" `Quick
      test_multicycle_op_does_not_split;
    Alcotest.test_case "figure 2 schedule" `Quick test_fig2_schedule;
    QCheck_alcotest.to_alcotest prop_signals_match_behaviour;
    QCheck_alcotest.to_alcotest prop_block_invariants;
    QCheck_alcotest.to_alcotest prop_mem_orders_monotone;
  ]
