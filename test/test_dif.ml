(* DIF baseline tests: greedy placement, instance renaming, exit maps, the
   instance-exhaustion block limit, and end-to-end co-simulation. *)

open Dts_sched.Schedtypes

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ret ?(cwp = 0) ?(taken = false) ?(next = -1) ?mem ~addr instr =
  {
    Dts_primary.Primary.instr;
    addr;
    cwp;
    next_pc = (if next >= 0 then next else addr + 4);
    taken;
    mem;
    rwsets = Dts_isa.Rwsets.of_instr ~nwindows:32 ~cwp ?mem instr;
    trapped = false;
    cycles = 1;
    icache_stall = 0;
    dcache_stall = 0;
  }

let alu ?(cc = false) rs1 op2 rd =
  Dts_isa.Instr.Alu { op = Add; cc; rs1; op2; rd }

let insert_ok t r =
  match Dts_dif.Dif.insert t r with
  | `Ok -> ()
  | `Full -> Alcotest.fail "unexpected full"

let test_greedy_dependence_chain () =
  let t = Dts_dif.Dif.create Dts_dif.Dif.default_config in
  (* r2 := r1+1; r3 := r2+1; r4 := r1+2 — the chain spans two lis, the
     independent op shares li 0 *)
  insert_ok t (ret ~addr:0x1000 (alu 1 (Imm 1) 2));
  insert_ok t (ret ~addr:0x1004 (alu 2 (Imm 1) 3));
  insert_ok t (ret ~addr:0x1008 (alu 1 (Imm 2) 4));
  let b = Option.get (Dts_dif.Dif.finish_block t ~nba_addr:0x100c) in
  check_int "two long instructions" 2 (Array.length b.lis);
  let count_ops li =
    li_fold (fun n _ op _ -> match op with Op _ -> n + 1 | Copy _ -> n) 0 li
  in
  check_int "li0 holds producer + independent" 2 (count_ops b.lis.(0));
  check_int "li1 holds consumer" 1 (count_ops b.lis.(1))

let test_every_destination_renamed () =
  let t = Dts_dif.Dif.create Dts_dif.Dif.default_config in
  insert_ok t (ret ~addr:0x1000 (alu 1 (Imm 1) 2));
  let b = Option.get (Dts_dif.Dif.finish_block t ~nba_addr:0x1004) in
  let renamed = ref false in
  Array.iter
    (fun li ->
      li_iter
        (fun _ op _ ->
          match op with Op s -> if s.redirect <> [] then renamed := true | Copy _ -> ())
        li)
    b.lis;
  check_bool "dest instanced" true !renamed

let test_exit_map_on_finish () =
  let t = Dts_dif.Dif.create Dts_dif.Dif.default_config in
  insert_ok t (ret ~addr:0x1000 (alu 1 (Imm 1) 2));
  let b = Option.get (Dts_dif.Dif.finish_block t ~nba_addr:0x1004) in
  let copies = ref 0 in
  Array.iter
    (fun li ->
      li_iter (fun _ op _ -> match op with Copy _ -> incr copies | Op _ -> ()) li)
    b.lis;
  check_bool "fall-through exit map present" true (!copies >= 1)

let test_exit_map_per_branch () =
  let t = Dts_dif.Dif.create Dts_dif.Dif.default_config in
  insert_ok t (ret ~addr:0x1000 (alu 1 (Imm 1) 2));
  insert_ok t
    (ret ~addr:0x1004 ~taken:false
       (Dts_isa.Instr.Branch { cond = E; target = 0x2000 }));
  insert_ok t (ret ~addr:0x1008 (alu 1 (Imm 2) 3));
  let _ = Option.get (Dts_dif.Dif.finish_block t ~nba_addr:0x100c) in
  (* one branch exit + one fall-through exit *)
  check_int "two exit points" 2 t.total_exits

let test_instance_exhaustion_ends_block () =
  let t = Dts_dif.Dif.create { Dts_dif.Dif.default_config with instances_per_reg = 2 } in
  insert_ok t (ret ~addr:0x1000 (alu 1 (Imm 1) 2));
  insert_ok t (ret ~addr:0x1004 (alu 1 (Imm 2) 2));
  (match Dts_dif.Dif.insert t (ret ~addr:0x1008 (alu 1 (Imm 3) 2)) with
  | `Full -> ()
  | `Ok -> Alcotest.fail "third write to r2 must exhaust 2 instances")

let test_cache_byte_accounting () =
  let t = Dts_dif.Dif.create Dts_dif.Dif.default_config in
  insert_ok t (ret ~addr:0x1000 (alu 1 (Imm 1) 2));
  ignore (Dts_dif.Dif.finish_block t ~nba_addr:0x1004);
  (* 6x6 block of 6-byte decoded instructions + 1 exit * 19 bytes *)
  check_int "bytes" ((6 * 6 * 6) + 19) t.cache_bytes

let run_cosim name =
  let w = Dts_workloads.Workloads.find name in
  let program = Dts_workloads.Workloads.program ~scale:1 w in
  let m, dif = Dts_dif.Dif.machine ~machine_cfg:(Dts_dif.Dif.fig9_machine_cfg ()) program in
  let n = Dts_core.Machine.run ~max_instructions:50_000 m in
  (m, dif, n)

let test_cosim_compress () =
  let m, dif, n = run_cosim "compress" in
  check_bool "progressed" true (n >= 40_000);
  check_bool "vliw mode used" true (m.vliw_cycles > 0);
  check_bool "blocks built" true (dif.blocks_built > 0)

let test_cosim_recursive () =
  (* xlisp: recursion exercises window-relative replay of DIF blocks *)
  let m, _, n = run_cosim "xlisp" in
  check_bool "progressed" true (n >= 40_000);
  check_bool "vliw mode used" true (m.vliw_cycles > 0)

let test_dif_close_to_dtsvliw () =
  (* Figure 9's qualitative claim: the two machines land close together *)
  let program () =
    Dts_workloads.Workloads.program ~scale:1 (Dts_workloads.Workloads.find "m88ksim")
  in
  let m1, _, n1 = run_cosim "m88ksim" in
  let cfg = Dts_experiments.Experiments.fig9_dtsvliw_cfg () in
  let m2 = Dts_core.Machine.create cfg (program ()) in
  let n2 = Dts_core.Machine.run ~max_instructions:50_000 m2 in
  let ipc1 = float_of_int n1 /. float_of_int m1.cycles in
  let ipc2 = float_of_int n2 /. float_of_int m2.cycles in
  check_bool
    (Printf.sprintf "DIF %.2f within 40%% of DTSVLIW %.2f" ipc1 ipc2)
    true
    (ipc1 /. ipc2 < 1.4 && ipc2 /. ipc1 < 1.4)

let suite =
  [
    Alcotest.test_case "greedy chain placement" `Quick test_greedy_dependence_chain;
    Alcotest.test_case "destinations instanced" `Quick test_every_destination_renamed;
    Alcotest.test_case "fall-through exit map" `Quick test_exit_map_on_finish;
    Alcotest.test_case "exit map per branch" `Quick test_exit_map_per_branch;
    Alcotest.test_case "instance exhaustion" `Quick test_instance_exhaustion_ends_block;
    Alcotest.test_case "cache byte accounting" `Quick test_cache_byte_accounting;
    Alcotest.test_case "co-sim: compress" `Quick test_cosim_compress;
    Alcotest.test_case "co-sim: xlisp (recursion)" `Quick test_cosim_recursive;
    Alcotest.test_case "DIF within band of DTSVLIW" `Quick test_dif_close_to_dtsvliw;
  ]
