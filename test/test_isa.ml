(* Tests for the SRISC ISA: semantics, condition codes, register windows,
   encode/decode, and read/write sets. *)

open Dts_isa

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh () = State.create ~nwindows:8 ()

let exec1 st instr =
  let out = Semantics.exec st ~cwp:st.State.cwp ~pc:st.State.pc instr in
  let out =
    match out.trap with
    | None -> out
    | Some t -> Semantics.service_and_exec st ~cwp:st.State.cwp ~pc:st.State.pc instr t
  in
  Semantics.apply st out;
  out

let set_vis st r v = State.set_reg st ~cwp:st.State.cwp r v
let get_vis st r = State.get_reg st ~cwp:st.State.cwp r

(* ---- ALU semantics ---- *)

let test_alu_basic () =
  let st = fresh () in
  set_vis st 1 7;
  ignore (exec1 st (Alu { op = Add; cc = false; rs1 = 1; op2 = Imm 5; rd = 2 }));
  check_int "add" 12 (get_vis st 2);
  ignore (exec1 st (Alu { op = Sub; cc = false; rs1 = 2; op2 = Reg 1; rd = 3 }));
  check_int "sub" 5 (get_vis st 3);
  ignore (exec1 st (Alu { op = Xor; cc = false; rs1 = 2; op2 = Imm 0xF; rd = 4 }));
  check_int "xor" (12 lxor 0xF) (get_vis st 4)

let test_alu_wraparound () =
  let st = fresh () in
  set_vis st 1 0x7FFFFFFF;
  ignore (exec1 st (Alu { op = Add; cc = false; rs1 = 1; op2 = Imm 1; rd = 2 }));
  check_int "signed overflow wraps" (-0x80000000) (get_vis st 2);
  set_vis st 1 (-0x80000000);
  ignore (exec1 st (Alu { op = Sub; cc = false; rs1 = 1; op2 = Imm 1; rd = 2 }));
  check_int "underflow wraps" 0x7FFFFFFF (get_vis st 2)

let test_g0_hardwired () =
  let st = fresh () in
  ignore (exec1 st (Alu { op = Add; cc = false; rs1 = 0; op2 = Imm 99; rd = 0 }));
  check_int "g0 stays zero" 0 (get_vis st 0)

let test_shifts () =
  let st = fresh () in
  set_vis st 1 (-8);
  ignore (exec1 st (Alu { op = Sra; cc = false; rs1 = 1; op2 = Imm 1; rd = 2 }));
  check_int "sra" (-4) (get_vis st 2);
  ignore (exec1 st (Alu { op = Srl; cc = false; rs1 = 1; op2 = Imm 1; rd = 3 }));
  check_int "srl" 0x7FFFFFFC (get_vis st 3);
  set_vis st 1 3;
  ignore (exec1 st (Alu { op = Sll; cc = false; rs1 = 1; op2 = Imm 30; rd = 4 }));
  check_int "sll wraps" (-0x40000000) (get_vis st 4)

let test_div () =
  let st = fresh () in
  set_vis st 1 (-7);
  ignore (exec1 st (Alu { op = Sdiv; cc = false; rs1 = 1; op2 = Imm 2; rd = 2 }));
  check_int "sdiv truncates" (-3) (get_vis st 2);
  ignore (exec1 st (Alu { op = Sdiv; cc = false; rs1 = 1; op2 = Imm 0; rd = 2 }));
  check_int "div by zero yields 0" 0 (get_vis st 2);
  set_vis st 1 (-2);
  (* 0xFFFFFFFE unsigned *)
  ignore (exec1 st (Alu { op = Udiv; cc = false; rs1 = 1; op2 = Imm 2; rd = 2 }));
  check_int "udiv unsigned" 0x7FFFFFFF (get_vis st 2)

(* ---- condition codes & branches ---- *)

let icc_after st op a b =
  set_vis st 1 a;
  set_vis st 2 b;
  ignore (exec1 st (Alu { op; cc = true; rs1 = 1; op2 = Reg 2; rd = 0 }));
  st.State.icc

let test_subcc_flags () =
  let st = fresh () in
  let icc = icc_after st Sub 5 5 in
  check_bool "z" true (State.icc_z icc);
  check_bool "n" false (State.icc_n icc);
  let icc = icc_after st Sub 3 5 in
  check_bool "n set" true (State.icc_n icc);
  check_bool "borrow" true (State.icc_c icc);
  let icc = icc_after st Sub (-0x80000000) 1 in
  check_bool "signed overflow" true (State.icc_v icc)

let test_addcc_carry () =
  let st = fresh () in
  let icc = icc_after st Add (-1) 1 in
  check_bool "carry out" true (State.icc_c icc);
  check_bool "zero" true (State.icc_z icc);
  check_bool "no signed overflow" false (State.icc_v icc)

let test_cond_eval () =
  let t cond icc = Semantics.eval_cond icc cond in
  let icc_eq = State.make_icc ~n:false ~z:true ~v:false ~c:false in
  let icc_lt = State.make_icc ~n:true ~z:false ~v:false ~c:true in
  let icc_gt = State.make_icc ~n:false ~z:false ~v:false ~c:false in
  let icc_lt_ovf = State.make_icc ~n:false ~z:false ~v:true ~c:false in
  check_bool "be on eq" true (t E icc_eq);
  check_bool "bne on eq" false (t NE icc_eq);
  check_bool "bl on lt" true (t L icc_lt);
  check_bool "bl with overflow" true (t L icc_lt_ovf);
  check_bool "bg on gt" true (t G icc_gt);
  check_bool "bge on lt" false (t GE icc_lt);
  check_bool "ble on eq" true (t LE icc_eq);
  check_bool "blu on borrow" true (t LU icc_lt);
  check_bool "bgeu on borrow" false (t GEU icc_lt);
  check_bool "bgu on gt" true (t GU icc_gt);
  check_bool "ba always" true (t A icc_lt)

let test_branch_pc () =
  let st = fresh () in
  st.State.pc <- 0x1000;
  set_vis st 1 1;
  ignore (exec1 st (Alu { op = Sub; cc = true; rs1 = 1; op2 = Imm 1; rd = 0 }));
  st.State.pc <- 0x1004;
  let out = Semantics.exec st ~cwp:0 ~pc:0x1004 (Branch { cond = E; target = 0x2000 }) in
  check_int "taken target" 0x2000 out.next_pc;
  check_bool "taken flag" true out.taken;
  let out = Semantics.exec st ~cwp:0 ~pc:0x1004 (Branch { cond = NE; target = 0x2000 }) in
  check_int "fallthrough" 0x1008 out.next_pc;
  check_bool "not taken" false out.taken

let test_call_jmpl () =
  let st = fresh () in
  st.State.pc <- 0x1000;
  ignore (exec1 st (Call { target = 0x3000 }));
  check_int "link in o7" 0x1000 (get_vis st 15);
  check_int "pc at target" 0x3000 st.State.pc;
  (* ret = jmpl [%o7+4] when no save was done *)
  ignore (exec1 st (Jmpl { rs1 = 15; op2 = Imm 4; rd = 0 }));
  check_int "returned" 0x1004 st.State.pc

(* ---- memory ops ---- *)

let test_load_store () =
  let st = fresh () in
  set_vis st 1 0x5000;
  set_vis st 2 (-123);
  ignore (exec1 st (Store { size = Sw; rs = 2; rs1 = 1; op2 = Imm 8 }));
  ignore (exec1 st (Load { size = Lw; rs1 = 1; op2 = Imm 8; rd = 3 }));
  check_int "word round trip" (-123) (get_vis st 3);
  set_vis st 2 0x1FF;
  ignore (exec1 st (Store { size = Sb; rs = 2; rs1 = 1; op2 = Imm 0 }));
  ignore (exec1 st (Load { size = Lub; rs1 = 1; op2 = Imm 0; rd = 3 }));
  check_int "byte truncated" 0xFF (get_vis st 3);
  ignore (exec1 st (Load { size = Lsb; rs1 = 1; op2 = Imm 0; rd = 3 }));
  check_int "byte sign extended" (-1) (get_vis st 3)

let test_misaligned_trap () =
  let st = fresh () in
  set_vis st 1 0x5001;
  let out =
    Semantics.exec st ~cwp:0 ~pc:st.State.pc
      (Load { size = Lw; rs1 = 1; op2 = Imm 0; rd = 3 })
  in
  Alcotest.(check bool)
    "misaligned traps" true
    (out.trap = Some (Semantics.Misaligned 0x5001))

(* ---- register windows ---- *)

let test_save_restore () =
  let st = fresh () in
  set_vis st 14 0x8000;
  (* %sp = %o6 *)
  set_vis st 8 42;
  (* %o0 *)
  ignore (exec1 st (Save { rs1 = 14; op2 = Imm (-96); rd = 14 }));
  check_int "cwp decremented" 7 st.State.cwp;
  check_int "new sp" (0x8000 - 96) (get_vis st 14);
  check_int "caller o0 is callee i0" 42 (get_vis st 24);
  set_vis st 24 43;
  (* return value in %i0 *)
  ignore (exec1 st (Restore { rs1 = 24; op2 = Imm 0; rd = 8 }));
  check_int "cwp back" 0 st.State.cwp;
  check_int "restore moved i0 to o0" 43 (get_vis st 8)

let test_window_overflow_spill_fill () =
  let st = fresh () in
  (* nwindows = 8; trigger depth is nwindows - 2 = 6 *)
  set_vis st 14 Layout.stack_top;
  let depth = 10 in
  for k = 1 to depth do
    set_vis st 8 (100 + k);
    (* leave a breadcrumb in %o0, visible as callee %i0 *)
    ignore (exec1 st (Save { rs1 = 14; op2 = Imm (-96); rd = 14 }))
  done;
  check_bool "spilled some windows" true
    (st.State.wspill_sp > Layout.wspill_base);
  check_int "depth tracked" depth st.State.wdepth;
  (* unwind and verify each breadcrumb survives the spill/fill round trip *)
  for k = depth downto 1 do
    check_int
      (Printf.sprintf "breadcrumb at depth %d" k)
      (100 + k) (get_vis st 24);
    ignore (exec1 st (Restore { rs1 = 0; op2 = Imm 0; rd = 0 }))
  done;
  check_int "spill stack drained" Layout.wspill_base st.State.wspill_sp;
  check_int "depth zero" 0 st.State.wdepth

let test_locals_survive_deep_recursion () =
  let st = fresh () in
  set_vis st 14 Layout.stack_top;
  let depth = 12 in
  for k = 1 to depth do
    set_vis st 16 (1000 + k);
    (* %l0 of current frame *)
    ignore (exec1 st (Save { rs1 = 14; op2 = Imm (-96); rd = 14 }))
  done;
  for k = depth downto 1 do
    ignore (exec1 st (Restore { rs1 = 0; op2 = Imm 0; rd = 0 }));
    check_int (Printf.sprintf "locals at depth %d" (k - 1)) (1000 + k) (get_vis st 16)
  done

(* ---- float ops ---- *)

let test_fpu () =
  let st = fresh () in
  ignore (exec1 st (Alu { op = Or; cc = false; rs1 = 0; op2 = Imm 3; rd = 1 }));
  set_vis st 1 3;
  (* f1 := float 3; f2 := float 4; f3 := f1 * f2 *)
  st.State.fregs.(1) <- Semantics.float_to_bits 3.0;
  st.State.fregs.(2) <- Semantics.float_to_bits 4.0;
  ignore (exec1 st (Fpop { op = Fmul; rs1 = 1; rs2 = 2; rd = 3 }));
  check_int "3*4" 12 (Semantics.fpu_result Fstoi st.State.fregs.(3) 0);
  ignore (exec1 st (Fpop { op = Fitos; rs1 = 0; rs2 = 0; rd = 4 }));
  ()

(* Fstoi saturation semantics (DESIGN.md §Float-to-int): [int_of_float] on
   NaN, ±inf or out-of-int32-range values is unspecified in OCaml, so the
   conversion pins them — NaN -> 0, overflow clamps to the int32 extremes,
   everything in range truncates toward zero. Both execution paths (boxed
   exec and packed exec_into) share this helper, so the reproducer files
   that exercise float conversions are portable. *)
let test_fstoi_saturation () =
  let conv f = Semantics.fpu_result Fstoi (Semantics.float_to_bits f) 0 in
  check_int "NaN -> 0" 0 (conv Float.nan);
  check_int "+inf clamps to int32 max" 0x7FFFFFFF (conv Float.infinity);
  check_int "-inf clamps to int32 min" (-0x80000000) (conv Float.neg_infinity);
  check_int "above range clamps" 0x7FFFFFFF (conv 1e10);
  check_int "below range clamps" (-0x80000000) (conv (-1e10));
  check_int "2^31 clamps" 0x7FFFFFFF (conv 2147483648.0);
  check_int "truncates toward zero" 100 (conv 100.9);
  check_int "negative truncates toward zero" (-100) (conv (-100.9));
  check_int "zero" 0 (conv 0.0);
  (* -0.0 and subnormals land on 0 through plain truncation *)
  check_int "negative zero" 0 (conv (-0.0))

(* ---- encode/decode ---- *)

let gen_reg = QCheck2.Gen.int_range 0 31

let gen_operand =
  QCheck2.Gen.(
    oneof [ map (fun r -> Instr.Reg r) gen_reg; map (fun i -> Instr.Imm i) (int_range (-2048) 2047) ])

let gen_instr =
  let open QCheck2.Gen in
  let pc = 0x10000 in
  let gen_alu =
    oneofl
      [
        Instr.Add; Sub; And; Andn; Or; Orn; Xor; Xnor; Sll; Srl; Sra; Smul;
        Umul; Sdiv; Udiv;
      ]
  in
  let gen_cond =
    oneofl [ Instr.A; E; NE; L; LE; G; GE; LU; LEU; GU; GEU; Neg; Pos ]
  in
  let gen_target = map (fun d -> pc + (d * 4)) (int_range (-100000) 100000) in
  oneof
    [
      return Instr.Nop;
      return Instr.Halt;
      map (fun n -> Instr.Trap n) (int_range 0 255);
      map
        (fun (op, cc, rs1, op2, rd) -> Instr.Alu { op; cc; rs1; op2; rd })
        (tup5 gen_alu bool gen_reg gen_operand gen_reg);
      map
        (fun (imm, rd) -> Instr.Sethi { imm; rd })
        (tup2 (int_range 0 0x3FFFFF) gen_reg);
      map
        (fun (size, rs1, op2, rd) -> Instr.Load { size; rs1; op2; rd })
        (tup4 (oneofl [ Instr.Lsb; Lub; Lsh; Luh; Lw ]) gen_reg gen_operand gen_reg);
      map
        (fun (size, rs, rs1, op2) -> Instr.Store { size; rs; rs1; op2 })
        (tup4 (oneofl [ Instr.Sb; Sh; Sw ]) gen_reg gen_reg gen_operand);
      map
        (fun (cond, target) -> Instr.Branch { cond; target })
        (tup2 gen_cond gen_target);
      map (fun target -> Instr.Call { target }) gen_target;
      map
        (fun (rs1, op2, rd) -> Instr.Jmpl { rs1; op2; rd })
        (tup3 gen_reg gen_operand gen_reg);
      map
        (fun (rs1, op2, rd) -> Instr.Save { rs1; op2; rd })
        (tup3 gen_reg gen_operand gen_reg);
      map
        (fun (rs1, op2, rd) -> Instr.Restore { rs1; op2; rd })
        (tup3 gen_reg gen_operand gen_reg);
      map
        (fun (op, rs1, rs2, rd) -> Instr.Fpop { op; rs1; rs2; rd })
        (tup4 (oneofl [ Instr.Fadd; Fsub; Fmul; Fdiv; Fitos; Fstoi ]) gen_reg gen_reg gen_reg);
      map
        (fun (rs1, op2, rd) -> Instr.Fload { rs1; op2; rd })
        (tup3 gen_reg gen_operand gen_reg);
      map
        (fun (rd, rs1, op2) -> Instr.Fstore { rd; rs1; op2 })
        (tup3 gen_reg gen_reg gen_operand);
    ]

let prop_encode_roundtrip =
  QCheck2.Test.make ~count:2000 ~name:"encode/decode round-trip"
    ~print:Instr.show gen_instr (fun i ->
      let pc = 0x10000 in
      Instr.equal (Encode.decode ~pc (Encode.encode ~pc i)) i)

let prop_encode_32bit =
  QCheck2.Test.make ~count:1000 ~name:"encodings fit in 32 bits" gen_instr
    (fun i ->
      let w = Encode.encode ~pc:0x10000 i in
      w >= 0 && w <= 0xFFFFFFFF)

(* The full surface round-trip: encode -> decode -> disassemble ->
   re-assemble must reproduce the instruction, for every instruction form.
   This pins the three surfaces (binary format, disassembly syntax,
   assembler grammar) to one another — a reproducer file written by the
   fuzzer's shrinker relies on exactly this loop. Branch/call targets are
   kept non-negative: the disassembler prints targets with %#x, which is
   only re-parseable for values that are in-range absolute addresses. *)
let gen_instr_printable =
  let open QCheck2.Gen in
  let pc = 0x10000 in
  map
    (fun i ->
      match i with
      | Instr.Branch { cond; target } ->
        Instr.Branch { cond; target = max 0 (min target 0x3FFFFC) }
      | Instr.Call { target } ->
        Instr.Call { target = max 0 (min target 0x3FFFFC) }
      | i -> i)
    gen_instr
  |> fun g ->
  map (fun i -> (pc, i)) g

let prop_disasm_assemble_roundtrip =
  QCheck2.Test.make ~count:2000 ~name:"encode/disasm/assemble round-trip"
    ~print:(fun (_, i) -> Instr.show i)
    gen_instr_printable
    (fun (pc, i) ->
      let decoded = Encode.decode ~pc (Encode.encode ~pc i) in
      let src = Dts_isa.Disasm.to_string decoded ^ "\n" in
      let p = Dts_asm.Assembler.assemble ~text_base:pc src in
      match p.Dts_asm.Program.text with
      | [| (addr, reassembled) |] ->
        addr = pc && Instr.equal reassembled decoded && Instr.equal decoded i
      | _ -> false)

let test_decode_error () =
  Alcotest.check_raises "opcode 15 invalid"
    (Encode.Decode_error { pc = 0; word = 0xF0000000; reason = "opcode" })
    (fun () -> ignore (Encode.decode ~pc:0 0xF0000000))

(* ---- read/write sets ---- *)

let test_rwsets () =
  let nwindows = 8 in
  let reads, writes =
    Rwsets.of_instr ~nwindows ~cwp:0
      (Alu { op = Add; cc = true; rs1 = 9; op2 = Reg 10; rd = 11 })
  in
  let p r = State.phys ~nwindows ~cwp:0 r in
  check_bool "reads rs1" true (List.mem (Storage.Int_reg (p 9)) reads);
  check_bool "reads op2" true (List.mem (Storage.Int_reg (p 10)) reads);
  check_bool "writes rd" true (List.mem (Storage.Int_reg (p 11)) writes);
  check_bool "writes flags" true (List.mem Storage.Flags writes);
  (* g0 never appears *)
  let reads, writes =
    Rwsets.of_instr ~nwindows ~cwp:0
      (Alu { op = Add; cc = false; rs1 = 0; op2 = Imm 1; rd = 0 })
  in
  check_bool "g0 invisible" true (reads = [] && writes = [])

let test_rwsets_mem () =
  let reads, writes =
    Rwsets.of_instr ~nwindows:8 ~cwp:0 ~mem:(0x100, 4)
      (Store { size = Sw; rs = 9; rs1 = 10; op2 = Imm 4 })
  in
  check_bool "store writes mem" true
    (List.mem (Storage.Mem { addr = 0x100; size = 4 }) writes);
  check_bool "store reads data reg" true
    (List.exists (function Storage.Int_reg _ -> true | _ -> false) reads)

let test_rwsets_window_sharing () =
  let nwindows = 8 in
  (* caller %o0 at cwp=0 must be the same storage as callee %i0 at cwp=7 *)
  let caller_o0 = State.phys ~nwindows ~cwp:0 8 in
  let callee_i0 = State.phys ~nwindows ~cwp:7 24 in
  check_int "window overlap" caller_o0 callee_i0;
  (* distinct frames use distinct locals *)
  let l0_a = State.phys ~nwindows ~cwp:0 16 in
  let l0_b = State.phys ~nwindows ~cwp:7 16 in
  check_bool "locals distinct" true (l0_a <> l0_b)

let test_storage_overlap () =
  check_bool "mem ranges overlap" true
    (Storage.overlaps
       (Mem { addr = 0x100; size = 4 })
       (Mem { addr = 0x102; size = 2 }));
  check_bool "mem ranges disjoint" false
    (Storage.overlaps
       (Mem { addr = 0x100; size = 4 })
       (Mem { addr = 0x104; size = 4 }));
  check_bool "reg vs mem" false
    (Storage.overlaps (Int_reg 5) (Mem { addr = 0x100; size = 4 }))

let test_disasm_strings () =
  let d i = Dts_isa.Disasm.to_string i in
  Alcotest.(check string) "add" "add %o1, 5, %o2"
    (d (Alu { op = Add; cc = false; rs1 = 9; op2 = Imm 5; rd = 10 }));
  Alcotest.(check string) "subcc" "subcc %g1, %g2, %g0"
    (d (Alu { op = Sub; cc = true; rs1 = 1; op2 = Reg 2; rd = 0 }));
  Alcotest.(check string) "ld" "ld [%sp+8], %l0"
    (d (Load { size = Lw; rs1 = 14; op2 = Imm 8; rd = 16 }));
  Alcotest.(check string) "st" "st %i0, [%fp+-4]"
    (d (Store { size = Sw; rs = 24; rs1 = 30; op2 = Imm (-4) }));
  Alcotest.(check string) "branch" "ble 0x2000"
    (d (Branch { cond = LE; target = 0x2000 }));
  Alcotest.(check string) "save" "save %sp, -96, %sp"
    (d (Save { rs1 = 14; op2 = Imm (-96); rd = 14 }))

let test_encoding_golden_vectors () =
  (* the binary format is part of the public contract; pin a few words *)
  let enc i = Encode.encode ~pc:0x1000 i in
  Alcotest.(check int) "nop" 0 (enc Nop);
  Alcotest.(check int) "halt" 0xE0000000 (enc Halt);
  Alcotest.(check int) "add g1+1->g2"
    ((1 lsl 28) lor (1 lsl 18) lor (2 lsl 13) lor (1 lsl 12) lor 1)
    (enc (Alu { op = Add; cc = false; rs1 = 1; op2 = Imm 1; rd = 2 }));
  (* branch forward by 4 instructions *)
  Alcotest.(check int) "be +16"
    ((5 lsl 28) lor (1 lsl 24) lor 4)
    (enc (Branch { cond = E; target = 0x1010 }))

let test_latency_model () =
  let lat = Instr.multicycle_latencies in
  Alcotest.(check int) "mul" 3
    (Instr.latency lat (Alu { op = Smul; cc = false; rs1 = 1; op2 = Imm 1; rd = 2 }));
  Alcotest.(check int) "div" 8
    (Instr.latency lat (Alu { op = Sdiv; cc = false; rs1 = 1; op2 = Imm 1; rd = 2 }));
  Alcotest.(check int) "load" 2
    (Instr.latency lat (Load { size = Lw; rs1 = 1; op2 = Imm 0; rd = 2 }));
  Alcotest.(check int) "add" 1
    (Instr.latency lat (Alu { op = Add; cc = false; rs1 = 1; op2 = Imm 1; rd = 2 }));
  Alcotest.(check int) "max" 8 (Instr.max_latency lat)

let test_classification () =
  Alcotest.(check bool) "ba ignored" true
    (Instr.is_ignored_by_scheduler (Branch { cond = A; target = 0 }));
  Alcotest.(check bool) "bne not ignored" false
    (Instr.is_ignored_by_scheduler (Branch { cond = NE; target = 0 }));
  Alcotest.(check bool) "trap non-schedulable" true
    (Instr.is_non_schedulable (Trap 3));
  Alcotest.(check bool) "jmpl is conditional ctrl" true
    (Instr.is_conditional_ctrl (Jmpl { rs1 = 31; op2 = Imm 4; rd = 0 }));
  Alcotest.(check bool) "call is not" false
    (Instr.is_conditional_ctrl (Call { target = 0 }))

let suite =
  [
    Alcotest.test_case "alu basic" `Quick test_alu_basic;
    Alcotest.test_case "alu wraparound" `Quick test_alu_wraparound;
    Alcotest.test_case "g0 hardwired" `Quick test_g0_hardwired;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "division" `Quick test_div;
    Alcotest.test_case "subcc flags" `Quick test_subcc_flags;
    Alcotest.test_case "addcc carry" `Quick test_addcc_carry;
    Alcotest.test_case "cond eval" `Quick test_cond_eval;
    Alcotest.test_case "branch pc" `Quick test_branch_pc;
    Alcotest.test_case "call/jmpl" `Quick test_call_jmpl;
    Alcotest.test_case "load/store" `Quick test_load_store;
    Alcotest.test_case "misaligned trap" `Quick test_misaligned_trap;
    Alcotest.test_case "save/restore" `Quick test_save_restore;
    Alcotest.test_case "window overflow spill/fill" `Quick
      test_window_overflow_spill_fill;
    Alcotest.test_case "locals survive recursion" `Quick
      test_locals_survive_deep_recursion;
    Alcotest.test_case "fpu" `Quick test_fpu;
    Alcotest.test_case "fstoi saturation" `Quick test_fstoi_saturation;
    QCheck_alcotest.to_alcotest prop_encode_roundtrip;
    QCheck_alcotest.to_alcotest prop_encode_32bit;
    QCheck_alcotest.to_alcotest prop_disasm_assemble_roundtrip;
    Alcotest.test_case "decode error" `Quick test_decode_error;
    Alcotest.test_case "rwsets" `Quick test_rwsets;
    Alcotest.test_case "rwsets mem" `Quick test_rwsets_mem;
    Alcotest.test_case "window sharing" `Quick test_rwsets_window_sharing;
    Alcotest.test_case "storage overlap" `Quick test_storage_overlap;
    Alcotest.test_case "disasm strings" `Quick test_disasm_strings;
    Alcotest.test_case "encoding golden vectors" `Quick
      test_encoding_golden_vectors;
    Alcotest.test_case "latency model" `Quick test_latency_model;
    Alcotest.test_case "instruction classification" `Quick test_classification;
  ]
