(* Smoke tests for the experiment harness: every registered experiment must
   render a non-empty table at a tiny budget, mentioning every workload.
   These are the regression net for the reproduction harness itself. *)

let check_bool = Alcotest.(check bool)

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let budget = 4_000

let renders name =
  let f = List.assoc name Dts_experiments.Experiments.by_name in
  let fig = f ~scale:1 ~budget () in
  let out = fig.Dts_experiments.Experiments.render () in
  check_bool (name ^ " non-empty") true (String.length out > 100);
  check_bool (name ^ " lists workloads") true
    (List.for_all
       (fun (w : Dts_workloads.Workloads.t) -> contains out w.name)
       Dts_workloads.Workloads.all);
  check_bool (name ^ " names itself") true
    (fig.Dts_experiments.Experiments.name = name);
  (* structured tables carry the same cells the rendering prints: every
     header and every first-column label must appear in the text *)
  check_bool (name ^ " tables non-empty") true
    (fig.Dts_experiments.Experiments.tables <> []);
  List.iter
    (fun (title, rows) ->
      check_bool (name ^ " title rendered") true (contains out title);
      List.iter
        (fun row ->
          match row with
          | cell :: _ -> check_bool (name ^ " cell rendered") true (contains out cell)
          | [] -> ())
        rows)
    fig.Dts_experiments.Experiments.tables

let test_run_record () =
  let r =
    Dts_experiments.Experiments.run_dtsvliw ~budget
      (Dts_core.Config.ideal ()) "compress"
  in
  check_bool "instructions counted" true (r.instructions >= budget);
  check_bool "ipc positive" true (r.ipc > 0.1);
  check_bool "cycles consistent" true
    (abs_float (r.ipc -. (float_of_int r.instructions /. float_of_int r.cycles))
    < 1e-9);
  check_bool "vliw fraction in range" true
    (r.vliw_fraction >= 0. && r.vliw_fraction <= 1.)

let test_dif_run_record () =
  let r, dif =
    Dts_experiments.Experiments.run_dif ~budget
      (Dts_dif.Dif.fig9_machine_cfg ())
      "compress"
  in
  check_bool "progressed" true (r.instructions >= budget);
  check_bool "dif blocks" true (dif.blocks_built > 0);
  check_bool "dif cache bytes accounted" true (dif.cache_bytes > 0)

let test_fig8_components_nonnegative_sum () =
  (* the stacked decomposition must add back up to the ideal IPC *)
  let out =
    ((List.assoc "fig8" Dts_experiments.Experiments.by_name) ~scale:1 ~budget ())
      .Dts_experiments.Experiments.render ()
  in
  check_bool "has ILP column" true (contains out "ILP")

let test_bad_args_rejected () =
  let expect_invalid label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  in
  expect_invalid "scale 0" (fun () ->
      Dts_experiments.Experiments.run_dtsvliw ~scale:0
        (Dts_core.Config.ideal ()) "compress");
  expect_invalid "budget negative" (fun () ->
      Dts_experiments.Experiments.run_dtsvliw ~budget:(-1)
        (Dts_core.Config.ideal ()) "compress");
  expect_invalid "dif budget 0" (fun () ->
      Dts_experiments.Experiments.run_dif ~budget:0
        (Dts_dif.Dif.fig9_machine_cfg ())
        "compress")

let suite =
  List.map
    (fun name -> Alcotest.test_case ("renders: " ^ name) `Quick (fun () -> renders name))
    [ "table2"; "fig6"; "fig9"; "ablation"; "extensions"; "table3" ]
  @ [
      Alcotest.test_case "run record" `Quick test_run_record;
      Alcotest.test_case "dif run record" `Quick test_dif_run_record;
      Alcotest.test_case "fig8 renders" `Quick test_fig8_components_nonnegative_sum;
      Alcotest.test_case "bad args rejected" `Quick test_bad_args_rejected;
    ]
