(* The unified Job API (lib/job) and the dtsvliw_serve wire protocol
   (lib/serve/protocol).

   The load-bearing properties: the JSON codecs are total and strict —
   every randomly generated valid job round-trips exactly through its wire
   form, and decoding rejects (rather than silently defaults) unknown
   kinds, unknown fields, missing fields and duplicate keys. The same
   strictness holds for the server's request/response/event grammar. And
   the sharding identity the campaign daemon's determinism rests on:
   [Run.assemble job (map (Run.eval_shard job) (Run.shards job))] is
   byte-identical to the one-shot [Run.run job], for figure and fuzz
   jobs alike. *)

open Dts_job

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* -------- generators -------- *)

let figure_names = List.map fst Dts_experiments.Experiments.by_name

let workload_names =
  List.map
    (fun (w : Dts_workloads.Workloads.t) -> w.name)
    Dts_workloads.Workloads.all

let gen_machine =
  let open QCheck.Gen in
  let dim = opt (int_range 1 32) in
  let* feasible = bool and* dif = bool in
  let* compile = bool and* fastpath = bool in
  let* width = dim and* height = dim in
  let* vcache_kb = dim and* vcache_assoc = dim in
  let* renaming = bool and* store_list = bool in
  let* predict_next = bool and* multicycle = bool in
  return
    {
      Machine_opts.feasible;
      dif;
      compile;
      fastpath;
      width;
      height;
      vcache_kb;
      vcache_assoc;
      renaming;
      store_list;
      predict_next;
      multicycle;
    }

let gen_kind =
  let open QCheck.Gen in
  oneof
    [
      (let* figure = oneofl figure_names in
       return (Job.Figure { figure }));
      (let* seed = int_range 0 1_000_000 and* count = int_range 1 500 in
       let* max_insns = int_range 1 200 in
       let* config = oneofl [ "all"; "ideal"; "feasible" ] in
       let* shrink = bool in
       let* out_dir = opt (oneofl [ "out"; "_build/fuzz-failures" ]) in
       return (Job.Fuzz_batch { seed; count; max_insns; config; shrink; out_dir }));
      (let* source =
         oneof
           [
             (let* name = oneofl workload_names in
              return (Job.Builtin name));
             (let* path = oneofl [ "prog.s"; "prog.c"; "dir/x.s" ] in
              return (Job.File path));
           ]
       and* machine = gen_machine
       and* dump_blocks = int_range 0 8 in
       return (Job.Workload { source; machine; dump_blocks }))
    ]

let gen_job =
  let open QCheck.Gen in
  let* kind = gen_kind in
  let* budget = int_range 1 1_000_000 and* scale = int_range 1 8 in
  return { Job.kind; budget; scale }

let arb_job = QCheck.make ~print:Job.to_string gen_job

(* -------- Job.t codec -------- *)

let test_job_roundtrip =
  QCheck.Test.make ~count:500 ~name:"job json round-trip" arb_job (fun job ->
      match Job.validate job with
      | Error _ -> QCheck.assume_fail () (* generator emits valid jobs only *)
      | Ok () -> (
        match Job.of_string (Job.to_string job) with
        | Ok job' -> Job.equal job job'
        | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg))

let expect_error what = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: decode succeeded, expected rejection" what

let reencode fields =
  (* a valid figure job with [fields] applied: replace existing keys,
     append unknown ones, drop keys mapped to None *)
  match Job.to_json (Job.figure "fig6") with
  | Dts_obs.Json.Obj kvs ->
    let kvs =
      List.filter_map
        (fun (k, v) ->
          match List.assoc_opt k fields with
          | Some None -> None
          | Some (Some v') -> Some (k, v')
          | None -> Some (k, v))
        kvs
    in
    let extra =
      List.filter_map
        (fun (k, v) ->
          match (List.mem_assoc k kvs, v) with
          | false, Some v -> Some (k, v)
          | _ -> None)
        fields
    in
    Dts_obs.Json.Obj (kvs @ extra)
  | _ -> assert false

let test_job_rejects () =
  let open Dts_obs.Json in
  expect_error "unknown kind"
    (Job.of_json (reencode [ ("kind", Some (String "trace")) ]));
  expect_error "unknown field"
    (Job.of_json (reencode [ ("shiny", Some (Bool true)) ]));
  expect_error "missing budget (no silent defaulting)"
    (Job.of_json (reencode [ ("budget", None) ]));
  expect_error "missing kind" (Job.of_json (reencode [ ("kind", None) ]));
  expect_error "duplicate key"
    (Job.of_json
       (match reencode [] with
       | Obj kvs -> Obj (kvs @ [ ("budget", Int 7) ])
       | j -> j));
  expect_error "non-object" (Job.of_json (Int 3));
  expect_error "wrong field type"
    (Job.of_json (reencode [ ("budget", Some (String "lots")) ]));
  (* of_json validates: well-formed JSON for an unrunnable job is rejected *)
  expect_error "unknown figure name"
    (Job.of_string (Job.to_string (Job.figure "fig99")));
  expect_error "non-positive budget"
    (Job.of_string (Job.to_string (Job.figure ~budget:0 "fig6")));
  expect_error "garbage" (Job.of_string "not json at all")

let test_job_validate () =
  let ok job = check_bool "valid" true (Job.validate job = Ok ()) in
  let bad job = check_bool "invalid" true (Result.is_error (Job.validate job)) in
  ok (Job.figure "all");
  ok (Job.fuzz_batch ~seed:1 ~count:16 ());
  ok (Job.workload (Job.Builtin "compress"));
  bad (Job.figure "nope");
  bad (Job.figure ~scale:0 "fig6");
  bad (Job.fuzz_batch ~seed:1 ~count:0 ());
  bad (Job.fuzz_batch ~seed:1 ~count:4 ~config:"fast" ());
  bad (Job.fuzz_batch ~seed:1 ~count:4 ~max_insns:0 ());
  bad (Job.workload (Job.Builtin "specint"));
  bad (Job.workload (Job.File ""));
  bad (Job.workload ~dump_blocks:(-1) (Job.Builtin "compress"));
  bad
    (Job.workload
       ~machine:{ Machine_opts.default with width = Some 0 }
       (Job.Builtin "compress"))

(* -------- wire protocol codecs -------- *)

let roundtrip_request r =
  let open Dts_serve.Protocol in
  match request_of_json (request_to_json r) with
  | Ok r' -> check_bool "request round-trip" true (r = r')
  | Error msg -> Alcotest.failf "request decode failed: %s" msg

let test_protocol_requests () =
  let open Dts_serve.Protocol in
  let job = Job.fuzz_batch ~seed:3 ~count:7 () in
  List.iter roundtrip_request
    [
      Submit { job; priority = 2; fault_kills = 1 };
      Status { id = None };
      Status { id = Some 4 };
      Cancel { id = 9 };
      Results { id = 1 };
      Shutdown { drain = true };
      Shutdown { drain = false };
    ];
  let open Dts_obs.Json in
  expect_error "unknown op"
    (request_of_json (Obj [ ("op", String "reboot") ]));
  expect_error "submit without job"
    (request_of_json
       (Obj
          [ ("op", String "submit"); ("priority", Int 0); ("fault_kills", Int 0) ]));
  expect_error "negative fault_kills"
    (request_of_json
       (Obj
          [
            ("op", String "submit");
            ("job", Job.to_json job);
            ("priority", Int 0);
            ("fault_kills", Int (-1));
          ]));
  expect_error "unknown request field"
    (request_of_json (Obj [ ("op", String "cancel"); ("id", Int 1); ("x", Null) ]))

let roundtrip_response r =
  let open Dts_serve.Protocol in
  match response_of_json (response_to_json r) with
  | Ok r' -> check_bool "response round-trip" true (r = r')
  | Error msg -> Alcotest.failf "response decode failed: %s" msg

let test_protocol_responses () =
  let open Dts_serve.Protocol in
  List.iter roundtrip_response
    [
      Ok_id 12;
      Ok_unit;
      Err "no such job";
      Ok_status [];
      Ok_status
        [
          {
            id = 1;
            kind = "figure";
            state = Running;
            priority = 0;
            shards_done = 3;
            shards = 16;
            retries = 1;
            exit_code = None;
          };
          {
            id = 2;
            kind = "fuzz_batch";
            state = Done;
            priority = 5;
            shards_done = 16;
            shards = 16;
            retries = 0;
            exit_code = Some 0;
          };
        ];
    ];
  let open Dts_obs.Json in
  expect_error "unknown response field"
    (response_of_json (Obj [ ("ok", Bool true); ("surprise", Int 1) ]));
  expect_error "unknown state"
    (response_of_json
       (Obj
          [
            ("ok", Bool true);
            ( "jobs",
              List
                [
                  Obj
                    [
                      ("id", Int 1);
                      ("kind", String "figure");
                      ("state", String "paused");
                      ("priority", Int 0);
                      ("shards_done", Int 0);
                      ("shards", Int 1);
                      ("retries", Int 0);
                      ("exit_code", Null);
                    ];
                ] );
          ]))

let roundtrip_event (id, ev) =
  let open Dts_serve.Protocol in
  match event_of_json (event_to_json ~id ev) with
  | Ok (id', ev') ->
    check_bool "event round-trip" true (id = id' && ev = ev')
  | Error msg -> Alcotest.failf "event decode failed: %s" msg

let test_protocol_events () =
  let open Dts_serve.Protocol in
  List.iter roundtrip_event
    [
      (1, Shard_done { shard = 3; shards = 16 });
      (1, Retry { shard = 3; attempt = 2 });
      ( 2,
        Done { Run.text = "table\n"; stats_json = Some "{}"; exit_code = 0 } );
      (2, Done { Run.text = ""; stats_json = None; exit_code = 1 });
      (3, Failed { error = "worker exploded" });
      (4, Canceled);
    ];
  check_bool "terminal classification" true
    (terminal Canceled
    && terminal (Failed { error = "x" })
    && (not (terminal (Retry { shard = 0; attempt = 1 })))
    && not (terminal (Shard_done { shard = 0; shards = 1 })));
  let open Dts_obs.Json in
  expect_error "unknown event"
    (event_of_json (Obj [ ("id", Int 1); ("ev", String "progress") ]));
  expect_error "event unknown field"
    (event_of_json (Obj [ ("id", Int 1); ("ev", String "canceled"); ("x", Null) ]))

let test_worker_input () =
  let open Dts_serve.Protocol in
  let rt w =
    match worker_input_of_json (worker_input_to_json w) with
    | Ok w' -> check_bool "worker input round-trip" true (w = w')
    | Error msg -> Alcotest.failf "worker input decode failed: %s" msg
  in
  let job = Job.figure ~budget:400 "fig6" in
  rt { job; shard = Run.Whole; fault_kill = false };
  rt { job; shard = Run.Slice { lo = 2; hi = 5 }; fault_kill = true };
  expect_error "bad shard"
    (worker_input_of_json
       (Dts_obs.Json.Obj
          [
            ("job", Job.to_json job);
            ("shard", Dts_obs.Json.String "half");
            ("fault_kill", Dts_obs.Json.Bool false);
          ]))

(* -------- sharding identity -------- *)

(* The determinism guarantee the campaign daemon advertises: evaluating a
   job shard-by-shard and reassembling gives the byte-identical outcome of
   the one-shot run, whatever the shard count. *)
let shards_assemble_identical job =
  let one_shot = Run.run job in
  List.iter
    (fun max_shards ->
      let shards = Run.shards ~max_shards job in
      let results = List.map (Run.eval_shard job) shards in
      let assembled = Run.assemble job results in
      check_string
        (Printf.sprintf "%s text, %d shards" (Job.kind_name job)
           (List.length shards))
        one_shot.Run.text assembled.Run.text;
      check_bool "exit code" true
        (one_shot.Run.exit_code = assembled.Run.exit_code))
    [ 1; 3; 16 ]

let test_shards_figure () =
  shards_assemble_identical (Job.figure ~budget:400 "fig6")

let test_shards_fuzz () =
  shards_assemble_identical (Job.fuzz_batch ~seed:1 ~count:16 ())

let test_shards_workload () =
  shards_assemble_identical (Job.workload ~budget:2000 (Job.Builtin "compress"))

let suite =
  [
    QCheck_alcotest.to_alcotest test_job_roundtrip;
    Alcotest.test_case "job decode rejects junk" `Quick test_job_rejects;
    Alcotest.test_case "job validation" `Quick test_job_validate;
    Alcotest.test_case "protocol requests" `Quick test_protocol_requests;
    Alcotest.test_case "protocol responses" `Quick test_protocol_responses;
    Alcotest.test_case "protocol events" `Quick test_protocol_events;
    Alcotest.test_case "worker input" `Quick test_worker_input;
    Alcotest.test_case "figure shards reassemble exactly" `Quick
      test_shards_figure;
    Alcotest.test_case "fuzz shards reassemble exactly" `Quick test_shards_fuzz;
    Alcotest.test_case "workload shards reassemble exactly" `Quick
      test_shards_workload;
  ]
