(* tinyc compiler tests: compile programs and execute them on the golden
   machine, checking results left in global variables. *)

let compile_and_run ?(fuel = 5_000_000) src =
  let program = Dts_tinyc.Tinyc.compile src in
  let st = Dts_asm.Program.boot program in
  let g = Dts_golden.Golden.of_state st in
  ignore (Dts_golden.Golden.run ~max_instructions:fuel g);
  Alcotest.(check bool) "halted" true st.Dts_isa.State.halted;
  (program, st)

let global_value (program, st) name =
  Dts_mem.Memory.read st.Dts_isa.State.mem
    ~addr:(Dts_asm.Program.symbol program ("g_" ^ name))
    ~size:4 ~signed:true

let check_global src name expected =
  let r = compile_and_run src in
  Alcotest.(check int) name expected (global_value r name)

let test_arith () =
  check_global
    {| int r;
       int main() { r = (2 + 3) * 4 - 10 / 2; return 0; } |}
    "r" 15

let test_precedence () =
  check_global
    {| int r;
       int main() { r = 1 + 2 * 3 == 7; return 0; } |}
    "r" 1

let test_mod_and_shifts () =
  check_global
    {| int r;
       int main() { r = ((17 % 5) << 4) | (256 >> 6) | (1 << 10); return 0; } |}
    "r" (((17 mod 5) lsl 4) lor (256 lsr 6) lor (1 lsl 10))

let test_negative_mod () =
  check_global {| int r; int main() { r = -7 % 3; return 0; } |} "r" (-1)

let test_unsigned_compare () =
  (* -1 is 0xFFFFFFFF unsigned, so (-1) <: 1 is false and 1 <: -1 is true *)
  check_global
    {| int a; int b;
       int main() { a = -1 <: 1; b = 1 <: -1; return 0; } |}
    "a" 0;
  check_global
    {| int a; int b;
       int main() { a = -1 <: 1; b = 1 <: -1; return 0; } |}
    "b" 1

let test_logical_shortcircuit () =
  check_global
    {| int hits;
       int bump() { hits = hits + 1; return 1; }
       int main() {
         if (0 && bump()) { hits = 100; }
         if (1 || bump()) { hits = hits + 10; }
         return 0;
       } |}
    "hits" 10

let test_if_else_chain () =
  check_global
    {| int r;
       int classify(int x) {
         if (x < 0) { return -1; }
         else if (x == 0) { return 0; }
         else { return 1; }
       }
       int main() { r = classify(-5) * 100 + classify(0) * 10 + classify(7); return 0; } |}
    "r" (-99)

let test_while_loop () =
  check_global
    {| int r;
       int main() {
         int i; int s;
         s = 0;
         i = 1;
         while (i <= 100) { s = s + i; i = i + 1; }
         r = s;
         return 0;
       } |}
    "r" 5050

let test_for_break_continue () =
  check_global
    {| int r;
       int main() {
         int i; int s;
         s = 0;
         for (i = 0; i < 100; i = i + 1) {
           if (i % 2 == 0) { continue; }
           if (i > 20) { break; }
           s = s + i;
         }
         r = s;
         return 0;
       } |}
    "r" (1 + 3 + 5 + 7 + 9 + 11 + 13 + 15 + 17 + 19)

let test_global_arrays () =
  check_global
    {| int a[10];
       int r;
       int main() {
         int i;
         for (i = 0; i < 10; i = i + 1) { a[i] = i * i; }
         r = a[7] + a[3];
         return 0;
       } |}
    "r" 58

let test_global_array_init () =
  check_global
    {| int a[5] = {10, 20, 30};
       int r;
       int main() { r = a[0] + a[1] + a[2] + a[3] + a[4]; return 0; } |}
    "r" 60

let test_local_arrays () =
  check_global
    {| int r;
       int main() {
         int buf[16];
         int i; int s;
         for (i = 0; i < 16; i = i + 1) { buf[i] = i; }
         s = 0;
         for (i = 0; i < 16; i = i + 1) { s = s + buf[i]; }
         r = s;
         return 0;
       } |}
    "r" 120

let test_recursion_fib () =
  check_global
    {| int r;
       int fib(int n) {
         if (n < 2) { return n; }
         return fib(n - 1) + fib(n - 2);
       }
       int main() { r = fib(15); return 0; } |}
    "r" 610

let test_deep_recursion_window_spill () =
  (* depth 100 forces window overflow traps with 32 windows *)
  check_global
    {| int r;
       int down(int n, int acc) {
         if (n == 0) { return acc; }
         return down(n - 1, acc + n);
       }
       int main() { r = down(100, 0); return 0; } |}
    "r" 5050

let test_many_locals_stack_overflow_slots () =
  (* more than 8 scalars: some spill to the stack frame *)
  check_global
    {| int r;
       int main() {
         int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
         int f = 6; int g = 7; int h = 8; int i = 9; int j = 10;
         int k = 11; int l = 12;
         r = a + b + c + d + e + f + g + h + i + j + k + l;
         return 0;
       } |}
    "r" 78

let test_call_in_expression_spill () =
  (* live scratch must survive across the inner calls *)
  check_global
    {| int r;
       int id(int x) { return x; }
       int main() { r = id(1) + id(2) * id(3) + (id(4) - id(5)); return 0; } |}
    "r" 6

let test_nested_call_arguments () =
  (* regression: a call inside another call's argument list must not clobber
     the outer call's already-stored arguments (temp slots are a stack) *)
  check_global
    {| int r;
       int add3(int a, int b, int c) { return a + b + c; }
       int twice(int x) { return x * 2; }
       int main() {
         r = add3(100, twice(add3(1, 2, twice(3))), 10000);
         return 0;
       } |}
    "r" (100 + (2 * (1 + 2 + 6)) + 10000)

let test_six_args () =
  check_global
    {| int r;
       int sum6(int a, int b, int c, int d, int e, int f) {
         return a + b + c + d + e + f;
       }
       int main() { r = sum6(1, 2, 3, 4, 5, 6); return 0; } |}
    "r" 21

let test_mutual_recursion () =
  check_global
    {| int r;
       int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
       int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
       int main() { r = is_even(10) * 10 + is_odd(7); return 0; } |}
    "r" 11

let test_sort () =
  check_global
    {| int a[20] = {5, 3, 8, 1, 9, 2, 7, 4, 6, 0, 15, 13, 18, 11, 19, 12, 17, 14, 16, 10};
       int r;
       int main() {
         int i; int j; int t;
         for (i = 0; i < 20; i = i + 1) {
           for (j = i + 1; j < 20; j = j + 1) {
             if (a[j] < a[i]) { t = a[i]; a[i] = a[j]; a[j] = t; }
           }
         }
         r = 1;
         for (i = 0; i < 20; i = i + 1) { if (a[i] != i) { r = 0; } }
         return 0;
       } |}
    "r" 1

let test_hash_mixing () =
  (* exercises unsigned shifts and xor, like the compress analogue *)
  check_global
    {| int r;
       int mix(int h, int x) {
         h = h ^ x;
         h = h * 31;
         h = (h >>> 7) ^ (h << 3);
         return h;
       }
       int main() {
         int i; int h;
         h = 1234567;
         for (i = 0; i < 50; i = i + 1) { h = mix(h, i); }
         r = h;
         return 0;
       } |}
    "r"
    (let norm32 v = (v lsl (Sys.int_size - 32)) asr (Sys.int_size - 32) in
     let mix h x =
       let h = h lxor x in
       let h = norm32 (h * 31) in
       norm32 ((h land 0xFFFFFFFF) lsr 7 lxor norm32 (h lsl 3))
     in
     let h = ref 1234567 in
     for i = 0 to 49 do
       h := mix !h i
     done;
     !h)

let test_comments () =
  check_global
    {| // line comment
       int r; /* block
                 comment */
       int main() { r = 4; return 0; } |}
    "r" 4

let test_error_unknown_var () =
  match Dts_tinyc.Tinyc.compile "int main() { x = 1; return 0; }" with
  | exception Dts_tinyc.Codegen.Error _ -> ()
  | _ -> Alcotest.fail "expected codegen error"

let test_error_unknown_func () =
  match Dts_tinyc.Tinyc.compile "int main() { return nope(); }" with
  | exception Dts_tinyc.Codegen.Error _ -> ()
  | _ -> Alcotest.fail "expected codegen error"

let test_error_arity () =
  match
    Dts_tinyc.Tinyc.compile
      "int f(int a) { return a; } int main() { return f(1, 2); }"
  with
  | exception Dts_tinyc.Codegen.Error _ -> ()
  | _ -> Alcotest.fail "expected arity error"

let test_error_parse () =
  match Dts_tinyc.Tinyc.compile "int main() { if { } }" with
  | exception Dts_tinyc.Parser.Error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

let test_error_no_main () =
  match Dts_tinyc.Tinyc.compile "int f() { return 1; }" with
  | exception Dts_tinyc.Codegen.Error _ -> ()
  | _ -> Alcotest.fail "expected no-main error"

(* property: random arithmetic expressions agree with an OCaml oracle that
   applies 32-bit two's-complement semantics *)
let norm32 v = (v lsl (Sys.int_size - 32)) asr (Sys.int_size - 32)
let u32 v = v land 0xFFFFFFFF

type rexpr =
  | RNum of int
  | RVar of int  (* variable index 0..3 *)
  | RBin of Ast_op.t * rexpr * rexpr

and _unused = unit

let rec eval_rexpr env = function
  | RNum n -> norm32 n
  | RVar i -> env.(i)
  | RBin (op, a, b) ->
    let x = eval_rexpr env a and y = eval_rexpr env b in
    norm32
      (match op with
      | Ast_op.Add -> x + y
      | Sub -> x - y
      | Mul -> x * y
      | Div -> if y = 0 then 0 else x / y
      | Mod -> if y = 0 then x else x - (x / y * y)
      | BAnd -> x land y
      | BOr -> x lor y
      | BXor -> x lxor y
      | Shl -> x lsl (y land 31)
      | Shr -> norm32 x asr (y land 31)
      | Lshr -> u32 x lsr (y land 31))

and rexpr_to_src = function
  | RNum n -> string_of_int n
  | RVar i -> Printf.sprintf "v%d" i
  | RBin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (rexpr_to_src a)
      (match op with
      | Ast_op.Add -> "+"
      | Sub -> "-"
      | Mul -> "*"
      | Div -> "/"
      | Mod -> "%"
      | BAnd -> "&"
      | BOr -> "|"
      | BXor -> "^"
      | Shl -> "<<"
      | Shr -> ">>"
      | Lshr -> ">>>")
      (rexpr_to_src b)

and gen_rexpr depth =
  let open QCheck2.Gen in
  if depth = 0 then
    oneof
      [
        map (fun n -> RNum n) (int_range (-1000) 1000);
        map (fun i -> RVar i) (int_range 0 3);
      ]
  else
    let sub = gen_rexpr (depth - 1) in
    oneof
      [
        map (fun n -> RNum n) (int_range (-1000) 1000);
        map (fun i -> RVar i) (int_range 0 3);
        map3
          (fun op a b -> RBin (op, a, b))
          (oneofl
             Ast_op.
               [ Add; Sub; Mul; Div; Mod; BAnd; BOr; BXor; Shl; Shr; Lshr ])
          sub sub;
      ]

let prop_expressions_agree_with_oracle =
  QCheck2.Test.make ~count:150 ~name:"tinyc expressions match 32-bit oracle"
    QCheck2.Gen.(
      tup2 (gen_rexpr 3)
        (array_size (return 4) (int_range (-10000) 10000)))
    (fun (e, vars) ->
      (* division semantics: tinyc sdiv truncates toward zero and yields 0
         on division by zero; the oracle above mirrors that *)
      let src =
        Printf.sprintf
          {| int r;
             int main() {
               int v0 = %d; int v1 = %d; int v2 = %d; int v3 = %d;
               r = %s;
               return 0;
             } |}
          vars.(0) vars.(1) vars.(2) vars.(3) (rexpr_to_src e)
      in
      let expected = eval_rexpr (Array.map norm32 vars) e in
      let got = global_value (compile_and_run src) "r" in
      got = expected)

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "mod and shifts" `Quick test_mod_and_shifts;
    Alcotest.test_case "negative mod" `Quick test_negative_mod;
    Alcotest.test_case "unsigned compare" `Quick test_unsigned_compare;
    Alcotest.test_case "logical short-circuit" `Quick test_logical_shortcircuit;
    Alcotest.test_case "if/else chain" `Quick test_if_else_chain;
    Alcotest.test_case "while loop" `Quick test_while_loop;
    Alcotest.test_case "for/break/continue" `Quick test_for_break_continue;
    Alcotest.test_case "global arrays" `Quick test_global_arrays;
    Alcotest.test_case "global array init" `Quick test_global_array_init;
    Alcotest.test_case "local arrays" `Quick test_local_arrays;
    Alcotest.test_case "recursion (fib)" `Quick test_recursion_fib;
    Alcotest.test_case "deep recursion window spill" `Quick
      test_deep_recursion_window_spill;
    Alcotest.test_case "locals beyond registers" `Quick
      test_many_locals_stack_overflow_slots;
    Alcotest.test_case "calls in expressions" `Quick test_call_in_expression_spill;
    Alcotest.test_case "six arguments" `Quick test_six_args;
    Alcotest.test_case "nested call arguments" `Quick
      test_nested_call_arguments;
    Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
    Alcotest.test_case "selection sort" `Quick test_sort;
    Alcotest.test_case "hash mixing" `Quick test_hash_mixing;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "error: unknown variable" `Quick test_error_unknown_var;
    Alcotest.test_case "error: unknown function" `Quick test_error_unknown_func;
    Alcotest.test_case "error: arity" `Quick test_error_arity;
    Alcotest.test_case "error: parse" `Quick test_error_parse;
    Alcotest.test_case "error: no main" `Quick test_error_no_main;
    QCheck_alcotest.to_alcotest prop_expressions_agree_with_oracle;
  ]
