(* Workload suite tests: every analogue compiles, terminates on the golden
   machine, is deterministic, and runs clean through the DTSVLIW machine's
   test-mode co-simulation. *)

let check_bool = Alcotest.(check bool)

let golden_run ?(fuel = 30_000_000) program =
  let st = Dts_asm.Program.boot program in
  let g = Dts_golden.Golden.of_state st in
  ignore (Dts_golden.Golden.run ~max_instructions:fuel g);
  st

let test_compiles_and_halts (w : Dts_workloads.Workloads.t) () =
  let program = Dts_workloads.Workloads.program ~scale:1 w in
  let st = golden_run program in
  check_bool "halted" true st.halted;
  check_bool
    (Printf.sprintf "substantial run (%d instructions)" st.instret)
    true
    (st.instret > 50_000)

let test_deterministic () =
  let w = Dts_workloads.Workloads.find "compress" in
  let p = Dts_workloads.Workloads.program ~scale:1 w in
  let a = golden_run p and b = golden_run p in
  check_bool "same instruction count" true (a.instret = b.instret);
  check_bool "same final state" true (Dts_isa.State.regs_equal a b)

let test_scale_increases_work () =
  let w = Dts_workloads.Workloads.find "ijpeg" in
  let small = golden_run (Dts_workloads.Workloads.program ~scale:1 w) in
  let large = golden_run (Dts_workloads.Workloads.program ~scale:2 w) in
  check_bool "scale grows instruction count" true
    (large.instret > small.instret)

let test_distinct_characters () =
  (* the analogues must differ in code size, matching their working-set
     story: gcc/go text much larger than compress/ijpeg *)
  let text name =
    Dts_asm.Program.text_size
      (Dts_workloads.Workloads.program ~scale:1
         (Dts_workloads.Workloads.find name))
  in
  check_bool "gcc text > 2x compress text" true
    (text "gcc" > 2 * text "compress");
  check_bool "go text > 2x ijpeg text" true (text "go" > 2 * text "ijpeg")

let test_dtsvliw_cosim name () =
  let w = Dts_workloads.Workloads.find name in
  let program = Dts_workloads.Workloads.program ~scale:1 w in
  let m = Dts_core.Machine.create (Dts_core.Config.ideal ()) program in
  let n = Dts_core.Machine.run ~max_instructions:60_000 m in
  check_bool "progressed" true (n >= 50_000);
  check_bool "nonzero vliw execution" true (m.vliw_cycles > 0)

let suite =
  List.map
    (fun (w : Dts_workloads.Workloads.t) ->
      Alcotest.test_case
        (Printf.sprintf "%s (mirrors %s) compiles and halts" w.name w.mirrors)
        `Quick
        (test_compiles_and_halts w))
    Dts_workloads.Workloads.all
  @ [
      Alcotest.test_case "deterministic" `Quick test_deterministic;
      Alcotest.test_case "scale increases work" `Quick test_scale_increases_work;
      Alcotest.test_case "distinct code footprints" `Quick
        test_distinct_characters;
      Alcotest.test_case "dtsvliw co-sim: compress" `Quick
        (test_dtsvliw_cosim "compress");
      Alcotest.test_case "dtsvliw co-sim: ijpeg" `Quick
        (test_dtsvliw_cosim "ijpeg");
      Alcotest.test_case "dtsvliw co-sim: xlisp" `Quick
        (test_dtsvliw_cosim "xlisp");
      Alcotest.test_case "dtsvliw co-sim: gcc" `Slow (test_dtsvliw_cosim "gcc");
      Alcotest.test_case "dtsvliw co-sim: go" `Slow (test_dtsvliw_cosim "go");
      Alcotest.test_case "dtsvliw co-sim: m88ksim" `Slow
        (test_dtsvliw_cosim "m88ksim");
      Alcotest.test_case "dtsvliw co-sim: perl" `Slow
        (test_dtsvliw_cosim "perl");
      Alcotest.test_case "dtsvliw co-sim: vortex" `Slow
        (test_dtsvliw_cosim "vortex");
    ]
