(* Direct unit tests of the VLIW Engine: hand-built blocks exercising tag
   validation, misprediction, copy commit, deferred exceptions, window
   shifts and the aliasing detector — without the Scheduler Unit in the
   loop. *)

open Dts_sched.Schedtypes

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let uid = ref 0

(* build a scheduled op with read/write sets derived from the instruction *)
let sop ?(cwp = 0) ?(taken = false) ?(next = -1) ?mem ?(order = -1)
    ?(redirect = []) ?(subs = []) ~addr instr =
  incr uid;
  let reads, arch_writes =
    Dts_isa.Rwsets.of_instr ~nwindows:8 ~cwp ?mem instr
  in
  {
    uid = !uid;
    instr;
    addr;
    cwp;
    reads;
    arch_writes;
    obs_taken = taken;
    obs_next_pc = (if next >= 0 then next else addr + 4);
    obs_mem = mem;
    order;
    cross = order >= 0;
    redirect;
    subs;
    fu = Dts_isa.Instr.fu_class instr;
  }

let li_of ops =
  let li = li_create 8 in
  List.iteri (fun k (op, tag) -> li_fill li k (op, tag)) ops;
  li

let block_of ?(tag_addr = 0x1000) ?(entry_cwp = 0) ?(rr = [| 8; 8; 8; 8 |])
    ?(nba = 0x2000) lis =
  {
    tag_addr;
    entry_cwp;
    lis = Array.of_list lis;
    nba_addr = nba;
    nba_idx = List.length lis - 1;
    rr_counts = rr;
    n_slots_filled = 0;
    n_copies = 0;
    max_li_ops = List.fold_left (fun a li -> max a (li_count li)) 0 lis;
  }

let fresh_engine ?(nwindows = 8) () =
  let st = Dts_isa.State.create ~nwindows () in
  let dcache = Dts_mem.Cache.perfect () in
  (st, Dts_vliw.Engine.create ~dcache st)

let alu ?(cc = false) op rs1 op2 rd =
  Dts_isa.Instr.Alu { op; cc; rs1; op2; rd }

let vis st r = Dts_isa.State.get_reg st ~cwp:st.Dts_isa.State.cwp r

(* ---- plain parallel execution ---- *)

let test_parallel_reads_pre_state () =
  let st, e = fresh_engine () in
  Dts_isa.State.set_reg st ~cwp:0 1 10;
  Dts_isa.State.set_reg st ~cwp:0 2 20;
  (* swap r1,r2 in one long instruction: both read pre-state *)
  let li =
    li_of
      [
        (Op (sop ~addr:0x1000 (alu Or 1 (Imm 0) 2)), 0);
        (Op (sop ~addr:0x1004 (alu Or 2 (Imm 0) 1)), 0);
      ]
  in
  (* note: the scheduler would never build this (anti deps), but the engine
     semantics are read-all-then-write-all, which is what renaming relies on *)
  let b = block_of [ li ] in
  Dts_vliw.Engine.enter_block e b;
  (match Dts_vliw.Engine.exec_li e b 0 with
  | R_block_end { next_addr }, _ -> check_int "nba" 0x2000 next_addr
  | _ -> Alcotest.fail "expected block end");
  check_int "r2 got old r1" 10 (vis st 2);
  check_int "r1 got old r2" 20 (vis st 1)

let test_renamed_write_and_copy () =
  let st, e = fresh_engine () in
  Dts_isa.State.set_reg st ~cwp:0 1 5;
  let p2 = Dts_isa.State.phys ~nwindows:8 ~cwp:0 2 in
  let rr = { kind = K_int; ridx = 0 } in
  (* li0: r2' := r1 + 1 (renamed); li1: COPY rr -> r2 *)
  let op =
    sop ~addr:0x1000 (alu Add 1 (Imm 1) 2)
      ~redirect:[ (Dts_isa.Storage.Int_reg p2, rr) ]
  in
  let copy =
    Copy { c_moves = [ (rr, T_arch (Dts_isa.Storage.Int_reg p2)) ]; c_order = -1; c_from = 0 }
  in
  let b = block_of [ li_of [ (Op op, 0) ]; li_of [ (copy, 0) ] ] in
  Dts_vliw.Engine.enter_block e b;
  ignore (Dts_vliw.Engine.exec_li e b 0);
  check_int "arch r2 untouched after renamed write" 0 (vis st 2);
  ignore (Dts_vliw.Engine.exec_li e b 1);
  check_int "copy committed" 6 (vis st 2)

let test_forwarded_source () =
  let st, e = fresh_engine () in
  Dts_isa.State.set_reg st ~cwp:0 1 5;
  let p2 = Dts_isa.State.phys ~nwindows:8 ~cwp:0 2 in
  let rr = { kind = K_int; ridx = 0 } in
  let producer =
    sop ~addr:0x1000 (alu Add 1 (Imm 1) 2)
      ~redirect:[ (Dts_isa.Storage.Int_reg p2, rr) ]
  in
  (* consumer reads r2 through the renaming register *)
  let consumer =
    sop ~addr:0x1004 (alu Add 2 (Imm 100) 3)
      ~subs:[ (Dts_isa.Storage.Int_reg p2, rr) ]
  in
  let b = block_of [ li_of [ (Op producer, 0) ]; li_of [ (Op consumer, 0) ] ] in
  Dts_vliw.Engine.enter_block e b;
  ignore (Dts_vliw.Engine.exec_li e b 0);
  ignore (Dts_vliw.Engine.exec_li e b 1);
  check_int "consumer read the renamed value" 106 (vis st 3)

(* ---- branch tags ---- *)

let branch ?(taken = true) ~addr ~target ~obs () =
  sop ~addr ~taken ~next:obs
    (Dts_isa.Instr.Branch { cond = E; target })

let test_correct_prediction_commits_gated_ops () =
  let st, e = fresh_engine () in
  (* icc: zero set -> be taken *)
  st.icc <- Dts_isa.State.make_icc ~n:false ~z:true ~v:false ~c:false;
  let b =
    block_of
      [
        li_of
          [
            (Op (branch ~addr:0x1000 ~target:0x3000 ~obs:0x3000 ()), 0);
            (Op (sop ~addr:0x3000 (alu Or 0 (Imm 7) 4)), 1);
          ];
      ]
  in
  Dts_vliw.Engine.enter_block e b;
  (match Dts_vliw.Engine.exec_li e b 0 with
  | R_block_end _, _ -> ()
  | _ -> Alcotest.fail "expected clean block end");
  check_int "gated op committed" 7 (vis st 4)

let test_mispredict_annuls_gated_ops () =
  let st, e = fresh_engine () in
  (* icc: zero clear -> be NOT taken, but recorded as taken *)
  st.icc <- 0;
  let b =
    block_of
      [
        li_of
          [
            (Op (sop ~addr:0x0ffc (alu Or 0 (Imm 1) 5)), 0);
            (Op (branch ~addr:0x1000 ~target:0x3000 ~obs:0x3000 ()), 0);
            (Op (sop ~addr:0x3000 (alu Or 0 (Imm 7) 4)), 1);
          ];
      ]
  in
  Dts_vliw.Engine.enter_block e b;
  (match Dts_vliw.Engine.exec_li e b 0 with
  | R_redirect { target }, _ -> check_int "actual fallthrough" 0x1004 target
  | _ -> Alcotest.fail "expected redirect");
  check_int "pre-branch op committed" 1 (vis st 5);
  check_int "gated op annulled" 0 (vis st 4)

(* ---- deferred exceptions ---- *)

let test_deferred_exception_via_copy () =
  let st, e = fresh_engine () in
  (* speculative misaligned load, fully renamed: executes without trap; the
     copy later raises the block exception *)
  Dts_isa.State.set_reg st ~cwp:0 1 0x1001;
  let p3 = Dts_isa.State.phys ~nwindows:8 ~cwp:0 3 in
  let rr = { kind = K_int; ridx = 0 } in
  let ld =
    sop ~addr:0x1000 ~mem:(0x1001, 4)
      (Dts_isa.Instr.Load { size = Lw; rs1 = 1; op2 = Imm 0; rd = 3 })
      ~redirect:[ (Dts_isa.Storage.Int_reg p3, rr) ]
  in
  let copy =
    Copy { c_moves = [ (rr, T_arch (Dts_isa.Storage.Int_reg p3)) ]; c_order = -1; c_from = 0 }
  in
  let b = block_of [ li_of [ (Op ld, 0) ]; li_of [ (copy, 0) ] ] in
  Dts_vliw.Engine.enter_block e b;
  (match Dts_vliw.Engine.exec_li e b 0 with
  | R_next, _ -> ()
  | _ -> Alcotest.fail "speculative fault must be deferred");
  (match Dts_vliw.Engine.exec_li e b 1 with
  | R_exn (E_trap (Dts_isa.Semantics.Misaligned _)), _ -> ()
  | _ -> Alcotest.fail "copy must surface the deferred trap");
  check_int "deferrals counted" 1 e.stats.deferred_exceptions

let test_unrenamed_trap_is_immediate () =
  let st, e = fresh_engine () in
  Dts_isa.State.set_reg st ~cwp:0 1 0x1002;
  let ld =
    sop ~addr:0x1000 ~mem:(0x1002, 4)
      (Dts_isa.Instr.Load { size = Lw; rs1 = 1; op2 = Imm 0; rd = 3 })
  in
  let b = block_of [ li_of [ (Op ld, 0) ] ] in
  Dts_vliw.Engine.enter_block e b;
  match Dts_vliw.Engine.exec_li e b 0 with
  | R_exn (E_trap (Dts_isa.Semantics.Misaligned _)), _ -> ()
  | _ -> Alcotest.fail "unrenamed fault must abort the block"

(* ---- checkpoint rollback ---- *)

let test_rollback_restores_registers_and_memory () =
  let st, e = fresh_engine () in
  Dts_isa.State.set_reg st ~cwp:0 1 0x5000;
  Dts_isa.State.set_reg st ~cwp:0 2 111;
  Dts_mem.Memory.write st.mem ~addr:0x5000 ~size:4 42;
  let store =
    sop ~addr:0x1000 ~mem:(0x5000, 4) ~order:0
      (Dts_isa.Instr.Store { size = Sw; rs = 2; rs1 = 1; op2 = Imm 0 })
  in
  let w = sop ~addr:0x1004 (alu Or 0 (Imm 99) 5) in
  let b = block_of [ li_of [ (Op store, 0); (Op w, 0) ] ] in
  Dts_vliw.Engine.enter_block e b;
  ignore (Dts_vliw.Engine.exec_li e b 0);
  check_int "store applied" 111 (Dts_mem.Memory.read st.mem ~addr:0x5000 ~size:4 ~signed:true);
  check_int "reg applied" 99 (vis st 5);
  Dts_vliw.Engine.rollback e;
  check_int "memory rolled back" 42
    (Dts_mem.Memory.read st.mem ~addr:0x5000 ~size:4 ~signed:true);
  check_int "registers rolled back" 0 (vis st 5)

(* ---- window-relative replay ---- *)

let test_window_shifted_replay () =
  let st, e = fresh_engine () in
  (* block built at cwp 0 writing visible r16 (%l0); replay at cwp 5 must
     write window 5's %l0, not window 0's *)
  let op = sop ~cwp:0 ~addr:0x1000 (alu Or 0 (Imm 77) 16) in
  let b = block_of ~entry_cwp:0 [ li_of [ (Op op, 0) ] ] in
  st.cwp <- 5;
  Dts_isa.State.set_reg st ~cwp:5 14 0;
  Dts_vliw.Engine.enter_block e b;
  ignore (Dts_vliw.Engine.exec_li e b 0);
  check_int "l0 of the current window" 77 (Dts_isa.State.get_reg st ~cwp:5 16);
  check_int "window 0's l0 untouched" 0 (Dts_isa.State.get_reg st ~cwp:0 16)

(* ---- aliasing detection ---- *)

let test_aliasing_store_then_hoisted_load () =
  let st, e = fresh_engine () in
  Dts_isa.State.set_reg st ~cwp:0 1 0x6000;
  (* program order: store (order 0) then load (order 1); scheduled with the
     load in an earlier long instruction — and at execution both touch the
     same address: violation *)
  let ld =
    sop ~addr:0x1004 ~mem:(0x6000, 4) ~order:1
      (Dts_isa.Instr.Load { size = Lw; rs1 = 1; op2 = Imm 0; rd = 3 })
  in
  let store =
    sop ~addr:0x1000 ~mem:(0x6000, 4) ~order:0
      (Dts_isa.Instr.Store { size = Sw; rs = 2; rs1 = 1; op2 = Imm 0 })
  in
  let b = block_of [ li_of [ (Op ld, 0) ]; li_of [ (Op store, 0) ] ] in
  Dts_vliw.Engine.enter_block e b;
  ignore (Dts_vliw.Engine.exec_li e b 0);
  (match Dts_vliw.Engine.exec_li e b 1 with
  | R_exn E_aliasing, _ -> ()
  | _ -> Alcotest.fail "expected aliasing exception");
  check_int "counted" 1 e.stats.aliasing_exceptions

let test_no_aliasing_when_disjoint () =
  let st, e = fresh_engine () in
  Dts_isa.State.set_reg st ~cwp:0 1 0x6000;
  Dts_isa.State.set_reg st ~cwp:0 4 0x7000;
  let ld =
    sop ~addr:0x1004 ~mem:(0x7000, 4) ~order:1
      (Dts_isa.Instr.Load { size = Lw; rs1 = 4; op2 = Imm 0; rd = 3 })
  in
  let store =
    sop ~addr:0x1000 ~mem:(0x6000, 4) ~order:0
      (Dts_isa.Instr.Store { size = Sw; rs = 2; rs1 = 1; op2 = Imm 0 })
  in
  let b = block_of [ li_of [ (Op ld, 0) ]; li_of [ (Op store, 0) ] ] in
  Dts_vliw.Engine.enter_block e b;
  (match Dts_vliw.Engine.exec_li e b 0 with R_next, _ -> () | _ -> Alcotest.fail "next");
  match Dts_vliw.Engine.exec_li e b 1 with
  | R_block_end _, _ -> ()
  | _ -> Alcotest.fail "no aliasing expected"

let test_in_order_same_address_ok () =
  let st, e = fresh_engine () in
  Dts_isa.State.set_reg st ~cwp:0 1 0x6000;
  (* store (order 0) in li0, load (order 1) in li1: order respected *)
  let store =
    sop ~addr:0x1000 ~mem:(0x6000, 4) ~order:0
      (Dts_isa.Instr.Store { size = Sw; rs = 2; rs1 = 1; op2 = Imm 0 })
  in
  let ld =
    sop ~addr:0x1004 ~mem:(0x6000, 4) ~order:1
      (Dts_isa.Instr.Load { size = Lw; rs1 = 1; op2 = Imm 0; rd = 3 })
  in
  Dts_isa.State.set_reg st ~cwp:0 2 123;
  let b = block_of [ li_of [ (Op store, 0) ]; li_of [ (Op ld, 0) ] ] in
  Dts_vliw.Engine.enter_block e b;
  ignore (Dts_vliw.Engine.exec_li e b 0);
  (match Dts_vliw.Engine.exec_li e b 1 with
  | R_block_end _, _ -> ()
  | _ -> Alcotest.fail "in-order pair must not trip the detector");
  check_int "load saw the store" 123 (vis st 3)

let suite =
  [
    Alcotest.test_case "parallel reads pre-state" `Quick
      test_parallel_reads_pre_state;
    Alcotest.test_case "renamed write + copy" `Quick test_renamed_write_and_copy;
    Alcotest.test_case "forwarded source" `Quick test_forwarded_source;
    Alcotest.test_case "correct prediction commits gated ops" `Quick
      test_correct_prediction_commits_gated_ops;
    Alcotest.test_case "mispredict annuls gated ops" `Quick
      test_mispredict_annuls_gated_ops;
    Alcotest.test_case "deferred exception via copy" `Quick
      test_deferred_exception_via_copy;
    Alcotest.test_case "unrenamed trap immediate" `Quick
      test_unrenamed_trap_is_immediate;
    Alcotest.test_case "rollback restores state" `Quick
      test_rollback_restores_registers_and_memory;
    Alcotest.test_case "window-shifted replay" `Quick test_window_shifted_replay;
    Alcotest.test_case "aliasing: hoisted load" `Quick
      test_aliasing_store_then_hoisted_load;
    Alcotest.test_case "aliasing: disjoint ok" `Quick test_no_aliasing_when_disjoint;
    Alcotest.test_case "aliasing: in-order ok" `Quick test_in_order_same_address_ok;
  ]
