(* Differential property suite for the flat-page memory substrate.

   The memory under test is the direct-mapped page directory over byte
   buffers with unaligned word primitives and a per-page watch bitmap — a
   representation chosen entirely for speed. This suite pins its observable
   semantics against a deliberately naive reference model (a sparse byte
   map): random interleavings of reads, writes, bulk loads and forks must
   agree byte-for-byte, including at the wraparound edge of the 32-bit
   space, and hook dispatch must fire exactly once per touched word on
   watched pages and nowhere else.

   Everything is driven by a fixed-seed LCG so failures replay exactly. *)

module Memory = Dts_mem.Memory

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- deterministic PRNG ---- *)

let rng = ref 0x2545F4914F6C

let rand n =
  (* Java's 48-bit LCG; the high bits are the good ones *)
  rng := ((!rng * 25214903917) + 11) land 0xFFFFFFFFFFFF;
  !rng lsr 16 mod n

let reset_rng seed = rng := seed

(* ---- reference model: sparse byte map over the 32-bit space ---- *)

module Model = struct
  type t = (int, int) Hashtbl.t (* byte address -> byte value *)

  let create () : t = Hashtbl.create 1024
  let mask a = a land 0xFFFFFFFF
  let get t a = Option.value (Hashtbl.find_opt t (mask a)) ~default:0
  let set t a v = Hashtbl.replace t (mask a) (v land 0xFF)

  let read t ~addr ~size ~signed =
    let v = ref 0 in
    for i = 0 to size - 1 do
      v := (!v lsl 8) lor get t (addr + i)
    done;
    (* the memory keeps 32-bit values sign-extended regardless of
       [signed]; narrower reads extend only when asked *)
    if signed || size = 4 then
      let bits = size * 8 in
      (!v lsl (Sys.int_size - bits)) asr (Sys.int_size - bits)
    else !v

  let write t ~addr ~size v =
    for i = 0 to size - 1 do
      set t (addr + i) (v asr ((size - 1 - i) * 8))
    done

  let load_bytes t ~addr s =
    String.iteri (fun i c -> set t (addr + i) (Char.code c)) s

  let copy : t -> t = Hashtbl.copy

  (* lowest differing byte address between two models *)
  let first_difference a b =
    let keys = Hashtbl.create 64 in
    Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) a;
    Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) b;
    Hashtbl.fold
      (fun k () best ->
        if get a k <> get b k then
          match best with Some b0 when b0 < k -> best | _ -> Some k
        else best)
      keys None
end

(* address pools: low pages, page-straddling neighbourhoods, the top of
   the address space, and arbitrary 32-bit addresses *)
let random_addr () =
  match rand 4 with
  | 0 -> rand 0x4000
  | 1 -> 0x1000 - 8 + rand 16 (* around a page boundary *)
  | 2 -> 0xFFFFF000 + rand 0x1000 (* top page, includes 0xFFFFFFFC *)
  | _ -> rand 0x40000000 * 4

let random_sized_addr size =
  let a = random_addr () land 0xFFFFFFFF in
  (* align to the access, keeping a 4-byte access inside the space *)
  a land lnot (size - 1)

(* ---- random interleavings vs the model ---- *)

let test_random_ops () =
  reset_rng 0x5EED0001;
  let m = Memory.create () in
  let r = Model.create () in
  for _ = 1 to 8000 do
    match rand 10 with
    | 0 | 1 | 2 | 3 ->
      let size = [| 1; 2; 4 |].(rand 3) in
      let addr = random_sized_addr size in
      let v = rand 0x7FFFFFFF - 0x3FFFFFFF in
      Memory.write m ~addr ~size v;
      Model.write r ~addr ~size v
    | 4 | 5 | 6 ->
      let size = [| 1; 2; 4 |].(rand 3) in
      let addr = random_sized_addr size in
      let signed = rand 2 = 0 in
      let got = Memory.read m ~addr ~size ~signed in
      let want = Model.read r ~addr ~size ~signed in
      if got <> want then
        Alcotest.failf "read addr=%#x size=%d signed=%b: got %#x want %#x"
          addr size signed got want
    | 7 | 8 ->
      let len = rand 10 in
      let addr = random_sized_addr 1 in
      let addr = if addr > 0xFFFFFFFF - len then 0xFFFFFFF0 - len else addr in
      let s = String.init len (fun _ -> Char.chr (rand 256)) in
      Memory.load_bytes m ~addr s;
      Model.load_bytes r ~addr s
    | _ ->
      (* fast word accessors agree with the generic path *)
      let addr = random_sized_addr 4 in
      check_int "read_u32 vs model"
        (Model.read r ~addr ~size:4 ~signed:false land 0xFFFFFFFF)
        (Memory.read_u32 m addr)
  done;
  (* final sweep: every byte the model knows about, plus untouched probes *)
  Hashtbl.iter
    (fun a _ ->
      let got = Memory.read m ~addr:a ~size:1 ~signed:false in
      let want = Model.get r a in
      if got <> want then
        Alcotest.failf "sweep byte %#x: got %#x want %#x" a got want)
    r;
  for _ = 1 to 200 do
    let a = random_sized_addr 1 in
    if not (Hashtbl.mem r a) then
      check_int "untouched byte reads zero" 0
        (Memory.read m ~addr:a ~size:1 ~signed:false)
  done

(* ---- fork divergence: copy, equal, first_difference ---- *)

let test_copy_divergence () =
  reset_rng 0x5EED0002;
  let m = Memory.create () in
  let r = Model.create () in
  for _ = 1 to 400 do
    let size = [| 1; 2; 4 |].(rand 3) in
    let addr = random_sized_addr size in
    let v = rand 1000000 in
    Memory.write m ~addr ~size v;
    Model.write r ~addr ~size v
  done;
  let m2 = Memory.copy m in
  let r2 = Model.copy r in
  check_bool "fork point equal" true (Memory.equal m m2);
  Alcotest.(check (option int))
    "fork point no difference" None
    (Memory.first_difference m m2);
  (* diverge both sides independently *)
  for _ = 1 to 200 do
    let size = [| 1; 2; 4 |].(rand 3) in
    let addr = random_sized_addr size in
    let v = rand 1000000 in
    if rand 2 = 0 then begin
      Memory.write m ~addr ~size v;
      Model.write r ~addr ~size v
    end
    else begin
      Memory.write m2 ~addr ~size v;
      Model.write r2 ~addr ~size v
    end
  done;
  Alcotest.(check (option int))
    "first_difference matches the model"
    (Model.first_difference r r2)
    (Memory.first_difference m m2);
  check_bool "equal matches the model"
    (Model.first_difference r r2 = None)
    (Memory.equal m m2);
  (* each side still reads per its own model *)
  for _ = 1 to 200 do
    let addr = random_sized_addr 4 in
    check_int "side A" (Model.read r ~addr ~size:4 ~signed:true)
      (Memory.read m ~addr ~size:4 ~signed:true);
    check_int "side B" (Model.read r2 ~addr ~size:4 ~signed:true)
      (Memory.read m2 ~addr ~size:4 ~signed:true)
  done

(* ---- wraparound at the top of the 32-bit space ---- *)

let test_wraparound_aliases () =
  reset_rng 0x5EED0003;
  let m = Memory.create () in
  let r = Model.create () in
  for _ = 1 to 500 do
    let size = [| 1; 2; 4 |].(rand 3) in
    let base = 0xFFFFFFF0 + (rand 16 land lnot (size - 1)) in
    let base = min base (0x100000000 - size) in
    (* present the address with or without bits above bit 31 *)
    let alias = if rand 2 = 0 then base else base + 0x100000000 in
    let v = rand 0x7FFFFFFF in
    if rand 2 = 0 then begin
      Memory.write m ~addr:alias ~size v;
      Model.write r ~addr:base ~size v
    end
    else begin
      let got = Memory.read m ~addr:alias ~size ~signed:false in
      let want = Model.read r ~addr:base ~size ~signed:false in
      if got <> want then
        Alcotest.failf "alias read %#x (base %#x) size %d: got %#x want %#x"
          alias base size got want
    end
  done;
  (* address 0 must never see wraparound bleed *)
  check_int "address 0 clean" 0 (Memory.read_u32 m 0)

(* ---- hook dispatch: exactly once per touched word, watched pages only ---- *)

let test_watched_hook_counts () =
  reset_rng 0x5EED0004;
  let m = Memory.create () in
  let counts = Hashtbl.create 64 in
  let bump w = Hashtbl.replace counts w (1 + Option.value (Hashtbl.find_opt counts w) ~default:0) in
  Memory.add_watched_write_hook m (fun a -> bump (a land lnot 3));
  (* watch pages 2 and 5; everything else must stay silent *)
  Memory.watch m 0x2000;
  Memory.watch m 0x5000;
  let expected = Hashtbl.create 64 in
  let expect w = Hashtbl.replace expected w (1 + Option.value (Hashtbl.find_opt expected w) ~default:0) in
  let watched a = a lsr 12 = 2 || a lsr 12 = 5 in
  for _ = 1 to 2000 do
    match rand 3 with
    | 0 | 1 ->
      let size = [| 1; 2; 4 |].(rand 3) in
      let addr = (rand 0x8000) land lnot (size - 1) in
      Memory.write m ~addr ~size (rand 1000);
      if watched addr then expect (addr land lnot 3)
    | _ ->
      let len = rand 10 in
      let addr = rand 0x8000 in
      Memory.load_bytes m ~addr (String.make len 'q');
      if len > 0 then begin
        let w = ref (addr land lnot 3) in
        let last = (addr + len - 1) land lnot 3 in
        while !w <= last do
          if watched !w then expect !w;
          w := !w + 4
        done
      end
  done;
  check_int "words notified" (Hashtbl.length expected) (Hashtbl.length counts);
  Hashtbl.iter
    (fun w n ->
      let got = Option.value (Hashtbl.find_opt counts w) ~default:0 in
      if got <> n then
        Alcotest.failf "word %#x: %d notifications, expected %d" w got n)
    expected

(* ---- dirty_equal must agree with equal from a common baseline ---- *)

let test_dirty_equal_consistency () =
  reset_rng 0x5EED0005;
  for _round = 1 to 50 do
    let a = Memory.create () and b = Memory.create () in
    (* common prefix, then a synchronised baseline *)
    for _ = 1 to 50 do
      let size = [| 1; 2; 4 |].(rand 3) in
      let addr = random_sized_addr size in
      let v = rand 1000000 in
      Memory.write a ~addr ~size v;
      Memory.write b ~addr ~size v
    done;
    Memory.dirty_clear a;
    Memory.dirty_clear b;
    (* divergent suffix: half the rounds stay identical, half fork *)
    let fork = rand 2 = 0 in
    for _ = 1 to 30 do
      let size = [| 1; 2; 4 |].(rand 3) in
      let addr = random_sized_addr size in
      let v = rand 1000000 in
      Memory.write a ~addr ~size v;
      let v' = if fork && rand 4 = 0 then v + 1 else v in
      Memory.write b ~addr ~size v'
    done;
    check_bool "dirty_equal iff equal" (Memory.equal a b)
      (Memory.dirty_equal a b)
  done

let suite =
  [
    Alcotest.test_case "random ops vs byte-map model" `Quick test_random_ops;
    Alcotest.test_case "copy divergence vs model" `Quick test_copy_divergence;
    Alcotest.test_case "wraparound aliases vs model" `Quick
      test_wraparound_aliases;
    Alcotest.test_case "watched hook counts per word" `Quick
      test_watched_hook_counts;
    Alcotest.test_case "dirty_equal agrees with equal" `Quick
      test_dirty_equal_consistency;
  ]
