(* Unit tests for the domain worker pool: ordering, empty input, exception
   propagation and the jobs = 1 sequential fallback. *)

open Dts_parallel

let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

let with_pool4 f = Pool.with_pool ~jobs:4 f

let test_ordering () =
  with_pool4 (fun pool ->
      (* items of very uneven cost: results must still come back in
         submission order *)
      let xs = List.init 200 (fun i -> i) in
      let f i =
        let spin = if i mod 7 = 0 then 20_000 else 10 in
        let acc = ref 0 in
        for _ = 1 to spin do
          acc := !acc + i
        done;
        ignore !acc;
        i * i
      in
      check_ints "squares in order" (List.map (fun i -> i * i) xs)
        (Pool.map pool f xs))

let test_order_repeatable () =
  with_pool4 (fun pool ->
      let xs = List.init 64 (fun i -> i) in
      let a = Pool.map pool (fun i -> 3 * i) xs in
      let b = Pool.map pool (fun i -> 3 * i) xs in
      check_ints "two batches agree" a b)

let test_empty () =
  with_pool4 (fun pool ->
      check_ints "empty" [] (Pool.map pool (fun i -> i) []);
      check_ints "singleton" [ 9 ] (Pool.map pool (fun i -> i * i) [ 3 ]))

exception Boom of int

let test_exception () =
  with_pool4 (fun pool ->
      (* several items fail; the lowest-indexed failure must win *)
      match
        Pool.map pool
          (fun i -> if i mod 5 = 2 then raise (Boom i) else i)
          (List.init 40 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> check_int "lowest failing index" 2 i);
  (* the pool stays usable after a failed batch *)
  with_pool4 (fun pool ->
      (match Pool.map pool (fun i -> raise (Boom i)) [ 7; 8 ] with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> check_int "first item" 7 i);
      check_ints "pool survives" [ 2; 4 ] (Pool.map pool (fun i -> 2 * i) [ 1; 2 ]))

let test_sequential_fallback () =
  Pool.with_pool ~jobs:1 (fun pool ->
      check_int "jobs clamps to 1" 1 (Pool.jobs pool);
      check_ints "sequential map" [ 1; 4; 9 ]
        (Pool.map pool (fun i -> i * i) [ 1; 2; 3 ]);
      match Pool.map pool (fun i -> raise (Boom i)) [ 5 ] with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> check_int "sequential raise" 5 i)

(* The property the experiments layer builds on: fanning a figure's runs
   over a pool changes nothing about what it renders. *)
let test_experiments_deterministic () =
  let seq =
    (Dts_experiments.Experiments.table3 ~budget:400 ())
      .Dts_experiments.Experiments.render ()
  in
  with_pool4 (fun pool ->
      let par =
        (Dts_experiments.Experiments.table3 ~pool ~budget:400 ())
          .Dts_experiments.Experiments.render ()
      in
      Alcotest.(check string) "table3 renders identically on a pool" seq par)

let test_resolve_jobs () =
  check_int "negative clamps" 1 (Pool.resolve_jobs (-3));
  check_int "identity" 6 (Pool.resolve_jobs 6);
  check_int "zero means recommended" (Pool.recommended ()) (Pool.resolve_jobs 0)

let suite =
  [
    Alcotest.test_case "ordering under uneven load" `Quick test_ordering;
    Alcotest.test_case "repeatable across batches" `Quick test_order_repeatable;
    Alcotest.test_case "empty and singleton" `Quick test_empty;
    Alcotest.test_case "exception propagation" `Quick test_exception;
    Alcotest.test_case "jobs=1 sequential fallback" `Quick test_sequential_fallback;
    Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
    Alcotest.test_case "experiments render deterministically" `Quick
      test_experiments_deterministic;
  ]
