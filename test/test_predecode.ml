(* The pre-decoded instruction store: hit/decode accounting, invalidation on
   overlapping writes, and end-to-end self-modifying code on the golden
   machine (a store over an already-executed code address must be fetched as
   the new instruction). *)

open Dts_isa

let check_int = Alcotest.(check int)

let add_imm ~rs1 ~imm ~rd =
  Instr.Alu { op = Instr.Add; cc = false; rs1; op2 = Instr.Imm imm; rd }

let test_fetch_caches () =
  let mem = Dts_mem.Memory.create () in
  let pd = Predecode.create mem in
  let a = 0x1000 in
  Dts_mem.Memory.write_u32 mem a (Encode.encode ~pc:a (add_imm ~rs1:8 ~imm:1 ~rd:8));
  let i1 = Predecode.fetch pd ~addr:a in
  let i2 = Predecode.fetch pd ~addr:a in
  Alcotest.check Alcotest.bool "same decode" true (Instr.equal i1 i2);
  check_int "one decode" 1 (Predecode.decodes pd);
  check_int "one hit" 1 (Predecode.hits pd)

let test_word_write_invalidates () =
  let mem = Dts_mem.Memory.create () in
  let pd = Predecode.create mem in
  let a = 0x1000 in
  Dts_mem.Memory.write_u32 mem a (Encode.encode ~pc:a (add_imm ~rs1:8 ~imm:1 ~rd:8));
  ignore (Predecode.fetch pd ~addr:a);
  (* overwrite through the ordinary store path *)
  Dts_mem.Memory.write mem ~addr:a ~size:4
    (Encode.encode ~pc:a (add_imm ~rs1:8 ~imm:42 ~rd:8));
  check_int "invalidated" 1 (Predecode.invalidations pd);
  (match Predecode.fetch pd ~addr:a with
  | Instr.Alu { op2 = Instr.Imm 42; _ } -> ()
  | i -> Alcotest.failf "stale decode survived: %s" (Disasm.to_string i));
  check_int "re-decoded" 2 (Predecode.decodes pd)

let test_byte_write_invalidates_containing_word () =
  let mem = Dts_mem.Memory.create () in
  let pd = Predecode.create mem in
  let a = 0x2000 in
  Dts_mem.Memory.write_u32 mem a (Encode.encode ~pc:a (add_imm ~rs1:8 ~imm:1 ~rd:8));
  ignore (Predecode.fetch pd ~addr:a);
  (* a one-byte store into the middle of the cached word *)
  Dts_mem.Memory.write mem ~addr:(a + 2) ~size:1 0x7F;
  check_int "byte store invalidates its word" 1 (Predecode.invalidations pd)

let test_unrelated_write_is_free () =
  let mem = Dts_mem.Memory.create () in
  let pd = Predecode.create mem in
  let a = 0x1000 in
  Dts_mem.Memory.write_u32 mem a (Encode.encode ~pc:a (add_imm ~rs1:8 ~imm:1 ~rd:8));
  ignore (Predecode.fetch pd ~addr:a);
  (* data stores elsewhere (even in the same page) invalidate nothing *)
  Dts_mem.Memory.write mem ~addr:0x1abc ~size:4 0xdeadbeef;
  Dts_mem.Memory.write mem ~addr:0x9000 ~size:2 7;
  check_int "no invalidations" 0 (Predecode.invalidations pd);
  ignore (Predecode.fetch pd ~addr:a);
  check_int "still cached" 1 (Predecode.hits pd)

(* End-to-end: a program patches one of its own instructions after having
   executed it once. The first pass executes [add %o0, 1, %o0] (priming the
   decode cache); the store then rewrites that word to [add %o0, 42, %o0];
   the second pass must fetch the new instruction, leaving %o0 = 1 + 42. *)
let test_self_modifying_golden () =
  let patched = Encode.encode ~pc:0 (add_imm ~rs1:8 ~imm:42 ~rd:8) in
  let src =
    Printf.sprintf
      {|
start:  mov   0, %%o5
        set   %d, %%o1
        set   target, %%o2
loop:
target: add   %%o0, 1, %%o0
        cmp   %%o5, 0
        bne   done
        st    %%o1, [%%o2]
        mov   1, %%o5
        ba    loop
done:   halt
|}
      patched
  in
  let program = Dts_asm.Assembler.assemble src in
  (* the ALU encoding is position-independent; double-check against the
     assembled target address *)
  let taddr = Dts_asm.Program.symbol program "target" in
  check_int "encoding is pc-independent" patched
    (Encode.encode ~pc:taddr (add_imm ~rs1:8 ~imm:42 ~rd:8));
  let st = Dts_asm.Program.boot program in
  let g = Dts_golden.Golden.of_state st in
  ignore (Dts_golden.Golden.run g);
  check_int "first pass added 1, second pass added 42" 43
    (State.get_reg st ~cwp:st.cwp 8);
  Alcotest.check Alcotest.bool "the patch invalidated a cached entry" true
    (Predecode.invalidations st.predecode >= 1)

(* Memory.copy must not leak consumers between the original and the copy:
   predecode stores register reset hooks on their memory, and copying a
   memory with a live predecode used to silently drop/alias those hooks.
   The copy gets fresh (empty) hook lists, and the source's caches are
   reset at copy time so neither side can serve stale decodes. *)
let test_memory_copy_resets_source_predecode () =
  let mem = Dts_mem.Memory.create () in
  let pd = Predecode.create mem in
  let a = 0x3000 in
  Dts_mem.Memory.write_u32 mem a (Encode.encode ~pc:a (add_imm ~rs1:8 ~imm:1 ~rd:8));
  ignore (Predecode.fetch pd ~addr:a);
  check_int "primed" 1 (Predecode.decodes pd);
  let snapshot = Dts_mem.Memory.copy mem in
  (* the copy fired the reset hooks: the next fetch re-decodes instead of
     trusting state that the snapshot no longer observes *)
  ignore (Predecode.fetch pd ~addr:a);
  check_int "re-decoded after copy" 2 (Predecode.decodes pd);
  (* and the copy's hook lists are independent: writes into the snapshot
     never touch the original's predecode *)
  Dts_mem.Memory.write snapshot ~addr:a ~size:4
    (Encode.encode ~pc:a (add_imm ~rs1:8 ~imm:9 ~rd:8));
  let inv_before = Predecode.invalidations pd in
  Dts_mem.Memory.write mem ~addr:a ~size:4
    (Encode.encode ~pc:a (add_imm ~rs1:8 ~imm:7 ~rd:8));
  check_int "original still sees its own writes" (inv_before + 1)
    (Predecode.invalidations pd);
  (match Predecode.fetch pd ~addr:a with
  | Instr.Alu { op2 = Instr.Imm 7; _ } -> ()
  | i -> Alcotest.failf "copy's write leaked into the source: %s"
           (Disasm.to_string i))

let test_memory_copy_hooks_do_not_fire_on_copy_writes () =
  let mem = Dts_mem.Memory.create () in
  let pd = Predecode.create mem in
  let a = 0x4000 in
  Dts_mem.Memory.write_u32 mem a (Encode.encode ~pc:a (add_imm ~rs1:8 ~imm:1 ~rd:8));
  ignore (Predecode.fetch pd ~addr:a);
  let snapshot = Dts_mem.Memory.copy mem in
  let inv = Predecode.invalidations pd in
  Dts_mem.Memory.write snapshot ~addr:a ~size:1 0xFF;
  check_int "snapshot writes invalidate nothing in the source" inv
    (Predecode.invalidations pd);
  check_int "snapshot kept the original bytes elsewhere"
    (Dts_mem.Memory.read mem ~addr:(a + 4) ~size:4 ~signed:false)
    (Dts_mem.Memory.read snapshot ~addr:(a + 4) ~size:4 ~signed:false)

let suite =
  [
    Alcotest.test_case "fetch caches decodes" `Quick test_fetch_caches;
    Alcotest.test_case "word write invalidates" `Quick test_word_write_invalidates;
    Alcotest.test_case "byte write invalidates containing word" `Quick
      test_byte_write_invalidates_containing_word;
    Alcotest.test_case "unrelated writes invalidate nothing" `Quick
      test_unrelated_write_is_free;
    Alcotest.test_case "self-modifying code on golden" `Quick
      test_self_modifying_golden;
    Alcotest.test_case "memory copy resets source predecode" `Quick
      test_memory_copy_resets_source_predecode;
    Alcotest.test_case "copy writes never reach source hooks" `Quick
      test_memory_copy_hooks_do_not_fire_on_copy_writes;
  ]
