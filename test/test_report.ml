(* Report rendering tests. *)

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_table_alignment () =
  let out =
    Dts_report.Report.table ~headers:[ "name"; "x" ]
      [ [ "a"; "1" ]; [ "longer"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (* header, rule, two rows, trailing empty *)
  Alcotest.(check int) "line count" 5 (List.length lines);
  (* all non-empty lines share a width *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  check_bool "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_title () =
  let out = Dts_report.Report.table ~title:"T" ~headers:[ "h" ] [ [ "v" ] ] in
  check_bool "title first" true (String.length out > 0 && out.[0] = 'T')

let test_csv () =
  check_str "csv"
    "a,b\n1,2\n"
    (Dts_report.Report.csv ~headers:[ "a"; "b" ] [ [ "1"; "2" ] ])

(* RFC 4180: commas, quotes and newlines must be quoted, quotes doubled *)
let test_csv_escaping () =
  check_str "adversarial cells"
    "label,\"a,b\"\n\"say \"\"hi\"\"\",\"line1\nline2\"\n\"\r\",plain\n"
    (Dts_report.Report.csv
       ~headers:[ "label"; "a,b" ]
       [ [ "say \"hi\""; "line1\nline2" ]; [ "\r"; "plain" ] ])

let test_series_table_ragged () =
  Alcotest.check_raises "ragged series raises with the label"
    (Invalid_argument
       "Report.series_table: series \"short\" has 1 values for 2 x values")
    (fun () ->
      ignore
        (Dts_report.Report.series_table ~x_label:"x" ~x_values:[ "a"; "b" ]
           [ ("ok", [ "1"; "2" ]); ("short", [ "1" ]) ]))

let test_series_table () =
  let out =
    Dts_report.Report.series_table ~x_label:"bench" ~x_values:[ "w1"; "w2" ]
      [ ("s1", [ "1.0"; "2.0" ]); ("s2", [ "3.0"; "4.0" ]) ]
  in
  check_bool "contains series" true (contains out "s1" && contains out "s2");
  check_bool "rows by x" true (contains out "w1" && contains out "w2")

let test_formatters () =
  check_str "f2" "1.23" (Dts_report.Report.f2 1.2345);
  check_str "f1" "1.2" (Dts_report.Report.f1 1.19);
  check_str "pct" "50.0%" (Dts_report.Report.pct 0.5)

let test_experiments_registry () =
  check_bool "all experiments registered" true
    (List.for_all
       (fun n -> List.mem_assoc n Dts_experiments.Experiments.by_name)
       [ "table1"; "table2"; "fig5a"; "fig5"; "fig6"; "fig7"; "fig8";
         "table3"; "fig9"; "ablation"; "all" ])

let test_static_tables_render () =
  let t1 = (Dts_experiments.Experiments.table1 ()).render () in
  let t2 = (Dts_experiments.Experiments.table2 ()).render () in
  check_bool "table1 mentions the pipeline" true (contains t1 "4-stage");
  check_bool "table2 lists all benchmarks" true
    (List.for_all (fun (w : Dts_workloads.Workloads.t) -> contains t2 w.name)
       Dts_workloads.Workloads.all)

let suite =
  [
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "table title" `Quick test_table_title;
    Alcotest.test_case "csv" `Quick test_csv;
    Alcotest.test_case "csv RFC 4180 escaping" `Quick test_csv_escaping;
    Alcotest.test_case "series table ragged input" `Quick
      test_series_table_ragged;
    Alcotest.test_case "series table" `Quick test_series_table;
    Alcotest.test_case "formatters" `Quick test_formatters;
    Alcotest.test_case "experiments registry" `Quick test_experiments_registry;
    Alcotest.test_case "static tables render" `Quick test_static_tables_render;
  ]
