(* Primary Processor timing-model tests (Table 1): base CPI, not-taken
   branch bubbles, load-use bubbles, cache miss stalls and trap service. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build ?(icache = Dts_mem.Cache.perfect ()) ?(dcache = Dts_mem.Cache.perfect ())
    src =
  let program = Dts_asm.Assembler.assemble src in
  let st = Dts_asm.Program.boot program in
  (Dts_primary.Primary.create ~icache ~dcache st, st)

let run_all p =
  let cycles = ref 0 and retired = ref 0 in
  (try
     while true do
       let r = Dts_primary.Primary.step p in
       cycles := !cycles + r.Dts_primary.Primary.cycles;
       incr retired
     done
   with Dts_primary.Primary.Halted -> ());
  (!retired, !cycles)

let test_straight_line_cpi_1 () =
  let p, _ =
    build {|
start:  mov 1, %o0
        mov 2, %o1
        add %o0, %o1, %o2
        xor %o2, 3, %o3
        halt
|}
  in
  let retired, cycles = run_all p in
  check_int "retired" 4 retired;
  check_int "one cycle each" 4 cycles

let test_not_taken_branch_bubble () =
  let p, _ =
    build
      {|
start:  cmp %g0, 1
        be  nowhere        ! not taken: 3-cycle bubble
        mov 1, %o0
        halt
nowhere: halt
|}
  in
  let _, cycles = run_all p in
  (* cmp(1) + be(1+3) + mov(1) = 6 *)
  check_int "bubble charged" 6 cycles

let test_taken_branch_free () =
  let p, _ =
    build {|
start:  cmp %g0, 0
        be  target
        halt
target: mov 1, %o0
        halt
|}
  in
  let _, cycles = run_all p in
  (* cmp(1) + be taken(1) + mov(1) = 3 *)
  check_int "taken branch costs 1" 3 cycles

let test_load_use_bubble () =
  let p, _ =
    build
      {|
        .data
v:      .word 42
        .text
start:  set v, %o0
        ld  [%o0], %o1
        add %o1, 1, %o2    ! uses the loaded value: +1 bubble
        halt
|}
  in
  let _, cycles = run_all p in
  (* set = 2 instrs (2) + ld (1) + add (1+1) = 5 *)
  check_int "load-use bubble" 5 cycles

let test_load_no_use_no_bubble () =
  let p, _ =
    build
      {|
        .data
v:      .word 42
        .text
start:  set v, %o0
        ld  [%o0], %o1
        add %o3, 1, %o2    ! independent of the load
        halt
|}
  in
  let _, cycles = run_all p in
  check_int "no bubble" 4 cycles

let test_icache_miss_penalty () =
  let icache =
    Dts_mem.Cache.create ~size_bytes:64 ~line_bytes:32 ~assoc:1 ~miss_penalty:8
  in
  let p, _ = build ~icache {|
start:  mov 1, %o0
        mov 2, %o1
        halt
|} in
  let _, cycles = run_all p in
  (* both instructions in one 32B line: one cold miss *)
  check_int "one cold miss" (2 + 8) cycles

let test_dcache_miss_penalty () =
  let dcache =
    Dts_mem.Cache.create ~size_bytes:64 ~line_bytes:32 ~assoc:1 ~miss_penalty:8
  in
  let p, _ =
    build ~dcache
      {|
        .data
v:      .word 1
        .text
start:  set v, %o0
        ld  [%o0], %o1      ! cold miss
        ld  [%o0], %o2      ! hit
        halt
|}
  in
  let _, cycles = run_all p in
  (* set(2) + ld(1+8) + ld(1, but load-use? second ld reads %o0, not %o1: no) *)
  check_int "one dcache miss" 12 cycles

let test_trap_service_charged () =
  (* nwindows = 32 at boot; drive saves deep enough to overflow *)
  let src =
    "start:  set 100, %l1\n"
    ^ String.concat ""
        (List.init 31 (fun _ -> "        save %sp, -64, %sp\n"))
    ^ String.concat ""
        (List.init 31 (fun _ -> "        restore\n"))
    ^ "        halt\n"
  in
  let p, st = build src in
  let retired, cycles = run_all p in
  check_bool "trap serviced" true (st.traps > 0);
  check_bool "trap cycles charged" true (cycles > retired)

let test_retired_observations () =
  let p, _ =
    build
      {|
        .data
v:      .word 7
        .text
start:  set v, %o0
        ld  [%o0], %o1
        cmp %o1, 7
        be  out
        halt
out:    halt
|}
  in
  let seen = ref [] in
  (try
     while true do
       seen := Dts_primary.Primary.step p :: !seen
     done
   with Dts_primary.Primary.Halted -> ());
  let seen = List.rev !seen in
  let ld = List.nth seen 2 in
  check_bool "load observed address" true
    (match ld.Dts_primary.Primary.mem with Some (_, 4) -> true | _ -> false);
  let br = List.nth seen 4 in
  check_bool "branch observed taken" true br.Dts_primary.Primary.taken;
  check_bool "branch target recorded" true
    (br.Dts_primary.Primary.next_pc <> br.addr + 4)

let suite =
  [
    Alcotest.test_case "straight-line CPI 1" `Quick test_straight_line_cpi_1;
    Alcotest.test_case "not-taken branch bubble" `Quick
      test_not_taken_branch_bubble;
    Alcotest.test_case "taken branch free" `Quick test_taken_branch_free;
    Alcotest.test_case "load-use bubble" `Quick test_load_use_bubble;
    Alcotest.test_case "independent after load" `Quick test_load_no_use_no_bubble;
    Alcotest.test_case "icache miss penalty" `Quick test_icache_miss_penalty;
    Alcotest.test_case "dcache miss penalty" `Quick test_dcache_miss_penalty;
    Alcotest.test_case "trap service charged" `Quick test_trap_service_charged;
    Alcotest.test_case "retired observations" `Quick test_retired_observations;
  ]
