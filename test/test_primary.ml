(* Primary Processor timing-model tests (Table 1): base CPI, not-taken
   branch bubbles, load-use bubbles, cache miss stalls and trap service. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build ?(icache = Dts_mem.Cache.perfect ()) ?(dcache = Dts_mem.Cache.perfect ())
    src =
  let program = Dts_asm.Assembler.assemble src in
  let st = Dts_asm.Program.boot program in
  (Dts_primary.Primary.create ~icache ~dcache st, st)

let run_all p =
  let cycles = ref 0 and retired = ref 0 in
  (try
     while true do
       let r = Dts_primary.Primary.step p in
       cycles := !cycles + r.Dts_primary.Primary.cycles;
       incr retired
     done
   with Dts_primary.Primary.Halted -> ());
  (!retired, !cycles)

let test_straight_line_cpi_1 () =
  let p, _ =
    build {|
start:  mov 1, %o0
        mov 2, %o1
        add %o0, %o1, %o2
        xor %o2, 3, %o3
        halt
|}
  in
  let retired, cycles = run_all p in
  check_int "retired" 4 retired;
  check_int "one cycle each" 4 cycles

let test_not_taken_branch_bubble () =
  let p, _ =
    build
      {|
start:  cmp %g0, 1
        be  nowhere        ! not taken: 3-cycle bubble
        mov 1, %o0
        halt
nowhere: halt
|}
  in
  let _, cycles = run_all p in
  (* cmp(1) + be(1+3) + mov(1) = 6 *)
  check_int "bubble charged" 6 cycles

let test_taken_branch_free () =
  let p, _ =
    build {|
start:  cmp %g0, 0
        be  target
        halt
target: mov 1, %o0
        halt
|}
  in
  let _, cycles = run_all p in
  (* cmp(1) + be taken(1) + mov(1) = 3 *)
  check_int "taken branch costs 1" 3 cycles

let test_load_use_bubble () =
  let p, _ =
    build
      {|
        .data
v:      .word 42
        .text
start:  set v, %o0
        ld  [%o0], %o1
        add %o1, 1, %o2    ! uses the loaded value: +1 bubble
        halt
|}
  in
  let _, cycles = run_all p in
  (* set = 2 instrs (2) + ld (1) + add (1+1) = 5 *)
  check_int "load-use bubble" 5 cycles

let test_load_no_use_no_bubble () =
  let p, _ =
    build
      {|
        .data
v:      .word 42
        .text
start:  set v, %o0
        ld  [%o0], %o1
        add %o3, 1, %o2    ! independent of the load
        halt
|}
  in
  let _, cycles = run_all p in
  check_int "no bubble" 4 cycles

let test_icache_miss_penalty () =
  let icache =
    Dts_mem.Cache.create ~size_bytes:64 ~line_bytes:32 ~assoc:1 ~miss_penalty:8
  in
  let p, _ = build ~icache {|
start:  mov 1, %o0
        mov 2, %o1
        halt
|} in
  let _, cycles = run_all p in
  (* both instructions in one 32B line: one cold miss *)
  check_int "one cold miss" (2 + 8) cycles

let test_dcache_miss_penalty () =
  let dcache =
    Dts_mem.Cache.create ~size_bytes:64 ~line_bytes:32 ~assoc:1 ~miss_penalty:8
  in
  let p, _ =
    build ~dcache
      {|
        .data
v:      .word 1
        .text
start:  set v, %o0
        ld  [%o0], %o1      ! cold miss
        ld  [%o0], %o2      ! hit
        halt
|}
  in
  let _, cycles = run_all p in
  (* set(2) + ld(1+8) + ld(1, but load-use? second ld reads %o0, not %o1: no) *)
  check_int "one dcache miss" 12 cycles

let test_trap_service_charged () =
  (* nwindows = 32 at boot; drive saves deep enough to overflow *)
  let src =
    "start:  set 100, %l1\n"
    ^ String.concat ""
        (List.init 31 (fun _ -> "        save %sp, -64, %sp\n"))
    ^ String.concat ""
        (List.init 31 (fun _ -> "        restore\n"))
    ^ "        halt\n"
  in
  let p, st = build src in
  let retired, cycles = run_all p in
  check_bool "trap serviced" true (st.traps > 0);
  check_bool "trap cycles charged" true (cycles > retired)

let test_retired_observations () =
  let p, _ =
    build
      {|
        .data
v:      .word 7
        .text
start:  set v, %o0
        ld  [%o0], %o1
        cmp %o1, 7
        be  out
        halt
out:    halt
|}
  in
  let seen = ref [] in
  (try
     while true do
       seen := Dts_primary.Primary.step p :: !seen
     done
   with Dts_primary.Primary.Halted -> ());
  let seen = List.rev !seen in
  let ld = List.nth seen 2 in
  check_bool "load observed address" true
    (match ld.Dts_primary.Primary.mem with Some (_, 4) -> true | _ -> false);
  let br = List.nth seen 4 in
  check_bool "branch observed taken" true br.Dts_primary.Primary.taken;
  check_bool "branch target recorded" true
    (br.Dts_primary.Primary.next_pc <> br.addr + 4)

(* ---- register-window overflow/underflow: Golden vs Primary ----

   The spill/fill microroutine (§3.1's trap service) runs inside both the
   golden interpreter and the Primary Processor's trap path. Drive both
   engines through nesting deeper than the window file holds and demand
   bit-identical architectural state — registers, spill stack, memory and
   instruction count — and identical fatal behaviour on underflow of an
   empty spill stack. *)

let deep_window_src depth =
  (* straight-line nesting: leave a breadcrumb in %l0, save; then unwind,
     accumulating each frame's breadcrumb through a global *)
  let b = Buffer.create 256 in
  Buffer.add_string b "start:  mov 0, %g2\n";
  for k = 1 to depth do
    Buffer.add_string b (Printf.sprintf "        mov %d, %%l0\n" (100 + k));
    Buffer.add_string b "        save %sp, -96, %sp\n"
  done;
  for _ = 1 to depth do
    Buffer.add_string b "        restore %g0, 0, %g0\n";
    Buffer.add_string b "        add %g2, %l0, %g2\n"
  done;
  Buffer.add_string b "        sethi 0x14, %o0\n";
  (* 0x14 << 10 = 0x5000 *)
  Buffer.add_string b "        st %g2, [%o0+0]\n";
  Buffer.add_string b "        halt\n";
  Buffer.contents b

let boot_pair ~nwindows src =
  let program = Dts_asm.Assembler.assemble src in
  let gst = Dts_asm.Program.boot ~nwindows program in
  let pst = Dts_asm.Program.boot ~nwindows program in
  let g = Dts_golden.Golden.of_state gst in
  let p =
    Dts_primary.Primary.create
      ~icache:(Dts_mem.Cache.perfect ())
      ~dcache:(Dts_mem.Cache.perfect ())
      pst
  in
  (g, gst, p, pst)

let test_window_spill_agreement () =
  (* nwindows = 8, overflow trips at resident depth nwindows - 2 = 6;
     nesting to 3 * nwindows forces repeated spill and fill *)
  let nwindows = 8 in
  let depth = 3 * nwindows in
  let g, gst, p, pst = boot_pair ~nwindows (deep_window_src depth) in
  let _ = Dts_golden.Golden.run ~max_instructions:100_000 g in
  check_bool "golden halted" true gst.Dts_isa.State.halted;
  let retired = ref 0 and trapped = ref 0 in
  (try
     while true do
       let r = Dts_primary.Primary.step p in
       incr retired;
       if r.Dts_primary.Primary.trapped then incr trapped
     done
   with Dts_primary.Primary.Halted -> ());
  check_bool "spills actually happened" true (!trapped > 0);
  (* both engines spilled through the same region and agree bit-for-bit *)
  check_bool "registers agree" true (Dts_isa.State.regs_equal gst pst);
  check_bool "memory agrees" true
    (Dts_mem.Memory.equal gst.Dts_isa.State.mem pst.Dts_isa.State.mem);
  check_int "instruction counts agree" gst.Dts_isa.State.instret
    pst.Dts_isa.State.instret;
  (* the accumulated breadcrumbs prove every frame survived its spill *)
  let expect = ref 0 in
  for k = 1 to depth do
    expect := !expect + 100 + k
  done;
  check_int "breadcrumb sum" !expect
    (Dts_mem.Memory.read_u32 gst.Dts_isa.State.mem 0x5000)

let test_window_underflow_fatal_agreement () =
  (* a restore at depth zero underflows; with an empty spill stack that is
     a fatal fault on both engines, at the same instruction *)
  let src = "start:  mov 7, %o1\n        restore %g0, 0, %g0\n        halt\n" in
  let nwindows = 8 in
  let g, gst, p, pst = boot_pair ~nwindows src in
  let golden_fault =
    try
      ignore (Dts_golden.Golden.run ~max_instructions:1000 g);
      None
    with Dts_isa.Semantics.Fatal_fault m -> Some m
  in
  let primary_fault =
    try
      for _ = 1 to 1000 do
        ignore (Dts_primary.Primary.step p)
      done;
      None
    with
    | Dts_isa.Semantics.Fatal_fault m -> Some m
    | Dts_primary.Primary.Halted -> None
  in
  check_bool "golden faults" true (golden_fault <> None);
  check_bool "primary faults" true (primary_fault <> None);
  Alcotest.(check (option string))
    "same diagnostic" golden_fault primary_fault;
  (* both stopped after the same retired prefix *)
  check_int "same instret at fault" gst.Dts_isa.State.instret
    pst.Dts_isa.State.instret

(* Halt accounting (the obs sum invariant): Halt retires — instret and the
   retirement count move — but its final fetch charges no cycles and does
   not touch the instruction cache. The stall of that fetch can appear in
   no retirement record, so charging either side would make total cycles
   disagree with the sum of per-retirement cycles, or the cache hit/miss
   counters disagree with the retirement stream the scheduler saw. *)
let test_halt_accounting_obs_sum () =
  let src = {|
start:  mov 1, %o0
        add %o0, 2, %o1
        xor %o1, 3, %o2
        halt
|} in
  let check_path fastpath =
    let icache =
      Dts_mem.Cache.create ~size_bytes:256 ~line_bytes:16 ~assoc:1
        ~miss_penalty:6
    in
    let program = Dts_asm.Assembler.assemble src in
    let st = Dts_asm.Program.boot program in
    let p =
      Dts_primary.Primary.create ~fastpath ~icache
        ~dcache:(Dts_mem.Cache.perfect ()) st
    in
    let cycles = ref 0 and retired = ref 0 in
    (try
       while true do
         let r = Dts_primary.Primary.step p in
         cycles := !cycles + r.Dts_primary.Primary.cycles;
         incr retired
       done
     with Dts_primary.Primary.Halted -> ());
    (* the sum of per-retirement cycles is the total — nothing vanished *)
    check_int "cycles = sum of retirement records" !cycles
      (Dts_primary.Primary.total_cycles p);
    (* halt retired architecturally... *)
    check_int "instret counts halt" (!retired + 1) st.Dts_isa.State.instret;
    (* ...but its fetch moved no cache counter: one access per record *)
    check_int "icache accesses = retirement records" !retired
      (Dts_mem.Cache.hits icache + Dts_mem.Cache.misses icache)
  in
  check_path true;
  check_path false

let suite =
  [
    Alcotest.test_case "straight-line CPI 1" `Quick test_straight_line_cpi_1;
    Alcotest.test_case "halt accounting obs sum" `Quick
      test_halt_accounting_obs_sum;
    Alcotest.test_case "not-taken branch bubble" `Quick
      test_not_taken_branch_bubble;
    Alcotest.test_case "taken branch free" `Quick test_taken_branch_free;
    Alcotest.test_case "load-use bubble" `Quick test_load_use_bubble;
    Alcotest.test_case "independent after load" `Quick test_load_no_use_no_bubble;
    Alcotest.test_case "icache miss penalty" `Quick test_icache_miss_penalty;
    Alcotest.test_case "dcache miss penalty" `Quick test_dcache_miss_penalty;
    Alcotest.test_case "trap service charged" `Quick test_trap_service_charged;
    Alcotest.test_case "retired observations" `Quick test_retired_observations;
    Alcotest.test_case "window spill: golden/primary agree" `Quick
      test_window_spill_agreement;
    Alcotest.test_case "window underflow fatal: golden/primary agree" `Quick
      test_window_underflow_fatal_agreement;
  ]
