(* The branch-and-bound optimality oracle (Dts_opt.Opt):

   - geometry decomposition and the Hall capacity condition;
   - on every block of all eight built-in workloads, both geometries:
     the greedy block passes the oracle's independent legality check, the
     oracle's bounds sandwich the greedy cycle count, the rebuilt optimal
     block passes the same legality check and the Sched_unit structural
     invariants;
   - an exhaustive-enumeration cross-check on small blocks (<= 6 ops)
     that must agree exactly with the branch-and-bound;
   - certified lower <= optimal <= upper under an exhausted node budget;
   - a deterministic block with a known optimality gap, pinning the exact
     optimum;
   - mutation sanity: the test-only [fault_weaken_pruning] flag must be
     caught by the exhaustive cross-check corpus. *)

open Dts_sched.Schedtypes
module Opt = Dts_opt.Opt
module SU = Dts_sched.Sched_unit

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- geometry ---- *)

let test_geometry_decomposition () =
  let ideal = Opt.geometry_of_config (Dts_core.Config.ideal ()) in
  check_int "ideal: all universal" ideal.Opt.g_width ideal.Opt.g_uni;
  check_int "ideal: no dedicated" 0 (Array.fold_left ( + ) 0 ideal.Opt.g_ded);
  let feas = Opt.geometry_of_config (Dts_core.Config.feasible ()) in
  check_int "feasible: no universal" 0 feas.Opt.g_uni;
  check_int "feasible: dedicated sum = width" feas.Opt.g_width
    (Array.fold_left ( + ) 0 feas.Opt.g_ded);
  (* the Hall condition on the feasible machine: a full mixed cycle fits,
     one class over its dedicated count does not *)
  check_bool "mixed full cycle fits" true
    (Opt.caps_ok feas (Array.copy feas.Opt.g_ded) feas.Opt.g_width);
  let over = Array.copy feas.Opt.g_ded in
  over.(0) <- over.(0) + 1;
  check_bool "class overflow rejected" false
    (Opt.caps_ok feas over (Array.fold_left ( + ) 0 over));
  (* a universal pool absorbs the spill *)
  let uni = Opt.geometry ~width:4 ~slot_classes:None in
  check_bool "universal absorbs any mix" true (Opt.caps_ok uni [| 4; 0; 0; 0 |] 4)

(* ---- every block of every workload, both geometries ---- *)

let capture_blocks ~cfg ~budget name =
  let program =
    Dts_workloads.Workloads.program ~scale:1
      (Dts_workloads.Workloads.find name)
  in
  let make, captured = Opt.capturing_scheduler cfg in
  let m = Dts_core.Machine.create ~scheduler:make cfg program in
  ignore (Dts_core.Machine.run ~max_instructions:budget m);
  List.rev !captured

(* Check one block end to end; returns [(small, agreed)] for the
   exhaustive corpus bookkeeping. *)
let oracle_roundtrip ~what g lat b =
  (match Opt.check_block g lat b with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: greedy block fails legality: %s" what e);
  let m = Opt.model_of_block lat b in
  let s = Opt.schedule g m in
  check_int (what ^ ": fcfs = block lis") (Array.length b.lis) s.Opt.s_fcfs;
  check_bool (what ^ ": lower <= upper") true Opt.(s.s_lower <= s.s_upper);
  check_bool (what ^ ": upper <= fcfs") true Opt.(s.s_upper <= s.s_fcfs);
  check_bool
    (what ^ ": best schedule satisfies the model")
    true
    (Opt.assignment_ok g m s.Opt.s_schedule);
  let b' = Opt.rebuild g b m s.Opt.s_schedule in
  check_int (what ^ ": rebuilt length = upper") s.Opt.s_upper
    (Array.length b'.lis);
  (match Opt.check_block g lat b' with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: rebuilt block fails legality: %s" what e);
  check_bool
    (what ^ ": rebuilt block passes Sched_unit invariants")
    true
    (Test_sched.block_invariants b');
  (* degraded mode: a starved budget must still give a certified sandwich
     of the now-known optimum *)
  let s1 = Opt.schedule ~node_budget:1 g m in
  check_bool (what ^ ": starved lower <= upper") true Opt.(s1.s_lower <= s1.s_upper);
  if s.Opt.s_exact then begin
    check_bool (what ^ ": starved lower <= optimum") true
      Opt.(s1.s_lower <= s.s_upper);
    check_bool (what ^ ": starved upper >= optimum") true
      Opt.(s1.s_upper >= s.s_upper)
  end;
  if Opt.model_nodes m <= 6 then begin
    check_bool (what ^ ": small block certified") true s.Opt.s_exact;
    check_int (what ^ ": exhaustive = branch-and-bound") (Opt.exhaustive g m)
      s.Opt.s_upper;
    true
  end
  else false

let test_workload_blocks () =
  let small = ref 0 and total = ref 0 in
  List.iter
    (fun (gname, cfg) ->
      let g = Opt.geometry_of_config cfg in
      let lat = cfg.Dts_core.Config.sched.SU.latencies in
      List.iter
        (fun (w : Dts_workloads.Workloads.t) ->
          let blocks = capture_blocks ~cfg ~budget:1_200 w.name in
          check_bool (w.name ^ "/" ^ gname ^ ": blocks captured") true
            (blocks <> []);
          List.iteri
            (fun i b ->
              let what = Printf.sprintf "%s/%s block %d" w.name gname i in
              incr total;
              if oracle_roundtrip ~what g lat b then incr small)
            blocks)
        Dts_workloads.Workloads.all)
    [
      ("ideal", Dts_core.Config.ideal ());
      ("feasible", Dts_core.Config.feasible ());
    ];
  check_bool "a non-trivial corpus" true (!total >= 50);
  check_bool "the exhaustive corpus is non-empty" true (!small > 0)

(* ---- a deterministic block with a known gap ---- *)

(* Insert without ticks (no move-up): the greedy tail-insertion leaves an
   independent chain start in the second long instruction, wasting one —
   A; B(A); C; D(C); E(D) at width 2 builds 4 long instructions where
   cycles {A,C} {B,D} {E} = 3 suffice. *)
let known_gap_block () =
  let scfg = Test_sched.cfg ~width:2 ~height:8 () in
  let t = SU.create scfg in
  let alu = Test_sched.alu and alu_rr = Test_sched.alu_rr in
  Test_sched.insert_ok t (Test_sched.ret ~addr:0x1000 (alu 1 1 2));
  Test_sched.insert_ok t (Test_sched.ret ~addr:0x1004 (alu_rr 2 0 3));
  Test_sched.insert_ok t (Test_sched.ret ~addr:0x1008 (alu 5 1 6));
  Test_sched.insert_ok t (Test_sched.ret ~addr:0x100c (alu_rr 6 0 7));
  Test_sched.insert_ok t (Test_sched.ret ~addr:0x1010 (alu_rr 7 0 8));
  let b = Option.get (SU.finish_block t ~nba_addr:0x1014) in
  (Opt.geometry_of_sched scfg, scfg.SU.latencies, b)

let test_known_gap () =
  let g, lat, b = known_gap_block () in
  check_int "greedy built 4 lis" 4 (Array.length b.lis);
  let m = Opt.model_of_block lat b in
  check_int "5 ops, no copies" 5 (Opt.model_nodes m);
  check_int "exhaustive optimum" 3 (Opt.exhaustive g m);
  let s = Opt.schedule g m in
  check_bool "certified" true s.Opt.s_exact;
  check_int "lower" 3 s.Opt.s_lower;
  check_int "upper" 3 s.Opt.s_upper;
  let b' = Opt.rebuild g b m s.Opt.s_schedule in
  check_int "rebuilt to 3 lis" 3 (Array.length b'.lis);
  match Opt.check_block g lat b' with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rebuilt gap block fails legality: %s" e

(* ---- mutation sanity ---- *)

(* Weakened pruning discards the subtree holding the true optimum of the
   known-gap block: the oracle then "certifies" 4 cycles where the
   exhaustive enumeration proves 3 — the cross-check corpus must catch
   exactly this class of unsound oracle. *)
let test_mutation_weakened_pruning_caught () =
  let g, lat, b = known_gap_block () in
  let m = Opt.model_of_block lat b in
  Fun.protect
    ~finally:(fun () -> Opt.fault_weaken_pruning := false)
    (fun () ->
      Opt.fault_weaken_pruning := true;
      let s = Opt.schedule g m in
      let exh = Opt.exhaustive g m in
      check_bool "faulty oracle still claims certainty" true s.Opt.s_exact;
      check_bool "exhaustive cross-check catches the fault" true
        (s.Opt.s_upper > exh));
  (* and the pristine oracle agrees again *)
  let s = Opt.schedule g m in
  check_int "agreement restored" (Opt.exhaustive g m) s.Opt.s_upper

(* ---- random scheduler blocks (property) ---- *)

let prop_oracle_on_random_blocks =
  QCheck2.Test.make ~count:150 ~name:"oracle legal + bounded on random blocks"
    Test_sched.gen_stream (fun stream ->
      let t = Test_sched.run_stream stream (fun _ -> ()) in
      match SU.finish_block t ~nba_addr:0xFFFF with
      | None -> true
      | Some b ->
        let scfg = Test_sched.cfg () in
        let g = Opt.geometry_of_sched scfg in
        let lat = scfg.SU.latencies in
        (match Opt.check_block g lat b with
        | Ok () -> ()
        | Error e -> Alcotest.failf "greedy random block fails legality: %s" e);
        let m = Opt.model_of_block lat b in
        let s = Opt.schedule g m in
        let b' = Opt.rebuild g b m s.Opt.s_schedule in
        Opt.(s.s_lower <= s.s_upper)
        && Opt.(s.s_upper <= s.s_fcfs)
        && Opt.assignment_ok g m s.Opt.s_schedule
        && Opt.check_block g lat b' = Ok ()
        && Test_sched.block_invariants b'
        && (Opt.model_nodes m > 6
           || (s.Opt.s_exact && Opt.exhaustive g m = s.Opt.s_upper)))

let suite =
  [
    Alcotest.test_case "geometry decomposition" `Quick
      test_geometry_decomposition;
    Alcotest.test_case "all workload blocks, both geometries" `Slow
      test_workload_blocks;
    Alcotest.test_case "known optimality gap" `Quick test_known_gap;
    Alcotest.test_case "mutation: weakened pruning caught" `Quick
      test_mutation_weakened_pruning_caught;
    QCheck_alcotest.to_alcotest prop_oracle_on_random_blocks;
  ]
