(* operator enum for the tinyc expression property test *)
type t = Add | Sub | Mul | Div | Mod | BAnd | BOr | BXor | Shl | Shr | Lshr
