(* Install-time block compilation (Dts_vliw.Plan): the compiled executor
   must be observationally identical to the engine's interpreter.

   The machine's co-simulation already proves the compiled path
   architecturally correct at every engine switch; these tests pin the
   stronger differential property — identical Stats.t (timing included),
   registers and memory between ~compile:true and ~compile:false — plus
   the self-modifying-code invalidation path and the plan counters. *)

open Dts_isa

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* plan counters are the only fields allowed to differ between the
   compiled and interpreted runs *)
let scrub (s : Dts_obs.Stats.t) =
  {
    s with
    Dts_obs.Stats.plans_compiled = 0;
    plan_hits = 0;
    wdelta_variants = 0;
  }

let run_workload ~compile ~cfg ~budget name =
  let program =
    Dts_workloads.Workloads.program ~scale:1
      (Dts_workloads.Workloads.find name)
  in
  let m = Dts_core.Machine.create ~compile cfg program in
  let n = Dts_core.Machine.run ~max_instructions:budget m in
  (m, n)

let differential ~cfg ~budget name =
  let m1, n1 = run_workload ~compile:true ~cfg ~budget name in
  let m2, n2 = run_workload ~compile:false ~cfg ~budget name in
  check_int (name ^ ": instructions") n2 n1;
  let s1 = Dts_core.Machine.stats m1 and s2 = Dts_core.Machine.stats m2 in
  check_int (name ^ ": cycles") s2.Dts_obs.Stats.cycles s1.Dts_obs.Stats.cycles;
  check_bool (name ^ ": interpreter compiled nothing") true
    (s2.Dts_obs.Stats.plans_compiled = 0 && s2.Dts_obs.Stats.plan_hits = 0);
  check_bool (name ^ ": identical stats") true (scrub s1 = scrub s2);
  check_bool (name ^ ": identical registers and memory") true
    (State.equal m1.Dts_core.Machine.st m2.Dts_core.Machine.st)

(* every built-in workload, both machine models, seeded-random budgets
   around the experiments-smoke scale — small enough for runtest, large
   enough that blocks are cached, re-entered and plan variants built *)
let test_differential_all_workloads () =
  let rng = Random.State.make [| 0x9a57e11; 0x4 |] in
  List.iter
    (fun (w : Dts_workloads.Workloads.t) ->
      let budget = 400 + Random.State.int rng 400 in
      differential ~cfg:(Dts_core.Config.ideal ()) ~budget w.name;
      differential ~cfg:(Dts_core.Config.feasible ()) ~budget w.name)
    Dts_workloads.Workloads.all

(* the data-store-list scheme commits through the whole-range drain
   (satellite of the same PR); its end state must equal checkpoint
   recovery's on a store-heavy workload *)
let test_scheme_end_states_agree () =
  let run scheme =
    let cfg = { (Dts_core.Config.ideal ()) with store_scheme = scheme } in
    run_workload ~compile:true ~cfg ~budget:3_000 "compress"
  in
  let m1, n1 = run Dts_vliw.Engine.Checkpoint_recovery in
  let m2, n2 = run Dts_vliw.Engine.Data_store_list in
  check_int "same instruction count" n1 n2;
  check_bool "identical registers and memory" true
    (State.equal m1.Dts_core.Machine.st m2.Dts_core.Machine.st)

let test_plan_counters () =
  let m, _ =
    run_workload ~compile:true
      ~cfg:(Dts_core.Config.ideal ())
      ~budget:20_000 "compress"
  in
  let s = Dts_core.Machine.stats m in
  check_bool "blocks were compiled" true (s.Dts_obs.Stats.plans_compiled > 0);
  check_bool "plans were reused from the cache" true
    (s.Dts_obs.Stats.plan_hits > 0);
  check_bool "at most one compile per installed block" true
    (s.Dts_obs.Stats.plans_compiled <= s.Dts_obs.Stats.vcache_insertions)

(* Self-modifying code must invalidate compiled plans: a hot loop executes
   long enough to be scheduled and compiled, then patches its own body
   ([add %o0, 1] -> [add %o0, 42]) and reruns. The write hook must drop the
   stale block (and plan), the machine reschedules the patched trace, and
   the co-simulation validates every switch along the way. *)
let add_imm ~rs1 ~imm ~rd =
  Instr.Alu { op = Instr.Add; cc = false; rs1; op2 = Instr.Imm imm; rd }

let test_smc_invalidates_plan () =
  let patched = Encode.encode ~pc:0 (add_imm ~rs1:8 ~imm:42 ~rd:8) in
  let src =
    Printf.sprintf
      {|
start:  mov   0, %%o5          ! phase flag: 0 = unpatched, 1 = patched
        set   %d, %%o1
        set   target, %%o2
        mov   0, %%o0
again:  mov   200, %%o4
loop:
target: add   %%o0, 1, %%o0
        sub   %%o4, 1, %%o4
        cmp   %%o4, 0
        bne   loop
        cmp   %%o5, 0
        bne   done
        mov   1, %%o5
        st    %%o1, [%%o2]
        ba    again
done:   halt
|}
      patched
  in
  let program = Dts_asm.Assembler.assemble src in
  let taddr = Dts_asm.Program.symbol program "target" in
  check_int "encoding is pc-independent" patched
    (Encode.encode ~pc:taddr (add_imm ~rs1:8 ~imm:42 ~rd:8));
  let m = Dts_core.Machine.create (Dts_core.Config.ideal ()) program in
  ignore (Dts_core.Machine.run m);
  let s = Dts_core.Machine.stats m in
  check_int "phase 1 added 1 x200, phase 2 added 42 x200"
    (200 + (200 * 42))
    (State.get_reg m.Dts_core.Machine.st ~cwp:m.Dts_core.Machine.st.cwp 8);
  check_bool "loop ran on the VLIW engine" true (m.Dts_core.Machine.vliw_cycles > 0);
  check_bool "the store dropped at least one cached block" true
    (s.Dts_obs.Stats.code_invalidations >= 1);
  check_bool "the patched loop was recompiled" true
    (s.Dts_obs.Stats.plans_compiled >= 2)

(* window-shifted plan variants: deep recursion re-enters the same cached
   block at different window deltas, so the per-wdelta variant cache must
   populate (and the co-simulation proves each variant exact) *)
let test_wdelta_variants_built () =
  let program =
    Dts_tinyc.Tinyc.compile
      {| int r;
         int down(int n, int acc) {
           if (n == 0) { return acc; }
           return down(n - 1, acc + n);
         }
         int main() {
           int i; int s;
           s = 0;
           for (i = 0; i < 20; i = i + 1) { s = s + down(60, 0); }
           r = s;
           return 0;
         } |}
  in
  let m = Dts_core.Machine.create (Dts_core.Config.ideal ()) program in
  ignore (Dts_core.Machine.run m);
  let s = Dts_core.Machine.stats m in
  check_bool "shifted variants compiled" true
    (s.Dts_obs.Stats.wdelta_variants > 0)

let suite =
  [
    Alcotest.test_case "differential: all workloads, both machines" `Quick
      test_differential_all_workloads;
    Alcotest.test_case "store schemes reach identical end states" `Quick
      test_scheme_end_states_agree;
    Alcotest.test_case "plan counters" `Quick test_plan_counters;
    Alcotest.test_case "self-modifying code invalidates plans" `Quick
      test_smc_invalidates_plan;
    Alcotest.test_case "window-delta variants built" `Quick
      test_wdelta_variants_built;
  ]
