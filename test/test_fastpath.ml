(* Differential suite for the allocation-free sequential fast path.

   The sequential engines (golden machine and Primary Processor) execute
   packed micro-ops into a preallocated outcome buffer
   (Semantics.exec_into); the boxed Semantics.exec path is retained as the
   differential oracle. This suite pins the equivalence guarantee the docs
   promise: every workload and every checked-in fuzz reproducer produces
   bit-identical architectural end state (registers, flags, windows and
   memory), instruction counts, cycle accounting and Stats on both paths —
   at the golden level, the Primary level, and through the full DTSVLIW
   machine (whose test-mode co-simulation itself cross-checks the fast
   path against the dynamically scheduled execution). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let workload_names =
  List.map (fun (w : Dts_workloads.Workloads.t) -> w.name)
    Dts_workloads.Workloads.all

(* -------- golden machine, both paths -------- *)

let golden_end ?(budget = 200_000) program fastpath =
  let st = Dts_asm.Program.boot program in
  let g = Dts_golden.Golden.of_state ~fastpath st in
  ignore (Dts_golden.Golden.run ~max_instructions:budget g);
  st

let check_golden_equivalence ?budget program =
  let a = golden_end ?budget program true in
  let b = golden_end ?budget program false in
  check_int "golden instret" b.Dts_isa.State.instret a.Dts_isa.State.instret;
  check_int "golden traps" b.Dts_isa.State.traps a.Dts_isa.State.traps;
  check_bool "golden halted flag" (b.Dts_isa.State.halted)
    a.Dts_isa.State.halted;
  check_bool "golden end state (registers + memory)" true
    (Dts_isa.State.equal a b)

(* -------- Primary Processor, both paths -------- *)

let primary_end ?(budget = 100_000) program fastpath =
  let st = Dts_asm.Program.boot program in
  let icache =
    Dts_mem.Cache.create ~size_bytes:1024 ~line_bytes:16 ~assoc:2
      ~miss_penalty:6
  in
  let dcache =
    Dts_mem.Cache.create ~size_bytes:1024 ~line_bytes:16 ~assoc:2
      ~miss_penalty:6
  in
  let p = Dts_primary.Primary.create ~fastpath ~icache ~dcache st in
  ignore (Dts_primary.Primary.run ~max_instructions:budget p);
  (st, Dts_primary.Primary.total_cycles p, icache, dcache)

let check_primary_equivalence ?budget program =
  let sta, cyca, ica, dca = primary_end ?budget program true in
  let stb, cycb, icb, dcb = primary_end ?budget program false in
  check_int "primary instret" stb.Dts_isa.State.instret
    sta.Dts_isa.State.instret;
  check_int "primary cycles" cycb cyca;
  check_int "primary icache hits" (Dts_mem.Cache.hits icb)
    (Dts_mem.Cache.hits ica);
  check_int "primary icache misses" (Dts_mem.Cache.misses icb)
    (Dts_mem.Cache.misses ica);
  check_int "primary dcache hits" (Dts_mem.Cache.hits dcb)
    (Dts_mem.Cache.hits dca);
  check_int "primary dcache misses" (Dts_mem.Cache.misses dcb)
    (Dts_mem.Cache.misses dca);
  check_bool "primary end state (registers + memory)" true
    (Dts_isa.State.equal sta stb)

(* -------- full DTSVLIW machine, both paths, Stats included -------- *)

let machine_end ?(budget = 30_000) program fastpath =
  let m =
    Dts_core.Machine.create ~fastpath (Dts_core.Config.ideal ()) program
  in
  let n = Dts_core.Machine.run ~max_instructions:budget m in
  (n, m)

let check_machine_equivalence ?budget program =
  let na, ma = machine_end ?budget program true in
  let nb, mb = machine_end ?budget program false in
  check_int "machine sequential instructions" nb na;
  check_string "machine Stats snapshot"
    (Dts_obs.Stats.to_json_string (Dts_core.Machine.stats mb))
    (Dts_obs.Stats.to_json_string (Dts_core.Machine.stats ma));
  check_bool "machine end state (registers + memory)" true
    (Dts_isa.State.equal ma.Dts_core.Machine.st mb.Dts_core.Machine.st)

(* -------- the suite: 8 workloads + the checked-in fuzz corpus -------- *)

let test_workload name () =
  let program =
    Dts_workloads.Workloads.program ~scale:1
      (Dts_workloads.Workloads.find name)
  in
  check_golden_equivalence program;
  check_primary_equivalence program;
  check_machine_equivalence program

(* cwd is test/ under `dune runtest`, the repo root when run by hand *)
let corpus_dir =
  if Sys.file_exists "fuzz_corpus" then "fuzz_corpus" else "test/fuzz_corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".srisc")
  |> List.sort compare

let test_fuzz_corpus () =
  let files = corpus_files () in
  check_bool "corpus is non-empty" true (files <> []);
  List.iter
    (fun f ->
      let program = Dts_fuzz.Repro.load (Filename.concat corpus_dir f) in
      (* reproducers halt within the generator's fuel bound; run to halt *)
      let budget =
        Dts_fuzz.Gen.dynamic_bound ~max_insns:Dts_fuzz.Gen.default_max_insns
      in
      check_golden_equivalence ~budget program;
      check_primary_equivalence ~budget program;
      check_machine_equivalence ~budget program)
    files

let suite =
  List.map
    (fun name ->
      Alcotest.test_case
        (Printf.sprintf "%s identical on exec vs exec_into" name)
        `Slow (test_workload name))
    workload_names
  @ [ Alcotest.test_case "fuzz corpus identical on both paths" `Quick
        test_fuzz_corpus ]
