(* Observability layer tests.

   The load-bearing one is the attribution invariant: for every workload,
   on both the ideal and the feasible machine and on the DIF baseline,
   every machine cycle must be charged to exactly one category — the
   categories sum to [cycles] and the VLIW-side categories to
   [vliw_cycles]. A missed or double charge anywhere in the machine's
   cycle accounting fails this for some workload.

   The tracer round-trip test replays a run with a Memory-sink tracer and
   checks that the JSONL stream parses and that event counts agree with
   the counters in the stats snapshot. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let budget = 4_000

let check_invariant label (s : Dts_obs.Stats.t) =
  check_bool (label ^ ": run progressed") true (s.cycles > 0);
  check_int
    (label ^ ": attribution sums to cycles")
    s.cycles
    (Dts_obs.Stats.attributed_total s);
  check_int
    (label ^ ": VLIW attribution sums to vliw_cycles")
    s.vliw_cycles
    (Dts_obs.Stats.attributed_vliw s);
  check_bool (label ^ ": invariant_holds") true (Dts_obs.Stats.invariant_holds s)

let test_attribution_invariant () =
  List.iter
    (fun name ->
      List.iter
        (fun (cfg_label, cfg) ->
          let r = Dts_experiments.Experiments.run_dtsvliw ~budget cfg name in
          check_invariant (name ^ "/" ^ cfg_label) r.stats)
        [
          ("ideal", Dts_core.Config.ideal ());
          ("feasible", Dts_core.Config.feasible ());
        ];
      let r, _ =
        Dts_experiments.Experiments.run_dif ~budget
          (Dts_dif.Dif.fig9_machine_cfg ())
          name
      in
      check_invariant (name ^ "/dif") r.stats)
    Dts_experiments.Experiments.workload_names

(* extension configurations exercise the remaining attribution categories
   (next-li prediction redirects, data-store-list drains) *)
let test_attribution_invariant_extensions () =
  let feasible = Dts_core.Config.feasible () in
  List.iter
    (fun (label, cfg) ->
      let r = Dts_experiments.Experiments.run_dtsvliw ~budget cfg "compress" in
      check_invariant ("compress/" ^ label) r.stats)
    [
      ("predict-next", { feasible with next_li_prediction = true });
      ( "data-store-list",
        { feasible with store_scheme = Dts_vliw.Engine.Data_store_list } );
      ( "no-renaming",
        { feasible with sched = { feasible.sched with renaming = false } } );
    ]

let test_tracer_roundtrip () =
  let buf = Buffer.create 4096 in
  let tracer = Dts_obs.Trace.to_buffer buf in
  let r =
    Dts_experiments.Experiments.run_dtsvliw ~budget ~tracer
      (Dts_core.Config.feasible ()) "compress"
  in
  let s = r.stats in
  let text = Buffer.contents buf in
  check_bool "trace non-empty" true (String.length text > 0);
  check_int "emitted counter matches stats" s.trace_emitted
    (Dts_obs.Trace.emitted tracer);
  check_int "nothing dropped" 0 s.trace_dropped;
  (* every line must parse, cycles must be monotone *)
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  check_int "line count = emitted" s.trace_emitted (List.length lines);
  let last = ref (-1) in
  let to_vliw = ref 0 in
  List.iter
    (fun line ->
      let cycle, name, obj = Dts_obs.Trace.parse_line line in
      check_bool "cycle monotone" true (cycle >= !last);
      last := cycle;
      check_bool "known event name" true
        (List.mem name Dts_obs.Trace.event_names);
      check_bool "record is an object" true
        (match obj with Dts_obs.Json.Obj _ -> true | _ -> false);
      if
        name = "engine_switch"
        && Dts_obs.Json.member "to" obj
           = Some (Dts_obs.Json.String "vliw")
      then incr to_vliw)
    lines;
  (* event counts agree with the stats snapshot counters; engine_switches
     counts VLIW-engine entries (block-to-block chaining enters without an
     intervening return), i.e. the to=vliw switch events *)
  check_int "engine_switch(to=vliw) events" s.engine_switches !to_vliw;
  let counts = Dts_obs.Trace.count_events text in
  let n name = Option.value ~default:0 (Hashtbl.find_opt counts name) in
  check_int "block_flush events" s.blocks_flushed (n "block_flush");
  check_int "block_install events" s.vcache_insertions (n "block_install");
  check_int "block_evict events" s.vcache_evictions (n "block_evict");
  check_int "aliasing_violation events" s.aliasing_exceptions
    (n "aliasing_violation");
  check_int "checkpoint_recovery events" s.block_exceptions
    (n "checkpoint_recovery");
  (* and a traced run must not perturb the simulation *)
  let r' =
    Dts_experiments.Experiments.run_dtsvliw ~budget
      (Dts_core.Config.feasible ()) "compress"
  in
  check_int "tracing does not change cycles" r'.cycles r.cycles

let test_tracer_limit () =
  let buf = Buffer.create 256 in
  let tracer = Dts_obs.Trace.to_buffer ~limit:5 buf in
  let r =
    Dts_experiments.Experiments.run_dtsvliw ~budget ~tracer
      (Dts_core.Config.feasible ()) "compress"
  in
  check_int "emitted capped at limit" 5 r.stats.trace_emitted;
  check_bool "excess events counted as dropped" true (r.stats.trace_dropped > 0);
  let lines =
    Buffer.contents buf |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  check_int "sink holds exactly limit lines" 5 (List.length lines)

let test_stats_json_roundtrip () =
  let r =
    Dts_experiments.Experiments.run_dtsvliw ~budget
      (Dts_core.Config.feasible ()) "compress"
  in
  let doc = Dts_obs.Json.of_string (Dts_obs.Stats.to_json_string r.stats) in
  let get obj key =
    match Dts_obs.Json.member key obj with
    | Some v -> v
    | None -> Alcotest.failf "missing key %s" key
  in
  let as_int label v =
    match Dts_obs.Json.to_int v with
    | Some n -> n
    | None -> Alcotest.failf "%s is not an integer" label
  in
  check_int "schema_version" Dts_obs.Stats.schema_version
    (as_int "schema_version" (get doc "schema_version"));
  check_int "cycles round-trips" r.stats.cycles
    (as_int "cycles" (get doc "cycles"));
  let attribution = get doc "attribution" in
  let attributed =
    List.fold_left
      (fun acc cat ->
        acc
        + as_int
            (Dts_obs.Attribution.name cat)
            (get attribution (Dts_obs.Attribution.name cat)))
      0 Dts_obs.Attribution.all
  in
  check_int "JSON attribution sums to cycles" r.stats.cycles attributed

let test_json_parser () =
  let roundtrip v =
    Alcotest.(check string)
      "print/parse/print fixpoint"
      (Dts_obs.Json.to_string v)
      (Dts_obs.Json.to_string (Dts_obs.Json.of_string (Dts_obs.Json.to_string v)))
  in
  roundtrip
    (Dts_obs.Json.Obj
       [
         ("a", Dts_obs.Json.Int (-3));
         ("b", Dts_obs.Json.List [ Dts_obs.Json.Bool true; Dts_obs.Json.Null ]);
         ("c\"\n", Dts_obs.Json.String "esc\\ape\t\"quoted\"");
         ("d", Dts_obs.Json.Float 0.25);
       ]);
  (match Dts_obs.Json.of_string "{\"x\": [1, 2" with
  | exception Dts_obs.Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "truncated input must not parse")

let test_breakdown_figure () =
  let fig = Dts_experiments.Experiments.breakdown ~budget () in
  let out = fig.Dts_experiments.Experiments.render () in
  (* the TOTAL row renders the invariant: always exactly 100.0% *)
  check_bool "has TOTAL row" true
    (let hay = out and needle = "TOTAL (attributed/machine)" in
     let hl = String.length hay and nl = String.length needle in
     let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
     go 0);
  List.iter
    (fun (r : Dts_experiments.Experiments.run) ->
      check_invariant ("breakdown/" ^ r.workload) r.stats)
    fig.Dts_experiments.Experiments.rows

let suite =
  [
    Alcotest.test_case "attribution invariant: workloads x {ideal, feasible, dif}"
      `Quick test_attribution_invariant;
    Alcotest.test_case "attribution invariant: extension configs" `Quick
      test_attribution_invariant_extensions;
    Alcotest.test_case "tracer round-trip" `Quick test_tracer_roundtrip;
    Alcotest.test_case "tracer limit and dropped count" `Quick test_tracer_limit;
    Alcotest.test_case "stats JSON round-trip" `Quick test_stats_json_roundtrip;
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "breakdown figure" `Quick test_breakdown_figure;
  ]
