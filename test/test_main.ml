let () =
  Alcotest.run "dtsvliw"
    [
      ("mem", Test_mem.suite);
      ("memdiff", Test_memdiff.suite);
      ("isa", Test_isa.suite);
      ("asm", Test_asm.suite);
      ("golden", Test_golden.suite);
      ("tinyc", Test_tinyc.suite);
      ("sched", Test_sched.suite);
      ("primary", Test_primary.suite);
      ("vliw", Test_vliw.suite);
      ("plan", Test_plan.suite);
      ("aliaslog", Test_aliaslog.suite);
      ("machine", Test_machine.suite);
      ("dif", Test_dif.suite);
      ("workloads", Test_workloads.suite);
      ("report", Test_report.suite);
      ("experiments", Test_experiments.suite);
      ("obs", Test_obs.suite);
      ("parallel", Test_parallel.suite);
      ("predecode", Test_predecode.suite);
      ("fastpath", Test_fastpath.suite);
      ("fuzz", Test_fuzz.suite);
      ("job", Test_job.suite);
      ("opt", Test_opt.suite);
    ]
