(* End-to-end DTSVLIW machine tests. Every run executes in test mode: the
   machine co-simulates the golden model and raises Test_mode_mismatch on
   any architectural divergence, so a passing test validates the Primary
   Processor, the Scheduler Unit and the VLIW Engine together. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_source ?cfg src =
  let cfg = match cfg with Some c -> c | None -> Dts_core.Config.ideal () in
  let program = Dts_tinyc.Tinyc.compile src in
  let m = Dts_core.Machine.create cfg program in
  let n = Dts_core.Machine.run m in
  (m, program, n)

let run_asm ?cfg src =
  let cfg = match cfg with Some c -> c | None -> Dts_core.Config.ideal () in
  let program = Dts_asm.Assembler.assemble src in
  let m = Dts_core.Machine.create cfg program in
  let n = Dts_core.Machine.run m in
  (m, program, n)

let global (m : Dts_core.Machine.t) program name =
  Dts_mem.Memory.read m.st.mem
    ~addr:(Dts_asm.Program.symbol program ("g_" ^ name))
    ~size:4 ~signed:true

(* the paper's Figure 2 kernel: vector sum *)
let vector_sum_asm n =
  Printf.sprintf
    {|
        .data
arr:    .space %d
        .text
start:  mov   0, %%o0          ! sum
        set   arr, %%o1
        mov   0, %%o2
        set   %d, %%l0
init:   st    %%o2, [%%o1+%%o2]
        add   %%o2, 4, %%o2
        cmp   %%o2, %%l0
        bl    init
        mov   0, %%o2
loop:   ld    [%%o1+%%o2], %%o3
        add   %%o0, %%o3, %%o0
        add   %%o2, 4, %%o2
        cmp   %%o2, %%l0
        bl    loop
        halt
|}
    (4 * n) (4 * n)

let test_vector_sum () =
  let m, _, _ = run_asm (vector_sum_asm 100) in
  (* sum of 0,4,8,...,396 = arr[i] holds i*4 *)
  check_int "sum" (Array.init 100 (fun i -> 4 * i) |> Array.fold_left ( + ) 0)
    (Dts_isa.State.get_reg m.st ~cwp:m.st.cwp 8);
  check_bool "used the VLIW engine" true (m.vliw_cycles > 0);
  check_bool "built blocks" true ((Dts_core.Machine.stats m).blocks_flushed > 0)

let test_vector_sum_beats_primary_alone () =
  (* IPC with scheduling must exceed 1/primary-cycles; for this loop the
     DTSVLIW should comfortably exceed 1 instruction per cycle *)
  let m, _, n = run_asm (vector_sum_asm 200) in
  let ipc = float_of_int n /. float_of_int m.cycles in
  check_bool
    (Printf.sprintf "ipc %.2f > 1.0" ipc)
    true (ipc > 1.0)

let test_fib_cosim () =
  let m, p, _ =
    run_source
      {| int r;
         int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
         int main() { r = fib(14); return 0; } |}
  in
  check_int "fib(14)" 377 (global m p "r")

let test_sort_cosim () =
  let m, p, _ =
    run_source
      {| int a[64];
         int r;
         int main() {
           int i; int j; int t;
           for (i = 0; i < 64; i = i + 1) { a[i] = (i * 37 + 11) % 64; }
           for (i = 0; i < 64; i = i + 1) {
             for (j = i + 1; j < 64; j = j + 1) {
               if (a[j] < a[i]) { t = a[i]; a[i] = a[j]; a[j] = t; }
             }
           }
           r = 1;
           for (i = 1; i < 64; i = i + 1) { if (a[i] < a[i-1]) { r = 0; } }
           return 0;
         } |}
  in
  check_int "sorted" 1 (global m p "r")

let test_pointer_chase_aliasing_paths () =
  (* stores through computed indices next to loads: exercises the memory
     dependency and (potentially) aliasing machinery *)
  let m, p, _ =
    run_source
      {| int a[32];
         int r;
         int main() {
           int i; int s;
           for (i = 0; i < 32; i = i + 1) { a[i] = i; }
           s = 0;
           for (i = 0; i < 1000; i = i + 1) {
             a[(i * 7) % 32] = a[(i * 3) % 32] + 1;
             s = s + a[(i * 5) % 32];
           }
           r = s;
           return 0;
         } |}
  in
  check_bool "finished with consistent state" true (global m p "r" <> 0)

let test_deep_recursion_window_traps () =
  (* window overflow traps make save non-schedulable occurrences and can
     raise block exceptions in VLIW mode *)
  let m, p, _ =
    run_source ~cfg:(Dts_core.Config.ideal ())
      {| int r;
         int down(int n, int acc) {
           if (n == 0) { return acc; }
           return down(n - 1, acc + n);
         }
         int main() {
           int i; int s;
           s = 0;
           for (i = 0; i < 20; i = i + 1) { s = s + down(60, 0); }
           r = s;
           return 0;
         } |}
  in
  check_int "sum" (20 * (60 * 61 / 2)) (global m p "r")

let test_flags_renaming () =
  (* many cc-writing instructions and branches in flight *)
  let m, p, _ =
    run_source
      {| int r;
         int main() {
           int i; int a; int b; int c;
           a = 0; b = 0; c = 0;
           for (i = 0; i < 2000; i = i + 1) {
             if (i % 3 == 0) { a = a + 1; }
             if (i % 5 == 0) { b = b + 1; }
             if (i % 7 == 0) { c = c + 2; }
           }
           r = a * 10000 + b * 100 + c;
           return 0;
         } |}
  in
  let expect =
    let a = ref 0 and b = ref 0 and c = ref 0 in
    for i = 0 to 1999 do
      if i mod 3 = 0 then incr a;
      if i mod 5 = 0 then incr b;
      if i mod 7 = 0 then c := !c + 2
    done;
    (!a * 10000) + (!b * 100) + !c
  in
  check_int "flag-heavy loop" expect (global m p "r")

let test_geometry_affects_ipc () =
  let src = vector_sum_asm 400 in
  let run w h =
    let m, _, n = run_asm ~cfg:(Dts_core.Config.ideal ~width:w ~height:h ()) src in
    float_of_int n /. float_of_int m.cycles
  in
  let ipc_small = run 2 2 in
  let ipc_big = run 8 8 in
  check_bool
    (Printf.sprintf "8x8 (%.2f) >= 2x2 (%.2f)" ipc_big ipc_small)
    true (ipc_big >= ipc_small)

let test_feasible_machine_runs () =
  let m, p, _ =
    run_source ~cfg:(Dts_core.Config.feasible ())
      {| int r;
         int main() {
           int i; int s;
           s = 0;
           for (i = 0; i < 3000; i = i + 1) { s = s + (i ^ (s << 1)) % 97; }
           r = s;
           return 0;
         } |}
  in
  check_bool "completed" true (global m p "r" <> 1234567);
  check_bool "vliw fraction sane" true
    (Dts_core.Machine.vliw_cycle_fraction m >= 0.0
    && Dts_core.Machine.vliw_cycle_fraction m <= 1.0)

let test_vliw_cycle_fraction_high_for_loops () =
  let m, _, _ = run_asm (vector_sum_asm 2000) in
  let f = Dts_core.Machine.vliw_cycle_fraction m in
  check_bool (Printf.sprintf "vliw fraction %.2f > 0.5" f) true (f > 0.5)

let test_tiny_vliw_cache_still_correct () =
  (* a 1-block-capacity cache forces constant eviction and rebuilds *)
  let cfg =
    let c = Dts_core.Config.ideal () in
    { c with vliw_cache = { kb = 1; assoc = 1 } }
  in
  let m, p, _ =
    run_source ~cfg
      {| int r;
         int f(int x) { return x * 3 + 1; }
         int main() {
           int i; int s;
           s = 0;
           for (i = 0; i < 500; i = i + 1) { s = s + f(i); }
           r = s;
           return 0;
         } |}
  in
  let expect = ref 0 in
  for i = 0 to 499 do
    expect := !expect + (i * 3) + 1
  done;
  check_int "result" !expect (global m p "r")

let test_no_renaming_still_correct () =
  let cfg =
    let c = Dts_core.Config.ideal () in
    { c with sched = { c.sched with renaming = false } }
  in
  let m, p, _ =
    run_source ~cfg
      {| int r;
         int main() {
           int i; int s;
           s = 1;
           for (i = 0; i < 300; i = i + 1) { s = (s * 5 + i) % 8191; }
           r = s;
           return 0;
         } |}
  in
  check_bool "completed" true (global m p "r" >= 0)

let test_renaming_improves_ipc () =
  let src = vector_sum_asm 500 in
  let ipc renaming =
    let c = Dts_core.Config.ideal () in
    let cfg = { c with sched = { c.sched with renaming } } in
    let m, _, n = run_asm ~cfg src in
    float_of_int n /. float_of_int m.cycles
  in
  let with_r = ipc true and without_r = ipc false in
  check_bool
    (Printf.sprintf "renaming %.2f >= none %.2f" with_r without_r)
    true (with_r >= without_r)

let test_heterogeneous_fu_constraint () =
  let m, p, _ =
    run_source ~cfg:(Dts_core.Config.feasible ())
      {| int a[16];
         int r;
         int main() {
           int i; int s;
           for (i = 0; i < 16; i = i + 1) { a[i] = i * i; }
           s = 0;
           for (i = 0; i < 16; i = i + 1) { s = s + a[i]; }
           r = s;
           return 0;
         } |}
  in
  check_int "sum of squares" 1240 (global m p "r")

let test_data_store_list_scheme () =
  (* §3.11's alternative scheme must compute identical architectural
     results; the co-simulation checks every block boundary *)
  let cfg =
    {
      (Dts_core.Config.ideal ()) with
      store_scheme = Dts_vliw.Engine.Data_store_list;
    }
  in
  let m, p, _ =
    run_source ~cfg
      {| int a[32];
         int r;
         int main() {
           int i; int s;
           for (i = 0; i < 32; i = i + 1) { a[i] = i; }
           s = 0;
           for (i = 0; i < 800; i = i + 1) {
             a[(i * 7) % 32] = a[(i * 3) % 32] + 1;
             s = s + a[(i * 5) % 32];
           }
           r = s;
           return 0;
         } |}
  in
  check_bool "store-list scheme verified" true (global m p "r" <> 0);
  check_bool "data store list used" true
    (m.engine.stats.max_data_store_list > 0)

let test_schemes_agree () =
  let src = vector_sum_asm 300 in
  let run scheme =
    let cfg = { (Dts_core.Config.ideal ()) with store_scheme = scheme } in
    let m, _, n = run_asm ~cfg src in
    (n, Dts_isa.State.get_reg m.st ~cwp:m.st.cwp 8)
  in
  let n1, r1 = run Dts_vliw.Engine.Checkpoint_recovery in
  let n2, r2 = run Dts_vliw.Engine.Data_store_list in
  check_int "same instruction count" n1 n2;
  check_int "same result" r1 r2

let test_next_li_prediction_helps () =
  let src = vector_sum_asm 500 in
  let run pred =
    let cfg =
      {
        (Dts_core.Config.feasible ()) with
        next_li_prediction = pred;
        sched = { (Dts_core.Config.feasible ()).sched with slot_classes = None; width = 8 };
      }
    in
    let m, _, n = run_asm ~cfg src in
    (float_of_int n /. float_of_int m.cycles, (Dts_core.Machine.stats m).nlp_hits)
  in
  let base, _ = run false in
  let with_pred, hits = run true in
  check_bool
    (Printf.sprintf "prediction %.3f >= baseline %.3f" with_pred base)
    true (with_pred >= base);
  check_bool "predictor hit" true (hits > 0)

let test_multicycle_cosim () =
  (* multicycle latencies change the schedule shape but not the results;
     the co-simulation verifies every block *)
  let base = Dts_core.Config.ideal () in
  let cfg =
    {
      base with
      sched = { base.sched with latencies = Dts_isa.Instr.multicycle_latencies };
      primary_timing =
        { base.primary_timing with latencies = Dts_isa.Instr.multicycle_latencies };
    }
  in
  let m, p, _ =
    run_source ~cfg
      {| int r;
         int main() {
           int i; int s;
           s = 0;
           for (i = 1; i < 400; i = i + 1) { s = s + (s * 3 + i) / i; }
           r = s;
           return 0;
         } |}
  in
  check_bool "completed with multicycle units" true (global m p "r" <> 0)

let test_stats_collected () =
  let m, _, n = run_asm (vector_sum_asm 300) in
  check_bool "instructions counted" true (n > 1000);
  check_bool "slot utilisation in (0,1]" true
    (Dts_core.Machine.slot_utilisation m > 0.0
    && Dts_core.Machine.slot_utilisation m <= 1.0);
  check_bool "renaming registers tracked" true
    (Array.exists (fun v -> v > 0) (Dts_core.Machine.stats m).rr_max)

(* property: ANY configuration must simulate correctly — the co-simulation
   raises on divergence, so surviving the run is the assertion *)
let prop_random_config_correct =
  let open QCheck2.Gen in
  let gen_cfg =
    let* width = int_range 1 16 in
    let* height = int_range 1 16 in
    let* renaming = bool in
    let* resplit = bool in
    let* mem_motion = bool in
    let* strict = bool in
    let* store_list = bool in
    let* nlp = bool in
    let* multicycle = bool in
    let* vkb = oneofl [ 1; 4; 48; 3072 ] in
    let* vassoc = oneofl [ 1; 2; 4 ] in
    let base = Dts_core.Config.ideal ~width ~height () in
    return
      {
        base with
        sched =
          {
            base.sched with
            renaming;
            resplit_on_control = resplit;
            mem_motion;
            strict_control_insert = strict;
            latencies =
              (if multicycle then Dts_isa.Instr.multicycle_latencies
               else Dts_isa.Instr.unit_latencies);
          };
        vliw_cache = { kb = vkb; assoc = vassoc };
        store_scheme =
          (if store_list then Dts_vliw.Engine.Data_store_list
           else Dts_vliw.Engine.Checkpoint_recovery);
        next_li_prediction = nlp;
        primary_timing =
          {
            base.primary_timing with
            latencies =
              (if multicycle then Dts_isa.Instr.multicycle_latencies
               else Dts_isa.Instr.unit_latencies);
          };
        memcmp_interval = 16;
      }
  in
  QCheck2.Test.make ~count:25 ~name:"any configuration co-simulates cleanly"
    gen_cfg (fun cfg ->
      let program =
        Dts_workloads.Workloads.program ~scale:1
          (Dts_workloads.Workloads.find "compress")
      in
      let m = Dts_core.Machine.create cfg program in
      let n = Dts_core.Machine.run ~max_instructions:20_000 m in
      n >= 20_000)

let suite =
  [
    Alcotest.test_case "vector sum (fig 2 kernel)" `Quick test_vector_sum;
    Alcotest.test_case "ipc beats sequential" `Quick
      test_vector_sum_beats_primary_alone;
    Alcotest.test_case "fib co-simulation" `Quick test_fib_cosim;
    Alcotest.test_case "sort co-simulation" `Quick test_sort_cosim;
    Alcotest.test_case "memory dependencies" `Quick
      test_pointer_chase_aliasing_paths;
    Alcotest.test_case "window traps in blocks" `Quick
      test_deep_recursion_window_traps;
    Alcotest.test_case "flags renaming" `Quick test_flags_renaming;
    Alcotest.test_case "geometry affects ipc" `Quick test_geometry_affects_ipc;
    Alcotest.test_case "feasible machine" `Quick test_feasible_machine_runs;
    Alcotest.test_case "vliw cycle fraction" `Quick
      test_vliw_cycle_fraction_high_for_loops;
    Alcotest.test_case "tiny vliw cache" `Quick test_tiny_vliw_cache_still_correct;
    Alcotest.test_case "no renaming still correct" `Quick
      test_no_renaming_still_correct;
    Alcotest.test_case "renaming improves ipc" `Quick test_renaming_improves_ipc;
    Alcotest.test_case "heterogeneous FUs" `Quick test_heterogeneous_fu_constraint;
    Alcotest.test_case "stats collected" `Quick test_stats_collected;
    Alcotest.test_case "multicycle co-sim" `Quick test_multicycle_cosim;
    Alcotest.test_case "data store list scheme" `Quick
      test_data_store_list_scheme;
    Alcotest.test_case "store schemes agree" `Quick test_schemes_agree;
    Alcotest.test_case "next-li prediction" `Quick test_next_li_prediction_helps;
    QCheck_alcotest.to_alcotest prop_random_config_correct;
  ]
