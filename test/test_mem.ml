(* Unit and property tests for the memory substrate. *)

open Dts_mem

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_rw_roundtrip () =
  let m = Memory.create () in
  Memory.write m ~addr:0x1000 ~size:4 0x12345678;
  check_int "word" 0x12345678 (Memory.read m ~addr:0x1000 ~size:4 ~signed:true);
  Memory.write m ~addr:0x2000 ~size:1 0xFF;
  check_int "byte signed" (-1) (Memory.read m ~addr:0x2000 ~size:1 ~signed:true);
  check_int "byte unsigned" 0xFF (Memory.read m ~addr:0x2000 ~size:1 ~signed:false);
  Memory.write m ~addr:0x2002 ~size:2 0x8000;
  check_int "half signed" (-32768) (Memory.read m ~addr:0x2002 ~size:2 ~signed:true);
  check_int "half unsigned" 0x8000 (Memory.read m ~addr:0x2002 ~size:2 ~signed:false)

let test_big_endian () =
  let m = Memory.create () in
  Memory.write m ~addr:0x100 ~size:4 0x0A0B0C0D;
  check_int "msb first" 0x0A (Memory.read m ~addr:0x100 ~size:1 ~signed:false);
  check_int "lsb last" 0x0D (Memory.read m ~addr:0x103 ~size:1 ~signed:false)

let test_zero_default () =
  let m = Memory.create () in
  check_int "untouched reads zero" 0
    (Memory.read m ~addr:0xABC000 ~size:4 ~signed:true)

let test_misaligned () =
  let m = Memory.create () in
  Alcotest.check_raises "misaligned word" (Memory.Misaligned 0x1002) (fun () ->
      ignore (Memory.read m ~addr:0x1002 ~size:4 ~signed:true));
  Alcotest.check_raises "misaligned half" (Memory.Misaligned 0x1001) (fun () ->
      Memory.write m ~addr:0x1001 ~size:2 1)

let test_negative_word () =
  let m = Memory.create () in
  Memory.write m ~addr:0x40 ~size:4 (-5);
  check_int "negative round-trips" (-5)
    (Memory.read m ~addr:0x40 ~size:4 ~signed:true)

let test_copy_and_equal () =
  let m = Memory.create () in
  Memory.write m ~addr:0x500 ~size:4 42;
  let m2 = Memory.copy m in
  check_bool "copies equal" true (Memory.equal m m2);
  Memory.write m2 ~addr:0x504 ~size:4 7;
  check_bool "diverged" false (Memory.equal m m2);
  Alcotest.(check (option int))
    "first difference" (Some 0x507)
    (Memory.first_difference m m2)

(* ---- one-entry lookaside vs copy/clear ----

   Page resolution caches the last (index, page) pair. [copy] and [clear]
   must never let that cache alias across memories or resurrect stale
   pages: a copy starts with a cold lookaside, and the source's warm entry
   must keep pointing at the source's own page after the fork. *)

let test_copy_lookaside_cold () =
  let m = Memory.create () in
  (* warm the source's lookaside on page 1 *)
  Memory.write m ~addr:0x1000 ~size:4 0xAB;
  let c = Memory.copy m in
  check_bool "fork point equal" true (Memory.equal m c);
  (* write through the copy into the page the source has cached *)
  Memory.write c ~addr:0x1004 ~size:4 77;
  check_int "source unchanged by copy's write" 0
    (Memory.read m ~addr:0x1004 ~size:4 ~signed:false);
  (* the source's warm lookaside still resolves to its own page *)
  Memory.write m ~addr:0x1008 ~size:4 88;
  check_int "copy unchanged by source's write" 0
    (Memory.read c ~addr:0x1008 ~size:4 ~signed:false);
  check_int "copy kept its own write" 77
    (Memory.read c ~addr:0x1004 ~size:4 ~signed:false);
  check_int "source kept the pre-fork write" 0xAB
    (Memory.read c ~addr:0x1000 ~size:4 ~signed:false)

let test_copy_fires_reset_hooks () =
  (* derived caches on the source (pre-decode, plans) must be told to
     flush at the fork point — [copy] fires the source's reset hooks *)
  let m = Memory.create () in
  let fired = ref 0 in
  Memory.add_reset_hook m (fun () -> incr fired);
  ignore (Memory.copy m);
  check_int "reset hook fired once per copy" 1 !fired;
  ignore (Memory.copy m);
  check_int "and again on the next copy" 2 !fired

let test_clear_cycles () =
  let m = Memory.create () in
  Memory.write m ~addr:0x3000 ~size:4 5;
  Memory.write m ~addr:0xFFFFFFFC ~size:4 9;
  Memory.clear m;
  check_int "cleared low" 0 (Memory.read m ~addr:0x3000 ~size:4 ~signed:false);
  check_int "cleared high" 0 (Memory.read_u32 m 0xFFFFFFFC);
  (* the lookaside survives the sweep and still resolves correctly *)
  Memory.write m ~addr:0x3000 ~size:4 6;
  check_int "write after clear" 6
    (Memory.read m ~addr:0x3000 ~size:4 ~signed:false);
  Memory.clear m;
  check_int "second cycle cleared" 0
    (Memory.read m ~addr:0x3000 ~size:4 ~signed:false);
  check_bool "clear leaves memory equal to fresh" true
    (Memory.equal m (Memory.create ()))

let test_zero_page_equal () =
  let m = Memory.create () in
  let m2 = Memory.create () in
  Memory.write m ~addr:0x500 ~size:4 0;
  check_bool "explicit zero equals untouched" true (Memory.equal m m2)

let test_load_bytes () =
  let m = Memory.create () in
  Memory.load_bytes m ~addr:0x10 "\x01\x02\x03\x04";
  check_int "bulk load" 0x01020304 (Memory.read m ~addr:0x10 ~size:4 ~signed:false)

(* The top word of the 32-bit address space, and address wraparound: an
   aligned access at 0xFFFFFFFC is legal and must land in the same place
   whether the address arrives masked or with bits above bit 31 set (the
   fast word accessors mask exactly as the per-byte path does). *)
let test_top_of_address_space () =
  let m = Memory.create () in
  Memory.write m ~addr:0xFFFFFFFC ~size:4 0x0A0B0C0D;
  check_int "word back" 0x0A0B0C0D
    (Memory.read m ~addr:0xFFFFFFFC ~size:4 ~signed:false);
  check_int "read_u32 agrees" 0x0A0B0C0D (Memory.read_u32 m 0xFFFFFFFC);
  check_int "last byte of the space" 0x0D
    (Memory.read m ~addr:0xFFFFFFFF ~size:1 ~signed:false);
  (* bits above the 32-bit space are masked off, not faulted or aliased
     into a fresh page *)
  check_int "2^32 + 0xFFFFFFFC aliases" 0x0A0B0C0D
    (Memory.read m ~addr:0x1FFFFFFFC ~size:4 ~signed:false);
  Memory.write m ~addr:0x1FFFFFFFC ~size:4 0x01020304;
  check_int "aliased write lands at the masked address" 0x01020304
    (Memory.read_u32 m 0xFFFFFFFC);
  (* address 0 is a different location: no wraparound bleed *)
  check_int "address 0 untouched" 0 (Memory.read_u32 m 0)

(* load_bytes notifies word-granular consumers (the pre-decoded
   instruction store) exactly once per touched 32-bit word, for any
   alignment and length. *)
let test_load_bytes_one_hook_per_word () =
  let check_span ~addr s =
    let m = Memory.create () in
    let calls = ref [] in
    Memory.add_write_hook m (fun a -> calls := a :: !calls);
    Memory.load_bytes m ~addr s;
    let expected =
      if String.length s = 0 then []
      else
        let first = addr land lnot 3 in
        let last = (addr + String.length s - 1) land lnot 3 in
        List.init (((last - first) / 4) + 1) (fun i -> first + (i * 4))
    in
    Alcotest.(check (list int))
      (Printf.sprintf "words notified for addr=%#x len=%d" addr
         (String.length s))
      expected
      (List.sort compare !calls)
  in
  check_span ~addr:0x100 "\x01\x02\x03\x04";
  (* unaligned start, crossing into a second word *)
  check_span ~addr:0x102 "\x01\x02\x03\x04";
  (* single byte *)
  check_span ~addr:0x203 "\xFF";
  (* long span, unaligned both ends *)
  check_span ~addr:0x301 (String.make 11 'x');
  (* empty load notifies nothing *)
  check_span ~addr:0x400 ""

(* Cache.access victim selection. *)
let test_cache_victim_all_invalid () =
  (* 4-way set: four misses to aliasing tags must each claim an invalid
     way, never evict a just-filled one — all four then hit *)
  let c =
    Cache.create ~size_bytes:1024 ~line_bytes:16 ~assoc:4 ~miss_penalty:10
  in
  let addrs = List.init 4 (fun i -> (i + 1) * 256) in
  List.iter (fun a -> check_int "cold miss" 10 (Cache.access c a)) addrs;
  List.iter (fun a -> check_int "resident after fill" 0 (Cache.access c a)) addrs;
  check_int "misses" 4 (Cache.misses c);
  check_int "hits" 4 (Cache.hits c)

let test_cache_victim_true_lru () =
  let c =
    Cache.create ~size_bytes:1024 ~line_bytes:16 ~assoc:4 ~miss_penalty:10
  in
  let addr i = i * 256 in
  (* fill the set in order A B C D, then refresh A: LRU is now B *)
  List.iter (fun i -> ignore (Cache.access c (addr i))) [ 1; 2; 3; 4 ];
  check_int "A still resident" 0 (Cache.access c (addr 1));
  ignore (Cache.access c (addr 5));
  check_bool "E resident" true (Cache.probe c (addr 5));
  check_bool "B evicted (true LRU)" false (Cache.probe c (addr 2));
  List.iter
    (fun i ->
      check_bool (Printf.sprintf "tag %d survives" i) true
        (Cache.probe c (addr i)))
    [ 1; 3; 4 ];
  (* a second conflict evicts C, the next-oldest *)
  ignore (Cache.access c (addr 6));
  check_bool "C evicted next" false (Cache.probe c (addr 3))

let prop_rw count =
  QCheck2.Test.make ~count ~name:"memory read-after-write"
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (tup2 (int_range 0 0xFFFF) (int_range (-2147483648) 2147483647)))
    (fun writes ->
      let m = Memory.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (slot, v) ->
          let addr = slot * 4 in
          Memory.write m ~addr ~size:4 v;
          Hashtbl.replace model addr v)
        writes;
      Hashtbl.fold
        (fun addr v ok ->
          ok && Memory.read m ~addr ~size:4 ~signed:true = v land 0xFFFFFFFF
                || Memory.read m ~addr ~size:4 ~signed:true
                   = (v lsl (Sys.int_size - 32)) asr (Sys.int_size - 32))
        model true)

let test_cache_direct_mapped () =
  let c = Cache.create ~size_bytes:1024 ~line_bytes:32 ~assoc:1 ~miss_penalty:8 in
  check_int "cold miss" 8 (Cache.access c 0);
  check_int "hit" 0 (Cache.access c 4);
  check_int "conflicting line" 8 (Cache.access c 1024);
  check_int "evicted" 8 (Cache.access c 0);
  check_int "hits" 1 (Cache.hits c);
  check_int "misses" 3 (Cache.misses c)

let test_cache_assoc_lru () =
  let c = Cache.create ~size_bytes:64 ~line_bytes:32 ~assoc:2 ~miss_penalty:8 in
  (* one set of two ways *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 32);
  check_int "both resident" 0 (Cache.access c 0);
  (* 0 is now MRU; inserting a third line evicts 32 *)
  ignore (Cache.access c 64);
  check_int "lru evicted" 8 (Cache.access c 32);
  check_bool "0 evicted by 32's refill (now lru=64)" true
    (Cache.probe c 32)

let test_cache_perfect () =
  let c = Cache.perfect () in
  check_int "always hits" 0 (Cache.access c 123456);
  check_bool "probe hits" true (Cache.probe c 98765)

let test_blockcache_basic () =
  let bc = Blockcache.create ~n_sets:4 ~assoc:2 in
  Alcotest.(check (option string)) "miss" None (Blockcache.find bc 0x1000);
  ignore (Blockcache.insert bc 0x1000 "a");
  Alcotest.(check (option string)) "hit" (Some "a") (Blockcache.find bc 0x1000);
  ignore (Blockcache.insert bc 0x1000 "b");
  Alcotest.(check (option string)) "replaced" (Some "b") (Blockcache.find bc 0x1000);
  check_bool "invalidate" true (Blockcache.invalidate bc 0x1000);
  Alcotest.(check (option string)) "gone" None (Blockcache.find bc 0x1000)

let test_blockcache_lru_eviction () =
  let bc = Blockcache.create ~n_sets:1 ~assoc:2 in
  ignore (Blockcache.insert bc 0x10 "a");
  ignore (Blockcache.insert bc 0x20 "b");
  ignore (Blockcache.find bc 0x10);
  (* b is LRU *)
  let evicted = Blockcache.insert bc 0x30 "c" in
  Alcotest.(check (option string)) "evicted lru" (Some "b") evicted;
  check_bool "a kept" true (Blockcache.probe bc 0x10);
  check_bool "b gone" false (Blockcache.probe bc 0x20)

let test_blockcache_sets () =
  let bc = Blockcache.create ~n_sets:2 ~assoc:1 in
  (* addresses 0x0 and 0x4 land in different sets (word-indexed) *)
  ignore (Blockcache.insert bc 0x0 "a");
  ignore (Blockcache.insert bc 0x4 "b");
  check_bool "no conflict across sets" true
    (Blockcache.probe bc 0x0 && Blockcache.probe bc 0x4)

(* ---- on_drop observer: firing order and exactly-once semantics ----

   The machine's compiled-plan store releases derived state from this
   callback, so the contract is load-bearing: every resident payload that
   leaves the cache — same-key replacement, LRU eviction, invalidate,
   invalidate_all — is reported exactly once, at the moment it leaves, with
   the key it was inserted under. *)

let test_blockcache_on_drop_order () =
  let bc = Blockcache.create ~n_sets:1 ~assoc:2 in
  let drops = ref [] in
  Blockcache.set_on_drop bc (fun key payload ->
      drops := (key, payload) :: !drops);
  ignore (Blockcache.insert bc 0x10 "a");
  ignore (Blockcache.insert bc 0x20 "b");
  Alcotest.(check int) "no drops while filling" 0 (List.length !drops);
  (* same-key replacement drops the old payload, not the other way *)
  ignore (Blockcache.insert bc 0x10 "a2");
  (* make 0x10 the LRU, then evict it with a conflicting insert *)
  ignore (Blockcache.find bc 0x20);
  ignore (Blockcache.insert bc 0x30 "c");
  (* explicit invalidation; a second invalidate of the same key must not
     re-fire the observer *)
  check_bool "invalidate hit" true (Blockcache.invalidate bc 0x20);
  check_bool "invalidate miss" false (Blockcache.invalidate bc 0x20);
  Blockcache.invalidate_all bc;
  Blockcache.invalidate_all bc;
  Alcotest.(check (list (pair int string)))
    "drop events in order"
    [ (0x10, "a"); (0x10, "a2"); (0x20, "b"); (0x30, "c") ]
    (List.rev !drops)

let test_blockcache_on_drop_exactly_once () =
  (* replacement + invalidation storm: every payload carries a unique
     serial; each serial must be dropped exactly once, under its own key,
     and only while resident *)
  let bc = Blockcache.create ~n_sets:4 ~assoc:2 in
  let resident = Hashtbl.create 64 in
  (* serial -> key *)
  let drop_count = ref 0 and insert_count = ref 0 in
  Blockcache.set_on_drop bc (fun key serial ->
      (match Hashtbl.find_opt resident serial with
      | None -> Alcotest.failf "serial %d dropped while not resident" serial
      | Some k ->
        Alcotest.(check int)
          (Printf.sprintf "serial %d dropped under its key" serial)
          k key);
      Hashtbl.remove resident serial;
      incr drop_count);
  let rng = ref 12345 in
  let next n =
    rng := ((!rng * 1103515245) + 12421) land 0x3FFFFFFF;
    !rng mod n
  in
  for serial = 1 to 1000 do
    match next 20 with
    | 0 ->
      ignore (Blockcache.invalidate bc (next 16 * 4))
    | 1 -> Blockcache.invalidate_all bc
    | 2 -> ignore (Blockcache.find bc (next 16 * 4))
    | _ ->
      let key = next 16 * 4 in
      (* same-key replacement drops the previous resident before the
         insert returns, so record residency first *)
      Hashtbl.replace resident serial key;
      incr insert_count;
      ignore (Blockcache.insert bc key serial)
  done;
  Blockcache.invalidate_all bc;
  Alcotest.(check int) "cache empty after flush" 0 (Blockcache.entry_count bc);
  Alcotest.(check int) "nothing left resident" 0 (Hashtbl.length resident);
  Alcotest.(check int) "every insert dropped exactly once" !insert_count
    !drop_count

let suite =
  [
    Alcotest.test_case "rw roundtrip" `Quick test_rw_roundtrip;
    Alcotest.test_case "big endian" `Quick test_big_endian;
    Alcotest.test_case "zero default" `Quick test_zero_default;
    Alcotest.test_case "misaligned" `Quick test_misaligned;
    Alcotest.test_case "top of address space" `Quick test_top_of_address_space;
    Alcotest.test_case "load_bytes one hook per word" `Quick
      test_load_bytes_one_hook_per_word;
    Alcotest.test_case "cache victim: all-invalid set" `Quick
      test_cache_victim_all_invalid;
    Alcotest.test_case "cache victim: true LRU" `Quick
      test_cache_victim_true_lru;
    Alcotest.test_case "negative word" `Quick test_negative_word;
    Alcotest.test_case "copy and equal" `Quick test_copy_and_equal;
    Alcotest.test_case "copy: lookaside stays cold" `Quick
      test_copy_lookaside_cold;
    Alcotest.test_case "copy fires reset hooks" `Quick
      test_copy_fires_reset_hooks;
    Alcotest.test_case "clear cycles" `Quick test_clear_cycles;
    Alcotest.test_case "zero page equal" `Quick test_zero_page_equal;
    Alcotest.test_case "load bytes" `Quick test_load_bytes;
    QCheck_alcotest.to_alcotest (prop_rw 200);
    Alcotest.test_case "cache direct mapped" `Quick test_cache_direct_mapped;
    Alcotest.test_case "cache assoc lru" `Quick test_cache_assoc_lru;
    Alcotest.test_case "cache perfect" `Quick test_cache_perfect;
    Alcotest.test_case "blockcache basic" `Quick test_blockcache_basic;
    Alcotest.test_case "blockcache lru" `Quick test_blockcache_lru_eviction;
    Alcotest.test_case "blockcache sets" `Quick test_blockcache_sets;
    Alcotest.test_case "blockcache on_drop order" `Quick
      test_blockcache_on_drop_order;
    Alcotest.test_case "blockcache on_drop exactly-once under storm" `Quick
      test_blockcache_on_drop_exactly_once;
  ]
