(* The differential fuzzing subsystem (lib/fuzz).

   The load-bearing properties: generation is a pure function of the seed
   (the reproducibility contract printed in every reproducer header), every
   generated program halts on the golden model within the static fuel bound
   (termination by construction: counted loops on reserved counters, bounded
   nesting), campaigns are bit-identical for every --jobs value, reproducer
   files round-trip, and — the mutation-sanity check — seeding a known
   scheduler-correctness bug (dropping the store-side aliasing check in
   Dts_vliw.Aliaslog) makes the fixed 64-seed smoke corpus fail with a
   shrunken reproducer of at most 20 live instructions. *)

open Dts_fuzz

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let program_equal (a : Dts_asm.Program.t) (b : Dts_asm.Program.t) =
  a.entry = b.entry && a.text = b.text && a.data = b.data

(* -------- PRNG -------- *)

let test_sprng_determinism () =
  let a = Sprng.create 99 and b = Sprng.create 99 in
  for _ = 1 to 1000 do
    check_bool "same stream" true (Sprng.bits a = Sprng.bits b)
  done;
  let a = Sprng.create 1 and b = Sprng.create 2 in
  check_bool "different seeds diverge" true
    (List.init 16 (fun _ -> Sprng.bits a)
    <> List.init 16 (fun _ -> Sprng.bits b))

let test_sprng_ranges () =
  let rng = Sprng.create 7 in
  for _ = 1 to 1000 do
    let n = Sprng.int rng 13 in
    check_bool "int in range" true (n >= 0 && n < 13);
    let r = Sprng.range rng 5 9 in
    check_bool "range inclusive" true (r >= 5 && r <= 9)
  done;
  (* derive must give distinct per-program seeds *)
  let seeds = List.init 100 (Sprng.derive 42) in
  check_int "derived seeds distinct" 100
    (List.length (List.sort_uniq compare seeds))

(* -------- generator -------- *)

let test_generate_deterministic () =
  let p1 = Gen.generate ~seed:12345 () in
  let p2 = Gen.generate ~seed:12345 () in
  check_bool "same seed, same program" true (program_equal p1 p2);
  let p3 = Gen.generate ~seed:12346 () in
  check_bool "different seed, different program" false (program_equal p1 p3)

let test_generate_terminates () =
  (* every generated program halts on the golden model within the campaign
     fuel bound — the generator's termination-by-construction argument *)
  let fuel = Gen.dynamic_bound ~max_insns:Gen.default_max_insns in
  for i = 0 to 19 do
    let seed = Sprng.derive 77 i in
    let p = Gen.generate ~seed () in
    (* the budget governs the body; the arena/seed prologue and the final
       halt ride on top of it *)
    check_bool "static budget respected" true
      (Array.length p.Dts_asm.Program.text <= Gen.default_max_insns + 16);
    let g = Dts_golden.Golden.of_state (Dts_asm.Program.boot p) in
    let _ = Dts_golden.Golden.run ~max_instructions:fuel g in
    check_bool
      (Printf.sprintf "seed %d halts" seed)
      true
      (Dts_golden.Golden.state g).Dts_isa.State.halted
  done

(* -------- differential oracle -------- *)

let test_campaign_passes () =
  let s = Driver.run_campaign ~seed:7 ~count:16 ~shrink:false () in
  check_int "count" 16 s.s_count;
  check_int "passed" 16 s.s_passed;
  check_int "skips" 0 (List.length s.s_skips);
  check_int "failures" 0 (List.length s.s_failures);
  check_bool "instructions compared" true (s.s_instructions > 0)

let test_campaign_jobs_deterministic () =
  let s1 = Driver.run_campaign ~jobs:1 ~seed:11 ~count:12 ~shrink:false () in
  let s3 = Driver.run_campaign ~jobs:3 ~seed:11 ~count:12 ~shrink:false () in
  check_int "passed equal" s1.s_passed s3.s_passed;
  check_int "instructions equal" s1.s_instructions s3.s_instructions;
  check_bool "skips equal" true (s1.s_skips = s3.s_skips)

(* -------- reproducer round-trip -------- *)

let test_repro_roundtrip () =
  let p = Gen.generate ~seed:4242 () in
  let path = Filename.temp_file "dtsfuzz" ".srisc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Repro.save ~path ~seed:4242 ~geoms:"all" ~notes:[ "round-trip test" ] p;
      let q = Repro.load path in
      check_bool "program round-trips" true (program_equal p q);
      match Diff.run ~fuel:1_000_000 q with
      | Diff.Pass _ -> ()
      | Diff.Skip r -> Alcotest.failf "loaded program skipped: %s" r
      | Diff.Fail _ -> Alcotest.fail "loaded program diverged")

(* -------- shrinking -------- *)

let test_shrink_pure_predicate () =
  (* shrink against a pure predicate: "at least 3 live instructions".
     The minimiser must preserve the predicate and never grow the program. *)
  let p = Gen.generate ~seed:5150 () in
  let live0 = Shrink.live_instructions p in
  check_bool "enough raw material" true (live0 > 10);
  let check q = Shrink.live_instructions q >= 3 in
  let s = Shrink.shrink ~check p in
  check_bool "predicate preserved" true (check s);
  check_bool "no growth" true (Shrink.live_instructions s <= live0);
  check_bool "actually shrank" true (Shrink.live_instructions s < live0 / 2);
  (* layout is preserved: same entry, and every retained slot keeps the
     address it had in the original (truncation only cuts the tail) *)
  check_int "entry preserved" p.Dts_asm.Program.entry s.Dts_asm.Program.entry;
  Array.iteri
    (fun i (addr, _) ->
      check_int "slot address preserved" (fst p.Dts_asm.Program.text.(i)) addr)
    s.Dts_asm.Program.text

(* -------- mutation sanity -------- *)

let test_mutation_sanity () =
  (* Seed the classic lost-aliasing-check bug — stores no longer checked
     against logged loads/stores — and demand the fixed 64-seed smoke
     corpus catches it, with a shrunken reproducer of <= 20 live
     instructions. This is the proof the differential oracle has teeth. *)
  Dts_vliw.Aliaslog.fault_skip_store_check := true;
  Fun.protect
    ~finally:(fun () -> Dts_vliw.Aliaslog.fault_skip_store_check := false)
    (fun () ->
      let s = Driver.run_campaign ~seed:1 ~count:64 ~shrink:true () in
      check_bool "corpus catches the seeded bug" true (s.s_failures <> []);
      List.iter
        (fun (f : Driver.failure) ->
          check_bool
            (Printf.sprintf "seed %d reproducer <= 20 live insns (got %d)"
               f.f_seed f.f_live)
            true (f.f_live <= 20);
          check_bool "shrunk program still diverges" true
            (Diff.diverges
               ~fuel:(Gen.dynamic_bound ~max_insns:Gen.default_max_insns)
               f.f_shrunk))
        s.s_failures);
  (* with the fault cleared the same corpus must be clean again *)
  let s = Driver.run_campaign ~seed:1 ~count:64 ~shrink:false () in
  check_int "healthy corpus passes" 64 s.s_passed

let suite =
  [
    Alcotest.test_case "sprng determinism" `Quick test_sprng_determinism;
    Alcotest.test_case "sprng ranges and derive" `Quick test_sprng_ranges;
    Alcotest.test_case "generator determinism" `Quick
      test_generate_deterministic;
    Alcotest.test_case "generated programs terminate" `Quick
      test_generate_terminates;
    Alcotest.test_case "campaign passes" `Quick test_campaign_passes;
    Alcotest.test_case "campaign jobs-deterministic" `Quick
      test_campaign_jobs_deterministic;
    Alcotest.test_case "reproducer round-trip" `Quick test_repro_roundtrip;
    Alcotest.test_case "shrink with pure predicate" `Quick
      test_shrink_pure_predicate;
    Alcotest.test_case "mutation sanity: seeded aliasing bug is caught" `Slow
      test_mutation_sanity;
  ]
