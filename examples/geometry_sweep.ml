(* Sweep block geometry on one workload and watch the paper's Figure 5
   trade-off: block width vs block height at equal block sizes.

   dune exec examples/geometry_sweep.exe -- [workload] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "ijpeg" in
  let w = Dts_workloads.Workloads.find name in
  Printf.printf "workload: %s (mirrors %s)\n%s\n\n" w.name w.mirrors w.character;
  Printf.printf "%8s  %6s  %10s  %8s  %7s\n" "geometry" "IPC" "slots used"
    "blocks" "VLIW%";
  List.iter
    (fun (width, height) ->
      let program = Dts_workloads.Workloads.program ~scale:1 w in
      let cfg = Dts_core.Config.ideal ~width ~height () in
      let m = Dts_core.Machine.create cfg program in
      let n = Dts_core.Machine.run ~max_instructions:120_000 m in
      Printf.printf "%8s  %6.2f  %9.1f%%  %8d  %6.1f%%\n"
        (Printf.sprintf "%dx%d" width height)
        (float_of_int n /. float_of_int m.cycles)
        (100. *. Dts_core.Machine.slot_utilisation m)
        (Dts_core.Machine.stats m).blocks_flushed
        (100. *. Dts_core.Machine.vliw_cycle_fraction m))
    [ (2, 2); (4, 4); (8, 4); (4, 8); (8, 8); (16, 8); (8, 16); (16, 16) ]
