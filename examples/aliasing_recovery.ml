(* Demonstrate the memory-aliasing detection and checkpoint recovery of
   §3.10-3.11: a store whose address changes between the scheduling run and
   the VLIW replay invalidates the block and the machine recovers.

   The kernel writes through a data-dependent index that differs from
   iteration to iteration, so a load hoisted above the store on the evidence
   of one iteration's addresses can be contradicted by a later iteration.

   dune exec examples/aliasing_recovery.exe *)

let source =
  {|
        .data
buf:    .space 256
idx:    .word 0
        .text
start:  set   buf, %o1
        set   idx, %o4
        mov   0, %o0          ! checksum
        mov   0, %o2          ! i
        set   200, %l0
loop:   ld    [%o4], %o5      ! load the roving index
        sll   %o5, 2, %o5
        st    %o2, [%o1+%o5]  ! store through data-dependent address
        ld    [%o1+32], %o3   ! load that may or may not alias the store
        add   %o0, %o3, %o0
        add   %o5, 99, %o5    ! advance the roving index pseudo-randomly
        srl   %o5, 2, %o5
        and   %o5, 63, %o5
        st    %o5, [%o4]
        add   %o2, 1, %o2
        cmp   %o2, %l0
        bl    loop
        halt
|}

let () =
  let program = Dts_asm.Assembler.assemble source in
  let m = Dts_core.Machine.create (Dts_core.Config.ideal ()) program in
  let n = Dts_core.Machine.run m in
  let e = m.engine.stats in
  Printf.printf "instructions: %d, cycles: %d, IPC %.2f\n" n m.cycles
    (float_of_int n /. float_of_int m.cycles);
  Printf.printf "aliasing exceptions detected and recovered: %d\n"
    e.aliasing_exceptions;
  Printf.printf "block exceptions (checkpoint rollbacks):    %d\n"
    e.block_exceptions;
  Printf.printf "max checkpoint recovery store list:         %d\n"
    e.max_recovery_list;
  Printf.printf
    "final state verified against the golden sequential machine: yes\n";
  if e.aliasing_exceptions = 0 then
    print_endline
      "(no aliasing this run: the scheduler's observed-address dependencies\n\
       already ordered every conflicting pair; try varying the stride)"
