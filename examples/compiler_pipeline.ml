(* The whole stack in one example: compile a tinyc program, show the
   generated SRISC assembly, then run it first on the golden sequential
   machine and then on the DTSVLIW, comparing cycle counts.

   dune exec examples/compiler_pipeline.exe *)

let source =
  {|
int primes[200];
int count;

int is_prime(int n) {
  int d;
  if (n < 2) { return 0; }
  for (d = 2; d * d <= n; d = d + 1) {
    if (n % d == 0) { return 0; }
  }
  return 1;
}

int main() {
  int n;
  count = 0;
  for (n = 2; count < 200 && n < 2000; n = n + 1) {
    if (is_prime(n)) {
      primes[count] = n;
      count = count + 1;
    }
  }
  return count;
}
|}

let () =
  print_endline "=== tinyc source compiled to SRISC ===";
  let asm = Dts_tinyc.Tinyc.compile_to_assembly source in
  let lines = String.split_on_char '\n' asm in
  List.iteri (fun i l -> if i < 25 then print_endline l) lines;
  Printf.printf "... (%d lines total)\n\n" (List.length lines);

  let program = Dts_asm.Assembler.assemble asm in

  (* golden sequential run *)
  let gst = Dts_asm.Program.boot program in
  let golden = Dts_golden.Golden.of_state gst in
  let _ = Dts_golden.Golden.run golden in
  let count =
    Dts_mem.Memory.read gst.mem
      ~addr:(Dts_asm.Program.symbol program "g_count")
      ~size:4 ~signed:true
  in
  Printf.printf "golden machine: %d instructions, found %d primes\n"
    gst.instret count;

  (* DTSVLIW run (test mode validates it against the same golden model) *)
  let m = Dts_core.Machine.create (Dts_core.Config.ideal ()) program in
  let n = Dts_core.Machine.run m in
  Printf.printf "DTSVLIW: %d instructions in %d cycles -> IPC %.2f\n" n
    m.cycles
    (float_of_int n /. float_of_int m.cycles);
  Printf.printf "  (a 1-wide in-order machine needs >= %d cycles)\n" n;
  let hundredth =
    Dts_mem.Memory.read m.st.mem
      ~addr:(Dts_asm.Program.symbol program "g_primes" + (4 * 99))
      ~size:4 ~signed:true
  in
  Printf.printf "  100th prime computed in VLIW mode: %d\n" hundredth
