(* Quickstart: assemble a small SRISC program, run it on the DTSVLIW
   machine, and print what happened.

   dune exec examples/quickstart.exe *)

let program_source =
  {|
        .data
arr:    .space 512            ! 128 words
        .text
start:  set   arr, %o1
        mov   0, %o2
fill:   st    %o2, [%o1+%o2]  ! arr[i] = 4*i
        add   %o2, 4, %o2
        cmp   %o2, 512
        bl    fill
        mov   0, %o0          ! sum
        mov   0, %o2
loop:   ld    [%o1+%o2], %o3
        add   %o0, %o3, %o0
        add   %o2, 4, %o2
        cmp   %o2, 512
        bl    loop
        halt
|}

let () =
  (* 1. assemble *)
  let program = Dts_asm.Assembler.assemble program_source in
  Printf.printf "assembled %d instructions\n" (Array.length program.text);

  (* 2. build an idealised 8x8 DTSVLIW machine (perfect caches, as in the
     paper's §4.1) and run to completion; the machine co-simulates a golden
     sequential model throughout *)
  let machine = Dts_core.Machine.create (Dts_core.Config.ideal ()) program in
  let instructions = Dts_core.Machine.run machine in

  (* 3. results *)
  let sum = Dts_isa.State.get_reg machine.st ~cwp:machine.st.cwp 8 in
  Printf.printf "sum of the array: %d (expected %d)\n" sum (4 * (127 * 128 / 2));
  Printf.printf "sequential instructions: %d\n" instructions;
  Printf.printf "DTSVLIW cycles:          %d\n" machine.cycles;
  Printf.printf "instructions per cycle:  %.2f\n"
    (float_of_int instructions /. float_of_int machine.cycles);
  Printf.printf "cycles spent in the VLIW Engine: %.0f%%\n"
    (100. *. Dts_core.Machine.vliw_cycle_fraction machine);
  Printf.printf "blocks scheduled into the VLIW Cache: %d\n"
    (Dts_core.Machine.stats machine).blocks_flushed
