(* The paper's Figure 2, live: feed the vector-sum kernel's dynamic trace
   into a 3-wide, 4-deep Scheduler Unit and print the scheduling list after
   every cycle — showing insertion, move-up, splitting (the renamed add and
   its COPY) and source forwarding (the subcc consuming the renaming
   register).

   dune exec examples/trace_scheduling_demo.exe *)

open Dts_sched

let ret ?(cwp = 0) ?(taken = false) ?(next = -1) ?mem ~addr instr =
  {
    Dts_primary.Primary.instr;
    addr;
    cwp;
    next_pc = (if next >= 0 then next else addr + 4);
    taken;
    mem;
    rwsets = Dts_isa.Rwsets.of_instr ~nwindows:32 ~cwp ?mem instr;
    trapped = false;
    cycles = 1;
    icache_stall = 0;
    dcache_stall = 0;
  }

(* Figure 2b: the assembly version of `for (sum=0,i=0; i<x; i++) sum += a[i]` *)
let trace x =
  let open Dts_isa.Instr in
  [
    ("or r0,0,r9      (1)", ret ~addr:0x1000 (Alu { op = Or; cc = false; rs1 = 0; op2 = Imm 0; rd = 9 }));
    ("sethi hi(56),r8 (2)", ret ~addr:0x1004 (Sethi { imm = 56; rd = 8 }));
    ("or r8,8,r11     (3)", ret ~addr:0x1008 (Alu { op = Or; cc = false; rs1 = 8; op2 = Imm 8; rd = 11 }));
    ("or r0,0,r10     (4)", ret ~addr:0x100c (Alu { op = Or; cc = false; rs1 = 0; op2 = Imm 0; rd = 10 }));
    ("ld [r10+r11],r8 (5)", ret ~addr:0x1010 ~mem:(0xE008, 4) (Load { size = Lw; rs1 = 10; op2 = Reg 11; rd = 8 }));
    ("add r9,r8,r9    (6)", ret ~addr:0x1014 (Alu { op = Add; cc = false; rs1 = 9; op2 = Reg 8; rd = 9 }));
    ("add r10,4,r10   (7)", ret ~addr:0x1018 (Alu { op = Add; cc = false; rs1 = 10; op2 = Imm 4; rd = 10 }));
    ( "subcc r10,...   (8)",
      ret ~addr:0x101c
        (Alu { op = Sub; cc = true; rs1 = 10; op2 = Imm ((4 * x) - 1); rd = 0 }) );
    ( "ble loop        (9)",
      ret ~addr:0x1020 ~taken:true ~next:0x1010 (Branch { cond = LE; target = 0x1010 }) );
  ]

let () =
  print_endline
    "Scheduling the Figure 2 trace into a 3-wide x 4-deep scheduling list.";
  print_endline
    "(slh = scheduling list head, slt = tail; * marks a renamed op)\n";
  let t =
    Sched_unit.create
      { Sched_unit.default_config with width = 3; height = 4 }
  in
  let cycle = ref 0 in
  let show () = Format.printf "cycle %d:@.%a@." !cycle Sched_unit.pp t in
  List.iteri
    (fun k (name, r) ->
      incr cycle;
      ignore (Sched_unit.tick t);
      (* mirror the paper's pipeline timing: the split of instruction 7
         completes before the subcc arrives *)
      if k = 7 then begin
        incr cycle;
        ignore (Sched_unit.tick t)
      end;
      Format.printf "--- inserting %s@." name;
      (match Sched_unit.insert t r with
      | `Ok -> ()
      | `Full -> Format.printf "(list full: block flushed)@.");
      show ())
    (trace 10);
  (* let the remaining candidates settle, as in the paper's 11-cycle view *)
  for _ = 1 to 2 do
    incr cycle;
    ignore (Sched_unit.tick t);
    show ()
  done;
  match Sched_unit.finish_block t ~nba_addr:0x1024 with
  | Some b ->
    Format.printf "block finished: %d long instructions, %d slots filled@."
      (Array.length b.Schedtypes.lis)
      b.n_slots_filled
  | None -> ()
