(* tinyc compiler CLI: compile to SRISC assembly, optionally run.

   Examples:
     tinycc prog.c            # print generated assembly
     tinycc prog.c --run      # compile, assemble, run on the golden machine *)

open Cmdliner

let run file run_it fuel =
  let src = In_channel.with_open_text file In_channel.input_all in
  match Dts_tinyc.Tinyc.compile_to_assembly src with
  | exception Dts_tinyc.Lexer.Error { line; msg } ->
    Printf.eprintf "%s:%d: lexical error: %s\n" file line msg;
    exit 1
  | exception Dts_tinyc.Parser.Error { line; msg } ->
    Printf.eprintf "%s:%d: parse error: %s\n" file line msg;
    exit 1
  | exception Dts_tinyc.Codegen.Error msg ->
    Printf.eprintf "%s: %s\n" file msg;
    exit 1
  | asm ->
    if not run_it then print_string asm
    else begin
      let program = Dts_asm.Assembler.assemble asm in
      let st = Dts_asm.Program.boot program in
      let g = Dts_golden.Golden.of_state st in
      let n = Dts_golden.Golden.run ~max_instructions:fuel g in
      Printf.printf "ran %d instructions; halted=%b; main returned %d\n" n
        st.halted
        (Dts_isa.State.get_reg st ~cwp:st.cwp 8)
    end

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c" ~doc:"tinyc source")

let run_arg = Arg.(value & flag & info [ "r"; "run" ] ~doc:"Run on the golden machine")
let fuel_arg = Arg.(value & opt int 50_000_000 & info [ "fuel" ] ~doc:"Max instructions")

let cmd =
  Cmd.v
    (Cmd.info "tinycc" ~doc:"tinyc to SRISC compiler")
    Term.(const run $ file_arg $ run_arg $ fuel_arg)

let () = exit (Cmd.eval cmd)
