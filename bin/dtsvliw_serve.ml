(* The campaign server CLI.

   `dtsvliw_serve daemon` runs a long-lived Unix-domain-socket server
   that executes Job descriptors (figures, fuzz batches, workload runs)
   on a pool of forked worker processes; the other subcommands are thin
   protocol clients. `dtsvliw_serve worker` is the internal per-shard
   worker entrypoint the daemon forks — not meant for interactive use.

   Examples:
     dtsvliw_serve daemon --socket /tmp/dts.sock --workers 4 &
     dtsvliw_serve submit --socket /tmp/dts.sock --figure fig6 --budget 400
     dtsvliw_serve submit --socket /tmp/dts.sock --fuzz --seed 1 --count 64
     dtsvliw_serve results --socket /tmp/dts.sock --id 1 --text
     dtsvliw_serve shutdown --socket /tmp/dts.sock

   The streamed outcome text is byte-identical to the one-shot CLI
   (experiments / dtsfuzz / dtsvliw_sim) at the same budget and seed,
   whatever the worker count — `dune build @serve-smoke` enforces it. *)

open Cmdliner
open Dts_job

let socket_arg =
  Arg.(
    value
    & opt string "dtsvliw_serve.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket path.")

(* ---------- daemon ---------- *)

let daemon socket workers retry_budget trace_file =
  Cli.check_positive ~what:"--workers" workers;
  Cli.check_non_negative ~what:"--retry-budget" retry_budget;
  let trace_oc = Option.map open_out trace_file in
  let tracer =
    match trace_oc with
    | None -> Dts_obs.Trace.null
    | Some oc -> Dts_obs.Trace.to_channel oc
  in
  Dts_serve.Daemon.serve ~workers ~retry_budget ~tracer ~socket_path:socket ()

let daemon_cmd =
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Concurrent worker processes. Job outcomes are byte-identical \
             for every value.")
  in
  let retry_arg =
    Arg.(
      value
      & opt int Dts_serve.Daemon.default_retry_budget
      & info [ "retry-budget" ] ~docv:"N"
          ~doc:"Worker deaths tolerated per shard before the job fails.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the job lifecycle trace (submit, shard completions, \
             retries, terminal states) as JSONL to $(docv).")
  in
  Cmd.v
    (Cli.cmd_info "daemon" ~doc:"run the campaign daemon (blocks until shutdown)")
    Term.(const daemon $ socket_arg $ workers_arg $ retry_arg $ trace_arg)

(* ---------- worker (internal) ---------- *)

let worker_cmd =
  Cmd.v
    (Cli.cmd_info "worker"
       ~doc:"internal per-shard worker entrypoint (forked by the daemon)")
    Term.(const Dts_serve.Worker.main $ const ())

(* ---------- submit ---------- *)

let build_job ~figure ~fuzz ~workload ~file ~json ~budget ~scale ~seed ~count
    ~max_insns ~config ~no_shrink ~out_dir =
  Cli.check_positive ~what:"--budget" budget;
  Cli.check_positive ~what:"--scale" scale;
  match (figure, fuzz, workload, file, json) with
  | Some name, false, None, None, None -> Job.figure ~budget ~scale name
  | None, true, None, None, None ->
    Cli.check_positive ~what:"--count" count;
    Cli.check_positive ~what:"--max-insns" max_insns;
    ignore (Cli.geoms_of_config config);
    Job.fuzz_batch ~max_insns ~config ~shrink:(not no_shrink) ?out_dir ~seed
      ~count ()
  | None, false, Some name, None, None ->
    Job.workload ~budget ~scale (Job.Builtin name)
  | None, false, None, Some path, None ->
    Job.workload ~budget ~scale (Job.File path)
  | None, false, None, None, Some j -> (
    match Job.of_string j with Ok job -> job | Error msg -> Cli.die "%s" msg)
  | _ ->
    Cli.die
      "specify exactly one of --figure NAME, --fuzz, --workload NAME, --file \
       PATH or --job JSON"

let submit socket figure fuzz workload file json budget scale seed count
    max_insns config no_shrink out_dir priority fault_kills =
  let job =
    build_job ~figure ~fuzz ~workload ~file ~json ~budget ~scale ~seed ~count
      ~max_insns ~config ~no_shrink ~out_dir
  in
  Cli.check (Job.validate job);
  Cli.check_non_negative ~what:"--fault-kills" fault_kills;
  match Dts_serve.Client.submit socket ~job ~priority ~fault_kills with
  | Ok id ->
    Printf.printf "%d\n" id;
    Cli.ok
  | Error msg ->
    prerr_endline ("submit: " ^ msg);
    Cli.task_failure

let submit_cmd =
  let figure_arg =
    let names =
      String.concat ", " (List.map fst Dts_experiments.Experiments.by_name)
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "figure" ] ~docv:"NAME"
          ~doc:("Submit a figure job: " ^ names ^ "."))
  in
  let fuzz_arg =
    Arg.(value & flag & info [ "fuzz" ] ~doc:"Submit a fuzz batch job.")
  in
  let workload_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:"Submit a single built-in-workload simulation job.")
  in
  let file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"PROGRAM"
          ~doc:"Submit a program-file simulation job (.s or .c).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "job" ] ~docv:"JSON" ~doc:"Submit a raw job descriptor.")
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Fuzz batch: programs to generate.")
  in
  let max_insns_arg =
    Arg.(
      value
      & opt int Dts_fuzz.Gen.default_max_insns
      & info [ "max-insns" ] ~docv:"N"
          ~doc:"Fuzz batch: static instruction budget per program.")
  in
  let no_shrink_arg =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Fuzz batch: emit failures unminimised.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Fuzz batch: reproducer directory (server-side; default: don't \
             write reproducers).")
  in
  let priority_arg =
    Arg.(
      value & opt int 0
      & info [ "priority" ] ~docv:"N"
          ~doc:"Queue priority (higher runs first; default 0).")
  in
  let fault_kills_arg =
    Arg.(
      value & opt int 0
      & info [ "fault-kills" ] ~docv:"N"
          ~doc:
            "Fault injection: the first N workers launched for this job are \
             killed mid-shard. The outcome must be unaffected (retries).")
  in
  Cmd.v
    (Cli.cmd_info "submit" ~doc:"submit a job; prints the job id")
    Term.(
      const submit $ socket_arg $ figure_arg $ fuzz_arg $ workload_arg
      $ file_arg $ json_arg
      $ Cli.budget_arg ()
      $ Cli.scale_arg $ Cli.seed_arg $ count_arg $ max_insns_arg
      $ Cli.config_arg $ no_shrink_arg $ out_arg $ priority_arg
      $ fault_kills_arg)

(* ---------- status / cancel / results / shutdown ---------- *)

let status socket id =
  match Dts_serve.Client.status socket ?id () with
  | Ok jobs ->
    List.iter
      (fun s ->
        print_endline
          (Dts_obs.Json.to_string (Dts_serve.Protocol.status_to_json s)))
      jobs;
    Cli.ok
  | Error msg ->
    prerr_endline ("status: " ^ msg);
    Cli.task_failure

let id_opt_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "id" ] ~docv:"ID" ~doc:"Job id (default: every job).")

let id_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "id" ] ~docv:"ID" ~doc:"Job id.")

let status_cmd =
  Cmd.v
    (Cli.cmd_info "status" ~doc:"print job statuses, one JSON object per line")
    Term.(const status $ socket_arg $ id_opt_arg)

let cancel socket id =
  match Dts_serve.Client.cancel socket ~id with
  | Ok () -> Cli.ok
  | Error msg ->
    prerr_endline ("cancel: " ^ msg);
    Cli.task_failure

let cancel_cmd =
  Cmd.v
    (Cli.cmd_info "cancel" ~doc:"cancel a queued or running job")
    Term.(const cancel $ socket_arg $ id_arg)

let results socket id text =
  if text then begin
    (* --text: print only the final outcome text, byte-identical to the
       one-shot CLI; exit with the job's exit code. *)
    match Dts_serve.Client.outcome socket ~id ~on_event:(fun _ -> ()) with
    | Ok (o : Run.outcome) ->
      print_string o.text;
      o.exit_code
    | Error msg ->
      prerr_endline ("results: " ^ msg);
      Cli.task_failure
  end
  else
    match
      Dts_serve.Client.results socket ~id ~on_event:(fun ev ->
          print_endline
            (Dts_obs.Json.to_string (Dts_serve.Protocol.event_to_json ~id ev)))
    with
    | Ok (Dts_serve.Protocol.Done o) -> o.Run.exit_code
    | Ok _ -> Cli.task_failure
    | Error msg ->
      prerr_endline ("results: " ^ msg);
      Cli.task_failure

let results_cmd =
  let text_arg =
    Arg.(
      value & flag
      & info [ "text" ]
          ~doc:
            "Print only the job's final text output (exactly the one-shot \
             CLI's stdout) instead of the JSONL event stream.")
  in
  Cmd.v
    (Cli.cmd_info "results"
       ~doc:"stream a job's progress and result (blocks until terminal)")
    Term.(const results $ socket_arg $ id_arg $ text_arg)

let shutdown socket now =
  match Dts_serve.Client.shutdown socket ~drain:(not now) with
  | Ok () -> Cli.ok
  | Error msg ->
    prerr_endline ("shutdown: " ^ msg);
    Cli.task_failure

let shutdown_cmd =
  let now_arg =
    Arg.(
      value & flag
      & info [ "now" ]
          ~doc:
            "Cancel queued and running jobs instead of draining them first.")
  in
  Cmd.v
    (Cli.cmd_info "shutdown"
       ~doc:"stop the daemon (drains jobs unless --now), removing its socket")
    Term.(const shutdown $ socket_arg $ now_arg)

(* ---------- group ---------- *)

let cmd =
  Cmd.group
    (Cli.cmd_info "dtsvliw_serve"
       ~doc:"campaign server for DTSVLIW jobs over a Unix domain socket")
    [
      daemon_cmd; worker_cmd; submit_cmd; status_cmd; cancel_cmd; results_cmd;
      shutdown_cmd;
    ]

let () = exit (Cmd.eval' cmd)
