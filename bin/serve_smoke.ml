(* End-to-end smoke test of the dtsvliw_serve campaign daemon.

   Usage: serve_smoke DTSVLIW_SERVE_EXE FIG_CLI_OUT FUZZ_CLI_OUT STREAM_OUT

   For worker counts 1, 2 and 4 (the last round with injected worker
   kills): start a daemon, submit a fig6 figure job (budget 400) and a
   16-seed fuzz batch, stream both jobs' results, and require the final
   text to be byte-identical to the one-shot CLI outputs captured in
   FIG_CLI_OUT / FUZZ_CLI_OUT. Also exercises status, cancel on a
   terminal job, and drain shutdown (daemon exits 0, socket removed).
   Every streamed event is appended to STREAM_OUT for `stats_check
   --serve` validation. *)

open Dts_job

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("serve_smoke: " ^ msg);
      exit 1)
    fmt

let read_file path = In_channel.with_open_text path In_channel.input_all

let ok_or_die what = function
  | Ok v -> v
  | Error msg -> die "%s: %s" what msg

let round ~exe ~fig_expected ~fuzz_expected ~stream_oc ~workers ~fault_kills =
  let socket = Printf.sprintf "serve-smoke-%d.sock" workers in
  let pid =
    Unix.create_process exe
      [| exe; "daemon"; "--socket"; socket; "--workers"; string_of_int workers |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      (* belt and braces: never leave a daemon behind *)
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    (fun () ->
      (* wait for the daemon to open its socket *)
      let c = Dts_serve.Client.connect_retry socket in
      Dts_serve.Client.close c;
      let fig_job = Job.figure ~budget:400 "fig6" in
      let fuzz_job = Job.fuzz_batch ~seed:1 ~count:16 ~config:"all" () in
      let fig_id =
        ok_or_die "submit fig6"
          (Dts_serve.Client.submit socket ~job:fig_job ~priority:0 ~fault_kills)
      in
      let fuzz_id =
        ok_or_die "submit fuzz"
          (Dts_serve.Client.submit socket ~job:fuzz_job ~priority:1
             ~fault_kills)
      in
      let record id ev =
        (* STREAM_OUT concatenates every round; namespace the ids so the
           rounds' job 1/2 don't collide under stats_check --serve *)
        let id = (workers * 1000) + id in
        output_string stream_oc
          (Dts_obs.Json.to_string (Dts_serve.Protocol.event_to_json ~id ev));
        output_char stream_oc '\n'
      in
      let retries = ref 0 in
      let count_retry ev =
        match ev with Dts_serve.Protocol.Retry _ -> incr retries | _ -> ()
      in
      let fig_out =
        ok_or_die "fig6 results"
          (Dts_serve.Client.outcome socket ~id:fig_id ~on_event:(fun ev ->
               count_retry ev;
               record fig_id ev))
      in
      let fuzz_out =
        ok_or_die "fuzz results"
          (Dts_serve.Client.outcome socket ~id:fuzz_id ~on_event:(fun ev ->
               count_retry ev;
               record fuzz_id ev))
      in
      if fig_out.Run.text <> fig_expected then
        die "workers=%d: fig6 text differs from the one-shot CLI" workers;
      if fig_out.Run.exit_code <> 0 then
        die "workers=%d: fig6 exit code %d" workers fig_out.Run.exit_code;
      if fuzz_out.Run.text <> fuzz_expected then
        die "workers=%d: fuzz text differs from the one-shot CLI" workers;
      if fuzz_out.Run.exit_code <> 0 then
        die "workers=%d: fuzz exit code %d" workers fuzz_out.Run.exit_code;
      if fault_kills > 0 && !retries = 0 then
        die "workers=%d: fault_kills=%d injected but no retry event seen"
          workers fault_kills;
      (* status must report both jobs done *)
      let statuses =
        ok_or_die "status" (Dts_serve.Client.status socket ())
      in
      if List.length statuses <> 2 then
        die "workers=%d: expected 2 jobs in status, got %d" workers
          (List.length statuses);
      List.iter
        (fun (s : Dts_serve.Protocol.job_status) ->
          if s.state <> Dts_serve.Protocol.Done then
            die "workers=%d: job %d not done in status" workers s.id;
          if s.exit_code <> Some 0 then
            die "workers=%d: job %d exit code not 0 in status" workers s.id)
        statuses;
      (* cancel on a terminal job is a harmless no-op *)
      ok_or_die "cancel" (Dts_serve.Client.cancel socket ~id:fig_id);
      (* unknown ids are rejected with a descriptive error *)
      (match Dts_serve.Client.status socket ~id:999 () with
      | Error _ -> ()
      | Ok _ -> die "workers=%d: status of unknown id succeeded" workers);
      (* drain shutdown: daemon exits 0 and removes its socket *)
      ok_or_die "shutdown" (Dts_serve.Client.shutdown socket ~drain:true);
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED code ->
        die "workers=%d: daemon exited with code %d" workers code
      | _, (Unix.WSIGNALED sg | Unix.WSTOPPED sg) ->
        die "workers=%d: daemon killed by signal %d" workers sg);
      if Sys.file_exists socket then
        die "workers=%d: socket file not removed on shutdown" workers;
      Printf.printf
        "serve_smoke: workers=%d fault_kills=%d ok (%d retries observed)\n%!"
        workers fault_kills !retries)

let () =
  match Sys.argv with
  | [| _; exe; fig_cli; fuzz_cli; stream_path |] ->
    (* create_process uses execvp: a bare filename would be a PATH lookup *)
    let exe = if String.contains exe '/' then exe else "./" ^ exe in
    let fig_expected = read_file fig_cli in
    let fuzz_expected = read_file fuzz_cli in
    let stream_oc = open_out stream_path in
    List.iter
      (fun (workers, fault_kills) ->
        round ~exe ~fig_expected ~fuzz_expected ~stream_oc ~workers
          ~fault_kills)
      [ (1, 0); (2, 0); (4, 2) ];
    close_out stream_oc
  | _ -> die "usage: serve_smoke SERVE_EXE FIG_CLI_OUT FUZZ_CLI_OUT STREAM_OUT"
