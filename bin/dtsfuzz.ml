(* Differential fuzzing CLI.

   Generate seeded random SRISC programs and run each on every engine of
   the repository — Golden, Primary-only, DTSVLIW interpreted and compiled
   on the ideal and feasible geometries, and DIF — comparing final
   registers, memory and the sequential instruction count. On a divergence
   the program is greedily shrunk and a self-contained reproducer is
   written to the failure directory.

   Examples:
     dtsfuzz --count 1000 --seed 42
     dtsfuzz --count 64 --config feasible --jobs 4
     dtsfuzz --replay _build/fuzz-failures/seed-123.srisc

   Determinism: the same seed yields the same programs and the same
   verdicts, for any --jobs value. Exit status: 0 all programs agreed,
   1 at least one divergence, 2 junk flag values.

   A campaign is a Dts_job.Job fuzz batch evaluated through Dts_job.Run —
   the same path the dtsvliw_serve campaign daemon shards across worker
   processes, so CLI and server output are byte-identical. *)

open Cmdliner
open Dts_job

let run_replay ~geoms files =
  let failed = ref false in
  List.iter
    (fun path ->
      match Dts_fuzz.Driver.replay ~geoms path with
      | Dts_fuzz.Diff.Pass { instret } ->
        Printf.printf "replay %s: PASS (%d instructions)\n" path instret
      | Skip reason ->
        Printf.printf "replay %s: SKIP (%s)\n" path reason;
        failed := true
      | Fail divs ->
        Printf.printf "replay %s: FAIL\n" path;
        List.iter
          (fun d ->
            Printf.printf "  %s\n" (Dts_fuzz.Driver.describe_div d))
          divs;
        failed := true)
    files;
  if !failed then Cli.task_failure else Cli.ok

let run_campaign ~seed ~count ~max_insns ~config ~jobs ~backend ~out
    ~no_shrink =
  let job =
    Job.fuzz_batch ~max_insns ~config ~shrink:(not no_shrink) ~out_dir:out
      ~seed ~count ()
  in
  Cli.check (Job.validate job);
  let outcome =
    Dts_parallel.Pool.with_pool ~backend ~jobs (fun pool ->
        Run.run ~pool job)
  in
  print_string outcome.Run.text;
  outcome.Run.exit_code

let corpus_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".srisc")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let main seed count max_insns config jobs backend replay replay_dir out
    no_shrink =
  Cli.check_positive ~what:"--count" count;
  Cli.check_positive ~what:"--max-insns" max_insns;
  Cli.check_non_negative ~what:"--jobs" jobs;
  let geoms = Cli.geoms_of_config config in
  let backend = Cli.backend_of_flag backend in
  let replay =
    replay @ List.concat_map corpus_files (Option.to_list replay_dir)
  in
  if replay <> [] then run_replay ~geoms replay
  else
    run_campaign ~seed ~count ~max_insns ~config
      ~jobs:(Dts_parallel.Pool.resolve_jobs jobs)
      ~backend ~out ~no_shrink

let count_t =
  Arg.(
    value & opt int 100
    & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate.")

let max_insns_t =
  Arg.(
    value
    & opt int Dts_fuzz.Gen.default_max_insns
    & info [ "max-insns" ] ~docv:"N"
        ~doc:"Static instruction budget per generated program.")

let jobs_doc =
  "Run programs on a pool of N workers (0 = one per core). Output is \
   bit-identical for every value."

let replay_t =
  Arg.(
    value & opt_all file []
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Replay reproducer file(s) instead of generating programs. \
              Repeatable.")

let replay_dir_t =
  Arg.(
    value
    & opt (some dir) None
    & info [ "replay-dir" ] ~docv:"DIR"
        ~doc:"Replay every .srisc reproducer in DIR (sorted by name).")

let out_t =
  Arg.(
    value
    & opt string "_build/fuzz-failures"
    & info [ "out" ] ~docv:"DIR" ~doc:"Directory for reproducer files.")

let no_shrink_t =
  Arg.(
    value & flag
    & info [ "no-shrink" ] ~doc:"Emit failing programs without minimising.")

let cmd =
  Cmd.v
    (Cli.cmd_info "dtsfuzz" ~doc:"Differential fuzzer for the DTSVLIW engines")
    Term.(
      const main $ Cli.seed_arg $ count_t $ max_insns_t $ Cli.config_arg
      $ Cli.jobs_arg ~doc:jobs_doc ()
      $ Cli.backend_arg $ replay_t $ replay_dir_t $ out_t $ no_shrink_t)

let () = exit (Cmd.eval' cmd)
