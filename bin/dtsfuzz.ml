(* Differential fuzzing CLI.

   Generate seeded random SRISC programs and run each on every engine of
   the repository — Golden, Primary-only, DTSVLIW interpreted and compiled
   on the ideal and feasible geometries, and DIF — comparing final
   registers, memory and the sequential instruction count. On a divergence
   the program is greedily shrunk and a self-contained reproducer is
   written to the failure directory.

   Examples:
     dtsfuzz --count 1000 --seed 42
     dtsfuzz --count 64 --config feasible --jobs 4
     dtsfuzz --replay _build/fuzz-failures/seed-123.srisc

   Determinism: the same seed yields the same programs and the same
   verdicts, for any --jobs value. Exit status: 0 all programs agreed,
   1 at least one divergence. *)

open Cmdliner

let print_failure (f : Dts_fuzz.Driver.failure) =
  Printf.printf "FAIL program %d (seed %d): %d divergent engine(s)\n"
    f.f_index f.f_seed (List.length f.f_divs);
  List.iter
    (fun d -> Printf.printf "  %s\n" (Dts_fuzz.Driver.describe_div d))
    f.f_divs;
  Printf.printf "  shrunk to %d live instructions%s\n" f.f_live
    (match f.f_path with
    | Some p -> Printf.sprintf "; reproducer: %s" p
    | None -> "")

let run_replay ~geoms files =
  let failed = ref false in
  List.iter
    (fun path ->
      match Dts_fuzz.Driver.replay ~geoms path with
      | Dts_fuzz.Diff.Pass { instret } ->
        Printf.printf "replay %s: PASS (%d instructions)\n" path instret
      | Skip reason ->
        Printf.printf "replay %s: SKIP (%s)\n" path reason;
        failed := true
      | Fail divs ->
        Printf.printf "replay %s: FAIL\n" path;
        List.iter
          (fun d ->
            Printf.printf "  %s\n" (Dts_fuzz.Driver.describe_div d))
          divs;
        failed := true)
    files;
  if !failed then 1 else 0

let run_campaign ~seed ~count ~max_insns ~geoms ~jobs ~out ~no_shrink =
  let summary =
    Dts_fuzz.Driver.run_campaign ~jobs ~geoms ~max_insns
      ~shrink:(not no_shrink) ~out_dir:out ~seed ~count ()
  in
  List.iter print_failure summary.s_failures;
  List.iter
    (fun (i, pseed, reason) ->
      Printf.printf "SKIP program %d (seed %d): %s\n" i pseed reason)
    summary.s_skips;
  Printf.printf
    "fuzz: %d programs (seed %d, max-insns %d, config %s), %d passed, %d \
     skipped, %d divergent, %d instructions compared\n"
    summary.s_count seed max_insns
    (Dts_fuzz.Diff.geoms_to_string geoms)
    summary.s_passed
    (List.length summary.s_skips)
    (List.length summary.s_failures)
    summary.s_instructions;
  if summary.s_failures = [] then 0 else 1

let corpus_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".srisc")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let main seed count max_insns config jobs replay replay_dir out no_shrink =
  match Dts_fuzz.Diff.geoms_of_string config with
  | None ->
    Printf.eprintf "unknown --config %s (expected all, ideal or feasible)\n"
      config;
    2
  | Some geoms ->
    let replay =
      replay @ List.concat_map corpus_files (Option.to_list replay_dir)
    in
    if replay <> [] then run_replay ~geoms replay
    else run_campaign ~seed ~count ~max_insns ~geoms ~jobs ~out ~no_shrink

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")

let count_t =
  Arg.(
    value & opt int 100
    & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate.")

let max_insns_t =
  Arg.(
    value
    & opt int Dts_fuzz.Gen.default_max_insns
    & info [ "max-insns" ] ~docv:"N"
        ~doc:"Static instruction budget per generated program.")

let config_t =
  Arg.(
    value & opt string "all"
    & info [ "config" ] ~docv:"GEOM"
        ~doc:"DTSVLIW geometries to exercise: all, ideal or feasible.")

let jobs_t =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Run programs on a pool of N domains (0 = one per core). Output \
           is bit-identical for every value.")

let replay_t =
  Arg.(
    value & opt_all file []
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Replay reproducer file(s) instead of generating programs. \
              Repeatable.")

let replay_dir_t =
  Arg.(
    value
    & opt (some dir) None
    & info [ "replay-dir" ] ~docv:"DIR"
        ~doc:"Replay every .srisc reproducer in DIR (sorted by name).")

let out_t =
  Arg.(
    value
    & opt string "_build/fuzz-failures"
    & info [ "out" ] ~docv:"DIR" ~doc:"Directory for reproducer files.")

let no_shrink_t =
  Arg.(
    value & flag
    & info [ "no-shrink" ] ~doc:"Emit failing programs without minimising.")

let cmd =
  Cmd.v
    (Cmd.info "dtsfuzz" ~doc:"Differential fuzzer for the DTSVLIW engines")
    Term.(
      const main $ seed_t $ count_t $ max_insns_t $ config_t $ jobs_t
      $ replay_t $ replay_dir_t $ out_t $ no_shrink_t)

let () = exit (Cmd.eval' cmd)
