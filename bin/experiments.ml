(* Regenerate the paper's tables and figures.

   Usage:
     experiments all --budget 150000 --scale 1
     experiments fig5
     experiments table3 fig9 --jobs 4

   --jobs fans each figure's simulations out over that many workers; the
   rendered output is bit-identical to a sequential run. Each named
   experiment becomes a Dts_job.Job figure descriptor evaluated through
   Dts_job.Run — the same path the dtsvliw_serve campaign daemon uses, so
   CLI and server output are byte-identical by construction.

   --alloc-json FILE additionally records, per experiment, the number of
   instructions simulated and the minor/major heap words allocated while
   regenerating it, as a small JSON document. `stats_check --bench
   BASELINE --alloc FILE` gates those counts against the committed bench
   baseline, so the sequential fast path's allocation win cannot silently
   erode. Allocation accounting is per-domain in OCaml, so this is only
   meaningful sequentially; combining it with --jobs > 1 is an error.

   --optgap-json FILE records the optgap figure's per-row oracle numbers
   (blocks, greedy long instructions, certified optimal lower/upper
   bounds, certified block count, search nodes) as JSON, for the
   `stats_check --optgap` gate. Only meaningful when the single requested
   experiment is `optgap`; the printed text is unchanged. *)

open Cmdliner
open Dts_job

type alloc_row = {
  a_name : string;
  a_instructions : int;
  a_minor_words : int;
  a_major_words : int;
}

let write_alloc_json path ~budget rows =
  let oc = open_out path in
  let row r =
    Printf.sprintf
      "    {\"name\": %S, \"instructions\": %d, \"minor_words\": %d, \
       \"major_words\": %d}"
      r.a_name r.a_instructions r.a_minor_words r.a_major_words
  in
  Printf.fprintf oc
    "{\n\
    \  \"alloc_schema_version\": 1,\n\
    \  \"budget\": %d,\n\
    \  \"figures\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    budget
    (String.concat ",\n" (List.map row rows));
  close_out oc

let write_optgap_json path ~budget (fig : Dts_experiments.Experiments.figure) =
  let oc = open_out path in
  let nw = List.length Dts_experiments.Experiments.workload_names in
  let row i (r : Dts_experiments.Experiments.run) =
    let gs =
      match r.Dts_experiments.Experiments.optgap with
      | Some gs -> gs
      | None ->
        prerr_endline "experiments: optgap row without an oracle summary";
        exit 1
    in
    Printf.sprintf
      "    {\"geometry\": %S, \"workload\": %S, \"blocks\": %d, \"fcfs_lis\": \
       %d, \"opt_lower\": %d, \"opt_upper\": %d, \"certified\": %d, \
       \"search_nodes\": %d}"
      (if i < nw then "ideal" else "feasible")
      r.Dts_experiments.Experiments.workload gs.Dts_opt.Opt.gs_blocks
      gs.Dts_opt.Opt.gs_fcfs_lis gs.Dts_opt.Opt.gs_opt_lower
      gs.Dts_opt.Opt.gs_opt_upper gs.Dts_opt.Opt.gs_certified
      gs.Dts_opt.Opt.gs_search_nodes
  in
  Printf.fprintf oc
    "{\n\
    \  \"optgap_schema_version\": 1,\n\
    \  \"budget\": %d,\n\
    \  \"node_budget\": %d,\n\
    \  \"rows\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    budget Dts_opt.Opt.default_node_budget
    (String.concat ",\n"
       (List.mapi row fig.Dts_experiments.Experiments.rows));
  close_out oc

let run_experiments names scale budget jobs backend alloc_json optgap_json =
  Cli.check_positive ~what:"--budget" budget;
  Cli.check_positive ~what:"--scale" scale;
  Cli.check_non_negative ~what:"--jobs" jobs;
  let backend = Cli.backend_of_flag backend in
  let names = if names = [] then [ "all" ] else names in
  let jobs_of name =
    let job = Job.figure ~budget ~scale name in
    match Job.validate job with
    | Ok () -> job
    | Error _ ->
      Printf.eprintf "unknown experiment %s; available: %s\n" name
        (String.concat ", "
           (List.map fst Dts_experiments.Experiments.by_name));
      exit Cli.usage_error
  in
  let job_list = List.map jobs_of names in
  let jobs = Dts_parallel.Pool.resolve_jobs jobs in
  if alloc_json <> None && jobs > 1 then begin
    prerr_endline
      "experiments: --alloc-json requires sequential execution (drop --jobs)";
    exit 1
  end;
  if optgap_json <> None && alloc_json <> None then begin
    prerr_endline "experiments: --optgap-json is incompatible with --alloc-json";
    exit 1
  end;
  if optgap_json <> None && names <> [ "optgap" ] then begin
    prerr_endline
      "experiments: --optgap-json applies to exactly one experiment: optgap";
    exit 1
  end;
  (match optgap_json with
  | None -> ()
  | Some path ->
    (* the figure generator directly rather than Run.run — identical
       rendered text, plus access to the per-row oracle summaries the
       JSON document records *)
    let gen ?pool () =
      Dts_experiments.Experiments.optgap ?pool ~scale ~budget ()
    in
    let fig =
      if jobs > 1 then
        Dts_parallel.Pool.with_pool ~backend ~jobs (fun pool -> gen ~pool ())
      else gen ()
    in
    print_string (fig.Dts_experiments.Experiments.render () ^ "\n");
    write_optgap_json path ~budget fig;
    exit 0);
  (* the alloc gate measures per-instruction simulation allocation, so the
     one-time tinyc compilations must not land inside the counted window:
     warm the workload memo first (a later figure in a bench run gets it
     for free, so cold compiles here would read as a regression) *)
  if alloc_json <> None then
    List.iter
      (fun w -> ignore (Dts_workloads.Workloads.program ~scale w))
      Dts_workloads.Workloads.all;
  let alloc_rows = ref [] in
  let render pool =
    List.iter2
      (fun name job ->
        let instr0 = Dts_experiments.Experiments.simulated_instructions () in
        let gc0 = Gc.quick_stat () in
        let outcome = Run.run ?pool job in
        let gc1 = Gc.quick_stat () in
        print_string outcome.Run.text;
        if alloc_json <> None then
          alloc_rows :=
            {
              a_name = name;
              a_instructions =
                Dts_experiments.Experiments.simulated_instructions () - instr0;
              a_minor_words =
                int_of_float (gc1.Gc.minor_words -. gc0.Gc.minor_words);
              a_major_words =
                int_of_float (gc1.Gc.major_words -. gc0.Gc.major_words);
            }
            :: !alloc_rows)
      names job_list
  in
  if jobs > 1 then
    Dts_parallel.Pool.with_pool ~backend ~jobs (fun pool -> render (Some pool))
  else render None;
  match alloc_json with
  | Some path -> write_alloc_json path ~budget (List.rev !alloc_rows)
  | None -> ()

let names_arg =
  let doc =
    "Experiments to run: table1, table2, fig5, fig6, fig7, fig8, table3, \
     fig9, ablation, extensions, breakdown (cycle attribution), optgap \
     (greedy-vs-optimal scheduling gap), or all."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let jobs_doc =
  "Workers for each figure's simulations (default 1 = sequential; 0 = one \
   per host core). The rendered output is bit-identical for any value."

let alloc_json_arg =
  let doc =
    "Write per-experiment instruction and heap-allocation counts to $(docv) \
     (for the stats_check allocation-regression gate). Sequential only."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "alloc-json" ] ~docv:"FILE" ~doc)

let optgap_json_arg =
  let doc =
    "Write the optgap figure's per-row oracle numbers to $(docv) (for the \
     `stats_check --optgap` gate). Requires the single experiment `optgap`."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "optgap-json" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "regenerate the DTSVLIW paper's tables and figures" in
  Cmd.v
    (Cli.cmd_info "experiments" ~doc)
    Term.(
      const run_experiments $ names_arg $ Cli.scale_arg
      $ Cli.budget_arg ~default:150_000 ()
      $ Cli.jobs_arg ~doc:jobs_doc ()
      $ Cli.backend_arg $ alloc_json_arg $ optgap_json_arg)

let () = exit (Cmd.eval cmd)
