(* Regenerate the paper's tables and figures.

   Usage:
     experiments all --budget 150000 --scale 1
     experiments fig5
     experiments table3 fig9 --jobs 4

   --jobs fans each figure's simulations out over that many domains; the
   rendered output is bit-identical to a sequential run. *)

open Cmdliner

let run_experiments names scale budget jobs =
  let names = if names = [] then [ "all" ] else names in
  let render pool =
    List.iter
      (fun name ->
        match List.assoc_opt name Dts_experiments.Experiments.by_name with
        | Some f ->
          print_string
            ((f ?pool ~scale ~budget ()).Dts_experiments.Experiments.render ());
          print_newline ()
        | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" name
            (String.concat ", "
               (List.map fst Dts_experiments.Experiments.by_name));
          exit 1)
      names
  in
  let jobs = Dts_parallel.Pool.resolve_jobs jobs in
  if jobs > 1 then
    Dts_parallel.Pool.with_pool ~jobs (fun pool -> render (Some pool))
  else render None

let names_arg =
  let doc =
    "Experiments to run: table1, table2, fig5, fig6, fig7, fig8, table3, \
     fig9, ablation, extensions, breakdown (cycle attribution), or all."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let scale_arg =
  let doc = "Workload scale multiplier (outer iteration counts)." in
  Arg.(value & opt int 1 & info [ "scale" ] ~doc)

let budget_arg =
  let doc = "Sequential-instruction budget per run (test-machine count)." in
  Arg.(value & opt int 150_000 & info [ "budget" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for each figure's simulations (default 1 = sequential; \
     0 = one per host core). The rendered output is bit-identical for any \
     value."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc)

let cmd =
  let doc = "regenerate the DTSVLIW paper's tables and figures" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(const run_experiments $ names_arg $ scale_arg $ budget_arg $ jobs_arg)

let () = exit (Cmd.eval cmd)
