(* Regenerate the paper's tables and figures.

   Usage:
     experiments all --budget 150000 --scale 1
     experiments fig5
     experiments table3 fig9 *)

open Cmdliner

let run_experiments names scale budget =
  let names = if names = [] then [ "all" ] else names in
  List.iter
    (fun name ->
      match List.assoc_opt name Dts_experiments.Experiments.by_name with
      | Some f ->
        print_string ((f ~scale ~budget ()).Dts_experiments.Experiments.render ());
        print_newline ()
      | None ->
        Printf.eprintf "unknown experiment %s; available: %s\n" name
          (String.concat ", "
             (List.map fst Dts_experiments.Experiments.by_name));
        exit 1)
    names

let names_arg =
  let doc =
    "Experiments to run: table1, table2, fig5, fig6, fig7, fig8, table3, \
     fig9, ablation, extensions, breakdown (cycle attribution), or all."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let scale_arg =
  let doc = "Workload scale multiplier (outer iteration counts)." in
  Arg.(value & opt int 1 & info [ "scale" ] ~doc)

let budget_arg =
  let doc = "Sequential-instruction budget per run (test-machine count)." in
  Arg.(value & opt int 150_000 & info [ "budget" ] ~doc)

let cmd =
  let doc = "regenerate the DTSVLIW paper's tables and figures" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(const run_experiments $ names_arg $ scale_arg $ budget_arg)

let () = exit (Cmd.eval cmd)
