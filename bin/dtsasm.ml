(* SRISC assembler CLI: assemble, disassemble, optionally run on the golden
   machine.

   Examples:
     dtsasm prog.s --list
     dtsasm prog.s --run *)

open Cmdliner

let run file list_out run_it fuel =
  let src = In_channel.with_open_text file In_channel.input_all in
  match Dts_asm.Assembler.assemble src with
  | exception Dts_asm.Assembler.Error { line; msg } ->
    Printf.eprintf "%s:%d: %s\n" file line msg;
    exit 1
  | program ->
    Printf.printf "entry: %#x, %d instructions, %d data sections\n"
      program.entry
      (Array.length program.text)
      (List.length program.data);
    if list_out then
      Array.iter
        (fun (addr, instr) ->
          Printf.printf "%#08x  %08x  %s\n" addr
            (Dts_isa.Encode.encode ~pc:addr instr)
            (Dts_isa.Disasm.to_string instr))
        program.text;
    if run_it then begin
      let st = Dts_asm.Program.boot program in
      let g = Dts_golden.Golden.of_state st in
      let n = Dts_golden.Golden.run ~max_instructions:fuel g in
      Printf.printf "ran %d instructions; halted=%b; pc=%#x\n" n st.halted st.pc;
      for r = 8 to 15 do
        Printf.printf "  %s = %d\n" (Dts_isa.Disasm.reg_name r)
          (Dts_isa.State.get_reg st ~cwp:st.cwp r)
      done
    end

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s" ~doc:"Assembly source")

let list_arg = Arg.(value & flag & info [ "l"; "list" ] ~doc:"Print the listing")
let run_arg = Arg.(value & flag & info [ "r"; "run" ] ~doc:"Execute on the golden machine")
let fuel_arg = Arg.(value & opt int 10_000_000 & info [ "fuel" ] ~doc:"Max instructions")

let cmd =
  Cmd.v
    (Cmd.info "dtsasm" ~doc:"SRISC assembler")
    Term.(const run $ file_arg $ list_arg $ run_arg $ fuel_arg)

let () = exit (Cmd.eval cmd)
