(* CI validator for the simulator's machine-readable JSON surfaces.

   Default mode reads a stats JSON file produced by `dtsvliw_sim
   --stats-json`, checks that it parses, that the required sections and
   keys are present, and that the cycle-attribution invariant holds: the
   attribution categories sum to the machine cycle count (and the
   VLIW-side categories to the VLIW cycle count).

   `--bench` mode validates a BENCH_RESULTS.json baseline instead
   (schema v5): top-level budget/jobs/host_cores, one entry per figure
   with both wall clocks (parallel wall and the sequential pass) and the
   sequential pass's allocation counts (minor/major heap words),
   per-figure consistency (positive walls, attributed = cycles,
   non-negative allocation), and the mandatory "primary_only" row of
   standalone golden/primary interpreter throughput. A baseline written
   under a different schema version fails loudly — cross-schema baselines
   are not comparable and must be regenerated, not hand-edited.

   `--bench BASELINE --alloc FRESH` additionally gates allocation: FRESH
   is a document written by `experiments --alloc-json` at the baseline's
   budget, and any figure whose fresh minor-heap words exceed the
   committed baseline's by more than 25% fails the check. Simulation is
   deterministic, so the allocation counts are reproducible and the gate
   has no timing noise — it pins the sequential fast path's
   allocation-free property against silent erosion.

   `--optgap` mode validates an `experiments optgap --optgap-json`
   document: one row per workload under both geometries, every row's
   certified oracle bounds internally consistent.

   Exits non-zero with a diagnostic on any failure — wired into
   `dune runtest` as a smoke test of the observability path. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("stats_check: " ^ s); exit 1) fmt

let parse path =
  let text = In_channel.with_open_text path In_channel.input_all in
  try Dts_obs.Json.of_string text
  with Dts_obs.Json.Parse_error msg -> fail "%s does not parse: %s" path msg

let get ~path obj key =
  match Dts_obs.Json.member key obj with
  | Some v -> v
  | None -> fail "%s: missing key %S" path key

let int_of ~path obj key =
  match Dts_obs.Json.to_int (get ~path obj key) with
  | Some n -> n
  | None -> fail "%s: key %S is not an integer" path key

let float_of ~path obj key =
  match Dts_obs.Json.to_float (get ~path obj key) with
  | Some f -> f
  | None -> fail "%s: key %S is not a number" path key

let str_of ~path obj key =
  match Dts_obs.Json.to_str (get ~path obj key) with
  | Some s -> s
  | None -> fail "%s: key %S is not a string" path key

let check_stats path =
  let doc = parse path in
  let get = get ~path and int_of = int_of ~path in
  let schema = int_of doc "schema_version" in
  if schema <> Dts_obs.Stats.schema_version then
    fail "schema_version %d, expected %d" schema Dts_obs.Stats.schema_version;
  let cycles = int_of doc "cycles" in
  let vliw_cycles = int_of doc "vliw_cycles" in
  ignore (int_of doc "instructions");
  List.iter
    (fun section -> ignore (get doc section))
    [ "attribution"; "machine"; "plan"; "engine"; "caches"; "trace" ];
  let attribution = get doc "attribution" in
  let attributed =
    List.fold_left
      (fun acc cat -> acc + int_of attribution (Dts_obs.Attribution.name cat))
      0 Dts_obs.Attribution.all
  in
  if attributed <> cycles then
    fail "attribution sums to %d but cycles = %d" attributed cycles;
  let attributed_vliw =
    List.fold_left
      (fun acc cat -> acc + int_of attribution (Dts_obs.Attribution.name cat))
      0 Dts_obs.Attribution.vliw_categories
  in
  if attributed_vliw <> vliw_cycles then
    fail "VLIW attribution sums to %d but vliw_cycles = %d" attributed_vliw
      vliw_cycles;
  Printf.printf "stats_check: %s ok (%d cycles fully attributed)\n" path cycles

let bench_schema_version = 5
let alloc_slack = 1.25

(* Gate a fresh `experiments --alloc-json` document against the committed
   bench baseline: same budget required (allocation does not scale
   linearly with budget — fixed per-run costs dominate small budgets), and
   each fresh figure's minor words must stay within [alloc_slack] of the
   baseline's. Figures the baseline records with zero allocation (table
   lookups that simulate nothing) are exempt. *)
let check_alloc ~base_path ~base_budget ~base_minor fresh_path =
  let doc = parse fresh_path in
  let path = fresh_path in
  let get = get ~path and int_of = int_of ~path and str_of = str_of ~path in
  if int_of doc "alloc_schema_version" <> 1 then
    fail "%s: unsupported alloc_schema_version" path;
  let budget = int_of doc "budget" in
  if budget <> base_budget then
    fail
      "%s: budget %d but baseline %s was recorded at %d — allocation counts \
       are only comparable at the same budget"
      path budget base_path base_budget;
  let figures =
    match get doc "figures" with
    | Dts_obs.Json.List l -> l
    | _ -> fail "%s: \"figures\" is not an array" path
  in
  if figures = [] then fail "%s: no figures to gate" path;
  List.iter
    (fun fig ->
      let name = str_of fig "name" in
      let minor = int_of fig "minor_words" in
      if int_of fig "major_words" < 0 || minor < 0 then
        fail "%s: figure %s: negative allocation count" path name;
      match List.assoc_opt name base_minor with
      | None ->
        fail "%s: figure %s not present in baseline %s" path name base_path
      | Some base when base > 0 ->
        let limit = int_of_float (alloc_slack *. float_of_int base) in
        if minor > limit then
          fail
            "figure %s allocates %d minor words, more than %.0f%% over the \
             committed baseline's %d (limit %d) — the sequential fast \
             path's allocation win is eroding"
            name minor
            ((alloc_slack -. 1.) *. 100.)
            base limit;
        Printf.printf
          "stats_check: figure %s minor words %d within %d baseline limit\n"
          name minor limit
      | Some _ -> ())
    figures

let check_bench ?alloc path =
  let doc = parse path in
  let get = get ~path
  and int_of = int_of ~path
  and float_of = float_of ~path
  and str_of = str_of ~path in
  let schema = int_of doc "schema_version" in
  if schema <> bench_schema_version then
    fail
      "%s: bench schema_version %d, expected %d — baselines are not \
       comparable across schemas; regenerate the baseline with the current \
       `bench` binary rather than editing the version field"
      path schema bench_schema_version;
  ignore (str_of doc "generated_at");
  ignore (str_of doc "git_rev");
  if int_of doc "budget" <= 0 then fail "budget must be positive";
  let jobs = int_of doc "jobs" in
  if jobs < 1 then fail "jobs must be >= 1 (got %d)" jobs;
  if int_of doc "host_cores" < 1 then fail "host_cores must be >= 1";
  let figures =
    match get doc "figures" with
    | Dts_obs.Json.List l -> l
    | _ -> fail "%s: \"figures\" is not an array" path
  in
  if figures = [] then fail "no figures recorded";
  let check_figure fig =
    let name = str_of fig "name" in
    let wall = float_of fig "wall_s" in
    let seq_wall = float_of fig "seq_wall_s" in
    if wall < 0. || seq_wall < 0. then
      fail "figure %s: negative wall clock" name;
    ignore (float_of fig "instr_per_sec");
    ignore (float_of fig "mean_ipc");
    let runs = int_of fig "runs" in
    let instructions = int_of fig "instructions" in
    if runs > 0 && instructions <= 0 then
      fail "figure %s: %d runs but %d instructions" name runs instructions;
    let cycles = int_of fig "cycles" in
    let attributed = int_of fig "attributed_cycles" in
    if attributed <> cycles then
      fail "figure %s: attributed %d but cycles %d" name attributed cycles;
    let minor_words = int_of fig "minor_words" in
    let major_words = int_of fig "major_words" in
    if minor_words < 0 || major_words < 0 then
      fail "figure %s: negative allocation count" name;
    if runs > 0 && minor_words = 0 then
      fail "figure %s: %d runs but zero minor-heap allocation" name runs;
    name
  in
  let names = List.map check_figure figures in
  (* schema v5: the standalone-engine throughput row is mandatory — a
     baseline without it cannot gate interpreter regressions *)
  if not (List.mem "primary_only" names) then
    fail "%s: schema v%d requires a \"primary_only\" figure row" path
      bench_schema_version;
  let total = get doc "total" in
  ignore (float_of total "wall_s");
  ignore (float_of total "seq_wall_s");
  ignore (int_of total "instructions");
  ignore (float_of total "instr_per_sec");
  Printf.printf "stats_check: %s ok (bench schema v%d, %d figures: %s)\n" path
    bench_schema_version (List.length names)
    (String.concat " " names);
  match alloc with
  | None -> ()
  | Some fresh ->
    let base_minor =
      List.map
        (fun fig -> (str_of fig "name", int_of fig "minor_words"))
        figures
    in
    check_alloc ~base_path:path ~base_budget:(int_of doc "budget") ~base_minor
      fresh

(* --optgap: validate an `experiments optgap --optgap-json` document — one
   row per workload under each of the two geometries, each row's oracle
   numbers internally consistent: lower <= upper <= greedy lis, certified
   blocks within the block count, and a fully certified row pinned to
   lower = upper. *)
let check_optgap path =
  let doc = parse path in
  let get = get ~path and int_of = int_of ~path and str_of = str_of ~path in
  if int_of doc "optgap_schema_version" <> 1 then
    fail "%s: unsupported optgap_schema_version" path;
  if int_of doc "budget" <= 0 then fail "budget must be positive";
  if int_of doc "node_budget" <= 0 then fail "node_budget must be positive";
  let rows =
    match get doc "rows" with
    | Dts_obs.Json.List l -> l
    | _ -> fail "%s: \"rows\" is not an array" path
  in
  let workloads =
    List.map (fun (w : Dts_workloads.Workloads.t) -> w.name)
      Dts_workloads.Workloads.all
  in
  let expected =
    List.concat_map
      (fun geometry -> List.map (fun w -> (geometry, w)) workloads)
      [ "ideal"; "feasible" ]
  in
  if List.length rows <> List.length expected then
    fail "%s: %d rows, expected %d (every workload under both geometries)"
      path (List.length rows) (List.length expected);
  let certified_rows = ref 0 in
  List.iter2
    (fun (geometry, workload) row ->
      let where = Printf.sprintf "%s/%s" geometry workload in
      if str_of row "geometry" <> geometry then
        fail "%s: row %s: geometry %S out of order" path where
          (str_of row "geometry");
      if str_of row "workload" <> workload then
        fail "%s: row %s: workload %S out of order" path where
          (str_of row "workload");
      let blocks = int_of row "blocks" in
      let fcfs = int_of row "fcfs_lis" in
      let lower = int_of row "opt_lower" in
      let upper = int_of row "opt_upper" in
      let certified = int_of row "certified" in
      if blocks <= 0 then fail "%s: row %s: no blocks scheduled" path where;
      if not (0 < lower && lower <= upper && upper <= fcfs) then
        fail "%s: row %s: bounds %d <= %d <= %d violated" path where lower
          upper fcfs;
      if certified < 0 || certified > blocks then
        fail "%s: row %s: %d certified of %d blocks" path where certified
          blocks;
      if certified = blocks && lower <> upper then
        fail "%s: row %s: fully certified but lower %d <> upper %d" path
          where lower upper;
      if int_of row "search_nodes" < 0 then
        fail "%s: row %s: negative search-node count" path where;
      if certified = blocks then incr certified_rows)
    expected rows;
  Printf.printf
    "stats_check: %s ok (optgap: %d rows, %d fully certified)\n" path
    (List.length rows) !certified_rows

(* --serve: validate a dtsvliw_serve results JSONL stream (the output of
   `dtsvliw_serve results --id N`, possibly several streams concatenated).
   Checks per line: parseable JSON with the documented event shape; per
   job id: shard_done events stay within a consistent shard count with no
   duplicates, and exactly one terminal event (done/failed/canceled)
   arrives last. *)
let check_serve path =
  let text = In_channel.with_open_text path In_channel.input_all in
  let jobs = Hashtbl.create 8 in
  (* id -> (shards seen done, declared shard count, terminal seen) *)
  let events = ref 0 in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun lineno line ->
      if String.trim line <> "" then begin
        let where = Printf.sprintf "%s:%d" path (lineno + 1) in
        let j =
          try Dts_obs.Json.of_string line
          with Dts_obs.Json.Parse_error msg ->
            fail "%s does not parse: %s" where msg
        in
        let int_of = int_of ~path:where and str_of = str_of ~path:where in
        let id = int_of j "id" in
        let ev = str_of j "ev" in
        incr events;
        let done_shards, shard_count, terminal =
          match Hashtbl.find_opt jobs id with
          | Some s -> s
          | None ->
            let s = (Hashtbl.create 8, ref (-1), ref false) in
            Hashtbl.add jobs id s;
            s
        in
        if !terminal then
          fail "%s: job %d: event %S after its terminal event" where id ev;
        match ev with
        | "shard_done" ->
          let shard = int_of j "shard" in
          let shards = int_of j "shards" in
          if shards <= 0 then fail "%s: job %d: shards %d" where id shards;
          if !shard_count = -1 then shard_count := shards
          else if !shard_count <> shards then
            fail "%s: job %d: shard count changed %d -> %d" where id
              !shard_count shards;
          if shard < 0 || shard >= shards then
            fail "%s: job %d: shard %d out of range [0,%d)" where id shard
              shards;
          if Hashtbl.mem done_shards shard then
            fail "%s: job %d: duplicate shard_done %d" where id shard;
          Hashtbl.add done_shards shard ()
        | "retry" ->
          ignore (int_of j "shard");
          ignore (int_of j "attempt")
        | "done" ->
          ignore (int_of j "exit_code");
          ignore (str_of j "text");
          terminal := true
        | "failed" ->
          ignore (str_of j "error");
          terminal := true
        | "canceled" -> terminal := true
        | _ -> fail "%s: job %d: unknown event %S" where id ev
      end)
    lines;
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) jobs [] in
  List.iter
    (fun id ->
      let _, _, terminal = Hashtbl.find jobs id in
      if not !terminal then fail "%s: job %d: no terminal event" path id)
    ids;
  Printf.printf "stats_check: %s ok (serve stream: %d jobs, %d events)\n" path
    (Hashtbl.length jobs) !events

let () =
  match Sys.argv with
  | [| _; path |] -> check_stats path
  | [| _; "--bench"; path |] -> check_bench path
  | [| _; "--bench"; path; "--alloc"; fresh |] -> check_bench ~alloc:fresh path
  | [| _; "--serve"; path |] -> check_serve path
  | [| _; "--optgap"; path |] -> check_optgap path
  | _ ->
    fail
      "usage: stats_check FILE.json | --bench FILE.json [--alloc FRESH.json] \
       | --serve STREAM.jsonl | --optgap FILE.json"
