(* CI validator for the --stats-json document.

   Reads a stats JSON file produced by `dtsvliw_sim --stats-json`, checks
   that it parses, that the required sections and keys are present, and
   that the cycle-attribution invariant holds: the attribution categories
   sum to the machine cycle count (and the VLIW-side categories to the
   VLIW cycle count). Exits non-zero with a diagnostic on any failure —
   wired into `dune runtest` as a smoke test of the observability path. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("stats_check: " ^ s); exit 1) fmt

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ -> fail "usage: stats_check STATS.json"
  in
  let doc =
    let text = In_channel.with_open_text path In_channel.input_all in
    try Dts_obs.Json.of_string text
    with Dts_obs.Json.Parse_error msg -> fail "%s does not parse: %s" path msg
  in
  let get obj key =
    match Dts_obs.Json.member key obj with
    | Some v -> v
    | None -> fail "%s: missing key %S" path key
  in
  let int_of obj key =
    match Dts_obs.Json.to_int (get obj key) with
    | Some n -> n
    | None -> fail "%s: key %S is not an integer" path key
  in
  let schema = int_of doc "schema_version" in
  if schema <> Dts_obs.Stats.schema_version then
    fail "schema_version %d, expected %d" schema Dts_obs.Stats.schema_version;
  let cycles = int_of doc "cycles" in
  let vliw_cycles = int_of doc "vliw_cycles" in
  ignore (int_of doc "instructions");
  List.iter
    (fun section -> ignore (get doc section))
    [ "attribution"; "machine"; "engine"; "caches"; "trace" ];
  let attribution = get doc "attribution" in
  let attributed =
    List.fold_left
      (fun acc cat -> acc + int_of attribution (Dts_obs.Attribution.name cat))
      0 Dts_obs.Attribution.all
  in
  if attributed <> cycles then
    fail "attribution sums to %d but cycles = %d" attributed cycles;
  let attributed_vliw =
    List.fold_left
      (fun acc cat -> acc + int_of attribution (Dts_obs.Attribution.name cat))
      0 Dts_obs.Attribution.vliw_categories
  in
  if attributed_vliw <> vliw_cycles then
    fail "VLIW attribution sums to %d but vliw_cycles = %d" attributed_vliw
      vliw_cycles;
  Printf.printf "stats_check: %s ok (%d cycles fully attributed)\n" path cycles
