(* The DTSVLIW simulator CLI.

   Run a built-in workload or a program file (SRISC assembly or tinyc,
   chosen by extension: .s / .c) on a configurable DTSVLIW machine and
   print the performance statistics. Every run executes in test mode.

   Examples:
     dtsvliw_sim --workload compress
     dtsvliw_sim --workload ijpeg --width 16 --height 16
     dtsvliw_sim -w compress -w go -w ijpeg --jobs 3
     dtsvliw_sim prog.s --feasible
     dtsvliw_sim prog.c --dif

   --workload repeats; several workloads run concurrently over --jobs
   domains, with the reports printed in the order given. *)

open Cmdliner

let load_program ~workload ~file ~scale =
  match (workload, file) with
  | Some name, None ->
    Dts_workloads.Workloads.program ~scale (Dts_workloads.Workloads.find name)
  | None, Some path ->
    let src = In_channel.with_open_text path In_channel.input_all in
    if Filename.check_suffix path ".c" then Dts_tinyc.Tinyc.compile src
    else Dts_asm.Assembler.assemble src
  | _ ->
    prerr_endline "specify exactly one of --workload NAME or a program file";
    exit 1

let build_config ~feasible ~width ~height ~vcache_kb ~vcache_assoc ~no_renaming
    ~store_list ~predict_next ~multicycle =
  let base =
    if feasible then Dts_core.Config.feasible ()
    else Dts_core.Config.ideal ?width ?height ()
  in
  let base =
    match (vcache_kb, vcache_assoc) with
    | None, None -> base
    | kb, assoc ->
      {
        base with
        vliw_cache =
          {
            kb = Option.value kb ~default:base.vliw_cache.kb;
            assoc = Option.value assoc ~default:base.vliw_cache.assoc;
          };
      }
  in
  let base =
    if no_renaming then { base with sched = { base.sched with renaming = false } }
    else base
  in
  let base =
    if store_list then
      { base with store_scheme = Dts_vliw.Engine.Data_store_list }
    else base
  in
  let base = { base with next_li_prediction = predict_next } in
  if multicycle then
    {
      base with
      sched = { base.sched with latencies = Dts_isa.Instr.multicycle_latencies };
      primary_timing =
        {
          base.primary_timing with
          latencies = Dts_isa.Instr.multicycle_latencies;
        };
    }
  else base

let print_stats (m : Dts_core.Machine.t) instructions =
  let s = Dts_core.Machine.stats m in
  Printf.printf "instructions (sequential): %d\n" instructions;
  Printf.printf "cycles:                    %d\n" s.cycles;
  Printf.printf "IPC:                       %.3f\n"
    (float_of_int instructions /. float_of_int (max 1 s.cycles));
  Printf.printf "VLIW execution cycles:     %.1f%%\n"
    (100. *. Dts_obs.Stats.vliw_cycle_fraction s);
  Printf.printf "slot utilisation:          %.1f%%\n"
    (100. *. Dts_obs.Stats.slot_utilisation s);
  Printf.printf "blocks built:              %d\n" s.blocks_flushed;
  Printf.printf "engine switches:           %d\n" s.engine_switches;
  Printf.printf "renaming registers (max):  %d int, %d fp, %d flag, %d mem\n"
    s.rr_max.(0) s.rr_max.(1) s.rr_max.(2) s.rr_max.(3);
  Printf.printf "load/store lists (max):    %d / %d\n" s.max_load_list
    s.max_store_list;
  Printf.printf "checkpoint recovery (max): %d\n" s.max_recovery_list;
  Printf.printf "branch mispredictions:     %d\n" s.mispredicts;
  Printf.printf "aliasing exceptions:       %d\n" s.aliasing_exceptions;
  Printf.printf "block exceptions:          %d\n" s.block_exceptions;
  Printf.printf "VLIW cache: %d hits, %d misses, %d insertions, %d evictions\n"
    s.vcache_hits s.vcache_misses s.vcache_insertions s.vcache_evictions;
  if m.cfg.next_li_prediction then
    Printf.printf "next-li predictor:         %d hits, %d misses\n" s.nlp_hits
      s.nlp_misses;
  if s.max_data_store_list > 0 then
    Printf.printf "data store list (max):     %d\n" s.max_data_store_list;
  Printf.printf "cycle attribution:\n";
  List.iter
    (fun cat ->
      let n = Dts_obs.Attribution.sum_of s.attribution [ cat ] in
      if n > 0 then
        Printf.printf "  %-28s %9d  (%.1f%%)\n"
          (Dts_obs.Attribution.label cat)
          n
          (100. *. float_of_int n /. float_of_int (max 1 s.cycles)))
    Dts_obs.Attribution.all

let dump_blocks (m : Dts_core.Machine.t) n =
  let blocks = ref [] in
  Dts_mem.Blockcache.iter (fun _ b -> blocks := b :: !blocks) m.vcache;
  let blocks =
    List.sort (fun a b -> compare a.Dts_sched.Schedtypes.tag_addr b.tag_addr) !blocks
  in
  Printf.printf "\n%d blocks resident in the VLIW Cache (showing up to %d):\n"
    (List.length blocks) n;
  List.iteri
    (fun i b ->
      if i < n then Format.printf "%a" Dts_sched.Schedtypes.pp_block b)
    blocks

let write_stats_json path (m : Dts_core.Machine.t) =
  match path with
  | None -> ()
  | Some path ->
    let s = Dts_core.Machine.stats m in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Dts_obs.Stats.to_json_string s))

let run_single ~workload ~file ~scale ~budget ~dif ~compile ~fastpath ~cfg
    ~show_blocks ~trace_file ~trace_limit ~stats_json =
  let program = load_program ~workload ~file ~scale in
  let trace_oc = Option.map open_out trace_file in
  let tracer =
    match trace_oc with
    | None -> Dts_obs.Trace.null
    | Some oc -> Dts_obs.Trace.to_channel ~limit:trace_limit oc
  in
  let finish m =
    write_stats_json stats_json m;
    Dts_obs.Trace.close tracer;
    Option.iter close_out trace_oc
  in
  if dif then begin
    let machine_cfg = Dts_dif.Dif.fig9_machine_cfg () in
    let m, d = Dts_dif.Dif.machine ~tracer ~machine_cfg program in
    let n = Dts_core.Machine.run ~max_instructions:budget m in
    print_endline "[DIF machine]";
    print_stats m n;
    Printf.printf "DIF exit points:           %d\n" d.total_exits;
    Printf.printf "DIF cache bytes built:     %d\n" d.cache_bytes;
    if show_blocks > 0 then dump_blocks m show_blocks;
    finish m
  end
  else begin
    Printf.printf "[DTSVLIW: %s]\n" (Dts_core.Config.describe cfg);
    let m = Dts_core.Machine.create ~compile ~fastpath ~tracer cfg program in
    let n = Dts_core.Machine.run ~max_instructions:budget m in
    print_stats m n;
    if show_blocks > 0 then dump_blocks m show_blocks;
    finish m
  end

(* Several workloads: simulate concurrently on the pool, print the reports
   sequentially in the order the workloads were given. *)
let run_many ~workloads ~scale ~budget ~jobs ~dif ~compile ~fastpath ~cfg
    ~show_blocks =
  let simulate name =
    let program =
      Dts_workloads.Workloads.program ~scale (Dts_workloads.Workloads.find name)
    in
    if dif then
      let machine_cfg = Dts_dif.Dif.fig9_machine_cfg () in
      let m, d = Dts_dif.Dif.machine ~machine_cfg program in
      let n = Dts_core.Machine.run ~max_instructions:budget m in
      (name, m, n, Some d)
    else
      let m = Dts_core.Machine.create ~compile ~fastpath cfg program in
      let n = Dts_core.Machine.run ~max_instructions:budget m in
      (name, m, n, None)
  in
  let results =
    Dts_parallel.Pool.with_pool ~jobs (fun pool ->
        Dts_parallel.Pool.map pool simulate workloads)
  in
  List.iteri
    (fun i (name, m, n, d) ->
      if i > 0 then print_newline ();
      Printf.printf "=== %s ===\n" name;
      (match d with
      | Some _ -> print_endline "[DIF machine]"
      | None -> Printf.printf "[DTSVLIW: %s]\n" (Dts_core.Config.describe cfg));
      print_stats m n;
      (match d with
      | Some (d : Dts_dif.Dif.t) ->
        Printf.printf "DIF exit points:           %d\n" d.total_exits;
        Printf.printf "DIF cache bytes built:     %d\n" d.cache_bytes
      | None -> ());
      if show_blocks > 0 then dump_blocks m show_blocks)
    results

let run workloads file scale budget jobs feasible dif no_compile no_fastpath
    width height vcache_kb vcache_assoc no_renaming store_list predict_next
    multicycle show_blocks trace_file trace_limit stats_json =
  let cfg =
    build_config ~feasible ~width ~height ~vcache_kb ~vcache_assoc ~no_renaming
      ~store_list ~predict_next ~multicycle
  in
  let compile = not no_compile in
  let fastpath = not no_fastpath in
  match (workloads, file) with
  | ([] | [ _ ]), _ ->
    let workload = match workloads with [ w ] -> Some w | _ -> None in
    run_single ~workload ~file ~scale ~budget ~dif ~compile ~fastpath ~cfg
      ~show_blocks ~trace_file ~trace_limit ~stats_json
  | _ :: _ :: _, Some _ ->
    prerr_endline "specify exactly one of --workload NAME or a program file";
    exit 1
  | (_ :: _ :: _ as workloads), None ->
    if trace_file <> None || stats_json <> None then begin
      prerr_endline
        "--trace/--stats-json write one file: combine them with a single \
         --workload only";
      exit 1
    end;
    run_many ~workloads ~scale ~budget
      ~jobs:(Dts_parallel.Pool.resolve_jobs jobs)
      ~dif ~compile ~fastpath ~cfg ~show_blocks

let workload_arg =
  let names = String.concat ", " (List.map (fun (w : Dts_workloads.Workloads.t) -> w.name) Dts_workloads.Workloads.all) in
  Arg.(value & opt_all string []
       & info [ "w"; "workload" ]
           ~doc:
             ("Built-in workload (repeatable; several run concurrently over \
               --jobs domains): " ^ names))

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"Program file (.s assembly or .c tinyc)")

let scale_arg = Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Workload scale")
let budget_arg = Arg.(value & opt int 500_000 & info [ "budget" ] ~doc:"Instruction budget")
let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains when several workloads are given (0 = one per host \
           core). Reports are printed in the order the workloads were named, \
           whatever the value.")
let feasible_arg = Arg.(value & flag & info [ "feasible" ] ~doc:"Use the feasible machine of section 4.4")
let dif_arg = Arg.(value & flag & info [ "dif" ] ~doc:"Simulate the DIF baseline instead")
let nocompile_arg = Arg.(value & flag & info [ "no-compile" ] ~doc:"Execute cached blocks through the VLIW engine's interpreter instead of install-time-compiled plans (slower; differentially tested to be bit-identical)")
let nofastpath_arg = Arg.(value & flag & info [ "no-fastpath" ] ~doc:"Run the sequential engines (Primary Processor, golden co-simulation) on the boxed Semantics.exec path instead of the allocation-free packed-op interpreter (slower; differentially tested to be bit-identical)")
let width_arg = Arg.(value & opt (some int) None & info [ "width" ] ~doc:"Instructions per long instruction")
let height_arg = Arg.(value & opt (some int) None & info [ "height" ] ~doc:"Long instructions per block")
let vkb_arg = Arg.(value & opt (some int) None & info [ "vcache-kb" ] ~doc:"VLIW cache size in KB")
let vassoc_arg = Arg.(value & opt (some int) None & info [ "vcache-assoc" ] ~doc:"VLIW cache associativity")
let noren_arg = Arg.(value & flag & info [ "no-renaming" ] ~doc:"Disable instruction splitting")
let storelist_arg = Arg.(value & flag & info [ "store-list" ] ~doc:"Use the data-store-list exception scheme (the paper's 3.11 alternative)")
let predict_arg = Arg.(value & flag & info [ "predict-next" ] ~doc:"Enable next-long-instruction prediction (the paper's section-5 future work)")
let multicycle_arg = Arg.(value & flag & info [ "multicycle" ] ~doc:"Multicycle functional units: ld 2, mul 3, div 8, fp 3")
let blocks_arg = Arg.(value & opt int 0 & info [ "dump-blocks" ] ~doc:"Print up to N scheduled blocks from the VLIW cache after the run")
let trace_arg = Arg.(value & opt (some string) None & info [ "trace" ] ~doc:"Write the structural event trace (engine switches, block flush/install/evict/fetch, aliasing violations, checkpoint recoveries) as JSONL to $(docv)" ~docv:"FILE")
let trace_limit_arg = Arg.(value & opt int Dts_obs.Trace.default_limit & info [ "trace-limit" ] ~doc:"Stop recording trace events after N lines (the dropped count is reported in the stats)")
let stats_json_arg = Arg.(value & opt (some string) None & info [ "stats-json" ] ~doc:"Write the consolidated run statistics (including the cycle attribution) as JSON to $(docv)" ~docv:"FILE")

let cmd =
  let doc = "execution-driven DTSVLIW simulator (always in test mode)" in
  Cmd.v
    (Cmd.info "dtsvliw_sim" ~doc)
    Term.(
      const run $ workload_arg $ file_arg $ scale_arg $ budget_arg $ jobs_arg
      $ feasible_arg $ dif_arg $ nocompile_arg $ nofastpath_arg $ width_arg
      $ height_arg
      $ vkb_arg $ vassoc_arg $ noren_arg $ storelist_arg $ predict_arg
      $ multicycle_arg $ blocks_arg $ trace_arg $ trace_limit_arg
      $ stats_json_arg)

let () = exit (Cmd.eval cmd)
