(* The DTSVLIW simulator CLI.

   Run a built-in workload or a program file (SRISC assembly or tinyc,
   chosen by extension: .s / .c) on a configurable DTSVLIW machine and
   print the performance statistics. Every run executes in test mode.

   Examples:
     dtsvliw_sim --workload compress
     dtsvliw_sim --workload ijpeg --width 16 --height 16
     dtsvliw_sim -w compress -w go -w ijpeg --jobs 3
     dtsvliw_sim prog.s --feasible
     dtsvliw_sim prog.c --dif

   --workload repeats; several workloads run concurrently over --jobs
   workers, with the reports printed in the order given.

   The CLI is a thin flag -> Dts_job.Job.t adapter: the simulation and the
   report text live in Dts_job.Run, shared byte-for-byte with the
   dtsvliw_serve campaign daemon. *)

open Cmdliner
open Dts_job

let usage_one_source () =
  prerr_endline "specify exactly one of --workload NAME or a program file";
  exit 1

let write_stats_json path outcome =
  match (path, outcome.Run.stats_json) with
  | Some path, Some doc ->
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc doc)
  | _ -> ()

let run_single ~job ~optcheck ~trace_file ~trace_limit ~stats_json =
  let trace_oc = Option.map open_out trace_file in
  let tracer =
    match trace_oc with
    | None -> Dts_obs.Trace.null
    | Some oc -> Dts_obs.Trace.to_channel ~limit:trace_limit oc
  in
  let outcome = Run.run ~tracer ~optcheck job in
  print_string outcome.Run.text;
  write_stats_json stats_json outcome;
  Dts_obs.Trace.close tracer;
  Option.iter close_out trace_oc;
  if outcome.Run.exit_code <> 0 then exit outcome.Run.exit_code

(* Several workloads: simulate concurrently on the pool, print the reports
   sequentially in the order the workloads were given. *)
let run_many ~job_of ~optcheck ~workloads ~jobs ~backend =
  let outcomes =
    Dts_parallel.Pool.with_pool ~backend ~jobs (fun pool ->
        Dts_parallel.Pool.map pool
          (fun name -> Run.run ~optcheck (job_of (Job.Builtin name)))
          workloads)
  in
  List.iteri
    (fun i (name, outcome) ->
      if i > 0 then print_newline ();
      Printf.printf "=== %s ===\n" name;
      print_string outcome.Run.text)
    (List.combine workloads outcomes);
  if List.exists (fun o -> o.Run.exit_code <> 0) outcomes then exit 1

let run workloads file scale budget jobs backend feasible dif no_compile
    no_fastpath width height vcache_kb vcache_assoc no_renaming store_list
    predict_next multicycle show_blocks optcheck trace_file trace_limit
    stats_json =
  Cli.check_positive ~what:"--budget" budget;
  Cli.check_positive ~what:"--scale" scale;
  Cli.check_non_negative ~what:"--jobs" jobs;
  Cli.check_non_negative ~what:"--dump-blocks" show_blocks;
  Cli.check_non_negative ~what:"--trace-limit" trace_limit;
  let backend = Cli.backend_of_flag backend in
  let machine =
    {
      Machine_opts.feasible;
      dif;
      compile = not no_compile;
      fastpath = not no_fastpath;
      width;
      height;
      vcache_kb;
      vcache_assoc;
      renaming = not no_renaming;
      store_list;
      predict_next;
      multicycle;
    }
  in
  let job_of source =
    let job = Job.workload ~budget ~scale ~machine ~dump_blocks:show_blocks source in
    Cli.check (Job.validate job);
    job
  in
  if optcheck && dif then begin
    prerr_endline "--optcheck applies to DTSVLIW machines only (not --dif)";
    exit 1
  end;
  match (workloads, file) with
  | [], None | [ _ ], Some _ -> usage_one_source ()
  | [ w ], None ->
    run_single ~job:(job_of (Job.Builtin w)) ~optcheck ~trace_file ~trace_limit
      ~stats_json
  | [], Some path ->
    run_single ~job:(job_of (Job.File path)) ~optcheck ~trace_file ~trace_limit
      ~stats_json
  | _ :: _ :: _, Some _ -> usage_one_source ()
  | (_ :: _ :: _ as workloads), None ->
    if trace_file <> None || stats_json <> None then begin
      prerr_endline
        "--trace/--stats-json write one file: combine them with a single \
         --workload only";
      exit 1
    end;
    run_many ~job_of ~optcheck ~workloads
      ~jobs:(Dts_parallel.Pool.resolve_jobs jobs)
      ~backend

let workload_arg =
  let names = String.concat ", " (List.map (fun (w : Dts_workloads.Workloads.t) -> w.name) Dts_workloads.Workloads.all) in
  Arg.(value & opt_all string []
       & info [ "w"; "workload" ]
           ~doc:
             ("Built-in workload (repeatable; several run concurrently over \
               --jobs workers): " ^ names))

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"Program file (.s assembly or .c tinyc)")

let jobs_doc =
  "Workers when several workloads are given (0 = one per host core). \
   Reports are printed in the order the workloads were named, whatever the \
   value."
let feasible_arg = Arg.(value & flag & info [ "feasible" ] ~doc:"Use the feasible machine of section 4.4")
let dif_arg = Arg.(value & flag & info [ "dif" ] ~doc:"Simulate the DIF baseline instead")
let nocompile_arg = Arg.(value & flag & info [ "no-compile" ] ~doc:"Execute cached blocks through the VLIW engine's interpreter instead of install-time-compiled plans (slower; differentially tested to be bit-identical)")
let nofastpath_arg = Arg.(value & flag & info [ "no-fastpath" ] ~doc:"Run the sequential engines (Primary Processor, golden co-simulation) on the boxed Semantics.exec path instead of the allocation-free packed-op interpreter (slower; differentially tested to be bit-identical)")
let width_arg = Arg.(value & opt (some int) None & info [ "width" ] ~doc:"Instructions per long instruction")
let height_arg = Arg.(value & opt (some int) None & info [ "height" ] ~doc:"Long instructions per block")
let vkb_arg = Arg.(value & opt (some int) None & info [ "vcache-kb" ] ~doc:"VLIW cache size in KB")
let vassoc_arg = Arg.(value & opt (some int) None & info [ "vcache-assoc" ] ~doc:"VLIW cache associativity")
let noren_arg = Arg.(value & flag & info [ "no-renaming" ] ~doc:"Disable instruction splitting")
let storelist_arg = Arg.(value & flag & info [ "store-list" ] ~doc:"Use the data-store-list exception scheme (the paper's 3.11 alternative)")
let predict_arg = Arg.(value & flag & info [ "predict-next" ] ~doc:"Enable next-long-instruction prediction (the paper's section-5 future work)")
let multicycle_arg = Arg.(value & flag & info [ "multicycle" ] ~doc:"Multicycle functional units: ld 2, mul 3, div 8, fp 3")
let blocks_arg = Arg.(value & opt int 0 & info [ "dump-blocks" ] ~doc:"Print up to N scheduled blocks from the VLIW cache after the run")
let optcheck_arg = Arg.(value & flag & info [ "optcheck" ] ~doc:"Check every block the Scheduler Unit finishes against the branch-and-bound optimality oracle: the block must pass the oracle's independent legality invariants and its greedy schedule must never beat the certified optimal lower bound. Appends a summary line; violations exit 1")
let trace_arg = Arg.(value & opt (some string) None & info [ "trace" ] ~doc:"Write the structural event trace (engine switches, block flush/install/evict/fetch, aliasing violations, checkpoint recoveries) as JSONL to $(docv)" ~docv:"FILE")
let trace_limit_arg = Arg.(value & opt int Dts_obs.Trace.default_limit & info [ "trace-limit" ] ~doc:"Stop recording trace events after N lines (the dropped count is reported in the stats)")
let stats_json_arg = Arg.(value & opt (some string) None & info [ "stats-json" ] ~doc:"Write the consolidated run statistics (including the cycle attribution) as JSON to $(docv)" ~docv:"FILE")

let cmd =
  let doc = "execution-driven DTSVLIW simulator (always in test mode)" in
  Cmd.v
    (Cli.cmd_info "dtsvliw_sim" ~doc)
    Term.(
      const run $ workload_arg $ file_arg $ Cli.scale_arg
      $ Cli.budget_arg ()
      $ Cli.jobs_arg ~default:0 ~doc:jobs_doc ()
      $ Cli.backend_arg $ feasible_arg $ dif_arg $ nocompile_arg
      $ nofastpath_arg $ width_arg $ height_arg $ vkb_arg $ vassoc_arg
      $ noren_arg $ storelist_arg $ predict_arg $ multicycle_arg $ blocks_arg
      $ optcheck_arg $ trace_arg $ trace_limit_arg $ stats_json_arg)

let () = exit (Cmd.eval cmd)
