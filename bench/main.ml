(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (§4): Table 1, Table 2, Figure 5a/5b, Figure 6, Figure 7, Figure 8,
   Table 3, Figure 9, plus the ablation study. The instruction budget per
   simulation comes from BENCH_BUDGET (default 100000); raise it for
   tighter numbers (the paper used 50M+ per run).

   Part 2 runs Bechamel micro/meso benchmarks: one Test.make per paper
   table/figure (measuring the wall-clock cost of regenerating it at a
   small budget) plus component microbenchmarks of the simulator itself. *)

let budget =
  match Sys.getenv_opt "BENCH_BUDGET" with
  | Some s -> int_of_string s
  | None -> 100_000

let part1 () =
  Printf.printf
    "==============================================================\n\
     Reproduction of the paper's evaluation (budget %d instructions\n\
     per run; set BENCH_BUDGET to change)\n\
     ==============================================================\n\n"
    budget;
  print_string (Dts_experiments.Experiments.all ~scale:1 ~budget ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel benchmarks                                          *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let small = 15_000 (* instruction budget inside timed benchmarks *)

(* one Test.make per paper artifact: time-to-regenerate at a small budget *)
let bench_figure name (f : ?scale:int -> ?budget:int -> unit -> string) =
  Test.make ~name (Staged.stage (fun () -> ignore (f ~scale:1 ~budget:small ())))

let figure_tests =
  [
    bench_figure "table3/feasible-machine" Dts_experiments.Experiments.table3;
    bench_figure "fig9/dtsvliw-vs-dif" Dts_experiments.Experiments.fig9;
  ]

(* component microbenchmarks *)

let compress_program =
  lazy
    (Dts_workloads.Workloads.program ~scale:1
       (Dts_workloads.Workloads.find "compress"))

let bench_golden =
  Test.make ~name:"golden/15k-instructions"
    (Staged.stage (fun () ->
         let st = Dts_asm.Program.boot (Lazy.force compress_program) in
         let g = Dts_golden.Golden.of_state st in
         ignore (Dts_golden.Golden.run ~max_instructions:small g)))

let bench_machine =
  Test.make ~name:"dtsvliw-machine/15k-instructions"
    (Staged.stage (fun () ->
         let m =
           Dts_core.Machine.create
             (Dts_core.Config.ideal ())
             (Lazy.force compress_program)
         in
         ignore (Dts_core.Machine.run ~max_instructions:small m)))

let bench_dif =
  Test.make ~name:"dif-machine/15k-instructions"
    (Staged.stage (fun () ->
         let m, _ =
           Dts_dif.Dif.machine
             ~machine_cfg:(Dts_dif.Dif.fig9_machine_cfg ())
             (Lazy.force compress_program)
         in
         ignore (Dts_core.Machine.run ~max_instructions:small m)))

let bench_assembler =
  let src =
    lazy
      (Dts_tinyc.Tinyc.compile_to_assembly
         ((Dts_workloads.Workloads.find "compress").source 1))
  in
  Test.make ~name:"assembler/compress"
    (Staged.stage (fun () ->
         ignore (Dts_asm.Assembler.assemble (Lazy.force src))))

let bench_tinyc =
  Test.make ~name:"tinyc-compile/gcc-analogue"
    (Staged.stage (fun () ->
         ignore
           (Dts_tinyc.Tinyc.compile ((Dts_workloads.Workloads.find "gcc").source 1))))

let bench_cache =
  Test.make ~name:"cache/100k-accesses"
    (Staged.stage (fun () ->
         let c =
           Dts_mem.Cache.create ~size_bytes:(32 * 1024) ~line_bytes:32 ~assoc:4
             ~miss_penalty:8
         in
         let acc = ref 0 in
         for i = 0 to 99_999 do
           acc := !acc + Dts_mem.Cache.access c (i * 52 mod 262144)
         done;
         ignore !acc))

let bench_encode =
  Test.make ~name:"encode-decode/10k-roundtrips"
    (Staged.stage (fun () ->
         let i =
           Dts_isa.Instr.Alu { op = Add; cc = true; rs1 = 9; op2 = Reg 10; rd = 11 }
         in
         for pc = 0 to 9_999 do
           ignore (Dts_isa.Encode.decode ~pc:(pc * 4) (Dts_isa.Encode.encode ~pc:(pc * 4) i))
         done))

let all_tests =
  Test.make_grouped ~name:"dtsvliw"
    (figure_tests
    @ [
        bench_golden;
        bench_machine;
        bench_dif;
        bench_assembler;
        bench_tinyc;
        bench_cache;
        bench_encode;
      ])

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 1.0) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "%-40s  %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 60 '-');
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
        let ns = est in
        let pretty =
          if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
          else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
          else Printf.sprintf "%.0f ns" ns
        in
        Printf.printf "%-40s  %16s\n" name pretty
      | _ -> Printf.printf "%-40s  %16s\n" name "n/a")
    results

let () =
  part1 ();
  print_endline "=== Bechamel component benchmarks ===";
  benchmark ()
