(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (§4): Table 1, Table 2, Figure 5a/5b, Figure 6, Figure 7, Figure 8,
   Table 3, Figure 9, plus the ablation study. The instruction budget per
   simulation comes from BENCH_BUDGET (default 100000); raise it for
   tighter numbers (the paper used 50M+ per run). BENCH_JOBS sets the
   worker-domain count for each figure's simulations (default 1 =
   sequential; 0 = one per host core); with BENCH_JOBS > 1 every figure is
   measured twice — sequentially (seq_wall_s) and on the pool (wall_s) —
   and the rendered output of the two passes is asserted identical. A
   final "primary_only" row (schema v5) times the golden interpreter and
   the primary processor standalone over all eight workloads, isolating
   raw interpreter throughput from machine-level overheads. Each
   figure is timed, compared against the checked-in baseline's sequential
   wall-clock, and the machine-readable baseline — per-figure wall-clock,
   simulated instructions/sec, budget, jobs, git revision — is written to
   BENCH_RESULTS.json next to the stdout report so every run leaves a
   perf trajectory to compare against (see EXPERIMENTS.md "Benchmarking").
   When a figure's sequential wall regresses more than 25% against a
   baseline recorded at the same budget, the harness exits with code 3.

   Part 2 runs Bechamel micro/meso benchmarks: one Test.make per paper
   table/figure (measuring the wall-clock cost of regenerating it at a
   small budget) plus component microbenchmarks of the simulator itself. *)

let env_int ~name ~default ~min =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= min -> n
    | Some _ | None ->
      Printf.eprintf "bench: invalid %s %S — expected an integer >= %d\n" name
        s min;
      exit 2)

let budget =
  env_int ~name:"BENCH_BUDGET" ~default:100_000 ~min:1
(* sequential instructions per simulation *)

let jobs = Dts_parallel.Pool.resolve_jobs (env_int ~name:"BENCH_JOBS" ~default:1 ~min:0)
let host_cores = Dts_parallel.Pool.recommended ()

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's figures, timed, with a JSON baseline             *)
(* ------------------------------------------------------------------ *)

type figure_result = {
  fr_name : string;
  fr_wall_s : float;  (** wall at BENCH_JOBS workers (= seq when jobs=1) *)
  fr_seq_wall_s : float;  (** wall of the sequential (jobs=1) pass *)
  fr_instructions : int;  (** sequential instructions simulated (one pass) *)
  fr_runs : int;  (** simulation runs performed by the figure *)
  fr_mean_ipc : float;  (** mean IPC over those runs (0 if none) *)
  fr_cycles : int;  (** total machine cycles across the runs *)
  fr_attributed : int;  (** total attributed cycles (= fr_cycles invariant) *)
  fr_minor_words : int;  (** minor-heap words allocated by the seq pass *)
  fr_major_words : int;  (** major-heap words allocated by the seq pass *)
}

let results_path = "BENCH_RESULTS.json"

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.tm_year + 1900)
    (tm.tm_mon + 1) tm.tm_mday tm.tm_hour tm.tm_min tm.tm_sec

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let instr_per_sec instructions wall_s =
  if wall_s > 0. && instructions > 0 then
    float_of_int instructions /. wall_s
  else 0.

(* The checked-in baseline (the previous run's BENCH_RESULTS.json), read
   before it is overwritten: its budget and the per-figure sequential wall
   seconds. Schema v2 recorded only sequential runs as "wall_s"; v3 carries
   the sequential pass explicitly as "seq_wall_s". *)
type baseline = { base_budget : int; base_walls : (string * float) list }

let read_baseline () =
  match
    try
      let ic = open_in_bin results_path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Some (Dts_obs.Json.of_string s)
    with Sys_error _ | Dts_obs.Json.Parse_error _ -> None
  with
  | None -> None
  | Some j -> (
    let open Dts_obs.Json in
    match (Option.bind (member "budget" j) to_int, member "figures" j) with
    | Some base_budget, Some (List figs) ->
      let wall_of fig =
        match
          ( Option.bind (member "name" fig) to_str,
            Option.bind
              (match member "seq_wall_s" fig with
              | Some _ as s -> s
              | None -> member "wall_s" fig)
              to_float )
        with
        | Some name, Some w when w > 0. -> Some (name, w)
        | _ -> None
      in
      Some { base_budget; base_walls = List.filter_map wall_of figs }
    | _ -> None)

let write_results ~started figures =
  let total_wall = List.fold_left (fun a f -> a +. f.fr_wall_s) 0. figures in
  let total_seq_wall =
    List.fold_left (fun a f -> a +. f.fr_seq_wall_s) 0. figures
  in
  let total_instr =
    List.fold_left (fun a f -> a + f.fr_instructions) 0 figures
  in
  let oc = open_out results_path in
  let figure_json f =
    Printf.sprintf
      "    {\"name\": %S, \"wall_s\": %.6f, \"seq_wall_s\": %.6f, \
       \"instructions\": %d, \"instr_per_sec\": %.1f, \"runs\": %d, \
       \"mean_ipc\": %.4f, \"cycles\": %d, \"attributed_cycles\": %d, \
       \"minor_words\": %d, \"major_words\": %d}"
      f.fr_name f.fr_wall_s f.fr_seq_wall_s f.fr_instructions
      (instr_per_sec f.fr_instructions f.fr_seq_wall_s)
      f.fr_runs f.fr_mean_ipc f.fr_cycles f.fr_attributed f.fr_minor_words
      f.fr_major_words
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 5,\n\
    \  \"generated_at\": \"%s\",\n\
    \  \"git_rev\": \"%s\",\n\
    \  \"budget\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"host_cores\": %d,\n\
    \  \"figures\": [\n\
     %s\n\
    \  ],\n\
    \  \"total\": {\"wall_s\": %.6f, \"seq_wall_s\": %.6f, \
     \"instructions\": %d, \"instr_per_sec\": %.1f}\n\
     }\n"
    (iso8601 started)
    (json_escape (git_rev ()))
    budget jobs host_cores
    (String.concat ",\n" (List.map figure_json figures))
    total_wall total_seq_wall total_instr
    (instr_per_sec total_instr total_seq_wall);
  close_out oc

let figure_names =
  [
    "table1"; "table2"; "fig5a"; "fig5"; "fig6"; "fig7"; "fig8"; "table3";
    "fig9"; "ablation"; "extensions"; "optgap";
  ]

(* The "primary_only" row (schema v5): the golden interpreter and the
   primary processor run standalone — no VLIW engine, no scheduler, no
   co-simulation — over all eight workloads at the same budget. This is
   the ceiling of the trace-production side: machine-level figures divide
   their instr/s by scheduling and sync overheads, so tracking the bare
   engines separately tells regressions in the interpreters apart from
   regressions in the machine plumbing. *)
let primary_only () =
  let gc0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let instructions = ref 0 in
  let runs = ref 0 in
  List.iter
    (fun w ->
      let p = Dts_workloads.Workloads.program ~scale:1 w in
      let st = Dts_asm.Program.boot p in
      let g = Dts_golden.Golden.of_state st in
      instructions := !instructions + Dts_golden.Golden.run ~max_instructions:budget g;
      incr runs;
      let st = Dts_asm.Program.boot p in
      let icache = Dts_core.Config.make_cache Dts_core.Config.Perfect in
      let dcache = Dts_core.Config.make_cache Dts_core.Config.Perfect in
      let pr = Dts_primary.Primary.create ~icache ~dcache st in
      instructions := !instructions + Dts_primary.Primary.run ~max_instructions:budget pr;
      incr runs)
    Dts_workloads.Workloads.all;
  let wall = Unix.gettimeofday () -. t0 in
  let gc1 = Gc.quick_stat () in
  {
    fr_name = "primary_only";
    fr_wall_s = wall;
    fr_seq_wall_s = wall;
    fr_instructions = !instructions;
    fr_runs = !runs;
    fr_mean_ipc = 0.;
    fr_cycles = 0;
    fr_attributed = 0;
    fr_minor_words = int_of_float (gc1.Gc.minor_words -. gc0.Gc.minor_words);
    fr_major_words = int_of_float (gc1.Gc.major_words -. gc0.Gc.major_words);
  }

let part1 () =
  Printf.printf
    "==============================================================\n\
     Reproduction of the paper's evaluation (budget %d instructions\n\
     per run, %d worker domain(s) of %d host cores; set BENCH_BUDGET\n\
     and BENCH_JOBS to change)\n\
     ==============================================================\n\n"
    budget jobs host_cores;
  let baseline = read_baseline () in
  let started = Unix.gettimeofday () in
  let pool =
    if jobs > 1 then Some (Dts_parallel.Pool.create ~jobs ()) else None
  in
  let figures =
    List.map
      (fun name ->
        let f = List.assoc name Dts_experiments.Experiments.by_name in
        let instr0 = Dts_experiments.Experiments.simulated_instructions () in
        (* allocation accounting for the sequential pass: quick_stat deltas
           make per-figure allocation regressions visible in the baseline *)
        let gc0 = Gc.quick_stat () in
        let t0 = Unix.gettimeofday () in
        let fig = f ~scale:1 ~budget () in
        let seq_wall = Unix.gettimeofday () -. t0 in
        let gc1 = Gc.quick_stat () in
        let minor_words =
          int_of_float (gc1.Gc.minor_words -. gc0.Gc.minor_words)
        in
        let major_words =
          int_of_float (gc1.Gc.major_words -. gc0.Gc.major_words)
        in
        let instructions =
          Dts_experiments.Experiments.simulated_instructions () - instr0
        in
        let rendered = fig.Dts_experiments.Experiments.render () in
        (* with a pool, a second, parallel pass: timed and — the whole point
           of deterministic fan-out — asserted to render identically *)
        let fig, wall =
          match pool with
          | None -> (fig, seq_wall)
          | Some p ->
            let t0 = Unix.gettimeofday () in
            let figp = f ~pool:p ~scale:1 ~budget () in
            let wall = Unix.gettimeofday () -. t0 in
            if figp.Dts_experiments.Experiments.render () <> rendered then begin
              Printf.eprintf
                "bench: figure %s renders differently at jobs=%d than \
                 sequentially — parallel determinism violated\n"
                name jobs;
              exit 4
            end;
            (figp, wall)
        in
        print_string rendered;
        print_newline ();
        let rows = fig.Dts_experiments.Experiments.rows in
        let n_runs = List.length rows in
        let mean_ipc =
          if n_runs = 0 then 0.
          else
            List.fold_left
              (fun a (r : Dts_experiments.Experiments.run) -> a +. r.ipc)
              0. rows
            /. float_of_int n_runs
        in
        let cycles =
          List.fold_left
            (fun a (r : Dts_experiments.Experiments.run) -> a + r.cycles)
            0 rows
        in
        let attributed =
          List.fold_left
            (fun a (r : Dts_experiments.Experiments.run) ->
              a + Dts_obs.Stats.attributed_total r.stats)
            0 rows
        in
        {
          fr_name = name;
          fr_wall_s = wall;
          fr_seq_wall_s = seq_wall;
          fr_instructions = instructions;
          fr_runs = n_runs;
          fr_mean_ipc = mean_ipc;
          fr_cycles = cycles;
          fr_attributed = attributed;
          fr_minor_words = minor_words;
          fr_major_words = major_words;
        })
      figure_names
  in
  (match pool with Some p -> Dts_parallel.Pool.shutdown p | None -> ());
  let figures = figures @ [ primary_only () ] in
  write_results ~started figures;
  (* summary: the speedup column compares this run's sequential wall with
     the checked-in baseline's sequential wall (seq-to-seq; jobs never
     flatter the trend line), and only at the same budget *)
  let base_wall f =
    match baseline with
    | Some b when b.base_budget = budget ->
      List.assoc_opt f.fr_name b.base_walls
    | _ -> None
  in
  Printf.printf "  %-12s %10s %10s %10s  %12s  %s\n" "figure" "seq wall"
    (Printf.sprintf "wall(j%d)" jobs)
    "instr" "instr/s(seq)" "speedup vs baseline";
  List.iter
    (fun f ->
      let speedup =
        match base_wall f with
        | Some bw -> Printf.sprintf "%.2fx" (bw /. f.fr_seq_wall_s)
        | None -> "-"
      in
      Printf.printf "  %-12s %9.2fs %9.2fs %10d  %12.0f  %s\n" f.fr_name
        f.fr_seq_wall_s f.fr_wall_s f.fr_instructions
        (instr_per_sec f.fr_instructions f.fr_seq_wall_s)
        speedup)
    figures;
  Printf.printf "\nMachine-readable baseline written to %s\n\n" results_path;
  (* the regression gate: >25% slower than a baseline at the same budget *)
  let regressions =
    List.filter_map
      (fun f ->
        match base_wall f with
        | Some bw when f.fr_seq_wall_s > 1.25 *. bw ->
          Some (f.fr_name, bw, f.fr_seq_wall_s)
        | _ -> None)
      figures
  in
  List.iter
    (fun (name, bw, w) ->
      Printf.eprintf
        "bench: REGRESSION %s: %.2fs sequential vs %.2fs baseline (>25%%)\n"
        name w bw)
    regressions;
  regressions <> []

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel benchmarks                                          *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let small = 15_000 (* instruction budget inside timed benchmarks *)

(* one Test.make per paper artifact: time-to-regenerate at a small budget *)
let bench_figure name
    (f :
      ?pool:Dts_parallel.Pool.t ->
      ?scale:int ->
      ?budget:int ->
      unit ->
      Dts_experiments.Experiments.figure) =
  Test.make ~name
    (Staged.stage (fun () ->
         ignore ((f ~scale:1 ~budget:small ()).Dts_experiments.Experiments.render ())))

let figure_tests =
  [
    bench_figure "table3/feasible-machine" Dts_experiments.Experiments.table3;
    bench_figure "fig9/dtsvliw-vs-dif" Dts_experiments.Experiments.fig9;
  ]

(* component microbenchmarks *)

let compress_program =
  lazy
    (Dts_workloads.Workloads.program ~scale:1
       (Dts_workloads.Workloads.find "compress"))

let bench_golden =
  Test.make ~name:"golden/15k-instructions"
    (Staged.stage (fun () ->
         let st = Dts_asm.Program.boot (Lazy.force compress_program) in
         let g = Dts_golden.Golden.of_state st in
         ignore (Dts_golden.Golden.run ~max_instructions:small g)))

let bench_machine =
  Test.make ~name:"dtsvliw-machine/15k-instructions"
    (Staged.stage (fun () ->
         let m =
           Dts_core.Machine.create
             (Dts_core.Config.ideal ())
             (Lazy.force compress_program)
         in
         ignore (Dts_core.Machine.run ~max_instructions:small m)))

let bench_dif =
  Test.make ~name:"dif-machine/15k-instructions"
    (Staged.stage (fun () ->
         let m, _ =
           Dts_dif.Dif.machine
             ~machine_cfg:(Dts_dif.Dif.fig9_machine_cfg ())
             (Lazy.force compress_program)
         in
         ignore (Dts_core.Machine.run ~max_instructions:small m)))

let bench_assembler =
  let src =
    lazy
      (Dts_tinyc.Tinyc.compile_to_assembly
         ((Dts_workloads.Workloads.find "compress").source 1))
  in
  Test.make ~name:"assembler/compress"
    (Staged.stage (fun () ->
         ignore (Dts_asm.Assembler.assemble (Lazy.force src))))

let bench_tinyc =
  Test.make ~name:"tinyc-compile/gcc-analogue"
    (Staged.stage (fun () ->
         ignore
           (Dts_tinyc.Tinyc.compile ((Dts_workloads.Workloads.find "gcc").source 1))))

let bench_cache =
  Test.make ~name:"cache/100k-accesses"
    (Staged.stage (fun () ->
         let c =
           Dts_mem.Cache.create ~size_bytes:(32 * 1024) ~line_bytes:32 ~assoc:4
             ~miss_penalty:8
         in
         let acc = ref 0 in
         for i = 0 to 99_999 do
           acc := !acc + Dts_mem.Cache.access c (i * 52 mod 262144)
         done;
         ignore !acc))

let bench_encode =
  Test.make ~name:"encode-decode/10k-roundtrips"
    (Staged.stage (fun () ->
         let i =
           Dts_isa.Instr.Alu { op = Add; cc = true; rs1 = 9; op2 = Reg 10; rd = 11 }
         in
         for pc = 0 to 9_999 do
           ignore (Dts_isa.Encode.decode ~pc:(pc * 4) (Dts_isa.Encode.encode ~pc:(pc * 4) i))
         done))

let all_tests =
  Test.make_grouped ~name:"dtsvliw"
    (figure_tests
    @ [
        bench_golden;
        bench_machine;
        bench_dif;
        bench_assembler;
        bench_tinyc;
        bench_cache;
        bench_encode;
      ])

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 1.0) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "%-40s  %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 60 '-');
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
        let ns = est in
        let pretty =
          if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
          else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
          else Printf.sprintf "%.0f ns" ns
        in
        Printf.printf "%-40s  %16s\n" name pretty
      | _ -> Printf.printf "%-40s  %16s\n" name "n/a")
    results

let () =
  let regressed = part1 () in
  if regressed then begin
    (* fail fast for CI: the component benchmarks can't rescue a figure
       regression *)
    prerr_endline "bench: exiting 3 (figure wall-clock regression)";
    exit 3
  end;
  print_endline "=== Bechamel component benchmarks ===";
  benchmark ()
