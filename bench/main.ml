(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (§4): Table 1, Table 2, Figure 5a/5b, Figure 6, Figure 7, Figure 8,
   Table 3, Figure 9, plus the ablation study. The instruction budget per
   simulation comes from BENCH_BUDGET (default 100000); raise it for
   tighter numbers (the paper used 50M+ per run). Each figure is timed,
   and the machine-readable baseline — per-figure wall-clock, simulated
   instructions/sec, budget, git revision — is written to
   BENCH_RESULTS.json next to the stdout report so every run leaves a
   perf trajectory to compare against (see EXPERIMENTS.md "Benchmarking").

   Part 2 runs Bechamel micro/meso benchmarks: one Test.make per paper
   table/figure (measuring the wall-clock cost of regenerating it at a
   small budget) plus component microbenchmarks of the simulator itself. *)

let budget =
  match Sys.getenv_opt "BENCH_BUDGET" with
  | None -> 100_000
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | Some _ | None ->
      Printf.eprintf
        "bench: invalid BENCH_BUDGET %S — expected a positive integer \
         (sequential instructions per simulation)\n"
        s;
      exit 2)

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's figures, timed, with a JSON baseline             *)
(* ------------------------------------------------------------------ *)

type figure_result = {
  fr_name : string;
  fr_wall_s : float;
  fr_instructions : int;  (** sequential instructions simulated *)
  fr_runs : int;  (** simulation runs performed by the figure *)
  fr_mean_ipc : float;  (** mean IPC over those runs (0 if none) *)
  fr_cycles : int;  (** total machine cycles across the runs *)
  fr_attributed : int;  (** total attributed cycles (= fr_cycles invariant) *)
}

let results_path = "BENCH_RESULTS.json"

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.tm_year + 1900)
    (tm.tm_mon + 1) tm.tm_mday tm.tm_hour tm.tm_min tm.tm_sec

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let instr_per_sec instructions wall_s =
  if wall_s > 0. && instructions > 0 then
    float_of_int instructions /. wall_s
  else 0.

let write_results ~started figures =
  let total_wall = List.fold_left (fun a f -> a +. f.fr_wall_s) 0. figures in
  let total_instr =
    List.fold_left (fun a f -> a + f.fr_instructions) 0 figures
  in
  let oc = open_out results_path in
  let figure_json f =
    Printf.sprintf
      "    {\"name\": %S, \"wall_s\": %.6f, \"instructions\": %d, \
       \"instr_per_sec\": %.1f, \"runs\": %d, \"mean_ipc\": %.4f, \
       \"cycles\": %d, \"attributed_cycles\": %d}"
      f.fr_name f.fr_wall_s f.fr_instructions
      (instr_per_sec f.fr_instructions f.fr_wall_s)
      f.fr_runs f.fr_mean_ipc f.fr_cycles f.fr_attributed
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 2,\n\
    \  \"generated_at\": \"%s\",\n\
    \  \"git_rev\": \"%s\",\n\
    \  \"budget\": %d,\n\
    \  \"figures\": [\n\
     %s\n\
    \  ],\n\
    \  \"total\": {\"wall_s\": %.6f, \"instructions\": %d, \
     \"instr_per_sec\": %.1f}\n\
     }\n"
    (iso8601 started)
    (json_escape (git_rev ()))
    budget
    (String.concat ",\n" (List.map figure_json figures))
    total_wall total_instr
    (instr_per_sec total_instr total_wall);
  close_out oc

let figure_names =
  [
    "table1"; "table2"; "fig5a"; "fig5"; "fig6"; "fig7"; "fig8"; "table3";
    "fig9"; "ablation"; "extensions";
  ]

let part1 () =
  Printf.printf
    "==============================================================\n\
     Reproduction of the paper's evaluation (budget %d instructions\n\
     per run; set BENCH_BUDGET to change)\n\
     ==============================================================\n\n"
    budget;
  let started = Unix.gettimeofday () in
  let figures =
    List.map
      (fun name ->
        let f = List.assoc name Dts_experiments.Experiments.by_name in
        let instr0 = Dts_experiments.Experiments.simulated_instructions () in
        let t0 = Unix.gettimeofday () in
        let fig = f ~scale:1 ~budget () in
        let wall = Unix.gettimeofday () -. t0 in
        let instructions =
          Dts_experiments.Experiments.simulated_instructions () - instr0
        in
        print_string (fig.Dts_experiments.Experiments.render ());
        print_newline ();
        let rows = fig.Dts_experiments.Experiments.rows in
        let n_runs = List.length rows in
        let mean_ipc =
          if n_runs = 0 then 0.
          else
            List.fold_left
              (fun a (r : Dts_experiments.Experiments.run) -> a +. r.ipc)
              0. rows
            /. float_of_int n_runs
        in
        let cycles =
          List.fold_left
            (fun a (r : Dts_experiments.Experiments.run) -> a + r.cycles)
            0 rows
        in
        let attributed =
          List.fold_left
            (fun a (r : Dts_experiments.Experiments.run) ->
              a + Dts_obs.Stats.attributed_total r.stats)
            0 rows
        in
        {
          fr_name = name;
          fr_wall_s = wall;
          fr_instructions = instructions;
          fr_runs = n_runs;
          fr_mean_ipc = mean_ipc;
          fr_cycles = cycles;
          fr_attributed = attributed;
        })
      figure_names
  in
  write_results ~started figures;
  List.iter
    (fun f ->
      Printf.printf "  %-12s %8.2f s  %10d instr  %12.0f instr/s\n" f.fr_name
        f.fr_wall_s f.fr_instructions
        (instr_per_sec f.fr_instructions f.fr_wall_s))
    figures;
  Printf.printf "\nMachine-readable baseline written to %s\n\n" results_path

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel benchmarks                                          *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let small = 15_000 (* instruction budget inside timed benchmarks *)

(* one Test.make per paper artifact: time-to-regenerate at a small budget *)
let bench_figure name
    (f : ?scale:int -> ?budget:int -> unit -> Dts_experiments.Experiments.figure)
    =
  Test.make ~name
    (Staged.stage (fun () ->
         ignore ((f ~scale:1 ~budget:small ()).Dts_experiments.Experiments.render ())))

let figure_tests =
  [
    bench_figure "table3/feasible-machine" Dts_experiments.Experiments.table3;
    bench_figure "fig9/dtsvliw-vs-dif" Dts_experiments.Experiments.fig9;
  ]

(* component microbenchmarks *)

let compress_program =
  lazy
    (Dts_workloads.Workloads.program ~scale:1
       (Dts_workloads.Workloads.find "compress"))

let bench_golden =
  Test.make ~name:"golden/15k-instructions"
    (Staged.stage (fun () ->
         let st = Dts_asm.Program.boot (Lazy.force compress_program) in
         let g = Dts_golden.Golden.of_state st in
         ignore (Dts_golden.Golden.run ~max_instructions:small g)))

let bench_machine =
  Test.make ~name:"dtsvliw-machine/15k-instructions"
    (Staged.stage (fun () ->
         let m =
           Dts_core.Machine.create
             (Dts_core.Config.ideal ())
             (Lazy.force compress_program)
         in
         ignore (Dts_core.Machine.run ~max_instructions:small m)))

let bench_dif =
  Test.make ~name:"dif-machine/15k-instructions"
    (Staged.stage (fun () ->
         let m, _ =
           Dts_dif.Dif.machine
             ~machine_cfg:(Dts_dif.Dif.fig9_machine_cfg ())
             (Lazy.force compress_program)
         in
         ignore (Dts_core.Machine.run ~max_instructions:small m)))

let bench_assembler =
  let src =
    lazy
      (Dts_tinyc.Tinyc.compile_to_assembly
         ((Dts_workloads.Workloads.find "compress").source 1))
  in
  Test.make ~name:"assembler/compress"
    (Staged.stage (fun () ->
         ignore (Dts_asm.Assembler.assemble (Lazy.force src))))

let bench_tinyc =
  Test.make ~name:"tinyc-compile/gcc-analogue"
    (Staged.stage (fun () ->
         ignore
           (Dts_tinyc.Tinyc.compile ((Dts_workloads.Workloads.find "gcc").source 1))))

let bench_cache =
  Test.make ~name:"cache/100k-accesses"
    (Staged.stage (fun () ->
         let c =
           Dts_mem.Cache.create ~size_bytes:(32 * 1024) ~line_bytes:32 ~assoc:4
             ~miss_penalty:8
         in
         let acc = ref 0 in
         for i = 0 to 99_999 do
           acc := !acc + Dts_mem.Cache.access c (i * 52 mod 262144)
         done;
         ignore !acc))

let bench_encode =
  Test.make ~name:"encode-decode/10k-roundtrips"
    (Staged.stage (fun () ->
         let i =
           Dts_isa.Instr.Alu { op = Add; cc = true; rs1 = 9; op2 = Reg 10; rd = 11 }
         in
         for pc = 0 to 9_999 do
           ignore (Dts_isa.Encode.decode ~pc:(pc * 4) (Dts_isa.Encode.encode ~pc:(pc * 4) i))
         done))

let all_tests =
  Test.make_grouped ~name:"dtsvliw"
    (figure_tests
    @ [
        bench_golden;
        bench_machine;
        bench_dif;
        bench_assembler;
        bench_tinyc;
        bench_cache;
        bench_encode;
      ])

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 1.0) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "%-40s  %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 60 '-');
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
        let ns = est in
        let pretty =
          if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
          else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
          else Printf.sprintf "%.0f ns" ns
        in
        Printf.printf "%-40s  %16s\n" name pretty
      | _ -> Printf.printf "%-40s  %16s\n" name "n/a")
    results

let () =
  part1 ();
  print_endline "=== Bechamel component benchmarks ===";
  benchmark ()
