open Dts_experiments

type outcome = { text : string; stats_json : string option; exit_code : int }

(* ------------------------------------------------------------------ *)
(* Workload jobs: the exact text of [dtsvliw_sim]                       *)
(* ------------------------------------------------------------------ *)

let load_program ~scale = function
  | Job.Builtin name ->
    Dts_workloads.Workloads.program ~scale (Dts_workloads.Workloads.find name)
  | Job.File path ->
    let src = In_channel.with_open_text path In_channel.input_all in
    if Filename.check_suffix path ".c" then Dts_tinyc.Tinyc.compile src
    else Dts_asm.Assembler.assemble src

(* Byte-for-byte the report [dtsvliw_sim] has always printed. *)
let stats_text buf (m : Dts_core.Machine.t) instructions =
  let pr fmt = Printf.bprintf buf fmt in
  let s = Dts_core.Machine.stats m in
  pr "instructions (sequential): %d\n" instructions;
  pr "cycles:                    %d\n" s.cycles;
  pr "IPC:                       %.3f\n"
    (float_of_int instructions /. float_of_int (max 1 s.cycles));
  pr "VLIW execution cycles:     %.1f%%\n"
    (100. *. Dts_obs.Stats.vliw_cycle_fraction s);
  pr "slot utilisation:          %.1f%%\n"
    (100. *. Dts_obs.Stats.slot_utilisation s);
  pr "blocks built:              %d\n" s.blocks_flushed;
  pr "engine switches:           %d\n" s.engine_switches;
  pr "renaming registers (max):  %d int, %d fp, %d flag, %d mem\n"
    s.rr_max.(0) s.rr_max.(1) s.rr_max.(2) s.rr_max.(3);
  pr "load/store lists (max):    %d / %d\n" s.max_load_list s.max_store_list;
  pr "checkpoint recovery (max): %d\n" s.max_recovery_list;
  pr "branch mispredictions:     %d\n" s.mispredicts;
  pr "aliasing exceptions:       %d\n" s.aliasing_exceptions;
  pr "block exceptions:          %d\n" s.block_exceptions;
  pr "VLIW cache: %d hits, %d misses, %d insertions, %d evictions\n"
    s.vcache_hits s.vcache_misses s.vcache_insertions s.vcache_evictions;
  if m.cfg.next_li_prediction then
    pr "next-li predictor:         %d hits, %d misses\n" s.nlp_hits
      s.nlp_misses;
  if s.max_data_store_list > 0 then
    pr "data store list (max):     %d\n" s.max_data_store_list;
  pr "cycle attribution:\n";
  List.iter
    (fun cat ->
      let n = Dts_obs.Attribution.sum_of s.attribution [ cat ] in
      if n > 0 then
        pr "  %-28s %9d  (%.1f%%)\n"
          (Dts_obs.Attribution.label cat)
          n
          (100. *. float_of_int n /. float_of_int (max 1 s.cycles)))
    Dts_obs.Attribution.all

let dump_blocks_text (m : Dts_core.Machine.t) n =
  let blocks = ref [] in
  Dts_mem.Blockcache.iter (fun _ b -> blocks := b :: !blocks) m.vcache;
  let blocks =
    List.sort
      (fun a b -> compare a.Dts_sched.Schedtypes.tag_addr b.tag_addr)
      !blocks
  in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "\n%d blocks resident in the VLIW Cache (showing up to %d):\n"
    (List.length blocks) n;
  let fmt = Format.formatter_of_buffer buf in
  List.iteri
    (fun i b ->
      if i < n then Format.fprintf fmt "%a" Dts_sched.Schedtypes.pp_block b)
    blocks;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* --optcheck: re-derive each finished block's constraint model through
   the optimality oracle, check the greedy schedule against the oracle's
   independent invariants, and assert its length is never below the
   certified lower bound. Returns whether every block passed. *)
let optcheck_text buf (cfg : Dts_core.Config.t) blocks =
  let g = Dts_opt.Opt.geometry_of_config cfg in
  let lat = cfg.sched.latencies in
  let violations = ref 0 in
  let certified = ref 0 in
  let fcfs = ref 0 and lower = ref 0 in
  List.iter
    (fun (b : Dts_sched.Schedtypes.block) ->
      (match Dts_opt.Opt.check_block g lat b with
      | Ok () -> ()
      | Error e ->
        incr violations;
        Printf.bprintf buf "optcheck: block %#x fails invariants: %s\n"
          b.tag_addr e);
      let s = Dts_opt.Opt.schedule g (Dts_opt.Opt.model_of_block lat b) in
      fcfs := !fcfs + s.s_fcfs;
      lower := !lower + s.s_lower;
      if s.s_exact then incr certified;
      if s.s_fcfs < s.s_lower then begin
        incr violations;
        Printf.bprintf buf
          "optcheck: block %#x scheduled in %d lis, below the certified \
           lower bound %d\n"
          b.tag_addr s.s_fcfs s.s_lower
      end)
    blocks;
  Printf.bprintf buf
    "optimality check:          %d blocks, %d lis >= %d certified lower (%d \
     exact), %d violations\n"
    (List.length blocks) !fcfs !lower !certified !violations;
  !violations = 0

let run_workload ?tracer ?(optcheck = false) ~budget ~scale ~source
    ~(machine : Machine_opts.t) ~dump_blocks () =
  let program = load_program ~scale source in
  let buf = Buffer.create 2048 in
  let ok = ref true in
  let m =
    if machine.dif then begin
      if optcheck then
        invalid_arg
          "Dts_job.Run: --optcheck applies to DTSVLIW machines only (not \
           --dif)";
      let machine_cfg = Dts_dif.Dif.fig9_machine_cfg () in
      let m, d = Dts_dif.Dif.machine ?tracer ~machine_cfg program in
      let n = Dts_core.Machine.run ~max_instructions:budget m in
      Buffer.add_string buf "[DIF machine]\n";
      stats_text buf m n;
      Printf.bprintf buf "DIF exit points:           %d\n" d.total_exits;
      Printf.bprintf buf "DIF cache bytes built:     %d\n" d.cache_bytes;
      m
    end
    else begin
      let cfg = Machine_opts.to_config machine in
      Printf.bprintf buf "[DTSVLIW: %s]\n" (Dts_core.Config.describe cfg);
      let scheduler, captured =
        if optcheck then begin
          let make, captured = Dts_opt.Opt.capturing_scheduler cfg in
          (Some make, Some captured)
        end
        else (None, None)
      in
      let m =
        Dts_core.Machine.create ~compile:machine.compile
          ~fastpath:machine.fastpath ?scheduler ?tracer cfg program
      in
      let n = Dts_core.Machine.run ~max_instructions:budget m in
      stats_text buf m n;
      (match captured with
      | None -> ()
      | Some captured ->
        if not (optcheck_text buf cfg (List.rev !captured)) then ok := false);
      m
    end
  in
  if dump_blocks > 0 then Buffer.add_string buf (dump_blocks_text m dump_blocks);
  {
    text = Buffer.contents buf;
    stats_json =
      Some (Dts_obs.Stats.to_json_string (Dts_core.Machine.stats m));
    exit_code = (if !ok then 0 else 1);
  }

(* ------------------------------------------------------------------ *)
(* Fuzz jobs: the exact text of [dtsfuzz]                               *)
(* ------------------------------------------------------------------ *)

let geoms_of config =
  match Dts_fuzz.Diff.geoms_of_string config with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Dts_job.Run: unknown config %S" config)

let fuzz_text ~seed ~max_insns ~geoms (summary : Dts_fuzz.Driver.summary) =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.bprintf buf fmt in
  List.iter
    (fun (f : Dts_fuzz.Driver.failure) ->
      pr "FAIL program %d (seed %d): %d divergent engine(s)\n" f.f_index
        f.f_seed (List.length f.f_divs);
      List.iter (fun d -> pr "  %s\n" (Dts_fuzz.Driver.describe_div d)) f.f_divs;
      pr "  shrunk to %d live instructions%s\n" f.f_live
        (match f.f_path with
        | Some p -> Printf.sprintf "; reproducer: %s" p
        | None -> ""))
    summary.s_failures;
  List.iter
    (fun (i, pseed, reason) ->
      pr "SKIP program %d (seed %d): %s\n" i pseed reason)
    summary.s_skips;
  pr
    "fuzz: %d programs (seed %d, max-insns %d, config %s), %d passed, %d \
     skipped, %d divergent, %d instructions compared\n"
    summary.s_count seed max_insns
    (Dts_fuzz.Diff.geoms_to_string geoms)
    summary.s_passed
    (List.length summary.s_skips)
    (List.length summary.s_failures)
    summary.s_instructions;
  Buffer.contents buf

let fuzz_outcome ~seed ~max_insns ~geoms (summary : Dts_fuzz.Driver.summary) =
  {
    text = fuzz_text ~seed ~max_insns ~geoms summary;
    stats_json = None;
    exit_code = (if summary.s_failures = [] then 0 else 1);
  }

(* ------------------------------------------------------------------ *)
(* Sharding                                                             *)
(* ------------------------------------------------------------------ *)

type shard = Whole | Slice of { lo : int; hi : int }

type shard_result =
  | Workload_outcome of outcome
  | Figure_runs of Experiments.run list
  | Fuzz_verdicts of (int * int * Dts_fuzz.Diff.verdict) list

let default_max_shards = 16

let slices ~max_shards n =
  if n = 0 then [ Slice { lo = 0; hi = 0 } ]
  else
    let k = min (max 1 max_shards) n in
    List.init k (fun s -> Slice { lo = s * n / k; hi = (s + 1) * n / k })

let shards ?(max_shards = default_max_shards) (job : Job.t) =
  match job.kind with
  | Job.Workload _ -> [ Whole ]
  | Job.Figure { figure } ->
    slices ~max_shards (List.length (Experiments.plan figure))
  | Job.Fuzz_batch { count; _ } -> slices ~max_shards count

let sub ~lo ~hi xs = List.filteri (fun i _ -> lo <= i && i < hi) xs

let eval_shard ?tracer (job : Job.t) shard =
  match (job.kind, shard) with
  | Job.Workload { source; machine; dump_blocks }, Whole ->
    Workload_outcome
      (run_workload ?tracer ~budget:job.budget ~scale:job.scale ~source
         ~machine ~dump_blocks ())
  | Job.Figure { figure }, Slice { lo; hi } ->
    Figure_runs
      (List.map
         (Experiments.eval_descriptor ~scale:job.scale ~budget:job.budget)
         (sub ~lo ~hi (Experiments.plan figure)))
  | Job.Fuzz_batch { seed; max_insns; config; _ }, Slice { lo; hi } ->
    let geoms = geoms_of config in
    Fuzz_verdicts
      (List.init (hi - lo) (fun j ->
           Dts_fuzz.Driver.item ~geoms ~max_insns ~seed (lo + j)))
  | _ ->
    invalid_arg "Dts_job.Run.eval_shard: shard shape does not match job kind"

let assemble (job : Job.t) results =
  let wrong what =
    invalid_arg
      (Printf.sprintf "Dts_job.Run.assemble: %s job got a foreign shard result"
         what)
  in
  match job.kind with
  | Job.Workload _ -> (
    match results with
    | [ Workload_outcome o ] -> o
    | _ ->
      invalid_arg
        "Dts_job.Run.assemble: a workload job has exactly one whole shard")
  | Job.Figure { figure } ->
    let runs =
      List.concat_map
        (function Figure_runs rs -> rs | _ -> wrong "figure")
        results
    in
    let fig = Experiments.assemble figure runs in
    { text = fig.Experiments.render () ^ "\n"; stats_json = None; exit_code = 0 }
  | Job.Fuzz_batch { seed; count; max_insns; config; shrink; out_dir } ->
    let verdicts =
      List.concat_map
        (function Fuzz_verdicts vs -> vs | _ -> wrong "fuzz")
        results
    in
    let geoms = geoms_of config in
    let summary =
      Dts_fuzz.Driver.summarize ~geoms ~max_insns ~shrink ?out_dir ~count
        verdicts
    in
    fuzz_outcome ~seed ~max_insns ~geoms summary

(* ------------------------------------------------------------------ *)
(* Direct (one-process) evaluation                                      *)
(* ------------------------------------------------------------------ *)

let pool_map pool f xs =
  match pool with
  | None -> List.map f xs
  | Some pool -> Dts_parallel.Pool.map pool f xs

let run ?pool ?tracer ?optcheck (job : Job.t) =
  match job.kind with
  | Job.Figure { figure } ->
    let gen = List.assoc figure Experiments.by_name in
    let fig = gen ?pool ~scale:job.scale ~budget:job.budget () in
    { text = fig.Experiments.render () ^ "\n"; stats_json = None; exit_code = 0 }
  | Job.Fuzz_batch { seed; count; max_insns; config; shrink; out_dir } ->
    let geoms = geoms_of config in
    let verdicts =
      pool_map pool
        (Dts_fuzz.Driver.item ~geoms ~max_insns ~seed)
        (List.init count Fun.id)
    in
    let summary =
      Dts_fuzz.Driver.summarize ~geoms ~max_insns ~shrink ?out_dir ~count
        verdicts
    in
    fuzz_outcome ~seed ~max_insns ~geoms summary
  | Job.Workload { source; machine; dump_blocks } ->
    run_workload ?tracer ?optcheck ~budget:job.budget ~scale:job.scale ~source
      ~machine ~dump_blocks ()
