(** The unified job descriptor: everything the repository can run —
    a paper figure, a fuzz batch, a single-workload simulation — as one
    typed, validated, JSON-serialisable value.

    [dtsvliw_sim], [experiments] and [dtsfuzz] are thin flag→[Job.t]
    adapters over this module, and the [dtsvliw_serve] campaign daemon
    ships the same values to worker processes over its wire protocol, so
    one job means exactly one behaviour everywhere it runs.

    The JSON codec is total and strict: every field is always emitted,
    every field is required on decode (no silent defaulting), and unknown
    kinds or fields are rejected with a message naming the offender.
    [of_json] additionally validates, so a decoded job is always
    runnable. *)

(** Program source of a {!Workload} job. *)
type source =
  | Builtin of string  (** a {!Dts_workloads.Workloads} entry, by name *)
  | File of string  (** a [.s] assembly or [.c] tinyc file *)

type kind =
  | Figure of { figure : string }
      (** regenerate one {!Dts_experiments.Experiments.by_name} entry
          (["all"] included) *)
  | Fuzz_batch of {
      seed : int;
      count : int;
      max_insns : int;
      config : string;  (** geometries: ["all"], ["ideal"] or ["feasible"] *)
      shrink : bool;
      out_dir : string option;  (** reproducer directory; [None] = don't write *)
    }
      (** a differential-fuzzing campaign: programs [Sprng.derive seed i]
          for [i < count] *)
  | Workload of {
      source : source;
      machine : Machine_opts.t;
      dump_blocks : int;  (** print up to N cached blocks after the run *)
    }  (** one simulation, as [dtsvliw_sim] runs it *)

type t = {
  kind : kind;
  budget : int;  (** sequential-instruction budget per simulation *)
  scale : int;  (** workload scale multiplier *)
}

val default_budget : int
(** 500,000 — [dtsvliw_sim]'s default. *)

val default_scale : int

val figure : ?budget:int -> ?scale:int -> string -> t
val fuzz_batch :
  ?max_insns:int ->
  ?config:string ->
  ?shrink:bool ->
  ?out_dir:string ->
  seed:int ->
  count:int ->
  unit ->
  t
val workload :
  ?budget:int ->
  ?scale:int ->
  ?machine:Machine_opts.t ->
  ?dump_blocks:int ->
  source ->
  t

val kind_name : t -> string
(** ["figure"], ["fuzz_batch"] or ["workload"] — the wire kind tag. *)

val equal : t -> t -> bool

val validate : t -> (unit, string) result
(** Every reason a job cannot run, checked up front: non-positive budget/
    scale/count/max_insns/machine dimensions, negative [dump_blocks],
    unknown figure, config or builtin workload name, empty file path.
    (File {e existence} is a run-time property and is not checked here.) *)

val to_json : t -> Dts_obs.Json.t
val of_json : Dts_obs.Json.t -> (t, string) result
(** Strict decode followed by {!validate}. *)

val to_string : t -> string
(** Compact single-line JSON — the wire form. *)

val of_string : string -> (t, string) result
(** {!of_json} of a parsed string; parse errors become [Error]. *)
