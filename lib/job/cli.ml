(** Shared CLI plumbing for the four binaries ([dtsvliw_sim],
    [experiments], [dtsfuzz], [dtsvliw_serve]): the common flags spelled
    once, the common validation, and the common exit-code contract.

    Exit codes (documented in the README):
    - [0] — success;
    - [1] — the task itself failed (a fuzz divergence, a failed replay, a
      job the server reports as failed);
    - [2] — junk flag {e values} (non-positive budget/count, unknown
      config name, ...) rejected by {!check} before any work starts;
    - [124] — cmdliner's own exit for malformed command lines. *)

open Cmdliner

let version = "0.7.0"
(** Reported by every binary's [--version]. *)

let ok = 0
let task_failure = 1
let usage_error = 2

(** Print [msg] on stderr and exit {!usage_error}. *)
let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline msg;
      exit usage_error)
    fmt

(** Exit {!usage_error} on [Error msg] — the flag-validation gate every
    binary runs before doing work. *)
let check = function Ok () -> () | Error msg -> die "%s" msg

let check_positive ~what n =
  if n <= 0 then die "%s must be positive (got %d)" what n

let check_non_negative ~what n =
  if n < 0 then die "%s must be >= 0 (got %d)" what n

(** Parse a [--config] geometry name or exit {!usage_error}. *)
let geoms_of_config config =
  match Dts_fuzz.Diff.geoms_of_string config with
  | Some geoms -> geoms
  | None -> die "unknown --config %s (expected all, ideal or feasible)" config

(** Parse a [--pool-backend] name or exit {!usage_error}. *)
let backend_of_flag name =
  match Dts_parallel.Pool.backend_of_string name with
  | Some b -> b
  | None -> die "unknown --pool-backend %s (expected domains or processes)" name

(** [Cmd.info] with the shared [--version] string attached. *)
let cmd_info ?doc name = Cmd.info ?doc ~version name

(* ---------- the shared flags ---------- *)

let budget_arg ?(default = Job.default_budget) () =
  Arg.(
    value & opt int default
    & info [ "budget" ] ~docv:"N"
        ~doc:"Sequential-instruction budget per simulation run.")

let scale_arg =
  Arg.(
    value & opt int Job.default_scale
    & info [ "scale" ] ~docv:"N"
        ~doc:"Workload scale multiplier (outer iteration counts).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")

let jobs_arg ?(default = 1) ~doc () =
  Arg.(value & opt int default & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let config_arg =
  Arg.(
    value & opt string "all"
    & info [ "config" ] ~docv:"GEOM"
        ~doc:"DTSVLIW geometries to exercise: all, ideal or feasible.")

let backend_arg =
  Arg.(
    value & opt string "domains"
    & info [ "pool-backend" ] ~docv:"BACKEND"
        ~doc:
          "Worker pool backend for --jobs fan-out: domains (in-process) or \
           processes (forked). Output is bit-identical under either.")
