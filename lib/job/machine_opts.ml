(** Serialisable machine options for a single-workload run: exactly the
    knobs [dtsvliw_sim] exposes as flags, as one plain record with a total
    JSON codec. {!to_config} reproduces the CLI's flag→{!Dts_core.Config.t}
    mapping (it moved here from [bin/dtsvliw_sim.ml]), so a [Job.t] carries
    everything needed to rebuild the exact machine in another process. *)

open Dts_obs
open Codec

type t = {
  feasible : bool;  (** start from the §4.4 feasible machine *)
  dif : bool;  (** simulate the DIF baseline instead of DTSVLIW *)
  compile : bool;  (** install-time block compilation (PR 4) *)
  fastpath : bool;  (** packed-op sequential interpreter (PR 6) *)
  width : int option;  (** instructions per long instruction *)
  height : int option;  (** long instructions per block *)
  vcache_kb : int option;
  vcache_assoc : int option;
  renaming : bool;  (** instruction splitting (false = --no-renaming) *)
  store_list : bool;  (** §3.11 data-store-list exception scheme *)
  predict_next : bool;  (** §5 next-long-instruction prediction *)
  multicycle : bool;  (** ld 2, mul 3, div 8, fp 3 latencies *)
}

let default =
  {
    feasible = false;
    dif = false;
    compile = true;
    fastpath = true;
    width = None;
    height = None;
    vcache_kb = None;
    vcache_assoc = None;
    renaming = true;
    store_list = false;
    predict_next = false;
    multicycle = false;
  }

let equal (a : t) (b : t) = a = b

let validate t =
  let positive what = function
    | Some n when n <= 0 ->
      Error (Printf.sprintf "machine option %s must be positive (got %d)" what n)
    | _ -> Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = positive "width" t.width in
  let* () = positive "height" t.height in
  let* () = positive "vcache_kb" t.vcache_kb in
  let* () = positive "vcache_assoc" t.vcache_assoc in
  Ok ()

(** The DTSVLIW configuration these options denote (ignored when [dif] is
    set — the DIF baseline fixes its own machine, see {!Run}). *)
let to_config t =
  let base =
    if t.feasible then Dts_core.Config.feasible ()
    else Dts_core.Config.ideal ?width:t.width ?height:t.height ()
  in
  let base =
    match (t.vcache_kb, t.vcache_assoc) with
    | None, None -> base
    | kb, assoc ->
      {
        base with
        vliw_cache =
          {
            kb = Option.value kb ~default:base.vliw_cache.kb;
            assoc = Option.value assoc ~default:base.vliw_cache.assoc;
          };
      }
  in
  let base =
    if not t.renaming then
      { base with sched = { base.sched with renaming = false } }
    else base
  in
  let base =
    if t.store_list then
      { base with store_scheme = Dts_vliw.Engine.Data_store_list }
    else base
  in
  let base = { base with next_li_prediction = t.predict_next } in
  if t.multicycle then
    {
      base with
      sched = { base.sched with latencies = Dts_isa.Instr.multicycle_latencies };
      primary_timing =
        {
          base.primary_timing with
          latencies = Dts_isa.Instr.multicycle_latencies;
        };
    }
  else base

let to_json t =
  Json.Obj
    [
      ("feasible", Json.Bool t.feasible);
      ("dif", Json.Bool t.dif);
      ("compile", Json.Bool t.compile);
      ("fastpath", Json.Bool t.fastpath);
      ("width", int_opt_json t.width);
      ("height", int_opt_json t.height);
      ("vcache_kb", int_opt_json t.vcache_kb);
      ("vcache_assoc", int_opt_json t.vcache_assoc);
      ("renaming", Json.Bool t.renaming);
      ("store_list", Json.Bool t.store_list);
      ("predict_next", Json.Bool t.predict_next);
      ("multicycle", Json.Bool t.multicycle);
    ]

let of_json j =
  let* f = start ~ctx:"machine options" j in
  let* feasible = bool_field f "feasible" in
  let* dif = bool_field f "dif" in
  let* compile = bool_field f "compile" in
  let* fastpath = bool_field f "fastpath" in
  let* width = int_opt_field f "width" in
  let* height = int_opt_field f "height" in
  let* vcache_kb = int_opt_field f "vcache_kb" in
  let* vcache_assoc = int_opt_field f "vcache_assoc" in
  let* renaming = bool_field f "renaming" in
  let* store_list = bool_field f "store_list" in
  let* predict_next = bool_field f "predict_next" in
  let* multicycle = bool_field f "multicycle" in
  finish f
    {
      feasible;
      dif;
      compile;
      fastpath;
      width;
      height;
      vcache_kb;
      vcache_assoc;
      renaming;
      store_list;
      predict_next;
      multicycle;
    }
