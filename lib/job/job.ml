open Dts_obs
open Codec

type source = Builtin of string | File of string

type kind =
  | Figure of { figure : string }
  | Fuzz_batch of {
      seed : int;
      count : int;
      max_insns : int;
      config : string;
      shrink : bool;
      out_dir : string option;
    }
  | Workload of {
      source : source;
      machine : Machine_opts.t;
      dump_blocks : int;
    }

type t = { kind : kind; budget : int; scale : int }

let default_budget = 500_000
let default_scale = 1

let figure ?(budget = default_budget) ?(scale = default_scale) name =
  { kind = Figure { figure = name }; budget; scale }

let fuzz_batch ?(max_insns = Dts_fuzz.Gen.default_max_insns)
    ?(config = "all") ?(shrink = true) ?out_dir ~seed ~count () =
  {
    kind = Fuzz_batch { seed; count; max_insns; config; shrink; out_dir };
    budget = default_budget;
    scale = default_scale;
  }

let workload ?(budget = default_budget) ?(scale = default_scale)
    ?(machine = Machine_opts.default) ?(dump_blocks = 0) source =
  { kind = Workload { source; machine; dump_blocks }; budget; scale }

let kind_name t =
  match t.kind with
  | Figure _ -> "figure"
  | Fuzz_batch _ -> "fuzz_batch"
  | Workload _ -> "workload"

let equal (a : t) (b : t) = a = b

let figure_names = List.map fst Dts_experiments.Experiments.by_name

let workload_names =
  List.map
    (fun (w : Dts_workloads.Workloads.t) -> w.name)
    Dts_workloads.Workloads.all

let validate t =
  let ( let* ) = Result.bind in
  let positive what n =
    if n > 0 then Ok ()
    else Error (Printf.sprintf "%s must be positive (got %d)" what n)
  in
  let* () = positive "budget" t.budget in
  let* () = positive "scale" t.scale in
  match t.kind with
  | Figure { figure } ->
    if List.mem figure figure_names then Ok ()
    else
      Error
        (Printf.sprintf "unknown figure %S (expected one of %s)" figure
           (String.concat ", " figure_names))
  | Fuzz_batch { seed = _; count; max_insns; config; shrink = _; out_dir = _ }
    -> (
    let* () = positive "count" count in
    let* () = positive "max_insns" max_insns in
    match Dts_fuzz.Diff.geoms_of_string config with
    | Some _ -> Ok ()
    | None ->
      Error
        (Printf.sprintf "unknown config %S (expected all, ideal or feasible)"
           config))
  | Workload { source; machine; dump_blocks } -> (
    let* () =
      if dump_blocks >= 0 then Ok ()
      else Error (Printf.sprintf "dump_blocks must be >= 0 (got %d)" dump_blocks)
    in
    let* () = Machine_opts.validate machine in
    match source with
    | Builtin name ->
      if List.mem name workload_names then Ok ()
      else
        Error
          (Printf.sprintf "unknown workload %S (expected one of %s)" name
             (String.concat ", " workload_names))
    | File "" -> Error "workload file path must not be empty"
    | File _ -> Ok ())

(* ---------- JSON ---------- *)

let source_to_json = function
  | Builtin name -> Json.Obj [ ("builtin", Json.String name) ]
  | File path -> Json.Obj [ ("file", Json.String path) ]

let source_of_json j =
  let* f = start ~ctx:"job source" j in
  match f.remaining with
  | [ ("builtin", _) ] ->
    let* name = string_field f "builtin" in
    finish f (Builtin name)
  | [ ("file", _) ] ->
    let* path = string_field f "file" in
    finish f (File path)
  | _ ->
    Error
      "job source: expected exactly one of field \"builtin\" or field \"file\""

let to_json t =
  let common = [ ("budget", Json.Int t.budget); ("scale", Json.Int t.scale) ] in
  match t.kind with
  | Figure { figure } ->
    Json.Obj
      ([ ("kind", Json.String "figure"); ("figure", Json.String figure) ]
      @ common)
  | Fuzz_batch { seed; count; max_insns; config; shrink; out_dir } ->
    Json.Obj
      ([
         ("kind", Json.String "fuzz_batch");
         ("seed", Json.Int seed);
         ("count", Json.Int count);
         ("max_insns", Json.Int max_insns);
         ("config", Json.String config);
         ("shrink", Json.Bool shrink);
         ("out_dir", string_opt_json out_dir);
       ]
      @ common)
  | Workload { source; machine; dump_blocks } ->
    Json.Obj
      ([
         ("kind", Json.String "workload");
         ("source", source_to_json source);
         ("machine", Machine_opts.to_json machine);
         ("dump_blocks", Json.Int dump_blocks);
       ]
      @ common)

let of_json j =
  let* f = start ~ctx:"job" j in
  let* kind_tag = string_field f "kind" in
  let* kind =
    match kind_tag with
    | "figure" ->
      let* figure = string_field f "figure" in
      Ok (Figure { figure })
    | "fuzz_batch" ->
      let* seed = int_field f "seed" in
      let* count = int_field f "count" in
      let* max_insns = int_field f "max_insns" in
      let* config = string_field f "config" in
      let* shrink = bool_field f "shrink" in
      let* out_dir = string_opt_field f "out_dir" in
      Ok (Fuzz_batch { seed; count; max_insns; config; shrink; out_dir })
    | "workload" ->
      let* src = obj_field f "source" in
      let* source = source_of_json src in
      let* m = obj_field f "machine" in
      let* machine = Machine_opts.of_json m in
      let* dump_blocks = int_field f "dump_blocks" in
      Ok (Workload { source; machine; dump_blocks })
    | other ->
      error "job" "unknown kind %S (expected figure, fuzz_batch or workload)"
        other
  in
  let* budget = int_field f "budget" in
  let* scale = int_field f "scale" in
  let* t = finish f { kind; budget; scale } in
  match validate t with Ok () -> Ok t | Error e -> Error ("job: " ^ e)

let to_string t = Json.to_string (to_json t)

let of_string s =
  match Json.of_string s with
  | j -> of_json j
  | exception Json.Parse_error msg -> Error ("job: invalid JSON: " ^ msg)
