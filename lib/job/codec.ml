(** Strict JSON record decoding on top of {!Dts_obs.Json}.

    Every decoder in the Job API is *total and strict*: a record must be a
    JSON object, every expected field must be present with the expected
    type (absent fields are never silently defaulted), and any field the
    decoder did not consume is an error naming the offender. Encoders
    always emit every field, so [decode (encode v) = Ok v] and unknown or
    misspelled input is rejected with a descriptive message rather than
    half-understood. *)

open Dts_obs

type fields = {
  ctx : string;  (** what is being decoded, for error messages *)
  mutable remaining : (string * Json.t) list;
}

let ( let* ) r f = Result.bind r f

let error ctx fmt = Printf.ksprintf (fun s -> Error (ctx ^ ": " ^ s)) fmt

let start ~ctx = function
  | Json.Obj kvs ->
    let dup =
      List.find_opt
        (fun (k, _) -> List.length (List.filter (fun (k', _) -> k' = k) kvs) > 1)
        kvs
    in
    (match dup with
    | Some (k, _) -> error ctx "duplicate field %S" k
    | None -> Ok { ctx; remaining = kvs })
  | j -> error ctx "expected an object, got %s" (Json.to_string j)

(** Consume field [key]; an error if absent. *)
let take f key =
  match List.assoc_opt key f.remaining with
  | Some v ->
    f.remaining <- List.filter (fun (k, _) -> k <> key) f.remaining;
    Ok v
  | None -> error f.ctx "missing field %S" key

(** After all [take]s: any field left over is unknown input. *)
let finish f v =
  match f.remaining with
  | [] -> Ok v
  | (k, _) :: _ -> error f.ctx "unknown field %S" k

let int_field f key =
  let* v = take f key in
  match Json.to_int v with
  | Some n -> Ok n
  | None -> error f.ctx "field %S must be an integer" key

let bool_field f key =
  let* v = take f key in
  match v with
  | Json.Bool b -> Ok b
  | _ -> error f.ctx "field %S must be a boolean" key

let string_field f key =
  let* v = take f key in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> error f.ctx "field %S must be a string" key

(** [null] or an integer. *)
let int_opt_field f key =
  let* v = take f key in
  match v with
  | Json.Null -> Ok None
  | _ -> (
    match Json.to_int v with
    | Some n -> Ok (Some n)
    | None -> error f.ctx "field %S must be an integer or null" key)

(** [null] or a string. *)
let string_opt_field f key =
  let* v = take f key in
  match v with
  | Json.Null -> Ok None
  | Json.String s -> Ok (Some s)
  | _ -> error f.ctx "field %S must be a string or null" key

let obj_field f key =
  let* v = take f key in
  match v with
  | Json.Obj _ -> Ok v
  | _ -> error f.ctx "field %S must be an object" key

let int_opt_json = function None -> Json.Null | Some n -> Json.Int n
let string_opt_json = function None -> Json.Null | Some s -> Json.String s
