(** Evaluating a {!Job.t} — the single execution path behind every CLI and
    the campaign daemon.

    Two routes produce an {!outcome}, and they are byte-identical by
    construction and by test:

    - {!run}: evaluate the job in this process (optionally over a
      {!Dts_parallel.Pool}), exactly as the one-shot CLIs always have.
    - {!shards} → {!eval_shard} (in any processes, in any interleaving) →
      {!assemble}: the distributed route the [dtsvliw_serve] daemon uses.
      Shard results are plain data, safe to [Marshal] between processes;
      reassembly is by index, so the outcome does not depend on how many
      workers evaluated the shards or in what order they finished.

    [outcome.text] is the verbatim stdout of the corresponding CLI
    ([dtsvliw_sim] for workload jobs, [experiments] for figure jobs,
    [dtsfuzz] for fuzz jobs) — the CLIs print it unmodified, which is what
    makes "server output = CLI output" a byte equality rather than an
    approximation. *)

type outcome = {
  text : string;  (** the CLI's exact stdout for this job *)
  stats_json : string option;
      (** workload jobs: the consolidated {!Dts_obs.Stats} document
          ([--stats-json] payload) *)
  exit_code : int;  (** 0, or 1 for a fuzz batch with divergences *)
}

val run :
  ?pool:Dts_parallel.Pool.t ->
  ?tracer:Dts_obs.Trace.t ->
  ?optcheck:bool ->
  Job.t ->
  outcome
(** Evaluate the job here. [pool] fans out a figure's simulations or a fuzz
    batch's programs (submission-order reassembly keeps the outcome
    bit-identical for any pool size); [tracer] applies to workload jobs.

    [optcheck] (workload jobs on DTSVLIW machines only, default off):
    capture every block the Scheduler Unit finishes, re-derive its
    constraint model through the {!Dts_opt.Opt} oracle, check it against
    the oracle's independent legality invariants, and assert the greedy
    schedule's length is never below the certified optimal lower bound.
    Appends a summary line to [text]; violations are reported and make
    [exit_code] 1. Like [tracer], this is a CLI-side option — it is not
    part of {!Job.t} and does not flow through the sharded route.
    @raise Invalid_argument on budget/scale violations (callers validate
    first), on [optcheck] with a [--dif] machine, [Sys_error] on an
    unreadable workload file. *)

(** {2 Sharded evaluation} *)

type shard =
  | Whole  (** the only shard of a workload job *)
  | Slice of { lo : int; hi : int }
      (** indices [lo, hi) of a figure's {!Dts_experiments.Experiments.plan}
          or of a fuzz batch's program indices *)

(** What a worker sends back: plain marshalable data, never rendered
    text (except for workload jobs, whose single shard is the run). *)
type shard_result =
  | Workload_outcome of outcome
  | Figure_runs of Dts_experiments.Experiments.run list
  | Fuzz_verdicts of (int * int * Dts_fuzz.Diff.verdict) list
      (** (program index, derived seed, verdict) in index order *)

val default_max_shards : int
(** 16 — fixed, so a job's shard list (and therefore its reassembled
    outcome) is independent of the daemon's worker count. *)

val shards : ?max_shards:int -> Job.t -> shard list
(** The job's complete shard list: [\[Whole\]] for workloads, contiguous
    near-equal slices otherwise (a zero-length plan still yields one empty
    slice so the job flows through the same machinery). *)

val eval_shard : ?tracer:Dts_obs.Trace.t -> Job.t -> shard -> shard_result
(** Evaluate one shard. Pure in (job, shard) for figure and fuzz shards —
    the property worker retries rely on. *)

val assemble : Job.t -> shard_result list -> outcome
(** Rebuild the outcome from shard results listed in {!shards} order.
    [assemble job (List.map (eval_shard job) (shards job)) = run job]
    byte-for-byte — enforced by test. Fuzz reproducer files are written
    here (shrinking included), not in workers.
    @raise Invalid_argument on a shard-shape mismatch. *)
