(** Address-bucketed memory-aliasing log (§3.10).

    The VLIW Engine logs every load and store executed by the current block
    together with its order field, long-instruction index and cross bit, and
    must detect order violations between any overlapping pair. The original
    implementation kept one list of events and scanned all of it on every
    memory operation — O(block memory ops) per access, quadratic per block,
    and measurably hot on wide geometries (a 384-wide block can log hundreds
    of events).

    This module keeps the same events hashed by 16-byte line address: an
    event covering bytes [addr, addr+size) is filed under every line it
    touches, and a new event is checked only against the events sharing one
    of its lines — any overlapping pair shares at least one byte, hence at
    least one line, so no violation can be missed. Running counters of
    cross-bit loads and stores replace the list re-traversals that used to
    maintain Table 3's load/store list sizes. Each memory operation is
    amortized O(1) for the sparse logs real blocks produce.

    Events are stored packed into single OCaml ints inside growable
    per-bucket int arrays, and buckets are recycled across {!clear}s, so
    the sequential fast path logs a memory operation without allocating:
    the only allocations are the one-time bucket creation the first time a
    line is ever touched and the rare capacity doublings.

    The violation predicate is byte-for-byte the §3.10 order rule of the
    original list implementation; [test/test_aliaslog.ml] keeps the old
    list-scan code as an oracle and property-checks the equivalence. *)

exception Alias_violation

(** Mutation-sanity fault injection (test-only). When set, {!add} files
    store events without checking them against the logged loads and stores
    — the classic lost-aliasing-check bug: a store scheduled below a load
    it should have invalidated commits silently instead of raising
    {!Alias_violation}, and the block's reordered memory state survives.
    The fuzz suite flips this to prove the differential oracle catches a
    seeded scheduler-correctness bug ([test/test_fuzz.ml]); it must never
    be set outside tests. *)
let fault_skip_store_check = ref false

type event = {
  ev_addr : int;
  ev_size : int;
  ev_order : int;  (** load/store program order within the block *)
  ev_li : int;  (** long-instruction index executing the access *)
  ev_is_store : bool;
  ev_cross : bool;  (** cross bit: shares a long instruction with a store *)
}

(* Packed event layout (63-bit OCaml int):
     bits  0..31  addr   (32 bits, full uint32 address space)
     bits 32..34  size   (3 bits; accesses are 1/2/4 bytes)
     bits 35..49  order  (15 bits; bounded by block width * height)
     bits 50..60  li     (11 bits; bounded by block height)
     bit  61      is_store
     bit  62      cross  (the sign bit — extracted with lsr, never asr)
   [pack] range-checks order/li/size so an out-of-range field faults
   loudly instead of aliasing into a neighbour. *)
let pack ~addr ~size ~order ~li ~is_store ~cross =
  if size < 0 || size > 7 || order < 0 || order > 0x7FFF || li < 0 || li > 0x7FF
  then invalid_arg "Aliaslog: event field out of packing range";
  addr land 0xFFFFFFFF
  lor (size lsl 32)
  lor (order lsl 35)
  lor (li lsl 50)
  lor ((if is_store then 1 else 0) lsl 61)
  lor ((if cross then 1 else 0) lsl 62)

let[@inline] p_addr e = e land 0xFFFFFFFF
let[@inline] p_size e = (e lsr 32) land 0x7
let[@inline] p_order e = (e lsr 35) land 0x7FFF
let[@inline] p_li e = (e lsr 50) land 0x7FF
let[@inline] p_is_store e = (e lsr 61) land 1 = 1

(* 16-byte buckets: accesses are at most 4 bytes, so an event spans at most
   two lines and bucket scans stay short even for dense address use. *)
let line_bits = 4

type bucket = { mutable evs : int array; mutable n : int }

(* The line -> bucket map is an open-addressed table with linear probing
   (parallel [keys]/[slots] arrays, key 0 = empty, stored key = line + 1):
   a lookup is a multiply, a mask and usually one array probe, with none of
   the per-call hashing and bucket-list chasing of a [Hashtbl] — this map
   is consulted up to four times per memory operation executed by the
   engine. Buckets are recycled forever; the table only grows. *)
type t = {
  mutable keys : int array;
  mutable slots : bucket array;
  mutable mask : int;  (** capacity - 1; capacity is a power of two *)
  mutable n_used : int;  (** occupied slots, for the load-factor check *)
  mutable touched : bucket array;
      (** buckets filed into since the last clear *)
  mutable n_touched : int;
  mutable n_events : int;
  mutable cross_loads : int;  (** current cross-bit load count (load list) *)
  mutable cross_stores : int;  (** current cross-bit store count (store list) *)
}

let dummy_bucket = { evs = [||]; n = 0 }
let[@inline] slot_of mask line = (line * 0x61C88647) land mask

(* First slot from [i] whose key is [line + 1] or empty. *)
let rec probe_from keys mask line i =
  let k = Array.unsafe_get keys i in
  if k = 0 || k = line + 1 then i
  else probe_from keys mask line ((i + 1) land mask)

let[@inline] find_slot t line =
  probe_from t.keys t.mask line (slot_of t.mask line)

let create () =
  {
    keys = Array.make 256 0;
    slots = Array.make 256 dummy_bucket;
    mask = 255;
    n_used = 0;
    touched = Array.make 64 dummy_bucket;
    n_touched = 0;
    n_events = 0;
    cross_loads = 0;
    cross_stores = 0;
  }

(* Buckets are emptied but never dropped: resetting only the buckets
   touched since the last clear keeps [clear] proportional to the block's
   own footprint, not to every line the program ever accessed. *)
let clear t =
  for i = 0 to t.n_touched - 1 do
    (Array.unsafe_get t.touched i).n <- 0
  done;
  t.n_touched <- 0;
  t.n_events <- 0;
  t.cross_loads <- 0;
  t.cross_stores <- 0

let length t = t.n_events
let cross_loads t = t.cross_loads
let cross_stores t = t.cross_stores

(* §3.10 order rule, made precise with execution positions: a load reads at
   the start of its long instruction, a store commits at the end of its; an
   (older, by order field) store must have committed strictly before a
   younger load reads, and store/store pairs must commit in order. *)
let violates ~is_store ~order ~li_idx (e : event) =
  e.ev_order <> order
  &&
  if is_store then
    if e.ev_is_store then
      (order < e.ev_order && li_idx >= e.ev_li)
      || (order > e.ev_order && li_idx <= e.ev_li)
    else
      (* store S vs load L: S before L (order) requires commit li < read li *)
      (order < e.ev_order && li_idx >= e.ev_li)
      || (order > e.ev_order && li_idx < e.ev_li)
  else
    e.ev_is_store
    && ((e.ev_order < order && e.ev_li >= li_idx)
       || (e.ev_order > order && e.ev_li < li_idx))

(* The same predicate on a packed event, with the overlap test fused in. *)
let[@inline] packed_violates ~addr ~size ~is_store ~order ~li_idx e =
  let ea = p_addr e in
  addr < ea + p_size e
  && ea < addr + size
  &&
  let eo = p_order e in
  eo <> order
  &&
  let el = p_li e in
  if is_store then
    if p_is_store e then
      (order < eo && li_idx >= el) || (order > eo && li_idx <= el)
    else (order < eo && li_idx >= el) || (order > eo && li_idx < el)
  else
    p_is_store e
    && ((eo < order && el >= li_idx) || (eo > order && el < li_idx))

let rec check_bucket b ~addr ~size ~is_store ~order ~li_idx i =
  if i < b.n then begin
    if
      packed_violates ~addr ~size ~is_store ~order ~li_idx
        (Array.unsafe_get b.evs i)
    then raise Alias_violation;
    check_bucket b ~addr ~size ~is_store ~order ~li_idx (i + 1)
  end

(* Double the table, re-probing every occupied slot into the new arrays. *)
let grow t =
  let keys = t.keys and slots = t.slots in
  let cap = 2 * (t.mask + 1) in
  let mask = cap - 1 in
  let keys' = Array.make cap 0 and slots' = Array.make cap dummy_bucket in
  for i = 0 to Array.length keys - 1 do
    let k = keys.(i) in
    if k <> 0 then begin
      let j = probe_from keys' mask (k - 1) (slot_of mask (k - 1)) in
      keys'.(j) <- k;
      slots'.(j) <- slots.(i)
    end
  done;
  t.keys <- keys';
  t.slots <- slots';
  t.mask <- mask

let file t line packed =
  let i = find_slot t line in
  let b =
    if Array.unsafe_get t.keys i <> 0 then Array.unsafe_get t.slots i
    else begin
      let b = { evs = Array.make 8 0; n = 0 } in
      t.keys.(i) <- line + 1;
      t.slots.(i) <- b;
      t.n_used <- t.n_used + 1;
      (* keep the load factor at most 1/2 *)
      if 2 * t.n_used > t.mask then grow t;
      b
    end
  in
  if b.n = Array.length b.evs then begin
    let evs = Array.make (2 * b.n) 0 in
    Array.blit b.evs 0 evs 0 b.n;
    b.evs <- evs
  end;
  (* first event in this bucket since the clear: remember the bucket *)
  if b.n = 0 then begin
    if t.n_touched = Array.length t.touched then begin
      let touched = Array.make (2 * t.n_touched) dummy_bucket in
      Array.blit t.touched 0 touched 0 t.n_touched;
      t.touched <- touched
    end;
    t.touched.(t.n_touched) <- b;
    t.n_touched <- t.n_touched + 1
  end;
  b.evs.(b.n) <- packed;
  b.n <- b.n + 1

(** Check the event against every overlapping logged event, then log it —
    the allocation-free entry point used by the engine's sequential path.
    @raise Alias_violation on an order violation; the event is not logged
    and the counters are untouched, exactly as the list implementation left
    its log when raising mid-scan. *)
let log t ~addr ~size ~order ~li ~is_store ~cross =
  let lo = addr lsr line_bits in
  let hi = (addr + size - 1) lsr line_bits in
  if not (is_store && !fault_skip_store_check) then
    for line = lo to hi do
      let i = find_slot t line in
      if Array.unsafe_get t.keys i <> 0 then
        check_bucket (Array.unsafe_get t.slots i) ~addr ~size ~is_store ~order
          ~li_idx:li 0
    done;
  let packed = pack ~addr ~size ~order ~li ~is_store ~cross in
  for line = lo to hi do
    file t line packed
  done;
  t.n_events <- t.n_events + 1;
  if cross then
    if is_store then t.cross_stores <- t.cross_stores + 1
    else t.cross_loads <- t.cross_loads + 1

(** Record-taking wrapper around {!log}. *)
let add t (ev : event) =
  log t ~addr:ev.ev_addr ~size:ev.ev_size ~order:ev.ev_order ~li:ev.ev_li
    ~is_store:ev.ev_is_store ~cross:ev.ev_cross
