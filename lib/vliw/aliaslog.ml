(** Address-bucketed memory-aliasing log (§3.10).

    The VLIW Engine logs every load and store executed by the current block
    together with its order field, long-instruction index and cross bit, and
    must detect order violations between any overlapping pair. The original
    implementation kept one list of events and scanned all of it on every
    memory operation — O(block memory ops) per access, quadratic per block,
    and measurably hot on wide geometries (a 384-wide block can log hundreds
    of events).

    This module keeps the same events hashed by 16-byte line address: an
    event covering bytes [addr, addr+size) is filed under every line it
    touches, and a new event is checked only against the events sharing one
    of its lines — any overlapping pair shares at least one byte, hence at
    least one line, so no violation can be missed. Running counters of
    cross-bit loads and stores replace the list re-traversals that used to
    maintain Table 3's load/store list sizes. Each memory operation is
    amortized O(1) for the sparse logs real blocks produce.

    The violation predicate is byte-for-byte the §3.10 order rule of the
    original list implementation; [test/test_aliaslog.ml] keeps the old
    list-scan code as an oracle and property-checks the equivalence. *)

exception Alias_violation

(** Mutation-sanity fault injection (test-only). When set, {!add} files
    store events without checking them against the logged loads and stores
    — the classic lost-aliasing-check bug: a store scheduled below a load
    it should have invalidated commits silently instead of raising
    {!Alias_violation}, and the block's reordered memory state survives.
    The fuzz suite flips this to prove the differential oracle catches a
    seeded scheduler-correctness bug ([test/test_fuzz.ml]); it must never
    be set outside tests. *)
let fault_skip_store_check = ref false

type event = {
  ev_addr : int;
  ev_size : int;
  ev_order : int;  (** load/store program order within the block *)
  ev_li : int;  (** long-instruction index executing the access *)
  ev_is_store : bool;
  ev_cross : bool;  (** cross bit: shares a long instruction with a store *)
}

(* 16-byte buckets: accesses are at most 4 bytes, so an event spans at most
   two lines and bucket scans stay short even for dense address use. *)
let line_bits = 4

type t = {
  buckets : (int, event list ref) Hashtbl.t;
  mutable n_events : int;
  mutable cross_loads : int;  (** current cross-bit load count (load list) *)
  mutable cross_stores : int;  (** current cross-bit store count (store list) *)
}

let create () =
  { buckets = Hashtbl.create 64; n_events = 0; cross_loads = 0; cross_stores = 0 }

let clear t =
  if t.n_events > 0 then Hashtbl.clear t.buckets;
  t.n_events <- 0;
  t.cross_loads <- 0;
  t.cross_stores <- 0

let length t = t.n_events
let cross_loads t = t.cross_loads
let cross_stores t = t.cross_stores

(* §3.10 order rule, made precise with execution positions: a load reads at
   the start of its long instruction, a store commits at the end of its; an
   (older, by order field) store must have committed strictly before a
   younger load reads, and store/store pairs must commit in order. *)
let violates ~is_store ~order ~li_idx (e : event) =
  e.ev_order <> order
  &&
  if is_store then
    if e.ev_is_store then
      (order < e.ev_order && li_idx >= e.ev_li)
      || (order > e.ev_order && li_idx <= e.ev_li)
    else
      (* store S vs load L: S before L (order) requires commit li < read li *)
      (order < e.ev_order && li_idx >= e.ev_li)
      || (order > e.ev_order && li_idx < e.ev_li)
  else
    e.ev_is_store
    && ((e.ev_order < order && e.ev_li >= li_idx)
       || (e.ev_order > order && e.ev_li < li_idx))

(** Check [ev] against every overlapping logged event, then log it.
    @raise Alias_violation on an order violation; the event is not logged
    and the counters are untouched, exactly as the list implementation left
    its log when raising mid-scan. *)
let add t (ev : event) =
  let lo = ev.ev_addr lsr line_bits in
  let hi = (ev.ev_addr + ev.ev_size - 1) lsr line_bits in
  if not (ev.ev_is_store && !fault_skip_store_check) then
    for line = lo to hi do
      match Hashtbl.find_opt t.buckets line with
      | None -> ()
      | Some events ->
        List.iter
          (fun e ->
            if
              ev.ev_addr < e.ev_addr + e.ev_size
              && e.ev_addr < ev.ev_addr + ev.ev_size
              && violates ~is_store:ev.ev_is_store ~order:ev.ev_order
                   ~li_idx:ev.ev_li e
            then raise Alias_violation)
          !events
    done;
  for line = lo to hi do
    match Hashtbl.find_opt t.buckets line with
    | Some events -> events := ev :: !events
    | None -> Hashtbl.add t.buckets line (ref [ ev ])
  done;
  t.n_events <- t.n_events + 1;
  if ev.ev_cross then
    if ev.ev_is_store then t.cross_stores <- t.cross_stores + 1
    else t.cross_loads <- t.cross_loads + 1
