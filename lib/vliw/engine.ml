(** The VLIW Engine (§3.5, §3.8–3.11).

    Executes blocks of long instructions fetched from the VLIW Cache, one
    long instruction per cycle. All operations of a long instruction read
    the architectural state as it was at the start of the cycle; writes are
    buffered and applied at the end. Renamed operations write renaming
    registers; copy instructions deliver renaming registers to their
    architectural targets when their branch tag proves valid.

    Conditional and indirect branches are re-evaluated and compared against
    the direction recorded during scheduling; the tag system (§3.8) decides
    which operations of the long instruction commit. Memory aliasing is
    detected with order fields (§3.10), and exceptions use block-granularity
    checkpointing (§3.11).

    Two execution paths share the same per-block state and semantics:

    - the {e plan executor} ({!enter_plan}) runs a block pre-compiled by
      {!Plan} — per-op association lists are already resolved to arrays and
      the per-cycle working set (renaming-register arena, buffered
      write/store vectors, checkpoint shadow, recovery log, data store
      list) lives in preallocated, growable scratch storage reused across
      blocks, so steady-state execution allocates nothing;
    - the {e interpreter} ({!enter_block}) walks the block's scheduling
      structures directly. It is the reference the differential tests
      compare the plan executor against, and the [?compile:false] escape
      hatch of {!Dts_core.Machine.create}. *)

open Dts_sched.Schedtypes


type rr_entry = {
  mutable v : int;
  mutable m_addr : int;  (** memory renaming registers: buffered store *)
  mutable m_size : int;
  mutable exn : Dts_isa.Semantics.trap option;
}

type exn_kind = E_aliasing | E_trap of Dts_isa.Semantics.trap

(** How stores and exception recovery work (§3.11): the paper's implemented
    scheme checkpoints overwritten data, or the alternative it describes but
    did not build — stores buffer in a data store list and drain to memory
    in order when the block commits. *)
type store_scheme = Checkpoint_recovery | Data_store_list

type li_result =
  | R_next
  | R_block_end of { next_addr : int }
  | R_redirect of { target : int }  (** mispredicted branch, actual target *)
  | R_exn of exn_kind

type mem_event = Aliaslog.event = {
  ev_addr : int;
  ev_size : int;
  ev_order : int;
  ev_li : int;
  ev_is_store : bool;
  ev_cross : bool;
}

(** The §3.11 checkpoint scalars. Register-file recovery is handled by the
    undo log ([undo_idx]/[undo_val] on the engine): the writeback loop
    records each overwritten register value, so taking a checkpoint costs
    nothing and recovery replays the (short) log backwards instead of
    restoring a full register-file snapshot. *)
type shadow = {
  mutable sh_icc : int;
  mutable sh_cwp : int;
  mutable sh_wdepth : int;
  mutable sh_wspill_sp : int;
  mutable sh_pc : int;
}

type stats = {
  mutable max_data_store_list : int;
  mutable max_load_list : int;
  mutable max_store_list : int;
  mutable max_recovery_list : int;
  mutable aliasing_exceptions : int;
  mutable deferred_exceptions : int;
  mutable block_exceptions : int;
  mutable mispredicts : int;
  mutable lis_executed : int;
  mutable ops_committed : int;
  mutable copies_committed : int;
  mutable wdelta_variants : int;
      (** shifted (wdelta <> 0) plan variants compiled (§3.9 replay) *)
}

type t = {
  st : Dts_isa.State.t;
  dcache : Dts_mem.Cache.t;
  scheme : store_scheme;
  mutable rr : rr_entry array array;
      (** per {!rr_kind} arena, grown to the high-water [rr_counts] of the
          blocks seen and reset in place at block entry *)
  shadow : shadow;
  mutable shadow_valid : bool;
  (* register undo log: (index, overwritten value) pairs in write order,
     where index is a physical integer register or [n_iregs + f] for fp
     register [f]; replayed newest-first by {!rollback} *)
  mutable undo_idx : int array;
  mutable undo_val : int array;
  mutable undo_n : int;
  (* checkpoint recovery store list (addr, size, old value) as parallel
     growable arrays; undone newest-first on rollback *)
  mutable rec_addr : int array;
  mutable rec_size : int array;
  mutable rec_old : int array;
  mutable n_recovery : int;
  mutable dsl_mem : Dts_mem.Memory.t;  (** data-store-list byte buffer *)
  (* buffered store ranges (addr, size, order) as parallel arrays *)
  mutable dsl_addr : int array;
  mutable dsl_size : int array;
  mutable dsl_order : int array;
  mutable dsl_n : int;
  dsl_bytes : (int, unit) Hashtbl.t;
      (** byte addresses covered by the data store list — loads probe this
          instead of scanning every buffered range per byte *)
  mem_log : Aliaslog.t;  (** per-block aliasing log (§3.10), bucketed *)
  mutable wdelta : int;
      (** window-relative replay: runtime entry cwp minus build-time entry
          cwp (mod nwindows), applied to every baked cwp and physical
          register position *)
  (* ---- plan-execution scratch, reused across cycles and blocks ---- *)
  mutable plan_on : bool;
      (** set while replaying a compiled plan ([plan_v]); clear interprets *)
  mutable plan_v : Plan.variant;
  mutable bufs : Dts_isa.Semantics.outcome_buf array;
      (** phase-1 results, indexed like the current pli's op array *)
  (* buffered register/flag/window writes as unboxed parallel arrays:
     kind ({!wk_phys}…), first payload (position / cwp), second payload
     (value / window depth) — no [write] constructor is boxed per cycle *)
  mutable bw_kind : int array;
  mutable bw_a : int array;
  mutable bw_b : int array;
  mutable bw_n : int;
  mutable bs_addr : int array;  (** buffered stores *)
  mutable bs_size : int array;
  mutable bs_val : int array;
  mutable bs_order : int array;
  mutable bs_n : int;
  (* the substitution view of the op currently in phase 1; plan_ov's
     closures read this field, so one override record serves every op —
     and publishing a whole context is a single (write-barriered) store *)
  mutable cur_subs : Plan.subs;
  mutable plan_ov : Dts_isa.Semantics.read_ov_fast option;
      (** the one override record the plan executor passes to
          {!Dts_isa.Semantics.exec_into_ov}; its closures read the
          [cur_subs] field above *)
  mutable pen : int;
      (** data-cache penalty cycles of the last {!exec_li_fast} *)
  stats : stats;
  tracer : Dts_obs.Trace.t;
      (** event sink for rollback/aliasing observability; the machine
          stamps its cycle on it each step *)
}

let fresh_rr () = { v = 0; m_addr = 0; m_size = 0; exn = None }
let rr_of t (r : rref) = t.rr.(rr_kind_index r.kind).(r.ridx)

(* First match in [pos_arr] (list order = [List.assoc] order), or -1.
   Top-level recursion: a local [go] would be a fresh closure per call. *)
let rec probe_idx_from pos_arr p i n =
  if i >= n then -1
  else if Array.unsafe_get pos_arr i = p then i
  else probe_idx_from pos_arr p (i + 1) n

let[@inline] probe_idx pos_arr p = probe_idx_from pos_arr p 0 (Array.length pos_arr)

(* buffered-write kinds (see the [bw_*] parallel arrays) *)
let wk_phys = 0
let wk_freg = 1
let wk_icc = 2
let wk_win = 3

(* data-store-list scheme: loads read the list and the data cache
   simultaneously, preferring the last data stored on a hit (§3.11).
   Answers {!Dts_isa.Semantics.no_val} when the list holds no byte of the
   range — the caller falls through to architectural memory. *)
let dsl_read_fast t ~addr ~size ~signed =
  if t.dsl_n = 0 then Dts_isa.Semantics.no_val
  else begin
    let any = ref false in
    for b = addr to addr + size - 1 do
      if Hashtbl.mem t.dsl_bytes b then any := true
    done;
    if not !any then Dts_isa.Semantics.no_val
    else begin
      let v = ref 0 in
      for b = addr to addr + size - 1 do
        let byte =
          if Hashtbl.mem t.dsl_bytes b then Dts_mem.Memory.read_u8 t.dsl_mem b
          else Dts_mem.Memory.read_u8 t.st.mem b
        in
        v := (!v lsl 8) lor byte
      done;
      let raw = !v in
      if signed then
        (raw lsl (Sys.int_size - (size * 8))) asr (Sys.int_size - (size * 8))
      else raw
    end
  end

let dsl_read t ~addr ~size ~signed =
  let v = dsl_read_fast t ~addr ~size ~signed in
  if v = Dts_isa.Semantics.no_val then None else Some v

let create ?(scheme = Checkpoint_recovery) ?(tracer = Dts_obs.Trace.null)
    ~dcache st =
  let t =
    {
      st;
      dcache;
      scheme;
      rr = Array.make 4 [||];
      shadow =
        { sh_icc = 0; sh_cwp = 0; sh_wdepth = 0; sh_wspill_sp = 0; sh_pc = 0 };
      shadow_valid = false;
      undo_idx = Array.make 256 0;
      undo_val = Array.make 256 0;
      undo_n = 0;
      rec_addr = [||];
      rec_size = [||];
      rec_old = [||];
      n_recovery = 0;
      dsl_mem = Dts_mem.Memory.create ();
      dsl_addr = [||];
      dsl_size = [||];
      dsl_order = [||];
      dsl_n = 0;
      dsl_bytes = Hashtbl.create 64;
      mem_log = Aliaslog.create ();
      wdelta = 0;
      plan_on = false;
      plan_v = { Plan.v_wdelta = 0; v_lis = [||] };
      bufs = [||];
      bw_kind = [||];
      bw_a = [||];
      bw_b = [||];
      bw_n = 0;
      bs_addr = [||];
      bs_size = [||];
      bs_val = [||];
      bs_order = [||];
      bs_n = 0;
      cur_subs = Plan.no_subs;
      plan_ov = None;
      pen = 0;
      tracer;
      stats =
        {
          max_data_store_list = 0;
          max_load_list = 0;
          max_store_list = 0;
          max_recovery_list = 0;
          aliasing_exceptions = 0;
          deferred_exceptions = 0;
          block_exceptions = 0;
          mispredicts = 0;
          lis_executed = 0;
          ops_committed = 0;
          copies_committed = 0;
          wdelta_variants = 0;
        };
    }
  in
  t.plan_ov <-
    Some
      {
        ovf_phys =
          (fun p ->
            let s = t.cur_subs in
            let j = probe_idx_from s.Plan.sp_pos p 0 (Array.length s.Plan.sp_pos) in
            if j < 0 then Dts_isa.Semantics.no_val
            else (rr_of t s.Plan.sp_rr.(j)).v);
        ovf_freg =
          (fun f ->
            let s = t.cur_subs in
            let j = probe_idx_from s.Plan.sf_pos f 0 (Array.length s.Plan.sf_pos) in
            if j < 0 then Dts_isa.Semantics.no_val
            else (rr_of t s.Plan.sf_rr.(j)).v);
        ovf_icc =
          (fun () ->
            match t.cur_subs.Plan.s_icc with
            | Some rr -> (rr_of t rr).v
            | None -> Dts_isa.Semantics.no_val);
        ovf_mem = (fun ~addr ~size ~signed -> dsl_read_fast t ~addr ~size ~signed);
      };
  t

(* ------------------------------------------------------------------ *)
(* Growable scratch vectors                                             *)
(* ------------------------------------------------------------------ *)

let grown a n = Array.append a (Array.make (max 16 (max n (Array.length a))) 0)

let push_bw t kind a bv =
  if t.bw_n >= Array.length t.bw_kind then begin
    t.bw_kind <- grown t.bw_kind 1;
    t.bw_a <- grown t.bw_a 1;
    t.bw_b <- grown t.bw_b 1
  end;
  t.bw_kind.(t.bw_n) <- kind;
  t.bw_a.(t.bw_n) <- a;
  t.bw_b.(t.bw_n) <- bv;
  t.bw_n <- t.bw_n + 1

(* interpreter-side shim: decompose a boxed {!Dts_isa.Semantics.write} *)
let push_write t (w : Dts_isa.Semantics.write) =
  match w with
  | W_phys (p, v) -> push_bw t wk_phys p v
  | W_freg (f, v) -> push_bw t wk_freg f v
  | W_icc v -> push_bw t wk_icc 0 v
  | W_win (cwp, depth) -> push_bw t wk_win cwp depth

let push_bs t addr size v order =
  if t.bs_n >= Array.length t.bs_addr then begin
    t.bs_addr <- grown t.bs_addr 1;
    t.bs_size <- grown t.bs_size 1;
    t.bs_val <- grown t.bs_val 1;
    t.bs_order <- grown t.bs_order 1
  end;
  t.bs_addr.(t.bs_n) <- addr;
  t.bs_size.(t.bs_n) <- size;
  t.bs_val.(t.bs_n) <- v;
  t.bs_order.(t.bs_n) <- order;
  t.bs_n <- t.bs_n + 1

let push_recovery t addr size old =
  if t.n_recovery >= Array.length t.rec_addr then begin
    t.rec_addr <- grown t.rec_addr 1;
    t.rec_size <- grown t.rec_size 1;
    t.rec_old <- grown t.rec_old 1
  end;
  t.rec_addr.(t.n_recovery) <- addr;
  t.rec_size.(t.n_recovery) <- size;
  t.rec_old.(t.n_recovery) <- old;
  t.n_recovery <- t.n_recovery + 1

let push_dsl t addr size order =
  if t.dsl_n >= Array.length t.dsl_addr then begin
    t.dsl_addr <- grown t.dsl_addr 1;
    t.dsl_size <- grown t.dsl_size 1;
    t.dsl_order <- grown t.dsl_order 1
  end;
  t.dsl_addr.(t.dsl_n) <- addr;
  t.dsl_size.(t.dsl_n) <- size;
  t.dsl_order.(t.dsl_n) <- order;
  t.dsl_n <- t.dsl_n + 1;
  for b = addr to addr + size - 1 do
    Hashtbl.replace t.dsl_bytes b ()
  done

(* The data-store-list buffer is recycled, not reallocated: zero exactly
   the (addr, size) entries recorded this block — typically a few words —
   so the reset cost tracks the block's store count, not the buffer's page
   footprint. *)
let clear_dsl t =
  if t.dsl_n > 0 then begin
    for i = 0 to t.dsl_n - 1 do
      Dts_mem.Memory.write t.dsl_mem ~addr:t.dsl_addr.(i) ~size:t.dsl_size.(i)
        0
    done;
    Hashtbl.reset t.dsl_bytes;
    t.dsl_n <- 0
  end

(* ------------------------------------------------------------------ *)
(* Block entry                                                          *)
(* ------------------------------------------------------------------ *)

(** Checkpoint (§3.11): record the scalar state in the preallocated shadow,
    reset the register undo log, and reset the per-block structures. The
    renaming-register arena is grown to the block's [rr_counts] high-water
    mark once and reset in place afterwards. Called at the start of every
    block's execution. *)
let reset_for_block t (block : block) =
  let st = t.st in
  let sh = t.shadow in
  t.undo_n <- 0;
  sh.sh_icc <- st.icc;
  sh.sh_cwp <- st.cwp;
  sh.sh_wdepth <- st.wdepth;
  sh.sh_wspill_sp <- st.wspill_sp;
  sh.sh_pc <- st.pc;
  t.shadow_valid <- true;
  t.n_recovery <- 0;
  clear_dsl t;
  Aliaslog.clear t.mem_log;
  t.wdelta <- (st.cwp - block.entry_cwp + st.nwindows) mod st.nwindows;
  for k = 0 to 3 do
    let need = block.rr_counts.(k) in
    let arr = t.rr.(k) in
    if Array.length arr < need then
      t.rr.(k) <-
        Array.init (max need (2 * Array.length arr)) (fun _ -> fresh_rr ())
    else
      for i = 0 to need - 1 do
        let e = Array.unsafe_get arr i in
        e.v <- 0;
        e.m_addr <- 0;
        e.m_size <- 0;
        e.exn <- None
      done
  done

(** Enter [block] in interpreter mode. *)
let enter_block t (block : block) =
  reset_for_block t block;
  t.plan_on <- false

(** Enter the block compiled into [plan], selecting (or lazily building)
    the variant for the current window delta. *)
let enter_plan t (plan : Plan.t) =
  let block = plan.Plan.p_block in
  reset_for_block t block;
  (* wdelta = 0 is the overwhelmingly common entry and allocates nothing;
     shifted variants go through the tupled lookup *)
  (if t.wdelta = 0 then t.plan_v <- plan.Plan.p_base
   else begin
     let v, fresh =
       Plan.variant ~nwindows:t.st.nwindows plan ~wdelta:t.wdelta
     in
     if fresh then t.stats.wdelta_variants <- t.stats.wdelta_variants + 1;
     t.plan_v <- v
   end);
  t.plan_on <- true;
  if Array.length t.bufs < block.max_li_ops then
    t.bufs <-
      Array.init
        (max block.max_li_ops (2 * Array.length t.bufs))
        (fun _ -> Dts_isa.Semantics.make_buf ())

(** Roll back to the checkpoint: restore registers and undo every store of
    the block in reverse order, each with its recorded size (§3.11). *)
let rollback t =
  if Dts_obs.Trace.enabled t.tracer then
    Dts_obs.Trace.emit t.tracer
      (Checkpoint_recovery { undone = t.n_recovery + t.dsl_n });
  if not t.shadow_valid then invalid_arg "Engine.rollback without checkpoint";
  let st = t.st in
  let sh = t.shadow in
  let ni = Array.length st.iregs in
  for i = t.undo_n - 1 downto 0 do
    let idx = Array.unsafe_get t.undo_idx i
    and v = Array.unsafe_get t.undo_val i in
    if idx < ni then Dts_isa.State.set_phys st idx v
    else Dts_isa.State.set_freg st (idx - ni) v
  done;
  t.undo_n <- 0;
  st.icc <- sh.sh_icc;
  st.cwp <- sh.sh_cwp;
  st.wdepth <- sh.sh_wdepth;
  st.wspill_sp <- sh.sh_wspill_sp;
  st.pc <- sh.sh_pc;
  for i = t.n_recovery - 1 downto 0 do
    Dts_mem.Memory.write st.mem ~addr:t.rec_addr.(i) ~size:t.rec_size.(i)
      t.rec_old.(i)
  done;
  t.n_recovery <- 0;
  (* in the data-store-list scheme, memory was never touched: "data
     generated in the block where the exception is detected is annulled" *)
  clear_dsl t;
  Aliaslog.clear t.mem_log;
  t.stats.block_exceptions <- t.stats.block_exceptions + 1

(* window-relative replay: shift a baked window pointer / physical integer
   register position by the block-entry window delta *)
let shift_cwp t cwp = (cwp + t.wdelta) mod t.st.nwindows

let shift_pos t (pos : Dts_isa.Storage.t) : Dts_isa.Storage.t =
  Plan.shift_pos ~nwindows:t.st.nwindows ~wdelta:t.wdelta pos

exception Alias_violation = Aliaslog.Alias_violation
exception Block_trap of Dts_isa.Semantics.trap

(* The §3.10 order rule lives in {!Aliaslog.log}; the engine only tracks
   the Table 3 high-water marks from the log's running list counters. *)
let log_mem t ~addr ~size ~order ~li ~is_store ~cross =
  Aliaslog.log t.mem_log ~addr ~size ~order ~li ~is_store ~cross;
  if cross then
    if is_store then
      t.stats.max_store_list <-
        max t.stats.max_store_list (Aliaslog.cross_stores t.mem_log)
    else
      t.stats.max_load_list <-
        max t.stats.max_load_list (Aliaslog.cross_loads t.mem_log)

let storage_of_write : Dts_isa.Semantics.write -> Dts_isa.Storage.t = function
  | W_phys (p, _) -> Int_reg p
  | W_freg (f, _) -> Fp_reg f
  | W_icc _ -> Flags
  | W_win _ -> Win

(* Record the value about to be overwritten at register-undo index [idx]
   ([n_iregs + f] for an freg), growing the log on demand (rare: its
   high-water mark is the register-write count of the widest block). *)
let push_undo t idx old =
  let n = t.undo_n in
  if n = Array.length t.undo_idx then begin
    let cap = 2 * n in
    let ui = Array.make cap 0 and uv = Array.make cap 0 in
    Array.blit t.undo_idx 0 ui 0 n;
    Array.blit t.undo_val 0 uv 0 n;
    t.undo_idx <- ui;
    t.undo_val <- uv
  end;
  Array.unsafe_set t.undo_idx n idx;
  Array.unsafe_set t.undo_val n old;
  t.undo_n <- n + 1

(* phase 4, shared by both executors: apply buffered register writes in
   push order, then route buffered stores through the active store scheme *)
let apply_buffered t =
  let st = t.st in
  for i = 0 to t.bw_n - 1 do
    let a = Array.unsafe_get t.bw_a i and b = Array.unsafe_get t.bw_b i in
    match Array.unsafe_get t.bw_kind i with
    | 0 (* wk_phys *) ->
      if a <> 0 then begin
        push_undo t a (Array.unsafe_get st.iregs a);
        Dts_isa.State.set_phys st a b
      end
    | 1 (* wk_freg *) ->
      push_undo t (Array.length st.iregs + a) (Array.unsafe_get st.fregs a);
      Dts_isa.State.set_freg st a b
    | 2 (* wk_icc *) -> st.icc <- b
    | _ (* wk_win *) ->
      st.cwp <- a;
      st.wdepth <- b
  done;
  t.bw_n <- 0;
  for i = 0 to t.bs_n - 1 do
    let addr = t.bs_addr.(i) and size = t.bs_size.(i) and v = t.bs_val.(i) in
    match t.scheme with
    | Checkpoint_recovery ->
      (* save the overwritten data in the checkpoint recovery store list,
         then write through (§3.11) *)
      let old = Dts_mem.Memory.read st.mem ~addr ~size ~signed:true in
      push_recovery t addr size old;
      t.stats.max_recovery_list <-
        max t.stats.max_recovery_list t.n_recovery;
      Dts_mem.Memory.write st.mem ~addr ~size v
    | Data_store_list ->
      (* buffer in the data store list; memory is untouched until the
         block commits *)
      Dts_mem.Memory.write t.dsl_mem ~addr ~size v;
      push_dsl t addr size t.bs_order.(i);
      t.stats.max_data_store_list <-
        max t.stats.max_data_store_list t.dsl_n
  done;
  t.bs_n <- 0

let log_load t (s : sop) idx a sz =
  log_mem t ~addr:a ~size:sz ~order:s.order ~li:idx ~is_store:false
    ~cross:s.cross

let log_store t ~order ~cross idx a sz =
  log_mem t ~addr:a ~size:sz ~order ~li:idx ~is_store:true ~cross

(* ------------------------------------------------------------------ *)
(* Plan executor                                                        *)
(* ------------------------------------------------------------------ *)

(* Evaluate one planned op into its outcome buffer. Top-level, not a local
   helper of [exec_li_plan]: without flambda a local function capturing the
   loop state is a closure allocated on every long instruction. *)
let eval_op t st bufs dsl_empty (o : Plan.xop) i =
  if o.Plan.x_ovfree || (dsl_empty && o.Plan.subs == Plan.no_subs) then
    Dts_isa.Semantics.exec_into_ov st None ~cwp:o.Plan.x_cwp
      ~pc:o.Plan.op.addr o.Plan.x_uop (Array.unsafe_get bufs i)
  else begin
    t.cur_subs <- o.Plan.subs;
    Dts_isa.Semantics.exec_into_ov st t.plan_ov ~cwp:o.Plan.x_cwp
      ~pc:o.Plan.op.addr o.Plan.x_uop (Array.unsafe_get bufs i)
  end

let exec_li_plan t (block : block) (v : Plan.variant) idx :
    li_result =
  let st = t.st in
  let pli = v.Plan.v_lis.(idx) in
  let ops = pli.Plan.p_ops in
  let tags = pli.Plan.p_tags in
  let n = Array.length ops in
  let bufs = t.bufs in
  (* Every op of the li reads pre-li state, so execution order within the
     li is free. Phases 1 and 2 exploit that: the conditional-control ops
     (the precomputed [p_cond] indices) execute {e first} and resolve the
     earliest mispredicted branch; the remaining ops then execute only if
     they commit (tag at most the failing branch's) — squashed ops are
     never evaluated at all. Ops with no substituted source also skip the
     override closures entirely: a non-memory op reads architectural state
     only, and a memory read needs the overrides only while the data store
     list holds buffered bytes. *)
  let dsl_empty = t.dsl_n = 0 in
  (* phases 1+2 over the conditional ops: execute and find the first
     (lowest-tag) mispredicted branch; ops with tag greater than its tag
     do not commit *)
  let fail_tag = ref max_int in
  let fail_target = ref 0 in
  let cond = pli.Plan.p_cond in
  for k = 0 to Array.length cond - 1 do
    let i = Array.unsafe_get cond k in
    match Array.unsafe_get ops i with
    | Plan.P_op o ->
      eval_op t st bufs dsl_empty o i;
      let b = bufs.(i) in
      if b.Dts_isa.Semantics.b_next_pc <> o.op.obs_next_pc && tags.(i) < !fail_tag
      then begin
        fail_tag := tags.(i);
        fail_target := b.b_next_pc
      end
    | Plan.P_copy _ -> ()
  done;
  let ft = !fail_tag in
  (* phase 1 over everything else, committing ops only *)
  for i = 0 to n - 1 do
    if Array.unsafe_get tags i <= ft then
      match Array.unsafe_get ops i with
      | Plan.P_op o -> if not o.is_cond then eval_op t st bufs dsl_empty o i
      | Plan.P_copy _ -> ()
  done;
  (* phase 3: gather effects of valid ops. Effects are pushed in the exact
     order {!Dts_isa.Semantics.exec}'s [writes] list applies them (icc
     before the destination register for flag-setting ALU ops, destination
     register before the window movement for save/restore), so the buffered
     sequence is identical to the interpreter's. *)
  t.bw_n <- 0;
  t.bs_n <- 0;
  try
    for i = 0 to n - 1 do
      if tags.(i) <= ft then
        match Array.unsafe_get ops i with
        | Plan.P_op o ->
          let b = bufs.(i) in
          if b.Dts_isa.Semantics.b_trap <> 0 then begin
            (* deferred iff every architectural output is renamed *)
            if o.deferrable then begin
              let tr = Dts_isa.Semantics.trap_of_buf b in
              for k = 0 to Array.length o.red_all - 1 do
                (rr_of t o.red_all.(k)).exn <- Some tr
              done;
              t.stats.deferred_exceptions <- t.stats.deferred_exceptions + 1
            end
            else raise (Block_trap (Dts_isa.Semantics.trap_of_buf b))
          end
          else begin
            t.stats.ops_committed <- t.stats.ops_committed + 1;
            (if b.b_icc >= 0 then
               match o.red_icc with
               | Some rr ->
                 let e = rr_of t rr in
                 e.v <- b.b_icc;
                 e.exn <- None
               | None -> push_bw t wk_icc 0 b.b_icc);
            (if b.b_w0 >= 0 then
               let j = probe_idx o.red_phys_pos b.b_w0 in
               if j >= 0 then begin
                 let e = rr_of t o.red_phys_rr.(j) in
                 e.v <- b.b_w0v;
                 e.exn <- None
               end
               else push_bw t wk_phys b.b_w0 b.b_w0v);
            (if b.b_fw >= 0 then
               let j = probe_idx o.red_freg_pos b.b_fw in
               if j >= 0 then begin
                 let e = rr_of t o.red_freg_rr.(j) in
                 e.v <- b.b_fwv;
                 e.exn <- None
               end
               else push_bw t wk_freg b.b_fw b.b_fwv);
            (if b.b_win then
               if o.red_win then invalid_arg "renamed window write"
               else push_bw t wk_win b.b_cwp b.b_wdepth);
            (if b.b_load_size <> 0 then begin
               t.pen <- t.pen + Dts_mem.Cache.access t.dcache b.b_load_addr;
               log_load t o.op idx b.b_load_addr b.b_load_size
             end);
            if b.b_store_size <> 0 then begin
              (* a renamed store redirects its (single) memory output *)
              match o.red_mem with
              | Some rr ->
                let e = rr_of t rr in
                e.m_addr <- b.b_store_addr;
                e.m_size <- b.b_store_size;
                e.v <- b.b_store_val;
                e.exn <- None
              | None ->
                t.pen <- t.pen + Dts_mem.Cache.access t.dcache b.b_store_addr;
                log_store t ~order:o.op.order ~cross:o.op.cross idx
                  b.b_store_addr b.b_store_size;
                push_bs t b.b_store_addr b.b_store_size b.b_store_val
                  o.op.order
            end
          end
        | Plan.P_copy c ->
          t.stats.copies_committed <- t.stats.copies_committed + 1;
          let moves = c.moves in
          for k = 0 to Array.length moves - 1 do
            let m = Array.unsafe_get moves k in
            let src = rr_of t m.Plan.pm_src in
            match m.Plan.pm_tgt with
            | Plan.PT_ren dst_ref ->
              let dst = rr_of t dst_ref in
              dst.v <- src.v;
              dst.m_addr <- src.m_addr;
              dst.m_size <- src.m_size;
              dst.exn <- src.exn
            | _ -> (
              match src.exn with
              | Some tr -> raise (Block_trap tr)
              | None -> (
                match m.Plan.pm_tgt with
                | Plan.PT_ren _ -> assert false
                | Plan.PT_phys p -> push_bw t wk_phys p src.v
                | Plan.PT_freg f -> push_bw t wk_freg f src.v
                | Plan.PT_flags -> push_bw t wk_icc 0 src.v
                | Plan.PT_mem ->
                  t.pen <- t.pen + Dts_mem.Cache.access t.dcache src.m_addr;
                  log_store t ~order:c.c_order ~cross:true idx src.m_addr
                    src.m_size;
                  push_bs t src.m_addr src.m_size src.v c.c_order))
          done
    done;
    (* phase 4: apply buffered effects (reads already done) *)
    apply_buffered t;
    if ft < max_int then begin
      t.stats.mispredicts <- t.stats.mispredicts + 1;
      R_redirect { target = !fail_target }
    end
    else if idx = block.nba_idx then
      R_block_end { next_addr = block.nba_addr }
    else R_next
  with
  | Alias_violation ->
    t.stats.aliasing_exceptions <- t.stats.aliasing_exceptions + 1;
    if Dts_obs.Trace.enabled t.tracer then
      Dts_obs.Trace.emit t.tracer
        (Aliasing_violation { tag = block.tag_addr; li = idx });
    rollback t;
    R_exn E_aliasing
  | Block_trap tr ->
    rollback t;
    R_exn (E_trap tr)

(* ------------------------------------------------------------------ *)
(* Interpreter                                                          *)
(* ------------------------------------------------------------------ *)

let exec_li_interp t (block : block) idx : li_result =
  let st = t.st in
  let li = block.lis.(idx) in
  (* phase 1: compute outcomes for every op, reading pre-li state *)
  let entries =
    li_fold
      (fun acc _k op tag ->
        match op with
        | Op s ->
          (* forwarded sources read their renaming register (§3.2); the
             positions semantics asks about are window-shifted, so shift the
             baked substitution keys the same way *)
          let subs =
            if t.wdelta = 0 then s.subs
            else List.map (fun (p, rr) -> (shift_pos t p, rr)) s.subs
          in
          let lookup pos =
            match List.assoc_opt pos subs with
            | Some rr -> Some (rr_of t rr).v
            | None -> None
          in
          let ov =
            {
              Dts_isa.Semantics.ov_phys =
                (fun p -> lookup (Dts_isa.Storage.Int_reg p));
              ov_freg = (fun f -> lookup (Dts_isa.Storage.Fp_reg f));
              ov_icc = (fun () -> lookup Dts_isa.Storage.Flags);
              ov_mem = (fun ~addr ~size ~signed -> dsl_read t ~addr ~size ~signed);
            }
          in
          let out =
            Dts_isa.Semantics.exec ~ov st ~cwp:(shift_cwp t s.cwp) ~pc:s.addr
              s.instr
          in
          (op, tag, Some (s, out)) :: acc
        | Copy _ -> (op, tag, None) :: acc)
      [] li
    |> List.rev
  in
  (* phase 2: find the first mispredicted branch; ops with tag greater than
     its tag do not commit *)
  let fail : (int * int) option ref = ref None in
  (* (tag, actual target) *)
  List.iter
    (fun (_, tag, info) ->
      match info with
      | Some (s, out) when Dts_isa.Instr.is_conditional_ctrl s.instr ->
        if out.Dts_isa.Semantics.next_pc <> s.obs_next_pc then (
          match !fail with
          | Some (ft, _) when ft <= tag -> ()
          | _ -> fail := Some (tag, out.next_pc))
      | _ -> ())
    entries;
  let valid tag = match !fail with None -> true | Some (ft, _) -> tag <= ft in
  (* phase 3: gather effects of valid ops *)
  t.bw_n <- 0;
  t.bs_n <- 0;
  try
    List.iter
      (fun (op, tag, info) ->
        if valid tag then
          match (op, info) with
          | Op s, Some (_, out) -> (
            match out.Dts_isa.Semantics.trap with
            | Some tr ->
              (* deferred iff every architectural output is renamed *)
              if
                s.redirect <> []
                && List.for_all
                     (fun w -> List.mem_assoc w s.redirect)
                     s.arch_writes
              then begin
                List.iter
                  (fun (_, rr) -> (rr_of t rr).exn <- Some tr)
                  s.redirect;
                t.stats.deferred_exceptions <- t.stats.deferred_exceptions + 1
              end
              else raise (Block_trap tr)
            | None ->
              t.stats.ops_committed <- t.stats.ops_committed + 1;
              let redirect =
                if t.wdelta = 0 then s.redirect
                else List.map (fun (p, rr) -> (shift_pos t p, rr)) s.redirect
              in
              List.iter
                (fun w ->
                  let pos = storage_of_write w in
                  match List.assoc_opt pos redirect with
                  | Some rr ->
                    let e = rr_of t rr in
                    (match w with
                    | W_phys (_, v) | W_freg (_, v) | W_icc v -> e.v <- v
                    | W_win _ -> invalid_arg "renamed window write");
                    e.exn <- None
                  | None -> push_write t w)
                out.writes;
              (match out.load with
              | Some (a, sz) ->
                t.pen <- t.pen + Dts_mem.Cache.access t.dcache a;
                log_load t s idx a sz
              | None -> ());
              (match out.store with
              | Some (a, sz, v) -> (
                (* a renamed store redirects its (single) memory output *)
                match s.redirect with
                | (Mem _, rr) :: _ ->
                  let e = rr_of t rr in
                  e.m_addr <- a;
                  e.m_size <- sz;
                  e.v <- v;
                  e.exn <- None
                | _ ->
                  t.pen <- t.pen + Dts_mem.Cache.access t.dcache a;
                  log_store t ~order:s.order ~cross:s.cross idx a sz;
                  push_bs t a sz v s.order)
              | None -> ()))
          | Copy c, _ ->
            t.stats.copies_committed <- t.stats.copies_committed + 1;
            List.iter
              (fun (rr, target) ->
                let src = rr_of t rr in
                match target with
                | T_ren dst_ref ->
                  let dst = rr_of t dst_ref in
                  dst.v <- src.v;
                  dst.m_addr <- src.m_addr;
                  dst.m_size <- src.m_size;
                  dst.exn <- src.exn
                | T_arch pos -> (
                  match src.exn with
                  | Some tr -> raise (Block_trap tr)
                  | None -> (
                    match shift_pos t pos with
                    | Int_reg p -> push_bw t wk_phys p src.v
                    | Fp_reg f -> push_bw t wk_freg f src.v
                    | Flags -> push_bw t wk_icc 0 src.v
                    | Win -> invalid_arg "renamed window copy"
                    | Ren _ -> invalid_arg "T_arch to a renaming register"
                    | Mem _ ->
                      t.pen <- t.pen + Dts_mem.Cache.access t.dcache src.m_addr;
                      log_store t ~order:c.c_order ~cross:true idx src.m_addr
                        src.m_size;
                      push_bs t src.m_addr src.m_size src.v c.c_order)))
              c.c_moves
          | Op _, None -> assert false)
      entries;
    (* phase 4: apply buffered effects (reads already done) *)
    apply_buffered t;
    match !fail with
    | Some (_, target) ->
      t.stats.mispredicts <- t.stats.mispredicts + 1;
      R_redirect { target }
    | None ->
      if idx = block.nba_idx then R_block_end { next_addr = block.nba_addr }
      else R_next
  with
  | Alias_violation ->
    t.stats.aliasing_exceptions <- t.stats.aliasing_exceptions + 1;
    if Dts_obs.Trace.enabled t.tracer then
      Dts_obs.Trace.emit t.tracer
        (Aliasing_violation { tag = block.tag_addr; li = idx });
    rollback t;
    R_exn E_aliasing
  | Block_trap tr ->
    rollback t;
    R_exn (E_trap tr)

(** Execute long instruction [idx] of [block]; the data-cache penalty
    cycles incurred are left in [t.pen]. On [R_exn] the rollback has
    already been performed. Dispatches to the plan executor when the block
    was entered through {!enter_plan}, else interprets. Allocation-free for
    [R_next] steps — the machine's hot loop reads [t.pen] instead of a
    result tuple. *)
let exec_li_fast t (block : block) idx : li_result =
  t.stats.lis_executed <- t.stats.lis_executed + 1;
  t.pen <- 0;
  if t.plan_on then exec_li_plan t block t.plan_v idx
  else exec_li_interp t block idx

(** Tupled wrapper around {!exec_li_fast}: the control outcome plus the
    penalty cycles. *)
let exec_li t (block : block) idx : li_result * int =
  let r = exec_li_fast t block idx in
  (r, t.pen)

(** Clean block exit. In the checkpoint scheme the recovery data is simply
    dropped; in the data-store-list scheme the buffered stores drain to
    memory in order (the order fields make in-order memory update possible,
    §3.11), each range written whole. Returns the data-cache penalty cycles
    of the drain. *)
let commit_block t =
  t.shadow_valid <- false;
  t.undo_n <- 0;
  t.n_recovery <- 0;
  Aliaslog.clear t.mem_log;
  if t.dsl_n = 0 then 0
  else begin
    let penalty = ref 0 in
    let idxs = Array.init t.dsl_n (fun i -> i) in
    Array.sort (fun i j -> compare t.dsl_order.(i) t.dsl_order.(j)) idxs;
    Array.iter
      (fun i ->
        let addr = t.dsl_addr.(i) and size = t.dsl_size.(i) in
        penalty := !penalty + Dts_mem.Cache.access t.dcache addr;
        Dts_mem.Memory.write t.st.mem ~addr ~size
          (Dts_mem.Memory.read t.dsl_mem ~addr ~size ~signed:false))
      idxs;
    clear_dsl t;
    !penalty
  end
