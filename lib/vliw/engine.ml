(** The VLIW Engine (§3.5, §3.8–3.11).

    Executes blocks of long instructions fetched from the VLIW Cache, one
    long instruction per cycle. All operations of a long instruction read
    the architectural state as it was at the start of the cycle; writes are
    buffered and applied at the end. Renamed operations write renaming
    registers; copy instructions deliver renaming registers to their
    architectural targets when their branch tag proves valid.

    Conditional and indirect branches are re-evaluated and compared against
    the direction recorded during scheduling; the tag system (§3.8) decides
    which operations of the long instruction commit. Memory aliasing is
    detected with order fields (§3.10), and exceptions use block-granularity
    checkpointing (§3.11). *)

open Dts_sched.Schedtypes

type rr_entry = {
  mutable v : int;
  mutable m_addr : int;  (** memory renaming registers: buffered store *)
  mutable m_size : int;
  mutable exn : Dts_isa.Semantics.trap option;
}

type exn_kind = E_aliasing | E_trap of Dts_isa.Semantics.trap

(** How stores and exception recovery work (§3.11): the paper's implemented
    scheme checkpoints overwritten data, or the alternative it describes but
    did not build — stores buffer in a data store list and drain to memory
    in order when the block commits. *)
type store_scheme = Checkpoint_recovery | Data_store_list

type li_result =
  | R_next
  | R_block_end of { next_addr : int }
  | R_redirect of { target : int }  (** mispredicted branch, actual target *)
  | R_exn of exn_kind

type mem_event = Aliaslog.event = {
  ev_addr : int;
  ev_size : int;
  ev_order : int;
  ev_li : int;
  ev_is_store : bool;
  ev_cross : bool;
}

type shadow = {
  s_iregs : int array;
  s_fregs : int array;
  s_icc : int;
  s_cwp : int;
  s_wdepth : int;
  s_wspill_sp : int;
  s_pc : int;
}

type stats = {
  mutable max_data_store_list : int;
  mutable max_load_list : int;
  mutable max_store_list : int;
  mutable max_recovery_list : int;
  mutable aliasing_exceptions : int;
  mutable deferred_exceptions : int;
  mutable block_exceptions : int;
  mutable mispredicts : int;
  mutable lis_executed : int;
  mutable ops_committed : int;
  mutable copies_committed : int;
}

type t = {
  st : Dts_isa.State.t;
  dcache : Dts_mem.Cache.t;
  scheme : store_scheme;
  mutable rr : rr_entry array array;  (** per {!rr_kind} *)
  mutable shadow : shadow option;
  mutable recovery : (int * int * int) list;  (** addr, size, old value *)
  mutable n_recovery : int;
  mutable dsl_mem : Dts_mem.Memory.t;  (** data-store-list byte buffer *)
  mutable dsl_ranges : (int * int * int) list;  (** addr, size, order *)
  mem_log : Aliaslog.t;  (** per-block aliasing log (§3.10), bucketed *)
  mutable wdelta : int;
      (** window-relative replay: runtime entry cwp minus build-time entry
          cwp (mod nwindows), applied to every baked cwp and physical
          register position *)
  stats : stats;
  tracer : Dts_obs.Trace.t;
      (** event sink for rollback/aliasing observability; the machine
          stamps its cycle on it each step *)
}

let create ?(scheme = Checkpoint_recovery) ?(tracer = Dts_obs.Trace.null)
    ~dcache st =
  {
    st;
    dcache;
    scheme;
    rr = Array.make 4 [||];
    shadow = None;
    recovery = [];
    n_recovery = 0;
    dsl_mem = Dts_mem.Memory.create ();
    dsl_ranges = [];
    mem_log = Aliaslog.create ();
    wdelta = 0;
    tracer;
    stats =
      {
        max_data_store_list = 0;
        max_load_list = 0;
        max_store_list = 0;
        max_recovery_list = 0;
        aliasing_exceptions = 0;
        deferred_exceptions = 0;
        block_exceptions = 0;
        mispredicts = 0;
        lis_executed = 0;
        ops_committed = 0;
        copies_committed = 0;
      };
  }

let fresh_rr () = { v = 0; m_addr = 0; m_size = 0; exn = None }

(** Checkpoint (§3.11): snapshot the register state and reset the per-block
    structures. Called at the start of every block's execution. *)
let enter_block t (block : block) =
  let st = t.st in
  t.shadow <-
    Some
      {
        s_iregs = Array.copy st.iregs;
        s_fregs = Array.copy st.fregs;
        s_icc = st.icc;
        s_cwp = st.cwp;
        s_wdepth = st.wdepth;
        s_wspill_sp = st.wspill_sp;
        s_pc = st.pc;
      };
  t.recovery <- [];
  t.n_recovery <- 0;
  if t.dsl_ranges <> [] then begin
    t.dsl_mem <- Dts_mem.Memory.create ();
    t.dsl_ranges <- []
  end;
  Aliaslog.clear t.mem_log;
  t.wdelta <- (st.cwp - block.entry_cwp + st.nwindows) mod st.nwindows;
  t.rr <-
    Array.init 4 (fun k ->
        Array.init block.rr_counts.(k) (fun _ -> fresh_rr ()))

(** Roll back to the checkpoint: restore registers and undo every store of
    the block in reverse order (§3.11). *)
let rollback t =
  if Dts_obs.Trace.enabled t.tracer then
    Dts_obs.Trace.emit t.tracer
      (Checkpoint_recovery
         { undone = t.n_recovery + List.length t.dsl_ranges });
  let st = t.st in
  (match t.shadow with
  | None -> invalid_arg "Engine.rollback without checkpoint"
  | Some s ->
    Array.blit s.s_iregs 0 st.iregs 0 (Array.length st.iregs);
    Array.blit s.s_fregs 0 st.fregs 0 (Array.length st.fregs);
    st.icc <- s.s_icc;
    st.cwp <- s.s_cwp;
    st.wdepth <- s.s_wdepth;
    st.wspill_sp <- s.s_wspill_sp;
    st.pc <- s.s_pc);
  List.iter
    (fun (addr, size, old) -> Dts_mem.Memory.write st.mem ~addr ~size old)
    t.recovery;
  t.recovery <- [];
  t.n_recovery <- 0;
  (* in the data-store-list scheme, memory was never touched: "data
     generated in the block where the exception is detected is annulled" *)
  if t.dsl_ranges <> [] then begin
    t.dsl_mem <- Dts_mem.Memory.create ();
    t.dsl_ranges <- []
  end;
  Aliaslog.clear t.mem_log;
  t.stats.block_exceptions <- t.stats.block_exceptions + 1

let rr_of t (r : rref) = t.rr.(rr_kind_index r.kind).(r.ridx)

(* window-relative replay: shift a baked window pointer / physical integer
   register position by the block-entry window delta *)
let shift_cwp t cwp = (cwp + t.wdelta) mod t.st.nwindows

let shift_pos t (pos : Dts_isa.Storage.t) : Dts_isa.Storage.t =
  match pos with
  | Int_reg p when p >= Dts_isa.State.n_globals ->
    let nw16 = t.st.nwindows * 16 in
    Int_reg
      (Dts_isa.State.n_globals
      + ((p - Dts_isa.State.n_globals + (t.wdelta * 16)) mod nw16))
  | Int_reg _ | Fp_reg _ | Flags | Win | Mem _ | Ren _ -> pos

exception Alias_violation = Aliaslog.Alias_violation
exception Block_trap of Dts_isa.Semantics.trap

(* The §3.10 order rule lives in {!Aliaslog.add}; the engine only tracks
   the Table 3 high-water marks from the log's running list counters. *)
let log_mem t ev =
  Aliaslog.add t.mem_log ev;
  if ev.ev_cross then
    if ev.ev_is_store then
      t.stats.max_store_list <-
        max t.stats.max_store_list (Aliaslog.cross_stores t.mem_log)
    else
      t.stats.max_load_list <-
        max t.stats.max_load_list (Aliaslog.cross_loads t.mem_log)

let storage_of_write : Dts_isa.Semantics.write -> Dts_isa.Storage.t = function
  | W_phys (p, _) -> Int_reg p
  | W_freg (f, _) -> Fp_reg f
  | W_icc _ -> Flags
  | W_win _ -> Win

(** Execute long instruction [idx] of [block]. Returns the control outcome
    and the data-cache penalty cycles incurred. On [R_exn] the rollback has
    already been performed. *)
let exec_li t (block : block) idx : li_result * int =
  let st = t.st in
  let li = block.lis.(idx) in
  t.stats.lis_executed <- t.stats.lis_executed + 1;
  let penalty = ref 0 in
  (* phase 1: compute outcomes for every op, reading pre-li state *)
  let entries =
    li_fold
      (fun acc _k op tag ->
        match op with
        | Op s ->
          (* forwarded sources read their renaming register (§3.2); the
             positions semantics asks about are window-shifted, so shift the
             baked substitution keys the same way *)
          let subs =
            if t.wdelta = 0 then s.subs
            else List.map (fun (p, rr) -> (shift_pos t p, rr)) s.subs
          in
          let read_override pos =
            match List.assoc_opt pos subs with
            | Some rr -> Some (rr_of t rr).v
            | None -> None
          in
          (* data-store-list scheme: loads read the list and the data cache
             simultaneously, preferring the last data stored on a hit *)
          let mem_read_override ~addr ~size ~signed =
            if t.dsl_ranges = [] then None
            else begin
              let covered b =
                List.exists
                  (fun (a, sz, _) -> b >= a && b < a + sz)
                  t.dsl_ranges
              in
              let any = ref false in
              for b = addr to addr + size - 1 do
                if covered b then any := true
              done;
              if not !any then None
              else begin
                let v = ref 0 in
                for b = addr to addr + size - 1 do
                  let byte =
                    if covered b then
                      Dts_mem.Memory.read t.dsl_mem ~addr:b ~size:1
                        ~signed:false
                    else
                      Dts_mem.Memory.read st.mem ~addr:b ~size:1 ~signed:false
                  in
                  v := (!v lsl 8) lor byte
                done;
                let raw = !v in
                Some
                  (if signed then
                     (raw lsl (Sys.int_size - (size * 8)))
                     asr (Sys.int_size - (size * 8))
                   else raw)
              end
            end
          in
          let out =
            Dts_isa.Semantics.exec ~read_override ~mem_read_override st
              ~cwp:(shift_cwp t s.cwp) ~pc:s.addr s.instr
          in
          (op, tag, Some (s, out)) :: acc
        | Copy _ -> (op, tag, None) :: acc)
      [] li
    |> List.rev
  in
  (* phase 2: find the first mispredicted branch; ops with tag greater than
     its tag do not commit *)
  let fail : (int * int) option ref = ref None in
  (* (tag, actual target) *)
  List.iter
    (fun (_, tag, info) ->
      match info with
      | Some (s, out) when Dts_isa.Instr.is_conditional_ctrl s.instr ->
        if out.Dts_isa.Semantics.next_pc <> s.obs_next_pc then (
          match !fail with
          | Some (ft, _) when ft <= tag -> ()
          | _ -> fail := Some (tag, out.next_pc))
      | _ -> ())
    entries;
  let valid tag = match !fail with None -> true | Some (ft, _) -> tag <= ft in
  (* phase 3: gather effects of valid ops *)
  let buffered_writes = ref [] in
  let buffered_stores = ref [] in
  (try
     List.iter
       (fun (op, tag, info) ->
         if valid tag then
           match (op, info) with
           | Op s, Some (_, out) -> (
             match out.Dts_isa.Semantics.trap with
             | Some tr ->
               (* deferred iff every architectural output is renamed *)
               if
                 s.redirect <> []
                 && List.for_all
                      (fun w -> List.mem_assoc w s.redirect)
                      s.arch_writes
               then begin
                 List.iter (fun (_, rr) -> (rr_of t rr).exn <- Some tr) s.redirect;
                 t.stats.deferred_exceptions <- t.stats.deferred_exceptions + 1
               end
               else raise (Block_trap tr)
             | None ->
               t.stats.ops_committed <- t.stats.ops_committed + 1;
               let redirect =
                 if t.wdelta = 0 then s.redirect
                 else List.map (fun (p, rr) -> (shift_pos t p, rr)) s.redirect
               in
               List.iter
                 (fun w ->
                   let pos = storage_of_write w in
                   match List.assoc_opt pos redirect with
                   | Some rr ->
                     let e = rr_of t rr in
                     (match w with
                     | W_phys (_, v) | W_freg (_, v) | W_icc v -> e.v <- v
                     | W_win _ -> invalid_arg "renamed window write");
                     e.exn <- None
                   | None -> buffered_writes := w :: !buffered_writes)
                 out.writes;
               (match out.load with
               | Some (a, sz) ->
                 penalty := !penalty + Dts_mem.Cache.access t.dcache a;
                 log_mem t
                   {
                     ev_addr = a;
                     ev_size = sz;
                     ev_order = s.order;
                     ev_li = idx;
                     ev_is_store = false;
                     ev_cross = s.cross;
                   }
               | None -> ());
               (match out.store with
               | Some (a, sz, v) -> (
                 let pos = Dts_isa.Storage.Mem { addr = a; size = sz } in
                 (* a renamed store redirects its (single) memory output *)
                 match s.redirect with
                 | (Mem _, rr) :: _ ->
                   let e = rr_of t rr in
                   e.m_addr <- a;
                   e.m_size <- sz;
                   e.v <- v;
                   e.exn <- None
                 | _ ->
                   ignore pos;
                   penalty := !penalty + Dts_mem.Cache.access t.dcache a;
                   log_mem t
                     {
                       ev_addr = a;
                       ev_size = sz;
                       ev_order = s.order;
                       ev_li = idx;
                       ev_is_store = true;
                       ev_cross = s.cross;
                     };
                   buffered_stores := (a, sz, v, s.order) :: !buffered_stores)
               | None -> ()))
           | Copy c, _ ->
             t.stats.copies_committed <- t.stats.copies_committed + 1;
             List.iter
               (fun (rr, target) ->
                 let src = rr_of t rr in
                 match target with
                 | T_ren dst_ref ->
                   let dst = rr_of t dst_ref in
                   dst.v <- src.v;
                   dst.m_addr <- src.m_addr;
                   dst.m_size <- src.m_size;
                   dst.exn <- src.exn
                 | T_arch pos -> (
                   match src.exn with
                   | Some tr -> raise (Block_trap tr)
                   | None -> (
                     match shift_pos t pos with
                     | Int_reg p ->
                       buffered_writes := W_phys (p, src.v) :: !buffered_writes
                     | Fp_reg f ->
                       buffered_writes := W_freg (f, src.v) :: !buffered_writes
                     | Flags -> buffered_writes := W_icc src.v :: !buffered_writes
                     | Win -> invalid_arg "renamed window copy"
                     | Ren _ -> invalid_arg "T_arch to a renaming register"
                     | Mem _ ->
                       penalty :=
                         !penalty + Dts_mem.Cache.access t.dcache src.m_addr;
                       log_mem t
                         {
                           ev_addr = src.m_addr;
                           ev_size = src.m_size;
                           ev_order = c.c_order;
                           ev_li = idx;
                           ev_is_store = true;
                           ev_cross = true;
                         };
                       buffered_stores :=
                         (src.m_addr, src.m_size, src.v, c.c_order)
                         :: !buffered_stores)))
               c.c_moves
           | Op _, None -> assert false)
       entries;
     (* phase 4: apply buffered effects (reads already done) *)
     Dts_isa.Semantics.apply_writes st (List.rev !buffered_writes);
     List.iter
       (fun (addr, size, v, order) ->
         match t.scheme with
         | Checkpoint_recovery ->
           (* save the overwritten data in the checkpoint recovery store
              list, then write through (§3.11) *)
           let old = Dts_mem.Memory.read st.mem ~addr ~size ~signed:true in
           t.recovery <- (addr, size, old) :: t.recovery;
           t.n_recovery <- t.n_recovery + 1;
           t.stats.max_recovery_list <- max t.stats.max_recovery_list t.n_recovery;
           Dts_mem.Memory.write st.mem ~addr ~size v
         | Data_store_list ->
           (* buffer in the data store list; memory is untouched until the
              block commits *)
           Dts_mem.Memory.write t.dsl_mem ~addr ~size v;
           t.dsl_ranges <- (addr, size, order) :: t.dsl_ranges;
           t.stats.max_data_store_list <-
             max t.stats.max_data_store_list (List.length t.dsl_ranges))
       (List.rev !buffered_stores);
     match !fail with
     | Some (_, target) ->
       t.stats.mispredicts <- t.stats.mispredicts + 1;
       (R_redirect { target }, !penalty)
     | None ->
       if idx = block.nba_idx then
         (R_block_end { next_addr = block.nba_addr }, !penalty)
       else (R_next, !penalty)
   with
  | Alias_violation ->
    t.stats.aliasing_exceptions <- t.stats.aliasing_exceptions + 1;
    if Dts_obs.Trace.enabled t.tracer then
      Dts_obs.Trace.emit t.tracer
        (Aliasing_violation { tag = block.tag_addr; li = idx });
    rollback t;
    (R_exn E_aliasing, !penalty)
  | Block_trap tr ->
    rollback t;
    (R_exn (E_trap tr), !penalty))

(** Clean block exit. In the checkpoint scheme the recovery data is simply
    dropped; in the data-store-list scheme the buffered stores drain to
    memory in order (the order fields make in-order memory update possible,
    §3.11). Returns the data-cache penalty cycles of the drain. *)
let commit_block t =
  t.shadow <- None;
  t.recovery <- [];
  t.n_recovery <- 0;
  Aliaslog.clear t.mem_log;
  if t.dsl_ranges = [] then 0
  else begin
    let penalty = ref 0 in
    List.iter
      (fun (addr, size, _) ->
        penalty := !penalty + Dts_mem.Cache.access t.dcache addr;
        for b = addr to addr + size - 1 do
          Dts_mem.Memory.write t.st.mem ~addr:b ~size:1
            (Dts_mem.Memory.read t.dsl_mem ~addr:b ~size:1 ~signed:false)
        done)
      (List.sort
         (fun (_, _, o1) (_, _, o2) -> compare o1 o2)
         t.dsl_ranges);
    t.dsl_mem <- Dts_mem.Memory.create ();
    t.dsl_ranges <- [];
    !penalty
  end
