(** Install-time block compilation (§3.5, §3.8–3.11).

    The paper's premise is that scheduling work is paid {e once}, when the
    trace is scheduled into a block — replaying the block from the VLIW
    Cache is then cheap. The interpreter in {!Engine} does not honour that:
    every cycle it re-walks each scheduled op's association lists
    ([subs]/[redirect]), re-shifts window-relative register positions and
    re-discovers which ops are conditional branches. This module performs
    that analysis once per installed block and bakes the result into flat
    arrays the engine can execute with array probes only.

    A plan is compiled against a specific window delta ([wdelta]): all
    window-relative integer-register positions in substitution and
    redirection maps, and the [cwp] each op executes under, are resolved at
    compile time. Blocks are entered at arbitrary call depths, so a plan
    holds one variant per {e observed} wdelta — the base variant (wdelta 0,
    by far the common case) plus a lazily built list of shifted variants.

    Plans carry no mutable execution state; the reusable scratch storage
    (renaming-register arena, buffered write/store vectors) lives in
    {!Engine.t}. A plan holds a pointer to the block it was compiled from,
    which the machine uses to detect staleness: the VLIW Cache owns blocks,
    and whenever a block leaves the cache (eviction, replacement,
    self-modifying-code invalidation) the plan compiled from it is dropped
    with it. *)

open Dts_sched.Schedtypes

(** A copy destination with the window shift already applied. [PT_mem] is a
    buffered store delivered from a memory renaming register; the address
    and size live in the source register at run time. *)
type ptarget = PT_ren of rref | PT_phys of int | PT_freg of int | PT_flags | PT_mem

type pmove = { pm_src : rref; pm_tgt : ptarget }

(** The source-substitution context of one op (§3.2 forwarding), probed by
    the engine's read overrides: positions in list order, so first-match
    semantics are preserved. A named record lets the engine publish a whole
    op's context with a single field write; ops with no substitutions share
    {!no_subs}. *)
type subs = {
  sp_pos : int array;  (** physical int reg positions (shifted) *)
  sp_rr : rref array;
  sf_pos : int array;
  sf_rr : rref array;
  s_icc : rref option;
}

let no_subs =
  { sp_pos = [||]; sp_rr = [||]; sf_pos = [||]; sf_rr = [||]; s_icc = None }

(** One slot op, pre-decoded. For an [P_op], the substitution and
    redirection association lists are split by storage kind into parallel
    position/register arrays (probed with integer compares, in list order so
    first-match semantics are preserved), and the per-op facts the
    interpreter recomputes each cycle — conditional-control?, trap
    deferrable?, store redirected?, execution cwp — are baked in. *)
type xop = {
  op : sop;
  x_cwp : int;  (** cwp this op executes under (shifted) *)
  x_uop : int;  (** packed decode of [op.instr] at [op.addr], for the
                    allocation-free {!Dts_isa.Semantics.exec_into_ov} *)
  subs : subs;  (** source-substitution context, shared when empty *)
  x_ovfree : bool;
      (** no substituted source and no memory read: the op reads
          architectural state only, so execution can skip the override
          closures entirely (the engine also skips them for
          substitution-free memory reads while the data store list is
          empty) *)
  red_phys_pos : int array;  (** redirected outputs, by kind *)
  red_phys_rr : rref array;
  red_freg_pos : int array;
  red_freg_rr : rref array;
  red_icc : rref option;
  red_win : bool;  (** a window-pointer output is redirected *)
  red_mem : rref option;  (** head-of-redirect memory output (§3.8) *)
  red_all : rref array;  (** every redirect target, for trap deferral *)
  deferrable : bool;
      (** every architectural output renamed — a trap defers into the
          renaming registers instead of ending the block (§3.11) *)
  is_cond : bool;  (** conditional control, re-evaluated against
                       [obs_next_pc] each execution (§3.5) *)
}

type pop =
  | P_op of xop  (** named, not inline: the executor passes the op record
                     to its evaluation helper *)
  | P_copy of { moves : pmove array; c_order : int }

(** One long instruction: ops in occupancy order with their branch tags.
    [p_cond] holds the indices of the conditional-control ops, so the
    per-execution misprediction scan touches only those. *)
type pli = { p_ops : pop array; p_tags : int array; p_cond : int array }

type variant = { v_wdelta : int; v_lis : pli array }

type t = {
  p_block : block;
  p_base : variant;  (** wdelta = 0 *)
  mutable p_variants : variant list;  (** shifted variants, lazily built *)
}

let shift_pos ~nwindows ~wdelta (pos : Dts_isa.Storage.t) : Dts_isa.Storage.t =
  match pos with
  | Int_reg p when p >= Dts_isa.State.n_globals ->
    let nw16 = nwindows * 16 in
    Int_reg
      (Dts_isa.State.n_globals
      + ((p - Dts_isa.State.n_globals + (wdelta * 16)) mod nw16))
  | Int_reg _ | Fp_reg _ | Flags | Win | Mem _ | Ren _ -> pos

(* Split an association list keyed by storage position into per-kind
   parallel arrays, preserving list order (= List.assoc_opt first-match
   order). Only integer-register keys are window-relative; Fp_reg/Flags
   keys are shift-invariant, and Win/Mem/Ren keys are never probed by
   position. *)
let split_assoc ~nwindows ~wdelta (l : (Dts_isa.Storage.t * rref) list) =
  let phys =
    List.filter_map
      (fun (p, rr) ->
        match shift_pos ~nwindows ~wdelta p with
        | Dts_isa.Storage.Int_reg q -> Some (q, rr)
        | _ -> None)
      l
  in
  let fregs =
    List.filter_map
      (fun (p, rr) ->
        match p with Dts_isa.Storage.Fp_reg f -> Some (f, rr) | _ -> None)
      l
  in
  let icc =
    List.find_map
      (fun ((p : Dts_isa.Storage.t), rr) ->
        match p with Flags -> Some rr | _ -> None)
      l
  in
  ( Array.of_list (List.map fst phys),
    Array.of_list (List.map snd phys),
    Array.of_list (List.map fst fregs),
    Array.of_list (List.map snd fregs),
    icc )

let build_op ~nwindows ~wdelta (s : sop) =
  let subs =
    if s.subs = [] then no_subs
    else
      let sp_pos, sp_rr, sf_pos, sf_rr, s_icc =
        split_assoc ~nwindows ~wdelta s.subs
      in
      { sp_pos; sp_rr; sf_pos; sf_rr; s_icc }
  in
  let red_phys_pos, red_phys_rr, red_freg_pos, red_freg_rr, red_icc =
    split_assoc ~nwindows ~wdelta s.redirect
  in
  let red_win =
    List.exists
      (fun ((p : Dts_isa.Storage.t), _) -> p = Win)
      s.redirect
  in
  let red_mem =
    match s.redirect with
    | (Dts_isa.Storage.Mem _, rr) :: _ -> Some rr
    | _ -> None
  in
  (* deferral is decided on the unshifted maps, exactly as the interpreter
     does — membership is invariant under the uniform window shift *)
  let deferrable =
    s.redirect <> []
    && List.for_all (fun w -> List.mem_assoc w s.redirect) s.arch_writes
  in
  let x_uop = Dts_isa.Uop.of_instr ~pc:s.addr s.instr in
  let reads_mem =
    let opc = Dts_isa.Uop.opcode x_uop in
    opc lsr 4 = 2 || opc = Dts_isa.Uop.u_fload
  in
  P_op
    {
      op = s;
      x_cwp = (s.cwp + wdelta) mod nwindows;
      x_uop;
      subs;
      x_ovfree = subs == no_subs && not reads_mem;
      red_phys_pos;
      red_phys_rr;
      red_freg_pos;
      red_freg_rr;
      red_icc;
      red_win;
      red_mem;
      red_all = Array.of_list (List.map snd s.redirect);
      deferrable;
      is_cond = Dts_isa.Instr.is_conditional_ctrl s.instr;
    }

let build_move ~nwindows ~wdelta ((rr, tgt) : rref * wtarget) =
  let pm_tgt =
    match tgt with
    | T_ren dst -> PT_ren dst
    | T_arch pos -> (
      match shift_pos ~nwindows ~wdelta pos with
      | Int_reg p -> PT_phys p
      | Fp_reg f -> PT_freg f
      | Flags -> PT_flags
      | Mem _ -> PT_mem
      | Win -> invalid_arg "renamed window copy"
      | Ren _ -> invalid_arg "T_arch to a renaming register")
  in
  { pm_src = rr; pm_tgt }

let build_li ~nwindows ~wdelta (li : li) =
  let items =
    List.rev
      (li_fold
         (fun acc _k op tag ->
           let p =
             match op with
             | Op s -> build_op ~nwindows ~wdelta s
             | Copy c ->
               P_copy
                 {
                   moves =
                     Array.of_list
                       (List.map (build_move ~nwindows ~wdelta) c.c_moves);
                   c_order = c.c_order;
                 }
           in
           (p, tag) :: acc)
         [] li)
  in
  let p_ops = Array.of_list (List.map fst items) in
  let cond = ref [] in
  Array.iteri
    (fun i p -> match p with P_op o when o.is_cond -> cond := i :: !cond | _ -> ())
    p_ops;
  {
    p_ops;
    p_tags = Array.of_list (List.map snd items);
    p_cond = Array.of_list (List.rev !cond);
  }

let build_variant ~nwindows ~wdelta (b : block) =
  { v_wdelta = wdelta; v_lis = Array.map (build_li ~nwindows ~wdelta) b.lis }

(** Compile [b] into a plan with its base (wdelta 0) variant. *)
let compile ~nwindows (b : block) =
  { p_block = b; p_base = build_variant ~nwindows ~wdelta:0 b; p_variants = [] }

(** The variant of [t] for [wdelta], building and caching it on first
    observation. Returns [(variant, freshly_built)]. *)
let variant ~nwindows t ~wdelta =
  if wdelta = 0 then (t.p_base, false)
  else
    match List.find_opt (fun v -> v.v_wdelta = wdelta) t.p_variants with
    | Some v -> (v, false)
    | None ->
      let v = build_variant ~nwindows ~wdelta t.p_block in
      t.p_variants <- v :: t.p_variants;
      (v, true)
