(** Observed read/write sets of an executed instruction, in terms of
    {!Storage.t} positions. The Scheduler Unit computes dependencies on these
    (§3.2): integer registers are resolved to physical indices with the
    instruction's observed window pointer, and memory positions use the
    observed effective address (§3.9). *)

let reg_read ~nwindows ~cwp acc r =
  if r = 0 then acc else Storage.Int_reg (State.phys ~nwindows ~cwp r) :: acc

let operand_read ~nwindows ~cwp acc (op2 : Instr.operand) =
  match op2 with Reg r -> reg_read ~nwindows ~cwp acc r | Imm _ -> acc

let reg_write ~nwindows ~cwp acc r =
  if r = 0 then acc else Storage.Int_reg (State.phys ~nwindows ~cwp r) :: acc

(** [of_instr ~nwindows ~cwp ~mem instr] is [(reads, writes)]. [mem] is the
    observed (effective address, size) for loads and stores. *)
let of_instr ~nwindows ~cwp ?mem (instr : Instr.t) :
    Storage.t list * Storage.t list =
  let rr = reg_read ~nwindows ~cwp in
  let rw = reg_write ~nwindows ~cwp in
  let op_r = operand_read ~nwindows ~cwp in
  let mem_storage () =
    match mem with
    | Some (addr, size) -> Storage.Mem { addr; size }
    | None -> invalid_arg "Rwsets.of_instr: memory instruction without ~mem"
  in
  match instr with
  | Nop | Halt | Trap _ -> ([], [])
  | Alu { op = _; cc; rs1; op2; rd } ->
    let reads = op_r (rr [] rs1) op2 in
    let writes = rw [] rd in
    (reads, if cc then Storage.Flags :: writes else writes)
  | Sethi { rd; _ } -> ([], rw [] rd)
  | Load { rs1; op2; rd; _ } ->
    (mem_storage () :: op_r (rr [] rs1) op2, rw [] rd)
  | Store { rs; rs1; op2; _ } ->
    (op_r (rr (rr [] rs) rs1) op2, [ mem_storage () ])
  | Fload { rs1; op2; rd } ->
    (mem_storage () :: op_r (rr [] rs1) op2, [ Storage.Fp_reg rd ])
  | Fstore { rd; rs1; op2 } ->
    (Storage.Fp_reg rd :: op_r (rr [] rs1) op2, [ mem_storage () ])
  | Fpop { rs1; rs2; rd; _ } ->
    ([ Storage.Fp_reg rs1; Storage.Fp_reg rs2 ], [ Storage.Fp_reg rd ])
  | Branch { cond; _ } ->
    ((if cond = Instr.A then [] else [ Storage.Flags ]), [])
  | Call _ -> ([], rw [] 15)
  | Jmpl { rs1; op2; rd } -> (op_r (rr [] rs1) op2, rw [] rd)
  | Save { rs1; op2; rd } ->
    let new_cwp = (cwp - 1 + nwindows) mod nwindows in
    let writes = [ Storage.Win ] in
    let writes =
      if rd = 0 then writes
      else Storage.Int_reg (State.phys ~nwindows ~cwp:new_cwp rd) :: writes
    in
    (Storage.Win :: op_r (rr [] rs1) op2, writes)
  | Restore { rs1; op2; rd } ->
    let new_cwp = (cwp + 1) mod nwindows in
    let writes = [ Storage.Win ] in
    let writes =
      if rd = 0 then writes
      else Storage.Int_reg (State.phys ~nwindows ~cwp:new_cwp rd) :: writes
    in
    (Storage.Win :: op_r (rr [] rs1) op2, writes)
