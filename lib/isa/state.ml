(** SRISC architectural state.

    The integer register file is the physical SPARC-style windowed file:
    8 globals followed by [nwindows] overlapping windows of 16 registers
    (8 locals + 8 outs each; a window's ins are the next window's outs).
    [save] decrements the current window pointer (cwp). *)

type icc = int
(** Condition codes packed as a 4-bit integer: bit 3 = N, 2 = Z, 1 = V,
    0 = C. *)

type t = {
  mutable pc : int;
  iregs : int array;  (** physical integer registers: [8 + nwindows*16] *)
  fregs : int array;  (** 32 single-precision registers as raw bit patterns *)
  mutable icc : icc;
  mutable cwp : int;
  mutable wdepth : int;  (** windows currently in use (0 after reset) *)
  mutable wspill_sp : int;  (** top of the window spill stack *)
  mem : Dts_mem.Memory.t;
  predecode : Predecode.t;
      (** per-state pre-decoded instruction store over [mem]; fetch through
          it ({!Predecode.fetch}) instead of {!Encode.fetch} on hot paths *)
  nwindows : int;
  mutable instret : int;  (** retired instruction count *)
  mutable halted : bool;
  mutable traps : int;  (** serviced trap count *)
}

let n_visible = 32
let n_globals = 8

let create ?(nwindows = 32) ?mem () =
  let mem = match mem with Some m -> m | None -> Dts_mem.Memory.create () in
  {
    pc = Layout.text_base;
    iregs = Array.make (n_globals + (nwindows * 16)) 0;
    fregs = Array.make 32 0;
    icc = 0;
    cwp = 0;
    wdepth = 0;
    wspill_sp = Layout.wspill_base;
    mem;
    predecode = Predecode.create mem;
    nwindows;
    instret = 0;
    halted = false;
    traps = 0;
  }

let n_phys_iregs st = Array.length st.iregs

(** Physical index of visible register [r] (0..31) under window [cwp]. *)
let phys ~nwindows ~cwp r =
  if r < 0 || r >= n_visible then invalid_arg "State.phys";
  if r < n_globals then r
  else
    let base =
      if r < 16 then (cwp * 16) + (r - 8) (* outs *)
      else if r < 24 then (cwp * 16) + 8 + (r - 16) (* locals *)
      else ((cwp + 1) mod nwindows * 16) + (r - 24) (* ins *)
    in
    n_globals + (base mod (nwindows * 16))

let phys_of st ~cwp r = phys ~nwindows:st.nwindows ~cwp r

let get_reg st ~cwp r =
  if r = 0 then 0 else st.iregs.(phys_of st ~cwp r)

let set_reg st ~cwp r v =
  if r <> 0 then st.iregs.(phys_of st ~cwp r) <- v

let get_phys st p = if p = 0 then 0 else st.iregs.(p)
let set_phys st p v = if p <> 0 then st.iregs.(p) <- v

(* icc accessors *)
let icc_n icc = icc land 8 <> 0
let icc_z icc = icc land 4 <> 0
let icc_v icc = icc land 2 <> 0
let icc_c icc = icc land 1 <> 0

let make_icc ~n ~z ~v ~c =
  (if n then 8 else 0)
  lor (if z then 4 else 0)
  lor (if v then 2 else 0)
  lor if c then 1 else 0

let copy st =
  let mem = Dts_mem.Memory.copy st.mem in
  {
    st with
    iregs = Array.copy st.iregs;
    fregs = Array.copy st.fregs;
    mem;
    (* a fresh store hooked to the fresh memory: decodes must not be shared
       with (or invalidated by) the original *)
    predecode = Predecode.create mem;
  }

(** Register-and-flags equality (the cheap per-block test-mode check). *)
let regs_equal a b =
  a.pc = b.pc && a.icc = b.icc && a.cwp = b.cwp && a.wdepth = b.wdepth
  && a.wspill_sp = b.wspill_sp
  && a.iregs = b.iregs && a.fregs = b.fregs

(** Full state equality including memory (the expensive periodic check). *)
let equal a b = regs_equal a b && Dts_mem.Memory.equal a.mem b.mem

let pp_diff fmt (a, b) =
  let open Format in
  if a.pc <> b.pc then fprintf fmt "pc: %#x vs %#x@ " a.pc b.pc;
  if a.icc <> b.icc then fprintf fmt "icc: %d vs %d@ " a.icc b.icc;
  if a.cwp <> b.cwp then fprintf fmt "cwp: %d vs %d@ " a.cwp b.cwp;
  if a.wdepth <> b.wdepth then
    fprintf fmt "wdepth: %d vs %d@ " a.wdepth b.wdepth;
  Array.iteri
    (fun i v ->
      if v <> b.iregs.(i) then fprintf fmt "ireg[%d]: %d vs %d@ " i v b.iregs.(i))
    a.iregs;
  Array.iteri
    (fun i v ->
      if v <> b.fregs.(i) then fprintf fmt "freg[%d]: %#x vs %#x@ " i v b.fregs.(i))
    a.fregs;
  match Dts_mem.Memory.first_difference a.mem b.mem with
  | Some addr -> fprintf fmt "mem[%#x] differs@ " addr
  | None -> ()
