(** SRISC architectural state.

    The integer register file is the physical SPARC-style windowed file:
    8 globals followed by [nwindows] overlapping windows of 16 registers
    (8 locals + 8 outs each; a window's ins are the next window's outs).
    [save] decrements the current window pointer (cwp). *)

type icc = int
(** Condition codes packed as a 4-bit integer: bit 3 = N, 2 = Z, 1 = V,
    0 = C. *)

type t = {
  mutable pc : int;
  iregs : int array;  (** physical integer registers: [8 + nwindows*16] *)
  fregs : int array;  (** 32 single-precision registers as raw bit patterns *)
  mutable icc : icc;
  mutable cwp : int;
  mutable wdepth : int;  (** windows currently in use (0 after reset) *)
  mutable wspill_sp : int;  (** top of the window spill stack *)
  mem : Dts_mem.Memory.t;
  predecode : Predecode.t;
      (** per-state pre-decoded instruction store over [mem]; fetch through
          it ({!Predecode.fetch}) instead of {!Encode.fetch} on hot paths *)
  nwindows : int;
  mutable instret : int;  (** retired instruction count *)
  mutable halted : bool;
  mutable traps : int;  (** serviced trap count *)
  (* Dirty-register journal: indices written since the last {!dirty_clear}
     (integer register index, or [n_iregs + f] for fp register [f]).
     Test-mode synchronisation compares two states at every block boundary;
     journalling lets it compare only the handful of registers either side
     wrote since the previous successful compare instead of walking the
     whole windowed register file. The journal is conservative: an
     overflow flips [dirty_all] and the next comparison falls back to the
     full scan. A state starts with [dirty_all] set — journaling off —
     because standalone engines (golden runs, Primary-only benchmarks)
     never compare and should not pay the per-write journal append; the
     co-simulation turns journaling on by calling {!dirty_clear} on both
     states at the moment it establishes their equality. *)
  dirty_idx : int array;
  mutable n_dirty : int;
  mutable dirty_all : bool;
}

let n_visible = 32
let n_globals = 8

let create ?(nwindows = 32) ?mem () =
  let mem = match mem with Some m -> m | None -> Dts_mem.Memory.create () in
  {
    pc = Layout.text_base;
    iregs = Array.make (n_globals + (nwindows * 16)) 0;
    fregs = Array.make 32 0;
    icc = 0;
    cwp = 0;
    wdepth = 0;
    wspill_sp = Layout.wspill_base;
    mem;
    predecode = Predecode.create mem;
    nwindows;
    instret = 0;
    halted = false;
    traps = 0;
    dirty_idx = Array.make 1024 0;
    n_dirty = 0;
    dirty_all = true;
  }

let n_phys_iregs st = Array.length st.iregs

(** Physical index of visible register [r] (0..31) under window [cwp]. *)
let phys ~nwindows ~cwp r =
  if r < 0 || r >= n_visible then invalid_arg "State.phys";
  if r < n_globals then r
  else
    let base =
      if r < 16 then (cwp * 16) + (r - 8) (* outs *)
      else if r < 24 then (cwp * 16) + 8 + (r - 16) (* locals *)
      else ((cwp + 1) mod nwindows * 16) + (r - 24) (* ins *)
    in
    n_globals + (base mod (nwindows * 16))

let phys_of st ~cwp r = phys ~nwindows:st.nwindows ~cwp r

(** {!phys} without the bounds check, for callers whose [r] comes out of a
    5-bit field and is therefore already in 0..31, and whose [cwp] is an
    architectural window pointer already in [0, nwindows). Under those
    preconditions the only wraparound is the ins region of the last window,
    so the two integer divisions of {!phys} reduce to one compare. *)
let phys_fast ~nwindows ~cwp r =
  if r < n_globals then r
  else if r < 16 then n_globals + (cwp * 16) + (r - 8)
  else if r < 24 then n_globals + (cwp * 16) + 8 + (r - 16)
  else
    let c = cwp + 1 in
    let c = if c >= nwindows then 0 else c in
    n_globals + (c * 16) + (r - 24)

let phys_fast_of st ~cwp r = phys_fast ~nwindows:st.nwindows ~cwp r

let get_reg st ~cwp r =
  if r = 0 then 0 else st.iregs.(phys_of st ~cwp r)

(* Journal a write of physical index [i] ([n_iregs + f] for an freg).
   Every architectural register write funnels through {!set_phys} /
   {!set_freg}, so the journal is complete; on overflow the state just
   degrades to full-scan comparison. *)
let[@inline] mark_dirty st i =
  if not st.dirty_all then begin
    let n = st.n_dirty in
    if n < Array.length st.dirty_idx then begin
      Array.unsafe_set st.dirty_idx n i;
      st.n_dirty <- n + 1
    end
    else st.dirty_all <- true
  end

let get_phys st p = if p = 0 then 0 else st.iregs.(p)

let set_phys st p v =
  if p <> 0 then begin
    st.iregs.(p) <- v;
    mark_dirty st p
  end

let set_freg st f v =
  st.fregs.(f) <- v;
  mark_dirty st (Array.length st.iregs + f)

let set_reg st ~cwp r v = if r <> 0 then set_phys st (phys_of st ~cwp r) v

(* icc accessors *)
let icc_n icc = icc land 8 <> 0
let icc_z icc = icc land 4 <> 0
let icc_v icc = icc land 2 <> 0
let icc_c icc = icc land 1 <> 0

let make_icc ~n ~z ~v ~c =
  (if n then 8 else 0)
  lor (if z then 4 else 0)
  lor (if v then 2 else 0)
  lor if c then 1 else 0

let copy st =
  let mem = Dts_mem.Memory.copy st.mem in
  {
    st with
    iregs = Array.copy st.iregs;
    fregs = Array.copy st.fregs;
    dirty_idx = Array.copy st.dirty_idx;
    mem;
    (* a fresh store hooked to the fresh memory: decodes must not be shared
       with (or invalidated by) the original *)
    predecode = Predecode.create mem;
  }

(* Monomorphic int-array equality: the polymorphic [=] routes every element
   through the generic comparator, which made the per-sync register check
   the hottest function in test mode. *)
let rec int_arrays_equal_from (a : int array) (b : int array) i n =
  i >= n
  || (Array.unsafe_get a i = Array.unsafe_get b i
     && int_arrays_equal_from a b (i + 1) n)

let int_arrays_equal (a : int array) (b : int array) =
  let n = Array.length a in
  Array.length b = n && int_arrays_equal_from a b 0 n

(** [blit_ints src dst] copies all of [src] over [dst] (equal lengths).
    [Array.blit] on an old-heap destination runs the per-element pointer
    write barrier because it cannot know the elements are immediates; this
    monomorphic loop compiles to plain stores, which matters for the
    register-file checkpoints taken at every block entry. *)
let blit_ints (src : int array) (dst : int array) =
  if Array.length src <> Array.length dst then invalid_arg "State.blit_ints";
  for i = 0 to Array.length src - 1 do
    Array.unsafe_set dst i (Array.unsafe_get src i)
  done

(** Register-and-flags equality (the cheap per-block test-mode check). *)
let regs_equal a b =
  a.pc = b.pc && a.icc = b.icc && a.cwp = b.cwp && a.wdepth = b.wdepth
  && a.wspill_sp = b.wspill_sp
  && int_arrays_equal a.iregs b.iregs
  && int_arrays_equal a.fregs b.fregs

(** Full state equality including memory (the expensive periodic check). *)
let equal a b = regs_equal a b && Dts_mem.Memory.equal a.mem b.mem

(* Compare [a] and [b] at the indices journalled in [j] (either state's
   journal; unjournalled indices are unchanged on both sides since the
   last {!dirty_clear}, when the states compared equal). *)
let rec dirty_entries_equal a b (j : int array) i n ni =
  i >= n
  ||
  let idx = Array.unsafe_get j i in
  (if idx < ni then Array.unsafe_get a.iregs idx = Array.unsafe_get b.iregs idx
   else
     Array.unsafe_get a.fregs (idx - ni) = Array.unsafe_get b.fregs (idx - ni))
  && dirty_entries_equal a b j (i + 1) n ni

(** Journalled {!regs_equal}: sound only under the sync discipline — the
    caller established [regs_equal a b] at the last {!dirty_clear} of both
    states and every register write since went through {!set_phys} /
    {!set_freg} / {!set_reg}. Falls back to the full scan when either
    journal overflowed. *)
let dirty_regs_equal a b =
  if a.dirty_all || b.dirty_all then regs_equal a b
  else
    a.pc = b.pc && a.icc = b.icc && a.cwp = b.cwp && a.wdepth = b.wdepth
    && a.wspill_sp = b.wspill_sp
    && let ni = Array.length a.iregs in
       dirty_entries_equal a b a.dirty_idx 0 a.n_dirty ni
       && dirty_entries_equal a b b.dirty_idx 0 b.n_dirty ni

(** Reset the dirty journal — call immediately after a successful
    comparison of this state against its co-simulation partner. *)
let dirty_clear st =
  st.n_dirty <- 0;
  st.dirty_all <- false

let pp_diff fmt (a, b) =
  let open Format in
  if a.pc <> b.pc then fprintf fmt "pc: %#x vs %#x@ " a.pc b.pc;
  if a.icc <> b.icc then fprintf fmt "icc: %d vs %d@ " a.icc b.icc;
  if a.cwp <> b.cwp then fprintf fmt "cwp: %d vs %d@ " a.cwp b.cwp;
  if a.wdepth <> b.wdepth then
    fprintf fmt "wdepth: %d vs %d@ " a.wdepth b.wdepth;
  Array.iteri
    (fun i v ->
      if v <> b.iregs.(i) then fprintf fmt "ireg[%d]: %d vs %d@ " i v b.iregs.(i))
    a.iregs;
  Array.iteri
    (fun i v ->
      if v <> b.fregs.(i) then fprintf fmt "freg[%d]: %#x vs %#x@ " i v b.fregs.(i))
    a.fregs;
  match Dts_mem.Memory.first_difference a.mem b.mem with
  | Some addr -> fprintf fmt "mem[%#x] differs@ " addr
  | None -> ()
