(** Architectural storage positions, the units of dependency testing in the
    Scheduler Unit (§3.2 of the paper).

    Dependencies are computed on {e physical} positions observed during
    execution: integer registers are physical indices (the window pointer
    value accompanies each instruction, §3.9), memory positions are the
    observed effective address and width (§3.9–3.10), and the condition-code
    register and window pointer are single renameable special positions
    (§3.8). *)

type t =
  | Int_reg of int  (** physical integer register index (never 0 = %g0) *)
  | Fp_reg of int
  | Flags  (** the integer condition codes *)
  | Win  (** cwp + window depth, written by save/restore *)
  | Mem of { addr : int; size : int }
  | Ren of { rk : int; rix : int }
      (** a renaming register (kind index, register index) — present so the
          Scheduler Unit can track dependencies through forwarded renamed
          sources (§3.2's running example rewrites [subcc r10,…] to
          [subcc r32,…]) *)
[@@deriving show { with_path = false }, eq]

(** Do two positions name overlapping state? Memory positions overlap when
    their byte ranges intersect; everything else is exact equality. *)
let overlaps a b =
  match (a, b) with
  | Int_reg x, Int_reg y -> x = y
  | Fp_reg x, Fp_reg y -> x = y
  | Flags, Flags | Win, Win -> true
  | Mem m1, Mem m2 ->
    m1.addr < m2.addr + m2.size && m2.addr < m1.addr + m1.size
  | Ren r1, Ren r2 -> r1.rk = r2.rk && r1.rix = r2.rix
  | ( (Int_reg _ | Fp_reg _ | Flags | Win | Mem _ | Ren _),
      (Int_reg _ | Fp_reg _ | Flags | Win | Mem _ | Ren _) ) ->
    false

let any_overlap xs ys =
  List.exists (fun x -> List.exists (overlaps x) ys) xs

let is_mem = function Mem _ -> true | _ -> false
