(** Conventional memory map shared by the loader, the tinyc code generator
    and the workloads. Nothing in the machine model depends on these values;
    they just keep the tooling consistent. *)

let text_base = 0x0000_1000
let data_base = 0x0010_0000
let heap_base = 0x0040_0000
let stack_top = 0x0080_0000

(** Register-window spill area used by the overflow/underflow trap
    microroutine (grows upward, 64 bytes per spilled window). *)
let wspill_base = 0x00F0_0000
