(** The SRISC instruction set.

    SRISC is the SPARC-V7-like ISA executed by every machine in this
    repository (golden model, Primary Processor, VLIW Engine, DIF). It keeps
    the SPARC features the DTSVLIW scheduler cares about — overlapping
    register windows with [save]/[restore], integer condition codes written
    by [cc]-setting ALU ops, conditional branches reading the flags, indirect
    jumps, software traps — and drops architectural delay slots (a fetch
    artefact orthogonal to trace scheduling; see DESIGN.md §2).

    Integer multiply/divide are included as ordinary ALU operations even
    though SPARC V7 only has multiply-step; the paper's feasible machine runs
    every functional unit at 1-cycle latency, which we follow. *)

(** Branch conditions over the integer condition codes (icc). *)
type cond =
  | A  (** always (unconditional; ignored by the scheduler) *)
  | E  (** equal: Z *)
  | NE  (** not equal: !Z *)
  | L  (** signed less: N xor V *)
  | LE  (** signed less-or-equal: Z or (N xor V) *)
  | G  (** signed greater *)
  | GE  (** signed greater-or-equal *)
  | LU  (** unsigned less (carry set) *)
  | LEU  (** unsigned less-or-equal *)
  | GU  (** unsigned greater *)
  | GEU  (** unsigned greater-or-equal (carry clear) *)
  | Neg  (** negative: N *)
  | Pos  (** positive: !N *)
[@@deriving show { with_path = false }, eq]

(** Integer ALU operations. [Sll]/[Srl]/[Sra] use the low 5 bits of the
    second operand. Division by zero yields 0 deterministically (documented
    substitution for the V7 trap). *)
type alu =
  | Add
  | Sub
  | And
  | Andn
  | Or
  | Orn
  | Xor
  | Xnor
  | Sll
  | Srl
  | Sra
  | Smul
  | Umul
  | Sdiv
  | Udiv
[@@deriving show { with_path = false }, eq]

(** Floating-point operations on single-precision registers. *)
type fpu = Fadd | Fsub | Fmul | Fdiv | Fitos | Fstoi
[@@deriving show { with_path = false }, eq]

(** Load widths; [Lsb]/[Lsh] sign-extend, [Lub]/[Luh] zero-extend. *)
type lsize = Lsb | Lub | Lsh | Luh | Lw
[@@deriving show { with_path = false }, eq]

(** Store widths. *)
type ssize = Sb | Sh | Sw [@@deriving show { with_path = false }, eq]

(** Second operand of three-address instructions: a register or a signed
    12-bit immediate. *)
type operand = Reg of int | Imm of int
[@@deriving show { with_path = false }, eq]

type t =
  | Alu of { op : alu; cc : bool; rs1 : int; op2 : operand; rd : int }
      (** [rd := rs1 op op2]; writes icc when [cc]. *)
  | Sethi of { imm : int; rd : int }  (** [rd := imm lsl 10] (imm22). *)
  | Load of { size : lsize; rs1 : int; op2 : operand; rd : int }
      (** [rd := mem[rs1 + op2]]. *)
  | Store of { size : ssize; rs : int; rs1 : int; op2 : operand }
      (** [mem[rs1 + op2] := rs]. *)
  | Branch of { cond : cond; target : int }
      (** PC-absolute conditional branch (targets resolved at assembly). *)
  | Call of { target : int }  (** [r15 := pc]; jump to [target]. *)
  | Jmpl of { rs1 : int; op2 : operand; rd : int }
      (** indirect jump-and-link: [rd := pc; pc := rs1 + op2]. *)
  | Save of { rs1 : int; op2 : operand; rd : int }
      (** window push: [rd(new window) := rs1(old) + op2]; cwp decremented. *)
  | Restore of { rs1 : int; op2 : operand; rd : int }
      (** window pop: [rd(old window) := rs1(new) + op2]; cwp incremented. *)
  | Fpop of { op : fpu; rs1 : int; rs2 : int; rd : int }
  | Fload of { rs1 : int; op2 : operand; rd : int }
  | Fstore of { rd : int; rs1 : int; op2 : operand }
  | Trap of int  (** software trap (non-schedulable). *)
  | Halt  (** stop the simulation (non-schedulable). *)
  | Nop
[@@deriving show { with_path = false }, eq]

(** Functional-unit classes of the VLIW Engine (§4.4: 4 integer, 2
    load/store, 2 floating-point, 2 branch in the feasible machine). *)
type fu_class = Fu_int | Fu_mem | Fu_fp | Fu_br
[@@deriving show { with_path = false }, eq]

let fu_class = function
  | Alu _ | Sethi _ | Save _ | Restore _ | Call _ -> Fu_int
  | Load _ | Store _ | Fload _ | Fstore _ -> Fu_mem
  | Fpop _ -> Fu_fp
  | Branch _ | Jmpl _ -> Fu_br
  | Trap _ | Halt | Nop -> Fu_int

(** Conditional or indirect control transfer — establishes branch tags and
    control dependencies (§3.8). [Branch {cond = A}] and [Call] are
    unconditional and are not control-dependence sources. *)
let is_conditional_ctrl = function
  | Branch { cond = A; _ } -> false
  | Branch _ | Jmpl _ -> true
  | _ -> false

(** Any instruction that can redirect the PC. *)
let is_ctrl = function
  | Branch _ | Call _ | Jmpl _ -> true
  | _ -> false

(** Instructions the Scheduler Unit never places in the scheduling list
    (§3.9): nops and unconditional direct branches. *)
let is_ignored_by_scheduler = function
  | Nop | Branch { cond = A; _ } -> true
  | _ -> false

(** Instructions too complex for the VLIW Engine; they flush the scheduling
    list and execute in the Primary Processor only (§3.9). *)
let is_non_schedulable = function Trap _ | Halt -> true | _ -> false

let is_load = function Load _ | Fload _ -> true | _ -> false
let is_store = function Store _ | Fstore _ -> true | _ -> false
let is_mem i = is_load i || is_store i

let lsize_bytes = function Lsb | Lub -> 1 | Lsh | Luh -> 2 | Lw -> 4
let ssize_bytes = function Sb -> 1 | Sh -> 2 | Sw -> 4

(** Encoded instruction size in instruction memory. *)
let bytes = 4

(** Decoded instruction size used for VLIW Cache capacity accounting
    (Table 1: 6 bytes). *)
let decoded_bytes = 6

(** Functional-unit latencies in cycles. The paper's experiments use 1 for
    everything (Table 1, §4.4); the companion study [14] examines multicycle
    instructions, which these model: a producer with latency L must execute
    at least L long instructions above any consumer. *)
type latencies = {
  l_load : int;
  l_mul : int;
  l_div : int;
  l_fp : int;
}

let unit_latencies = { l_load = 1; l_mul = 1; l_div = 1; l_fp = 1 }

(** A representative multicycle model for the [14]-style experiments. *)
let multicycle_latencies = { l_load = 2; l_mul = 3; l_div = 8; l_fp = 3 }

let latency lat = function
  | Load _ | Fload _ -> lat.l_load
  | Alu { op = Smul | Umul; _ } -> lat.l_mul
  | Alu { op = Sdiv | Udiv; _ } -> lat.l_div
  | Fpop _ -> lat.l_fp
  | Alu _ | Sethi _ | Store _ | Fstore _ | Branch _ | Call _ | Jmpl _
  | Save _ | Restore _ | Trap _ | Halt | Nop ->
    1

let max_latency lat = max (max lat.l_load lat.l_mul) (max lat.l_div lat.l_fp)
