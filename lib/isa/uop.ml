(** Packed, operand-resolved micro-ops for the sequential fast path.

    A micro-op is a single immediate [int] — one word, never boxed — that
    caches everything {!Semantics.exec_into} needs to execute an
    instruction without touching the [Instr.t] constructor: a flat opcode
    (variant tags and sub-fields collapsed into one dispatch code), the
    register fields, and a pre-resolved 32-bit immediate. Control-transfer
    targets are stored {e relative to the instruction's own address} so the
    packed form fits 32 signed bits even for targets near the top of the
    address space; [Sethi]'s shift is pre-applied at pack time.

    Layout (low to high):
    - bits 0..31: signed 32-bit immediate / displacement payload
    - bits 32..36: rs1
    - bits 37..41: rs2
    - bits 42..46: rd (for stores: the {e data} register)
    - bit 47: operand-2-is-immediate flag
    - bits 48..: opcode *)

let rs1_shift = 32
let rs2_shift = 37
let rd_shift = 42
let imm_flag = 1 lsl 47
let opc_shift = 48

(* Flat opcode space, class-structured: [opc lsr 4] is the instruction
   class and [opc land 15] the per-class operation code, kept in
   {!Encode.alu_code} / [lsize_code] / [ssize_code] / [cond_code] /
   [fpu_code] order. {!Semantics.exec_into} dispatches on the class with a
   dense 7-way match (a jump table), then decodes the low four bits
   arithmetically — no secondary branch chains. The cc variant of an ALU op
   is a class bit: class 0 is alu, class 1 is alu-with-cc, same low-bit op
   code. *)
let u_alu = 0x00 (* 0x00..0x0E: alu without cc *)
let u_alu_cc = 0x10 (* 0x10..0x1E: alu with cc, same low-bit op code *)
let u_last_alu = 0x1E
let u_load = 0x20 (* + lsize_code: Lsb Lub Lsh Luh Lw *)
let u_last_load = 0x24
let u_store = 0x30 (* + ssize_code: Sb Sh Sw *)
let u_last_store = 0x32
let u_branch = 0x40 (* + cond_code; cond A is [u_branch] itself *)
let u_last_branch = 0x4C
let u_fpop = 0x50 (* + fpu_code: Fadd Fsub Fmul Fdiv Fitos Fstoi *)
let u_last_fpop = 0x55

(* Class 6: singleton operations, distinguished by the low four bits. *)
let u_sethi = 0x60
let u_call = 0x61
let u_jmpl = 0x62
let u_save = 0x63
let u_restore = 0x64
let u_fload = 0x65
let u_fstore = 0x66
let u_trap = 0x67
let u_halt = 0x68
let u_nop = 0x69

(** Sentinel for an empty pre-decode slot; no packed op is ever negative. *)
let none = -1

let opcode u = u lsr opc_shift
let rd u = (u lsr rd_shift) land 31
let rs1 u = (u lsr rs1_shift) land 31
let rs2 u = (u lsr rs2_shift) land 31
let is_imm u = u land imm_flag <> 0

(** The immediate payload, sign-extended from 32 bits. *)
let imm u =
  let shift = Sys.int_size - 32 in
  (u lsl shift) asr shift

let norm32 v =
  let shift = Sys.int_size - 32 in
  (v lsl shift) asr shift

let pack ~opc ~rd:d ~rs1:a ~rs2:b ~is_imm:i ~imm:v =
  (opc lsl opc_shift)
  lor (if i then imm_flag else 0)
  lor (d lsl rd_shift)
  lor (b lsl rs2_shift)
  lor (a lsl rs1_shift)
  lor (v land 0xFFFFFFFF)

let pack_op2 ~opc ~rd ~rs1 (op2 : Instr.operand) =
  match op2 with
  | Reg r2 -> pack ~opc ~rd ~rs1 ~rs2:r2 ~is_imm:false ~imm:0
  | Imm v -> pack ~opc ~rd ~rs1 ~rs2:0 ~is_imm:true ~imm:v

(** Pack [instr] sitting at address [pc] (targets become displacements). *)
let of_instr ~pc (instr : Instr.t) =
  match instr with
  | Nop -> pack ~opc:u_nop ~rd:0 ~rs1:0 ~rs2:0 ~is_imm:false ~imm:0
  | Halt -> pack ~opc:u_halt ~rd:0 ~rs1:0 ~rs2:0 ~is_imm:false ~imm:0
  | Trap n -> pack ~opc:u_trap ~rd:0 ~rs1:0 ~rs2:0 ~is_imm:false ~imm:n
  | Alu { op; cc; rs1; op2; rd } ->
    let opc = (if cc then u_alu_cc else u_alu) + Encode.alu_code op in
    pack_op2 ~opc ~rd ~rs1 op2
  | Sethi { imm; rd } ->
    pack ~opc:u_sethi ~rd ~rs1:0 ~rs2:0 ~is_imm:true ~imm:(norm32 (imm lsl 10))
  | Load { size; rs1; op2; rd } ->
    pack_op2 ~opc:(u_load + Encode.lsize_code size) ~rd ~rs1 op2
  | Store { size; rs; rs1; op2 } ->
    pack_op2 ~opc:(u_store + Encode.ssize_code size) ~rd:rs ~rs1 op2
  | Branch { cond; target } ->
    pack
      ~opc:(u_branch + Encode.cond_code cond)
      ~rd:0 ~rs1:0 ~rs2:0 ~is_imm:true ~imm:(target - pc)
  | Call { target } ->
    pack ~opc:u_call ~rd:0 ~rs1:0 ~rs2:0 ~is_imm:true ~imm:(target - pc)
  | Jmpl { rs1; op2; rd } -> pack_op2 ~opc:u_jmpl ~rd ~rs1 op2
  | Save { rs1; op2; rd } -> pack_op2 ~opc:u_save ~rd ~rs1 op2
  | Restore { rs1; op2; rd } -> pack_op2 ~opc:u_restore ~rd ~rs1 op2
  | Fpop { op; rs1; rs2; rd } ->
    pack ~opc:(u_fpop + Encode.fpu_code op) ~rd ~rs1 ~rs2 ~is_imm:false ~imm:0
  | Fload { rs1; op2; rd } -> pack_op2 ~opc:u_fload ~rd ~rs1 op2
  | Fstore { rd; rs1; op2 } -> pack_op2 ~opc:u_fstore ~rd ~rs1 op2

(** Execute-stage latency without materialising the [Instr.t]. Mirrors
    {!Instr.latency}. *)
let latency (lat : Instr.latencies) u =
  let opc = opcode u in
  match opc lsr 4 with
  | 0 | 1 ->
    (* Smul=11 Umul=12 Sdiv=13 Udiv=14 in Encode.alu_code order *)
    let code = opc land 15 in
    if code < 11 then 1 else if code <= 12 then lat.l_mul else lat.l_div
  | 2 -> lat.l_load
  | 5 -> lat.l_fp
  | 6 -> if opc = u_fload then lat.l_load else 1
  | _ -> 1
