(** Binary instruction encoding.

    Instructions are fixed 32-bit words. Branch and call targets are stored
    as signed word displacements relative to the instruction's own address,
    so decoding needs the PC. The layout is SRISC's own (it does not mimic
    SPARC bit-for-bit); what matters to the machine model is that programs
    exist as binary images in simulated memory, fetched through the
    instruction cache. *)

exception Decode_error of { pc : int; word : int; reason : string }

let signed v bits =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let field v lo bits = (v lsr lo) land ((1 lsl bits) - 1)

let check name v bits =
  if v < 0 || v lsr bits <> 0 then
    invalid_arg (Printf.sprintf "Encode: %s = %d out of %d bits" name v bits)

let check_signed name v bits =
  let lim = 1 lsl (bits - 1) in
  if v < -lim || v >= lim then
    invalid_arg (Printf.sprintf "Encode: %s = %d out of signed %d bits" name v bits)

let alu_code : Instr.alu -> int = function
  | Add -> 0
  | Sub -> 1
  | And -> 2
  | Andn -> 3
  | Or -> 4
  | Orn -> 5
  | Xor -> 6
  | Xnor -> 7
  | Sll -> 8
  | Srl -> 9
  | Sra -> 10
  | Smul -> 11
  | Umul -> 12
  | Sdiv -> 13
  | Udiv -> 14

let alu_of_code = function
  | 0 -> Instr.Add
  | 1 -> Sub
  | 2 -> And
  | 3 -> Andn
  | 4 -> Or
  | 5 -> Orn
  | 6 -> Xor
  | 7 -> Xnor
  | 8 -> Sll
  | 9 -> Srl
  | 10 -> Sra
  | 11 -> Smul
  | 12 -> Umul
  | 13 -> Sdiv
  | 14 -> Udiv
  | n -> invalid_arg (Printf.sprintf "alu_of_code %d" n)

let cond_code : Instr.cond -> int = function
  | A -> 0
  | E -> 1
  | NE -> 2
  | L -> 3
  | LE -> 4
  | G -> 5
  | GE -> 6
  | LU -> 7
  | LEU -> 8
  | GU -> 9
  | GEU -> 10
  | Neg -> 11
  | Pos -> 12

let cond_of_code = function
  | 0 -> Instr.A
  | 1 -> E
  | 2 -> NE
  | 3 -> L
  | 4 -> LE
  | 5 -> G
  | 6 -> GE
  | 7 -> LU
  | 8 -> LEU
  | 9 -> GU
  | 10 -> GEU
  | 11 -> Neg
  | 12 -> Pos
  | n -> invalid_arg (Printf.sprintf "cond_of_code %d" n)

let lsize_code : Instr.lsize -> int = function
  | Lsb -> 0
  | Lub -> 1
  | Lsh -> 2
  | Luh -> 3
  | Lw -> 4

let lsize_of_code = function
  | 0 -> Instr.Lsb
  | 1 -> Lub
  | 2 -> Lsh
  | 3 -> Luh
  | 4 -> Lw
  | n -> invalid_arg (Printf.sprintf "lsize_of_code %d" n)

let ssize_code : Instr.ssize -> int = function Sb -> 0 | Sh -> 1 | Sw -> 2

let ssize_of_code = function
  | 0 -> Instr.Sb
  | 1 -> Sh
  | 2 -> Sw
  | n -> invalid_arg (Printf.sprintf "ssize_of_code %d" n)

let fpu_code : Instr.fpu -> int = function
  | Fadd -> 0
  | Fsub -> 1
  | Fmul -> 2
  | Fdiv -> 3
  | Fitos -> 4
  | Fstoi -> 5

let fpu_of_code = function
  | 0 -> Instr.Fadd
  | 1 -> Fsub
  | 2 -> Fmul
  | 3 -> Fdiv
  | 4 -> Fitos
  | 5 -> Fstoi
  | n -> invalid_arg (Printf.sprintf "fpu_of_code %d" n)

let op2_bits (op2 : Instr.operand) =
  match op2 with
  | Reg r ->
    check "op2 reg" r 5;
    r
  | Imm v ->
    check_signed "op2 imm" v 12;
    (1 lsl 12) lor (v land 0xFFF)

let op2_of_bits ~i ~imm12 =
  if i = 0 then Instr.Reg (imm12 land 0x1F) else Instr.Imm (signed imm12 12)

let disp ~pc ~target bits =
  let d = (target - pc) asr 2 in
  check_signed "displacement" d bits;
  d land ((1 lsl bits) - 1)

(** [encode ~pc instr] is the 32-bit word for [instr] placed at [pc]. *)
let encode ~pc (instr : Instr.t) =
  let rfield name r =
    check name r 5;
    r
  in
  match instr with
  | Nop -> 0
  | Alu { op; cc; rs1; op2; rd } ->
    (1 lsl 28)
    lor (alu_code op lsl 24)
    lor ((if cc then 1 else 0) lsl 23)
    lor (rfield "rs1" rs1 lsl 18)
    lor (rfield "rd" rd lsl 13)
    lor op2_bits op2
  | Sethi { imm; rd } ->
    check "imm22" imm 22;
    (2 lsl 28) lor (rfield "rd" rd lsl 23) lor imm
  | Load { size; rs1; op2; rd } ->
    (3 lsl 28)
    lor (lsize_code size lsl 25)
    lor (rfield "rs1" rs1 lsl 18)
    lor (rfield "rd" rd lsl 13)
    lor op2_bits op2
  | Store { size; rs; rs1; op2 } ->
    (4 lsl 28)
    lor (ssize_code size lsl 25)
    lor (rfield "rs1" rs1 lsl 18)
    lor (rfield "rs" rs lsl 13)
    lor op2_bits op2
  | Branch { cond; target } ->
    (5 lsl 28) lor (cond_code cond lsl 24) lor disp ~pc ~target 22
  | Call { target } -> (6 lsl 28) lor disp ~pc ~target 28
  | Jmpl { rs1; op2; rd } ->
    (7 lsl 28)
    lor (rfield "rs1" rs1 lsl 18)
    lor (rfield "rd" rd lsl 13)
    lor op2_bits op2
  | Save { rs1; op2; rd } ->
    (8 lsl 28)
    lor (rfield "rs1" rs1 lsl 18)
    lor (rfield "rd" rd lsl 13)
    lor op2_bits op2
  | Restore { rs1; op2; rd } ->
    (9 lsl 28)
    lor (rfield "rs1" rs1 lsl 18)
    lor (rfield "rd" rd lsl 13)
    lor op2_bits op2
  | Fpop { op; rs1; rs2; rd } ->
    (10 lsl 28)
    lor (fpu_code op lsl 25)
    lor (rfield "rs1" rs1 lsl 18)
    lor (rfield "rd" rd lsl 13)
    lor (rfield "rs2" rs2 lsl 5)
  | Fload { rs1; op2; rd } ->
    (11 lsl 28)
    lor (rfield "rs1" rs1 lsl 18)
    lor (rfield "rd" rd lsl 13)
    lor op2_bits op2
  | Fstore { rd; rs1; op2 } ->
    (12 lsl 28)
    lor (rfield "rs1" rs1 lsl 18)
    lor (rfield "rd" rd lsl 13)
    lor op2_bits op2
  | Trap n ->
    check "trap" n 8;
    (13 lsl 28) lor n
  | Halt -> 14 lsl 28

(** [decode ~pc word] inverts {!encode}. Raises {!Decode_error} on an
    unassigned opcode or subfield. *)
let decode ~pc word =
  let op = field word 28 4 in
  let rs1 = field word 18 5 in
  let rd = field word 13 5 in
  let i = field word 12 1 in
  let imm12 = field word 0 12 in
  let op2 () = op2_of_bits ~i ~imm12 in
  let bad reason = raise (Decode_error { pc; word; reason }) in
  let sub f n code =
    try f code with Invalid_argument _ -> bad (n ^ " subfield")
  in
  match op with
  | 0 -> Instr.Nop
  | 1 ->
    Alu
      {
        op = sub alu_of_code "alu" (field word 24 4);
        cc = field word 23 1 = 1;
        rs1;
        op2 = op2 ();
        rd;
      }
  | 2 -> Sethi { imm = field word 0 22; rd = field word 23 5 }
  | 3 ->
    Load
      { size = sub lsize_of_code "lsize" (field word 25 3); rs1; op2 = op2 (); rd }
  | 4 ->
    Store
      { size = sub ssize_of_code "ssize" (field word 25 3); rs = rd; rs1; op2 = op2 () }
  | 5 ->
    Branch
      {
        cond = sub cond_of_code "cond" (field word 24 4);
        target = pc + (signed (field word 0 22) 22 * 4);
      }
  | 6 -> Call { target = pc + (signed (field word 0 28) 28 * 4) }
  | 7 -> Jmpl { rs1; op2 = op2 (); rd }
  | 8 -> Save { rs1; op2 = op2 (); rd }
  | 9 -> Restore { rs1; op2 = op2 (); rd }
  | 10 ->
    Fpop
      { op = sub fpu_of_code "fpu" (field word 25 3); rs1; rs2 = field word 5 5; rd }
  | 11 -> Fload { rs1; op2 = op2 (); rd }
  | 12 -> Fstore { rd; rs1; op2 = op2 () }
  | 13 -> Trap (field word 0 8)
  | 14 -> Halt
  | _ -> bad "opcode"

(** Fetch and decode the instruction at [addr]. *)
let fetch mem ~addr = decode ~pc:addr (Dts_mem.Memory.read_u32 mem addr)
