(** One-instruction operational semantics of SRISC.

    Every engine in the repository executes instructions through this module:
    the golden test machine, the Primary Processor, and the VLIW Engine. The
    VLIW Engine needs effects {e described} rather than applied (it buffers
    all writes of a long instruction and redirects renamed destinations), so
    {!exec} is split from {!apply}.

    [exec] takes the window pointer explicitly: in VLIW mode an instruction
    executes with the cwp value observed when it was scheduled, which may
    differ from the architectural cwp at the start of its long instruction
    (§3.9 — "the value of the cwp register accompanies the instructions"). *)

exception Fatal_fault of string
(** An unrecoverable program fault (e.g. a misaligned access replayed by the
    Primary Processor, or window underflow with an empty spill stack). *)

type trap =
  | Window_overflow
  | Window_underflow
  | Misaligned of int
  | Software of int
[@@deriving show { with_path = false }, eq]

type write =
  | W_phys of int * int  (** physical integer register := value *)
  | W_freg of int * int
  | W_icc of int
  | W_win of int * int  (** cwp := v1, window depth := v2 *)
[@@deriving show { with_path = false }, eq]

type outcome = {
  writes : write list;
  store : (int * int * int) option;  (** addr, size, value *)
  load : (int * int) option;  (** addr, size *)
  next_pc : int;
  taken : bool;  (** control transfer took its target *)
  trap : trap option;
}

let norm32 v =
  let shift = Sys.int_size - 32 in
  (v lsl shift) asr shift

let u32 v = v land 0xFFFFFFFF

let eval_cond icc cond =
  let n = State.icc_n icc
  and z = State.icc_z icc
  and v = State.icc_v icc
  and c = State.icc_c icc in
  let ( <> ) = Stdlib.( <> ) in
  match (cond : Instr.cond) with
  | A -> true
  | E -> z
  | NE -> not z
  | L -> n <> v
  | LE -> z || n <> v
  | G -> not (z || n <> v)
  | GE -> not (n <> v)
  | LU -> c
  | LEU -> c || z
  | GU -> not (c || z)
  | GEU -> not c
  | Neg -> n
  | Pos -> not n

let alu_result (op : Instr.alu) a b =
  let sh = b land 31 in
  match op with
  | Add -> norm32 (a + b)
  | Sub -> norm32 (a - b)
  | And -> a land b
  | Andn -> a land lnot b
  | Or -> a lor b
  | Orn -> norm32 (a lor lnot b)
  | Xor -> a lxor b
  | Xnor -> norm32 (lnot (a lxor b))
  | Sll -> norm32 (a lsl sh)
  | Srl -> norm32 (u32 a lsr sh)
  | Sra -> norm32 a asr sh
  | Smul | Umul -> norm32 (a * b)
  | Sdiv -> if b = 0 then 0 else norm32 (a / b)
  | Udiv -> if b = 0 then 0 else norm32 (u32 a / u32 b)

let alu_icc (op : Instr.alu) a b r =
  let n = r < 0 and z = r = 0 in
  match op with
  | Add ->
    let c = u32 a + u32 b > 0xFFFFFFFF in
    let v = a >= 0 = (b >= 0) && r >= 0 <> (a >= 0) in
    State.make_icc ~n ~z ~v ~c
  | Sub ->
    let c = u32 a < u32 b in
    let v = a >= 0 <> (b >= 0) && r >= 0 <> (a >= 0) in
    State.make_icc ~n ~z ~v ~c
  | And | Andn | Or | Orn | Xor | Xnor | Sll | Srl | Sra | Smul | Umul | Sdiv
  | Udiv ->
    State.make_icc ~n ~z ~v:false ~c:false

(* float register helpers: registers hold raw IEEE-754 single bit patterns *)
let bits_to_float b = Int32.float_of_bits (Int32.of_int b)
let float_to_bits f = norm32 (Int32.to_int (Int32.bits_of_float f))

let fpu_result (op : Instr.fpu) a b =
  match op with
  | Fadd -> float_to_bits (bits_to_float a +. bits_to_float b)
  | Fsub -> float_to_bits (bits_to_float a -. bits_to_float b)
  | Fmul -> float_to_bits (bits_to_float a *. bits_to_float b)
  | Fdiv -> float_to_bits (bits_to_float a /. bits_to_float b)
  | Fitos -> float_to_bits (float_of_int a)
  | Fstoi ->
    let f = bits_to_float a in
    if Float.is_nan f then 0 else norm32 (int_of_float f)

(* Window spill/fill microroutine (DESIGN.md §2): a frame's 16-register
   window region is spilled when a save would clobber live data, and
   refilled LIFO on the matching underflowing restore. Both the golden
   machine and the DTSVLIW run exactly this routine, so trap behaviour is
   observationally identical. *)

let spilled_frames st = (st.State.wspill_sp - Layout.wspill_base) / 64
let resident_depth st = st.State.wdepth - spilled_frames st

let region_base ~nwindows w = State.n_globals + (w mod nwindows * 16)

let spill_window st w =
  let base = region_base ~nwindows:st.State.nwindows w in
  for k = 0 to 15 do
    Dts_mem.Memory.write st.State.mem
      ~addr:(st.State.wspill_sp + (k * 4))
      ~size:4 st.State.iregs.(base + k)
  done;
  st.State.wspill_sp <- st.State.wspill_sp + 64

let fill_window st w =
  if st.State.wspill_sp <= Layout.wspill_base then
    raise (Fatal_fault "window underflow with empty spill stack");
  st.State.wspill_sp <- st.State.wspill_sp - 64;
  let base = region_base ~nwindows:st.State.nwindows w in
  for k = 0 to 15 do
    st.State.iregs.(base + k) <-
      Dts_mem.Memory.read st.State.mem
        ~addr:(st.State.wspill_sp + (k * 4))
        ~size:4 ~signed:true
  done

let no_effect ~pc =
  {
    writes = [];
    store = None;
    load = None;
    next_pc = pc + Instr.bytes;
    taken = false;
    trap = None;
  }

let trap_outcome ~pc t = { (no_effect ~pc) with trap = Some t }

(** Read overrides: how the VLIW Engine forwards renamed sources (§3.2) and
    serves loads from the data store list (§3.11) without the sequential
    engines paying for it. Overrides are keyed directly by physical integer
    register index / fp register index / the flags, so probing one is an
    integer comparison — no [Storage.t] value is boxed per register read.
    [None] from an override means "read the architectural state". *)
type read_ov = {
  ov_phys : int -> int option;  (** physical integer register index *)
  ov_freg : int -> int option;
  ov_icc : unit -> int option;
  ov_mem : addr:int -> size:int -> signed:bool -> int option;
}

(** The identity override (reads architectural state only). Statically
    allocated: the sequential engines' [exec] calls share it, so the
    default costs nothing per instruction. *)
let no_ov =
  {
    ov_phys = (fun _ -> None);
    ov_freg = (fun _ -> None);
    ov_icc = (fun () -> None);
    ov_mem = (fun ~addr:_ ~size:_ ~signed:_ -> None);
  }

(** Describe the effects of executing [instr] at [pc] with window pointer
    [cwp], reading the current state (including memory for loads) but
    mutating nothing. A [Some _] trap means the instruction did not execute;
    {!service_and_exec} runs the microroutine and retries. *)
let exec ?(ov = no_ov) st ~cwp ~pc (instr : Instr.t) =
  let reg r =
    if r = 0 then 0
    else
      let p = State.phys_of st ~cwp r in
      match ov.ov_phys p with Some v -> v | None -> st.State.iregs.(p)
  in
  let freg f =
    match ov.ov_freg f with Some v -> v | None -> st.State.fregs.(f)
  in
  let icc () = match ov.ov_icc () with Some v -> v | None -> st.State.icc in
  let opval (op2 : Instr.operand) =
    match op2 with Reg r -> reg r | Imm i -> i
  in
  let wreg r v = if r = 0 then [] else [ W_phys (State.phys_of st ~cwp r, v) ] in
  match instr with
  | Nop -> no_effect ~pc
  | Halt -> { (no_effect ~pc) with next_pc = pc }
  | Trap n -> trap_outcome ~pc (Software n)
  | Alu { op; cc; rs1; op2; rd } ->
    let a = reg rs1 and b = opval op2 in
    let r = alu_result op a b in
    let writes = wreg rd r in
    let writes = if cc then W_icc (alu_icc op a b r) :: writes else writes in
    { (no_effect ~pc) with writes }
  | Sethi { imm; rd } ->
    { (no_effect ~pc) with writes = wreg rd (norm32 (imm lsl 10)) }
  | Load { size; rs1; op2; rd } ->
    let addr = u32 (reg rs1 + opval op2) in
    let bytes = Instr.lsize_bytes size in
    if addr land (bytes - 1) <> 0 then trap_outcome ~pc (Misaligned addr)
    else
      let signed = match size with Lsb | Lsh | Lw -> true | Lub | Luh -> false in
      let v =
        match ov.ov_mem ~addr ~size:bytes ~signed with
        | Some v -> v
        | None -> Dts_mem.Memory.read st.State.mem ~addr ~size:bytes ~signed
      in
      { (no_effect ~pc) with writes = wreg rd v; load = Some (addr, bytes) }
  | Store { size; rs; rs1; op2 } ->
    let addr = u32 (reg rs1 + opval op2) in
    let bytes = Instr.ssize_bytes size in
    if addr land (bytes - 1) <> 0 then trap_outcome ~pc (Misaligned addr)
    else { (no_effect ~pc) with store = Some (addr, bytes, reg rs) }
  | Fload { rs1; op2; rd } ->
    let addr = u32 (reg rs1 + opval op2) in
    if addr land 3 <> 0 then trap_outcome ~pc (Misaligned addr)
    else
      let v =
        match ov.ov_mem ~addr ~size:4 ~signed:true with
        | Some v -> v
        | None -> Dts_mem.Memory.read st.State.mem ~addr ~size:4 ~signed:true
      in
      { (no_effect ~pc) with writes = [ W_freg (rd, v) ]; load = Some (addr, 4) }
  | Fstore { rd; rs1; op2 } ->
    let addr = u32 (reg rs1 + opval op2) in
    if addr land 3 <> 0 then trap_outcome ~pc (Misaligned addr)
    else { (no_effect ~pc) with store = Some (addr, 4, freg rd) }
  | Fpop { op; rs1; rs2; rd } ->
    let r = fpu_result op (freg rs1) (freg rs2) in
    { (no_effect ~pc) with writes = [ W_freg (rd, r) ] }
  | Branch { cond; target } ->
    let taken = eval_cond (icc ()) cond in
    {
      (no_effect ~pc) with
      next_pc = (if taken then target else pc + Instr.bytes);
      taken;
    }
  | Call { target } ->
    {
      (no_effect ~pc) with
      writes = wreg 15 pc;
      next_pc = target;
      taken = true;
    }
  | Jmpl { rs1; op2; rd } ->
    let target = u32 (reg rs1 + opval op2) in
    if target land 3 <> 0 then trap_outcome ~pc (Misaligned target)
    else { (no_effect ~pc) with writes = wreg rd pc; next_pc = target; taken = true }
  | Save { rs1; op2; rd } ->
    if resident_depth st >= st.State.nwindows - 2 then
      trap_outcome ~pc Window_overflow
    else
      let v = norm32 (reg rs1 + opval op2) in
      let new_cwp = (cwp - 1 + st.State.nwindows) mod st.State.nwindows in
      let writes = [ W_win (new_cwp, st.State.wdepth + 1) ] in
      let writes =
        if rd = 0 then writes
        else W_phys (State.phys ~nwindows:st.State.nwindows ~cwp:new_cwp rd, v) :: writes
      in
      { (no_effect ~pc) with writes }
  | Restore { rs1; op2; rd } ->
    if resident_depth st = 0 then trap_outcome ~pc Window_underflow
    else
      let v = norm32 (reg rs1 + opval op2) in
      let new_cwp = (cwp + 1) mod st.State.nwindows in
      let writes = [ W_win (new_cwp, st.State.wdepth - 1) ] in
      let writes =
        if rd = 0 then writes
        else W_phys (State.phys ~nwindows:st.State.nwindows ~cwp:new_cwp rd, v) :: writes
      in
      { (no_effect ~pc) with writes }

(** Apply the register/flag/window writes of an outcome. *)
let apply_writes st writes =
  List.iter
    (fun w ->
      match w with
      | W_phys (p, v) -> State.set_phys st p v
      | W_freg (f, v) -> st.State.fregs.(f) <- v
      | W_icc v -> st.State.icc <- v
      | W_win (cwp, depth) ->
        st.State.cwp <- cwp;
        st.State.wdepth <- depth)
    writes

(** Apply a full outcome: writes, the memory store, and the PC. *)
let apply st out =
  apply_writes st out.writes;
  (match out.store with
  | Some (addr, size, v) -> Dts_mem.Memory.write st.State.mem ~addr ~size v
  | None -> ());
  st.State.pc <- out.next_pc;
  st.State.instret <- st.State.instret + 1

(** Service the trap of a previously returned outcome, then re-execute.
    Used by the sequential engines; the VLIW Engine instead turns traps into
    block exceptions (§3.11). Raises {!Fatal_fault} for faults that have no
    microroutine. *)
let service_and_exec st ~cwp ~pc instr trap =
  (match trap with
  | Window_overflow ->
    let new_cwp = (cwp - 1 + st.State.nwindows) mod st.State.nwindows in
    spill_window st new_cwp;
    st.State.traps <- st.State.traps + 1
  | Window_underflow ->
    (* refill the ins-provider region of the frame being returned to:
       the restore enters window cwp+1, whose ins live in region cwp+2 *)
    fill_window st ((cwp + 2) mod st.State.nwindows);
    st.State.traps <- st.State.traps + 1
  | Software _ -> st.State.traps <- st.State.traps + 1
  | Misaligned a ->
    raise (Fatal_fault (Printf.sprintf "misaligned access at %#x (pc=%#x)" a pc)));
  match trap with
  | Software _ -> no_effect ~pc (* software traps are accounted no-ops *)
  | Window_overflow | Window_underflow -> (
    let out = exec st ~cwp ~pc instr in
    match out.trap with
    | None -> out
    | Some t ->
      raise
        (Fatal_fault
           (Printf.sprintf "trap %s persists after service at pc=%#x"
              (show_trap t) pc)))
  | Misaligned _ -> assert false
