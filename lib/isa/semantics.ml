(** One-instruction operational semantics of SRISC.

    Every engine in the repository executes instructions through this module:
    the golden test machine, the Primary Processor, and the VLIW Engine. The
    VLIW Engine needs effects {e described} rather than applied (it buffers
    all writes of a long instruction and redirects renamed destinations), so
    {!exec} is split from {!apply}.

    [exec] takes the window pointer explicitly: in VLIW mode an instruction
    executes with the cwp value observed when it was scheduled, which may
    differ from the architectural cwp at the start of its long instruction
    (§3.9 — "the value of the cwp register accompanies the instructions"). *)

exception Fatal_fault of string
(** An unrecoverable program fault (e.g. a misaligned access replayed by the
    Primary Processor, or window underflow with an empty spill stack). *)

type trap =
  | Window_overflow
  | Window_underflow
  | Misaligned of int
  | Software of int
[@@deriving show { with_path = false }, eq]

type write =
  | W_phys of int * int  (** physical integer register := value *)
  | W_freg of int * int
  | W_icc of int
  | W_win of int * int  (** cwp := v1, window depth := v2 *)
[@@deriving show { with_path = false }, eq]

type outcome = {
  writes : write list;
  store : (int * int * int) option;  (** addr, size, value *)
  load : (int * int) option;  (** addr, size *)
  next_pc : int;
  taken : bool;  (** control transfer took its target *)
  trap : trap option;
}

let norm32 v =
  let shift = Sys.int_size - 32 in
  (v lsl shift) asr shift

let u32 v = v land 0xFFFFFFFF

let eval_cond icc cond =
  let n = State.icc_n icc
  and z = State.icc_z icc
  and v = State.icc_v icc
  and c = State.icc_c icc in
  let ( <> ) = Stdlib.( <> ) in
  match (cond : Instr.cond) with
  | A -> true
  | E -> z
  | NE -> not z
  | L -> n <> v
  | LE -> z || n <> v
  | G -> not (z || n <> v)
  | GE -> not (n <> v)
  | LU -> c
  | LEU -> c || z
  | GU -> not (c || z)
  | GEU -> not c
  | Neg -> n
  | Pos -> not n

let alu_result (op : Instr.alu) a b =
  let sh = b land 31 in
  match op with
  | Add -> norm32 (a + b)
  | Sub -> norm32 (a - b)
  | And -> a land b
  | Andn -> a land lnot b
  | Or -> a lor b
  | Orn -> norm32 (a lor lnot b)
  | Xor -> a lxor b
  | Xnor -> norm32 (lnot (a lxor b))
  | Sll -> norm32 (a lsl sh)
  | Srl -> norm32 (u32 a lsr sh)
  | Sra -> norm32 a asr sh
  | Smul | Umul -> norm32 (a * b)
  | Sdiv -> if b = 0 then 0 else norm32 (a / b)
  | Udiv -> if b = 0 then 0 else norm32 (u32 a / u32 b)

(* Int-coded twins of {!alu_result} / {!alu_icc} / {!eval_cond} operating
   directly on the {!Encode.alu_code} / [cond_code] numbering cached in
   packed uops: the fast path dispatches once on the code instead of
   rebuilding the variant and matching it again. Order must match
   {!Encode.alu_code}: Add Sub And Andn Or Orn Xor Xnor Sll Srl Sra Smul
   Umul Sdiv Udiv. *)
let[@inline] alu_result_code code a b =
  match code with
  | 0 -> norm32 (a + b)
  | 1 -> norm32 (a - b)
  | 2 -> a land b
  | 3 -> a land lnot b
  | 4 -> a lor b
  | 5 -> norm32 (a lor lnot b)
  | 6 -> a lxor b
  | 7 -> norm32 (lnot (a lxor b))
  | 8 -> norm32 (a lsl (b land 31))
  | 9 -> norm32 (u32 a lsr (b land 31))
  | 10 -> norm32 a asr (b land 31)
  | 11 | 12 -> norm32 (a * b)
  | 13 -> if b = 0 then 0 else norm32 (a / b)
  | _ -> if b = 0 then 0 else norm32 (u32 a / u32 b)

let[@inline] alu_icc_code code a b r =
  let n = r < 0 and z = r = 0 in
  if code = 0 then
    let c = u32 a + u32 b > 0xFFFFFFFF in
    let v = a >= 0 = (b >= 0) && r >= 0 <> (a >= 0) in
    State.make_icc ~n ~z ~v ~c
  else if code = 1 then
    let c = u32 a < u32 b in
    let v = a >= 0 <> (b >= 0) && r >= 0 <> (a >= 0) in
    State.make_icc ~n ~z ~v ~c
  else State.make_icc ~n ~z ~v:false ~c:false

(* {!Encode.cond_code} order: A E NE L LE G GE LU LEU GU GEU Neg Pos. *)
let[@inline] eval_cond_code icc code =
  let n = State.icc_n icc
  and z = State.icc_z icc
  and v = State.icc_v icc
  and c = State.icc_c icc in
  match code with
  | 0 -> true
  | 1 -> z
  | 2 -> not z
  | 3 -> n <> v
  | 4 -> z || n <> v
  | 5 -> not (z || n <> v)
  | 6 -> n = v
  | 7 -> c
  | 8 -> c || z
  | 9 -> not (c || z)
  | 10 -> not c
  | 11 -> n
  | _ -> not n

let alu_icc (op : Instr.alu) a b r =
  let n = r < 0 and z = r = 0 in
  match op with
  | Add ->
    let c = u32 a + u32 b > 0xFFFFFFFF in
    let v = a >= 0 = (b >= 0) && r >= 0 <> (a >= 0) in
    State.make_icc ~n ~z ~v ~c
  | Sub ->
    let c = u32 a < u32 b in
    let v = a >= 0 <> (b >= 0) && r >= 0 <> (a >= 0) in
    State.make_icc ~n ~z ~v ~c
  | And | Andn | Or | Orn | Xor | Xnor | Sll | Srl | Sra | Smul | Umul | Sdiv
  | Udiv ->
    State.make_icc ~n ~z ~v:false ~c:false

(* float register helpers: registers hold raw IEEE-754 single bit patterns *)
let bits_to_float b = Int32.float_of_bits (Int32.of_int b)
let float_to_bits f = norm32 (Int32.to_int (Int32.bits_of_float f))

let fpu_result (op : Instr.fpu) a b =
  match op with
  | Fadd -> float_to_bits (bits_to_float a +. bits_to_float b)
  | Fsub -> float_to_bits (bits_to_float a -. bits_to_float b)
  | Fmul -> float_to_bits (bits_to_float a *. bits_to_float b)
  | Fdiv -> float_to_bits (bits_to_float a /. bits_to_float b)
  | Fitos -> float_to_bits (float_of_int a)
  | Fstoi ->
    (* Saturating conversion (DESIGN.md §Float-to-int): [int_of_float] on
       NaN, ±inf or values outside the int32 range is unspecified in OCaml,
       so the result is pinned here: NaN -> 0, >= 2^31 -> int32 max,
       <= -(2^31+1) -> int32 min, everything else truncates toward zero. *)
    let f = bits_to_float a in
    if Float.is_nan f then 0
    else if f >= 2147483648.0 then 0x7FFFFFFF
    else if f <= -2147483649.0 then norm32 0x80000000
    else norm32 (int_of_float f)

(* Window spill/fill microroutine (DESIGN.md §2): a frame's 16-register
   window region is spilled when a save would clobber live data, and
   refilled LIFO on the matching underflowing restore. Both the golden
   machine and the DTSVLIW run exactly this routine, so trap behaviour is
   observationally identical. *)

let spilled_frames st = (st.State.wspill_sp - Layout.wspill_base) / 64
let resident_depth st = st.State.wdepth - spilled_frames st

let region_base ~nwindows w = State.n_globals + (w mod nwindows * 16)

let spill_window st w =
  let base = region_base ~nwindows:st.State.nwindows w in
  for k = 0 to 15 do
    Dts_mem.Memory.write st.State.mem
      ~addr:(st.State.wspill_sp + (k * 4))
      ~size:4 st.State.iregs.(base + k)
  done;
  st.State.wspill_sp <- st.State.wspill_sp + 64

let fill_window st w =
  if st.State.wspill_sp <= Layout.wspill_base then
    raise (Fatal_fault "window underflow with empty spill stack");
  st.State.wspill_sp <- st.State.wspill_sp - 64;
  let base = region_base ~nwindows:st.State.nwindows w in
  for k = 0 to 15 do
    State.set_phys st (base + k)
      (Dts_mem.Memory.read st.State.mem
         ~addr:(st.State.wspill_sp + (k * 4))
         ~size:4 ~signed:true)
  done

let no_effect ~pc =
  {
    writes = [];
    store = None;
    load = None;
    next_pc = pc + Instr.bytes;
    taken = false;
    trap = None;
  }

let trap_outcome ~pc t = { (no_effect ~pc) with trap = Some t }

(** Read overrides: how the VLIW Engine forwards renamed sources (§3.2) and
    serves loads from the data store list (§3.11) without the sequential
    engines paying for it. Overrides are keyed directly by physical integer
    register index / fp register index / the flags, so probing one is an
    integer comparison — no [Storage.t] value is boxed per register read.
    [None] from an override means "read the architectural state". *)
type read_ov = {
  ov_phys : int -> int option;  (** physical integer register index *)
  ov_freg : int -> int option;
  ov_icc : unit -> int option;
  ov_mem : addr:int -> size:int -> signed:bool -> int option;
}

(** The identity override (reads architectural state only). Statically
    allocated: the sequential engines' [exec] calls share it, so the
    default costs nothing per instruction. *)
let no_ov =
  {
    ov_phys = (fun _ -> None);
    ov_freg = (fun _ -> None);
    ov_icc = (fun () -> None);
    ov_mem = (fun ~addr:_ ~size:_ ~signed:_ -> None);
  }

(** Describe the effects of executing [instr] at [pc] with window pointer
    [cwp], reading the current state (including memory for loads) but
    mutating nothing. A [Some _] trap means the instruction did not execute;
    {!service_and_exec} runs the microroutine and retries. *)
let exec ?(ov = no_ov) st ~cwp ~pc (instr : Instr.t) =
  let reg r =
    if r = 0 then 0
    else
      let p = State.phys_of st ~cwp r in
      match ov.ov_phys p with Some v -> v | None -> st.State.iregs.(p)
  in
  let freg f =
    match ov.ov_freg f with Some v -> v | None -> st.State.fregs.(f)
  in
  let icc () = match ov.ov_icc () with Some v -> v | None -> st.State.icc in
  let opval (op2 : Instr.operand) =
    match op2 with Reg r -> reg r | Imm i -> i
  in
  let wreg r v = if r = 0 then [] else [ W_phys (State.phys_of st ~cwp r, v) ] in
  match instr with
  | Nop -> no_effect ~pc
  | Halt -> { (no_effect ~pc) with next_pc = pc }
  | Trap n -> trap_outcome ~pc (Software n)
  | Alu { op; cc; rs1; op2; rd } ->
    let a = reg rs1 and b = opval op2 in
    let r = alu_result op a b in
    let writes = wreg rd r in
    let writes = if cc then W_icc (alu_icc op a b r) :: writes else writes in
    { (no_effect ~pc) with writes }
  | Sethi { imm; rd } ->
    { (no_effect ~pc) with writes = wreg rd (norm32 (imm lsl 10)) }
  | Load { size; rs1; op2; rd } ->
    let addr = u32 (reg rs1 + opval op2) in
    let bytes = Instr.lsize_bytes size in
    if addr land (bytes - 1) <> 0 then trap_outcome ~pc (Misaligned addr)
    else
      let signed = match size with Lsb | Lsh | Lw -> true | Lub | Luh -> false in
      let v =
        match ov.ov_mem ~addr ~size:bytes ~signed with
        | Some v -> v
        | None -> Dts_mem.Memory.read st.State.mem ~addr ~size:bytes ~signed
      in
      { (no_effect ~pc) with writes = wreg rd v; load = Some (addr, bytes) }
  | Store { size; rs; rs1; op2 } ->
    let addr = u32 (reg rs1 + opval op2) in
    let bytes = Instr.ssize_bytes size in
    if addr land (bytes - 1) <> 0 then trap_outcome ~pc (Misaligned addr)
    else { (no_effect ~pc) with store = Some (addr, bytes, reg rs) }
  | Fload { rs1; op2; rd } ->
    let addr = u32 (reg rs1 + opval op2) in
    if addr land 3 <> 0 then trap_outcome ~pc (Misaligned addr)
    else
      let v =
        match ov.ov_mem ~addr ~size:4 ~signed:true with
        | Some v -> v
        | None -> Dts_mem.Memory.read st.State.mem ~addr ~size:4 ~signed:true
      in
      { (no_effect ~pc) with writes = [ W_freg (rd, v) ]; load = Some (addr, 4) }
  | Fstore { rd; rs1; op2 } ->
    let addr = u32 (reg rs1 + opval op2) in
    if addr land 3 <> 0 then trap_outcome ~pc (Misaligned addr)
    else { (no_effect ~pc) with store = Some (addr, 4, freg rd) }
  | Fpop { op; rs1; rs2; rd } ->
    let r = fpu_result op (freg rs1) (freg rs2) in
    { (no_effect ~pc) with writes = [ W_freg (rd, r) ] }
  | Branch { cond; target } ->
    let taken = eval_cond (icc ()) cond in
    {
      (no_effect ~pc) with
      next_pc = (if taken then target else pc + Instr.bytes);
      taken;
    }
  | Call { target } ->
    {
      (no_effect ~pc) with
      writes = wreg 15 pc;
      next_pc = target;
      taken = true;
    }
  | Jmpl { rs1; op2; rd } ->
    let target = u32 (reg rs1 + opval op2) in
    if target land 3 <> 0 then trap_outcome ~pc (Misaligned target)
    else { (no_effect ~pc) with writes = wreg rd pc; next_pc = target; taken = true }
  | Save { rs1; op2; rd } ->
    if resident_depth st >= st.State.nwindows - 2 then
      trap_outcome ~pc Window_overflow
    else
      let v = norm32 (reg rs1 + opval op2) in
      let new_cwp = (cwp - 1 + st.State.nwindows) mod st.State.nwindows in
      let writes = [ W_win (new_cwp, st.State.wdepth + 1) ] in
      let writes =
        if rd = 0 then writes
        else W_phys (State.phys ~nwindows:st.State.nwindows ~cwp:new_cwp rd, v) :: writes
      in
      { (no_effect ~pc) with writes }
  | Restore { rs1; op2; rd } ->
    if resident_depth st = 0 then trap_outcome ~pc Window_underflow
    else
      let v = norm32 (reg rs1 + opval op2) in
      let new_cwp = (cwp + 1) mod st.State.nwindows in
      let writes = [ W_win (new_cwp, st.State.wdepth - 1) ] in
      let writes =
        if rd = 0 then writes
        else W_phys (State.phys ~nwindows:st.State.nwindows ~cwp:new_cwp rd, v) :: writes
      in
      { (no_effect ~pc) with writes }

(** Apply the register/flag/window writes of an outcome. *)
let apply_writes st writes =
  List.iter
    (fun w ->
      match w with
      | W_phys (p, v) -> State.set_phys st p v
      | W_freg (f, v) -> State.set_freg st f v
      | W_icc v -> st.State.icc <- v
      | W_win (cwp, depth) ->
        st.State.cwp <- cwp;
        st.State.wdepth <- depth)
    writes

(** Apply a full outcome: writes, the memory store, and the PC. *)
let apply st out =
  apply_writes st out.writes;
  (match out.store with
  | Some (addr, size, v) -> Dts_mem.Memory.write st.State.mem ~addr ~size v
  | None -> ());
  st.State.pc <- out.next_pc;
  st.State.instret <- st.State.instret + 1

(** Service the trap of a previously returned outcome, then re-execute.
    Used by the sequential engines; the VLIW Engine instead turns traps into
    block exceptions (§3.11). Raises {!Fatal_fault} for faults that have no
    microroutine. *)
let service_and_exec st ~cwp ~pc instr trap =
  (match trap with
  | Window_overflow ->
    let new_cwp = (cwp - 1 + st.State.nwindows) mod st.State.nwindows in
    spill_window st new_cwp;
    st.State.traps <- st.State.traps + 1
  | Window_underflow ->
    (* refill the ins-provider region of the frame being returned to:
       the restore enters window cwp+1, whose ins live in region cwp+2 *)
    fill_window st ((cwp + 2) mod st.State.nwindows);
    st.State.traps <- st.State.traps + 1
  | Software _ -> st.State.traps <- st.State.traps + 1
  | Misaligned a ->
    raise (Fatal_fault (Printf.sprintf "misaligned access at %#x (pc=%#x)" a pc)));
  match trap with
  | Software _ -> no_effect ~pc (* software traps are accounted no-ops *)
  | Window_overflow | Window_underflow -> (
    let out = exec st ~cwp ~pc instr in
    match out.trap with
    | None -> out
    | Some t ->
      raise
        (Fatal_fault
           (Printf.sprintf "trap %s persists after service at pc=%#x"
              (show_trap t) pc)))
  | Misaligned _ -> assert false

(** {1 The allocation-free sequential fast path}

    {!exec} describes effects as an [outcome] record — a [writes] list plus
    two options — which costs ~50 minor words per instruction across the
    closures, the record copies and the boxing. The sequential engines (the
    golden test machine and the Primary Processor) apply every effect
    immediately and never rename anything, so they do not need the
    descriptive form: {!exec_into} executes a packed {!Uop} micro-op into a
    preallocated mutable {!outcome_buf} instead, allocating nothing. The two
    paths implement the same semantics — {!exec} is kept as the VLIW
    engine's API {e and} as the differential oracle ([test/test_fastpath.ml]
    proves bit-identical end states on every workload and the fuzz
    corpus). *)

(** Mutable per-engine scratch for one instruction's effects: fixed slots
    instead of a [write list], validity encoded in-band ([-1] = no register
    write, [-1] = icc unchanged, size [0] = no memory access) so no option
    is ever boxed. *)
type outcome_buf = {
  mutable b_w0 : int;  (** physical integer register to write, or -1 *)
  mutable b_w0v : int;
  mutable b_fw : int;  (** fp register to write, or -1 *)
  mutable b_fwv : int;
  mutable b_icc : int;  (** new icc, or -1 for unchanged *)
  mutable b_win : bool;  (** window movement (save/restore)? *)
  mutable b_cwp : int;
  mutable b_wdepth : int;
  mutable b_store_size : int;  (** 0 = no store *)
  mutable b_store_addr : int;
  mutable b_store_val : int;
  mutable b_load_size : int;  (** 0 = no load *)
  mutable b_load_addr : int;
  mutable b_next_pc : int;
  mutable b_taken : bool;
  mutable b_trap : int;  (** 0 none / 1 overflow / 2 underflow / 3 software
                             / 4 misaligned *)
  mutable b_trap_arg : int;  (** trap number / offending address *)
}

let t_none = 0
let t_overflow = 1
let t_underflow = 2
let t_software = 3
let t_misaligned = 4

let make_buf () =
  {
    b_w0 = -1;
    b_w0v = 0;
    b_fw = -1;
    b_fwv = 0;
    b_icc = -1;
    b_win = false;
    b_cwp = 0;
    b_wdepth = 0;
    b_store_size = 0;
    b_store_addr = 0;
    b_store_val = 0;
    b_load_size = 0;
    b_load_addr = 0;
    b_next_pc = 0;
    b_taken = false;
    b_trap = t_none;
    b_trap_arg = 0;
  }

let buf_reset ~pc b =
  b.b_w0 <- -1;
  b.b_fw <- -1;
  b.b_icc <- -1;
  b.b_win <- false;
  b.b_store_size <- 0;
  b.b_load_size <- 0;
  b.b_next_pc <- pc + Instr.bytes;
  b.b_taken <- false;
  b.b_trap <- t_none

let buf_trap b t arg =
  b.b_trap <- t;
  b.b_trap_arg <- arg

(** The {!trap} value an [outcome_buf] trap code denotes (diagnostics
    only — the hot path never materialises it). *)
let trap_of_buf b =
  if b.b_trap = t_overflow then Window_overflow
  else if b.b_trap = t_underflow then Window_underflow
  else if b.b_trap = t_software then Software b.b_trap_arg
  else Misaligned b.b_trap_arg

(** "No override" sentinel of {!read_ov_fast}: architectural values are
    32-bit sign-extended, so [min_int] (on a 63-bit int) can never be a
    real register, flag or loaded value. *)
let no_val = min_int

(** Unboxed counterpart of {!read_ov}: overrides answer with the value or
    {!no_val}, never a [Some] box. The VLIW plan executor forwards renamed
    sources and data-store-list bytes through this; the sequential engines
    pass [None] and pay one branch per read. *)
type read_ov_fast = {
  ovf_phys : int -> int;  (** physical integer register index -> value *)
  ovf_freg : int -> int;
  ovf_icc : unit -> int;
  ovf_mem : addr:int -> size:int -> signed:bool -> int;
}

(* Top-level read helpers: local closures over [ov]/[cwp] would be
   heap-allocated on every {!exec_into_ov} call (no flambda), so the reads
   take their environment as explicit arguments instead. *)

let[@inline] read_reg st (ov : read_ov_fast option) ~nwindows ~cwp r =
  if r = 0 then 0
  else
    let p = State.phys_fast ~nwindows ~cwp r in
    match ov with
    | None -> st.State.iregs.(p)
    | Some o ->
      let v = o.ovf_phys p in
      if v = no_val then st.State.iregs.(p) else v

let[@inline] read_freg st (ov : read_ov_fast option) f =
  match ov with
  | None -> st.State.fregs.(f)
  | Some o ->
    let v = o.ovf_freg f in
    if v = no_val then st.State.fregs.(f) else v

let[@inline] read_icc st (ov : read_ov_fast option) =
  match ov with
  | None -> st.State.icc
  | Some o ->
    let v = o.ovf_icc () in
    if v = no_val then st.State.icc else v

let[@inline] read_mem st (ov : read_ov_fast option) ~addr ~size ~signed =
  match ov with
  | None -> Dts_mem.Memory.read st.State.mem ~addr ~size ~signed
  | Some o ->
    let v = o.ovf_mem ~addr ~size ~signed in
    if v = no_val then Dts_mem.Memory.read st.State.mem ~addr ~size ~signed
    else v

(* operand 2: pre-resolved immediate or register *)
let[@inline] read_op2 st ov ~nwindows ~cwp u =
  if Uop.is_imm u then Uop.imm u
  else read_reg st ov ~nwindows ~cwp (Uop.rs2 u)

(** Execute the packed op [u] (the decode of the instruction at [pc]) under
    window pointer [cwp], leaving all effects in [b]. Reads architectural
    state directly, except where [ov] overrides a source — no allocation
    either way. Semantically identical to {!exec} followed by discarding
    the record. *)
let exec_into_ov st (ov : read_ov_fast option) ~cwp ~pc u b =
  buf_reset ~pc b;
  let nwindows = st.State.nwindows in
  let opc = Uop.opcode u in
  (* Dense two-level dispatch on the class-structured opcode space
     ([Uop]): the outer match on [opc lsr 4] and the class-6 inner match on
     [opc land 15] both compile to jump tables — no comparison chains on
     the hot path. *)
  match opc lsr 4 with
  | 0 | 1 ->
    (* alu; class 1 also sets the condition codes *)
    let a = read_reg st ov ~nwindows ~cwp (Uop.rs1 u)
    and b2 = read_op2 st ov ~nwindows ~cwp u in
    let code = opc land 15 in
    let r = alu_result_code code a b2 in
    let rd = Uop.rd u in
    if rd <> 0 then begin
      b.b_w0 <- State.phys_fast ~nwindows ~cwp rd;
      b.b_w0v <- r
    end;
    if opc >= Uop.u_alu_cc then b.b_icc <- alu_icc_code code a b2 r
  | 2 ->
    let addr = u32 (read_reg st ov ~nwindows ~cwp (Uop.rs1 u) + read_op2 st ov ~nwindows ~cwp u) in
    let idx = opc land 15 in
    let bytes = 1 lsl (idx lsr 1) in
    if addr land (bytes - 1) <> 0 then buf_trap b t_misaligned addr
    else begin
      let signed = idx land 1 = 0 in
      let v = read_mem st ov ~addr ~size:bytes ~signed in
      let rd = Uop.rd u in
      if rd <> 0 then begin
        b.b_w0 <- State.phys_fast ~nwindows ~cwp rd;
        b.b_w0v <- v
      end;
      b.b_load_size <- bytes;
      b.b_load_addr <- addr
    end
  | 3 ->
    let addr = u32 (read_reg st ov ~nwindows ~cwp (Uop.rs1 u) + read_op2 st ov ~nwindows ~cwp u) in
    let bytes = 1 lsl (opc land 15) in
    if addr land (bytes - 1) <> 0 then buf_trap b t_misaligned addr
    else begin
      b.b_store_size <- bytes;
      b.b_store_addr <- addr;
      b.b_store_val <- read_reg st ov ~nwindows ~cwp (Uop.rd u)
    end
  | 4 ->
    (* cond A has code 0 = always taken *)
    let code = opc land 15 in
    let taken = code = 0 || eval_cond_code (read_icc st ov) code in
    if taken then b.b_next_pc <- pc + Uop.imm u;
    b.b_taken <- taken
  | 5 ->
    let r =
      fpu_result
        (Encode.fpu_of_code (opc land 15))
        (read_freg st ov (Uop.rs1 u))
        (read_freg st ov (Uop.rs2 u))
    in
    b.b_fw <- Uop.rd u;
    b.b_fwv <- r
  | _ -> (
    match opc land 15 with
    | 0 ->
      (* sethi *)
      let rd = Uop.rd u in
      if rd <> 0 then begin
        b.b_w0 <- State.phys_fast ~nwindows ~cwp rd;
        b.b_w0v <- Uop.imm u
      end
    | 1 ->
      (* call *)
      b.b_w0 <- State.phys_fast ~nwindows ~cwp 15;
      b.b_w0v <- pc;
      b.b_next_pc <- pc + Uop.imm u;
      b.b_taken <- true
    | 2 ->
      (* jmpl *)
      let target = u32 (read_reg st ov ~nwindows ~cwp (Uop.rs1 u) + read_op2 st ov ~nwindows ~cwp u) in
      if target land 3 <> 0 then buf_trap b t_misaligned target
      else begin
        let rd = Uop.rd u in
        if rd <> 0 then begin
          b.b_w0 <- State.phys_fast ~nwindows ~cwp rd;
          b.b_w0v <- pc
        end;
        b.b_next_pc <- target;
        b.b_taken <- true
      end
    | 3 ->
      (* save *)
      if resident_depth st >= nwindows - 2 then buf_trap b t_overflow 0
      else begin
        let v = norm32 (read_reg st ov ~nwindows ~cwp (Uop.rs1 u) + read_op2 st ov ~nwindows ~cwp u) in
        let new_cwp = (cwp - 1 + nwindows) mod nwindows in
        b.b_win <- true;
        b.b_cwp <- new_cwp;
        b.b_wdepth <- st.State.wdepth + 1;
        let rd = Uop.rd u in
        if rd <> 0 then begin
          b.b_w0 <- State.phys_fast ~nwindows ~cwp:new_cwp rd;
          b.b_w0v <- v
        end
      end
    | 4 ->
      (* restore *)
      if resident_depth st = 0 then buf_trap b t_underflow 0
      else begin
        let v = norm32 (read_reg st ov ~nwindows ~cwp (Uop.rs1 u) + read_op2 st ov ~nwindows ~cwp u) in
        let new_cwp = (cwp + 1) mod nwindows in
        b.b_win <- true;
        b.b_cwp <- new_cwp;
        b.b_wdepth <- st.State.wdepth - 1;
        let rd = Uop.rd u in
        if rd <> 0 then begin
          b.b_w0 <- State.phys_fast ~nwindows ~cwp:new_cwp rd;
          b.b_w0v <- v
        end
      end
    | 5 ->
      (* fload *)
      let addr = u32 (read_reg st ov ~nwindows ~cwp (Uop.rs1 u) + read_op2 st ov ~nwindows ~cwp u) in
      if addr land 3 <> 0 then buf_trap b t_misaligned addr
      else begin
        b.b_fw <- Uop.rd u;
        b.b_fwv <- read_mem st ov ~addr ~size:4 ~signed:true;
        b.b_load_size <- 4;
        b.b_load_addr <- addr
      end
    | 6 ->
      (* fstore *)
      let addr = u32 (read_reg st ov ~nwindows ~cwp (Uop.rs1 u) + read_op2 st ov ~nwindows ~cwp u) in
      if addr land 3 <> 0 then buf_trap b t_misaligned addr
      else begin
        b.b_store_size <- 4;
        b.b_store_addr <- addr;
        b.b_store_val <- read_freg st ov (Uop.rd u)
      end
    | 7 -> buf_trap b t_software (Uop.imm u)
    | 8 -> (* halt *) b.b_next_pc <- pc
    | _ -> (* Nop *) ())

(** {!exec_into_ov} with no overrides — the sequential engines' entry. *)
let exec_into st ~cwp ~pc u b = exec_into_ov st None ~cwp ~pc u b

(** Apply a buffered outcome: mirrors {!apply} field for field. *)
let apply_buf st b =
  if b.b_w0 > 0 then State.set_phys st b.b_w0 b.b_w0v;
  if b.b_fw >= 0 then State.set_freg st b.b_fw b.b_fwv;
  if b.b_icc >= 0 then st.State.icc <- b.b_icc;
  if b.b_win then begin
    st.State.cwp <- b.b_cwp;
    st.State.wdepth <- b.b_wdepth
  end;
  if b.b_store_size <> 0 then
    Dts_mem.Memory.write st.State.mem ~addr:b.b_store_addr
      ~size:b.b_store_size b.b_store_val;
  st.State.pc <- b.b_next_pc;
  st.State.instret <- st.State.instret + 1

(** Buffered counterpart of {!service_and_exec}: service the trap flagged in
    [b], then re-execute [u] into [b] (or leave the accounted no-op for a
    software trap). Raises {!Fatal_fault} exactly where the boxed path
    does, with identical messages. *)
let service_and_exec_into st ~cwp ~pc u b =
  let nwindows = st.State.nwindows in
  let trap = b.b_trap in
  if trap = t_overflow then begin
    spill_window st ((cwp - 1 + nwindows) mod nwindows);
    st.State.traps <- st.State.traps + 1
  end
  else if trap = t_underflow then begin
    fill_window st ((cwp + 2) mod nwindows);
    st.State.traps <- st.State.traps + 1
  end
  else if trap = t_software then st.State.traps <- st.State.traps + 1
  else
    raise
      (Fatal_fault
         (Printf.sprintf "misaligned access at %#x (pc=%#x)" b.b_trap_arg pc));
  if trap = t_software then buf_reset ~pc b
  else begin
    exec_into st ~cwp ~pc u b;
    if b.b_trap <> t_none then
      raise
        (Fatal_fault
           (Printf.sprintf "trap %s persists after service at pc=%#x"
              (show_trap (trap_of_buf b)) pc))
  end
