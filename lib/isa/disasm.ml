(** SPARC-flavoured disassembly for diagnostics, the assembler's error
    messages and the scheduling-list pretty printer. *)

let reg_name r =
  if r = 14 then "%sp"
  else if r = 30 then "%fp"
  else
    let bank, idx =
      if r < 8 then ("g", r)
      else if r < 16 then ("o", r - 8)
      else if r < 24 then ("l", r - 16)
      else ("i", r - 24)
    in
    Printf.sprintf "%%%s%d" bank idx

let operand = function
  | Instr.Reg r -> reg_name r
  | Instr.Imm v -> string_of_int v

let alu_name : Instr.alu -> string = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Andn -> "andn"
  | Or -> "or"
  | Orn -> "orn"
  | Xor -> "xor"
  | Xnor -> "xnor"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"
  | Smul -> "smul"
  | Umul -> "umul"
  | Sdiv -> "sdiv"
  | Udiv -> "udiv"

let cond_name : Instr.cond -> string = function
  | A -> "a"
  | E -> "e"
  | NE -> "ne"
  | L -> "l"
  | LE -> "le"
  | G -> "g"
  | GE -> "ge"
  | LU -> "lu"
  | LEU -> "leu"
  | GU -> "gu"
  | GEU -> "geu"
  | Neg -> "neg"
  | Pos -> "pos"

let lsize_name : Instr.lsize -> string = function
  | Lsb -> "ldsb"
  | Lub -> "ldub"
  | Lsh -> "ldsh"
  | Luh -> "lduh"
  | Lw -> "ld"

let ssize_name : Instr.ssize -> string = function
  | Sb -> "stb"
  | Sh -> "sth"
  | Sw -> "st"

let fpu_name : Instr.fpu -> string = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Fitos -> "fitos"
  | Fstoi -> "fstoi"

let to_string (instr : Instr.t) =
  match instr with
  | Nop -> "nop"
  | Halt -> "halt"
  | Trap n -> Printf.sprintf "trap %d" n
  | Alu { op; cc; rs1; op2; rd } ->
    Printf.sprintf "%s%s %s, %s, %s" (alu_name op)
      (if cc then "cc" else "")
      (reg_name rs1) (operand op2) (reg_name rd)
  | Sethi { imm; rd } -> Printf.sprintf "sethi %#x, %s" imm (reg_name rd)
  | Load { size; rs1; op2; rd } ->
    Printf.sprintf "%s [%s+%s], %s" (lsize_name size) (reg_name rs1)
      (operand op2) (reg_name rd)
  | Store { size; rs; rs1; op2 } ->
    Printf.sprintf "%s %s, [%s+%s]" (ssize_name size) (reg_name rs)
      (reg_name rs1) (operand op2)
  | Branch { cond; target } ->
    Printf.sprintf "b%s %#x" (cond_name cond) target
  | Call { target } -> Printf.sprintf "call %#x" target
  | Jmpl { rs1; op2; rd } ->
    Printf.sprintf "jmpl [%s+%s], %s" (reg_name rs1) (operand op2)
      (reg_name rd)
  | Save { rs1; op2; rd } ->
    Printf.sprintf "save %s, %s, %s" (reg_name rs1) (operand op2) (reg_name rd)
  | Restore { rs1; op2; rd } ->
    Printf.sprintf "restore %s, %s, %s" (reg_name rs1) (operand op2)
      (reg_name rd)
  | Fpop { op; rs1; rs2; rd } ->
    Printf.sprintf "%s %%f%d, %%f%d, %%f%d" (fpu_name op) rs1 rs2 rd
  | Fload { rs1; op2; rd } ->
    Printf.sprintf "ldf [%s+%s], %%f%d" (reg_name rs1) (operand op2) rd
  | Fstore { rd; rs1; op2 } ->
    Printf.sprintf "stf %%f%d, [%s+%s]" rd (reg_name rs1) (operand op2)
