(** The pre-decoded instruction store.

    {!Encode.fetch} performs a full 32-bit word decode — field extraction,
    subfield validation, constructor allocation — and the Primary Processor
    and the golden test machine both call it on {e every} cycle, almost
    always at an address whose word has not changed since the last visit.
    This module memoizes the decode per code address: the first fetch of an
    address decodes and records the instruction; subsequent fetches return
    the recorded [Instr.t] without touching memory.

    Correctness under self-modifying code: the store registers a
    {!Dts_mem.Memory.add_watched_write_hook} observer at creation and puts
    every page it caches a decode for under {!Dts_mem.Memory.watch}; any
    memory write overlapping a cached word then invalidates exactly that
    word's entry (an aligned 1/2/4-byte write never spans a word, so the
    word containing the written byte is the only one affected). The next
    fetch of that address re-reads memory and re-decodes. Writes to pages
    that never hosted a decode (ordinary data stores) skip hook dispatch
    entirely — the watched-page test is part of the memory's own write
    path.

    Decoded entries are held in per-page arrays (1024 instruction slots per
    4 KiB page) with a one-page lookaside, so the hot path — refetching the
    instruction the PC pointed at a moment ago — is an integer compare, an
    array load and a tag check. *)

let page_bits = 12
let page_size = 1 lsl (page_bits - 2) (* instruction slots per page *)
let page_mask = (1 lsl page_bits) - 1

(** One decoded page: the boxed decode and its packed {!Uop} form are
    cached side by side, filled together on the first fetch of a word, so
    the fast path ({!fetch_uop}) reads a single immediate int and the boxed
    path ({!fetch}) still gets its [Instr.t] without re-decoding. *)
type page = {
  insns : Instr.t option array;
  uops : int array;  (** {!Uop.none} where [insns] holds [None] *)
}

type t = {
  mem : Dts_mem.Memory.t;
  pages : (int, page) Hashtbl.t;  (** page index -> slots *)
  mutable last_idx : int;  (** page index of [last_page]; -1 = none *)
  mutable last_page : page;
  mutable decodes : int;  (** fetches that had to decode *)
  mutable hits : int;  (** fetches served from the store *)
  mutable invalidations : int;  (** entries dropped by overlapping writes *)
}

let no_page : page = { insns = [||]; uops = [||] }

let invalidate t addr =
  let word = addr land lnot 3 in
  match Hashtbl.find_opt t.pages (word lsr page_bits) with
  | None -> ()
  | Some pg ->
    let slot = (word land page_mask) lsr 2 in
    if pg.insns.(slot) <> None then begin
      pg.insns.(slot) <- None;
      pg.uops.(slot) <- Uop.none;
      t.invalidations <- t.invalidations + 1
    end

(** Drop every cached decode (the lookaside included). Fired through the
    memory's reset hook when the memory is {!Dts_mem.Memory.copy}ed: the
    copy severs the write-hook link, so a store that kept serving from its
    pre-fork contents could never be invalidated again. *)
let clear t =
  Hashtbl.reset t.pages;
  t.last_idx <- -1;
  t.last_page <- no_page

let create mem =
  let t =
    {
      mem;
      pages = Hashtbl.create 16;
      last_idx = -1;
      last_page = no_page;
      decodes = 0;
      hits = 0;
      invalidations = 0;
    }
  in
  (* A watched hook, not a whole-memory one: {!decode_slot} marks each page
     it caches a decode for, so SMC invalidation sees every store into a
     code-hosting page while ordinary data stores skip hook dispatch
     entirely. *)
  Dts_mem.Memory.add_watched_write_hook mem (invalidate t);
  Dts_mem.Memory.add_reset_hook mem (fun () -> clear t);
  t

let page_for t idx =
  match Hashtbl.find_opt t.pages idx with
  | Some p -> p
  | None ->
    let p =
      { insns = Array.make page_size None; uops = Array.make page_size Uop.none }
    in
    Hashtbl.replace t.pages idx p;
    p

let page_at t idx =
  if idx = t.last_idx then t.last_page
  else begin
    let p = page_for t idx in
    t.last_idx <- idx;
    t.last_page <- p;
    p
  end

(* decode the word at [addr] and fill both forms of its slot; the page now
   hosts a cached decode, so put it under write watch *)
let decode_slot t pg ~addr ~slot =
  let instr = Encode.fetch t.mem ~addr in
  pg.insns.(slot) <- Some instr;
  pg.uops.(slot) <- Uop.of_instr ~pc:addr instr;
  t.decodes <- t.decodes + 1;
  Dts_mem.Memory.watch t.mem addr;
  instr

(** Fetch and decode the instruction at [addr], reusing a previous decode of
    the same (unmodified) word when one exists. Misaligned addresses are
    never cached — they fall through to {!Encode.fetch}, which raises. *)
let fetch t ~addr =
  if addr land 3 <> 0 then Encode.fetch t.mem ~addr
  else begin
    let pg = page_at t (addr lsr page_bits) in
    let slot = (addr land page_mask) lsr 2 in
    match Array.unsafe_get pg.insns slot with
    | Some instr ->
      t.hits <- t.hits + 1;
      instr
    | None -> decode_slot t pg ~addr ~slot
  end

(** {!fetch} in packed form: the counting fetch of the fast path. Returns
    the micro-op as an immediate int; decodes (and caches both forms) on a
    cold slot. *)
let fetch_uop t ~addr =
  if addr land 3 <> 0 then
    Uop.of_instr ~pc:addr (Encode.fetch t.mem ~addr)
  else begin
    let pg = page_at t (addr lsr page_bits) in
    let slot = (addr land page_mask) lsr 2 in
    let u = Array.unsafe_get pg.uops slot in
    if u <> Uop.none then begin
      t.hits <- t.hits + 1;
      u
    end
    else begin
      ignore (decode_slot t pg ~addr ~slot);
      pg.uops.(slot)
    end
  end

(** The boxed decode of the word at [addr], without counting as a fetch or
    touching the cache: serves the cached slot when warm, decodes straight
    from memory (uncached, uncounted) when cold. Callers pair it with a
    counting {!fetch_uop} of the same address, so hit/decode accounting
    stays identical to a single boxed {!fetch}. *)
let instr_at t ~addr =
  if addr land 3 <> 0 then Encode.fetch t.mem ~addr
  else begin
    let pg = page_at t (addr lsr page_bits) in
    let slot = (addr land page_mask) lsr 2 in
    match Array.unsafe_get pg.insns slot with
    | Some instr -> instr
    | None -> Encode.fetch t.mem ~addr
  end

let hits t = t.hits
let decodes t = t.decodes
let invalidations t = t.invalidations
