(** Recursive-descent parser for tinyc with precedence-climbing expression
    parsing. *)

exception Error of { line : int; msg : string }

type t = { mutable toks : (Lexer.token * int) list }

let error p fmt =
  let line = match p.toks with (_, l) :: _ -> l | [] -> 0 in
  Printf.ksprintf (fun msg -> raise (Error { line; msg })) fmt

let peek p = match p.toks with (t, _) :: _ -> t | [] -> Lexer.EOF

let advance p =
  match p.toks with _ :: rest -> p.toks <- rest | [] -> ()

let expect p tok what =
  if peek p = tok then advance p else error p "expected %s" what

let expect_ident p what =
  match peek p with
  | Lexer.IDENT name ->
    advance p;
    name
  | _ -> error p "expected %s" what

(* precedence table; higher binds tighter *)
let binop_of_token : Lexer.token -> (Ast.binop * int) option = function
  | OROR -> Some (LOr, 1)
  | ANDAND -> Some (LAnd, 2)
  | BAR -> Some (BOr, 3)
  | CARET -> Some (BXor, 4)
  | AMP -> Some (BAnd, 5)
  | EQ -> Some (Eq, 6)
  | NEQ -> Some (Neq, 6)
  | LT -> Some (Lt, 7)
  | LE -> Some (Le, 7)
  | GT -> Some (Gt, 7)
  | GE -> Some (Ge, 7)
  | ULT -> Some (Ult, 7)
  | UGE -> Some (Uge, 7)
  | SHL -> Some (Shl, 8)
  | SHR -> Some (Shr, 8)
  | LSHR -> Some (Lshr, 8)
  | PLUS -> Some (Add, 9)
  | MINUS -> Some (Sub, 9)
  | STAR -> Some (Mul, 10)
  | SLASH -> Some (Div, 10)
  | PERCENT -> Some (Mod, 10)
  | _ -> None

let rec parse_expr p = parse_binop p 0

and parse_binop p min_prec =
  let lhs = ref (parse_unary p) in
  let rec loop () =
    match binop_of_token (peek p) with
    | Some (op, prec) when prec >= min_prec ->
      advance p;
      let rhs = parse_binop p (prec + 1) in
      lhs := Ast.Binop (op, !lhs, rhs);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_unary p =
  match peek p with
  | MINUS ->
    advance p;
    Ast.Unop (Neg, parse_unary p)
  | BANG ->
    advance p;
    Ast.Unop (Not, parse_unary p)
  | TILDE ->
    advance p;
    Ast.Unop (BNot, parse_unary p)
  | _ -> parse_primary p

and parse_primary p =
  match peek p with
  | NUM n ->
    advance p;
    Ast.Num n
  | LPAREN ->
    advance p;
    let e = parse_expr p in
    expect p RPAREN ")";
    e
  | IDENT name -> (
    advance p;
    match peek p with
    | LPAREN ->
      advance p;
      let args = parse_args p in
      Ast.Call (name, args)
    | LBRACKET ->
      advance p;
      let idx = parse_expr p in
      expect p RBRACKET "]";
      Ast.Index (name, idx)
    | _ -> Ast.Var name)
  | _ -> error p "expected expression"

and parse_args p =
  if peek p = RPAREN then begin
    advance p;
    []
  end
  else
    let rec go acc =
      let e = parse_expr p in
      match peek p with
      | COMMA ->
        advance p;
        go (e :: acc)
      | RPAREN ->
        advance p;
        List.rev (e :: acc)
      | _ -> error p "expected , or ) in argument list"
    in
    go []

let rec parse_stmt p : Ast.stmt =
  match peek p with
  | INT_KW -> (
    advance p;
    let name = expect_ident p "variable name" in
    match peek p with
    | LBRACKET ->
      advance p;
      let size =
        match peek p with
        | NUM n ->
          advance p;
          n
        | _ -> error p "local array size must be a literal"
      in
      expect p RBRACKET "]";
      expect p SEMI ";";
      Ast.DeclArr (name, size)
    | ASSIGN ->
      advance p;
      let e = parse_expr p in
      expect p SEMI ";";
      Ast.Decl (name, Some e)
    | SEMI ->
      advance p;
      Ast.Decl (name, None)
    | _ -> error p "bad declaration")
  | IF ->
    advance p;
    expect p LPAREN "(";
    let cond = parse_expr p in
    expect p RPAREN ")";
    let then_ = parse_block_or_stmt p in
    let else_ =
      if peek p = ELSE then begin
        advance p;
        parse_block_or_stmt p
      end
      else []
    in
    Ast.If (cond, then_, else_)
  | WHILE ->
    advance p;
    expect p LPAREN "(";
    let cond = parse_expr p in
    expect p RPAREN ")";
    Ast.While (cond, parse_block_or_stmt p)
  | FOR ->
    advance p;
    expect p LPAREN "(";
    let init = parse_simple_stmt p in
    expect p SEMI ";";
    let cond = parse_expr p in
    expect p SEMI ";";
    let step = parse_simple_stmt p in
    expect p RPAREN ")";
    Ast.For (init, cond, step, parse_block_or_stmt p)
  | RETURN ->
    advance p;
    if peek p = SEMI then begin
      advance p;
      Ast.Return None
    end
    else begin
      let e = parse_expr p in
      expect p SEMI ";";
      Ast.Return (Some e)
    end
  | BREAK ->
    advance p;
    expect p SEMI ";";
    Ast.Break
  | CONTINUE ->
    advance p;
    expect p SEMI ";";
    Ast.Continue
  | _ ->
    let s = parse_simple_stmt p in
    expect p SEMI ";";
    s

(* assignment / array store / expression statement, without trailing ; *)
and parse_simple_stmt p : Ast.stmt =
  match peek p with
  | IDENT name -> (
    advance p;
    match peek p with
    | ASSIGN ->
      advance p;
      Ast.Assign (name, parse_expr p)
    | LBRACKET -> (
      advance p;
      let idx = parse_expr p in
      expect p RBRACKET "]";
      match peek p with
      | ASSIGN ->
        advance p;
        Ast.Store (name, idx, parse_expr p)
      | _ -> Ast.Expr (Ast.Index (name, idx)))
    | LPAREN ->
      advance p;
      Ast.Expr (Ast.Call (name, parse_args p))
    | _ -> Ast.Expr (Ast.Var name))
  | _ -> Ast.Expr (parse_expr p)

and parse_block_or_stmt p =
  if peek p = LBRACE then begin
    advance p;
    let rec go acc =
      if peek p = RBRACE then begin
        advance p;
        List.rev acc
      end
      else go (parse_stmt p :: acc)
    in
    go []
  end
  else [ parse_stmt p ]

let parse_global p : Ast.global =
  (* after 'int' *)
  let name = expect_ident p "global name" in
  match peek p with
  | LBRACKET -> (
    advance p;
    let size =
      match peek p with
      | NUM n ->
        advance p;
        n
      | _ -> error p "array size must be a literal"
    in
    expect p RBRACKET "]";
    match peek p with
    | ASSIGN ->
      advance p;
      expect p LBRACE "{";
      let rec vals acc =
        match peek p with
        | NUM n -> (
          advance p;
          match peek p with
          | COMMA ->
            advance p;
            vals (n :: acc)
          | RBRACE ->
            advance p;
            List.rev (n :: acc)
          | _ -> error p "expected , or } in initialiser")
        | MINUS -> (
          advance p;
          match peek p with
          | NUM n -> (
            advance p;
            match peek p with
            | COMMA ->
              advance p;
              vals (-n :: acc)
            | RBRACE ->
              advance p;
              List.rev (-n :: acc)
            | _ -> error p "expected , or }")
          | _ -> error p "expected number")
        | RBRACE ->
          advance p;
          List.rev acc
        | _ -> error p "expected number in initialiser"
      in
      let init = vals [] in
      expect p SEMI ";";
      Ast.Garr (name, size, init)
    | _ ->
      expect p SEMI ";";
      Ast.Garr (name, size, []))
  | ASSIGN -> (
    advance p;
    let neg = peek p = MINUS in
    if neg then advance p;
    match peek p with
    | NUM n ->
      advance p;
      expect p SEMI ";";
      Ast.Gvar (name, if neg then -n else n)
    | _ -> error p "global initialiser must be a literal")
  | SEMI ->
    advance p;
    Ast.Gvar (name, 0)
  | _ -> error p "bad global declaration"

let parse_func p name : Ast.func =
  (* after 'int name (' *)
  let params =
    if peek p = RPAREN then begin
      advance p;
      []
    end
    else
      let rec go acc =
        expect p INT_KW "int";
        let param = expect_ident p "parameter name" in
        match peek p with
        | COMMA ->
          advance p;
          go (param :: acc)
        | RPAREN ->
          advance p;
          List.rev (param :: acc)
        | _ -> error p "expected , or ) in parameters"
      in
      go []
  in
  expect p LBRACE "{";
  let rec body acc =
    if peek p = RBRACE then begin
      advance p;
      List.rev acc
    end
    else body (parse_stmt p :: acc)
  in
  { Ast.name; params; body = body [] }

(** Parse a complete tinyc translation unit. *)
let parse src : Ast.program =
  let p = { toks = Lexer.tokenize src } in
  let rec go globals funcs =
    match peek p with
    | EOF -> { Ast.globals = List.rev globals; funcs = List.rev funcs }
    | INT_KW -> (
      advance p;
      match p.toks with
      | (IDENT name, _) :: (LPAREN, _) :: rest ->
        p.toks <- rest;
        let f = parse_func p name in
        go globals (f :: funcs)
      | _ -> go (parse_global p :: globals) funcs)
    | _ -> error p "expected top-level declaration"
  in
  go [] []
