(** Hand-written lexer for tinyc. *)

type token =
  | INT_KW
  | IF
  | ELSE
  | WHILE
  | FOR
  | RETURN
  | BREAK
  | CONTINUE
  | IDENT of string
  | NUM of int
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | BAR
  | CARET
  | SHL
  | SHR
  | LSHR
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | ULT
  | UGE
  | ANDAND
  | OROR
  | BANG
  | TILDE
  | EOF

exception Error of { line : int; msg : string }

type t = { src : string; mutable pos : int; mutable line : int }

let make src = { src; pos = 0; line = 1 }

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek_char lx with Some '\n' -> lx.line <- lx.line + 1 | _ -> ());
  lx.pos <- lx.pos + 1

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_ws lx
  | Some '/'
    when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
    while peek_char lx <> None && peek_char lx <> Some '\n' do
      advance lx
    done;
    skip_ws lx
  | Some '/'
    when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '*' ->
    advance lx;
    advance lx;
    let rec go () =
      match peek_char lx with
      | None -> raise (Error { line = lx.line; msg = "unterminated comment" })
      | Some '*'
        when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
        advance lx;
        advance lx
      | Some _ ->
        advance lx;
        go ()
    in
    go ();
    skip_ws lx
  | _ -> ()

let keyword = function
  | "int" -> Some INT_KW
  | "if" -> Some IF
  | "else" -> Some ELSE
  | "while" -> Some WHILE
  | "for" -> Some FOR
  | "return" -> Some RETURN
  | "break" -> Some BREAK
  | "continue" -> Some CONTINUE
  | _ -> None

(** Next token (with its source line). *)
let next lx : token * int =
  skip_ws lx;
  let line = lx.line in
  let two a rest_tok one_tok =
    advance lx;
    if peek_char lx = Some a then begin
      advance lx;
      rest_tok
    end
    else one_tok
  in
  match peek_char lx with
  | None -> (EOF, line)
  | Some c when is_digit c ->
    let start = lx.pos in
    let hex =
      c = '0'
      && lx.pos + 1 < String.length lx.src
      && (lx.src.[lx.pos + 1] = 'x' || lx.src.[lx.pos + 1] = 'X')
    in
    if hex then begin
      advance lx;
      advance lx
    end;
    let is_num_char ch =
      is_digit ch
      || (hex && ((ch >= 'a' && ch <= 'f') || (ch >= 'A' && ch <= 'F')))
    in
    while (match peek_char lx with Some ch -> is_num_char ch | None -> false) do
      advance lx
    done;
    let text = String.sub lx.src start (lx.pos - start) in
    (match int_of_string_opt text with
    | Some n -> (NUM n, line)
    | None -> raise (Error { line; msg = "bad number " ^ text }))
  | Some c when is_ident_start c ->
    let start = lx.pos in
    while
      match peek_char lx with Some ch -> is_ident_char ch | None -> false
    do
      advance lx
    done;
    let text = String.sub lx.src start (lx.pos - start) in
    ((match keyword text with Some k -> k | None -> IDENT text), line)
  | Some '(' ->
    advance lx;
    (LPAREN, line)
  | Some ')' ->
    advance lx;
    (RPAREN, line)
  | Some '{' ->
    advance lx;
    (LBRACE, line)
  | Some '}' ->
    advance lx;
    (RBRACE, line)
  | Some '[' ->
    advance lx;
    (LBRACKET, line)
  | Some ']' ->
    advance lx;
    (RBRACKET, line)
  | Some ';' ->
    advance lx;
    (SEMI, line)
  | Some ',' ->
    advance lx;
    (COMMA, line)
  | Some '+' ->
    advance lx;
    (PLUS, line)
  | Some '-' ->
    advance lx;
    (MINUS, line)
  | Some '*' ->
    advance lx;
    (STAR, line)
  | Some '/' ->
    advance lx;
    (SLASH, line)
  | Some '%' ->
    advance lx;
    (PERCENT, line)
  | Some '^' ->
    advance lx;
    (CARET, line)
  | Some '~' ->
    advance lx;
    (TILDE, line)
  | Some '&' -> (two '&' ANDAND AMP, line)
  | Some '|' -> (two '|' OROR BAR, line)
  | Some '=' -> (two '=' EQ ASSIGN, line)
  | Some '!' -> (two '=' NEQ BANG, line)
  | Some '<' ->
    advance lx;
    (match peek_char lx with
    | Some '=' ->
      advance lx;
      (LE, line)
    | Some '<' ->
      advance lx;
      (SHL, line)
    | Some ':' ->
      (* <: unsigned less-than *)
      advance lx;
      (ULT, line)
    | _ -> (LT, line))
  | Some '>' ->
    advance lx;
    (match peek_char lx with
    | Some '=' ->
      advance lx;
      (GE, line)
    | Some '>' ->
      advance lx;
      (match peek_char lx with
      | Some '>' ->
        advance lx;
        (LSHR, line)
      | _ -> (SHR, line))
    | Some ':' ->
      (* >: unsigned greater-or-equal *)
      advance lx;
      (UGE, line)
    | _ -> (GT, line))
  | Some c ->
    raise (Error { line; msg = Printf.sprintf "unexpected character %C" c })

(** Tokenise the whole source. *)
let tokenize src =
  let lx = make src in
  let rec go acc =
    let tok, line = next lx in
    if tok = EOF then List.rev ((EOF, line) :: acc) else go ((tok, line) :: acc)
  in
  go []
