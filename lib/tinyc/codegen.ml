(** SRISC code generation for tinyc.

    Calling convention (SPARC register windows, no delay slots):
    - arguments in %o0..%o5 at the call site, visible as %i0..%i5 after the
      callee's [save];
    - return value written to the callee's %i0 (= the caller's %o0);
    - epilogue is [restore] then [retl];
    - %l0..%l7 hold the first eight local scalars (window-private, safe
      across calls); further scalars and all local arrays live in the stack
      frame;
    - %g1..%g4 and %o0..%o5 form the expression scratch pool and are
      caller-saved (spilled to frame temporaries around calls). *)

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type loc = Lreg of int | Lstack of int  (** byte offset from %sp *)

type env = {
  body : Buffer.t;
  mutable labels : int;
  vars : (string, loc) Hashtbl.t;
  globals : (string, [ `Scalar | `Array ]) Hashtbl.t;
  func_names : (string, int) Hashtbl.t;  (** name -> arity *)
  mutable free : int list;  (** free scratch registers *)
  mutable live : int list;  (** allocated scratch registers *)
  mutable n_temps : int;  (** high-water mark of frame temp slots *)
  mutable temp_sp : int;  (** temp-slot stack pointer (nested calls) *)
  locals_bytes : int;  (** stack bytes for locals/arrays, before temps *)
  mutable loop_labels : (string * string) list;  (** (break, continue) *)
  epilogue : string;
  fname : string;
}

let scratch_pool = [ 1; 2; 3; 4; 8; 9; 10; 11; 12; 13 ] (* %g1-4, %o0-5 *)

let reg_name r = Dts_isa.Disasm.reg_name r

let emit env fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string env.body "        ";
      Buffer.add_string env.body s;
      Buffer.add_char env.body '\n')
    fmt

let emit_label env l = Buffer.add_string env.body (l ^ ":\n")

let fresh_label env prefix =
  env.labels <- env.labels + 1;
  Printf.sprintf ".L%s_%s%d" env.fname prefix env.labels

let alloc env =
  match env.free with
  | r :: rest ->
    env.free <- rest;
    env.live <- r :: env.live;
    r
  | [] ->
    error "function %s: expression too deep for the scratch pool" env.fname

let free env r =
  if not (List.mem r env.live) then error "internal: freeing dead register";
  env.live <- List.filter (fun x -> x <> r) env.live;
  env.free <- r :: env.free

(* frame temporaries are allocated stack-wise so that calls nested inside
   another call's argument list use fresh slots *)
let push_temp env =
  let k = env.temp_sp in
  env.temp_sp <- k + 1;
  if env.temp_sp > env.n_temps then env.n_temps <- env.temp_sp;
  env.locals_bytes + (k * 4)

let fits_simm12 v = v >= -2048 && v < 2048

(** An expression result: either a scratch register we own (and must free)
    or a borrowed register — a local or parameter that lives in a
    window-private register and may be read directly as an operand. This is
    what keeps generated code free of -O0-style mov chains: [i = i + 1]
    compiles to a single [add %l0, 1, %l0]. *)
type value = Owned of int | Borrowed of int

let vreg = function Owned r -> r | Borrowed r -> r

let release env = function Owned r -> free env r | Borrowed _ -> ()

(* a register that may legally receive a result: reuse an owned operand,
   else allocate *)
let writable env = function Owned r -> r | Borrowed _ -> alloc env

(* load an immediate into a register *)
let emit_imm env v r =
  if fits_simm12 v then emit env "mov %d, %s" v (reg_name r)
  else emit env "set %d, %s" v (reg_name r)

(* address a stack slot, handling large offsets via a scratch register *)
let emit_slot_ld env off r =
  if fits_simm12 off then emit env "ld [%%sp+%d], %s" off (reg_name r)
  else begin
    emit env "set %d, %s" off (reg_name r);
    emit env "ld [%%sp+%s], %s" (reg_name r) (reg_name r)
  end

let emit_slot_st env r off =
  if fits_simm12 off then emit env "st %s, [%%sp+%d]" (reg_name r) off
  else begin
    let t = alloc env in
    emit env "set %d, %s" off (reg_name t);
    emit env "add %%sp, %s, %s" (reg_name t) (reg_name t);
    emit env "st %s, [%s]" (reg_name r) (reg_name t);
    free env t
  end

let binop_mnemonic : Ast.binop -> string option = function
  | Add -> Some "add"
  | Sub -> Some "sub"
  | Mul -> Some "smul"
  | Div -> Some "sdiv"
  | BAnd -> Some "and"
  | BOr -> Some "or"
  | BXor -> Some "xor"
  | Shl -> Some "sll"
  | Shr -> Some "sra"
  | Lshr -> Some "srl"
  | Mod | Eq | Neq | Lt | Le | Gt | Ge | Ult | Uge | LAnd | LOr -> None

let cmp_branch ~negate : Ast.binop -> string = function
  | Eq -> if negate then "bne" else "be"
  | Neq -> if negate then "be" else "bne"
  | Lt -> if negate then "bge" else "bl"
  | Le -> if negate then "bg" else "ble"
  | Gt -> if negate then "ble" else "bg"
  | Ge -> if negate then "bl" else "bge"
  | Ult -> if negate then "bgeu" else "blu"
  | Uge -> if negate then "blu" else "bgeu"
  | _ -> assert false

let is_cmp : Ast.binop -> bool = function
  | Eq | Neq | Lt | Le | Gt | Ge | Ult | Uge -> true
  | _ -> false

let rec gen_expr env (e : Ast.expr) : value =
  match e with
  | Num n ->
    let r = alloc env in
    emit_imm env n r;
    Owned r
  | Var name -> (
    match Hashtbl.find_opt env.vars name with
    | Some (Lreg l) -> Borrowed l
    | Some (Lstack off) ->
      let r = alloc env in
      emit_slot_ld env off r;
      Owned r
    | None ->
      if not (Hashtbl.mem env.globals name) then
        error "%s: unknown variable %s" env.fname name;
      let r = alloc env in
      emit env "set g_%s, %s" name (reg_name r);
      emit env "ld [%s], %s" (reg_name r) (reg_name r);
      Owned r)
  | Index (name, idx) ->
    let vi = gen_expr env idx in
    let r = writable env vi in
    emit env "sll %s, 2, %s" (reg_name (vreg vi)) (reg_name r);
    let vb = gen_base_addr env name in
    emit env "ld [%s+%s], %s" (reg_name (vreg vb)) (reg_name r) (reg_name r);
    release env vb;
    Owned r
  | Unop (Neg, e) ->
    let v = gen_expr env e in
    let r = writable env v in
    emit env "sub %%g0, %s, %s" (reg_name (vreg v)) (reg_name r);
    Owned r
  | Unop (BNot, e) ->
    let v = gen_expr env e in
    let r = writable env v in
    emit env "xnor %%g0, %s, %s" (reg_name (vreg v)) (reg_name r);
    Owned r
  | Unop (Not, _) | Binop ((LAnd | LOr), _, _) -> Owned (gen_bool_value env e)
  | Binop (op, _, _) when is_cmp op -> Owned (gen_bool_value env e)
  | Binop (Mod, a, Num n) when fits_simm12 n && n <> 0 ->
    let va = gen_expr env a in
    let rq = alloc env in
    emit env "sdiv %s, %d, %s" (reg_name (vreg va)) n (reg_name rq);
    emit env "smul %s, %d, %s" (reg_name rq) n (reg_name rq);
    let r = writable env va in
    emit env "sub %s, %s, %s" (reg_name (vreg va)) (reg_name rq) (reg_name r);
    free env rq;
    Owned r
  | Binop (Mod, a, b) ->
    let va = gen_expr env a in
    let vb = gen_expr env b in
    let rq = alloc env in
    emit env "sdiv %s, %s, %s" (reg_name (vreg va)) (reg_name (vreg vb))
      (reg_name rq);
    emit env "smul %s, %s, %s" (reg_name rq) (reg_name (vreg vb)) (reg_name rq);
    let r = writable env va in
    emit env "sub %s, %s, %s" (reg_name (vreg va)) (reg_name rq) (reg_name r);
    free env rq;
    release env vb;
    Owned r
  | Binop (op, a, Num n) when binop_mnemonic op <> None && fits_simm12 n ->
    let va = gen_expr env a in
    let r = writable env va in
    emit env "%s %s, %d, %s"
      (Option.get (binop_mnemonic op))
      (reg_name (vreg va))
      n (reg_name r);
    Owned r
  | Binop (op, a, b) -> (
    match binop_mnemonic op with
    | Some m ->
      let va = gen_expr env a in
      let vb = gen_expr env b in
      let r = writable env va in
      emit env "%s %s, %s, %s" m
        (reg_name (vreg va))
        (reg_name (vreg vb))
        (reg_name r);
      release env vb;
      (match va with
      | Borrowed _ -> ()
      | Owned ra -> if ra <> r then free env ra);
      Owned r
    | None -> assert false)
  | Call (fname, args) -> Owned (gen_call env fname args)

(* base address of an array (local or global) *)
and gen_base_addr env name : value =
  match Hashtbl.find_opt env.vars name with
  | Some (Lstack off) ->
    let r = alloc env in
    if fits_simm12 off then emit env "add %%sp, %d, %s" off (reg_name r)
    else begin
      emit env "set %d, %s" off (reg_name r);
      emit env "add %%sp, %s, %s" (reg_name r) (reg_name r)
    end;
    Owned r
  | Some (Lreg _) -> error "%s: %s is a scalar, not an array" env.fname name
  | None ->
    if not (Hashtbl.mem env.globals name) then
      error "%s: unknown array %s" env.fname name;
    let r = alloc env in
    emit env "set g_%s, %s" name (reg_name r);
    Owned r

and gen_call env fname args =
  (match Hashtbl.find_opt env.func_names fname with
  | None -> error "%s: call to unknown function %s" env.fname fname
  | Some arity ->
    if arity <> List.length args then
      error "%s: %s expects %d arguments, got %d" env.fname fname arity
        (List.length args));
  if List.length args > 6 then error "%s: more than 6 arguments" env.fname;
  let temp_base = env.temp_sp in
  (* save live scratch registers (caller-saved pool) to frame temporaries *)
  let spilled =
    List.map
      (fun r ->
        let slot = push_temp env in
        emit_slot_st env r slot;
        (r, slot))
      env.live
  in
  (* evaluate arguments left to right into temporaries; nested calls in an
     argument expression allocate their own slots above ours. A lone
     borrowed (window-private) variable is safe across the moves and loads
     directly into its argument register below. *)
  let arg_values =
    List.map
      (fun a ->
        match gen_expr env a with
        | Borrowed l -> `Reg l
        | Owned r ->
          let slot = push_temp env in
          emit_slot_st env r slot;
          free env r;
          `Slot slot)
      args
  in
  (* load arguments into the outgoing registers *)
  List.iteri
    (fun k v ->
      match v with
      | `Slot slot -> emit_slot_ld env slot (8 + k)
      | `Reg l -> emit env "mov %s, %s" (reg_name l) (reg_name (8 + k)))
    arg_values;
  emit env "call f_%s" fname;
  (* capture the return value before refilling spilled registers *)
  let r = alloc env in
  emit env "mov %%o0, %s" (reg_name r);
  List.iter (fun (reg, slot) -> emit_slot_ld env slot reg) spilled;
  env.temp_sp <- temp_base;
  r

(* branch to [target] when the truth value of [e] equals [when_true] *)
and gen_branch env (e : Ast.expr) ~target ~when_true =
  match e with
  | Ast.Unop (Not, e) -> gen_branch env e ~target ~when_true:(not when_true)
  | Ast.Binop (op, a, b) when is_cmp op ->
    let va = gen_expr env a in
    let vb =
      match b with
      | Ast.Num n when fits_simm12 n -> `Imm n
      | _ -> `Val (gen_expr env b)
    in
    (match vb with
    | `Imm n -> emit env "cmp %s, %d" (reg_name (vreg va)) n
    | `Val vb ->
      emit env "cmp %s, %s" (reg_name (vreg va)) (reg_name (vreg vb));
      release env vb);
    release env va;
    emit env "%s %s" (cmp_branch ~negate:(not when_true) op) target
  | Ast.Binop (LAnd, a, b) ->
    if when_true then begin
      let skip = fresh_label env "and" in
      gen_branch env a ~target:skip ~when_true:false;
      gen_branch env b ~target ~when_true:true;
      emit_label env skip
    end
    else begin
      gen_branch env a ~target ~when_true:false;
      gen_branch env b ~target ~when_true:false
    end
  | Ast.Binop (LOr, a, b) ->
    if when_true then begin
      gen_branch env a ~target ~when_true:true;
      gen_branch env b ~target ~when_true:true
    end
    else begin
      let skip = fresh_label env "or" in
      gen_branch env a ~target:skip ~when_true:true;
      gen_branch env b ~target ~when_true:false;
      emit_label env skip
    end
  | Ast.Num n -> if n <> 0 = when_true then emit env "ba %s" target
  | _ ->
    let v = gen_expr env e in
    emit env "cmp %s, 0" (reg_name (vreg v));
    release env v;
    emit env "%s %s" (if when_true then "bne" else "be") target

(* materialise a boolean (0/1) value *)
and gen_bool_value env e =
  let r = alloc env in
  let ltrue = fresh_label env "t" in
  let lend = fresh_label env "d" in
  gen_branch env e ~target:ltrue ~when_true:true;
  emit env "mov 0, %s" (reg_name r);
  emit env "ba %s" lend;
  emit_label env ltrue;
  emit env "mov 1, %s" (reg_name r);
  emit_label env lend;
  r

(* evaluate [e] directly into register [dst] (a local), avoiding the extra
   move for the common [x = a op b] shapes *)
let gen_into env dst (e : Ast.expr) =
  match e with
  | Ast.Num n -> emit_imm env n dst
  | Ast.Var _ | Ast.Index _ | Ast.Unop _ | Ast.Call _
  | Ast.Binop ((LAnd | LOr), _, _) -> (
    match gen_expr env e with
    | Borrowed l -> if l <> dst then emit env "mov %s, %s" (reg_name l) (reg_name dst)
    | Owned r ->
      emit env "mov %s, %s" (reg_name r) (reg_name dst);
      free env r)
  | Ast.Binop (op, a, Num n) when binop_mnemonic op <> None && fits_simm12 n ->
    let va = gen_expr env a in
    emit env "%s %s, %d, %s"
      (Option.get (binop_mnemonic op))
      (reg_name (vreg va))
      n (reg_name dst);
    release env va
  | Ast.Binop (op, a, b) when binop_mnemonic op <> None ->
    let va = gen_expr env a in
    let vb = gen_expr env b in
    emit env "%s %s, %s, %s"
      (Option.get (binop_mnemonic op))
      (reg_name (vreg va))
      (reg_name (vreg vb))
      (reg_name dst);
    release env va;
    release env vb
  | Ast.Binop _ -> (
    match gen_expr env e with
    | Borrowed l -> if l <> dst then emit env "mov %s, %s" (reg_name l) (reg_name dst)
    | Owned r ->
      emit env "mov %s, %s" (reg_name r) (reg_name dst);
      free env r)

let store_var env name (v : value) =
  match Hashtbl.find_opt env.vars name with
  | Some (Lreg l) ->
    if vreg v <> l then emit env "mov %s, %s" (reg_name (vreg v)) (reg_name l)
  | Some (Lstack off) -> emit_slot_st env (vreg v) off
  | None ->
    if not (Hashtbl.mem env.globals name) then
      error "%s: unknown variable %s" env.fname name;
    let t = alloc env in
    emit env "set g_%s, %s" name (reg_name t);
    emit env "st %s, [%s]" (reg_name (vreg v)) (reg_name t);
    free env t

let rec gen_stmt env (s : Ast.stmt) =
  match s with
  | Expr e ->
    let v = gen_expr env e in
    release env v
  | Assign (name, e) -> (
    match Hashtbl.find_opt env.vars name with
    | Some (Lreg l) -> gen_into env l e
    | _ ->
      let v = gen_expr env e in
      store_var env name v;
      release env v)
  | Store (name, idx, e) ->
    let vi = gen_expr env idx in
    let ri = writable env vi in
    emit env "sll %s, 2, %s" (reg_name (vreg vi)) (reg_name ri);
    let vb = gen_base_addr env name in
    emit env "add %s, %s, %s" (reg_name (vreg vb)) (reg_name ri)
      (reg_name (vreg vb));
    free env ri;
    let vv = gen_expr env e in
    emit env "st %s, [%s]" (reg_name (vreg vv)) (reg_name (vreg vb));
    release env vv;
    release env vb
  | Decl (name, init) -> (
    match init with
    | None -> ()
    | Some e -> (
      match Hashtbl.find_opt env.vars name with
      | Some (Lreg l) -> gen_into env l e
      | _ ->
        let v = gen_expr env e in
        store_var env name v;
        release env v))
  | DeclArr _ -> ()
  | If (cond, then_, else_) ->
    let lelse = fresh_label env "else" in
    let lend = fresh_label env "fi" in
    gen_branch env cond ~target:lelse ~when_true:false;
    List.iter (gen_stmt env) then_;
    if else_ <> [] then begin
      emit env "ba %s" lend;
      emit_label env lelse;
      List.iter (gen_stmt env) else_;
      emit_label env lend
    end
    else emit_label env lelse
  | While (cond, body) ->
    let lloop = fresh_label env "while" in
    let lend = fresh_label env "wend" in
    emit_label env lloop;
    gen_branch env cond ~target:lend ~when_true:false;
    env.loop_labels <- (lend, lloop) :: env.loop_labels;
    List.iter (gen_stmt env) body;
    env.loop_labels <- List.tl env.loop_labels;
    emit env "ba %s" lloop;
    emit_label env lend
  | For (init, cond, step, body) ->
    gen_stmt env init;
    let lloop = fresh_label env "for" in
    let lcont = fresh_label env "fstep" in
    let lend = fresh_label env "fend" in
    emit_label env lloop;
    gen_branch env cond ~target:lend ~when_true:false;
    env.loop_labels <- (lend, lcont) :: env.loop_labels;
    List.iter (gen_stmt env) body;
    env.loop_labels <- List.tl env.loop_labels;
    emit_label env lcont;
    gen_stmt env step;
    emit env "ba %s" lloop;
    emit_label env lend
  | Break -> (
    match env.loop_labels with
    | (lend, _) :: _ -> emit env "ba %s" lend
    | [] -> error "%s: break outside loop" env.fname)
  | Continue -> (
    match env.loop_labels with
    | (_, lcont) :: _ -> emit env "ba %s" lcont
    | [] -> error "%s: continue outside loop" env.fname)
  | Return e ->
    (match e with
    | Some e -> gen_into env 24 e (* %i0 *)
    | None -> ());
    emit env "ba %s" env.epilogue

(* pre-scan: assign every local (params + decls) a location *)
let assign_locations fname params body =
  let vars = Hashtbl.create 16 in
  let next_lreg = ref 16 (* %l0 *) in
  let stack_off = ref 0 in
  let add_scalar name =
    if Hashtbl.mem vars name then error "%s: duplicate variable %s" fname name;
    if !next_lreg < 24 then begin
      Hashtbl.replace vars name (Lreg !next_lreg);
      incr next_lreg
    end
    else begin
      Hashtbl.replace vars name (Lstack !stack_off);
      stack_off := !stack_off + 4
    end
  in
  let add_array name size =
    if Hashtbl.mem vars name then error "%s: duplicate variable %s" fname name;
    Hashtbl.replace vars name (Lstack !stack_off);
    stack_off := !stack_off + (4 * size)
  in
  (* parameters land in %i0..%i5 *)
  List.iteri
    (fun k p ->
      if k >= 6 then error "%s: more than 6 parameters" fname;
      if Hashtbl.mem vars p then error "%s: duplicate parameter %s" fname p;
      Hashtbl.replace vars p (Lreg (24 + k)))
    params;
  let rec scan stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        match s with
        | Decl (name, _) -> add_scalar name
        | DeclArr (name, size) -> add_array name size
        | If (_, a, b) ->
          scan a;
          scan b
        | While (_, b) -> scan b
        | For (i, _, st, b) ->
          scan [ i ];
          scan [ st ];
          scan b
        | Expr _ | Assign _ | Store _ | Return _ | Break | Continue -> ())
      stmts
  in
  scan body;
  (vars, !stack_off)

let gen_func ~globals ~func_names (f : Ast.func) =
  let vars, locals_bytes = assign_locations f.name f.params f.body in
  let env =
    {
      body = Buffer.create 1024;
      labels = 0;
      vars;
      globals;
      func_names;
      free = scratch_pool;
      live = [];
      n_temps = 0;
      temp_sp = 0;
      locals_bytes;
      loop_labels = [];
      epilogue = Printf.sprintf ".L%s_epilogue" f.name;
      fname = f.name;
    }
  in
  List.iter (gen_stmt env) f.body;
  if env.live <> [] then error "%s: internal scratch leak" f.name;
  let frame = locals_bytes + (env.n_temps * 4) in
  let frame = (frame + 7) / 8 * 8 in
  let out = Buffer.create (Buffer.length env.body + 256) in
  Printf.bprintf out "f_%s:\n" f.name;
  Printf.bprintf out "        save %%sp, %d, %%sp\n" (-(frame + 64));
  Buffer.add_buffer out env.body;
  Printf.bprintf out "%s:\n" env.epilogue;
  Printf.bprintf out "        restore\n";
  Printf.bprintf out "        retl\n";
  Buffer.contents out

(** Compile a tinyc program to SRISC assembly source. The entry point calls
    [main] and halts. *)
let to_assembly (prog : Ast.program) =
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (g : Ast.global) ->
      match g with
      | Gvar (name, _) -> Hashtbl.replace globals name `Scalar
      | Garr (name, _, _) -> Hashtbl.replace globals name `Array)
    prog.globals;
  let func_names = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem func_names f.name then error "duplicate function %s" f.name;
      Hashtbl.replace func_names f.name (List.length f.params))
    prog.funcs;
  if not (Hashtbl.mem func_names "main") then error "no main function";
  let out = Buffer.create 4096 in
  Buffer.add_string out "        .data\n";
  List.iter
    (fun (g : Ast.global) ->
      match g with
      | Gvar (name, init) -> Printf.bprintf out "g_%s: .word %d\n" name init
      | Garr (name, size, init) ->
        if List.length init > size then error "initialiser too long for %s" name;
        Printf.bprintf out "g_%s:" name;
        if init <> [] then
          Printf.bprintf out " .word %s"
            (String.concat ", " (List.map string_of_int init));
        Buffer.add_char out '\n';
        let rest = size - List.length init in
        if rest > 0 then Printf.bprintf out "        .space %d\n" (rest * 4))
    prog.globals;
  Buffer.add_string out "        .text\n";
  Buffer.add_string out "start:  call f_main\n";
  Buffer.add_string out "        halt\n";
  List.iter
    (fun f -> Buffer.add_string out (gen_func ~globals ~func_names f))
    prog.funcs;
  Buffer.contents out
