(** Abstract syntax of tinyc, the small C-like language used to author the
    SPECint95-analogue workloads (DESIGN.md §5). Only [int] and
    one-dimensional [int] arrays exist; control flow is if/while/for with
    break/continue; functions use the SPARC register-window calling
    convention when compiled. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | BAnd
  | BOr
  | BXor
  | Shl
  | Shr  (** arithmetic shift right *)
  | Lshr  (** logical shift right *)
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Ult  (** unsigned comparisons, for hash/bit workloads *)
  | Uge
  | LAnd  (** short-circuit *)
  | LOr

type unop = Neg | Not | BNot

type expr =
  | Num of int
  | Var of string
  | Index of string * expr  (** a[e] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list

type stmt =
  | Expr of expr
  | Assign of string * expr
  | Store of string * expr * expr  (** a[e1] = e2 *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt * expr * stmt * stmt list
  | Return of expr option
  | Break
  | Continue
  | Decl of string * expr option  (** local scalar with optional init *)
  | DeclArr of string * int  (** local array of fixed size *)

type func = {
  name : string;
  params : string list;
  body : stmt list;
}

type global =
  | Gvar of string * int  (** name, initial value *)
  | Garr of string * int * int list  (** name, size, initial prefix *)

type program = { globals : global list; funcs : func list }
