(** tinyc: a small C-like language compiled to SRISC, used to author the
    SPECint95-analogue workloads.

    The language has [int] scalars and one-dimensional [int] arrays (global
    and local), functions with up to six parameters using the SPARC
    register-window calling convention, [if]/[while]/[for] with
    [break]/[continue], short-circuit [&&]/[||], and C operators plus [>>>]
    (logical shift right) and [<:] / [>:] (unsigned comparisons). See
    {!Ast} for the full grammar and {!Codegen} for the calling
    convention. *)

val compile_to_assembly : string -> string
(** Compile tinyc source to SRISC assembly text.
    @raise Lexer.Error, Parser.Error or Codegen.Error with diagnostics. *)

val compile : string -> Dts_asm.Program.t
(** Compile all the way to a loadable program image. *)
