(** tinyc driver: source → AST → SRISC assembly → executable image. *)

(** Compile tinyc source to assembly text. Raises {!Lexer.Error},
    {!Parser.Error} or {!Codegen.Error} with diagnostics. *)
let compile_to_assembly src = Codegen.to_assembly (Parser.parse src)

(** Compile tinyc source all the way to a loadable {!Dts_asm.Program.t}. *)
let compile src = Dts_asm.Assembler.assemble (compile_to_assembly src)
