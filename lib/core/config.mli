(** DTSVLIW machine configurations (Table 1 and §4.4). *)

(** Instruction/data cache setting: the idealised perfect caches of §4.1,
    or a sized set-associative cache with a miss penalty. *)
type cache_cfg =
  | Perfect
  | Sized of { kb : int; line : int; assoc : int; penalty : int }

type vliw_cache_cfg = { kb : int; assoc : int }

type t = {
  sched : Dts_sched.Sched_unit.config;  (** geometry, units, scheduler options *)
  vliw_cache : vliw_cache_cfg;
  icache : cache_cfg;
  dcache : cache_cfg;
  next_li_penalty : int;
      (** cycles lost when VLIW fetch crosses into the next block (§4.4) *)
  next_li_prediction : bool;
      (** §5 future work: a next-block predictor remembers each block's last
          exit target; a correct prediction hides the next-long-instruction
          penalty and the one-cycle redirect bubble *)
  swap_to_vliw : int;
      (** pipeline stages discarded/refilled when the VLIW Engine takes
          over (§3.6) *)
  swap_to_primary : int;
  primary_timing : Dts_primary.Primary.timing;
  store_scheme : Dts_vliw.Engine.store_scheme;
      (** §3.11: checkpoint recovery (the paper's implemented scheme) or the
          alternative data-store-list scheme it describes *)
  memcmp_interval : int;
      (** full memory comparison against the golden model every N
          synchronisation points (0 = only at the end of the run) *)
}

val feasible_slot_classes : Dts_isa.Instr.fu_class option array
(** §4.4's ten non-homogeneous units: 4 integer, 2 load/store, 2
    floating-point, 2 branch. *)

val ideal : ?width:int -> ?height:int -> unit -> t
(** The idealised machine of §4.1: perfect caches, 3072KB 4-way VLIW Cache,
    no next-long-instruction penalty, homogeneous units; default 8x8. *)

val feasible : unit -> t
(** The feasible machine of §4.4: 32KB caches with 8-cycle misses, 192KB
    4-way VLIW Cache, 1-cycle next-long-instruction penalty, the
    heterogeneous unit mix. *)

val make_cache : cache_cfg -> Dts_mem.Cache.t

val vliw_cache_sets : t -> int
(** Number of sets of the VLIW Cache for this block geometry: capacity over
    (decoded block bytes × associativity), rounded down to a power of
    two. *)

val describe : t -> string
(** One-line human-readable summary. *)
