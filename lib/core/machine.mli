(** The DTSVLIW machine: Fetch Unit, engine switching, block chaining and
    test-mode co-simulation (§3.6, §4).

    The machine always runs in the paper's {e test mode}: a golden
    sequential machine executes the same program and the complete
    architectural state is compared at every engine switch and block
    completion, so any reported cycle count doubles as a machine-checked
    correctness proof. The golden machine also supplies the sequential
    instruction count that is the numerator of the IPC metric. *)

exception Test_mode_mismatch of { cycle : int; pc : int; detail : string }
(** The dynamically scheduled execution diverged from the sequential
    semantics — always a simulator bug, never expected. *)

type vstate = {
  mutable block : Dts_sched.Schedtypes.block;
  mutable idx : int;
}

type mode = M_primary | M_vliw of vstate

(** Pluggable trace scheduler: the DTSVLIW Scheduler Unit by default, or
    the DIF greedy scheduler ({!Dts_dif}) for the Figure 9 baseline. *)
type scheduler_iface = {
  s_tick : unit -> unit;  (** one machine cycle of scheduling work *)
  s_insert : Dts_primary.Primary.retired -> [ `Ok | `Full ];
  s_finish : nba_addr:int -> Dts_sched.Schedtypes.block option;
}

type t = {
  cfg : Config.t;
  st : Dts_isa.State.t;  (** the architectural state (shared by engines) *)
  golden : Dts_golden.Golden.t;  (** the test-mode reference machine *)
  primary : Dts_primary.Primary.t;
  sched : scheduler_iface;
  engine : Dts_vliw.Engine.t;
  vcache : Dts_sched.Schedtypes.block Dts_mem.Blockcache.t;  (** VLIW Cache *)
  icache : Dts_mem.Cache.t;
  dcache : Dts_mem.Cache.t;
  compile : bool;
      (** execute VLIW Cache hits through compiled plans (default) or the
          engine's interpreter ([~compile:false]) *)
  plan_cache : (int, Dts_vliw.Plan.t) Hashtbl.t;
      (** block tag -> compiled plan; mirrors VLIW Cache residency *)
  mutable last_plan : Dts_vliw.Plan.t option;
      (** memo of the most recently entered plan, guarded by block
          identity — a block spinning on itself re-enters without a
          [plan_cache] lookup *)
  code_index : (int, int list ref) Hashtbl.t;
      (** code word -> tags of cached blocks scheduled from it, for
          self-modifying-code invalidation *)
  mutable mode : mode;
  mutable vmode : mode;
      (** the reusable [M_vliw] record entered by every engine switch —
          allocated once, mutated in place per block transition *)
  mutable cycles : int;  (** total machine cycles *)
  mutable vliw_cycles : int;  (** cycles spent in the VLIW Engine *)
  mutable exception_mode : bool;  (** §3.11: scheduling disabled until the
                                      exception repeats in the Primary *)
  pending_blocks : (int * Dts_sched.Schedtypes.block) Queue.t;
      (** blocks draining to the VLIW Cache: (ready cycle, block) *)
  next_li_predictor : (int, int) Hashtbl.t;
      (** §5 extension: block tag -> last observed exit target *)
  mutable halted : bool;
  mutable syncs : int;
  obs : Dts_obs.Stats.collector;
      (** aggregated statistics, cycle attribution and the event tracer;
          treat as internal — read telemetry through {!stats} *)
}

val create :
  ?compile:bool ->
  ?fastpath:bool ->
  ?scheduler:(unit -> scheduler_iface) ->
  ?tracer:Dts_obs.Trace.t ->
  Config.t ->
  Dts_asm.Program.t ->
  t
(** Boot [program] into a fresh machine. [scheduler] overrides the default
    DTSVLIW Scheduler Unit (used by the DIF baseline); [tracer] (default
    {!Dts_obs.Trace.null}, i.e. disabled) receives the structural events of
    the run as JSONL. [compile] (default [true]) executes cached blocks
    through install-time-compiled plans ({!Dts_vliw.Plan}); [~compile:false]
    falls back to the engine's interpreter — the two are differentially
    tested to produce identical statistics, registers and memory.
    [fastpath] (default [true]) runs the sequential engines (Primary
    Processor and golden co-simulation) on the allocation-free packed-op
    interpreter; [~fastpath:false] keeps the boxed
    {!Dts_isa.Semantics.exec} path — also differentially tested
    identical. *)

val step : t -> unit
(** One simulation step: one Primary instruction or one long instruction.
    @raise Test_mode_mismatch on architectural divergence. *)

val run : ?max_instructions:int -> t -> int
(** Run until the program halts or the golden machine has retired
    [max_instructions]; returns the sequential instruction count. Performs
    a final full-state (including memory) comparison. *)

val stats : t -> Dts_obs.Stats.t
(** Consolidated snapshot of every counter the machine and its components
    (scheduler, VLIW engine, caches, tracer) maintain, including the
    per-category cycle attribution. The one read surface for telemetry. *)

val ipc : t -> float
(** Sequential instructions / DTSVLIW cycles — the paper's metric.
    Derived from the {!stats} snapshot. *)

val vliw_cycle_fraction : t -> float
(** Fraction of cycles spent executing long instructions (Table 3's "VLIW
    Engine Execution Cycles"). Derived from the {!stats} snapshot. *)

val slot_utilisation : t -> float
(** Fraction of long-instruction slots filled in flushed blocks (§4.4
    reports 33% for the paper's machine). Derived from the {!stats}
    snapshot. *)
