(** The DTSVLIW machine: Fetch Unit, engine switching, block chaining and
    test-mode co-simulation (§3.6, §4).

    The machine always runs in the paper's {e test mode}: a golden
    sequential machine executes the same program and the complete
    architectural state is compared at every engine switch and block
    completion, so any reported cycle count doubles as a machine-checked
    correctness proof. The golden machine also supplies the sequential
    instruction count that is the numerator of the IPC metric. *)

exception Test_mode_mismatch of { cycle : int; pc : int; detail : string }
(** The dynamically scheduled execution diverged from the sequential
    semantics — always a simulator bug, never expected. *)

type mode =
  | M_primary
  | M_vliw of { block : Dts_sched.Schedtypes.block; mutable idx : int }

(** Pluggable trace scheduler: the DTSVLIW Scheduler Unit by default, or
    the DIF greedy scheduler ({!Dts_dif}) for the Figure 9 baseline. *)
type scheduler_iface = {
  s_tick : unit -> unit;  (** one machine cycle of scheduling work *)
  s_insert : Dts_primary.Primary.retired -> [ `Ok | `Full ];
  s_finish : nba_addr:int -> Dts_sched.Schedtypes.block option;
}

type t = {
  cfg : Config.t;
  st : Dts_isa.State.t;  (** the architectural state (shared by engines) *)
  golden : Dts_golden.Golden.t;  (** the test-mode reference machine *)
  primary : Dts_primary.Primary.t;
  sched : scheduler_iface;
  engine : Dts_vliw.Engine.t;
  vcache : Dts_sched.Schedtypes.block Dts_mem.Blockcache.t;  (** VLIW Cache *)
  icache : Dts_mem.Cache.t;
  dcache : Dts_mem.Cache.t;
  mutable mode : mode;
  mutable cycles : int;  (** total machine cycles *)
  mutable vliw_cycles : int;  (** cycles spent in the VLIW Engine *)
  mutable exception_mode : bool;  (** §3.11: scheduling disabled until the
                                      exception repeats in the Primary *)
  pending_blocks : (int * Dts_sched.Schedtypes.block) Queue.t;
      (** blocks draining to the VLIW Cache: (ready cycle, block) *)
  next_li_predictor : (int, int) Hashtbl.t;
      (** §5 extension: block tag -> last observed exit target *)
  mutable nlp_hits : int;
  mutable nlp_misses : int;
  mutable halted : bool;
  mutable syncs : int;
  rr_max : int array;
      (** max renaming registers used by any block, per {!Dts_sched.Schedtypes.rr_kind} *)
  mutable blocks_flushed : int;
  mutable slots_filled : int;
  mutable slots_total : int;
  mutable block_lis : int;
  mutable engine_switches : int;
}

val create : ?scheduler:(unit -> scheduler_iface) -> Config.t -> Dts_asm.Program.t -> t
(** Boot [program] into a fresh machine. [scheduler] overrides the default
    DTSVLIW Scheduler Unit (used by the DIF baseline). *)

val step : t -> unit
(** One simulation step: one Primary instruction or one long instruction.
    @raise Test_mode_mismatch on architectural divergence. *)

val run : ?max_instructions:int -> t -> int
(** Run until the program halts or the golden machine has retired
    [max_instructions]; returns the sequential instruction count. Performs
    a final full-state (including memory) comparison. *)

val ipc : t -> float
(** Sequential instructions / DTSVLIW cycles — the paper's metric. *)

val vliw_cycle_fraction : t -> float
(** Fraction of cycles spent executing long instructions (Table 3's "VLIW
    Engine Execution Cycles"). *)

val slot_utilisation : t -> float
(** Fraction of long-instruction slots filled in flushed blocks (§4.4
    reports 33% for the paper's machine). *)
