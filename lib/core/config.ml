(** DTSVLIW machine configuration (Table 1 and §4.4). *)

type cache_cfg =
  | Perfect  (** always hits, no penalty — the idealised setting of §4.1 *)
  | Sized of { kb : int; line : int; assoc : int; penalty : int }

type vliw_cache_cfg = { kb : int; assoc : int }

type t = {
  sched : Dts_sched.Sched_unit.config;
  vliw_cache : vliw_cache_cfg;
  icache : cache_cfg;
  dcache : cache_cfg;
  next_li_penalty : int;
      (** cycles lost when VLIW fetch crosses into the next block (§4.4) *)
  next_li_prediction : bool;
      (** §5 future work: a next-block predictor remembers each block's last
          exit target; a correct prediction hides the next-long-instruction
          penalty and the one-cycle redirect bubble *)
  swap_to_vliw : int;
      (** pipeline stages discarded/refilled when the VLIW Engine takes
          over (§3.6) *)
  swap_to_primary : int;
  primary_timing : Dts_primary.Primary.timing;
  store_scheme : Dts_vliw.Engine.store_scheme;
      (** §3.11: checkpoint recovery (the paper's implemented scheme) or the
          alternative data-store-list scheme it describes *)
  memcmp_interval : int;
      (** full memory comparison against the golden model every N
          synchronisation points (0 = only at the end of the run) *)
}

(** The heterogeneous functional-unit mix of the feasible machine (§4.4):
    4 integer, 2 load/store, 2 floating-point and 2 branch units. *)
let feasible_slot_classes : Dts_isa.Instr.fu_class option array =
  [|
    Some Dts_isa.Instr.Fu_int;
    Some Fu_int;
    Some Fu_int;
    Some Fu_int;
    Some Fu_mem;
    Some Fu_mem;
    Some Fu_fp;
    Some Fu_fp;
    Some Fu_br;
    Some Fu_br;
  |]

(** Idealised 8x8 machine of §4.1: perfect caches, large VLIW Cache, no
    next-long-instruction penalty, homogeneous units. *)
let ideal ?(width = 8) ?(height = 8) () =
  {
    sched =
      {
        Dts_sched.Sched_unit.default_config with
        width;
        height;
        slot_classes = None;
      };
    vliw_cache = { kb = 3072; assoc = 4 };
    icache = Perfect;
    dcache = Perfect;
    next_li_penalty = 0;
    next_li_prediction = false;
    swap_to_vliw = 2;
    swap_to_primary = 3;
    primary_timing = Dts_primary.Primary.default_timing;
    store_scheme = Dts_vliw.Engine.Checkpoint_recovery;
    memcmp_interval = 64;
  }

(** The feasible machine of §4.4: 32KB 4-way I-cache and 32KB direct-mapped
    D-cache (1-cycle access, 8-cycle miss), 192KB 4-way VLIW Cache, 1-cycle
    next-long-instruction miss penalty, ten non-homogeneous functional
    units. *)
let feasible () =
  {
    sched =
      {
        Dts_sched.Sched_unit.default_config with
        width = 10;
        height = 8;
        slot_classes = Some feasible_slot_classes;
      };
    vliw_cache = { kb = 192; assoc = 4 };
    icache = Sized { kb = 32; line = 32; assoc = 4; penalty = 8 };
    dcache = Sized { kb = 32; line = 32; assoc = 1; penalty = 8 };
    next_li_penalty = 1;
    next_li_prediction = false;
    swap_to_vliw = 2;
    swap_to_primary = 3;
    primary_timing = Dts_primary.Primary.default_timing;
    store_scheme = Dts_vliw.Engine.Checkpoint_recovery;
    memcmp_interval = 64;
  }

let make_cache = function
  | Perfect -> Dts_mem.Cache.perfect ()
  | Sized { kb; line; assoc; penalty } ->
    Dts_mem.Cache.create ~size_bytes:(kb * 1024) ~line_bytes:line ~assoc
      ~miss_penalty:penalty

(** Number of sets for the VLIW Cache given the block geometry: capacity in
    bytes over (decoded block bytes × associativity), rounded down to a
    power of two. *)
let vliw_cache_sets t =
  let line =
    Dts_sched.Schedtypes.block_line_bytes ~width:t.sched.width
      ~height:t.sched.height
  in
  let lines = t.vliw_cache.kb * 1024 / line in
  let sets = max 1 (lines / t.vliw_cache.assoc) in
  (* round down to a power of two *)
  let rec pow2 p = if p * 2 <= sets then pow2 (p * 2) else p in
  pow2 1

let describe t =
  Printf.sprintf "%dx%d blocks, %dKB/%d-way VLIW$, I$ %s, D$ %s"
    t.sched.width t.sched.height t.vliw_cache.kb t.vliw_cache.assoc
    (match t.icache with Perfect -> "perfect" | Sized { kb; _ } -> Printf.sprintf "%dKB" kb)
    (match t.dcache with Perfect -> "perfect" | Sized { kb; _ } -> Printf.sprintf "%dKB" kb)
