(** The DTSVLIW machine: Fetch Unit, engine switching, block chaining and
    test-mode co-simulation (§3.6, §4).

    The machine always runs in the paper's {e test mode}: a golden
    sequential machine executes the same program and the full architectural
    state is compared at every engine switch and block completion. Besides
    validating the simulation, the golden machine provides the precise
    sequential instruction count used as the numerator of the
    instructions-per-cycle metric. *)

open Dts_sched.Schedtypes
module Attr = Dts_obs.Attribution
module Trace = Dts_obs.Trace

exception
  Test_mode_mismatch of { cycle : int; pc : int; detail : string }

type vstate = { mutable block : block; mutable idx : int }
(** named, not inline: [run]'s burst loop passes the record to a helper *)

type mode = M_primary | M_vliw of vstate

(** Pluggable trace scheduler: the DTSVLIW Scheduler Unit by default, or the
    DIF greedy scheduler ({!Dts_dif}) for the Figure 9 baseline. *)
type scheduler_iface = {
  s_tick : unit -> unit;  (** one machine cycle of scheduling work *)
  s_insert : Dts_primary.Primary.retired -> [ `Ok | `Full ];
  s_finish : nba_addr:int -> block option;
}

type t = {
  cfg : Config.t;
  st : Dts_isa.State.t;
  golden : Dts_golden.Golden.t;
  primary : Dts_primary.Primary.t;
  sched : scheduler_iface;
  engine : Dts_vliw.Engine.t;
  vcache : block Dts_mem.Blockcache.t;
  icache : Dts_mem.Cache.t;
  dcache : Dts_mem.Cache.t;
  compile : bool;
      (** compile installed blocks into execution plans (default); [false]
          interprets the scheduling structures directly — the differential
          test baseline and debugging escape hatch *)
  plan_cache : (int, Dts_vliw.Plan.t) Hashtbl.t;
      (** block tag -> compiled plan; mirrors VLIW Cache residency (every
          payload drop also drops the plan) *)
  mutable last_plan : Dts_vliw.Plan.t option;
      (** memo of the most recently entered plan: a block spinning on
          itself re-enters without touching [plan_cache]. Guarded by block
          identity, so staleness is impossible — a dropped block is never
          the probe result again *)
  code_index : (int, int list ref) Hashtbl.t;
      (** code word address -> tags of cached blocks scheduled from it;
          consulted by the memory write hook so self-modifying code
          invalidates stale blocks (and with them their plans) *)
  mutable mode : mode;
  mutable vmode : mode;
      (** the reusable [M_vliw] record entered by every engine switch —
          allocated once, mutated in place per block transition *)
  mutable cycles : int;
  mutable vliw_cycles : int;
  mutable exception_mode : bool;
  pending_blocks : (int * block) Queue.t;  (** (ready cycle, block) *)
  next_li_predictor : (int, int) Hashtbl.t;
      (** block tag -> last observed exit target (when enabled) *)
  mutable halted : bool;
  mutable syncs : int;
  obs : Dts_obs.Stats.collector;
      (** aggregated statistics, cycle attribution and the event tracer;
          read through {!stats} snapshots *)
}

let default_scheduler cfg =
  let u = Dts_sched.Sched_unit.create cfg.Config.sched in
  {
    s_tick = (fun () -> ignore (Dts_sched.Sched_unit.tick u));
    s_insert = (fun r -> Dts_sched.Sched_unit.insert u r);
    s_finish = (fun ~nba_addr -> Dts_sched.Sched_unit.finish_block u ~nba_addr);
  }

(* --- plan / code-index bookkeeping (install-time block compilation) --- *)

(* Distinct code word addresses a block was scheduled from. *)
let block_words (b : block) =
  let seen = Hashtbl.create 32 in
  Array.iter
    (fun li ->
      li_iter
        (fun _ op _ ->
          match op with
          | Op s ->
            let w = s.addr land lnot 3 in
            if not (Hashtbl.mem seen w) then Hashtbl.replace seen w ()
          | Copy _ -> ())
        li)
    b.lis;
  Hashtbl.fold (fun w () acc -> w :: acc) seen []

let register_block_words t (b : block) =
  List.iter
    (fun w ->
      (* the SMC hook below is a watched hook: make sure every page hosting
         an installed block's code words is under write watch (normally
         already true — the words were fetched through the pre-decoded
         store, which watches as it caches) *)
      Dts_mem.Memory.watch t.st.mem w;
      match Hashtbl.find_opt t.code_index w with
      | Some r -> if not (List.mem b.tag_addr !r) then r := b.tag_addr :: !r
      | None -> Hashtbl.add t.code_index w (ref [ b.tag_addr ]))
    (block_words b)

(* Fired by the VLIW Cache whenever a block leaves it (replacement,
   eviction, invalidation): the plan compiled from the block dies with it,
   and its code words stop mapping to its tag. *)
let on_block_drop t (b : block) =
  Hashtbl.remove t.plan_cache b.tag_addr;
  List.iter
    (fun w ->
      match Hashtbl.find_opt t.code_index w with
      | None -> ()
      | Some r ->
        r := List.filter (fun tag -> tag <> b.tag_addr) !r;
        if !r = [] then Hashtbl.remove t.code_index w)
    (block_words b)

(* Memory write hook: a store overlapping a cached block's code makes the
   block (and its plan) stale — drop it so the next probe misses and the
   Scheduler Unit rebuilds from the new code. Blocks still draining in the
   pending queue are not indexed yet; as before this PR, a store into code
   that is simultaneously being scheduled is caught by test mode. *)
let on_code_write t addr =
  if Hashtbl.length t.code_index > 0 then begin
    match Hashtbl.find_opt t.code_index (addr land lnot 3) with
    | None -> ()
    | Some r ->
      (* invalidation fires on_block_drop, which edits the lists we are
         walking — snapshot first *)
      let tags = !r in
      List.iter
        (fun tag ->
          if Dts_mem.Blockcache.invalidate t.vcache tag then
            t.obs.code_invalidations <- t.obs.code_invalidations + 1)
        tags
  end

let create ?(compile = true) ?(fastpath = true) ?scheduler ?tracer cfg program =
  let st = Dts_asm.Program.boot ~nwindows:cfg.Config.sched.nwindows program in
  let golden_st = Dts_isa.State.copy st in
  let icache = Config.make_cache cfg.icache in
  let dcache = Config.make_cache cfg.dcache in
  let sched =
    match scheduler with Some f -> f () | None -> default_scheduler cfg
  in
  let obs = Dts_obs.Stats.collector ?tracer () in
  let t =
    {
      cfg;
      st;
      golden = Dts_golden.Golden.of_state ~fastpath golden_st;
      primary =
        Dts_primary.Primary.create ~timing:cfg.primary_timing ~fastpath
          ~icache ~dcache st;
      sched;
      engine =
        Dts_vliw.Engine.create ~scheme:cfg.store_scheme ~tracer:obs.tracer
          ~dcache st;
      vcache =
        Dts_mem.Blockcache.create ~n_sets:(Config.vliw_cache_sets cfg)
          ~assoc:cfg.vliw_cache.assoc;
      icache;
      dcache;
      compile;
      plan_cache = Hashtbl.create 256;
      last_plan = None;
      code_index = Hashtbl.create 1024;
      mode = M_primary;
      vmode = M_primary;
      cycles = 0;
      vliw_cycles = 0;
      exception_mode = false;
      pending_blocks = Queue.create ();
      next_li_predictor = Hashtbl.create 256;
      halted = false;
      syncs = 0;
      obs;
    }
  in
  Dts_mem.Blockcache.set_on_drop t.vcache (fun _key b -> on_block_drop t b);
  (* registered after the golden state was copied, so only this machine's
     memory notifies (the golden machine executes unmodified semantics on
     its own copy). A watched hook: {!register_block_words} puts every page
     hosting installed-block code under watch, so ordinary data stores pay
     no hook dispatch at all. *)
  Dts_mem.Memory.add_watched_write_hook st.mem (fun addr -> on_code_write t addr);
  (* the two states (and their memories) are bit-identical right now:
     anchor the register and dirty-page journals here so every subsequent
     sync can compare only what was written since *)
  Dts_isa.State.dirty_clear st;
  Dts_isa.State.dirty_clear golden_st;
  Dts_mem.Memory.dirty_clear st.mem;
  Dts_mem.Memory.dirty_clear golden_st.mem;
  t

(* Cycle attribution: every [t.cycles] increment below is paired with a
   charge to exactly one category, so the categories sum to the total
   cycle count (test-enforced invariant). *)
let charge t cat n = if n <> 0 then Attr.charge t.obs.attr cat n

let tracing t = Trace.enabled t.obs.tracer
let trace t ev = Trace.emit t.obs.tracer ev

(* ------------------------------------------------------------------ *)
(* Test-mode synchronisation                                            *)
(* ------------------------------------------------------------------ *)

let mismatch t detail =
  raise (Test_mode_mismatch { cycle = t.cycles; pc = t.st.pc; detail })

let state_diff a b =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Dts_isa.State.pp_diff fmt (a, b);
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(** Advance the golden machine to the DTSVLIW PC and compare states. The
    same PC can recur (loops), so on a register mismatch the golden machine
    is stepped past the occurrence and the search continues — a false match
    would require bit-identical states, which is indistinguishable anyway.

    The register comparison is the journalled {!State.dirty_regs_equal}:
    both states compared equal at the previous successful sync (or at boot,
    when the golden machine is a copy), and every register write since is
    journalled, so only the written registers need comparing. *)
let rec sync_loop t (gst : Dts_isa.State.t) target fuel =
  (* run to the next occurrence of [target] in one tight loop (the fast
     path steps with a single exception handler for the whole run), then
     apply the machine-side acceptance predicate at the stop point *)
  let fuel = Dts_golden.Golden.advance_to_pc t.golden ~pc:target ~fuel in
  if
    gst.pc = target
    && gst.halted = t.st.halted
    && Dts_isa.State.dirty_regs_equal gst t.st
  then true
  else if gst.halted || fuel <= 0 then false
  else begin
    (* same PC, different registers: a loop brought the golden machine to
       [target] early — step past this occurrence and keep searching *)
    (try Dts_golden.Golden.step t.golden
     with Dts_golden.Golden.Program_halted -> ());
    sync_loop t gst target (fuel - 1)
  end

let sync t =
  let target = t.st.pc in
  let gst = Dts_golden.Golden.state t.golden in
  if not (sync_loop t gst target 40_000_000) then
    mismatch t
      (Printf.sprintf "golden model diverged at pc=%#x:\n%s" target
         (state_diff t.st gst));
  t.syncs <- t.syncs + 1;
  if t.cfg.memcmp_interval > 0 && t.syncs mod t.cfg.memcmp_interval = 0
  then begin
    (* periodic sweep: the whole register file — a safety net under the
       journalled per-sync compare — and the memories. The memory compare
       is batched: both memories were equal at the last sweep (or at boot),
       so only pages either side dirtied since then are compared, page by
       page, and the dirty journals reset on success. *)
    if not (Dts_isa.State.regs_equal gst t.st) then
      mismatch t
        (Printf.sprintf "golden model diverged at pc=%#x:\n%s" target
           (state_diff t.st gst));
    if not (Dts_mem.Memory.dirty_equal t.st.mem gst.mem) then
      mismatch t
        (Printf.sprintf "memory diverged near %s"
           (match Dts_mem.Memory.first_difference t.st.mem gst.mem with
           | Some a -> Printf.sprintf "%#x" a
           | None -> "?"));
    Dts_mem.Memory.dirty_clear t.st.mem;
    Dts_mem.Memory.dirty_clear gst.mem
  end;
  Dts_isa.State.dirty_clear gst;
  Dts_isa.State.dirty_clear t.st

(* ------------------------------------------------------------------ *)
(* Block bookkeeping                                                    *)
(* ------------------------------------------------------------------ *)

(* Drain times are not monotone (a tall block flushed just before a short
   one can be ready later), so filter the whole queue, keeping flush order —
   the stable partition the list implementation performed. The queue is
   almost always empty or a couple of entries deep; what matters is that
   {!flush_current}'s enqueue is O(1) instead of a tail append. *)
let install_ready_blocks t =
  if not (Queue.is_empty t.pending_blocks) then begin
    let waiting = Queue.create () in
    Queue.iter
      (fun ((c, b) as pending) ->
        if c <= t.cycles then begin
          (match Dts_mem.Blockcache.insert t.vcache b.tag_addr b with
          | Some evicted when tracing t ->
            trace t (Trace.Block_evict { tag = evicted.tag_addr })
          | Some _ | None -> ());
          register_block_words t b;
          if tracing t then trace t (Trace.Block_install { tag = b.tag_addr })
        end
        else Queue.add pending waiting)
      t.pending_blocks;
    Queue.clear t.pending_blocks;
    Queue.transfer waiting t.pending_blocks
  end

(* Table 3's slot-occupancy rows, refined per functional-unit class; copies
   (the scheduler's own instructions) get their own bucket. *)
let slot_class_index : Dts_sched.Schedtypes.slot_op -> int = function
  | Op s -> (
    match s.fu with
    | Dts_isa.Instr.Fu_int -> 0
    | Fu_mem -> 1
    | Fu_fp -> 2
    | Fu_br -> 3)
  | Copy _ -> 4

let note_block_stats t (b : block) =
  let o = t.obs in
  o.blocks_flushed <- o.blocks_flushed + 1;
  o.slots_filled <- o.slots_filled + b.n_slots_filled;
  o.slots_total <- o.slots_total + (Array.length b.lis * t.cfg.sched.width);
  o.block_lis <- o.block_lis + Array.length b.lis;
  Array.iter
    (fun li ->
      li_iter
        (fun _ op _ ->
          let k = slot_class_index op in
          o.slots_by_class.(k) <- o.slots_by_class.(k) + 1)
        li)
    b.lis;
  Array.iteri (fun k v -> o.rr_max.(k) <- max o.rr_max.(k) v) b.rr_counts

(** Freeze the block under construction; it drains to the VLIW Cache at one
    long instruction per cycle (§3.2) and becomes visible when done. *)
let flush_current t ~nba_addr =
  match t.sched.s_finish ~nba_addr with
  | None -> ()
  | Some b ->
    note_block_stats t b;
    if tracing t then
      trace t
        (Trace.Block_flush
           {
             tag = b.tag_addr;
             lis = Array.length b.lis;
             slots = b.n_slots_filled;
           });
    Queue.add (t.cycles + Array.length b.lis, b) t.pending_blocks;
    t.obs.pending_high_water <-
      max t.obs.pending_high_water (Queue.length t.pending_blocks)

let probe t addr =
  install_ready_blocks t;
  Dts_mem.Blockcache.find t.vcache addr

(* ------------------------------------------------------------------ *)
(* Engine transitions                                                   *)
(* ------------------------------------------------------------------ *)

let compile_plan t (block : block) =
  let p = Dts_vliw.Plan.compile ~nwindows:t.st.nwindows block in
  t.obs.plans_compiled <- t.obs.plans_compiled + 1;
  Hashtbl.replace t.plan_cache block.tag_addr p;
  p

let enter_vliw t block =
  t.obs.engine_switches <- t.obs.engine_switches + 1;
  if tracing t then begin
    trace t (Trace.Block_fetch { tag = block.tag_addr });
    trace t (Trace.Engine_switch { to_vliw = true; pc = block.tag_addr })
  end;
  (if t.compile then begin
     (* lazy compile-on-first-fetch: the physical-equality guard catches a
        same-tag reinstall whose plan drop raced the pending-queue window.
        [Hashtbl.find]+[Not_found], not [find_opt]: entering a block must
        not box an option *)
     let plan =
       match t.last_plan with
       | Some p when p.Dts_vliw.Plan.p_block == block ->
         t.obs.plan_hits <- t.obs.plan_hits + 1;
         p
       | _ ->
         let plan =
           match Hashtbl.find t.plan_cache block.tag_addr with
           | p when p.Dts_vliw.Plan.p_block == block ->
             t.obs.plan_hits <- t.obs.plan_hits + 1;
             p
           | _ -> compile_plan t block
           | exception Not_found -> compile_plan t block
         in
         t.last_plan <- Some plan;
         plan
     in
     Dts_vliw.Engine.enter_plan t.engine plan
   end
   else Dts_vliw.Engine.enter_block t.engine block);
  (* one [M_vliw] record is allocated on the first switch and then reused:
     block transitions are the steady state of the simulator *)
  match t.vmode with
  | M_vliw v ->
    v.block <- block;
    v.idx <- 0;
    t.mode <- t.vmode
  | M_primary ->
    let m = M_vliw { block; idx = 0 } in
    t.vmode <- m;
    t.mode <- m

(* §5 extension: next-long-instruction prediction. A tiny table remembers
   each block's most recent exit target; when the prediction is right the
   engine has already fetched across the boundary, hiding [penalty]. *)
let predicted_transition t ~tag ~actual ~penalty =
  if not t.cfg.next_li_prediction then penalty
  else begin
    let hit =
      match Hashtbl.find t.next_li_predictor tag with
      | v -> v = actual
      | exception Not_found -> false
    in
    Hashtbl.replace t.next_li_predictor tag actual;
    if hit then begin
      t.obs.nlp_hits <- t.obs.nlp_hits + 1;
      0
    end
    else begin
      t.obs.nlp_misses <- t.obs.nlp_misses + 1;
      penalty
    end
  end

(** [cat] attributes the swap bubble: {!Attr.Switch_to_primary} on a clean
    block exit, {!Attr.Recovery_switch} after a rollback. *)
let to_primary t cat =
  t.cycles <- t.cycles + t.cfg.swap_to_primary;
  charge t cat t.cfg.swap_to_primary;
  if tracing t then
    trace t (Trace.Engine_switch { to_vliw = false; pc = t.st.pc });
  Dts_primary.Primary.reset_hazards t.primary;
  t.mode <- M_primary

(* ------------------------------------------------------------------ *)
(* One simulation step                                                  *)
(* ------------------------------------------------------------------ *)

let step_primary t =
  (* the Fetch Unit probes the VLIW Cache with the address of the
     instruction about to execute (§3.6) *)
  match (if t.exception_mode then None else probe t t.st.pc) with
  | Some block ->
    (* flush the block under construction, pointing it at the hit block *)
    flush_current t ~nba_addr:t.st.pc;
    t.cycles <- t.cycles + t.cfg.swap_to_vliw;
    charge t Attr.Switch_to_vliw t.cfg.swap_to_vliw;
    sync t;
    enter_vliw t block
  | None -> (
    match Dts_primary.Primary.step t.primary with
    | exception Dts_primary.Primary.Halted ->
      flush_current t ~nba_addr:t.st.pc;
      t.halted <- true
    | r ->
      t.cycles <- t.cycles + r.cycles;
      charge t Attr.Primary_icache_stall r.icache_stall;
      charge t Attr.Primary_dcache_stall r.dcache_stall;
      charge t Attr.Primary_execute (r.cycles - r.icache_stall - r.dcache_stall);
      if t.exception_mode then begin
        if r.trapped then t.exception_mode <- false
      end
      else if Dts_isa.Instr.is_ignored_by_scheduler r.instr then
        t.sched.s_tick ()
      else if Dts_isa.Instr.is_non_schedulable r.instr || r.trapped then
        flush_current t ~nba_addr:r.addr
      else begin
        (* the Scheduler Unit advances every machine cycle *)
        for _ = 1 to r.cycles do
          t.sched.s_tick ()
        done;
        match t.sched.s_insert r with
        | `Ok -> ()
        | `Full -> (
          (* flush on full, then the instruction starts the next block *)
          t.obs.insert_full <- t.obs.insert_full + 1;
          flush_current t ~nba_addr:r.addr;
          match t.sched.s_insert r with
          | `Ok -> ()
          | `Full -> assert false)
      end)

type machine = t
(** alias: [open Dts_vliw.Engine] below shadows [t] *)

open Dts_vliw.Engine

(* Handling of a long instruction's non-[R_next] outcome; [t.cycles] and
   the execute/stall attribution for the li itself are already charged. *)
let li_outcome (t : machine) (block : block) res =
  match res with
  | R_next -> assert false
  | R_block_end { next_addr } -> (
      t.st.pc <- next_addr;
      let drain = Dts_vliw.Engine.commit_block t.engine in
      t.cycles <- t.cycles + drain;
      t.vliw_cycles <- t.vliw_cycles + drain;
      charge t Attr.Vliw_dcache_stall drain;
      sync t;
      let penalty =
        predicted_transition t ~tag:block.tag_addr ~actual:next_addr
          ~penalty:t.cfg.next_li_penalty
      in
      match probe t next_addr with
      | Some b2 ->
        t.cycles <- t.cycles + penalty;
        t.vliw_cycles <- t.vliw_cycles + penalty;
        charge t Attr.Next_li_penalty penalty;
        enter_vliw t b2
      | None -> to_primary t Attr.Switch_to_primary)
  | R_redirect { target } -> (
      t.st.pc <- target;
      let drain = Dts_vliw.Engine.commit_block t.engine in
      t.cycles <- t.cycles + drain;
      t.vliw_cycles <- t.vliw_cycles + drain;
      charge t Attr.Vliw_dcache_stall drain;
      (* annulled fetch: one-cycle bubble (§3.5), hidden by a correct
         next-block prediction *)
      let penalty =
        predicted_transition t ~tag:block.tag_addr ~actual:target ~penalty:1
      in
      t.cycles <- t.cycles + penalty;
      t.vliw_cycles <- t.vliw_cycles + penalty;
      charge t Attr.Mispredict_redirect penalty;
      sync t;
      match probe t target with
      | Some b2 -> enter_vliw t b2
      | None -> to_primary t Attr.Switch_to_primary)
  | R_exn kind ->
      (* rollback already happened; PC is back at the block start and the
         golden machine is already there, so compare directly *)
      (if not (Dts_isa.State.regs_equal (Dts_golden.Golden.state t.golden) t.st)
       then
         mismatch t
           (Printf.sprintf "state after rollback differs:\n%s"
              (state_diff t.st (Dts_golden.Golden.state t.golden))));
      (match kind with
      | Dts_vliw.Engine.E_aliasing ->
        ignore (Dts_mem.Blockcache.invalidate t.vcache block.tag_addr)
      | E_trap _ -> t.exception_mode <- true);
    to_primary t Attr.Recovery_switch

let step t =
  Trace.stamp t.obs.tracer t.cycles;
  match t.mode with
  | M_primary -> step_primary t
  | M_vliw ({ block; _ } as v) -> (
    let res = Dts_vliw.Engine.exec_li_fast t.engine block v.idx in
    let penalty = t.engine.Dts_vliw.Engine.pen in
    let c = 1 + penalty in
    t.cycles <- t.cycles + c;
    t.vliw_cycles <- t.vliw_cycles + c;
    charge t Attr.Vliw_execute 1;
    charge t Attr.Vliw_dcache_stall penalty;
    match res with
    | R_next -> v.idx <- v.idx + 1
    | r -> li_outcome t block r)

(* Execute long instructions back-to-back until the block ends (or the
   instruction budget is hit), batching the cycle counters and attribution
   into one update per burst. Equivalent to iterating [step] in [M_vliw]
   mode: within a block, [R_next] outcomes touch neither the golden machine
   nor the mode, so only the sequential instruction count needs a
   per-iteration guard. Used by [run] when tracing is off — the tracer
   wants a [Trace.stamp] before every long instruction. *)
let rec vliw_burst (t : machine) (v : vstate) max_instructions cyc stall =
  let block = v.block in
  let res = Dts_vliw.Engine.exec_li_fast t.engine block v.idx in
  let penalty = t.engine.Dts_vliw.Engine.pen in
  let cyc = cyc + 1 + penalty in
  let stall = stall + penalty in
  match res with
  | R_next ->
    v.idx <- v.idx + 1;
    if t.st.Dts_isa.State.instret < max_instructions then
      vliw_burst t v max_instructions cyc stall
    else burst_charge t cyc stall
  | r ->
    burst_charge t cyc stall;
    li_outcome t block r

and burst_charge (t : machine) cyc stall =
  t.cycles <- t.cycles + cyc;
  t.vliw_cycles <- t.vliw_cycles + cyc;
  charge t Attr.Vliw_execute (cyc - stall);
  charge t Attr.Vliw_dcache_stall stall

(** Run until the program halts or the golden machine has retired at least
    [max_instructions]. Returns the sequential instruction count. *)
let run ?(max_instructions = max_int) t =
  let g = Dts_golden.Golden.state t.golden in
  let traced = tracing t in
  while
    (not t.halted)
    && g.instret < max_instructions
    && t.st.instret < max_instructions
  do
    match t.mode with
    | M_vliw v when not traced -> vliw_burst t v max_instructions 0 0
    | _ -> step t
  done;
  (* drain: finish with a final golden sync and a full memory comparison *)
  if t.halted then begin
    ignore (Dts_golden.Golden.run t.golden);
    t.st.pc <- (Dts_golden.Golden.state t.golden).pc;
    if not (Dts_isa.State.regs_equal (Dts_golden.Golden.state t.golden) t.st)
    then
      mismatch t
        (Printf.sprintf "final state differs:\n%s"
           (state_diff t.st (Dts_golden.Golden.state t.golden)))
  end
  else sync t;
  if not (Dts_mem.Memory.equal t.st.mem (Dts_golden.Golden.state t.golden).mem)
  then mismatch t "final memory differs";
  (Dts_golden.Golden.state t.golden).instret

(** Consolidated snapshot of every counter the machine and its components
    maintain — the one read surface for telemetry. *)
let stats t : Dts_obs.Stats.t =
  let o = t.obs in
  let e = t.engine.Dts_vliw.Engine.stats in
  {
    cycles = t.cycles;
    vliw_cycles = t.vliw_cycles;
    instructions = (Dts_golden.Golden.state t.golden).instret;
    attribution = Attr.snapshot o.attr;
    engine_switches = o.engine_switches;
    blocks_flushed = o.blocks_flushed;
    block_lis = o.block_lis;
    slots_filled = o.slots_filled;
    slots_total = o.slots_total;
    slots_by_class = Array.copy o.slots_by_class;
    rr_max = Array.copy o.rr_max;
    nlp_hits = o.nlp_hits;
    nlp_misses = o.nlp_misses;
    insert_full = o.insert_full;
    pending_high_water = o.pending_high_water;
    syncs = t.syncs;
    plans_compiled = o.plans_compiled;
    plan_hits = o.plan_hits;
    wdelta_variants = e.wdelta_variants;
    code_invalidations = o.code_invalidations;
    max_load_list = e.max_load_list;
    max_store_list = e.max_store_list;
    max_recovery_list = e.max_recovery_list;
    max_data_store_list = e.max_data_store_list;
    aliasing_exceptions = e.aliasing_exceptions;
    deferred_exceptions = e.deferred_exceptions;
    block_exceptions = e.block_exceptions;
    mispredicts = e.mispredicts;
    lis_executed = e.lis_executed;
    ops_committed = e.ops_committed;
    copies_committed = e.copies_committed;
    icache_hits = Dts_mem.Cache.hits t.icache;
    icache_misses = Dts_mem.Cache.misses t.icache;
    dcache_hits = Dts_mem.Cache.hits t.dcache;
    dcache_misses = Dts_mem.Cache.misses t.dcache;
    vcache_hits = Dts_mem.Blockcache.hits t.vcache;
    vcache_misses = Dts_mem.Blockcache.misses t.vcache;
    vcache_insertions = Dts_mem.Blockcache.insertions t.vcache;
    vcache_evictions = Dts_mem.Blockcache.evictions t.vcache;
    trace_emitted = Trace.emitted o.tracer;
    trace_dropped = Trace.dropped o.tracer;
  }

(** Instructions per cycle, measured the paper's way: sequential
    instructions (golden count) over DTSVLIW cycles. Derived from the
    {!stats} snapshot, as are the two fractions below. *)
let ipc t = Dts_obs.Stats.ipc (stats t)
let vliw_cycle_fraction t = Dts_obs.Stats.vliw_cycle_fraction (stats t)
let slot_utilisation t = Dts_obs.Stats.slot_utilisation (stats t)
