(** An offline optimality oracle for the Scheduler Unit: branch-and-bound
    scheduling of a finished block's operations into the provably minimal
    number of long instructions.

    The greedy FCFS scheduler (§3.2) commits each retired instruction to
    the first legal slot as the trace streams past; this module answers
    "how many long instructions did that cost over the best possible?" for
    the exact same operation set. The oracle does not re-derive renaming:
    it takes the block as built — split operations, their COPYs, the
    forwarded (substituted) read sets — and searches over cycle
    assignments of those slot ops under the constraints the block's
    execution semantics impose:

    - value flow: every reader stays between the writer whose value it
      observed and the next writer of that position (RAW with the
      producer's functional-unit latency, WAR allowing same-cycle
      placement, WAW in strict order) — positions include renaming
      registers, so an op precedes its COPYs automatically;
    - the §3.10 memory-order rule, exactly as {!Dts_vliw.Aliaslog.violates}
      enforces it at runtime: overlapping store/store and store→load pairs
      in strictly increasing long instructions, load→store free to share
      one;
    - control: an operation with an architectural effect (an unrenamed
      write, or being a branch) never crosses a conditional branch —
      same-cycle placement is legal because branch tags squash the younger
      op on a mispredict (§3.8), which the rebuilt tags express;
    - geometry: per-cycle slot capacity under the machine's functional-unit
      classes. Dedicated slots are per-class and universal slots are the
      only shared pool, so feasibility is the counting (Hall) condition
      [sum_c max 0 (need_c - dedicated_c) <= universal], not first-fit.

    The search enumerates only subsets that are maximal among the eligible
    ops of each cycle (an exchange argument shows some optimal schedule is
    cycle-wise maximal), prunes with a critical-path + resource lower bound
    and a memoized dominance table keyed on latency-clamped ages, and
    degrades to a certified [lower <= optimal <= upper] pair when the node
    budget runs out. *)

open Dts_sched.Schedtypes
module Instr = Dts_isa.Instr
module Storage = Dts_isa.Storage
module SU = Dts_sched.Sched_unit

(* Test-only fault injection (the PR-5 mutation-sanity convention, see
   {!Dts_vliw.Aliaslog.fault_skip_store_check}): inflate the pruning bound
   by one cycle, making the branch-and-bound discard subtrees that contain
   the true optimum. The exhaustive cross-check corpus in test/test_opt.ml
   must catch the resulting "certified optimal" over-estimates — proving
   the property tests can detect an unsound oracle. *)
let fault_weaken_pruning = ref false

let fu_index = function
  | Instr.Fu_int -> 0
  | Instr.Fu_mem -> 1
  | Instr.Fu_fp -> 2
  | Instr.Fu_br -> 3

(* ------------------------------------------------------------------ *)
(* Geometry                                                             *)
(* ------------------------------------------------------------------ *)

type geometry = {
  g_width : int;
  g_classes : Instr.fu_class option array option;
  g_ded : int array;  (** dedicated slots per {!fu_index} class *)
  g_uni : int;  (** universal slots *)
}

let geometry ~width ~(slot_classes : Instr.fu_class option array option) =
  let ded = Array.make 4 0 in
  let uni = ref 0 in
  (match slot_classes with
  | None -> uni := width
  | Some classes ->
    Array.iter
      (function
        | None -> incr uni
        | Some c -> ded.(fu_index c) <- ded.(fu_index c) + 1)
      classes);
  { g_width = width; g_classes = slot_classes; g_ded = ded; g_uni = !uni }

let geometry_of_sched (c : SU.config) =
  geometry ~width:c.SU.width ~slot_classes:c.SU.slot_classes

let geometry_of_config (cfg : Dts_core.Config.t) =
  geometry_of_sched cfg.Dts_core.Config.sched

(* Can one cycle host [counts] ops ([totals] in all)? Dedicated slots are
   per-class; universal slots are the only shared resource. *)
let caps_ok g counts total =
  total <= g.g_width
  &&
  let spill = ref 0 in
  for c = 0 to 3 do
    spill := !spill + max 0 (counts.(c) - g.g_ded.(c))
  done;
  !spill <= g.g_uni

(* ------------------------------------------------------------------ *)
(* The constraint model                                                 *)
(* ------------------------------------------------------------------ *)

type node = {
  n_op : slot_op;
  n_fu : Instr.fu_class;
  n_lat : int;  (** producer latency (COPYs: 1) *)
  n_trace : int;  (** trace position: op uid; a COPY carries its op's *)
  n_branch : bool;
  n_arch : bool;  (** architectural effect: unrenamed write or branch *)
}

type model = {
  m_nodes : node array;
  m_fcfs : int;  (** long instructions of the block as built *)
  m_orig : int array;  (** the block's own assignment (node -> li index) *)
  m_preds : (int * int) array array;
      (** (u, w) in m_preds.(v): every schedule needs li v >= li u + w *)
  m_succs : (int * int) array array;
  m_maxlat : int;
}

let model_nodes m = Array.length m.m_nodes
let model_fcfs m = m.m_fcfs
let model_orig m = Array.copy m.m_orig

let node_of_slot lat ~fu op =
  let trace = match op with Op s -> s.uid | Copy c -> c.c_from in
  let branch =
    match op with
    | Op s -> Instr.is_conditional_ctrl s.instr
    | Copy _ -> false
  in
  let lat_n = match op with Op s -> Instr.latency lat s.instr | Copy _ -> 1 in
  let arch =
    branch
    || List.exists
         (fun w -> match w with Storage.Ren _ -> false | _ -> true)
         (slot_arch_writes op)
  in
  {
    n_op = op;
    n_fu = fu;
    n_lat = max 1 lat_n;
    n_trace = trace;
    n_branch = branch;
    n_arch = arch;
  }

(* The functional unit a slot op occupies. An op carries its own class; a
   COPY executes on its parent op's unit — the Scheduler Unit places a
   split's copy by the split op's class ([find_slot ... c_op.fu] in
   sched_unit.ml), so e.g. a split load's register-delivering copy
   legitimately occupies a Fu_mem slot. The parent is always in the same
   block ([c_from] is its uid); the kind-based fallback only covers a
   hypothetical orphaned copy. *)
let block_fu_resolver (b : block) =
  let op_fu = Hashtbl.create 64 in
  Array.iter
    (fun li ->
      li_iter
        (fun _ op _ ->
          match op with
          | Op s -> Hashtbl.replace op_fu s.uid s.fu
          | Copy _ -> ())
        li)
    b.lis;
  fun op ->
    match op with
    | Op s -> s.fu
    | Copy c -> (
      match Hashtbl.find_opt op_fu c.c_from with
      | Some fu -> fu
      | None ->
        if List.exists (fun (r, _) -> r.kind = K_mem) c.c_moves then
          Instr.Fu_mem
        else if List.exists (fun (r, _) -> r.kind = K_fp) c.c_moves then
          Instr.Fu_fp
        else Instr.Fu_int)

(* The §3.10 events of a node: its own load, its own unrenamed store, or
   the store a COPY commits — (is_store, order, addr, size), matching what
   the engine logs into the alias log at runtime. *)
let mem_events op =
  match op with
  | Op s when Instr.is_load s.instr ->
    List.filter_map
      (function
        | Storage.Mem { addr; size } -> Some (false, s.order, addr, size)
        | _ -> None)
      s.reads
  | Op s when Instr.is_store s.instr ->
    List.filter_map
      (function
        | Storage.Mem { addr; size } -> Some (true, s.order, addr, size)
        | _ -> None)
      (slot_arch_writes op)
  | Op _ -> []
  | Copy c ->
    List.filter_map
      (fun (_, t) ->
        match t with
        | T_arch (Storage.Mem { addr; size }) ->
          Some (true, c.c_order, addr, size)
        | _ -> None)
      c.c_moves

let model_of_block (lat : Instr.latencies) (b : block) =
  let fu_of = block_fu_resolver b in
  let nodes = ref [] and orig = ref [] in
  Array.iteri
    (fun li_idx li ->
      li_iter
        (fun _ op _tag ->
          nodes := node_of_slot lat ~fu:(fu_of op) op :: !nodes;
          orig := li_idx :: !orig)
        li)
    b.lis;
  let nodes = Array.of_list (List.rev !nodes) in
  let orig = Array.of_list (List.rev !orig) in
  let n = Array.length nodes in
  let edges : (int * int, int) Hashtbl.t = Hashtbl.create (4 * n) in
  let add_edge u v w =
    if u <> v then
      match Hashtbl.find_opt edges (u, v) with
      | Some w' when w' >= w -> ()
      | _ -> Hashtbl.replace edges (u, v) w
  in
  (* value flow through non-memory positions (architectural registers,
     flags, the window pointer and renaming registers): the block's own
     placement names, for every position, which writer each reader
     observed — the model pins each reader between that writer and the
     next one, and orders the writers themselves *)
  let positions : (Storage.t, int list ref * int list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let entry p =
    match Hashtbl.find_opt positions p with
    | Some e -> e
    | None ->
      let e = (ref [], ref []) in
      Hashtbl.add positions p e;
      e
  in
  Array.iteri
    (fun i nd ->
      List.iter
        (fun w ->
          if not (Storage.is_mem w) then (
            let ws, _ = entry w in
            ws := i :: !ws))
        (slot_arch_writes nd.n_op);
      List.iter
        (fun r ->
          if not (Storage.is_mem r) then (
            let _, rs = entry r in
            rs := i :: !rs))
        (slot_arch_reads nd.n_op))
    nodes;
  Hashtbl.iter
    (fun _p (ws, rs) ->
      let ws =
        List.sort
          (fun a b ->
            compare (orig.(a), nodes.(a).n_trace) (orig.(b), nodes.(b).n_trace))
          !ws
      in
      let rec waw = function
        | a :: (b :: _ as tl) ->
          add_edge a b 1;
          waw tl
        | _ -> ()
      in
      waw ws;
      List.iter
        (fun r ->
          (* the writer this reader observed: the last one strictly above
             it (reads happen at the start of a long instruction, writes
             commit at the end) — and the next writer it must not sink
             past (same cycle is fine, for the same reason) *)
          let rec find prev = function
            | [] -> (prev, None)
            | w :: tl ->
              if orig.(w) < orig.(r) then find (Some w) tl else (prev, Some w)
          in
          match find None ws with
          | Some w, nxt ->
            add_edge w r nodes.(w).n_lat;
            (match nxt with Some w' -> add_edge r w' 0 | None -> ())
          | None, Some w1 -> add_edge r w1 0 (* reads block-entry state *)
          | None, None -> ())
        !rs)
    positions;
  (* §3.10: overlapping memory events in order-field order, exactly the
     runtime predicate of Dts_vliw.Aliaslog.violates *)
  let evs =
    Array.of_list
      (List.concat
         (List.init n (fun i ->
              List.map (fun e -> (i, e)) (mem_events nodes.(i).n_op))))
  in
  Array.iter
    (fun (na, (sa, oa, aa, za)) ->
      Array.iter
        (fun (nb, (sb, ob, ab, zb)) ->
          if na <> nb && oa < ob && aa < ab + zb && ab < aa + za then
            match (sa, sb) with
            | true, _ -> add_edge na nb 1 (* store commits strictly first *)
            | false, true -> add_edge na nb 0 (* load may share the store's li *)
            | false, false -> ())
        evs)
    evs;
  (* control: architectural effects never cross a conditional branch
     (same cycle is legal — the rebuilt branch tags squash the younger op
     on a mispredict); fully-renamed ops float freely, their committing
     COPYs carry the architectural effect and the pin *)
  Array.iteri
    (fun bidx nb ->
      if nb.n_branch then
        Array.iteri
          (fun i nd ->
            if i <> bidx && nd.n_arch then
              if nd.n_trace < nb.n_trace then add_edge i bidx 0
              else add_edge bidx i 0)
          nodes)
    nodes;
  let preds = Array.make n [] and succs = Array.make n [] in
  Hashtbl.iter
    (fun (u, v) w ->
      preds.(v) <- (u, w) :: preds.(v);
      succs.(u) <- (v, w) :: succs.(u))
    edges;
  {
    m_nodes = nodes;
    m_fcfs = Array.length b.lis;
    m_orig = orig;
    m_preds = Array.map Array.of_list preds;
    m_succs = Array.map Array.of_list succs;
    m_maxlat = Array.fold_left (fun a nd -> max a nd.n_lat) 1 nodes;
  }

(* ------------------------------------------------------------------ *)
(* Checking an assignment against the model                             *)
(* ------------------------------------------------------------------ *)

let assignment_ok g (m : model) assign =
  let n = Array.length m.m_nodes in
  Array.length assign = n
  &&
  let ok = ref true in
  for v = 0 to n - 1 do
    if assign.(v) < 0 then ok := false
    else
      Array.iter
        (fun (u, w) -> if assign.(u) + w > assign.(v) then ok := false)
        m.m_preds.(v)
  done;
  (if !ok && n > 0 then begin
     let maxc = Array.fold_left max 0 assign + 1 in
     let counts = Array.make_matrix maxc 4 0 in
     let totals = Array.make maxc 0 in
     Array.iteri
       (fun v c ->
         let cl = fu_index m.m_nodes.(v).n_fu in
         counts.(c).(cl) <- counts.(c).(cl) + 1;
         totals.(c) <- totals.(c) + 1)
       assign;
     for t = 0 to maxc - 1 do
       if not (caps_ok g counts.(t) totals.(t)) then ok := false
     done
   end);
  !ok

(* ------------------------------------------------------------------ *)
(* Branch-and-bound search                                              *)
(* ------------------------------------------------------------------ *)

type solution = {
  s_fcfs : int;  (** cycles of the block as the greedy scheduler built it *)
  s_lower : int;  (** certified lower bound on the optimal cycle count *)
  s_upper : int;  (** cycles of the best schedule found ([s_schedule]) *)
  s_exact : bool;  (** [s_lower = s_upper]: the optimum is certified *)
  s_nodes : int;  (** search nodes expanded *)
  s_schedule : int array;  (** node -> cycle of the best schedule found *)
}

let default_node_budget = 20_000

let schedule ?(node_budget = default_node_budget) g (m : model) =
  let n = Array.length m.m_nodes in
  if n = 0 then
    {
      s_fcfs = m.m_fcfs;
      s_lower = m.m_fcfs;
      s_upper = m.m_fcfs;
      s_exact = true;
      s_nodes = 0;
      s_schedule = [||];
    }
  else begin
    let cls = Array.map (fun nd -> fu_index nd.n_fu) m.m_nodes in
    Array.iter
      (fun cl ->
        if g.g_ded.(cl) + g.g_uni = 0 then
          invalid_arg
            "Dts_opt.Opt.schedule: the geometry has no slot for an op class")
      cls;
    (* static longest-path bounds by relaxation to fixpoint: the graph has
       zero-weight cycles (mutually same-cycle-constrained groups) but no
       positive cycle, so n+1 passes converge *)
    let est = Array.make n 0 and tail = Array.make n 0 in
    let relax dir arr =
      let changed = ref true and passes = ref 0 in
      while !changed do
        changed := false;
        incr passes;
        if !passes > n + 2 then
          failwith "Dts_opt.Opt.schedule: positive constraint cycle";
        for v = 0 to n - 1 do
          Array.iter
            (fun (u, w) ->
              if arr.(u) + w > arr.(v) then begin
                arr.(v) <- arr.(u) + w;
                changed := true
              end)
            dir.(v)
        done
      done
    in
    relax m.m_preds est;
    relax m.m_succs tail;
    let width = g.g_width in
    let base_lb =
      let b = ref 0 in
      for v = 0 to n - 1 do
        b := max !b (est.(v) + tail.(v) + 1)
      done;
      b := max !b ((n + width - 1) / width);
      let cnt = Array.make 4 0 in
      Array.iter (fun cl -> cnt.(cl) <- cnt.(cl) + 1) cls;
      for cl = 0 to 3 do
        if cnt.(cl) > 0 then begin
          let cap = min width (g.g_ded.(cl) + g.g_uni) in
          b := max !b ((cnt.(cl) + cap - 1) / cap)
        end
      done;
      !b
    in
    if base_lb >= m.m_fcfs then
      (* the greedy schedule already meets the static lower bound *)
      {
        s_fcfs = m.m_fcfs;
        s_lower = m.m_fcfs;
        s_upper = m.m_fcfs;
        s_exact = true;
        s_nodes = 0;
        s_schedule = Array.copy m.m_orig;
      }
    else begin
      let maxlat = m.m_maxlat in
      let cycle = Array.make n (-1) in
      let nsched = ref 0 in
      let best_len = ref m.m_fcfs in
      let best = Array.copy m.m_orig in
      let expanded = ref 0 in
      let truncated = ref false in
      let cut_min = ref max_int in
      let memo : (string, int) Hashtbl.t = Hashtbl.create 4096 in
      let order = Array.init n Fun.id in
      Array.sort
        (fun a b ->
          compare (m.m_nodes.(a).n_trace, a) (m.m_nodes.(b).n_trace, b))
        order;
      (* lower bound on any completion of the current state at cycle [c]:
         scheduled critical paths, remaining critical paths tightened by
         scheduled producers, and the resource bound on what is left *)
      let state_bound c =
        let b = ref 0 in
        let rem = ref 0 in
        let remc = [| 0; 0; 0; 0 |] in
        for v = 0 to n - 1 do
          if cycle.(v) >= 0 then begin
            let x = cycle.(v) + tail.(v) + 1 in
            if x > !b then b := x
          end
          else begin
            incr rem;
            remc.(cls.(v)) <- remc.(cls.(v)) + 1;
            let e = ref (if est.(v) > c then est.(v) else c) in
            Array.iter
              (fun (u, w) ->
                if cycle.(u) >= 0 && cycle.(u) + w > !e then e := cycle.(u) + w)
              m.m_preds.(v);
            let x = !e + tail.(v) + 1 in
            if x > !b then b := x
          end
        done;
        if !rem > 0 then begin
          let x = c + ((!rem + width - 1) / width) in
          if x > !b then b := x;
          for cl = 0 to 3 do
            if remc.(cl) > 0 then begin
              let cap = min width (g.g_ded.(cl) + g.g_uni) in
              let x = c + ((remc.(cl) + cap - 1) / cap) in
              if x > !b then b := x
            end
          done
        end;
        !b
      in
      let prune_bound b = b + if !fault_weaken_pruning then 1 else 0 in
      (* dominance key: scheduled ops with their ages clamped at the
         latency horizon (older producers constrain nothing), unscheduled
         ops as 255 — two states with equal keys at cycles c' <= c admit
         exactly the same continuations, shifted *)
      let key c =
        let bts = Bytes.create n in
        for i = 0 to n - 1 do
          let v = cycle.(i) in
          let byte =
            if v < 0 then 255
            else
              let age = c - v in
              if age >= maxlat then 254 else age
          in
          Bytes.unsafe_set bts i (Char.unsafe_chr byte)
        done;
        Bytes.unsafe_to_string bts
      in
      let rec go c =
        if !nsched = n then begin
          let len = state_bound c in
          if len < !best_len then begin
            best_len := len;
            Array.blit cycle 0 best 0 n
          end
        end
        else begin
          let b = state_bound c in
          if prune_bound b >= !best_len then ()
          else if !truncated then begin
            if b < !cut_min then cut_min := b
          end
          else begin
            let k = key c in
            match Hashtbl.find_opt memo k with
            | Some c' when c' <= c -> ()
            | _ ->
              Hashtbl.replace memo k c;
              incr expanded;
              if !expanded > node_budget then begin
                truncated := true;
                if b < !cut_min then cut_min := b
              end
              else begin
                (* eligible ops this cycle, in trace order: strict
                   predecessors placed far enough above, zero-weight
                   predecessors placed or themselves eligible (zero-weight
                   edges point trace-forward, so one pass suffices) *)
                let elig = Array.make n false in
                let e_rev = ref [] in
                Array.iter
                  (fun v ->
                    if cycle.(v) < 0 then begin
                      let ok = ref true in
                      Array.iter
                        (fun (u, w) ->
                          if w > 0 then begin
                            if cycle.(u) < 0 || cycle.(u) + w > c then
                              ok := false
                          end
                          else if cycle.(u) < 0 && not elig.(u) then ok := false)
                        m.m_preds.(v);
                      if !ok then begin
                        elig.(v) <- true;
                        e_rev := v :: !e_rev
                      end
                    end)
                  order;
                let es = Array.of_list (List.rev !e_rev) in
                let ne = Array.length es in
                if ne = 0 then go (c + 1) (* forced stall *)
                else begin
                  let pos = Array.make n (-1) in
                  Array.iteri (fun i v -> pos.(v) <- i) es;
                  let chosen = Array.make ne false in
                  let used_ded = Array.make 4 0 in
                  let used_uni = ref 0 in
                  let can_add cl =
                    used_ded.(cl) < g.g_ded.(cl) || !used_uni < g.g_uni
                  in
                  let preds_ok v =
                    let ok = ref true in
                    Array.iter
                      (fun (u, w) ->
                        if w = 0 && cycle.(u) < 0 && not chosen.(pos.(u)) then
                          ok := false)
                      m.m_preds.(v);
                    !ok
                  in
                  (* enumerate only subsets maximal among the eligible ops
                     under the slot-class capacities: some optimal schedule
                     is cycle-wise maximal (moving an addable op up to this
                     cycle never hurts), so non-maximal subsets are dead
                     weight *)
                  let rec choose i =
                    if !truncated then begin
                      if b < !cut_min then cut_min := b
                    end
                    else begin
                      incr expanded;
                      if !expanded > node_budget then begin
                        truncated := true;
                        if b < !cut_min then cut_min := b
                      end
                      else if i = ne then begin
                        let maximal = ref true in
                        for j = 0 to ne - 1 do
                          if !maximal && not chosen.(j) then begin
                            let v = es.(j) in
                            if can_add cls.(v) && preds_ok v then
                              maximal := false
                          end
                        done;
                        if !maximal then go (c + 1)
                      end
                      else begin
                        let v = es.(i) in
                        let took = ref false in
                        if can_add cls.(v) && preds_ok v then begin
                          let cl = cls.(v) in
                          let ded = used_ded.(cl) < g.g_ded.(cl) in
                          if ded then used_ded.(cl) <- used_ded.(cl) + 1
                          else incr used_uni;
                          chosen.(i) <- true;
                          cycle.(v) <- c;
                          incr nsched;
                          choose (i + 1);
                          decr nsched;
                          cycle.(v) <- -1;
                          chosen.(i) <- false;
                          if ded then used_ded.(cl) <- used_ded.(cl) - 1
                          else decr used_uni;
                          took := true
                        end;
                        if not !truncated then
                          if not !took then choose (i + 1)
                          else begin
                            (* excluding v delays it to cycle c+1 at best *)
                            let excl_lb = c + 1 + tail.(v) + 1 in
                            if prune_bound excl_lb < !best_len then
                              choose (i + 1)
                          end
                      end
                    end
                  in
                  choose 0
                end
              end
          end
        end
      in
      go 0;
      let lower =
        if not !truncated then !best_len
        else max base_lb (min !best_len !cut_min)
      in
      {
        s_fcfs = m.m_fcfs;
        s_lower = lower;
        s_upper = !best_len;
        s_exact = lower = !best_len;
        s_nodes = !expanded;
        s_schedule = Array.copy best;
      }
    end
  end

(* ------------------------------------------------------------------ *)
(* Exhaustive cross-check                                               *)
(* ------------------------------------------------------------------ *)

(** Minimal makespan by brute-force enumeration of every cycle assignment
    (cycles 0..fcfs-1) — an independent implementation used to cross-check
    the branch-and-bound on small blocks.
    @raise Invalid_argument over 12 ops. *)
let exhaustive g (m : model) =
  let n = Array.length m.m_nodes in
  if n = 0 then 0
  else begin
    if n > 12 then invalid_arg "Dts_opt.Opt.exhaustive: too many ops";
    let maxc = m.m_fcfs in
    let cls = Array.map (fun nd -> fu_index nd.n_fu) m.m_nodes in
    let cycle = Array.make n (-1) in
    let used_ded = Array.make_matrix maxc 4 0 in
    let used_uni = Array.make maxc 0 in
    let best = ref m.m_fcfs in
    let rec assign v =
      if v = n then begin
        let mk = Array.fold_left (fun a c -> max a (c + 1)) 0 cycle in
        if mk < !best then best := mk
      end
      else
        for t = 0 to min (maxc - 1) (!best - 2) do
          let cl = cls.(v) in
          let ok =
            ref (used_ded.(t).(cl) < g.g_ded.(cl) || used_uni.(t) < g.g_uni)
          in
          Array.iter
            (fun (u, w) -> if cycle.(u) >= 0 && cycle.(u) + w > t then ok := false)
            m.m_preds.(v);
          Array.iter
            (fun (x, w) -> if cycle.(x) >= 0 && t + w > cycle.(x) then ok := false)
            m.m_succs.(v);
          if !ok then begin
            let ded = used_ded.(t).(cl) < g.g_ded.(cl) in
            if ded then used_ded.(t).(cl) <- used_ded.(t).(cl) + 1
            else used_uni.(t) <- used_uni.(t) + 1;
            cycle.(v) <- t;
            assign (v + 1);
            cycle.(v) <- -1;
            if ded then used_ded.(t).(cl) <- used_ded.(t).(cl) - 1
            else used_uni.(t) <- used_uni.(t) - 1
          end
        done
    in
    assign 0;
    !best
  end

(* ------------------------------------------------------------------ *)
(* Rebuilding a block from a schedule                                   *)
(* ------------------------------------------------------------------ *)

(* A slot for [fu]: a free dedicated slot of that class first, a free
   universal slot otherwise (universal is the only shared pool, so
   dedicated-first is exact whenever the Hall condition holds). *)
let pick_slot g li fu =
  match g.g_classes with
  | None -> (
    match li_find_slot li fu with
    | Some k -> k
    | None -> invalid_arg "Dts_opt.Opt.rebuild: no free slot")
  | Some classes ->
    let rec scan pred k =
      if k >= Array.length li.slots then None
      else if li.slots.(k) = None && pred classes.(k) then Some k
      else scan pred (k + 1)
    in
    (match scan (fun c -> c = Some fu) 0 with
    | Some k -> k
    | None -> (
      match scan (fun c -> c = None) 0 with
      | Some k -> k
      | None -> invalid_arg "Dts_opt.Opt.rebuild: no free slot"))

let store_like = function
  | Op s -> Instr.is_store s.instr
  | Copy c ->
    List.exists
      (fun (_, t) ->
        match t with T_arch (Storage.Mem _) -> true | _ -> false)
      c.c_moves

(** Materialise [assign] (node -> cycle) as a block: the same slot ops in
    new long instructions, branch tags recomputed as the number of
    trace-earlier branches sharing the long instruction, §3.10 cross bits
    recomputed, the geometry's slot classes respected. Shares the
    (mutable) scheduled ops with [b] — the caller is expected to discard
    the original. *)
let rebuild g (b : block) (m : model) assign =
  let n = Array.length m.m_nodes in
  if n = 0 then b
  else begin
    let len = Array.fold_left max 0 assign + 1 in
    let lis = Array.init len (fun _ -> li_create g.g_width) in
    let by_cycle = Array.make len [] in
    let order = Array.init n Fun.id in
    (* trace-descending, so the per-cycle lists come out trace-ascending *)
    Array.sort
      (fun a b ->
        compare (m.m_nodes.(b).n_trace, b) (m.m_nodes.(a).n_trace, a))
      order;
    Array.iter
      (fun v -> by_cycle.(assign.(v)) <- v :: by_cycle.(assign.(v)))
      order;
    Array.iteri
      (fun t vs ->
        let li = lis.(t) in
        let nbr = ref 0 in
        List.iter
          (fun v ->
            let nd = m.m_nodes.(v) in
            let k = pick_slot g li nd.n_fu in
            li_fill li k (nd.n_op, !nbr);
            if nd.n_branch then incr nbr)
          vs;
        li.n_branches <- !nbr)
      by_cycle;
    Array.iter
      (fun li ->
        let stores =
          li_fold
            (fun acc _ op _ -> if store_like op then op :: acc else acc)
            [] li
        in
        li_iter
          (fun _ op _ ->
            match op with
            | Op s when Instr.is_mem s.instr ->
              s.cross <- List.exists (fun o -> o != op) stores
            | _ -> ())
          li)
      lis;
    let max_li_ops = Array.fold_left (fun a li -> max a (li_count li)) 0 lis in
    { b with lis; nba_idx = len - 1; max_li_ops }
  end

(* ------------------------------------------------------------------ *)
(* Independent legality check                                           *)
(* ------------------------------------------------------------------ *)

(** Check a block against every invariant the oracle's model encodes —
    geometry classes, the dependence/latency/control constraints
    (re-derived from the block itself), branch-tag consistency, and the
    §3.10 rule replayed through the engine's own {!Dts_vliw.Aliaslog}.
    Greedy-built blocks and oracle-rebuilt blocks must both pass. *)
let check_block g (lat : Instr.latencies) (b : block) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let fu_of = block_fu_resolver b in
  Array.iteri
    (fun i li ->
      if Array.length li.slots <> g.g_width then
        err "li %d: width %d but geometry width %d" i (Array.length li.slots)
          g.g_width)
    b.lis;
  (match g.g_classes with
  | None -> ()
  | Some classes ->
    Array.iteri
      (fun i li ->
        li_iter
          (fun k op _ ->
            match classes.(k) with
            | None -> ()
            | Some c ->
              if c <> fu_of op then
                err "li %d slot %d: %s op in a dedicated slot of another class"
                  i k
                  (Instr.show_fu_class (fu_of op)))
          li)
      b.lis);
  let m = model_of_block lat b in
  if not (assignment_ok g m m.m_orig) then
    err "schedule violates the dependence/latency/control/geometry model";
  let trace op = match op with Op s -> s.uid | Copy c -> c.c_from in
  let is_br = function
    | Op s -> Instr.is_conditional_ctrl s.instr
    | Copy _ -> false
  in
  Array.iteri
    (fun i li ->
      let ops = li_fold (fun acc _ op tag -> (op, tag) :: acc) [] li in
      let nbr = List.length (List.filter (fun (o, _) -> is_br o) ops) in
      if li.n_branches <> nbr then
        err "li %d: n_branches %d but %d branches present" i li.n_branches nbr;
      List.iter
        (fun (op, tag) ->
          let expect =
            List.length
              (List.filter
                 (fun (o, _) -> is_br o && trace o < trace op)
                 ops)
          in
          if tag <> expect then
            err "li %d: tag %d on an op with %d trace-earlier branches" i tag
              expect)
        ops)
    b.lis;
  let log = Dts_vliw.Aliaslog.create () in
  (try
     Array.iteri
       (fun li_idx li ->
         li_iter
           (fun _ op _ ->
             List.iter
               (fun (is_store, order, addr, size) ->
                 Dts_vliw.Aliaslog.log log ~addr ~size ~order ~li:li_idx
                   ~is_store ~cross:false)
               (mem_events op))
           li)
       b.lis
   with Dts_vliw.Aliaslog.Alias_violation ->
     err "section-3.10 order violation (alias-log replay)");
  match !errs with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))

(* ------------------------------------------------------------------ *)
(* Per-run gap summaries                                                *)
(* ------------------------------------------------------------------ *)

(** Aggregated FCFS-vs-optimal comparison over the blocks of one run. All
    cycle counts are sums over the blocks. *)
type gap_summary = {
  gs_blocks : int;
  gs_fcfs_lis : int;  (** long instructions as greedily built *)
  gs_opt_lower : int;  (** certified lower bounds *)
  gs_opt_upper : int;  (** best schedules found *)
  gs_certified : int;  (** blocks whose optimum is certified exactly *)
  gs_search_nodes : int;  (** total branch-and-bound nodes expanded *)
}

let empty_summary =
  {
    gs_blocks = 0;
    gs_fcfs_lis = 0;
    gs_opt_lower = 0;
    gs_opt_upper = 0;
    gs_certified = 0;
    gs_search_nodes = 0;
  }

let summarize ?node_budget g (lat : Instr.latencies) blocks =
  List.fold_left
    (fun acc b ->
      let s = schedule ?node_budget g (model_of_block lat b) in
      {
        gs_blocks = acc.gs_blocks + 1;
        gs_fcfs_lis = acc.gs_fcfs_lis + s.s_fcfs;
        gs_opt_lower = acc.gs_opt_lower + s.s_lower;
        gs_opt_upper = acc.gs_opt_upper + s.s_upper;
        gs_certified = (acc.gs_certified + if s.s_exact then 1 else 0);
        gs_search_nodes = acc.gs_search_nodes + s.s_nodes;
      })
    empty_summary blocks

let summarize_config ?node_budget (cfg : Dts_core.Config.t) blocks =
  summarize ?node_budget (geometry_of_config cfg)
    cfg.Dts_core.Config.sched.SU.latencies blocks

(* ------------------------------------------------------------------ *)
(* Machine wiring                                                       *)
(* ------------------------------------------------------------------ *)

(** A drop-in Scheduler Unit that also appends every finished block to the
    returned list (in finish order, newest first): pass the function to
    {!Dts_core.Machine.create}'s [?scheduler] and read the blocks after
    the run. Behaviour-identical to the default scheduler. *)
let capturing_scheduler (cfg : Dts_core.Config.t) =
  let captured = ref [] in
  let make () =
    let u = SU.create cfg.Dts_core.Config.sched in
    {
      Dts_core.Machine.s_tick = (fun () -> ignore (SU.tick u));
      s_insert = (fun r -> SU.insert u r);
      s_finish =
        (fun ~nba_addr ->
          match SU.finish_block u ~nba_addr with
          | Some b ->
            captured := b :: !captured;
            Some b
          | None -> None);
    }
  in
  (make, captured)

(** A Scheduler Unit whose finished blocks are replaced by the oracle's
    best schedule (rebuilt and re-checked) before installation — the
    differential fuzzer's optimal-oracle backend. Runs the whole machine on
    provably legal minimal(-ish) schedules; any modelling error surfaces as
    a co-simulation mismatch or a failed {!check_block}. *)
let rescheduling_scheduler ?(node_budget = 4_000) (cfg : Dts_core.Config.t) ()
    =
  let u = SU.create cfg.Dts_core.Config.sched in
  let g = geometry_of_config cfg in
  let lat = cfg.Dts_core.Config.sched.SU.latencies in
  {
    Dts_core.Machine.s_tick = (fun () -> ignore (SU.tick u));
    s_insert = (fun r -> SU.insert u r);
    s_finish =
      (fun ~nba_addr ->
        match SU.finish_block u ~nba_addr with
        | None -> None
        | Some b ->
          let m = model_of_block lat b in
          let s = schedule ~node_budget g m in
          if s.s_fcfs < s.s_lower then
            failwith
              (Printf.sprintf
                 "Dts_opt: greedy block of %d lis beats the certified lower \
                  bound %d"
                 s.s_fcfs s.s_lower);
          let b' = rebuild g b m s.s_schedule in
          (match check_block g lat b' with
          | Ok () -> Some b'
          | Error e ->
            failwith ("Dts_opt: rebuilt block fails the invariant check: " ^ e)));
  }
