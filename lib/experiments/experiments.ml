(** The evaluation harness: one entry per table and figure of the paper's
    §4, plus the ablation studies promised in DESIGN.md.

    Every run executes in test mode (golden co-simulation), so a reported
    number is also a proof that the simulated machine computed the same
    architectural states as a sequential SRISC machine. IPC is the paper's
    metric: sequential instructions (test-machine count) / DTSVLIW cycles.

    Entry points return a structured {!figure} — the raw {!run} records and
    the table cells — with the exact text rendering available through
    [figure.render]; consumers (the bench harness, tests, tooling) read
    data instead of parsing strings. *)

type run = {
  workload : string;
  ipc : float;
  cycles : int;
  instructions : int;
  vliw_fraction : float;
  slot_utilisation : float;
  rr_max : int array;  (** int, fp, flag, mem *)
  max_load_list : int;
  max_store_list : int;
  max_recovery_list : int;
  aliasing_exceptions : int;
  blocks : int;
  stats : Dts_obs.Stats.t;  (** the full machine snapshot of the run *)
  optgap : Dts_opt.Opt.gap_summary option;
      (** FCFS-vs-optimal schedule comparison over the run's finished
          blocks — only filled by the [optgap] figure's runs *)
}

type figure = {
  name : string;
  rows : run list;  (** every simulation performed, in execution order *)
  tables : (string * string list list) list;
      (** (title, header row :: data rows) for each rendered table *)
  render : unit -> string;
      (** the ready-to-print text output (no re-simulation) *)
}

let budget_default = 150_000

(* Cumulative sequential instructions simulated by every run this process
   performed — the denominator data for the bench harness's simulated
   instructions/sec. Monotone; callers read deltas around a figure. Atomic
   because runs may retire on pool worker domains; addition commutes, so
   the delta observed after a figure completes is independent of the
   execution order of its runs. *)
let sim_ctr = Atomic.make 0
let simulated_instructions () = Atomic.get sim_ctr

let collect (m : Dts_core.Machine.t) workload instructions =
  ignore (Atomic.fetch_and_add sim_ctr instructions);
  let s = Dts_core.Machine.stats m in
  {
    workload;
    ipc = float_of_int instructions /. float_of_int (max 1 s.cycles);
    cycles = s.cycles;
    instructions;
    vliw_fraction = Dts_obs.Stats.vliw_cycle_fraction s;
    slot_utilisation = Dts_obs.Stats.slot_utilisation s;
    rr_max = s.rr_max;
    max_load_list = s.max_load_list;
    max_store_list = s.max_store_list;
    max_recovery_list = s.max_recovery_list;
    aliasing_exceptions = s.aliasing_exceptions;
    blocks = s.blocks_flushed;
    stats = s;
    optgap = None;
  }

let validate_run_args ~fn ~scale ~budget =
  if scale <= 0 then
    invalid_arg
      (Printf.sprintf
         "Experiments.%s: ?scale must be a positive workload multiplier \
          (got %d)"
         fn scale);
  if budget <= 0 then
    invalid_arg
      (Printf.sprintf
         "Experiments.%s: ?budget must be a positive sequential-instruction \
          count (got %d)"
         fn budget)

(** Run one workload on a DTSVLIW configuration. *)
let run_dtsvliw ?(scale = 1) ?(budget = budget_default) ?tracer cfg name =
  validate_run_args ~fn:"run_dtsvliw" ~scale ~budget;
  let w = Dts_workloads.Workloads.find name in
  let program = Dts_workloads.Workloads.program ~scale w in
  let m = Dts_core.Machine.create ?tracer cfg program in
  let n = Dts_core.Machine.run ~max_instructions:budget m in
  collect m name n

(** Run one workload on the DIF baseline. *)
let run_dif ?(scale = 1) ?(budget = budget_default) ?dif_cfg ?tracer machine_cfg
    name =
  validate_run_args ~fn:"run_dif" ~scale ~budget;
  let w = Dts_workloads.Workloads.find name in
  let program = Dts_workloads.Workloads.program ~scale w in
  let m, dif = Dts_dif.Dif.machine ?cfg:dif_cfg ?tracer ~machine_cfg program in
  let n = Dts_core.Machine.run ~max_instructions:budget m in
  (collect m name n, dif)

(* Per-block search budget of the optimality oracle (see {!Dts_opt.Opt}):
   fixed rather than derived from [?budget], so a run's gap summary is a
   deterministic function of its blocks alone. *)
let optgap_node_budget = Dts_opt.Opt.default_node_budget

(** Run one workload with the finished blocks captured, and attach the
    oracle's FCFS-vs-optimal gap summary to the run record. *)
let run_optgap ?(scale = 1) ?(budget = budget_default) cfg name =
  validate_run_args ~fn:"run_optgap" ~scale ~budget;
  let w = Dts_workloads.Workloads.find name in
  let program = Dts_workloads.Workloads.program ~scale w in
  let make, captured = Dts_opt.Opt.capturing_scheduler cfg in
  let m = Dts_core.Machine.create ~scheduler:make cfg program in
  let n = Dts_core.Machine.run ~max_instructions:budget m in
  let summary =
    Dts_opt.Opt.summarize_config ~node_budget:optgap_node_budget cfg
      (List.rev !captured)
  in
  { (collect m name n) with optgap = Some summary }

let workload_names = List.map (fun w -> w.Dts_workloads.Workloads.name) Dts_workloads.Workloads.all

let avg xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* ------------------------------------------------------------------ *)
(* Run descriptors                                                      *)
(* ------------------------------------------------------------------ *)

(* Every figure flattens the simulations it needs into a list of these
   descriptors and evaluates them through [run_jobs]; with a pool the runs
   fan out over its domains. Results come back in submission order either
   way, so a figure's rendering is bit-identical with and without a pool. *)
type job =
  | J_dtsvliw of Dts_core.Config.t * string
  | J_dif of Dts_core.Config.t * string
  | J_optgap of Dts_core.Config.t * string

let run_job ?scale ?budget = function
  | J_dtsvliw (cfg, name) -> run_dtsvliw ?scale ?budget cfg name
  | J_dif (cfg, name) -> fst (run_dif ?scale ?budget cfg name)
  | J_optgap (cfg, name) -> run_optgap ?scale ?budget cfg name

let run_jobs ?pool ?scale ?budget jobs =
  match pool with
  | None -> List.map (run_job ?scale ?budget) jobs
  | Some p -> Dts_parallel.Pool.map p (run_job ?scale ?budget) jobs

(* A figure core asks for its simulations through exactly one call to a
   [runner]; the public per-figure entry points close the runner over
   [?pool]/[?scale]/[?budget], while {!plan} and {!assemble} substitute
   recording and replaying runners to split descriptor evaluation from
   figure assembly (the campaign server farms the former out to worker
   processes and reassembles the latter bit-identically). *)
type runner = job list -> run list

(* Split into consecutive [n]-sized chunks — the inverse of the flattening
   each figure performs before [run_jobs]. *)
let chunk n xs =
  if n <= 0 then invalid_arg "Experiments.chunk";
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: tl ->
      if k = n then go (List.rev cur :: acc) [ x ] 1 tl
      else go acc (x :: cur) (k + 1) tl
  in
  go [] [] 0 xs

(* ------------------------------------------------------------------ *)
(* Figure constructors                                                  *)
(* ------------------------------------------------------------------ *)

(** A figure rendered by {!Dts_report.Report.table}. *)
let table_figure ~name ~title ~headers ?(extra = "") ~runs rows =
  {
    name;
    rows = runs;
    tables = [ (title, headers :: rows) ];
    render =
      (fun () -> Dts_report.Report.table ~title ~headers rows ^ extra);
  }

(** A figure rendered by {!Dts_report.Report.series_table}: labelled series
    over a shared x axis. *)
let series_figure ~name ~title ~x_label ~x_values ~runs lines =
  {
    name;
    rows = runs;
    tables =
      [ (title, (x_label :: x_values) :: List.map (fun (l, ys) -> l :: ys) lines) ];
    render =
      (fun () ->
        Dts_report.Report.series_table ~title ~x_label ~x_values lines);
  }

(* ------------------------------------------------------------------ *)
(* Table 1 and Table 2: fixed parameters and benchmarks                 *)
(* ------------------------------------------------------------------ *)

let table1 () =
  table_figure ~name:"table1" ~title:"Table 1: fixed machine parameters"
    ~headers:[ "parameter"; "value" ] ~runs:[]
    [
      [ "Primary Processor"; "4-stage pipeline (fetch, decode, execute, write back)" ];
      [ "branch prediction"; "none; not-taken branches cost a 3-cycle bubble" ];
      [ "load-use hazard"; "1-cycle bubble" ];
      [ "decoded instruction size"; "6 bytes" ];
      [ "instruction latency"; "1 cycle" ];
      [ "VLIW Engine lists"; "load/store/checkpoint-recovery: unlimited (high-water tracked)" ];
      [ "renaming registers"; "integer/fp/flag/memory: unlimited (high-water tracked)" ];
      [ "Scheduler Unit pipe"; "insert+split / move-up (1 per list element) / save: 1 li per cycle" ];
      [ "register windows"; "32 (spill/fill trap microroutine)" ];
    ]

let table2 () =
  table_figure ~name:"table2"
    ~title:"Table 2: benchmark programs (SPECint95 analogues)"
    ~headers:[ "benchmark"; "mirrors"; "character" ] ~runs:[]
    (List.map
       (fun (w : Dts_workloads.Workloads.t) -> [ w.name; w.mirrors; w.character ])
       Dts_workloads.Workloads.all)

(* ------------------------------------------------------------------ *)
(* Figure 5: block size and geometry (idealised machine)                *)
(* ------------------------------------------------------------------ *)

let fig5_geometries =
  [ (4, 4); (8, 4); (4, 8); (16, 4); (4, 16); (8, 8); (16, 8); (8, 16); (16, 16) ]

(** The first sub-chart of Figure 5 explores extreme geometries: very wide
    single long instructions (96x1, 384x1) against the same block sizes
    folded into 2, 4 and 8 long instructions. *)
let fig5a_geometries =
  [ (96, 1); (384, 1); (96, 2); (384, 2); (96, 4); (384, 4); (96, 8); (384, 8) ]

let geometry_sweep ~name ~title ~geometries ~(runner : runner) () =
  let jobs =
    List.concat_map
      (fun (w, h) ->
        List.map
          (fun nm ->
            J_dtsvliw (Dts_core.Config.ideal ~width:w ~height:h (), nm))
          workload_names)
      geometries
  in
  let per_geometry =
    List.map2
      (fun (w, h) runs -> (Printf.sprintf "%dx%d" w h, runs))
      geometries
      (chunk (List.length workload_names) (runner jobs))
  in
  let lines =
    List.map
      (fun (label, runs) ->
        let ipcs = List.map (fun r -> r.ipc) runs in
        (label, List.map Dts_report.Report.f2 ipcs @ [ Dts_report.Report.f2 (avg ipcs) ]))
      per_geometry
  in
  series_figure ~name ~title ~x_label:"benchmark"
    ~x_values:(workload_names @ [ "average" ])
    ~runs:(List.concat_map snd per_geometry)
    lines

let fig5a_core ~runner () =
  geometry_sweep ~name:"fig5a"
    ~title:
      "Figure 5a: IPC for very wide blocks (instructions/li x li/block); \
       perfect caches, 3072KB VLIW$"
    ~geometries:fig5a_geometries ~runner ()

let fig5a ?pool ?scale ?budget () =
  fig5a_core ~runner:(run_jobs ?pool ?scale ?budget) ()

let fig5_core ~runner () =
  geometry_sweep ~name:"fig5"
    ~title:
      "Figure 5b: IPC vs block geometry (instructions/li x li/block); \
       perfect caches, 3072KB VLIW$, no next-li penalty"
    ~geometries:fig5_geometries ~runner ()

let fig5 ?pool ?scale ?budget () =
  fig5_core ~runner:(run_jobs ?pool ?scale ?budget) ()

(* ------------------------------------------------------------------ *)
(* Shared shape: one series per configuration over all workloads        *)
(* ------------------------------------------------------------------ *)

(** Run every workload on each labelled configuration and render one IPC
    series per configuration (the shape of Figures 6/7, the ablation and
    the extensions tables). *)
let config_sweep ~name ~title ~(runner : runner) labelled_cfgs =
  let jobs =
    List.concat_map
      (fun (_, cfg) -> List.map (fun nm -> J_dtsvliw (cfg, nm)) workload_names)
      labelled_cfgs
  in
  let per_cfg =
    List.map2
      (fun (label, _) runs -> (label, runs))
      labelled_cfgs
      (chunk (List.length workload_names) (runner jobs))
  in
  let lines =
    List.map
      (fun (label, runs) ->
        let ipcs = List.map (fun r -> r.ipc) runs in
        (label, List.map Dts_report.Report.f2 ipcs @ [ Dts_report.Report.f2 (avg ipcs) ]))
      per_cfg
  in
  series_figure ~name ~title ~x_label:"benchmark"
    ~x_values:(workload_names @ [ "average" ])
    ~runs:(List.concat_map snd per_cfg)
    lines

(* ------------------------------------------------------------------ *)
(* Figure 6: VLIW Cache size (8x8 geometry, associativity 4)            *)
(* ------------------------------------------------------------------ *)

let fig6_sizes_kb = [ 48; 96; 192; 384; 768; 1536; 3072 ]

let fig6_core ~runner () =
  config_sweep ~name:"fig6"
    ~title:"Figure 6: IPC vs VLIW Cache size (8x8 blocks, 4-way)" ~runner
    (List.map
       (fun kb ->
         ( Printf.sprintf "%dKB" kb,
           { (Dts_core.Config.ideal ()) with vliw_cache = { kb; assoc = 4 } } ))
       fig6_sizes_kb)

let fig6 ?pool ?scale ?budget () =
  fig6_core ~runner:(run_jobs ?pool ?scale ?budget) ()

(* ------------------------------------------------------------------ *)
(* Figure 7: VLIW Cache associativity (96KB and 384KB, 8x8)             *)
(* ------------------------------------------------------------------ *)

let fig7_core ~runner () =
  config_sweep ~name:"fig7"
    ~title:"Figure 7: IPC vs VLIW Cache associativity (8x8 blocks)" ~runner
    (List.concat_map
       (fun kb ->
         List.map
           (fun assoc ->
             ( Printf.sprintf "%dKB/%d-way" kb assoc,
               { (Dts_core.Config.ideal ()) with vliw_cache = { kb; assoc } } ))
           [ 1; 2; 4; 8 ])
       [ 96; 384 ])

let fig7 ?pool ?scale ?budget () =
  fig7_core ~runner:(run_jobs ?pool ?scale ?budget) ()

(* ------------------------------------------------------------------ *)
(* Figure 8: feasible machine cost breakdown (differential ablation)    *)
(* ------------------------------------------------------------------ *)

(** The stacked bars of Figure 8 are regenerated by a chain of
    configurations, each adding one cost source; the difference between
    consecutive IPCs is that source's cost. *)
let fig8_chain () =
  let feasible = Dts_core.Config.feasible () in
  let ideal_width =
    (* step A: same issue width, homogeneous units, perfect caches *)
    {
      feasible with
      sched = { feasible.sched with slot_classes = None };
      icache = Dts_core.Config.Perfect;
      dcache = Dts_core.Config.Perfect;
      next_li_penalty = 0;
      vliw_cache = { kb = 3072; assoc = 4 };
    }
  in
  let with_fu =
    { ideal_width with sched = feasible.sched; vliw_cache = feasible.vliw_cache }
  in
  let with_icache = { with_fu with icache = feasible.icache } in
  let with_dcache = { with_icache with dcache = feasible.dcache } in
  [
    ("ideal", ideal_width);
    ("+FU mix & 192KB VLIW$", with_fu);
    ("+I-cache", with_icache);
    ("+D-cache", with_dcache);
    ("feasible (+next-li)", feasible);
  ]

let fig8_core ~(runner : runner) () =
  let chain = fig8_chain () in
  let jobs =
    List.concat_map
      (fun name -> List.map (fun (_, cfg) -> J_dtsvliw (cfg, name)) chain)
      workload_names
  in
  let per_wl =
    List.map2
      (fun name runs -> (name, runs))
      workload_names
      (chunk (List.length chain) (runner jobs))
  in
  let headers =
    [ "benchmark"; "ILP"; "NextLI cost"; "D$ cost"; "I$ cost"; "FU cost"; "ideal" ]
  in
  let rows =
    List.map
      (fun (name, runs) ->
        match List.map (fun r -> r.ipc) runs with
        | [ a; b; c; d; e ] ->
          [
            name;
            Dts_report.Report.f2 e;
            Dts_report.Report.f2 (d -. e);
            Dts_report.Report.f2 (c -. d);
            Dts_report.Report.f2 (b -. c);
            Dts_report.Report.f2 (a -. b);
            Dts_report.Report.f2 a;
          ]
        | _ -> assert false)
      per_wl
  in
  table_figure ~name:"fig8"
    ~title:
      "Figure 8: feasible machine cost breakdown (stacked: ILP + cost \
       components = ideal IPC)"
    ~headers
    ~runs:(List.concat_map snd per_wl)
    rows

let fig8 ?pool ?scale ?budget () =
  fig8_core ~runner:(run_jobs ?pool ?scale ?budget) ()

(* ------------------------------------------------------------------ *)
(* Table 3: performance and resources of the feasible machine           *)
(* ------------------------------------------------------------------ *)

let table3_core ~(runner : runner) () =
  let feasible = Dts_core.Config.feasible () in
  let runs =
    runner (List.map (fun name -> J_dtsvliw (feasible, name)) workload_names)
  in
  let headers =
    [
      "metric";
    ]
    @ workload_names @ [ "average" ]
  in
  let metric name get fmt =
    (name :: List.map (fun r -> fmt (get r)) runs)
    @ [ fmt (avg (List.map get runs)) ]
  in
  let fi v = string_of_int (int_of_float (Float.round v)) in
  let rows =
    [
      metric "Instructions per Cycle" (fun r -> r.ipc) Dts_report.Report.f2;
      metric "Integer Renaming Registers" (fun r -> float_of_int r.rr_max.(0)) fi;
      metric "F.P. Renaming Registers" (fun r -> float_of_int r.rr_max.(1)) fi;
      metric "Flag Renaming Registers" (fun r -> float_of_int r.rr_max.(2)) fi;
      metric "Memory Renaming Registers" (fun r -> float_of_int r.rr_max.(3)) fi;
      metric "Load List Size" (fun r -> float_of_int r.max_load_list) fi;
      metric "Store List Size" (fun r -> float_of_int r.max_store_list) fi;
      metric "Checkpoint Rec. Store List"
        (fun r -> float_of_int r.max_recovery_list)
        fi;
      metric "Aliasing Exceptions" (fun r -> float_of_int r.aliasing_exceptions) fi;
      metric "VLIW Engine Execution Cycles" (fun r -> r.vliw_fraction)
        Dts_report.Report.pct;
      metric "Slot Utilisation" (fun r -> r.slot_utilisation) Dts_report.Report.pct;
    ]
  in
  table_figure ~name:"table3"
    ~title:"Table 3: performance and resource consumption of the feasible machine"
    ~headers ~runs rows

let table3 ?pool ?scale ?budget () =
  table3_core ~runner:(run_jobs ?pool ?scale ?budget) ()

(* ------------------------------------------------------------------ *)
(* Figure 9: DTSVLIW vs DIF                                             *)
(* ------------------------------------------------------------------ *)

(** The DTSVLIW side of Figure 9 uses the paper's comparison parameters:
    6x6 blocks, 4 homogeneous + 2 branch units, 4KB I/D caches with 2-cycle
    misses, 216KB VLIW Cache (512x2 blocks). *)
let fig9_dtsvliw_cfg () =
  let base = Dts_dif.Dif.fig9_machine_cfg () in
  let classes =
    [| None; None; None; None; Some Dts_isa.Instr.Fu_br; Some Dts_isa.Instr.Fu_br |]
  in
  { base with sched = { base.sched with slot_classes = Some classes } }

let fig9_core ~(runner : runner) () =
  let dts_cfg = fig9_dtsvliw_cfg () in
  let dif_cfg = Dts_dif.Dif.fig9_machine_cfg () in
  let nw = List.length workload_names in
  (* one flat batch: the DTSVLIW side, the DIF side, and the resources run *)
  let jobs =
    List.map (fun name -> J_dtsvliw (dts_cfg, name)) workload_names
    @ List.map (fun name -> J_dif (dif_cfg, name)) workload_names
    @ [ J_dtsvliw (dts_cfg, "compress") ]
  in
  let dts_runs, dif_runs, resources_run =
    match chunk nw (runner jobs) with
    | [ a; b; [ r ] ] -> (a, b, r)
    | _ -> assert false
  in
  let dts = List.map (fun r -> r.ipc) dts_runs in
  let dif = List.map (fun r -> r.ipc) dif_runs in
  let rows =
    List.map2
      (fun name (a, b) ->
        [ name; Dts_report.Report.f2 a; Dts_report.Report.f2 b ])
      workload_names
      (List.combine dts dif)
    @ [
        [
          "average";
          Dts_report.Report.f2 (avg dts);
          Dts_report.Report.f2 (avg dif);
        ];
      ]
  in
  let resources =
    let dts_rr = resources_run.rr_max in
    Printf.sprintf
      "Resources: DTSVLIW renaming registers (compress, max/block): %d int, \
       %d fp | DIF register instances: %d int + %d fp (4 per register)\n"
      dts_rr.(0) dts_rr.(1) (24 * 4) (24 * 4)
  in
  table_figure ~name:"fig9"
    ~title:"Figure 9: DTSVLIW vs DIF (6x6 blocks, 4KB I/D caches, 512x2-block code cache)"
    ~headers:[ "benchmark"; "DTSVLIW"; "DIF" ]
    ~extra:resources
    ~runs:(dts_runs @ dif_runs @ [ resources_run ])
    rows

let fig9 ?pool ?scale ?budget () =
  fig9_core ~runner:(run_jobs ?pool ?scale ?budget) ()

(* ------------------------------------------------------------------ *)
(* Ablations (beyond the paper; design choices called out in DESIGN.md) *)
(* ------------------------------------------------------------------ *)

let ablations =
  [
    ("baseline", fun (c : Dts_core.Config.t) -> c);
    ( "no renaming",
      fun c -> { c with sched = { c.sched with renaming = false } } );
    ( "no re-split on control",
      fun c -> { c with sched = { c.sched with resplit_on_control = false } } );
    ( "no load/store motion",
      fun c -> { c with sched = { c.sched with mem_motion = false } } );
    ( "strict control insert",
      fun c -> { c with sched = { c.sched with strict_control_insert = true } } );
  ]

let ablation_core ~runner () =
  let base = Dts_core.Config.ideal () in
  config_sweep ~name:"ablation"
    ~title:"Ablation: scheduler design choices (ideal 8x8 machine)" ~runner
    (List.map (fun (label, f) -> (label, f base)) ablations)

let ablation ?pool ?scale ?budget () =
  ablation_core ~runner:(run_jobs ?pool ?scale ?budget) ()

(* ------------------------------------------------------------------ *)
(* Extensions: the paper's §5 future work and §3.11 alternative, measured  *)
(* ------------------------------------------------------------------ *)

(** Next-long-instruction prediction (§5), the data-store-list exception
    scheme (§3.11's "has not been used" alternative), and multicycle
    functional units ([14]) — each against the feasible machine. *)
let extensions_core ~runner () =
  let feasible = Dts_core.Config.feasible () in
  config_sweep ~name:"extensions"
    ~title:
      "Extensions (beyond the paper): next-li prediction (sec. 5), data store \
       list (sec. 3.11), multicycle units ([14])"
    ~runner
    [
      ("feasible baseline", feasible);
      ("+ next-li prediction", { feasible with next_li_prediction = true });
      ( "data-store-list scheme",
        { feasible with store_scheme = Dts_vliw.Engine.Data_store_list } );
      ( "multicycle units (ld2/mul3/div8)",
        {
          feasible with
          sched =
            { feasible.sched with latencies = Dts_isa.Instr.multicycle_latencies };
          primary_timing =
            {
              feasible.primary_timing with
              latencies = Dts_isa.Instr.multicycle_latencies;
            };
        } );
    ]

let extensions ?pool ?scale ?budget () =
  extensions_core ~runner:(run_jobs ?pool ?scale ?budget) ()

(* ------------------------------------------------------------------ *)
(* Optimality gap: greedy FCFS vs branch-and-bound optimal schedules    *)
(* ------------------------------------------------------------------ *)

let optgap_geometries () =
  [
    ("ideal", Dts_core.Config.ideal ());
    ("feasible", Dts_core.Config.feasible ());
  ]

(** How far from optimal is the paper's greedy FCFS list-scheduler? Every
    workload runs once per geometry with its finished blocks captured;
    each block is re-scheduled by the {!Dts_opt.Opt} branch-and-bound
    oracle and the long-instruction counts are summed. [optimal (lower)]
    and [optimal (upper)] are certified bounds; when every block certifies
    ([certified] = [blocks]) they coincide and the gap is exact. *)
let optgap_core ~(runner : runner) () =
  let geoms = optgap_geometries () in
  let jobs =
    List.concat_map
      (fun (_, cfg) -> List.map (fun nm -> J_optgap (cfg, nm)) workload_names)
      geoms
  in
  let per_geom =
    List.map2
      (fun (label, _) runs -> (label, runs))
      geoms
      (chunk (List.length workload_names) (runner jobs))
  in
  let rows =
    List.concat_map
      (fun (label, runs) ->
        List.map
          (fun r ->
            let g =
              match r.optgap with Some g -> g | None -> assert false
            in
            let gap =
              float_of_int (g.Dts_opt.Opt.gs_fcfs_lis - g.gs_opt_upper)
              /. float_of_int (max 1 g.gs_fcfs_lis)
            in
            [
              label;
              r.workload;
              string_of_int g.gs_blocks;
              string_of_int g.gs_fcfs_lis;
              string_of_int g.gs_opt_lower;
              string_of_int g.gs_opt_upper;
              Dts_report.Report.pct gap;
              Printf.sprintf "%d/%d" g.gs_certified g.gs_blocks;
              string_of_int g.gs_search_nodes;
            ])
          runs)
      per_geom
  in
  table_figure ~name:"optgap"
    ~title:
      "Optimality gap: greedy FCFS scheduling vs branch-and-bound optimal \
       block schedules (long instructions summed over blocks)"
    ~headers:
      [
        "geometry"; "benchmark"; "blocks"; "fcfs lis"; "optimal (lower)";
        "optimal (upper)"; "gap"; "certified"; "search nodes";
      ]
    ~runs:(List.concat_map snd per_geom)
    rows

let optgap ?pool ?scale ?budget () =
  optgap_core ~runner:(run_jobs ?pool ?scale ?budget) ()

(* ------------------------------------------------------------------ *)
(* Cycle breakdown: the observability layer's own table                 *)
(* ------------------------------------------------------------------ *)

(** Where the cycles go: every machine cycle of the feasible machine
    attributed to one category (see {!Dts_obs.Attribution}), per workload,
    as a fraction of total cycles. The [TOTAL] row is the invariant check:
    attributed cycles / machine cycles, always 100.0%. *)
let breakdown_core ~(runner : runner) () =
  let feasible = Dts_core.Config.feasible () in
  let runs =
    runner (List.map (fun name -> J_dtsvliw (feasible, name)) workload_names)
  in
  let fraction_of r cat =
    float_of_int (Dts_obs.Attribution.sum_of r.stats.Dts_obs.Stats.attribution [ cat ])
    /. float_of_int (max 1 r.cycles)
  in
  let rows =
    List.map
      (fun cat ->
        let fracs = List.map (fun r -> fraction_of r cat) runs in
        (Dts_obs.Attribution.label cat
         :: List.map Dts_report.Report.pct fracs)
        @ [ Dts_report.Report.pct (avg fracs) ])
      Dts_obs.Attribution.all
    @ [
        (let totals =
           List.map
             (fun r ->
               float_of_int (Dts_obs.Attribution.total r.stats.Dts_obs.Stats.attribution)
               /. float_of_int (max 1 r.cycles))
             runs
         in
         ("TOTAL (attributed/machine)"
          :: List.map Dts_report.Report.pct totals)
         @ [ Dts_report.Report.pct (avg totals) ]);
      ]
  in
  table_figure ~name:"breakdown"
    ~title:
      "Cycle breakdown: attribution of every machine cycle (feasible machine)"
    ~headers:([ "category" ] @ workload_names @ [ "average" ])
    ~runs rows

let breakdown ?pool ?scale ?budget () =
  breakdown_core ~runner:(run_jobs ?pool ?scale ?budget) ()

(* ------------------------------------------------------------------ *)
(* Plan / evaluate / assemble: the distributed evaluation API           *)
(* ------------------------------------------------------------------ *)

type descriptor = job

(* Figures whose cores simulate nothing ignore the runner entirely. *)
let cores : (string * (runner:runner -> unit -> figure)) list =
  [
    ("table1", fun ~runner () -> ignore runner; table1 ());
    ("table2", fun ~runner () -> ignore runner; table2 ());
    ("fig5a", fig5a_core);
    ("fig5", fig5_core);
    ("fig6", fig6_core);
    ("fig7", fig7_core);
    ("fig8", fig8_core);
    ("table3", table3_core);
    ("fig9", fig9_core);
    ("ablation", ablation_core);
    ("extensions", extensions_core);
    ("breakdown", breakdown_core);
    ("optgap", optgap_core);
  ]

(* "all" concatenates these, in this order (see {!all_figures}). *)
let all_components =
  [ "table1"; "table2"; "fig5a"; "fig5"; "fig6"; "fig7"; "fig8"; "table3";
    "fig9"; "ablation"; "extensions" ]

let core_of name =
  match List.assoc_opt name cores with
  | Some core -> core
  | None ->
    invalid_arg
      (Printf.sprintf "Experiments: unknown figure %S (expected one of %s)"
         name
         (String.concat ", " (List.map fst cores @ [ "all" ])))

exception Planned of job list

(* A figure core calls its runner exactly once with the full flat
   descriptor list (the PR 3 run-descriptor refactor), so a recording
   runner observes the complete plan. *)
let rec plan name =
  if name = "all" then List.concat_map plan all_components
  else begin
    let core = core_of name in
    match core ~runner:(fun jobs -> raise (Planned jobs)) () with
    | _ -> [] (* the core never consulted the runner: nothing to simulate *)
    | exception Planned jobs -> jobs
  end

let eval_descriptor ?scale ?budget d = run_job ?scale ?budget d

let replay_runner ~name runs jobs =
  if List.length jobs <> List.length runs then
    invalid_arg
      (Printf.sprintf
         "Experiments.assemble: figure %s expects %d runs, got %d" name
         (List.length jobs) (List.length runs))
  else runs

(* Take [n] elements off the front. *)
let take_drop n xs =
  let rec go acc k = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> invalid_arg "Experiments.assemble: too few runs"
    | x :: tl -> go (x :: acc) (k - 1) tl
  in
  go [] n xs

let rec assemble name runs =
  if name = "all" then begin
    let figs, rest =
      List.fold_left
        (fun (figs, rest) comp ->
          let mine, rest = take_drop (List.length (plan comp)) rest in
          (assemble comp mine :: figs, rest))
        ([], runs) all_components
    in
    if rest <> [] then invalid_arg "Experiments.assemble: too many runs";
    let figs = List.rev figs in
    let rendered = List.map (fun f -> f.render ()) figs in
    {
      name = "all";
      rows = List.concat_map (fun f -> f.rows) figs;
      tables = List.concat_map (fun f -> f.tables) figs;
      render = (fun () -> String.concat "\n" rendered);
    }
  end
  else (core_of name) ~runner:(replay_runner ~name runs) ()

(* ------------------------------------------------------------------ *)

let all_figures ?pool ?scale ?budget () =
  [
    table1 ();
    table2 ();
    fig5a ?pool ?scale ?budget ();
    fig5 ?pool ?scale ?budget ();
    fig6 ?pool ?scale ?budget ();
    fig7 ?pool ?scale ?budget ();
    fig8 ?pool ?scale ?budget ();
    table3 ?pool ?scale ?budget ();
    fig9 ?pool ?scale ?budget ();
    ablation ?pool ?scale ?budget ();
    extensions ?pool ?scale ?budget ();
  ]

let all ?pool ?scale ?budget () =
  let figs = all_figures ?pool ?scale ?budget () in
  let rendered = List.map (fun f -> f.render ()) figs in
  {
    name = "all";
    rows = List.concat_map (fun f -> f.rows) figs;
    tables = List.concat_map (fun f -> f.tables) figs;
    render = (fun () -> String.concat "\n" rendered);
  }

let by_name =
  [
    ( "table1",
      fun ?pool ?scale ?budget () ->
        ignore pool; ignore scale; ignore budget; table1 () );
    ( "table2",
      fun ?pool ?scale ?budget () ->
        ignore pool; ignore scale; ignore budget; table2 () );
    ("fig5a", fig5a);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("table3", table3);
    ("fig9", fig9);
    ("ablation", ablation);
    ("extensions", extensions);
    ("breakdown", breakdown);
    ("optgap", optgap);
    ("all", all);
  ]
