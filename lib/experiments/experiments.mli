(** The evaluation harness: one entry per table and figure of the paper's
    §4, plus ablations and the measured extensions.

    Every run executes in test mode (golden co-simulation), so a reported
    number is also a proof that the simulated machine computed the same
    architectural states as a sequential SRISC machine. IPC is the paper's
    metric: sequential instructions (test-machine count) over DTSVLIW
    cycles. All entry points render a ready-to-print text table. *)

(** Everything measured in one simulation run. *)
type run = {
  workload : string;
  ipc : float;
  cycles : int;
  instructions : int;
  vliw_fraction : float;
  slot_utilisation : float;
  rr_max : int array;  (** int, fp, flag, mem renaming register high water *)
  max_load_list : int;
  max_store_list : int;
  max_recovery_list : int;
  aliasing_exceptions : int;
  blocks : int;
}

val simulated_instructions : unit -> int
(** Cumulative sequential instructions simulated by every run performed in
    this process (monotone counter). The bench harness reads deltas around
    each figure to report simulated instructions/sec. *)

val run_dtsvliw : ?scale:int -> ?budget:int -> Dts_core.Config.t -> string -> run
(** Run one named workload on a DTSVLIW configuration. *)

val run_dif :
  ?scale:int -> ?budget:int -> ?dif_cfg:Dts_dif.Dif.config ->
  Dts_core.Config.t -> string -> run * Dts_dif.Dif.t
(** Run one named workload on the DIF baseline. *)

val workload_names : string list

val fig9_dtsvliw_cfg : unit -> Dts_core.Config.t
(** The DTSVLIW side of Figure 9: 6x6 blocks, 4 universal + 2 branch units,
    4KB caches. *)

val table1 : unit -> string
val table2 : unit -> string
val fig5a : ?scale:int -> ?budget:int -> unit -> string
val fig5 : ?scale:int -> ?budget:int -> unit -> string
val fig6 : ?scale:int -> ?budget:int -> unit -> string
val fig7 : ?scale:int -> ?budget:int -> unit -> string
val fig8 : ?scale:int -> ?budget:int -> unit -> string
val table3 : ?scale:int -> ?budget:int -> unit -> string
val fig9 : ?scale:int -> ?budget:int -> unit -> string
val ablation : ?scale:int -> ?budget:int -> unit -> string
val extensions : ?scale:int -> ?budget:int -> unit -> string
val all : ?scale:int -> ?budget:int -> unit -> string

val by_name : (string * (?scale:int -> ?budget:int -> unit -> string)) list
(** Name → generator registry used by [bin/experiments] and the bench. *)
