(** The evaluation harness: one entry per table and figure of the paper's
    §4, plus ablations and the measured extensions.

    Every run executes in test mode (golden co-simulation), so a reported
    number is also a proof that the simulated machine computed the same
    architectural states as a sequential SRISC machine. IPC is the paper's
    metric: sequential instructions (test-machine count) over DTSVLIW
    cycles.

    Entry points return a structured {!figure}: the raw {!run} records, the
    table cells, and a [render] closure producing the exact ready-to-print
    text (no re-simulation). Consumers read data instead of parsing
    strings.

    Every figure generator accepts [?pool]: a {!Dts_parallel.Pool.t} fans
    the figure's independent simulations out over the pool's domains.
    Results are reassembled in submission order, so the returned figure —
    rows, tables and rendering — is bit-identical with and without a
    pool. *)

(** Everything measured in one simulation run. *)
type run = {
  workload : string;
  ipc : float;
  cycles : int;
  instructions : int;
  vliw_fraction : float;
  slot_utilisation : float;
  rr_max : int array;  (** int, fp, flag, mem renaming register high water *)
  max_load_list : int;
  max_store_list : int;
  max_recovery_list : int;
  aliasing_exceptions : int;
  blocks : int;
  stats : Dts_obs.Stats.t;
      (** the full machine snapshot, including the per-category cycle
          attribution *)
  optgap : Dts_opt.Opt.gap_summary option;
      (** FCFS-vs-optimal schedule comparison over the run's finished
          blocks — [None] except on the [optgap] figure's runs *)
}

(** One table or figure of the evaluation: structured data plus its exact
    text rendering. *)
type figure = {
  name : string;  (** the registry key, e.g. ["fig6"] *)
  rows : run list;  (** every simulation performed, in submission order *)
  tables : (string * string list list) list;
      (** (title, header row :: data rows) for each rendered table *)
  render : unit -> string;
      (** the ready-to-print text output; pure (no re-simulation) *)
}

val simulated_instructions : unit -> int
(** Cumulative sequential instructions simulated by every run performed in
    this process (monotone counter). The bench harness reads deltas around
    each figure to report simulated instructions/sec. *)

val run_dtsvliw :
  ?scale:int ->
  ?budget:int ->
  ?tracer:Dts_obs.Trace.t ->
  Dts_core.Config.t ->
  string ->
  run
(** Run one named workload on a DTSVLIW configuration.
    @raise Invalid_argument if [scale] or [budget] is not positive. *)

val run_dif :
  ?scale:int ->
  ?budget:int ->
  ?dif_cfg:Dts_dif.Dif.config ->
  ?tracer:Dts_obs.Trace.t ->
  Dts_core.Config.t ->
  string ->
  run * Dts_dif.Dif.t
(** Run one named workload on the DIF baseline.
    @raise Invalid_argument if [scale] or [budget] is not positive. *)

val run_optgap : ?scale:int -> ?budget:int -> Dts_core.Config.t -> string -> run
(** Run one named workload with its finished blocks captured and the
    {!Dts_opt.Opt} branch-and-bound oracle's FCFS-vs-optimal summary
    attached ([run.optgap] is [Some _]). The oracle's per-block search
    budget is fixed ({!Dts_opt.Opt.default_node_budget}), so the summary is
    a deterministic function of the run's blocks.
    @raise Invalid_argument if [scale] or [budget] is not positive. *)

val workload_names : string list

val fig9_dtsvliw_cfg : unit -> Dts_core.Config.t
(** The DTSVLIW side of Figure 9: 6x6 blocks, 4 universal + 2 branch units,
    4KB caches. *)

val table1 : unit -> figure
val table2 : unit -> figure

val fig5a :
  ?pool:Dts_parallel.Pool.t -> ?scale:int -> ?budget:int -> unit -> figure

val fig5 :
  ?pool:Dts_parallel.Pool.t -> ?scale:int -> ?budget:int -> unit -> figure

val fig6 :
  ?pool:Dts_parallel.Pool.t -> ?scale:int -> ?budget:int -> unit -> figure

val fig7 :
  ?pool:Dts_parallel.Pool.t -> ?scale:int -> ?budget:int -> unit -> figure

val fig8 :
  ?pool:Dts_parallel.Pool.t -> ?scale:int -> ?budget:int -> unit -> figure

val table3 :
  ?pool:Dts_parallel.Pool.t -> ?scale:int -> ?budget:int -> unit -> figure

val fig9 :
  ?pool:Dts_parallel.Pool.t -> ?scale:int -> ?budget:int -> unit -> figure

val ablation :
  ?pool:Dts_parallel.Pool.t -> ?scale:int -> ?budget:int -> unit -> figure

val extensions :
  ?pool:Dts_parallel.Pool.t -> ?scale:int -> ?budget:int -> unit -> figure

val breakdown :
  ?pool:Dts_parallel.Pool.t -> ?scale:int -> ?budget:int -> unit -> figure
(** Cycle-attribution breakdown of the feasible machine: one row per
    {!Dts_obs.Attribution.category}, one column per workload, cells as
    percentages of total machine cycles; the TOTAL row is the sum of all
    categories over machine cycles (the invariant: always 100.0%). Not part
    of {!all} (it is an observability artefact, not a paper figure). *)

val optgap :
  ?pool:Dts_parallel.Pool.t -> ?scale:int -> ?budget:int -> unit -> figure
(** Optimality gap of the greedy FCFS scheduler: every workload under the
    ideal and feasible geometries, each finished block re-scheduled by the
    {!Dts_opt.Opt} branch-and-bound oracle; rows carry summed
    long-instruction counts, certified lower/upper optimal bounds, and the
    gap percentage. Not part of {!all} (a reproduction-quality study, not a
    paper figure). *)

val all :
  ?pool:Dts_parallel.Pool.t -> ?scale:int -> ?budget:int -> unit -> figure
(** Every paper table/figure plus ablations and extensions, concatenated;
    [rows]/[tables] are the concatenation of the sub-figures'. Figures run
    one after another; within each, the runs fan out over [?pool]. *)

val by_name :
  (string
  * (?pool:Dts_parallel.Pool.t -> ?scale:int -> ?budget:int -> unit -> figure))
  list
(** Name → generator registry used by [bin/experiments] and the bench. *)

(** {2 Distributed evaluation}

    A figure is a pure function of its {!run} records, and those records
    are produced from a flat, deterministic list of per-simulation
    descriptors (the PR 3 run-descriptor refactor). The three functions
    below split the two phases so independent processes can evaluate
    disjoint slices of a figure's plan and a coordinator can reassemble
    the figure — bit-identical to a local run — from the runs in plan
    order. [Dts_job.Run] and the [dtsvliw_serve] campaign daemon are the
    consumers. *)

type descriptor
(** One simulation of a figure's plan: a machine configuration plus a
    workload name. Plain data (safe to evaluate in a forked worker and
    marshal the resulting {!run} back). *)

val plan : string -> descriptor list
(** The complete, deterministic descriptor list of the named figure —
    empty for figures that simulate nothing (["table1"], ["table2"]);
    ["all"] concatenates its components' plans in rendering order.
    @raise Invalid_argument on an unknown figure name. *)

val eval_descriptor : ?scale:int -> ?budget:int -> descriptor -> run
(** Evaluate one descriptor (same validation as {!run_dtsvliw}). *)

val assemble : string -> run list -> figure
(** Rebuild the named figure from runs listed in {!plan} order. For every
    figure and any slicing of its plan,
    [assemble name (List.map eval_descriptor (plan name))] equals the
    direct generator call — enforced by test.
    @raise Invalid_argument on an unknown name or a run-count mismatch. *)
