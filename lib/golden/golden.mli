(** The golden reference machine — the paper's "test machine" (§4).

    A purely sequential SRISC interpreter with no timing model, used to
    validate the DTSVLIW and DIF machines instruction by instruction and to
    count the sequential instructions that form the numerator of the
    instructions-per-cycle metric. *)

exception Program_halted

type t

val create : ?nwindows:int -> ?mem:Dts_mem.Memory.t -> unit -> t
(** A fresh machine; [nwindows] defaults to 32. *)

val of_state : Dts_isa.State.t -> t
(** Wrap an existing architectural state (used by the co-simulation, which
    boots two identical states and hands one to the golden machine). *)

val state : t -> Dts_isa.State.t

val step : t -> unit
(** Execute exactly one instruction, servicing traps in place.
    @raise Program_halted on [Halt]. *)

val run : ?max_instructions:int -> t -> int
(** Run until [Halt] or the budget; returns instructions retired by this
    call. *)

val run_until_pc : ?fuel:int -> t -> pc:int -> bool
(** Step until the PC equals [pc] ([false] if the fuel ran out first) — the
    test-mode synchronisation primitive. *)
