(** The golden reference machine — the paper's "test machine" (§4).

    A purely sequential SRISC interpreter with no timing model, used to
    validate the DTSVLIW and DIF machines instruction by instruction and to
    count the sequential instructions that form the numerator of the
    instructions-per-cycle metric. *)

exception Program_halted

type t

val create : ?nwindows:int -> ?mem:Dts_mem.Memory.t -> ?fastpath:bool -> unit -> t
(** A fresh machine; [nwindows] defaults to 32. [fastpath] (default [true])
    selects the allocation-free packed-op interpreter
    ({!Dts_isa.Semantics.exec_into}); [false] keeps the boxed
    {!Dts_isa.Semantics.exec} path, retained as the differential oracle.
    Both paths are observationally identical. *)

val of_state : ?fastpath:bool -> Dts_isa.State.t -> t
(** Wrap an existing architectural state (used by the co-simulation, which
    boots two identical states and hands one to the golden machine). *)

val state : t -> Dts_isa.State.t

val step : t -> unit
(** Execute exactly one instruction, servicing traps in place.
    @raise Program_halted on [Halt]. *)

val run : ?max_instructions:int -> t -> int
(** Run until [Halt] or the budget; returns instructions retired by this
    call. *)

val run_until_pc : ?fuel:int -> t -> pc:int -> bool
(** Step until the PC equals [pc] ([false] if the fuel ran out first, or if
    the machine halted elsewhere) — the test-mode synchronisation
    primitive. Halted {e at} [pc] counts as reached whether the halt
    predates the call or happens during it. *)

val advance_to_pc : t -> pc:int -> fuel:int -> int
(** Advance to the next occurrence of [pc] (a no-op if already there),
    stopping on halt or fuel exhaustion; returns the unspent fuel. The
    co-simulation sync loop's inner primitive: one exception handler per
    run instead of per step. *)
