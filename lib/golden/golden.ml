(** The golden reference machine — the paper's "test machine" (§4).

    A purely sequential SRISC interpreter with no timing model. It is used
    to (a) validate the DTSVLIW and DIF machines instruction-by-instruction
    in test mode, and (b) count the number of instructions needed for the
    sequential execution of a program, which is the numerator of the paper's
    instructions-per-cycle metric (a DTSVLIW alone cannot provide it because
    of copy instructions and speculation, §4). *)

exception Program_halted

type t = { st : Dts_isa.State.t }

let create ?(nwindows = 32) ?mem () =
  { st = Dts_isa.State.create ~nwindows ?mem () }

let of_state st = { st }
let state t = t.st

(** Execute exactly one instruction. Raises {!Program_halted} on [Halt]. *)
let step t =
  let st = t.st in
  if st.halted then raise Program_halted;
  let pc = st.pc in
  let instr = Dts_isa.Predecode.fetch st.predecode ~addr:pc in
  if instr = Dts_isa.Instr.Halt then begin
    st.halted <- true;
    st.instret <- st.instret + 1;
    raise Program_halted
  end;
  let out = Dts_isa.Semantics.exec st ~cwp:st.cwp ~pc instr in
  let out =
    match out.trap with
    | None -> out
    | Some trap -> Dts_isa.Semantics.service_and_exec st ~cwp:st.cwp ~pc instr trap
  in
  Dts_isa.Semantics.apply st out

(** Run until [Halt] or until [max_instructions] more instructions have
    retired; returns the number retired by this call. *)
let run ?max_instructions t =
  let budget = match max_instructions with Some n -> n | None -> max_int in
  let start = t.st.instret in
  (try
     while t.st.instret - start < budget do
       step t
     done
   with Program_halted -> ());
  t.st.instret - start

(** Step until the golden PC equals [pc] or the budget runs out — the test
    mode synchronisation primitive ("runs until its PC becomes equal to the
    DTSVLIW PC"). Returns [false] if the budget was exhausted first. *)
let run_until_pc ?(fuel = 10_000_000) t ~pc =
  let rec go fuel =
    if t.st.pc = pc && not t.st.halted then true
    else if fuel = 0 then false
    else begin
      (try step t with Program_halted -> ());
      if t.st.halted then t.st.pc = pc else go (fuel - 1)
    end
  in
  go fuel
