(** The golden reference machine — the paper's "test machine" (§4).

    A purely sequential SRISC interpreter with no timing model. It is used
    to (a) validate the DTSVLIW and DIF machines instruction-by-instruction
    in test mode, and (b) count the number of instructions needed for the
    sequential execution of a program, which is the numerator of the paper's
    instructions-per-cycle metric (a DTSVLIW alone cannot provide it because
    of copy instructions and speculation, §4). *)

exception Program_halted

type t = {
  st : Dts_isa.State.t;
  buf : Dts_isa.Semantics.outcome_buf;
      (** scratch for the allocation-free path; dead on the boxed path *)
  fastpath : bool;
}

let create ?(nwindows = 32) ?mem ?(fastpath = true) () =
  {
    st = Dts_isa.State.create ~nwindows ?mem ();
    buf = Dts_isa.Semantics.make_buf ();
    fastpath;
  }

let of_state ?(fastpath = true) st =
  { st; buf = Dts_isa.Semantics.make_buf (); fastpath }

let state t = t.st

(* the reference path: boxed outcomes through Semantics.exec — kept as the
   differential oracle for the fast path below *)
let step_ref t =
  let st = t.st in
  let pc = st.pc in
  let instr = Dts_isa.Predecode.fetch st.predecode ~addr:pc in
  if instr = Dts_isa.Instr.Halt then begin
    st.halted <- true;
    st.instret <- st.instret + 1;
    raise Program_halted
  end;
  let out = Dts_isa.Semantics.exec st ~cwp:st.cwp ~pc instr in
  let out =
    match out.trap with
    | None -> out
    | Some trap -> Dts_isa.Semantics.service_and_exec st ~cwp:st.cwp ~pc instr trap
  in
  Dts_isa.Semantics.apply st out

(* the fast path: packed micro-ops executed into the preallocated buffer —
   zero allocation per instruction *)
let step_fast t =
  let st = t.st in
  let pc = st.pc in
  let u = Dts_isa.Predecode.fetch_uop st.predecode ~addr:pc in
  if Dts_isa.Uop.opcode u = Dts_isa.Uop.u_halt then begin
    st.halted <- true;
    st.instret <- st.instret + 1;
    raise Program_halted
  end;
  let b = t.buf in
  Dts_isa.Semantics.exec_into st ~cwp:st.cwp ~pc u b;
  if b.b_trap <> 0 then
    Dts_isa.Semantics.service_and_exec_into st ~cwp:st.cwp ~pc u b;
  Dts_isa.Semantics.apply_buf st b

(** Execute exactly one instruction. Raises {!Program_halted} on [Halt]. *)
let step t =
  if t.st.halted then raise Program_halted;
  if t.fastpath then step_fast t else step_ref t

(** Run until [Halt] or until [max_instructions] more instructions have
    retired; returns the number retired by this call. *)
let run ?max_instructions t =
  let budget = match max_instructions with Some n -> n | None -> max_int in
  let st = t.st in
  let start = st.instret in
  let stop = if budget > max_int - start then max_int else start + budget in
  (* halt test and path dispatch hoisted out of the loop, as in
     {!advance_to_pc} *)
  (try
     if st.halted then raise Program_halted
     else if t.fastpath then
       while st.instret < stop do
         step_fast t
       done
     else
       while st.instret < stop do
         step_ref t
       done
   with Program_halted -> ());
  st.instret - start

(** Step until the golden PC equals [pc] or the budget runs out — the test
    mode synchronisation primitive ("runs until its PC becomes equal to the
    DTSVLIW PC"). Returns [false] if the budget was exhausted first, or if
    the machine halted away from [pc]. A machine sitting halted {e at} [pc]
    has reached it — the answer does not depend on whether the halt
    happened before or during this call. *)
let run_until_pc ?(fuel = 10_000_000) t ~pc =
  let rec go fuel =
    if t.st.pc = pc then true
    else if t.st.halted || fuel = 0 then false
    else begin
      (try step t with Program_halted -> ());
      go (fuel - 1)
    end
  in
  go fuel

(** Advance to the next occurrence of [pc] (a no-op if already there),
    stopping early on halt or when [fuel] runs out; returns the unspent
    fuel. The inner loop is the test-mode sync hot path: on the fast path
    it runs {!step_fast} directly — one exception handler around the whole
    run instead of a handler, a halt test and a dispatch per step. *)
let advance_to_pc t ~pc ~fuel =
  let st = t.st in
  let fuel = ref fuel in
  if t.fastpath then begin
    try
      while st.pc <> pc && not st.halted && !fuel > 0 do
        step_fast t;
        decr fuel
      done
    with Program_halted -> decr fuel
  end
  else begin
    try
      while st.pc <> pc && not st.halted && !fuel > 0 do
        step_ref t;
        decr fuel
      done
    with Program_halted -> decr fuel
  end;
  !fuel
