(** The benchmark suite: eight synthetic analogues of SPECint95 (Table 2),
    written in tinyc and compiled to SRISC.

    Real SPECint95 binaries cannot run here (no SPARC compiler or inputs in
    this environment), so each analogue reproduces the {e property} the
    paper's analysis attributes to its original — instruction-working-set
    size, loop dominance, branchiness, recursion depth — which is what the
    DTSVLIW results turn on (see DESIGN.md §2 and §5). [scale] multiplies
    the outer iteration counts; [scale = 1] retires roughly 100–400k
    sequential instructions per workload. *)

type t = {
  name : string;
  mirrors : string;  (** the SPECint95 program this stands in for *)
  character : string;
  source : int -> string;  (** tinyc source at a given scale *)
}

(* ------------------------------------------------------------------ *)
(* compress: small hot loop set — hashing + bit packing over a buffer  *)
(* ------------------------------------------------------------------ *)

let compress_like scale =
  Printf.sprintf
    {|
int input[1024];
int htab[1024];
int codes[1024];
int checksum;

int hash(int prefix, int c) {
  return ((prefix << 4) ^ (c * 40503)) & 1023;
}

int main() {
  int rounds; int i; int h; int prefix; int c; int ncodes; int probes;
  prefix = 12345;
  for (i = 0; i < 1024; i = i + 1) {
    prefix = (prefix * 1103515245 + 12345) & 0x7fffffff;
    input[i] = (prefix >>> 16) & 255;
    if ((i & 7) < 3) { input[i] = 65; }
  }
  checksum = 0;
  for (rounds = 0; rounds < %d; rounds = rounds + 1) {
    for (i = 0; i < 1024; i = i + 1) { htab[i] = 0 - 1; }
    ncodes = 0;
    prefix = input[0];
    for (i = 1; i < 1024; i = i + 1) {
      c = input[i];
      h = hash(prefix, c);
      probes = 0;
      while (htab[h] != -1 && htab[h] != prefix * 256 + c && probes < 8) {
        h = (h + 1) & 1023;
        probes = probes + 1;
      }
      if (htab[h] == prefix * 256 + c) {
        prefix = 256 + h;
      } else {
        htab[h] = prefix * 256 + c;
        codes[ncodes & 1023] = prefix;
        ncodes = ncodes + 1;
        prefix = c;
      }
    }
    checksum = checksum ^ (ncodes + rounds);
  }
  return checksum;
}
|}
    (max 1 scale)

(* ------------------------------------------------------------------ *)
(* gcc: many distinct medium-size functions — large instruction        *)
(* working set, branchy IR-walk                                        *)
(* ------------------------------------------------------------------ *)

let gcc_like scale =
  (* generate 28 distinct "compiler pass" functions plus a driver walking a
     synthetic IR; the point is code-footprint diversity *)
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "int ir[1024];\nint acc;\n";
  for k = 0 to 27 do
    let a = 3 + (k * 7 mod 11) and b = 1 + (k mod 5) and c = k mod 3 in
    Buffer.add_string buf
      (Printf.sprintf
         {|
int pass%d(int node, int depth) {
  int v; int w;
  v = ir[node & 1023];
  w = (v >> %d) ^ (v * %d) ^ depth;
  if ((v & %d) == 0) { w = w + pass%d((node + %d) & 1023, depth - 1); }
  else if (v %% %d == 1) { w = w - (v << %d); }
  else { w = w ^ (v %% %d); }
  if (depth > 0 && (w & 3) == 0) { w = w + pass%d((node + v) & 1023, 0); }
  return w;
}
|}
         k b a
         ((k mod 4) + 1)
         (if k = 0 then 27 else k - 1)
         (a + b)
         (b + 2) c
         ((k mod 7) + 2)
         (if k >= 14 then k - 14 else k))
  done;
  Buffer.add_string buf
    (Printf.sprintf
       {|
int main() {
  int r; int i; int seed;
  seed = 987654321;
  for (i = 0; i < 1024; i = i + 1) {
    seed = (seed * 69069 + 1) & 0x7fffffff;
    ir[i] = seed;
  }
  acc = 0;
  for (r = 0; r < %d; r = r + 1) {
    for (i = 0; i < 1024; i = i + 16) {
      acc = acc + pass%d(i, 2) - pass%d(i + 1, 1) + pass%d(i + 2, 2);
      acc = acc ^ pass%d(i + 3, 1);
    }
  }
  return acc;
}
|}
       (4 * max 1 scale) 0 9 17 25);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* go: large irregular code, data-dependent branches on a board        *)
(* ------------------------------------------------------------------ *)

let go_like scale =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "int board[441];\nint score;\n";
  (* 441 = 21x21 board with a border *)
  for k = 0 to 15 do
    Buffer.add_string buf
      (Printf.sprintf
         {|
int eval%d(int p) {
  int v; int n; int e; int s; int w;
  v = board[p];
  n = board[p - 21]; e = board[p + 1]; s = board[p + 21]; w = board[p - 1];
  if (v == 0) { return (n == %d) + (e == %d) + (s == %d) + (w == %d); }
  if (v == 1) {
    if (n + e + s + w > %d) { return 2 + (v << %d); }
    return n * %d - e + (s ^ w);
  }
  if (n == w && e == s) { return %d - v; }
  return (v * %d) %% 13;
}
|}
         k (k mod 3) ((k + 1) mod 3) ((k + 2) mod 3) (k mod 2)
         ((k mod 4) + 1)
         (k mod 3) (k + 2) (k + 5) (k + 3))
  done;
  Buffer.add_string buf
    (Printf.sprintf
       {|
int main() {
  int r; int x; int y; int p; int seed; int k;
  seed = 42;
  for (p = 0; p < 441; p = p + 1) {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    board[p] = seed %% 3;
  }
  score = 0;
  for (r = 0; r < %d; r = r + 1) {
    for (y = 1; y < 20; y = y + 1) {
      for (x = 1; x < 20; x = x + 1) {
        p = y * 21 + x;
        k = board[p] + ((x + y + r) & 7) * 2;
        if (k == 0) { score = score + eval0(p); }
        else if (k == 1) { score = score + eval1(p); }
        else if (k == 2) { score = score - eval2(p); }
        else if (k == 3) { score = score + eval3(p); }
        else if (k == 4) { score = score ^ eval4(p); }
        else if (k == 5) { score = score + eval5(p); }
        else if (k == 6) { score = score - eval6(p); }
        else if (k == 7) { score = score + eval7(p); }
        else if (k == 8) { score = score + eval8(p); }
        else if (k == 9) { score = score - eval9(p); }
        else if (k == 10) { score = score + eval10(p); }
        else if (k == 11) { score = score ^ eval11(p); }
        else if (k == 12) { score = score + eval12(p); }
        else if (k == 13) { score = score - eval13(p); }
        else if (k == 14) { score = score + eval14(p); }
        else { score = score + eval15(p); }
        if (score > 100000) { score = score - 200000; }
        board[p] = (board[p] + (score & 1)) %% 3;
      }
    }
  }
  return score;
}
|}
       (4 * max 1 scale));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* ijpeg: one dominant high-ILP loop nest (8x8 DCT-style transform)    *)
(* ------------------------------------------------------------------ *)

let ijpeg_like scale =
  Printf.sprintf
    {|
int image[1024];
int out[1024];
int checksum;

int main() {
  int r; int b; int i; int j; int k; int s; int base;
  int seed;
  seed = 7;
  for (i = 0; i < 1024; i = i + 1) {
    seed = (seed * 69069 + 5) & 0x7fffffff;
    image[i] = (seed >>> 12) & 255;
  }
  checksum = 0;
  for (r = 0; r < %d; r = r + 1) {
    for (b = 0; b < 16; b = b + 1) {
      base = b * 64;
      /* row pass: each output is a weighted sum of the 8 row elements */
      for (i = 0; i < 8; i = i + 1) {
        for (j = 0; j < 8; j = j + 1) {
          s = 0;
          for (k = 0; k < 8; k = k + 1) {
            s = s + image[base + i * 8 + k] * ((k * j + 3) & 15);
          }
          out[base + i * 8 + j] = (s >> 4) + image[base + i * 8 + j];
        }
      }
      checksum = checksum + out[base] + out[base + 63];
    }
  }
  return checksum;
}
|}
    (max 1 scale)

(* ------------------------------------------------------------------ *)
(* m88ksim: fetch-decode-dispatch interpreter of a tiny register ISA   *)
(* ------------------------------------------------------------------ *)

let m88ksim_like scale =
  Printf.sprintf
    {|
int prog[256];
int regs[16];
int datamem[256];
int retired;

int main() {
  int r; int pc; int insn; int op; int rd; int rs1; int rs2; int steps;
  int seed;
  seed = 314159;
  /* synthesize a random but terminating program: op in 0..7 */
  for (pc = 0; pc < 256; pc = pc + 1) {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    prog[pc] = seed;
  }
  retired = 0;
  for (r = 0; r < %d; r = r + 1) {
    for (pc = 0; pc < 16; pc = pc + 1) { regs[pc] = pc * 3 + r; }
    pc = 0;
    steps = 0;
    while (steps < 3000) {
      insn = prog[pc & 255];
      op = (insn >>> 28) & 7;
      rd = (insn >>> 24) & 15;
      rs1 = (insn >>> 20) & 15;
      rs2 = (insn >>> 16) & 15;
      if (op == 0) { regs[rd] = regs[rs1] + regs[rs2]; pc = pc + 1; }
      else if (op == 1) { regs[rd] = regs[rs1] - regs[rs2]; pc = pc + 1; }
      else if (op == 2) { regs[rd] = regs[rs1] ^ (regs[rs2] << 1); pc = pc + 1; }
      else if (op == 3) { regs[rd] = datamem[(regs[rs1] + insn) & 255]; pc = pc + 1; }
      else if (op == 4) { datamem[(regs[rs1] + insn) & 255] = regs[rs2]; pc = pc + 1; }
      else if (op == 5) {
        if (regs[rs1] > regs[rs2]) { pc = pc + (insn & 15) + 1; }
        else { pc = pc + 1; }
      }
      else if (op == 6) { regs[rd] = insn & 65535; pc = pc + 1; }
      else { pc = pc + (insn & 7) + 1; }
      regs[0] = 0;
      steps = steps + 1;
    }
    retired = retired + regs[5] + steps;
  }
  return retired;
}
|}
    (max 1 scale)

(* ------------------------------------------------------------------ *)
(* perl: stack bytecode interpreter with string-ish byte buffers       *)
(* ------------------------------------------------------------------ *)

let perl_like scale =
  Printf.sprintf
    {|
int code[512];
int stack[64];
int text[512];
int result;

int interp(int entry, int limit) {
  int ip; int sp; int op; int a; int b; int steps;
  ip = entry;
  sp = 0;
  steps = 0;
  while (steps < limit) {
    op = code[ip & 511];
    ip = ip + 1;
    if (op < 64) { stack[sp & 63] = op; sp = sp + 1; }
    else if (op < 96) {
      a = stack[(sp - 1) & 63]; b = stack[(sp - 2) & 63];
      if (op < 72) { stack[(sp - 2) & 63] = a + b; }
      else if (op < 80) { stack[(sp - 2) & 63] = a * b + 1; }
      else if (op < 88) { stack[(sp - 2) & 63] = (a ^ b) | 1; }
      else { stack[(sp - 2) & 63] = a - b; }
      sp = sp - 1;
      if (sp < 1) { sp = 1; }
    }
    else if (op < 128) {
      /* string op: scan and transform a span of text */
      a = op & 31;
      b = 0;
      while (b < 12) {
        text[(a + b) & 511] = (text[(a + b) & 511] * 31 + b) & 255;
        b = b + 1;
      }
    }
    else if (op < 160) { ip = ip + (op & 7); }
    else { stack[sp & 63] = text[op & 511]; sp = sp + 1; }
    steps = steps + 1;
  }
  return stack[(sp - 1) & 63] + sp;
}

int main() {
  int r; int i; int seed;
  seed = 271828;
  for (i = 0; i < 512; i = i + 1) {
    seed = (seed * 69069 + 7) & 0x7fffffff;
    code[i] = (seed >>> 8) & 255;
    text[i] = seed & 255;
  }
  result = 0;
  for (r = 0; r < %d; r = r + 1) {
    result = result + interp(r & 255, 2500);
  }
  return result;
}
|}
    (max 1 scale)

(* ------------------------------------------------------------------ *)
(* vortex: object store — record inserts/lookups with index chasing    *)
(* ------------------------------------------------------------------ *)

let vortex_like scale =
  Printf.sprintf
    {|
int key[1024];
int val0[1024];
int val1[1024];
int nextidx[1024];
int buckets[256];
int nobjects;
int found;

int insert(int k, int a, int b) {
  int h; int i;
  if (nobjects >= 1024) { return -1; }
  i = nobjects;
  nobjects = nobjects + 1;
  key[i] = k;
  val0[i] = a;
  val1[i] = b;
  h = (k * 2654435761) >>> 24;
  nextidx[i] = buckets[h & 255];
  buckets[h & 255] = i;
  return i;
}

int lookup(int k) {
  int h; int i; int hops;
  h = (k * 2654435761) >>> 24;
  i = buckets[h & 255];
  hops = 0;
  while (i != -1 && hops < 64) {
    if (key[i] == k) { return i; }
    i = nextidx[i];
    hops = hops + 1;
  }
  return -1;
}

int main() {
  int r; int i; int k; int seed; int idx;
  found = 0;
  for (r = 0; r < %d; r = r + 1) {
    nobjects = 0;
    for (i = 0; i < 256; i = i + 1) { buckets[i] = -1; }
    seed = 13 + r;
    for (i = 0; i < 900; i = i + 1) {
      seed = (seed * 1103515245 + 12345) & 0x7fffffff;
      k = seed %% 2048;
      idx = lookup(k);
      if (idx == -1) { insert(k, seed & 255, i); }
      else { val1[idx] = val1[idx] + 1; found = found + 1; }
    }
    /* traversal: walk every chain */
    for (i = 0; i < 256; i = i + 1) {
      idx = buckets[i];
      while (idx != -1) {
        found = found + (val0[idx] & 1);
        idx = nextidx[idx];
      }
    }
  }
  return found;
}
|}
    (max 1 scale)

(* ------------------------------------------------------------------ *)
(* xlisp: cons cells + recursive evaluation (queens-style search)      *)
(* ------------------------------------------------------------------ *)

let xlisp_like scale =
  Printf.sprintf
    {|
int car[4096];
int cdr[4096];
int freeptr;
int solutions;

int cons(int a, int d) {
  int c;
  c = freeptr;
  freeptr = (freeptr + 1) & 4095;
  car[c] = a;
  cdr[c] = d;
  return c;
}

int safe(int row, int dist, int placed) {
  int q;
  if (placed == -1) { return 1; }
  q = car[placed];
  if (q == row) { return 0; }
  if (q == row + dist) { return 0; }
  if (q == row - dist) { return 0; }
  return safe(row, dist + 1, cdr[placed]);
}

int queens(int n, int col, int placed) {
  int row; int count;
  if (col == n) { return 1; }
  count = 0;
  for (row = 0; row < n; row = row + 1) {
    if (safe(row, 1, placed)) {
      count = count + queens(n, col + 1, cons(row, placed));
    }
  }
  return count;
}

int len(int lst) {
  if (lst == -1) { return 0; }
  return 1 + len(cdr[lst]);
}

int main() {
  int r; int lst; int i;
  solutions = 0;
  for (r = 0; r < %d; r = r + 1) {
    freeptr = 0;
    solutions = solutions + queens(6, 0, -1);
    /* build and measure a list, lisp-style */
    lst = -1;
    for (i = 0; i < 50; i = i + 1) { lst = cons(i, lst); }
    solutions = solutions + len(lst);
  }
  return solutions;
}
|}
    (3 * max 1 scale)

(* ------------------------------------------------------------------ *)

let all : t list =
  [
    {
      name = "compress";
      mirrors = "129.compress";
      character = "small hot loop set: hash probing + byte buffers";
      source = compress_like;
    };
    {
      name = "gcc";
      mirrors = "126.gcc";
      character = "28 distinct pass functions over a synthetic IR: large I-working set";
      source = gcc_like;
    };
    {
      name = "go";
      mirrors = "099.go";
      character = "irregular data-dependent branches over a board; wide code footprint";
      source = go_like;
    };
    {
      name = "ijpeg";
      mirrors = "132.ijpeg";
      character = "one dominant DCT-style loop nest with high ILP";
      source = ijpeg_like;
    };
    {
      name = "m88ksim";
      mirrors = "124.m88ksim";
      character = "fetch-decode-dispatch CPU interpreter loop";
      source = m88ksim_like;
    };
    {
      name = "perl";
      mirrors = "134.perl";
      character = "stack bytecode interpreter with byte-buffer string ops";
      source = perl_like;
    };
    {
      name = "vortex";
      mirrors = "147.vortex";
      character = "object store: hashed record inserts/lookups, chain walking";
      source = vortex_like;
    };
    {
      name = "xlisp";
      mirrors = "130.li";
      character = "cons cells + recursive queens search (deep call chains)";
      source = xlisp_like;
    };
  ]

let find name =
  match List.find_opt (fun w -> w.name = name) all with
  | Some w -> w
  | None -> invalid_arg ("Workloads.find: unknown workload " ^ name)

(* Compiled images keyed by (workload, scale). [Program.t] is immutable
   (booting loads it into a fresh state), so one image can serve every
   simulation; without the memo a figure sweeping N configurations over the
   workload set pays the tinyc compile + assembly (milliseconds) N times
   per workload, which at small per-run budgets rivals the simulation
   itself. Guarded by a mutex: experiment pools run jobs on domains. *)
let memo : (string * int, Dts_asm.Program.t) Hashtbl.t = Hashtbl.create 16
let memo_lock = Mutex.create ()

(** Compile a workload at a given scale (memoized). *)
let program ?(scale = 1) w =
  Mutex.protect memo_lock (fun () ->
      match Hashtbl.find_opt memo (w.name, scale) with
      | Some p -> p
      | None ->
        let p = Dts_tinyc.Tinyc.compile (w.source scale) in
        Hashtbl.add memo (w.name, scale) p;
        p)
