(** The benchmark suite: eight synthetic analogues of SPECint95 (Table 2),
    written in tinyc and compiled to SRISC.

    Each analogue reproduces the property the paper's analysis attributes
    to its original — instruction-working-set size, loop dominance,
    branchiness, recursion depth (see DESIGN.md §5). *)

type t = {
  name : string;  (** short name used throughout the harness *)
  mirrors : string;  (** the SPECint95 program this stands in for *)
  character : string;  (** one-line description of the behaviour modelled *)
  source : int -> string;  (** tinyc source at a given scale *)
}

val all : t list
(** The eight analogues, in the paper's Table 2 order. *)

val find : string -> t
(** Look up by [name]. @raise Invalid_argument on an unknown name. *)

val program : ?scale:int -> t -> Dts_asm.Program.t
(** Compile a workload; [scale] multiplies the outer iteration counts
    (default 1 ≈ 50–200k sequential instructions). Memoized per
    (workload, scale): the returned image is shared — callers must treat
    it as read-only (booting a state copies it into fresh memory, so
    ordinary simulation never mutates it). *)
