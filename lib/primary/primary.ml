(** The Primary Processor (§3.1).

    A simple four-stage (fetch, decode, execute, write-back) pipelined SRISC
    processor. It executes instructions sequentially — it is the engine that
    runs code the first time it is seen — and hands each completed
    instruction, together with what was observed while executing it, to the
    Scheduler Unit.

    Timing follows Table 1 of the paper:
    - one instruction completes per cycle in the absence of hazards;
    - there is no branch prediction hardware; {e not-taken} branches cause a
      3-cycle bubble;
    - an instruction that uses the result of the immediately preceding load
      causes a 1-cycle bubble;
    - instruction and data cache misses stall for their miss penalties. *)

type timing = {
  not_taken_branch_bubble : int;  (** Table 1: 3 *)
  load_use_bubble : int;  (** Table 1: 1 *)
  trap_service_cycles : int;  (** window spill/fill microroutine cost *)
  latencies : Dts_isa.Instr.latencies;
      (** execute-stage latencies; multicycle instructions occupy the
          execute stage for extra cycles *)
}

let default_timing =
  {
    not_taken_branch_bubble = 3;
    load_use_bubble = 1;
    trap_service_cycles = 20;
    latencies = Dts_isa.Instr.unit_latencies;
  }

(** One completed (retired) instruction with everything the Scheduler Unit
    needs to know about its execution. *)
type retired = {
  instr : Dts_isa.Instr.t;
  addr : int;  (** the instruction's PC *)
  cwp : int;  (** window pointer observed at execution (§3.9) *)
  next_pc : int;
  taken : bool;  (** direction of a control transfer (§3.5, §3.8) *)
  mem : (int * int) option;  (** observed effective address and size *)
  rwsets : Dts_isa.Storage.t list * Dts_isa.Storage.t list;
      (** observed (reads, writes) from {!Dts_isa.Rwsets.of_instr}, computed
          once at retirement with the executing state's window count, the
          observed window pointer and the observed effective address — the
          schedulers consume these instead of decoding the sets again.
          [([], [])] for a memory instruction with no observed access (a
          trapped occurrence; never handed to a scheduler). *)
  trapped : bool;  (** needed trap service — a non-schedulable occurrence *)
  cycles : int;  (** cycles this instruction consumed in the pipeline *)
  icache_stall : int;  (** of [cycles]: instruction-cache miss penalty *)
  dcache_stall : int;  (** of [cycles]: data-cache miss penalty *)
}

type t = {
  st : Dts_isa.State.t;
  icache : Dts_mem.Cache.t;
  dcache : Dts_mem.Cache.t;
  timing : timing;
  mutable last_load_writes : Dts_isa.Storage.t list;
      (** destinations of the previous instruction if it was a load *)
  mutable retired_count : int;
}

let create ?(timing = default_timing) ~icache ~dcache st =
  { st; icache; dcache; timing; last_load_writes = []; retired_count = 0 }

exception Halted

(** Execute one instruction at the current PC and return its retirement
    record. Traps are serviced in place (and flagged). Raises {!Halted} when
    the program stops. *)
let step t : retired =
  let st = t.st in
  if st.halted then raise Halted;
  let pc = st.pc in
  let cwp = st.cwp in
  let cycles = ref 1 in
  let icache_stall = Dts_mem.Cache.access t.icache pc in
  let dcache_stall = ref 0 in
  cycles := !cycles + icache_stall;
  let instr = Dts_isa.Predecode.fetch st.predecode ~addr:pc in
  cycles := !cycles + Dts_isa.Instr.latency t.timing.latencies instr - 1;
  if instr = Dts_isa.Instr.Halt then begin
    st.halted <- true;
    st.instret <- st.instret + 1;
    t.retired_count <- t.retired_count + 1;
    raise Halted
  end;
  let out = Dts_isa.Semantics.exec st ~cwp ~pc instr in
  let trapped = out.trap <> None in
  let out =
    match out.trap with
    | None -> out
    | Some trap ->
      cycles := !cycles + t.timing.trap_service_cycles;
      Dts_isa.Semantics.service_and_exec st ~cwp ~pc instr trap
  in
  (* load-use bubble: this instruction reads the previous load's result *)
  let observed_mem =
    match (out.load, out.store) with
    | Some (a, s), _ -> Some (a, s)
    | None, Some (a, s, _) -> Some (a, s)
    | None, None -> None
  in
  (* the one rwsets decode of this retirement; reused by the hazard check
     below and by whichever scheduler receives the record *)
  let rwsets =
    if observed_mem = None && Dts_isa.Instr.is_mem instr then ([], [])
    else
      Dts_isa.Rwsets.of_instr ~nwindows:st.nwindows ~cwp ?mem:observed_mem
        instr
  in
  (if
     t.last_load_writes <> []
     && (observed_mem <> None || not (Dts_isa.Instr.is_mem instr))
   then
     let reads = fst rwsets in
     if Dts_isa.Storage.any_overlap reads t.last_load_writes then
       cycles := !cycles + t.timing.load_use_bubble);
  (* data cache access *)
  (match out.load with
  | Some (a, _) -> dcache_stall := !dcache_stall + Dts_mem.Cache.access t.dcache a
  | None -> ());
  (match out.store with
  | Some (a, _, _) ->
    dcache_stall := !dcache_stall + Dts_mem.Cache.access t.dcache a
  | None -> ());
  cycles := !cycles + !dcache_stall;
  (* not-taken branch bubble (Table 1) *)
  (match instr with
  | Dts_isa.Instr.Branch { cond; _ }
    when cond <> Dts_isa.Instr.A && not out.taken ->
    cycles := !cycles + t.timing.not_taken_branch_bubble
  | _ -> ());
  Dts_isa.Semantics.apply st out;
  t.last_load_writes <-
    (if Dts_isa.Instr.is_load instr && not trapped then
       List.filter_map
         (fun w ->
           match w with
           | Dts_isa.Semantics.W_phys (p, _) -> Some (Dts_isa.Storage.Int_reg p)
           | W_freg (f, _) -> Some (Dts_isa.Storage.Fp_reg f)
           | W_icc _ | W_win _ -> None)
         out.writes
     else []);
  t.retired_count <- t.retired_count + 1;
  {
    instr;
    addr = pc;
    cwp;
    next_pc = out.next_pc;
    taken = out.taken;
    mem = observed_mem;
    rwsets;
    trapped;
    cycles = !cycles;
    icache_stall;
    dcache_stall = !dcache_stall;
  }

(** Invalidate pipeline-local hazard tracking (used when the machine swaps
    engines — the pipeline is refilled, so stale hazards must not apply). *)
let reset_hazards t = t.last_load_writes <- []
