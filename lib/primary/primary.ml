(** The Primary Processor (§3.1).

    A simple four-stage (fetch, decode, execute, write-back) pipelined SRISC
    processor. It executes instructions sequentially — it is the engine that
    runs code the first time it is seen — and hands each completed
    instruction, together with what was observed while executing it, to the
    Scheduler Unit.

    Timing follows Table 1 of the paper:
    - one instruction completes per cycle in the absence of hazards;
    - there is no branch prediction hardware; {e not-taken} branches cause a
      3-cycle bubble;
    - an instruction that uses the result of the immediately preceding load
      causes a 1-cycle bubble;
    - instruction and data cache misses stall for their miss penalties.

    Two execution paths implement these semantics: the default {e fast
    path} runs packed {!Dts_isa.Uop} micro-ops through
    {!Dts_isa.Semantics.exec_into} (no allocation per instruction), and the
    {e reference path} keeps the boxed {!Dts_isa.Semantics.exec} outcomes.
    They are observationally identical — the fast-path differential suite
    compares them on every workload and fuzz reproducer. *)

type timing = {
  not_taken_branch_bubble : int;  (** Table 1: 3 *)
  load_use_bubble : int;  (** Table 1: 1 *)
  trap_service_cycles : int;  (** window spill/fill microroutine cost *)
  latencies : Dts_isa.Instr.latencies;
      (** execute-stage latencies; multicycle instructions occupy the
          execute stage for extra cycles *)
}

let default_timing =
  {
    not_taken_branch_bubble = 3;
    load_use_bubble = 1;
    trap_service_cycles = 20;
    latencies = Dts_isa.Instr.unit_latencies;
  }

(** One completed (retired) instruction with everything the Scheduler Unit
    needs to know about its execution. *)
type retired = {
  instr : Dts_isa.Instr.t;
  addr : int;  (** the instruction's PC *)
  cwp : int;  (** window pointer observed at execution (§3.9) *)
  next_pc : int;
  taken : bool;  (** direction of a control transfer (§3.5, §3.8) *)
  mem : (int * int) option;  (** observed effective address and size *)
  rwsets : Dts_isa.Storage.t list * Dts_isa.Storage.t list;
      (** observed (reads, writes) from {!Dts_isa.Rwsets.of_instr}, computed
          once at retirement with the executing state's window count, the
          observed window pointer and the observed effective address — the
          schedulers consume these instead of decoding the sets again.
          [([], [])] for a memory instruction with no observed access (a
          trapped occurrence; never handed to a scheduler). *)
  trapped : bool;  (** needed trap service — a non-schedulable occurrence *)
  cycles : int;  (** cycles this instruction consumed in the pipeline *)
  icache_stall : int;  (** of [cycles]: instruction-cache miss penalty *)
  dcache_stall : int;  (** of [cycles]: data-cache miss penalty *)
}

type t = {
  st : Dts_isa.State.t;
  icache : Dts_mem.Cache.t;
  dcache : Dts_mem.Cache.t;
  timing : timing;
  fastpath : bool;
  buf : Dts_isa.Semantics.outcome_buf;  (** fast-path outcome scratch *)
  mutable last_load_writes : Dts_isa.Storage.t list;
      (** reference path: destinations of the previous instruction if it
          was a load *)
  mutable last_load_p : int;
      (** fast path: physical integer destination of the previous
          instruction if it was an integer load, or -1 *)
  mutable last_load_f : int;  (** ... fp destination for [fload], or -1 *)
  mutable retired_count : int;
  mutable total_cycles : int;
      (** pipeline cycles consumed by every instruction retired so far *)
  (* scratch observations of the last fast-path step, consumed by [step]
     when it builds the retirement record *)
  mutable s_trapped : bool;
  mutable s_cycles : int;
  mutable s_icache_stall : int;
  mutable s_dcache_stall : int;
}

let create ?(timing = default_timing) ?(fastpath = true) ~icache ~dcache st =
  {
    st;
    icache;
    dcache;
    timing;
    fastpath;
    buf = Dts_isa.Semantics.make_buf ();
    last_load_writes = [];
    last_load_p = -1;
    last_load_f = -1;
    retired_count = 0;
    total_cycles = 0;
    s_trapped = false;
    s_cycles = 0;
    s_icache_stall = 0;
    s_dcache_stall = 0;
  }

let total_cycles t = t.total_cycles

exception Halted

(* Halt retires without touching the caches or the cycle budget: the final
   fetch is not replayed architecturally, so accruing its stall cycles
   while dropping the retirement record would make the cycle books and the
   cache stats disagree (the obs sum invariant). Both paths share this. *)
let retire_halt t =
  t.st.halted <- true;
  t.st.instret <- t.st.instret + 1;
  t.retired_count <- t.retired_count + 1;
  raise Halted

(* ------------------------------------------------------------------ *)
(* Reference path: boxed outcomes through Semantics.exec.             *)
(* ------------------------------------------------------------------ *)

let step_ref t : retired =
  let st = t.st in
  if st.halted then raise Halted;
  let pc = st.pc in
  let cwp = st.cwp in
  let instr = Dts_isa.Predecode.fetch st.predecode ~addr:pc in
  if instr = Dts_isa.Instr.Halt then retire_halt t;
  let cycles = ref 1 in
  let icache_stall = Dts_mem.Cache.access t.icache pc in
  let dcache_stall = ref 0 in
  cycles := !cycles + icache_stall;
  cycles := !cycles + Dts_isa.Instr.latency t.timing.latencies instr - 1;
  let out = Dts_isa.Semantics.exec st ~cwp ~pc instr in
  let trapped = out.trap <> None in
  let out =
    match out.trap with
    | None -> out
    | Some trap ->
      cycles := !cycles + t.timing.trap_service_cycles;
      Dts_isa.Semantics.service_and_exec st ~cwp ~pc instr trap
  in
  (* load-use bubble: this instruction reads the previous load's result *)
  let observed_mem =
    match (out.load, out.store) with
    | Some (a, s), _ -> Some (a, s)
    | None, Some (a, s, _) -> Some (a, s)
    | None, None -> None
  in
  (* the one rwsets decode of this retirement; reused by the hazard check
     below and by whichever scheduler receives the record *)
  let rwsets =
    if observed_mem = None && Dts_isa.Instr.is_mem instr then ([], [])
    else
      Dts_isa.Rwsets.of_instr ~nwindows:st.nwindows ~cwp ?mem:observed_mem
        instr
  in
  (if
     t.last_load_writes <> []
     && (observed_mem <> None || not (Dts_isa.Instr.is_mem instr))
   then
     let reads = fst rwsets in
     if Dts_isa.Storage.any_overlap reads t.last_load_writes then
       cycles := !cycles + t.timing.load_use_bubble);
  (* data cache access *)
  (match out.load with
  | Some (a, _) -> dcache_stall := !dcache_stall + Dts_mem.Cache.access t.dcache a
  | None -> ());
  (match out.store with
  | Some (a, _, _) ->
    dcache_stall := !dcache_stall + Dts_mem.Cache.access t.dcache a
  | None -> ());
  cycles := !cycles + !dcache_stall;
  (* not-taken branch bubble (Table 1) *)
  (match instr with
  | Dts_isa.Instr.Branch { cond; _ }
    when cond <> Dts_isa.Instr.A && not out.taken ->
    cycles := !cycles + t.timing.not_taken_branch_bubble
  | _ -> ());
  Dts_isa.Semantics.apply st out;
  t.last_load_writes <-
    (if Dts_isa.Instr.is_load instr && not trapped then
       List.filter_map
         (fun w ->
           match w with
           | Dts_isa.Semantics.W_phys (p, _) -> Some (Dts_isa.Storage.Int_reg p)
           | W_freg (f, _) -> Some (Dts_isa.Storage.Fp_reg f)
           | W_icc _ | W_win _ -> None)
         out.writes
     else []);
  t.retired_count <- t.retired_count + 1;
  t.total_cycles <- t.total_cycles + !cycles;
  {
    instr;
    addr = pc;
    cwp;
    next_pc = out.next_pc;
    taken = out.taken;
    mem = observed_mem;
    rwsets;
    trapped;
    cycles = !cycles;
    icache_stall;
    dcache_stall = !dcache_stall;
  }

(* ------------------------------------------------------------------ *)
(* Fast path: packed micro-ops into the preallocated outcome buffer.  *)
(* ------------------------------------------------------------------ *)

(* Does [u] read the destination of the previous instruction's load?
   Mirrors [Storage.any_overlap (fst rwsets) last_load_writes] for the only
   positions a load can write (one integer or one fp register): memory,
   flag and window reads can never overlap them. [-1] sentinels make the
   comparisons vacuously false when there is no previous load. *)
let reads_prev_load_dest t u ~cwp =
  let module U = Dts_isa.Uop in
  let st = t.st in
  let lp = t.last_load_p and lf = t.last_load_f in
  let rr r = r <> 0 && Dts_isa.State.phys_fast_of st ~cwp r = lp in
  let op2_hit () = (not (U.is_imm u)) && rr (U.rs2 u) in
  let opc = U.opcode u in
  if opc <= U.u_last_alu then rr (U.rs1 u) || op2_hit ()
  else if opc >= U.u_load && opc <= U.u_last_load then
    rr (U.rs1 u) || op2_hit ()
  else if opc >= U.u_store && opc <= U.u_last_store then
    rr (U.rd u) || rr (U.rs1 u) || op2_hit ()
  else if opc = U.u_jmpl || opc = U.u_save || opc = U.u_restore then
    rr (U.rs1 u) || op2_hit ()
  else if opc >= U.u_fpop && opc <= U.u_last_fpop then
    U.rs1 u = lf || U.rs2 u = lf
  else if opc = U.u_fload then rr (U.rs1 u) || op2_hit ()
  else if opc = U.u_fstore then U.rd u = lf || rr (U.rs1 u) || op2_hit ()
  else false (* sethi, branches, call, trap, nop read no register a load
                can write *)

(* One full fast-path step minus the retirement record: executes, accounts
   cycles into the scratch fields and [total_cycles], applies. [step] wraps
   it to build the record; [run] loops it for record-free execution. *)
let step_core t =
  let module U = Dts_isa.Uop in
  let st = t.st in
  if st.halted then raise Halted;
  let pc = st.pc in
  let cwp = st.cwp in
  let u = Dts_isa.Predecode.fetch_uop st.predecode ~addr:pc in
  let opc = U.opcode u in
  if opc = U.u_halt then retire_halt t;
  let icache_stall = Dts_mem.Cache.access t.icache pc in
  (* 1 base cycle + stall + (latency - 1) extra execute cycles *)
  let cycles = ref (icache_stall + U.latency t.timing.latencies u) in
  let b = t.buf in
  Dts_isa.Semantics.exec_into st ~cwp ~pc u b;
  let trapped = b.b_trap <> 0 in
  if trapped then begin
    cycles := !cycles + t.timing.trap_service_cycles;
    Dts_isa.Semantics.service_and_exec_into st ~cwp ~pc u b
  end;
  let observed = b.b_load_size <> 0 || b.b_store_size <> 0 in
  let is_mem =
    (opc >= U.u_load && opc <= U.u_last_store)
    || opc = U.u_fload || opc = U.u_fstore
  in
  (if
     (t.last_load_p >= 0 || t.last_load_f >= 0)
     && (observed || not is_mem)
     && reads_prev_load_dest t u ~cwp
   then cycles := !cycles + t.timing.load_use_bubble);
  let dcache_stall = ref 0 in
  if b.b_load_size <> 0 then
    dcache_stall := !dcache_stall + Dts_mem.Cache.access t.dcache b.b_load_addr;
  if b.b_store_size <> 0 then
    dcache_stall := !dcache_stall + Dts_mem.Cache.access t.dcache b.b_store_addr;
  cycles := !cycles + !dcache_stall;
  if
    opc > U.u_branch && opc <= U.u_last_branch && not b.b_taken
    (* [u_branch] itself is the always-taken cond A *)
  then cycles := !cycles + t.timing.not_taken_branch_bubble;
  (* track the load destination before apply moves the window pointer
     (loads never do, but the order keeps the invariant obvious) *)
  if (not trapped) && b.b_load_size <> 0 then
    if opc = U.u_fload then begin
      t.last_load_p <- -1;
      t.last_load_f <- U.rd u
    end
    else begin
      (* integer load: b_w0 already holds the physical destination *)
      t.last_load_p <- b.b_w0;
      t.last_load_f <- -1
    end
  else begin
    t.last_load_p <- -1;
    t.last_load_f <- -1
  end;
  Dts_isa.Semantics.apply_buf st b;
  t.retired_count <- t.retired_count + 1;
  t.total_cycles <- t.total_cycles + !cycles;
  t.s_trapped <- trapped;
  t.s_cycles <- !cycles;
  t.s_icache_stall <- icache_stall;
  t.s_dcache_stall <- !dcache_stall

let step_fast t : retired =
  let st = t.st in
  if st.halted then raise Halted;
  let pc = st.pc in
  let cwp = st.cwp in
  (* materialise the boxed decode before executing: a store over its own
     word (self-modifying code) invalidates the slot during the step *)
  let instr = Dts_isa.Predecode.instr_at st.predecode ~addr:pc in
  step_core t;
  let b = t.buf in
  let observed_mem =
    if b.b_load_size <> 0 then Some (b.b_load_addr, b.b_load_size)
    else if b.b_store_size <> 0 then Some (b.b_store_addr, b.b_store_size)
    else None
  in
  let rwsets =
    if observed_mem = None && Dts_isa.Instr.is_mem instr then ([], [])
    else
      Dts_isa.Rwsets.of_instr ~nwindows:st.nwindows ~cwp ?mem:observed_mem
        instr
  in
  {
    instr;
    addr = pc;
    cwp;
    next_pc = b.b_next_pc;
    taken = b.b_taken;
    mem = observed_mem;
    rwsets;
    trapped = t.s_trapped;
    cycles = t.s_cycles;
    icache_stall = t.s_icache_stall;
    dcache_stall = t.s_dcache_stall;
  }

(** Execute one instruction at the current PC and return its retirement
    record. Traps are serviced in place (and flagged). Raises {!Halted} when
    the program stops. *)
let step t : retired = if t.fastpath then step_fast t else step_ref t

(** Run to [Halt] (or for [max_instructions]) without building retirement
    records; returns the number of instructions retired by this call. On
    the fast path this executes allocation-free — the engine of choice for
    standalone Primary runs (the fuzzer's differential oracle, IPC
    baselines). Timing is accounted identically to {!step}
    (see {!total_cycles}). *)
let run ?(max_instructions = max_int) t =
  let st = t.st in
  let start = st.instret in
  (try
     if t.fastpath then
       while st.instret - start < max_instructions do
         step_core t
       done
     else
       while st.instret - start < max_instructions do
         ignore (step_ref t)
       done
   with Halted -> ());
  st.instret - start

(** Invalidate pipeline-local hazard tracking (used when the machine swaps
    engines — the pipeline is refilled, so stale hazards must not apply). *)
let reset_hazards t =
  t.last_load_writes <- [];
  t.last_load_p <- -1;
  t.last_load_f <- -1
