(** The Primary Processor (§3.1): the simple four-stage pipelined SRISC
    processor that executes code the first time it is seen and feeds the
    completed-instruction trace to the Scheduler Unit.

    Timing follows Table 1: one instruction per cycle plus a 3-cycle bubble
    for not-taken branches (no prediction hardware), a 1-cycle load-use
    bubble, cache miss penalties, multicycle execute latencies and trap
    service time. *)

type timing = {
  not_taken_branch_bubble : int;  (** Table 1: 3 *)
  load_use_bubble : int;  (** Table 1: 1 *)
  trap_service_cycles : int;  (** window spill/fill microroutine cost *)
  latencies : Dts_isa.Instr.latencies;
      (** execute-stage latencies of multicycle instructions *)
}

val default_timing : timing

(** One completed (retired) instruction together with everything the
    Scheduler Unit needs to know about its execution (§3.2, §3.9): the
    observed window pointer, control direction and effective address. *)
type retired = {
  instr : Dts_isa.Instr.t;
  addr : int;  (** the instruction's PC *)
  cwp : int;  (** window pointer observed at execution *)
  next_pc : int;
  taken : bool;  (** recorded direction of a control transfer *)
  mem : (int * int) option;  (** observed effective address and size *)
  rwsets : Dts_isa.Storage.t list * Dts_isa.Storage.t list;
      (** observed (reads, writes) from {!Dts_isa.Rwsets.of_instr}, computed
          once at retirement (with the executing state's window count, the
          observed window pointer and the observed effective address); the
          schedulers consume these instead of decoding the sets again.
          [([], [])] for a memory instruction with no observed access (a
          trapped occurrence — never handed to a scheduler). *)
  trapped : bool;  (** needed trap service — a non-schedulable occurrence *)
  cycles : int;  (** cycles this instruction consumed in the pipeline *)
  icache_stall : int;  (** of [cycles]: instruction-cache miss penalty *)
  dcache_stall : int;  (** of [cycles]: data-cache miss penalty *)
}

type t

val create :
  ?timing:timing ->
  ?fastpath:bool ->
  icache:Dts_mem.Cache.t ->
  dcache:Dts_mem.Cache.t ->
  Dts_isa.State.t ->
  t
(** A Primary Processor over a shared architectural state — the DTSVLIW's
    engines share the register file and data cache ports (§3.6).
    [fastpath] (default [true]) selects the allocation-free packed-op
    interpreter ({!Dts_isa.Semantics.exec_into}); [false] keeps the boxed
    {!Dts_isa.Semantics.exec} path, retained as the differential oracle.
    The two paths retire identical records. *)

exception Halted

val step : t -> retired
(** Execute one instruction at the current PC. Traps are serviced in place
    and flagged in the result. @raise Halted when the program stops.

    [Halt] retires (instruction count and retirement count move) without
    touching the instruction cache or consuming pipeline cycles: its fetch
    stall can appear in no retirement record, so charging it would break
    the cycles-equal-sum-of-attributions invariant. *)

val run : ?max_instructions:int -> t -> int
(** Run until [Halt] or the budget, skipping retirement-record
    construction; returns instructions retired by this call. On the fast
    path this allocates nothing per instruction. Timing accounting is
    identical to repeated {!step} (see {!total_cycles}). *)

val total_cycles : t -> int
(** Pipeline cycles consumed by every instruction retired so far (through
    {!step} or {!run}). *)

val reset_hazards : t -> unit
(** Forget pipeline-local hazard state; called when the machine swaps
    engines and the pipeline refills. *)
