(** The DIF machine of Nair & Hopkins [9], the baseline of the paper's
    Figure 9 (§3.12, §4.5).

    DIF replaces the DTSVLIW's FCFS list scheduler with a greedy
    resource-table scheduler, and its copy-based renaming with register
    instances (up to 4 per architectural register) read through a map table
    and committed by per-exit-point exit maps. The blocks it builds execute
    on the same {!Dts_vliw.Engine}, inside the same {!Dts_core.Machine}
    harness, with the same test-mode co-simulation. See the implementation
    header for the modelling choices (all conservative in DIF's favour). *)

type config = {
  width : int;
  height : int;
  nwindows : int;
  instances_per_reg : int;  (** 4 in [9] *)
  exit_map_bytes : int;  (** 19 bytes per exit point in [9] *)
  latencies : Dts_isa.Instr.latencies;
}

val default_config : config
(** Figure 9's 6x6 blocks, 4 instances per register, 19-byte exit maps. *)

type t = {
  cfg : config;
  mutable lis : Dts_sched.Schedtypes.li array;
  mutable n_lis : int;
  mutable max_li : int;
  avail : (Dts_isa.Storage.t, int) Hashtbl.t;
  imap : (Dts_isa.Storage.t, Dts_sched.Schedtypes.rref) Hashtbl.t;
  inst_count : (Dts_isa.Storage.t, int) Hashtbl.t;
  mutable mem_stores : (int * int * int) list;
  mutable last_store_li : int;
  mutable last_load_li : int;
  mutable last_branch_li : int;
  mutable first_addr : int option;
  mutable entry_cwp : int;
  mutable order_ctr : int;
  rr_ctr : int array;
  mutable uid_ctr : int;
  mutable exits : int;
  mutable blocks_built : int;  (** lifetime statistic *)
  mutable total_exits : int;  (** exit points across all blocks *)
  mutable cache_bytes : int;
      (** DIF-accounted bytes of all built blocks: decoded instructions plus
          19 bytes per exit point — the basis of the paper's 463KB-vs-216KB
          comparison *)
}

val create : config -> t

val insert : t -> Dts_primary.Primary.retired -> [ `Ok | `Full ]
(** Greedy placement of one completed instruction. [`Full] when it does not
    fit in the block (height exhausted or register instances exhausted). *)

val finish_block :
  t -> nba_addr:int -> Dts_sched.Schedtypes.block option
(** Emit the fall-through exit map and freeze the block. *)

val machine :
  ?cfg:config ->
  ?tracer:Dts_obs.Trace.t ->
  machine_cfg:Dts_core.Config.t ->
  Dts_asm.Program.t ->
  Dts_core.Machine.t * t
(** A complete DIF machine (shared Primary Processor, VLIW Engine, block
    cache and test-mode machinery) driven by the greedy scheduler; returns
    the machine and the scheduler for its statistics. [tracer] is forwarded
    to {!Dts_core.Machine.create}. *)

val fig9_machine_cfg : unit -> Dts_core.Config.t
(** Figure 9's comparison parameters: 6x6 blocks, 4KB instruction and data
    caches with 2-cycle misses, 512x2-block code cache. *)
