(** The DIF machine of Nair & Hopkins [9], the baseline of the paper's
    Figure 9 (§3.12, §4.5).

    DIF differs from the DTSVLIW in its scheduler and renaming model:

    - {b greedy scheduling}: a hardware table records the earliest long
      instruction in which each resource is available; an incoming
      instruction is placed in the earliest long instruction its inputs
      allow (no move-up pipeline, no candidate instructions);
    - {b register instances}: every destination is renamed to a fresh
      instance of its architectural register (up to 4 instances each, i.e.
      96 extra integer and 96 floating-point registers) and consumers read
      instances through a map table — modelled here as per-op source
      forwarding, which the shared VLIW Engine already supports;
    - {b exit maps}: each exit point (every branch, plus the block end)
      carries a map committing the live instances to the architectural
      registers; we materialise exit maps as tag-gated copy groups in
      auxiliary slots (they occupy no issue slot and no issue bandwidth,
      matching the map-table hardware), and account their 19 bytes per exit
      in the DIF cache size;
    - {b block-unit cache}: the DIF cache transfers whole blocks; the cache
      organisation (512 sets × 2 ways of 6x6 blocks in Figure 9) is the
      same {!Dts_mem.Blockcache} used for the VLIW Cache.

    Conservative modelling choice: the DIF paper does not describe its
    memory-aliasing recovery; we give DIF the same order-field detection and
    block-granularity checkpointing as the DTSVLIW (a strict upgrade, so the
    comparison cannot be biased in the DTSVLIW's favour by this part). *)

open Dts_sched.Schedtypes

type config = {
  width : int;
  height : int;
  nwindows : int;
  instances_per_reg : int;  (** 4 in [9] *)
  exit_map_bytes : int;  (** 19 bytes per exit point in [9] *)
  latencies : Dts_isa.Instr.latencies;
}

let default_config =
  {
    width = 6;
    height = 6;
    nwindows = 32;
    instances_per_reg = 4;
    exit_map_bytes = 19;
    latencies = Dts_isa.Instr.unit_latencies;
  }

type t = {
  cfg : config;
  mutable lis : li array;  (** up to [height]; slots = width + aux *)
  mutable n_lis : int;
  mutable max_li : int;  (** frontier: highest li index holding an op *)
  avail : (Dts_isa.Storage.t, int) Hashtbl.t;
      (** earliest li at which a position's current value can be read *)
  imap : (Dts_isa.Storage.t, rref) Hashtbl.t;  (** current instance map *)
  inst_count : (Dts_isa.Storage.t, int) Hashtbl.t;
  mutable mem_stores : (int * int * int) list;  (** addr, size, li *)
  mutable last_store_li : int;
  mutable last_load_li : int;
  mutable last_branch_li : int;
  mutable first_addr : int option;
  mutable entry_cwp : int;
  mutable order_ctr : int;
  rr_ctr : int array;
  mutable uid_ctr : int;
  mutable exits : int;  (** exit points of the current block *)
  (* lifetime stats *)
  mutable blocks_built : int;
  mutable total_exits : int;
  mutable cache_bytes : int;  (** DIF-accounted bytes of all built blocks *)
}

let create cfg =
  {
    cfg;
    lis = [||];
    n_lis = 0;
    max_li = 0;
    avail = Hashtbl.create 64;
    imap = Hashtbl.create 64;
    inst_count = Hashtbl.create 64;
    mem_stores = [];
    last_store_li = -1;
    last_load_li = -1;
    last_branch_li = -1;
    first_addr = None;
    entry_cwp = 0;
    order_ctr = 0;
    rr_ctr = Array.make 4 0;
    uid_ctr = 0;
    exits = 0;
    blocks_built = 0;
    total_exits = 0;
    cache_bytes = 0;
  }

let aux_slots cfg = cfg.width * cfg.height

let reset_block t =
  t.lis <- [||];
  t.n_lis <- 0;
  t.max_li <- 0;
  Hashtbl.reset t.avail;
  Hashtbl.reset t.imap;
  Hashtbl.reset t.inst_count;
  t.mem_stores <- [];
  t.last_store_li <- -1;
  t.last_load_li <- -1;
  t.last_branch_li <- -1;
  t.first_addr <- None;
  t.order_ctr <- 0;
  Array.fill t.rr_ctr 0 4 0;
  t.exits <- 0

let li_at t i =
  while t.n_lis <= i do
    let li = li_create (t.cfg.width + aux_slots t.cfg) in
    t.lis <- Array.append t.lis [| li |];
    t.n_lis <- t.n_lis + 1
  done;
  t.lis.(i)

let rr_kind_of : Dts_isa.Storage.t -> rr_kind option = function
  | Int_reg _ -> Some K_int
  | Fp_reg _ -> Some K_fp
  | Flags -> Some K_flag
  | Win | Mem _ | Ren _ -> None

let alloc_rr t kind =
  let i = rr_kind_index kind in
  let idx = t.rr_ctr.(i) in
  t.rr_ctr.(i) <- idx + 1;
  { kind; ridx = idx }

(* a free issue slot (index < width) in li [i] for FU class [fu];
   homogeneous units as in [9]'s "four homogeneous units + 2 branch" — we
   treat branch ops as needing one of the last two issue slots *)
let find_issue_slot t li (fu : Dts_isa.Instr.fu_class) =
  let width = t.cfg.width in
  let lo, hi =
    match fu with
    | Dts_isa.Instr.Fu_br -> (max 0 (width - 2), width - 1)
    | Fu_int | Fu_mem | Fu_fp -> (0, max 0 (width - 3))
  in
  let rec go k =
    if k > hi then None else if li.slots.(k) = None then Some k else go (k + 1)
  in
  go lo

let find_aux_slot t li =
  let rec go k =
    if k >= Array.length li.slots then
      invalid_arg "Dif: out of auxiliary exit-map slots"
    else if li.slots.(k) = None then k
    else go (k + 1)
  in
  go t.cfg.width

(* materialise the current instance map as a tag-gated commit group *)
let emit_exit_map t li tag =
  let moves =
    Hashtbl.fold (fun pos rr acc -> (rr, T_arch pos) :: acc) t.imap []
  in
  if moves <> [] then begin
    let k = find_aux_slot t li in
    li_fill li k (Copy { c_moves = moves; c_order = -1; c_from = 0 }, tag)
  end;
  t.exits <- t.exits + 1

(** Place one retired instruction greedily. [`Full] when it does not fit in
    the block. *)
let insert t (r : Dts_primary.Primary.retired) =
  let cfg = t.cfg in
  if t.first_addr = None then begin
    t.first_addr <- Some r.addr;
    t.entry_cwp <- r.cwp
  end;
  (* read/write sets decoded once by the Primary at retirement *)
  let arch_reads, arch_writes = r.rwsets in
  (* instance exhaustion ends the block (2 extra specifier bits in [9]) *)
  if
    List.exists
      (fun w ->
        match rr_kind_of w with
        | Some _ ->
          (match Hashtbl.find_opt t.inst_count w with Some n -> n | None -> 0)
          >= cfg.instances_per_reg
        | None -> false)
      arch_writes
  then `Full
  else begin
    (* source forwarding through the map table *)
    let subs = ref [] in
    let reads =
      List.map
        (fun p ->
          match Hashtbl.find_opt t.imap p with
          | Some rr ->
            subs := (p, rr) :: !subs;
            storage_of_rref rr
          | None -> p)
        arch_reads
    in
    (* earliest li by dependences *)
    let dep = ref 0 in
    List.iter
      (fun p ->
        match Hashtbl.find_opt t.avail p with
        | Some li -> dep := max !dep li
        | None -> ())
      reads;
    (* loads wait for overlapping earlier stores *)
    (match r.mem with
    | Some (a, sz) when Dts_isa.Instr.is_load r.instr ->
      List.iter
        (fun (sa, ssz, sli) ->
          if a < sa + ssz && sa < a + sz then dep := max !dep (sli + 1))
        t.mem_stores
    | _ -> ());
    let is_branch = Dts_isa.Instr.is_conditional_ctrl r.instr in
    (* frontier rules: branches wait for every prior op (their exit map must
       be complete); architectural commits (stores, save/restore) must not
       float above an unresolved branch, and stores keep memory order *)
    if is_branch then dep := max !dep t.max_li;
    if Dts_isa.Instr.is_store r.instr then
      dep :=
        max !dep
          (max (t.last_store_li + 1) (max t.last_load_li t.last_branch_li));
    (match r.instr with
    | Dts_isa.Instr.Save _ | Restore _ -> dep := max !dep t.last_branch_li
    | _ -> ());
    (* find a long instruction with a free issue slot *)
    let fu = Dts_isa.Instr.fu_class r.instr in
    let rec place i =
      if i >= cfg.height then None
      else
        let li = li_at t i in
        match find_issue_slot t li fu with
        | Some k -> Some (i, li, k)
        | None -> place (i + 1)
    in
    match place !dep with
    | None -> `Full
    | Some (i, li, k) ->
      t.uid_ctr <- t.uid_ctr + 1;
      let is_mem = Dts_isa.Instr.is_mem r.instr in
      let order =
        if is_mem then begin
          let o = t.order_ctr in
          t.order_ctr <- o + 1;
          o
        end
        else -1
      in
      (* rename destinations to fresh instances *)
      let redirect =
        List.filter_map
          (fun w ->
            match rr_kind_of w with
            | Some kind ->
              let rr = alloc_rr t kind in
              Hashtbl.replace t.imap w rr;
              Hashtbl.replace t.inst_count w
                (1
                +
                match Hashtbl.find_opt t.inst_count w with
                | Some n -> n
                | None -> 0);
              Some (w, rr)
            | None -> None)
          arch_writes
      in
      let sop =
        {
          uid = t.uid_ctr;
          instr = r.instr;
          addr = r.addr;
          cwp = r.cwp;
          reads;
          arch_writes;
          obs_taken = r.taken;
          obs_next_pc = r.next_pc;
          obs_mem = r.mem;
          order;
          cross = is_mem;
          redirect;
          subs = !subs;
          fu;
        }
      in
      let tag = li_cur_tag li in
      li_fill li k (Op sop, tag);
      t.max_li <- max t.max_li i;
      (* availability of the results: [latency] long instructions later *)
      let lat = Dts_isa.Instr.latency cfg.latencies r.instr in
      List.iter
        (fun w ->
          Hashtbl.replace t.avail w (i + lat);
          match List.assoc_opt w redirect with
          | Some rr -> Hashtbl.replace t.avail (storage_of_rref rr) (i + lat)
          | None -> ())
        arch_writes;
      if is_branch then begin
        emit_exit_map t li tag;
        li.n_branches <- li.n_branches + 1;
        t.last_branch_li <- max t.last_branch_li i
      end;
      if Dts_isa.Instr.is_store r.instr then begin
        t.last_store_li <- max t.last_store_li i;
        match r.mem with
        | Some (a, sz) -> t.mem_stores <- (a, sz, i) :: t.mem_stores
        | None -> ()
      end;
      if Dts_isa.Instr.is_load r.instr then
        t.last_load_li <- max t.last_load_li i;
      `Ok
  end

(** Finish the block: emit the fall-through exit map and freeze. *)
let finish_block t ~nba_addr =
  if t.first_addr = None then None
  else begin
    let last = max 0 t.max_li in
    let li = li_at t last in
    emit_exit_map t li (li_cur_tag li);
    let lis = Array.sub t.lis 0 (t.max_li + 1) in
    let n_slots_filled =
      Array.fold_left
        (fun a li ->
          a
          + li_fold
              (fun n _ op _ -> match op with Op _ -> n + 1 | Copy _ -> n)
              0 li)
        0 lis
    in
    let max_li_ops = Array.fold_left (fun a li -> max a (li_count li)) 0 lis in
    let block =
      {
        tag_addr = Option.get t.first_addr;
        entry_cwp = t.entry_cwp;
        lis;
        nba_addr;
        nba_idx = Array.length lis - 1;
        rr_counts = Array.copy t.rr_ctr;
        n_slots_filled;
        n_copies = 0;
        max_li_ops;
      }
    in
    t.blocks_built <- t.blocks_built + 1;
    t.total_exits <- t.total_exits + t.exits;
    t.cache_bytes <-
      t.cache_bytes
      + (t.cfg.width * t.cfg.height * Dts_isa.Instr.decoded_bytes)
      + (t.exits * t.cfg.exit_map_bytes);
    reset_block t;
    Some block
  end

(** A DIF machine: the shared Primary Processor, VLIW Engine, block cache
    and test-mode machinery of {!Dts_core.Machine}, driven by the greedy DIF
    scheduler. Returns the machine and an accessor for DIF-specific
    statistics. *)
let machine ?(cfg = default_config) ?tracer ~machine_cfg program =
  let sched = ref None in
  let m =
    Dts_core.Machine.create ?tracer
      ~scheduler:(fun () ->
        let u = create cfg in
        sched := Some u;
        {
          Dts_core.Machine.s_tick = (fun () -> ());
          s_insert = (fun r -> insert u r);
          s_finish = (fun ~nba_addr -> finish_block u ~nba_addr);
        })
      machine_cfg program
  in
  (m, Option.get !sched)

(** Machine configuration for the Figure 9 comparison: 6x6 blocks, 4KB
    instruction and data caches with 2-cycle miss penalties, 512x2-block
    code cache. *)
let fig9_machine_cfg () =
  let base = Dts_core.Config.ideal ~width:6 ~height:6 () in
  {
    base with
    icache = Dts_core.Config.Sized { kb = 4; line = 128; assoc = 2; penalty = 2 };
    dcache = Sized { kb = 4; line = 32; assoc = 1; penalty = 2 };
    (* 512 sets x 2 ways of 6x6 blocks = 216KB of decoded instructions *)
    vliw_cache = { kb = 216; assoc = 2 };
    next_li_penalty = 0;
  }
