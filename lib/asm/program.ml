(** Executable images produced by the assembler (and by the tinyc code
    generator, which emits assembly source). *)

type t = {
  entry : int;  (** initial PC *)
  text : (int * Dts_isa.Instr.t) array;  (** address, instruction *)
  data : (int * string) list;  (** address, raw initialised bytes *)
  symbols : (string * int) list;  (** label -> address *)
}

let text_size t = Array.length t.text * Dts_isa.Instr.bytes

(** Encode the text section and copy the data sections into [mem]. *)
let load t mem =
  Array.iter
    (fun (addr, instr) ->
      Dts_mem.Memory.write_u32 mem addr (Dts_isa.Encode.encode ~pc:addr instr))
    t.text;
  List.iter (fun (addr, bytes) -> Dts_mem.Memory.load_bytes mem ~addr bytes) t.data

(** A fresh machine state with the program loaded, the PC at the entry point
    and the stack pointer initialised. *)
let boot ?(nwindows = 32) t =
  let st = Dts_isa.State.create ~nwindows () in
  load t st.mem;
  st.pc <- t.entry;
  (* %sp = visible register 14 *)
  Dts_isa.State.set_reg st ~cwp:st.cwp 14 Dts_isa.Layout.stack_top;
  st

let symbol t name =
  match List.assoc_opt name t.symbols with
  | Some a -> a
  | None -> invalid_arg ("Program.symbol: unknown symbol " ^ name)

let pp fmt t =
  Array.iter
    (fun (addr, instr) ->
      Format.fprintf fmt "%#08x  %s@." addr (Dts_isa.Disasm.to_string instr))
    t.text
