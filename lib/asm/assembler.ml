(** Two-pass SRISC assembler.

    Syntax is SPARC-flavoured, line oriented:
    {v
            .text
    start:  set    4096, %o0          ! pseudo: sethi+or as needed
    loop:   ld     [%o0+4], %o2
            subcc  %o2, 1, %o2
            bne    loop
            st     %o2, [%o0]
            call   func
            ret                       ! jmpl [%i7+4], %g0
            halt
            .data
    arr:    .word  1, 2, label
    buf:    .space 400
    v}

    Comments start with [!], [;] or [#]. Pseudo-instructions: [set], [mov],
    [cmp], [clr], [ret], [b<cond>] aliases, [inc], [dec]. The [hi()] / [lo()]
    operators split a 32-bit constant or label for [sethi]/[or] pairs. *)

exception Error of { line : int; msg : string }

let error line fmt = Printf.ksprintf (fun msg -> raise (Error { line; msg })) fmt

(* ------------------------------------------------------------------ *)
(* Parsed form                                                         *)
(* ------------------------------------------------------------------ *)

type expr =
  | Num of int
  | Sym of string
  | Hi of expr  (** top 22 bits, for sethi *)
  | Lo of expr  (** low 10 bits *)

type arg =
  | A_reg of int
  | A_freg of int
  | A_expr of expr
  | A_mem of int * expr_or_reg  (** [rs1 + off] *)

and expr_or_reg = Eor_reg of int | Eor_expr of expr

type item =
  | I_instr of string * arg list  (** mnemonic, args *)
  | I_directive of string * string list
  | I_label of string

type line = { num : int; items : item list }

(* ------------------------------------------------------------------ *)
(* Lexing / parsing                                                    *)
(* ------------------------------------------------------------------ *)

let strip_comment s =
  let cut = ref (String.length s) in
  String.iteri
    (fun i c ->
      if (c = '!' || c = ';' || c = '#') && i < !cut then cut := i)
    s;
  String.sub s 0 !cut

let is_space c = c = ' ' || c = '\t' || c = '\r'

let trim = String.trim

let reg_of_name ln name =
  let name = String.lowercase_ascii name in
  let num_after prefix =
    let l = String.length prefix in
    if String.length name > l && String.sub name 0 l = prefix then
      int_of_string_opt (String.sub name l (String.length name - l))
    else None
  in
  match name with
  | "sp" -> Some 14
  | "fp" -> Some 30
  | _ -> (
    match num_after "g" with
    | Some n when n < 8 -> Some n
    | Some _ -> error ln "bad global register %%%s" name
    | None -> (
      match num_after "o" with
      | Some n when n < 8 -> Some (8 + n)
      | Some _ -> error ln "bad out register %%%s" name
      | None -> (
        match num_after "l" with
        | Some n when n < 8 -> Some (16 + n)
        | Some _ -> error ln "bad local register %%%s" name
        | None -> (
          match num_after "i" with
          | Some n when n < 8 -> Some (24 + n)
          | Some _ -> error ln "bad in register %%%s" name
          | None -> (
            match num_after "r" with
            | Some n when n < 32 -> Some n
            | Some _ -> error ln "bad register %%%s" name
            | None -> None)))))

let freg_of_name name =
  let name = String.lowercase_ascii name in
  if String.length name > 1 && name.[0] = 'f' then
    match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
    | Some n when n >= 0 && n < 32 -> Some n
    | _ -> None
  else None

let parse_num s = int_of_string_opt s (* handles 0x..., negatives *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let rec parse_expr ln s =
  let s = trim s in
  let with_fn fn inner =
    let e = parse_expr ln inner in
    match fn with "hi" -> Hi e | "lo" -> Lo e | _ -> error ln "unknown operator %s()" fn
  in
  if String.length s > 3 && String.length s > 0 && String.contains s '(' then begin
    let p = String.index s '(' in
    let fn = trim (String.sub s 0 p) in
    if String.length s = 0 || s.[String.length s - 1] <> ')' then
      error ln "missing ')' in %s" s;
    with_fn
      (String.lowercase_ascii fn)
      (String.sub s (p + 1) (String.length s - p - 2))
  end
  else
    match parse_num s with
    | Some n -> Num n
    | None ->
      if s = "" then error ln "empty expression";
      String.iter
        (fun c -> if not (is_ident_char c) then error ln "bad expression %S" s)
        s;
      Sym s

let parse_mem ln s =
  (* s is the inside of [...] : "%reg", "%reg+expr", "%reg-num", "%reg+%reg" *)
  let s = trim s in
  if String.length s = 0 || s.[0] <> '%' then
    error ln "memory operand must start with a register: [%s]" s;
  (* find + or - after the register name *)
  let len = String.length s in
  let rec split i =
    if i >= len then (s, None)
    else if s.[i] = '+' then
      (String.sub s 0 i, Some (trim (String.sub s (i + 1) (len - i - 1))))
    else if s.[i] = '-' then (String.sub s 0 i, Some (trim (String.sub s i (len - i))))
    else split (i + 1)
  in
  let base, rest = split 1 in
  let base = trim base in
  let r =
    match reg_of_name ln (String.sub base 1 (String.length base - 1)) with
    | Some r -> r
    | None -> error ln "bad base register %s" base
  in
  match rest with
  | None -> A_mem (r, Eor_expr (Num 0))
  | Some rhs ->
    if String.length rhs > 0 && rhs.[0] = '%' then
      match reg_of_name ln (String.sub rhs 1 (String.length rhs - 1)) with
      | Some r2 -> A_mem (r, Eor_reg r2)
      | None -> error ln "bad index register %s" rhs
    else A_mem (r, Eor_expr (parse_expr ln rhs))

let parse_arg ln s =
  let s = trim s in
  if s = "" then error ln "empty operand";
  if s.[0] = '[' then begin
    if s.[String.length s - 1] <> ']' then error ln "missing ']' in %s" s;
    parse_mem ln (String.sub s 1 (String.length s - 2))
  end
  else if s.[0] = '%' then begin
    let name = String.sub s 1 (String.length s - 1) in
    match reg_of_name ln name with
    | Some r -> A_reg r
    | None -> (
      match freg_of_name name with
      | Some f -> A_freg f
      | None -> error ln "unknown register %s" s)
  end
  else A_expr (parse_expr ln s)

(* split on commas at depth 0 of () and [] *)
let split_args s =
  let out = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' | '[' ->
        incr depth;
        Buffer.add_char buf c
      | ')' | ']' ->
        decr depth;
        Buffer.add_char buf c
      | ',' when !depth = 0 ->
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      | _ -> Buffer.add_char buf c)
    s;
  if trim (Buffer.contents buf) <> "" || !out <> [] then
    out := Buffer.contents buf :: !out;
  List.rev_map trim !out

let parse_line num raw =
  let s = trim (strip_comment raw) in
  if s = "" then { num; items = [] }
  else begin
    let items = ref [] in
    (* labels: ident: prefix, possibly several *)
    let rec strip_labels s =
      match String.index_opt s ':' with
      | Some p
        when p > 0
             && String.for_all is_ident_char (String.sub s 0 p)
             && not (String.length s > 0 && s.[0] >= '0' && s.[0] <= '9') ->
        items := I_label (String.sub s 0 p) :: !items;
        strip_labels (trim (String.sub s (p + 1) (String.length s - p - 1)))
      | _ -> s
    in
    let s = strip_labels s in
    if s <> "" then begin
      let p = ref 0 in
      while !p < String.length s && not (is_space s.[!p]) do
        incr p
      done;
      let head = String.lowercase_ascii (String.sub s 0 !p) in
      let rest = trim (String.sub s !p (String.length s - !p)) in
      if String.length head > 0 && head.[0] = '.' then
        items := I_directive (head, split_args rest) :: !items
      else
        items :=
          I_instr (head, List.map (parse_arg num) (split_args rest)) :: !items
    end;
    { num; items = List.rev !items }
  end

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

type section = Text | Data

(* A pre-instruction: mnemonic applied once operands and layout are known.
   [width] is its size in instructions (pseudos may expand). *)
type pending = {
  ln : int;
  mnemonic : string;
  args : arg list;
  addr : int;
  width : int;
}

let branch_conds =
  [
    ("ba", Dts_isa.Instr.A);
    ("be", E);
    ("bz", E);
    ("bne", NE);
    ("bnz", NE);
    ("bl", L);
    ("ble", LE);
    ("bg", G);
    ("bge", GE);
    ("blu", LU);
    ("bcs", LU);
    ("bleu", LEU);
    ("bgu", GU);
    ("bgeu", GEU);
    ("bcc", GEU);
    ("bneg", Neg);
    ("bpos", Pos);
  ]

let alu_mnemonics =
  [
    ("add", Dts_isa.Instr.Add);
    ("sub", Sub);
    ("and", And);
    ("andn", Andn);
    ("or", Or);
    ("orn", Orn);
    ("xor", Xor);
    ("xnor", Xnor);
    ("sll", Sll);
    ("srl", Srl);
    ("sra", Sra);
    ("smul", Smul);
    ("umul", Umul);
    ("sdiv", Sdiv);
    ("udiv", Udiv);
  ]

let fpu_mnemonics =
  [
    ("fadd", Dts_isa.Instr.Fadd);
    ("fsub", Fsub);
    ("fmul", Fmul);
    ("fdiv", Fdiv);
    ("fitos", Fitos);
    ("fstoi", Fstoi);
  ]

let lsize_mnemonics =
  [
    ("ldsb", Dts_isa.Instr.Lsb);
    ("ldub", Lub);
    ("ldsh", Lsh);
    ("lduh", Luh);
    ("ld", Lw);
    ("ldw", Lw);
  ]

let ssize_mnemonics =
  [ ("stb", Dts_isa.Instr.Sb); ("sth", Sh); ("st", Sw); ("stw", Sw) ]

let fits_simm12 v = v >= -2048 && v < 2048

(* instruction-count width of a mnemonic before symbol resolution *)
let width_of ln mnemonic args =
  match mnemonic with
  | "set" -> (
    match args with
    | [ A_expr (Num n); A_reg _ ] -> if fits_simm12 n then 1 else 2
    | [ A_expr _; A_reg _ ] -> 2 (* symbols conservatively take sethi+or *)
    | _ -> error ln "set expects: set value, %%reg")
  | "nop" | "halt" | "ret" | "retl" -> 1
  | _ -> 1

let eval_expr ln symbols e =
  let rec go = function
    | Num n -> n
    | Sym s -> (
      match Hashtbl.find_opt symbols s with
      | Some v -> v
      | None -> error ln "undefined symbol %s" s)
    | Hi e -> (go e lsr 10) land 0x3FFFFF
    | Lo e -> go e land 0x3FF
  in
  go e

let operand_of ln symbols = function
  | A_reg r -> Dts_isa.Instr.Reg r
  | A_expr e ->
    let v = eval_expr ln symbols e in
    if not (fits_simm12 v) then
      error ln "immediate %d does not fit in simm12 (use set)" v;
    Dts_isa.Instr.Imm v
  | A_freg _ | A_mem _ -> error ln "bad operand (expected register or immediate)"

let mem_operand ln symbols = function
  | A_mem (r, Eor_reg r2) -> (r, Dts_isa.Instr.Reg r2)
  | A_mem (r, Eor_expr e) ->
    let v = eval_expr ln symbols e in
    if not (fits_simm12 v) then error ln "memory offset %d does not fit" v;
    (r, Dts_isa.Instr.Imm v)
  | A_reg _ | A_freg _ | A_expr _ -> error ln "expected memory operand [..]"

(* Emit the instruction(s) for one pending entry. *)
let emit ln symbols p : Dts_isa.Instr.t list =
  let open Dts_isa.Instr in
  let m = p.mnemonic and args = p.args in
  let strip_cc m =
    if String.length m > 2 && String.sub m (String.length m - 2) 2 = "cc" then
      Some (String.sub m 0 (String.length m - 2))
    else None
  in
  let freg = function A_freg f -> f | _ -> error ln "expected %%f register" in
  let value e = eval_expr ln symbols e in
  match (m, args) with
  | "nop", [] -> [ Nop ]
  | "halt", [] -> [ Halt ]
  | "trap", [ A_expr e ] -> [ Trap (value e) ]
  | "ret", [] -> [ Jmpl { rs1 = 31; op2 = Imm 4; rd = 0 } ]
  | "retl", [] -> [ Jmpl { rs1 = 15; op2 = Imm 4; rd = 0 } ]
  | "jmpl", [ a; A_reg rd ] ->
    let rs1, op2 = mem_operand ln symbols a in
    [ Jmpl { rs1; op2; rd } ]
  | "call", [ A_expr e ] -> [ Call { target = value e } ]
  | "sethi", [ A_expr e; A_reg rd ] ->
    let v = value e in
    if v < 0 || v > 0x3FFFFF then error ln "sethi immediate out of range";
    [ Sethi { imm = v; rd } ]
  | "save", [ A_reg rs1; op2; A_reg rd ] ->
    [ Save { rs1; op2 = operand_of ln symbols op2; rd } ]
  | "restore", [] -> [ Restore { rs1 = 0; op2 = Imm 0; rd = 0 } ]
  | "restore", [ A_reg rs1; op2; A_reg rd ] ->
    [ Restore { rs1; op2 = operand_of ln symbols op2; rd } ]
  | "mov", [ src; A_reg rd ] ->
    [ Alu { op = Or; cc = false; rs1 = 0; op2 = operand_of ln symbols src; rd } ]
  | "clr", [ A_reg rd ] ->
    [ Alu { op = Or; cc = false; rs1 = 0; op2 = Imm 0; rd } ]
  | "cmp", [ A_reg rs1; op2 ] ->
    [ Alu { op = Sub; cc = true; rs1; op2 = operand_of ln symbols op2; rd = 0 } ]
  | "tst", [ A_reg rs1 ] ->
    [ Alu { op = Or; cc = true; rs1; op2 = Imm 0; rd = 0 } ]
  | "inc", [ A_reg rd ] ->
    [ Alu { op = Add; cc = false; rs1 = rd; op2 = Imm 1; rd } ]
  | "dec", [ A_reg rd ] ->
    [ Alu { op = Sub; cc = false; rs1 = rd; op2 = Imm 1; rd } ]
  | "set", [ A_expr e; A_reg rd ] ->
    let v = value e in
    if p.width = 1 then [ Alu { op = Or; cc = false; rs1 = 0; op2 = Imm v; rd } ]
    else
      [
        Sethi { imm = (v lsr 10) land 0x3FFFFF; rd };
        Alu { op = Or; cc = false; rs1 = rd; op2 = Imm (v land 0x3FF); rd };
      ]
  | "ldf", [ a; A_freg rd ] ->
    let rs1, op2 = mem_operand ln symbols a in
    [ Fload { rs1; op2; rd } ]
  | "stf", [ A_freg rd; a ] ->
    let rs1, op2 = mem_operand ln symbols a in
    [ Fstore { rd; rs1; op2 } ]
  | _, _ -> (
    match List.assoc_opt m branch_conds with
    | Some cond -> (
      match args with
      | [ A_expr e ] -> [ Branch { cond; target = value e } ]
      | _ -> error ln "branch expects a label")
    | None -> (
      match List.assoc_opt m lsize_mnemonics with
      | Some size -> (
        match args with
        | [ a; A_reg rd ] ->
          let rs1, op2 = mem_operand ln symbols a in
          [ Load { size; rs1; op2; rd } ]
        | _ -> error ln "load expects: %s [mem], %%rd" m)
      | None -> (
        match List.assoc_opt m ssize_mnemonics with
        | Some size -> (
          match args with
          | [ A_reg rs; a ] ->
            let rs1, op2 = mem_operand ln symbols a in
            [ Store { size; rs; rs1; op2 } ]
          | _ -> error ln "store expects: %s %%rs, [mem]" m)
        | None -> (
          match List.assoc_opt m fpu_mnemonics with
          | Some op -> (
            match args with
            | [ a; b; c ] -> [ Fpop { op; rs1 = freg a; rs2 = freg b; rd = freg c } ]
            | [ a; c ] -> [ Fpop { op; rs1 = freg a; rs2 = 0; rd = freg c } ]
            | _ -> error ln "fp op expects 2-3 %%f registers")
          | None -> (
            let base, cc =
              match strip_cc m with Some b -> (b, true) | None -> (m, false)
            in
            match List.assoc_opt base alu_mnemonics with
            | Some op -> (
              match args with
              | [ A_reg rs1; op2; A_reg rd ] ->
                [ Alu { op; cc; rs1; op2 = operand_of ln symbols op2; rd } ]
              | _ -> error ln "%s expects: %s %%rs1, op2, %%rd" m m)
            | None -> error ln "unknown mnemonic %s" m)))))

(** Assemble a source string into a {!Program.t}. *)
let assemble ?(text_base = Dts_isa.Layout.text_base)
    ?(data_base = Dts_isa.Layout.data_base) ?entry src =
  let lines =
    String.split_on_char '\n' src |> List.mapi (fun i l -> parse_line (i + 1) l)
  in
  let symbols : (string, int) Hashtbl.t = Hashtbl.create 64 in
  (* pass 1: layout *)
  let text_pc = ref text_base and data_pc = ref data_base in
  let section = ref Text in
  let pendings = ref [] (* reversed *) in
  let datas = ref [] (* (addr, bytes-as-(fill|word expr)) reversed *) in
  let pc () = match !section with Text -> text_pc | Data -> data_pc in
  List.iter
    (fun { num = ln; items } ->
      List.iter
        (fun item ->
          match item with
          | I_label name ->
            if Hashtbl.mem symbols name then error ln "duplicate label %s" name;
            Hashtbl.replace symbols name !(pc ())
          | I_directive (".text", _) -> section := Text
          | I_directive (".data", _) -> section := Data
          | I_directive (".org", [ v ]) -> (
            match parse_num (trim v) with
            | Some n -> (pc ()) := n
            | None -> error ln ".org expects a number")
          | I_directive (".align", [ v ]) -> (
            match parse_num (trim v) with
            | Some n ->
              let p = pc () in
              p := (!p + n - 1) / n * n
            | None -> error ln ".align expects a number")
          | I_directive (".word", vs) ->
            if !section <> Data then error ln ".word only in .data";
            datas := (`Words (!data_pc, ln, List.map (parse_expr ln) vs)) :: !datas;
            data_pc := !data_pc + (4 * List.length vs)
          | I_directive (".half", vs) ->
            if !section <> Data then error ln ".half only in .data";
            datas := (`Halves (!data_pc, ln, List.map (parse_expr ln) vs)) :: !datas;
            data_pc := !data_pc + (2 * List.length vs)
          | I_directive (".byte", vs) ->
            if !section <> Data then error ln ".byte only in .data";
            datas := (`Bytes (!data_pc, ln, List.map (parse_expr ln) vs)) :: !datas;
            data_pc := !data_pc + List.length vs
          | I_directive (".space", [ v ]) -> (
            match parse_num (trim v) with
            | Some n -> data_pc := !data_pc + n
            | None -> error ln ".space expects a number")
          | I_directive (".global", _) | I_directive (".globl", _) -> ()
          | I_directive (d, _) -> error ln "unknown directive %s" d
          | I_instr (mnemonic, args) ->
            if !section <> Text then error ln "instruction outside .text";
            let width = width_of ln mnemonic args in
            pendings :=
              { ln; mnemonic; args; addr = !text_pc; width } :: !pendings;
            text_pc := !text_pc + (width * Dts_isa.Instr.bytes))
        items)
    lines;
  (* pass 2: emit *)
  let text = ref [] in
  List.iter
    (fun p ->
      let instrs = emit p.ln symbols p in
      if List.length instrs <> p.width then
        error p.ln "internal: width mismatch for %s" p.mnemonic;
      List.iteri
        (fun k i -> text := (p.addr + (k * Dts_isa.Instr.bytes), i) :: !text)
        instrs)
    (List.rev !pendings);
  let buf_of_values ln values ~size =
    let b = Buffer.create (List.length values * size) in
    List.iter
      (fun e ->
        let v = eval_expr ln symbols e in
        for k = size - 1 downto 0 do
          Buffer.add_char b (Char.chr ((v lsr (k * 8)) land 0xFF))
        done)
      values;
    Buffer.contents b
  in
  let data =
    List.rev_map
      (function
        | `Words (addr, ln, vs) -> (addr, buf_of_values ln vs ~size:4)
        | `Halves (addr, ln, vs) -> (addr, buf_of_values ln vs ~size:2)
        | `Bytes (addr, ln, vs) -> (addr, buf_of_values ln vs ~size:1))
      !datas
  in
  let entry_addr =
    match entry with
    | Some name -> (
      match Hashtbl.find_opt symbols name with
      | Some a -> a
      | None -> error 0 "entry symbol %s undefined" name)
    | None -> (
      match Hashtbl.find_opt symbols "start" with
      | Some a -> a
      | None -> text_base)
  in
  {
    Program.entry = entry_addr;
    text = Array.of_list (List.rev !text);
    data;
    symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) symbols [];
  }
