(** Two-pass SRISC assembler.

    Syntax is SPARC-flavoured and line oriented:

    {v
            .text
    start:  set    4096, %o0          ! pseudo: sethi+or as needed
    loop:   ld     [%o0+4], %o2
            subcc  %o2, 1, %o2
            bne    loop
            st     %o2, [%o0]
            call   func
            ret                       ! jmpl [%i7+4], %g0
            halt
            .data
    arr:    .word  1, 2, label
    buf:    .space 400
    v}

    Comments start with [!], [;] or [#]. Registers: [%g0-7], [%o0-7],
    [%l0-7], [%i0-7], [%r0-31], [%sp], [%fp], [%f0-31]. Pseudo-instructions:
    [set], [mov], [cmp], [tst], [clr], [inc], [dec], [ret], [retl]. The
    [hi()] / [lo()] operators split a 32-bit constant or label for
    [sethi]/[or] pairs. Directives: [.text], [.data], [.org], [.align],
    [.word], [.half], [.byte], [.space]. *)

exception Error of { line : int; msg : string }
(** Assembly failure with a 1-based source line. *)

val assemble :
  ?text_base:int -> ?data_base:int -> ?entry:string -> string ->
  Program.t
(** Assemble a source string. The entry point is the [entry] symbol, the
    [start] label, or [text_base]. @raise Error with a diagnostic. *)
