(** A fixed-size domain worker pool with a deterministic, order-preserving
    [map].

    The pool exists to fan independent simulator runs out over the host's
    cores without disturbing the rendered output: work items are dispatched
    by index, every result is written back into the slot of the item that
    produced it, and the assembled list is returned in submission order.
    Scheduling order therefore never leaks into the result — [map pool f xs]
    is observably [List.map f xs] (including which exception is reported
    when several items fail: the one with the smallest index wins).

    Workers are spawned once in {!create} and reused across batches; each
    {!map} call builds a fresh batch closure carrying its own atomic work
    counter, so a worker waking up late from a previous batch can never
    steal indices from the next one. *)

type runner = unit -> bool
(** Claim and execute one work item of the current batch; [false] when the
    batch is exhausted. *)

type backend = Domains | Processes

type t = {
  jobs : int;  (** total workers, caller included *)
  backend : backend;
  mutex : Mutex.t;
  work_ready : Condition.t;  (** a new batch was published (or shutdown) *)
  work_done : Condition.t;  (** the current batch completed *)
  mutable batch : runner option;  (** the batch being drained, if any *)
  mutable generation : int;  (** bumped when [batch] is replaced *)
  mutable stopped : bool;
  mutable domains : unit Domain.t list;  (** the [jobs - 1] spawned workers *)
}

let recommended () = Domain.recommended_domain_count ()

(** [0] means "one worker per recommended domain"; anything else is clamped
    to at least one. *)
let resolve_jobs n = if n = 0 then recommended () else max 1 n

let backend_of_string = function
  | "domains" -> Some Domains
  | "processes" -> Some Processes
  | _ -> None

let backend_to_string = function Domains -> "domains" | Processes -> "processes"

let jobs t = t.jobs
let backend t = t.backend

(* Workers sleep between batches and drain whichever batch closure is
   current when they wake. [seen] is the generation the worker has already
   drained (or started from), so a spurious wakeup never re-enters an
   exhausted batch. *)
let rec worker_loop t ~seen =
  Mutex.lock t.mutex;
  while (not t.stopped) && t.generation = seen do
    Condition.wait t.work_ready t.mutex
  done;
  if t.stopped then Mutex.unlock t.mutex
  else begin
    let gen = t.generation in
    let runner = t.batch in
    Mutex.unlock t.mutex;
    (match runner with
    | Some run -> while run () do () done
    | None -> ());
    worker_loop t ~seen:gen
  end

let create ?(backend = Domains) ~jobs () =
  let jobs = resolve_jobs jobs in
  let t =
    {
      jobs;
      backend;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      batch = None;
      generation = 0;
      stopped = false;
      domains = [];
    }
  in
  (match backend with
  | Domains ->
    t.domains <-
      List.init (jobs - 1) (fun _ ->
          Domain.spawn (fun () -> worker_loop t ~seen:0))
  | Processes -> ());
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

(** Deterministic ordered map over forked child processes. Indices are
    dealt round-robin — worker [w] of [k] owns every index [i] with
    [i mod k = w] — and worker 0 is the caller itself, so [~jobs:1] forks
    nothing. Each child evaluates its share, marshals the
    [(index, result)] pairs back over a pipe and [Unix._exit]s (never
    running the parent's [at_exit] handlers or flushing its duplicated
    stdio buffers). The parent reassembles by index, so scheduling can
    never leak into the result, exactly as with the domain backend. *)
let process_map t f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let k = min t.jobs n in
  let eval i =
    try Ok (f items.(i)) with e -> Error (i, Printexc.to_string e)
  in
  let share w =
    let rec go i acc = if i >= n then List.rev acc else go (i + k) ((i, eval i) :: acc) in
    go w []
  in
  let children =
    List.init (k - 1) (fun j ->
        let w = j + 1 in
        let rfd, wfd = Unix.pipe ~cloexec:false () in
        match Unix.fork () with
        | 0 ->
          (* child: evaluate this worker's share, ship it, vanish *)
          Unix.close rfd;
          let oc = Unix.out_channel_of_descr wfd in
          (try
             Marshal.to_channel oc (share w) [];
             flush oc
           with _ -> ());
          Unix._exit 0
        | pid ->
          Unix.close wfd;
          (pid, rfd))
  in
  let results = Array.make n None in
  let record (i, r) = results.(i) <- Some r in
  List.iter record (share 0);
  List.iter
    (fun (pid, rfd) ->
      let ic = Unix.in_channel_of_descr rfd in
      let received =
        try Some (Marshal.from_channel ic : (int * ('b, int * string) result) list)
        with _ -> None
      in
      let _, status = Unix.waitpid [] pid in
      close_in ic;
      match (received, status) with
      | Some pairs, Unix.WEXITED 0 -> List.iter record pairs
      | _ ->
        failwith
          "Dts_parallel.Pool: a process worker died before delivering its \
           results")
    children;
  (* Reassemble in submission order; the lowest-index failure wins, as
     with the domain backend — but across a process boundary only the
     rendered exception survives, so it is re-raised as [Failure]. *)
  for i = 0 to n - 1 do
    match results.(i) with
    | None -> assert false
    | Some (Error (_, msg)) ->
      failwith (Printf.sprintf "Dts_parallel.Pool process worker: %s" msg)
    | Some (Ok _) -> ()
  done;
  List.init n (fun i ->
      match results.(i) with Some (Ok v) -> v | _ -> assert false)

(** Deterministic ordered map. The caller participates as a worker, so a
    pool created with [~jobs:1] (no spawned domains) degrades to a plain
    sequential [List.map]. Not reentrant: a single batch runs at a time,
    and [f] must not call [map] on the same pool. *)
let map t f xs =
  match t.backend with
  | Processes ->
    (match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | _ -> if t.jobs <= 1 then List.map f xs else process_map t f xs)
  | Domains ->
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when t.domains = [] -> List.map f xs
  | _ ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let remaining = Atomic.make n in
    (* Fresh per-batch closure: the atomic claim counter lives here, not in
       the pool, so stale workers from an earlier generation cannot race
       this batch's indices. *)
    let run_one () =
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then false
      else begin
        let r =
          try Ok (f items.(i))
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some r;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          (* last item of the batch: wake the caller *)
          Mutex.lock t.mutex;
          Condition.broadcast t.work_done;
          Mutex.unlock t.mutex
        end;
        true
      end
    in
    Mutex.lock t.mutex;
    t.batch <- Some run_one;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    (* the caller drains the batch alongside the workers *)
    while run_one () do () done;
    Mutex.lock t.mutex;
    while Atomic.get remaining > 0 do
      Condition.wait t.work_done t.mutex
    done;
    t.batch <- None;
    Mutex.unlock t.mutex;
    (* Reassemble in submission order; report the lowest-index failure so
       the observable outcome matches a sequential left-to-right run. *)
    for i = 0 to n - 1 do
      match results.(i) with
      | None -> assert false (* remaining = 0 implies every slot is filled *)
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) -> ()
    done;
    List.init n (fun i ->
        match results.(i) with Some (Ok v) -> v | _ -> assert false)

(** [with_pool ~jobs f] runs [f] over a fresh pool and always shuts it
    down, including on exceptions. [~jobs] below 2 yields a pool with no
    spawned domains (pure sequential maps). *)
let with_pool ?backend ~jobs f =
  let t = create ?backend ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
