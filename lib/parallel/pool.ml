(** A fixed-size domain worker pool with a deterministic, order-preserving
    [map].

    The pool exists to fan independent simulator runs out over the host's
    cores without disturbing the rendered output: work items are dispatched
    by index, every result is written back into the slot of the item that
    produced it, and the assembled list is returned in submission order.
    Scheduling order therefore never leaks into the result — [map pool f xs]
    is observably [List.map f xs] (including which exception is reported
    when several items fail: the one with the smallest index wins).

    Workers are spawned once in {!create} and reused across batches; each
    {!map} call builds a fresh batch closure carrying its own atomic work
    counter, so a worker waking up late from a previous batch can never
    steal indices from the next one. *)

type runner = unit -> bool
(** Claim and execute one work item of the current batch; [false] when the
    batch is exhausted. *)

type t = {
  jobs : int;  (** total workers, caller included *)
  mutex : Mutex.t;
  work_ready : Condition.t;  (** a new batch was published (or shutdown) *)
  work_done : Condition.t;  (** the current batch completed *)
  mutable batch : runner option;  (** the batch being drained, if any *)
  mutable generation : int;  (** bumped when [batch] is replaced *)
  mutable stopped : bool;
  mutable domains : unit Domain.t list;  (** the [jobs - 1] spawned workers *)
}

let recommended () = Domain.recommended_domain_count ()

(** [0] means "one worker per recommended domain"; anything else is clamped
    to at least one. *)
let resolve_jobs n = if n = 0 then recommended () else max 1 n

let jobs t = t.jobs

(* Workers sleep between batches and drain whichever batch closure is
   current when they wake. [seen] is the generation the worker has already
   drained (or started from), so a spurious wakeup never re-enters an
   exhausted batch. *)
let rec worker_loop t ~seen =
  Mutex.lock t.mutex;
  while (not t.stopped) && t.generation = seen do
    Condition.wait t.work_ready t.mutex
  done;
  if t.stopped then Mutex.unlock t.mutex
  else begin
    let gen = t.generation in
    let runner = t.batch in
    Mutex.unlock t.mutex;
    (match runner with
    | Some run -> while run () do () done
    | None -> ());
    worker_loop t ~seen:gen
  end

let create ~jobs =
  let jobs = resolve_jobs jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      batch = None;
      generation = 0;
      stopped = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (jobs - 1) (fun _ ->
        Domain.spawn (fun () -> worker_loop t ~seen:0));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

(** Deterministic ordered map. The caller participates as a worker, so a
    pool created with [~jobs:1] (no spawned domains) degrades to a plain
    sequential [List.map]. Not reentrant: a single batch runs at a time,
    and [f] must not call [map] on the same pool. *)
let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when t.domains = [] -> List.map f xs
  | _ ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let remaining = Atomic.make n in
    (* Fresh per-batch closure: the atomic claim counter lives here, not in
       the pool, so stale workers from an earlier generation cannot race
       this batch's indices. *)
    let run_one () =
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then false
      else begin
        let r =
          try Ok (f items.(i))
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some r;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          (* last item of the batch: wake the caller *)
          Mutex.lock t.mutex;
          Condition.broadcast t.work_done;
          Mutex.unlock t.mutex
        end;
        true
      end
    in
    Mutex.lock t.mutex;
    t.batch <- Some run_one;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    (* the caller drains the batch alongside the workers *)
    while run_one () do () done;
    Mutex.lock t.mutex;
    while Atomic.get remaining > 0 do
      Condition.wait t.work_done t.mutex
    done;
    t.batch <- None;
    Mutex.unlock t.mutex;
    (* Reassemble in submission order; report the lowest-index failure so
       the observable outcome matches a sequential left-to-right run. *)
    for i = 0 to n - 1 do
      match results.(i) with
      | None -> assert false (* remaining = 0 implies every slot is filled *)
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) -> ()
    done;
    List.init n (fun i ->
        match results.(i) with Some (Ok v) -> v | _ -> assert false)

(** [with_pool ~jobs f] runs [f] over a fresh pool and always shuts it
    down, including on exceptions. [~jobs] below 2 yields a pool with no
    spawned domains (pure sequential maps). *)
let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
