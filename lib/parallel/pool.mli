(** A fixed-size domain worker pool with a deterministic, order-preserving
    [map].

    [map pool f xs] evaluates [f] over the items of [xs] on up to [jobs]
    domains (the caller participates as one of them) and returns the
    results in submission order — the scheduling of work across domains
    never leaks into the result. If one or more applications of [f] raise,
    the exception of the {e lowest-indexed} failing item is re-raised in
    the caller with its original backtrace, matching what a sequential
    left-to-right [List.map] would have reported first. *)

type t

type backend =
  | Domains  (** in-process [Domain.t] workers (the historical backend) *)
  | Processes
      (** forked child processes, one per worker and batch; results travel
          back over pipes via [Marshal], so [f]'s results must be plain
          data (no closures, no custom blocks). Side effects performed by
          [f] — counters, caches — stay in the child and are lost. When an
          application of [f] raises, the child transports
          [Printexc.to_string] of the exception and the caller re-raises
          it as [Failure] (the original exception identity cannot cross
          the process boundary); as with [Domains], the lowest-indexed
          failure wins. A worker that dies without delivering its results
          raises [Failure] in the caller. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — one worker per available core. *)

val resolve_jobs : int -> int
(** Map a user-facing [--jobs] value to a worker count: [0] means
    {!recommended}; anything else is clamped to at least [1]. *)

val backend_of_string : string -> backend option
(** ["domains"] / ["processes"] — the shared [--pool-backend] spelling. *)

val backend_to_string : backend -> string

val create : ?backend:backend -> jobs:int -> unit -> t
(** Spawn a pool of [resolve_jobs jobs] workers total (default backend
    {!Domains}). With [Domains], [jobs - 1] domains are spawned eagerly
    and reused across {!map} batches; the caller is the remaining worker.
    With [Processes], nothing is spawned here — each {!map} batch forks
    [jobs - 1] children and reaps them before returning. [~jobs:1] makes
    {!map} purely sequential under either backend. *)

val jobs : t -> int
(** Total worker count, caller included. *)

val backend : t -> backend

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Deterministic ordered map (see the module description). Not reentrant:
    one batch runs at a time, and [f] must not call [map] on the same
    pool. *)

val shutdown : t -> unit
(** Stop and join the spawned domains. Idempotent; the pool must not be
    used afterwards. *)

val with_pool : ?backend:backend -> jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] over a fresh pool and shuts it down when
    [f] returns or raises. *)
