(** A fixed-size domain worker pool with a deterministic, order-preserving
    [map].

    [map pool f xs] evaluates [f] over the items of [xs] on up to [jobs]
    domains (the caller participates as one of them) and returns the
    results in submission order — the scheduling of work across domains
    never leaks into the result. If one or more applications of [f] raise,
    the exception of the {e lowest-indexed} failing item is re-raised in
    the caller with its original backtrace, matching what a sequential
    left-to-right [List.map] would have reported first. *)

type t

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — one worker per available core. *)

val resolve_jobs : int -> int
(** Map a user-facing [--jobs] value to a worker count: [0] means
    {!recommended}; anything else is clamped to at least [1]. *)

val create : jobs:int -> t
(** Spawn a pool of [resolve_jobs jobs] workers total. [jobs - 1] domains
    are spawned eagerly and reused across {!map} batches; the caller is the
    remaining worker. [~jobs:1] spawns nothing and makes {!map} purely
    sequential. *)

val jobs : t -> int
(** Total worker count, caller included. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Deterministic ordered map (see the module description). Not reentrant:
    one batch runs at a time, and [f] must not call [map] on the same
    pool. *)

val shutdown : t -> unit
(** Stop and join the spawned domains. Idempotent; the pool must not be
    used afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] over a fresh pool and shuts it down when
    [f] returns or raises. *)
