(** The worker-process entrypoint ([dtsvliw_serve worker]).

    The daemon forks/execs one worker per shard attempt. The handshake:
    one {!Protocol.worker_input} JSON line on stdin; a [Marshal]ed
    [(Run.shard_result, string) result] on stdout; exit 0. Anything else
    — a signal, a nonzero exit, a truncated marshal — reads as a dead
    worker and the daemon retries the shard.

    [Error msg] means the evaluation {e itself} failed (a raised
    exception): that is deterministic, so the daemon fails the job
    permanently instead of burning retries. *)

open Dts_job

let main () =
  (* Reserve the real stdout for the marshaled reply and point fd 1 at
     stderr, so a stray [print_string] anywhere in the engines cannot
     corrupt the result stream. *)
  let reply_fd = Unix.dup Unix.stdout in
  Unix.dup2 Unix.stderr Unix.stdout;
  let exit_usage msg =
    prerr_endline ("dtsvliw_serve worker: " ^ msg);
    exit Cli.usage_error
  in
  match input_line stdin with
  | exception End_of_file -> exit_usage "expected a worker-input line on stdin"
  | line -> (
    match
      Protocol.parse_line ~ctx:"worker input" line Protocol.worker_input_of_json
    with
    | Error msg -> exit_usage msg
    | Ok { job; shard; fault_kill } ->
      if fault_kill then Unix.kill (Unix.getpid ()) Sys.sigkill;
      let result =
        try Ok (Run.eval_shard job shard)
        with e -> Error (Printexc.to_string e)
      in
      let oc = Unix.out_channel_of_descr reply_fd in
      Marshal.to_channel oc (result : (Run.shard_result, string) result) [];
      flush oc;
      exit 0)
