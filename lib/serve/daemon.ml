(** The campaign daemon behind [dtsvliw_serve daemon].

    A long-lived Unix-domain-socket server: clients submit {!Dts_job.Job}
    descriptors, a priority queue hands the jobs' shards to a fixed pool
    of runner threads, and each runner evaluates one shard at a time in a
    {e forked worker process} (fork/exec of this same binary's [worker]
    subcommand — see {!Worker}). Shard results are collected by index and
    reassembled with {!Dts_job.Run.assemble}, so a job's outcome is
    byte-identical to the one-shot CLI whatever the worker count and
    whatever order shards finish in.

    Fault tolerance: a worker that dies (signal, nonzero exit, truncated
    reply) costs one retry from the shard's bounded budget and the shard
    is re-queued; because shard evaluation is pure, the re-run result is
    identical and the final outcome is unaffected. A worker that {e
    reports} an evaluation error fails the job permanently — rerunning a
    deterministic failure would only waste the budget.

    Concurrency model: one mutex guards all job state, one condition
    variable is broadcast on every change (shard done, retry, terminal
    state); [results] streams block on it. Signals (SIGTERM/SIGINT) are
    converted to a cancel-everything shutdown via a self-pipe watcher
    thread — the handler itself only writes one byte. *)

open Dts_job

type jrec = {
  id : int;
  job : Job.t;
  priority : int;
  shards : Run.shard array;
  results : Run.shard_result option array;
  attempts : int array;  (** worker deaths per shard *)
  mutable fault_kills : int;
      (** worker launches for this job that must still self-kill *)
  mutable done_count : int;
  mutable running : int;  (** shards currently on a worker *)
  mutable retries : int;
  mutable state : Protocol.job_state;
  mutable exit_code : int option;
  mutable events : Protocol.event list;  (** newest first *)
  mutable n_events : int;
}

type t = {
  socket_path : string;
  workers : int;
  retry_budget : int;
  worker_exe : string;
  tracer : Dts_obs.Trace.t;
  m : Mutex.t;
  c : Condition.t;
  jobs : (int, jrec) Hashtbl.t;
  queue : (int * int) Taskq.t;  (** (job id, shard index) *)
  pids : (int, int) Hashtbl.t;  (** live worker pid -> job id *)
  mutable next_id : int;
  mutable accepting : bool;
  mutable trace_seq : int;
  listen_fd : Unix.file_descr;
}

let default_retry_budget = 3

(* ---------- locked helpers ---------- *)

let trace d ev =
  if Dts_obs.Trace.enabled d.tracer then begin
    d.trace_seq <- d.trace_seq + 1;
    Dts_obs.Trace.stamp d.tracer d.trace_seq;
    Dts_obs.Trace.emit d.tracer ev
  end

let append_event d jr ev =
  jr.events <- ev :: jr.events;
  jr.n_events <- jr.n_events + 1;
  Condition.broadcast d.c

let kill_job_workers d id =
  Hashtbl.iter
    (fun pid job_id ->
      if job_id = id then try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    d.pids

let status_of jr =
  {
    Protocol.id = jr.id;
    kind = Job.kind_name jr.job;
    state = jr.state;
    priority = jr.priority;
    shards_done = jr.done_count;
    shards = Array.length jr.shards;
    retries = jr.retries;
    exit_code = jr.exit_code;
  }

(* ---------- request handlers (each locks internally) ---------- *)

let submit d ~job ~priority ~fault_kills =
  Mutex.lock d.m;
  let r =
    if not d.accepting then Protocol.Err "server is shutting down"
    else begin
      let id = d.next_id in
      d.next_id <- d.next_id + 1;
      let shards = Array.of_list (Run.shards job) in
      let n = Array.length shards in
      let jr =
        {
          id;
          job;
          priority;
          shards;
          results = Array.make n None;
          attempts = Array.make n 0;
          fault_kills;
          done_count = 0;
          running = 0;
          retries = 0;
          state = Protocol.Queued;
          exit_code = None;
          events = [];
          n_events = 0;
        }
      in
      Hashtbl.add d.jobs id jr;
      trace d (Dts_obs.Trace.Job_submitted { id; kind = Job.kind_name job });
      Array.iteri (fun i _ -> Taskq.push d.queue ~priority (id, i)) shards;
      Condition.broadcast d.c;
      Protocol.Ok_id id
    end
  in
  Mutex.unlock d.m;
  r

let status d ~id =
  Mutex.lock d.m;
  let r =
    match id with
    | Some id -> (
      match Hashtbl.find_opt d.jobs id with
      | Some jr -> Protocol.Ok_status [ status_of jr ]
      | None -> Protocol.Err (Printf.sprintf "unknown job id %d" id))
    | None ->
      let all = Hashtbl.fold (fun _ jr acc -> jr :: acc) d.jobs [] in
      let all = List.sort (fun a b -> compare a.id b.id) all in
      Protocol.Ok_status (List.map status_of all)
  in
  Mutex.unlock d.m;
  r

let cancel d ~id =
  Mutex.lock d.m;
  let r =
    match Hashtbl.find_opt d.jobs id with
    | None -> Protocol.Err (Printf.sprintf "unknown job id %d" id)
    | Some jr ->
      (match jr.state with
      | Protocol.Queued | Protocol.Running ->
        jr.state <- Protocol.Canceled;
        append_event d jr Protocol.Canceled;
        trace d (Dts_obs.Trace.Job_canceled { id });
        kill_job_workers d id
      | Protocol.Done | Protocol.Failed | Protocol.Canceled -> ());
      Protocol.Ok_unit
  in
  Mutex.unlock d.m;
  r

(* ---------- worker spawning ---------- *)

(* Launch one worker process for [shard], feed it, read its reply and reap
   it. Returns [`Delivered result] only for a clean exit with a complete
   reply; everything else is [`Died reason]. *)
let run_worker d ~job_id ~job ~shard ~fault =
  let in_r, in_w = Unix.pipe () in
  let out_r, out_w = Unix.pipe () in
  let pid =
    Unix.create_process d.worker_exe
      [| d.worker_exe; "worker" |]
      in_r out_w Unix.stderr
  in
  Unix.close in_r;
  Unix.close out_w;
  Mutex.lock d.m;
  Hashtbl.replace d.pids pid job_id;
  Mutex.unlock d.m;
  let oc = Unix.out_channel_of_descr in_w in
  let ic = Unix.in_channel_of_descr out_r in
  let reply =
    try
      Protocol.write_line oc
        (Protocol.worker_input_to_json { Protocol.job; shard; fault_kill = fault });
      Some (Marshal.from_channel ic : (Run.shard_result, string) result)
    with End_of_file | Sys_error _ | Failure _ | Unix.Unix_error _ -> None
  in
  let _, wstatus = Unix.waitpid [] pid in
  Mutex.lock d.m;
  Hashtbl.remove d.pids pid;
  Mutex.unlock d.m;
  close_out_noerr oc;
  close_in_noerr ic;
  match (reply, wstatus) with
  | Some result, Unix.WEXITED 0 -> `Delivered result
  | _, Unix.WSIGNALED sg -> `Died (Printf.sprintf "killed by signal %d" sg)
  | _, Unix.WEXITED code -> `Died (Printf.sprintf "exited with code %d" code)
  | _, Unix.WSTOPPED sg -> `Died (Printf.sprintf "stopped by signal %d" sg)

let finish_job d jr =
  (* All shards delivered: assemble outside the lock (fuzz assembly may
     shrink programs and write reproducer files). *)
  let results =
    Array.to_list (Array.map (fun r -> Option.get r) jr.results)
  in
  let outcome =
    try Ok (Run.assemble jr.job results)
    with e -> Error (Printexc.to_string e)
  in
  Mutex.lock d.m;
  if jr.state = Protocol.Running then begin
    match outcome with
    | Ok (o : Run.outcome) ->
      jr.state <- Protocol.Done;
      jr.exit_code <- Some o.exit_code;
      append_event d jr (Protocol.Done o);
      trace d (Dts_obs.Trace.Job_done { id = jr.id; ok = o.exit_code = 0 })
    | Error msg ->
      jr.state <- Protocol.Failed;
      append_event d jr (Protocol.Failed { error = "assembly failed: " ^ msg });
      trace d (Dts_obs.Trace.Job_done { id = jr.id; ok = false })
  end;
  Mutex.unlock d.m

let handle_delivery d jr shard_idx = function
  | Ok shard_result ->
    let all_done = ref false in
    Mutex.lock d.m;
    jr.running <- jr.running - 1;
    if jr.state = Protocol.Running then begin
      jr.results.(shard_idx) <- Some shard_result;
      jr.done_count <- jr.done_count + 1;
      append_event d jr
        (Protocol.Shard_done
           { shard = shard_idx; shards = Array.length jr.shards });
      trace d
        (Dts_obs.Trace.Job_shard_done
           { id = jr.id; shard = shard_idx; shards = Array.length jr.shards });
      all_done := jr.done_count = Array.length jr.shards
    end;
    Condition.broadcast d.c;
    Mutex.unlock d.m;
    if !all_done then finish_job d jr
  | Error msg ->
    (* The evaluation itself raised: deterministic, so no retry. *)
    Mutex.lock d.m;
    jr.running <- jr.running - 1;
    if jr.state = Protocol.Running then begin
      jr.state <- Protocol.Failed;
      append_event d jr
        (Protocol.Failed
           { error = Printf.sprintf "shard %d failed: %s" shard_idx msg });
      trace d (Dts_obs.Trace.Job_done { id = jr.id; ok = false });
      kill_job_workers d jr.id
    end;
    Condition.broadcast d.c;
    Mutex.unlock d.m

let handle_death d jr shard_idx reason =
  Mutex.lock d.m;
  jr.running <- jr.running - 1;
  if jr.state = Protocol.Running then begin
    jr.attempts.(shard_idx) <- jr.attempts.(shard_idx) + 1;
    jr.retries <- jr.retries + 1;
    if jr.attempts.(shard_idx) > d.retry_budget then begin
      jr.state <- Protocol.Failed;
      append_event d jr
        (Protocol.Failed
           {
             error =
               Printf.sprintf
                 "shard %d: worker died %d times (last: %s); retry budget \
                  exhausted"
                 shard_idx jr.attempts.(shard_idx) reason;
           });
      trace d (Dts_obs.Trace.Job_done { id = jr.id; ok = false });
      kill_job_workers d jr.id
    end
    else begin
      append_event d jr
        (Protocol.Retry { shard = shard_idx; attempt = jr.attempts.(shard_idx) });
      trace d
        (Dts_obs.Trace.Job_retry
           { id = jr.id; shard = shard_idx; attempt = jr.attempts.(shard_idx) });
      Taskq.push d.queue ~priority:jr.priority (jr.id, shard_idx)
    end
  end;
  Condition.broadcast d.c;
  Mutex.unlock d.m

(* One runner thread: pop a shard task, run a worker for it, record the
   result, repeat until the queue closes. *)
let rec runner d =
  match Taskq.pop d.queue with
  | None -> ()
  | Some (job_id, shard_idx) ->
    let jr = ref None in
    let fault = ref false in
    Mutex.lock d.m;
    (match Hashtbl.find_opt d.jobs job_id with
    | Some j when j.state = Protocol.Queued || j.state = Protocol.Running ->
      if j.state = Protocol.Queued then j.state <- Protocol.Running;
      j.running <- j.running + 1;
      if j.fault_kills > 0 then begin
        j.fault_kills <- j.fault_kills - 1;
        fault := true
      end;
      jr := Some j
    | _ -> ());
    Mutex.unlock d.m;
    (match !jr with
    | None -> ()
    | Some jr -> (
      match
        run_worker d ~job_id ~job:jr.job ~shard:jr.shards.(shard_idx)
          ~fault:!fault
      with
      | `Delivered result -> handle_delivery d jr shard_idx result
      | `Died reason -> handle_death d jr shard_idx reason));
    runner d

(* ---------- shutdown ---------- *)

let shutdown_and_exit d ~drain =
  Mutex.lock d.m;
  d.accepting <- false;
  if not drain then
    Hashtbl.iter
      (fun id jr ->
        match jr.state with
        | Protocol.Queued | Protocol.Running ->
          jr.state <- Protocol.Canceled;
          append_event d jr Protocol.Canceled;
          trace d (Dts_obs.Trace.Job_canceled { id });
          kill_job_workers d id
        | Protocol.Done | Protocol.Failed | Protocol.Canceled -> ())
      d.jobs;
  Condition.broadcast d.c;
  let pending () =
    Hashtbl.fold
      (fun _ jr acc ->
        acc
        || jr.state = Protocol.Queued
        || jr.state = Protocol.Running
        || jr.running > 0)
      d.jobs false
  in
  while pending () do
    Condition.wait d.c d.m
  done;
  Mutex.unlock d.m;
  Taskq.close d.queue;
  (try Unix.close d.listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove d.socket_path with Sys_error _ -> ());
  Dts_obs.Trace.close d.tracer;
  exit 0

(* ---------- connections ---------- *)

let stream_results d oc ~id =
  let jr =
    Mutex.lock d.m;
    let jr = Hashtbl.find_opt d.jobs id in
    Mutex.unlock d.m;
    jr
  in
  match jr with
  | None ->
    Protocol.write_line oc
      (Protocol.response_to_json
         (Protocol.Err (Printf.sprintf "unknown job id %d" id)))
  | Some jr ->
    let sent = ref 0 in
    let finished = ref false in
    while not !finished do
      Mutex.lock d.m;
      while jr.n_events = !sent do
        Condition.wait d.c d.m
      done;
      let fresh =
        (* [events] is newest-first; replay the ones the cursor hasn't
           seen, oldest first. *)
        List.filteri (fun i _ -> i < jr.n_events - !sent) jr.events |> List.rev
      in
      sent := jr.n_events;
      Mutex.unlock d.m;
      List.iter
        (fun ev ->
          Protocol.write_line oc (Protocol.event_to_json ~id ev);
          if Protocol.terminal ev then finished := true)
        fresh
    done

let handle_connection d fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let respond r = Protocol.write_line oc (Protocol.response_to_json r) in
  (try
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | line -> (
         match
           Protocol.parse_line ~ctx:"request" line Protocol.request_of_json
         with
         | Error msg ->
           respond (Protocol.Err msg);
           loop ()
         | Ok (Protocol.Submit { job; priority; fault_kills }) ->
           respond (submit d ~job ~priority ~fault_kills);
           loop ()
         | Ok (Protocol.Status { id }) ->
           respond (status d ~id);
           loop ()
         | Ok (Protocol.Cancel { id }) ->
           respond (cancel d ~id);
           loop ()
         | Ok (Protocol.Results { id }) ->
           (* A results stream takes over the connection. *)
           stream_results d oc ~id
         | Ok (Protocol.Shutdown { drain }) ->
           respond Protocol.Ok_unit;
           (try flush oc with Sys_error _ -> ());
           (try Unix.close fd with Unix.Unix_error _ -> ());
           shutdown_and_exit d ~drain)
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  (try flush oc with Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---------- entry point ---------- *)

let install_signal_shutdown d =
  let r, w = Unix.pipe () in
  let on_signal _ = ignore (Unix.write w (Bytes.make 1 'x') 0 1) in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  ignore
    (Thread.create
       (fun () ->
         let b = Bytes.create 1 in
         match Unix.read r b 0 1 with
         | _ -> shutdown_and_exit d ~drain:false
         | exception Unix.Unix_error _ -> ())
       ())

(** Run the daemon on [socket_path]. Never returns: exits 0 on [shutdown]
    or SIGTERM/SIGINT, raises on unrecoverable setup errors (socket path
    in use by a live server, ...). *)
let serve ?(workers = 1) ?(retry_budget = default_retry_budget)
    ?(worker_exe = Sys.executable_name) ?(tracer = Dts_obs.Trace.null)
    ~socket_path () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if Sys.file_exists socket_path then Unix.unlink socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd 16;
  let d =
    {
      socket_path;
      workers = max 1 workers;
      retry_budget = max 0 retry_budget;
      worker_exe;
      tracer;
      m = Mutex.create ();
      c = Condition.create ();
      jobs = Hashtbl.create 16;
      queue = Taskq.create ();
      pids = Hashtbl.create 16;
      next_id = 1;
      accepting = true;
      trace_seq = 0;
      listen_fd;
    }
  in
  install_signal_shutdown d;
  for _ = 1 to d.workers do
    ignore (Thread.create runner d)
  done;
  Printf.eprintf "dtsvliw_serve: listening on %s (workers=%d)\n%!" socket_path
    d.workers;
  let rec accept_loop () =
    match Unix.accept listen_fd with
    | fd, _ ->
      ignore (Thread.create (handle_connection d) fd);
      accept_loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  accept_loop ()
