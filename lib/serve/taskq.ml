(** A blocking priority queue for the daemon's shard tasks.

    Higher [priority] pops first; within a priority, tasks pop in push
    order (a monotone sequence number breaks ties), so scheduling is
    deterministic given the submit order. [pop] blocks until an item is
    available or the queue is closed. *)

type 'a t = {
  mutable items : (int * int * 'a) list;
      (** (priority, seq, payload), kept sorted pop-first *)
  mutable seq : int;
  mutable closed : bool;
  m : Mutex.t;
  c : Condition.t;
}

let create () =
  { items = []; seq = 0; closed = false; m = Mutex.create (); c = Condition.create () }

let before (p1, s1, _) (p2, s2, _) = p1 > p2 || (p1 = p2 && s1 < s2)

let rec insert item = function
  | [] -> [ item ]
  | hd :: tl as items ->
    if before item hd then item :: items else hd :: insert item tl

let push t ~priority x =
  Mutex.lock t.m;
  if not t.closed then begin
    t.items <- insert (priority, t.seq, x) t.items;
    t.seq <- t.seq + 1;
    Condition.signal t.c
  end;
  Mutex.unlock t.m

(** [None] once the queue is closed and drained. *)
let pop t =
  Mutex.lock t.m;
  let rec wait () =
    match t.items with
    | (_, _, x) :: rest ->
      t.items <- rest;
      Some x
    | [] ->
      if t.closed then None
      else begin
        Condition.wait t.c t.m;
        wait ()
      end
  in
  let r = wait () in
  Mutex.unlock t.m;
  r

(** Wake every blocked {!pop}; pending items still drain. *)
let close t =
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.c;
  Mutex.unlock t.m

let length t =
  Mutex.lock t.m;
  let n = List.length t.items in
  Mutex.unlock t.m;
  n
