(** The [dtsvliw_serve] wire protocol: newline-delimited JSON over a Unix
    domain socket.

    One request object per line. [submit]/[status]/[cancel]/[shutdown] get
    exactly one response line; [results] gets a {e stream} of event lines
    — the job's progress replayed from the beginning, then live — ending
    with a terminal event ([done], [failed] or [canceled]), after which
    the server closes the stream.

    Grammar (all fields required — the codecs are strict, like
    {!Dts_job.Job}'s):

    {v
    request  := {"op":"submit","job":JOB,"priority":INT,"fault_kills":INT}
              | {"op":"status","id":INT|null}
              | {"op":"cancel","id":INT}
              | {"op":"results","id":INT}
              | {"op":"shutdown","drain":BOOL}
    response := {"ok":true,"id":INT}            submit
              | {"ok":true}                     cancel, shutdown
              | {"ok":true,"jobs":[STATUS...]}  status
              | {"ok":false,"error":STRING}     any failed request
    STATUS   := {"id":INT,"kind":STRING,"state":STATE,"priority":INT,
                 "shards_done":INT,"shards":INT,"retries":INT,
                 "exit_code":INT|null}
    STATE    := "queued"|"running"|"done"|"failed"|"canceled"
    event    := {"id":INT,"ev":"shard_done","shard":INT,"shards":INT}
              | {"id":INT,"ev":"retry","shard":INT,"attempt":INT}
              | {"id":INT,"ev":"done","exit_code":INT,"text":STRING,
                 "stats_json":STRING|null}
              | {"id":INT,"ev":"failed","error":STRING}
              | {"id":INT,"ev":"canceled"}
    v} *)

open Dts_obs
open Dts_job
open Dts_job.Codec

type request =
  | Submit of { job : Job.t; priority : int; fault_kills : int }
      (** [priority]: higher runs first; [fault_kills]: the first N worker
          processes launched for this job kill themselves mid-shard (fault
          injection for the retry path — results must be unaffected) *)
  | Status of { id : int option }  (** [None] = every job *)
  | Cancel of { id : int }
  | Results of { id : int }
  | Shutdown of { drain : bool }
      (** [drain]: finish queued and running jobs first; otherwise cancel
          everything in flight *)

type job_state = Queued | Running | Done | Failed | Canceled

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Canceled -> "canceled"

let state_of_string = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "done" -> Some Done
  | "failed" -> Some Failed
  | "canceled" -> Some Canceled
  | _ -> None

type job_status = {
  id : int;
  kind : string;
  state : job_state;
  priority : int;
  shards_done : int;
  shards : int;
  retries : int;
  exit_code : int option;  (** set once terminal (never for [canceled]) *)
}

type response =
  | Ok_id of int
  | Ok_unit
  | Ok_status of job_status list
  | Err of string

type event =
  | Shard_done of { shard : int; shards : int }
  | Retry of { shard : int; attempt : int }
  | Done of Run.outcome
  | Failed of { error : string }
  | Canceled

let terminal = function
  | Done _ | Failed _ | Canceled -> true
  | Shard_done _ | Retry _ -> false

(* ---------- requests ---------- *)

let request_to_json = function
  | Submit { job; priority; fault_kills } ->
    Json.Obj
      [
        ("op", Json.String "submit");
        ("job", Job.to_json job);
        ("priority", Json.Int priority);
        ("fault_kills", Json.Int fault_kills);
      ]
  | Status { id } ->
    Json.Obj [ ("op", Json.String "status"); ("id", int_opt_json id) ]
  | Cancel { id } ->
    Json.Obj [ ("op", Json.String "cancel"); ("id", Json.Int id) ]
  | Results { id } ->
    Json.Obj [ ("op", Json.String "results"); ("id", Json.Int id) ]
  | Shutdown { drain } ->
    Json.Obj [ ("op", Json.String "shutdown"); ("drain", Json.Bool drain) ]

let request_of_json j =
  let* f = start ~ctx:"request" j in
  let* op = string_field f "op" in
  match op with
  | "submit" ->
    let* job_json = take f "job" in
    let* job = Job.of_json job_json in
    let* priority = int_field f "priority" in
    let* fault_kills = int_field f "fault_kills" in
    let* () =
      if fault_kills < 0 then
        error "request" "fault_kills must be >= 0 (got %d)" fault_kills
      else Ok ()
    in
    finish f (Submit { job; priority; fault_kills })
  | "status" ->
    let* id = int_opt_field f "id" in
    finish f (Status { id })
  | "cancel" ->
    let* id = int_field f "id" in
    finish f (Cancel { id })
  | "results" ->
    let* id = int_field f "id" in
    finish f (Results { id })
  | "shutdown" ->
    let* drain = bool_field f "drain" in
    finish f (Shutdown { drain })
  | other ->
    error "request"
      "unknown op %S (expected submit, status, cancel, results or shutdown)"
      other

(* ---------- responses ---------- *)

let status_to_json s =
  Json.Obj
    [
      ("id", Json.Int s.id);
      ("kind", Json.String s.kind);
      ("state", Json.String (state_to_string s.state));
      ("priority", Json.Int s.priority);
      ("shards_done", Json.Int s.shards_done);
      ("shards", Json.Int s.shards);
      ("retries", Json.Int s.retries);
      ("exit_code", int_opt_json s.exit_code);
    ]

let status_of_json j =
  let* f = start ~ctx:"job status" j in
  let* id = int_field f "id" in
  let* kind = string_field f "kind" in
  let* state_s = string_field f "state" in
  let* state =
    match state_of_string state_s with
    | Some s -> Ok s
    | None -> error "job status" "unknown state %S" state_s
  in
  let* priority = int_field f "priority" in
  let* shards_done = int_field f "shards_done" in
  let* shards = int_field f "shards" in
  let* retries = int_field f "retries" in
  let* exit_code = int_opt_field f "exit_code" in
  finish f
    { id; kind; state; priority; shards_done; shards; retries; exit_code }

let response_to_json = function
  | Ok_id id -> Json.Obj [ ("ok", Json.Bool true); ("id", Json.Int id) ]
  | Ok_unit -> Json.Obj [ ("ok", Json.Bool true) ]
  | Ok_status jobs ->
    Json.Obj
      [ ("ok", Json.Bool true); ("jobs", Json.List (List.map status_to_json jobs)) ]
  | Err msg -> Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]

let response_of_json j =
  let* f = start ~ctx:"response" j in
  let* ok = bool_field f "ok" in
  if not ok then
    let* msg = string_field f "error" in
    finish f (Err msg)
  else
    match f.remaining with
    | [] -> finish f Ok_unit
    | [ ("id", _) ] ->
      let* id = int_field f "id" in
      finish f (Ok_id id)
    | [ ("jobs", _) ] -> (
      let* jobs = take f "jobs" in
      match jobs with
      | Json.List js ->
        let* statuses =
          List.fold_left
            (fun acc j ->
              let* acc = acc in
              let* s = status_of_json j in
              Ok (s :: acc))
            (Ok []) js
        in
        finish f (Ok_status (List.rev statuses))
      | _ -> error "response" "field \"jobs\" must be a list")
    | (k, _) :: _ -> error "response" "unknown field %S" k

(* ---------- result-stream events ---------- *)

let event_to_json ~id ev =
  let base = ("id", Json.Int id) in
  match ev with
  | Shard_done { shard; shards } ->
    Json.Obj
      [
        base;
        ("ev", Json.String "shard_done");
        ("shard", Json.Int shard);
        ("shards", Json.Int shards);
      ]
  | Retry { shard; attempt } ->
    Json.Obj
      [
        base;
        ("ev", Json.String "retry");
        ("shard", Json.Int shard);
        ("attempt", Json.Int attempt);
      ]
  | Done (o : Run.outcome) ->
    Json.Obj
      [
        base;
        ("ev", Json.String "done");
        ("exit_code", Json.Int o.exit_code);
        ("text", Json.String o.text);
        ("stats_json", string_opt_json o.stats_json);
      ]
  | Failed { error } ->
    Json.Obj [ base; ("ev", Json.String "failed"); ("error", Json.String error) ]
  | Canceled -> Json.Obj [ base; ("ev", Json.String "canceled") ]

let event_of_json j =
  let* f = start ~ctx:"event" j in
  let* id = int_field f "id" in
  let* ev = string_field f "ev" in
  let* event =
    match ev with
    | "shard_done" ->
      let* shard = int_field f "shard" in
      let* shards = int_field f "shards" in
      Ok (Shard_done { shard; shards })
    | "retry" ->
      let* shard = int_field f "shard" in
      let* attempt = int_field f "attempt" in
      Ok (Retry { shard; attempt })
    | "done" ->
      let* exit_code = int_field f "exit_code" in
      let* text = string_field f "text" in
      let* stats_json = string_opt_field f "stats_json" in
      Ok (Done { Run.text; stats_json; exit_code })
    | "failed" ->
      let* error = string_field f "error" in
      Ok (Failed { error })
    | "canceled" -> Ok Canceled
    | other -> error "event" "unknown ev %S" other
  in
  finish f (id, event)

(* ---------- worker handshake ---------- *)

(** What the daemon writes on a worker's stdin: one JSON line. The worker
    answers with a [Marshal]ed [(Run.shard_result, string) result] on
    stdout ([Error] = the evaluation itself failed: permanent, no retry)
    and exits 0. [fault_kill] makes the worker SIGKILL itself instead of
    answering — the injected crash the retry machinery is tested with. *)
type worker_input = { job : Job.t; shard : Run.shard; fault_kill : bool }

let shard_to_json = function
  | Run.Whole -> Json.String "whole"
  | Run.Slice { lo; hi } ->
    Json.Obj [ ("lo", Json.Int lo); ("hi", Json.Int hi) ]

let shard_of_json = function
  | Json.String "whole" -> Ok Run.Whole
  | Json.Obj _ as j ->
    let* f = start ~ctx:"shard" j in
    let* lo = int_field f "lo" in
    let* hi = int_field f "hi" in
    finish f (Run.Slice { lo; hi })
  | _ -> Error "shard: expected \"whole\" or {\"lo\":..,\"hi\":..}"

let worker_input_to_json w =
  Json.Obj
    [
      ("job", Job.to_json w.job);
      ("shard", shard_to_json w.shard);
      ("fault_kill", Json.Bool w.fault_kill);
    ]

let worker_input_of_json j =
  let* f = start ~ctx:"worker input" j in
  let* job_json = take f "job" in
  let* job = Job.of_json job_json in
  let* shard_json = take f "shard" in
  let* shard = shard_of_json shard_json in
  let* fault_kill = bool_field f "fault_kill" in
  finish f { job; shard; fault_kill }

(* ---------- line framing ---------- *)

let write_line oc j =
  output_string oc (Json.to_string j);
  output_char oc '\n';
  flush oc

let parse_line ~ctx line decode =
  match Json.of_string line with
  | j -> decode j
  | exception Json.Parse_error msg -> Error (ctx ^ ": invalid JSON: " ^ msg)
