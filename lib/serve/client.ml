(** Client side of the [dtsvliw_serve] protocol: connect, send one
    request per line, read responses/event streams. Used by the
    [dtsvliw_serve] submit/status/cancel/results/shutdown subcommands and
    by the end-to-end tests. *)

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

(** Retry {!connect} until the daemon answers or [timeout_s] elapses —
    covers the startup race right after spawning the daemon. *)
let connect_retry ?(timeout_s = 10.0) path =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match connect path with
    | conn -> conn
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
      ignore (Unix.select [] [] [] 0.05);
      go ()
  in
  go ()

let close conn =
  (try flush conn.oc with Sys_error _ -> ());
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let with_conn path f =
  let conn = connect path in
  Fun.protect ~finally:(fun () -> close conn) (fun () -> f conn)

let request conn req =
  Protocol.write_line conn.oc (Protocol.request_to_json req);
  match input_line conn.ic with
  | exception End_of_file -> Error "server closed the connection"
  | line -> Protocol.parse_line ~ctx:"response" line Protocol.response_of_json

(* ---------- one-shot helpers ---------- *)

let submit path ~job ~priority ~fault_kills =
  with_conn path (fun conn ->
      match request conn (Protocol.Submit { job; priority; fault_kills }) with
      | Ok (Protocol.Ok_id id) -> Ok id
      | Ok (Protocol.Err msg) -> Error msg
      | Ok _ -> Error "unexpected response to submit"
      | Error msg -> Error msg)

let status path ?id () =
  with_conn path (fun conn ->
      match request conn (Protocol.Status { id }) with
      | Ok (Protocol.Ok_status jobs) -> Ok jobs
      | Ok (Protocol.Err msg) -> Error msg
      | Ok _ -> Error "unexpected response to status"
      | Error msg -> Error msg)

let cancel path ~id =
  with_conn path (fun conn ->
      match request conn (Protocol.Cancel { id }) with
      | Ok Protocol.Ok_unit -> Ok ()
      | Ok (Protocol.Err msg) -> Error msg
      | Ok _ -> Error "unexpected response to cancel"
      | Error msg -> Error msg)

let shutdown path ~drain =
  with_conn path (fun conn ->
      match request conn (Protocol.Shutdown { drain }) with
      | Ok Protocol.Ok_unit -> Ok ()
      | Ok (Protocol.Err msg) -> Error msg
      | Ok _ -> Error "unexpected response to shutdown"
      | Error msg -> Error msg)

(** Stream the job's result events, calling [on_event] on each (terminal
    event included), and return the terminal event. Blocks until the job
    reaches a terminal state. *)
let results path ~id ~on_event =
  with_conn path (fun conn ->
      Protocol.write_line conn.oc
        (Protocol.request_to_json (Protocol.Results { id }));
      let rec loop () =
        match input_line conn.ic with
        | exception End_of_file -> Error "stream ended before a terminal event"
        | line -> (
          match Protocol.parse_line ~ctx:"event" line Protocol.event_of_json with
          | Ok (eid, ev) ->
            if eid <> id then
              Error (Printf.sprintf "event for job %d on job %d's stream" eid id)
            else begin
              on_event ev;
              if Protocol.terminal ev then Ok ev else loop ()
            end
          | Error _ -> (
            (* The server answers an unknown id with an error response. *)
            match
              Protocol.parse_line ~ctx:"response" line
                Protocol.response_of_json
            with
            | Ok (Protocol.Err msg) -> Error msg
            | _ -> Error ("unparsable stream line: " ^ line)))
      in
      loop ())

(** {!results}, returning the final {!Run.outcome} — [Error] if the job
    failed or was canceled. *)
let outcome path ~id ~on_event =
  match results path ~id ~on_event with
  | Ok (Protocol.Done o) -> Ok o
  | Ok (Protocol.Failed { error }) -> Error ("job failed: " ^ error)
  | Ok Protocol.Canceled -> Error "job was canceled"
  | Ok _ -> Error "stream ended on a non-terminal event"
  | Error msg -> Error msg
