(** Cycle attribution: every machine cycle is charged to exactly one typed
    category at the moment it is added to [Machine.cycles].

    The paper explains its IPC numbers through indirect aggregates (list
    sizes, slot utilisation); this accounting answers the direct question —
    {e where did the cycles go} — for any run, with the hard invariant that
    the categories sum to the machine's total cycle count (and the
    VLIW-side categories to its VLIW cycle count). The invariant is
    enforced by the test suite on every workload. *)

type category =
  | Primary_execute
      (** Primary Processor pipeline cycles: issue, execute latencies,
          branch and load-use bubbles, trap service *)
  | Primary_icache_stall  (** Primary instruction-cache miss penalties *)
  | Primary_dcache_stall  (** Primary data-cache miss penalties *)
  | Switch_to_vliw  (** engine-switch bubble entering the VLIW Engine *)
  | Switch_to_primary
      (** engine-switch bubble returning to the Primary Processor after a
          clean block exit with no successor block *)
  | Vliw_execute  (** one cycle per long instruction executed *)
  | Vliw_dcache_stall
      (** data-cache miss penalties charged to VLIW loads/stores,
          including data-store-list drain at block commit *)
  | Next_li_penalty
      (** next-long-instruction fetch penalty crossing into a chained
          block (§4.4), unless hidden by next-li prediction *)
  | Mispredict_redirect
      (** annulled-fetch bubble after a mispredicted branch tag (§3.5) *)
  | Recovery_switch
      (** engine-switch bubble returning to the Primary Processor after an
          aliasing violation or checkpoint-recovery rollback (§3.10/§3.11) *)

let all =
  [
    Primary_execute;
    Primary_icache_stall;
    Primary_dcache_stall;
    Switch_to_vliw;
    Switch_to_primary;
    Vliw_execute;
    Vliw_dcache_stall;
    Next_li_penalty;
    Mispredict_redirect;
    Recovery_switch;
  ]

let n_categories = List.length all

let index = function
  | Primary_execute -> 0
  | Primary_icache_stall -> 1
  | Primary_dcache_stall -> 2
  | Switch_to_vliw -> 3
  | Switch_to_primary -> 4
  | Vliw_execute -> 5
  | Vliw_dcache_stall -> 6
  | Next_li_penalty -> 7
  | Mispredict_redirect -> 8
  | Recovery_switch -> 9

(** Snake-case key used in JSON output. *)
let name = function
  | Primary_execute -> "primary_execute"
  | Primary_icache_stall -> "primary_icache_stall"
  | Primary_dcache_stall -> "primary_dcache_stall"
  | Switch_to_vliw -> "switch_to_vliw"
  | Switch_to_primary -> "switch_to_primary"
  | Vliw_execute -> "vliw_execute"
  | Vliw_dcache_stall -> "vliw_dcache_stall"
  | Next_li_penalty -> "next_li_penalty"
  | Mispredict_redirect -> "mispredict_redirect"
  | Recovery_switch -> "recovery_switch"

(** Human-readable row label for the breakdown table. *)
let label = function
  | Primary_execute -> "Primary execute"
  | Primary_icache_stall -> "Primary I-cache stall"
  | Primary_dcache_stall -> "Primary D-cache stall"
  | Switch_to_vliw -> "Switch to VLIW"
  | Switch_to_primary -> "Switch to Primary"
  | Vliw_execute -> "VLIW execute"
  | Vliw_dcache_stall -> "VLIW D-cache stall"
  | Next_li_penalty -> "Next-li penalty"
  | Mispredict_redirect -> "Mispredict redirect"
  | Recovery_switch -> "Exception recovery switch"

(** The categories whose cycles are also counted in [Machine.vliw_cycles]:
    everything charged while the VLIW Engine owns the pipeline. *)
let vliw_categories =
  [ Vliw_execute; Vliw_dcache_stall; Next_li_penalty; Mispredict_redirect ]

type t = int array

let create () : t = Array.make n_categories 0
let charge (t : t) cat n = t.(index cat) <- t.(index cat) + n
let get (t : t) cat = t.(index cat)
let snapshot (t : t) = Array.copy t
let total (t : t) = Array.fold_left ( + ) 0 t

(* ------------------------------------------------------------------ *)
(* Views over a snapshot array (as stored in {!Stats.t})                *)
(* ------------------------------------------------------------------ *)

let sum_of counts cats =
  List.fold_left (fun a c -> a + counts.(index c)) 0 cats

let vliw_total counts = sum_of counts vliw_categories

let to_assoc counts = List.map (fun c -> (name c, counts.(index c))) all
