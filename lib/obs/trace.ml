(** Bounded JSONL event tracer.

    Structural events of a run — engine switches, block flush/install/
    fetch/evict, aliasing violations, checkpoint recoveries — are emitted
    one JSON object per line to a sink. The tracer is designed so that the
    disabled path costs nothing: call sites guard event construction with
    {!enabled}, which is a single pattern match on the sink, so no event
    value is ever allocated when tracing is off.

    The trace is bounded: after [limit] events further emissions are
    counted in [dropped] instead of written, so a long run cannot fill the
    disk. Every record carries the machine cycle stamped by the machine at
    the start of the step that produced it. *)

type event =
  | Engine_switch of { to_vliw : bool; pc : int }
      (** the machine handed the pipeline to the other engine; [pc] is the
          ISA address execution continues at *)
  | Block_flush of { tag : int; lis : int; slots : int }
      (** the Scheduler Unit froze a block (tag = first-instruction
          address) with [lis] long instructions and [slots] filled slots *)
  | Block_install of { tag : int }
      (** a flushed block finished draining and entered the VLIW Cache *)
  | Block_evict of { tag : int }  (** the VLIW Cache evicted a block *)
  | Block_fetch of { tag : int }
      (** the Fetch Unit hit the VLIW Cache and the block begins execution *)
  | Aliasing_violation of { tag : int; li : int }
      (** §3.10 order-field violation detected in long instruction [li] *)
  | Checkpoint_recovery of { undone : int }
      (** §3.11 rollback: registers restored, [undone] buffered/overwritten
          stores undone or annulled *)
  | Job_submitted of { id : int; kind : string }
      (** a campaign job entered the [dtsvliw_serve] queue; [kind] is the
          job descriptor's kind tag *)
  | Job_shard_done of { id : int; shard : int; shards : int }
      (** worker shard [shard] of [shards] delivered its results *)
  | Job_retry of { id : int; shard : int; attempt : int }
      (** a worker died before delivering shard [shard]; re-queued as
          attempt [attempt] *)
  | Job_done of { id : int; ok : bool }
      (** the job reached a terminal state ([ok] = assembled successfully) *)
  | Job_canceled of { id : int }

let event_name = function
  | Engine_switch _ -> "engine_switch"
  | Block_flush _ -> "block_flush"
  | Block_install _ -> "block_install"
  | Block_evict _ -> "block_evict"
  | Block_fetch _ -> "block_fetch"
  | Aliasing_violation _ -> "aliasing_violation"
  | Checkpoint_recovery _ -> "checkpoint_recovery"
  | Job_submitted _ -> "job_submitted"
  | Job_shard_done _ -> "job_shard_done"
  | Job_retry _ -> "job_retry"
  | Job_done _ -> "job_done"
  | Job_canceled _ -> "job_canceled"

let event_names =
  [
    "engine_switch";
    "block_flush";
    "block_install";
    "block_evict";
    "block_fetch";
    "aliasing_violation";
    "checkpoint_recovery";
    "job_submitted";
    "job_shard_done";
    "job_retry";
    "job_done";
    "job_canceled";
  ]

type sink = Null | Channel of out_channel | Memory of Buffer.t

type t = {
  mutable now : int;  (** machine cycle stamped by the machine each step *)
  limit : int;
  mutable emitted : int;
  mutable dropped : int;
  sink : sink;
}

let default_limit = 1_000_000

let null = { now = 0; limit = 0; emitted = 0; dropped = 0; sink = Null }

let make ?(limit = default_limit) sink =
  { now = 0; limit; emitted = 0; dropped = 0; sink }

let to_channel ?limit oc = make ?limit (Channel oc)
let to_buffer ?limit buf = make ?limit (Memory buf)

let enabled t = match t.sink with Null -> false | Channel _ | Memory _ -> true

let stamp t cycle = if enabled t then t.now <- cycle

let emitted t = t.emitted
let dropped t = t.dropped

let line_of ~cycle ev =
  match ev with
  | Engine_switch { to_vliw; pc } ->
    Printf.sprintf "{\"cycle\":%d,\"ev\":\"engine_switch\",\"to\":\"%s\",\"pc\":%d}"
      cycle
      (if to_vliw then "vliw" else "primary")
      pc
  | Block_flush { tag; lis; slots } ->
    Printf.sprintf
      "{\"cycle\":%d,\"ev\":\"block_flush\",\"tag\":%d,\"lis\":%d,\"slots\":%d}"
      cycle tag lis slots
  | Block_install { tag } ->
    Printf.sprintf "{\"cycle\":%d,\"ev\":\"block_install\",\"tag\":%d}" cycle tag
  | Block_evict { tag } ->
    Printf.sprintf "{\"cycle\":%d,\"ev\":\"block_evict\",\"tag\":%d}" cycle tag
  | Block_fetch { tag } ->
    Printf.sprintf "{\"cycle\":%d,\"ev\":\"block_fetch\",\"tag\":%d}" cycle tag
  | Aliasing_violation { tag; li } ->
    Printf.sprintf
      "{\"cycle\":%d,\"ev\":\"aliasing_violation\",\"tag\":%d,\"li\":%d}" cycle
      tag li
  | Checkpoint_recovery { undone } ->
    Printf.sprintf "{\"cycle\":%d,\"ev\":\"checkpoint_recovery\",\"undone\":%d}"
      cycle undone
  | Job_submitted { id; kind } ->
    Printf.sprintf
      "{\"cycle\":%d,\"ev\":\"job_submitted\",\"id\":%d,\"kind\":\"%s\"}" cycle
      id (Json.escape kind)
  | Job_shard_done { id; shard; shards } ->
    Printf.sprintf
      "{\"cycle\":%d,\"ev\":\"job_shard_done\",\"id\":%d,\"shard\":%d,\"shards\":%d}"
      cycle id shard shards
  | Job_retry { id; shard; attempt } ->
    Printf.sprintf
      "{\"cycle\":%d,\"ev\":\"job_retry\",\"id\":%d,\"shard\":%d,\"attempt\":%d}"
      cycle id shard attempt
  | Job_done { id; ok } ->
    Printf.sprintf "{\"cycle\":%d,\"ev\":\"job_done\",\"id\":%d,\"ok\":%b}"
      cycle id ok
  | Job_canceled { id } ->
    Printf.sprintf "{\"cycle\":%d,\"ev\":\"job_canceled\",\"id\":%d}" cycle id

let emit t ev =
  match t.sink with
  | Null -> ()
  | _ when t.emitted >= t.limit -> t.dropped <- t.dropped + 1
  | Channel oc ->
    output_string oc (line_of ~cycle:t.now ev);
    output_char oc '\n';
    t.emitted <- t.emitted + 1
  | Memory buf ->
    Buffer.add_string buf (line_of ~cycle:t.now ev);
    Buffer.add_char buf '\n';
    t.emitted <- t.emitted + 1

let close t = match t.sink with Channel oc -> flush oc | Null | Memory _ -> ()

(* ------------------------------------------------------------------ *)
(* Reading a trace back (tests, tooling)                                *)
(* ------------------------------------------------------------------ *)

(** Parse one JSONL record into [(cycle, event-name, fields)].
    @raise Json.Parse_error on malformed lines, [Failure] on records
    missing the required keys. *)
let parse_line line =
  let j = Json.of_string line in
  let cycle =
    match Option.bind (Json.member "cycle" j) Json.to_int with
    | Some c -> c
    | None -> failwith "trace record without integer \"cycle\""
  in
  let ev =
    match Option.bind (Json.member "ev" j) Json.to_str with
    | Some e -> e
    | None -> failwith "trace record without string \"ev\""
  in
  (cycle, ev, j)

(** Event-name histogram of a raw JSONL trace string. *)
let count_events contents =
  let counts = Hashtbl.create 8 in
  String.split_on_char '\n' contents
  |> List.iter (fun line ->
         if String.trim line <> "" then begin
           let _, ev, _ = parse_line line in
           Hashtbl.replace counts ev
             (1 + Option.value ~default:0 (Hashtbl.find_opt counts ev))
         end);
  counts
