(** Minimal JSON values: enough to emit and validate the simulator's
    machine-readable surfaces ([--stats-json], the JSONL trace, the bench
    baseline) without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (used for JSONL trace records). *)

val to_string_pretty : t -> string
(** Two-space-indented rendering; arrays of scalars stay on one line. *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

exception Parse_error of string

val of_string : string -> t
(** Parse one JSON document. @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** [member k (Obj ...)] looks up key [k]; [None] on non-objects too. *)

val to_int : t -> int option
val to_float : t -> float option
(** [Int] values widen to float. *)

val to_str : t -> string option
