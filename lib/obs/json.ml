(** Minimal JSON support for the observability layer.

    The simulator's machine-readable surfaces (the [--stats-json] snapshot,
    the JSONL event trace, the bench baseline) only need flat-ish JSON with
    objects, arrays, strings, ints and floats. This module provides exactly
    that — a value type, a printer and a recursive-descent parser — so the
    emitted files can be validated in-tree (tests and the runtest smoke
    rule) without an external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(** Two-space-indented rendering for files meant to be read by humans too
    (the [--stats-json] snapshot). Arrays of scalars stay on one line. *)
let to_string_pretty v =
  let buf = Buffer.create 1024 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let is_scalar = function
    | Null | Bool _ | Int _ | Float _ | String _ -> true
    | List _ | Obj _ -> false
  in
  let rec go ind v =
    match v with
    | List xs when List.for_all is_scalar xs -> write buf v
    | List [] | Obj [] -> write buf v
    | List xs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (ind + 2);
          go (ind + 2) x)
        xs;
      Buffer.add_char buf '\n';
      pad ind;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (ind + 2);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          go (ind + 2) x)
        kvs;
      Buffer.add_char buf '\n';
      pad ind;
      Buffer.add_char buf '}'
    | _ -> write buf v
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' -> Buffer.add_char buf e; go ()
        | 'n' -> Buffer.add_char buf '\n'; go ()
        | 'r' -> Buffer.add_char buf '\r'; go ()
        | 't' -> Buffer.add_char buf '\t'; go ()
        | 'b' -> Buffer.add_char buf '\b'; go ()
        | 'f' -> Buffer.add_char buf '\012'; go ()
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape"
          in
          (* non-BMP/multibyte fidelity is not needed for our own files *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
          go ()
        | _ -> fail "bad escape")
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> String (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
