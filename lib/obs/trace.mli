(** Bounded JSONL event tracer: one JSON object per line, zero allocation
    when disabled (guard event construction with {!enabled}).

    Record shape: [{"cycle":C,"ev":"<name>", ...fields}] where [C] is the
    machine cycle at the start of the step that produced the event. After
    [limit] records, further events are counted in {!dropped} instead of
    written. *)

type event =
  | Engine_switch of { to_vliw : bool; pc : int }
  | Block_flush of { tag : int; lis : int; slots : int }
  | Block_install of { tag : int }
  | Block_evict of { tag : int }
  | Block_fetch of { tag : int }
  | Aliasing_violation of { tag : int; li : int }
  | Checkpoint_recovery of { undone : int }
  | Job_submitted of { id : int; kind : string }
  | Job_shard_done of { id : int; shard : int; shards : int }
  | Job_retry of { id : int; shard : int; attempt : int }
  | Job_done of { id : int; ok : bool }
  | Job_canceled of { id : int }
      (** The [Job_*] events are the campaign-server job lifecycle
          ([dtsvliw_serve --trace]); their [cycle] field carries the
          daemon's monotone event sequence number instead of a machine
          cycle. *)

val event_name : event -> string
val event_names : string list

type t = {
  mutable now : int;
  limit : int;
  mutable emitted : int;
  mutable dropped : int;
  sink : sink;
}

and sink = Null | Channel of out_channel | Memory of Buffer.t

val default_limit : int
(** 1,000,000 records. *)

val null : t
(** The shared disabled tracer; {!emit} and {!stamp} on it are no-ops. *)

val to_channel : ?limit:int -> out_channel -> t
val to_buffer : ?limit:int -> Buffer.t -> t

val enabled : t -> bool
(** [false] exactly for the null sink — call sites use this to skip event
    construction entirely when tracing is off. *)

val stamp : t -> int -> unit
(** Record the current machine cycle; subsequent events carry it. *)

val emit : t -> event -> unit
val emitted : t -> int
val dropped : t -> int

val close : t -> unit
(** Flush a channel sink (the caller owns and closes the channel). *)

val parse_line : string -> int * string * Json.t
(** One JSONL record as [(cycle, event-name, parsed object)].
    @raise Json.Parse_error or [Failure] on malformed records. *)

val count_events : string -> (string, int) Hashtbl.t
(** Event-name histogram of a raw JSONL string (blank lines ignored). *)
