(** Run statistics: the machine-side mutable collector and the immutable
    consolidated snapshot ([Machine.stats]) that consumers derive metrics
    from instead of reading machine internals. *)

val slot_class_names : string array
(** ["int"; "mem"; "fp"; "br"; "copy"] — the four functional-unit classes
    plus scheduler-generated copies. *)

val n_slot_classes : int

(** Mutable accumulator owned by [Dts_core.Machine]; treat as internal and
    read it through [Machine.stats] snapshots. *)
type collector = {
  attr : Attribution.t;
  tracer : Trace.t;
  mutable nlp_hits : int;
  mutable nlp_misses : int;
  mutable engine_switches : int;
  mutable blocks_flushed : int;
  mutable slots_filled : int;
  mutable slots_total : int;
  mutable block_lis : int;
  mutable insert_full : int;
      (** scheduling-list-full events (flush-on-full rule) *)
  mutable pending_high_water : int;
      (** max blocks simultaneously draining to the VLIW Cache *)
  mutable plans_compiled : int;  (** blocks compiled into execution plans *)
  mutable plan_hits : int;  (** VLIW entries served by a cached plan *)
  mutable code_invalidations : int;
      (** cached blocks dropped by stores hitting their code words *)
  rr_max : int array;  (** per-kind renaming-register high water *)
  slots_by_class : int array;  (** indexed like {!slot_class_names} *)
}

val collector : ?tracer:Trace.t -> unit -> collector

(** One immutable snapshot of everything measured in a run. *)
type t = {
  cycles : int;
  vliw_cycles : int;
  instructions : int;  (** sequential instructions (golden-machine count) *)
  attribution : int array;  (** indexed by {!Attribution.index} *)
  engine_switches : int;
  blocks_flushed : int;
  block_lis : int;
  slots_filled : int;
  slots_total : int;
  slots_by_class : int array;
  rr_max : int array;  (** int, fp, flag, mem *)
  nlp_hits : int;
  nlp_misses : int;
  insert_full : int;
  pending_high_water : int;
  syncs : int;
  plans_compiled : int;
  plan_hits : int;
  wdelta_variants : int;  (** shifted window-delta plan variants built *)
  code_invalidations : int;
  max_load_list : int;
  max_store_list : int;
  max_recovery_list : int;
  max_data_store_list : int;
  aliasing_exceptions : int;
  deferred_exceptions : int;
  block_exceptions : int;
  mispredicts : int;
  lis_executed : int;
  ops_committed : int;
  copies_committed : int;
  icache_hits : int;
  icache_misses : int;
  dcache_hits : int;
  dcache_misses : int;
  vcache_hits : int;
  vcache_misses : int;
  vcache_insertions : int;
  vcache_evictions : int;
  trace_emitted : int;
  trace_dropped : int;
}

val ipc : t -> float
(** Sequential instructions / machine cycles — the paper's metric. *)

val vliw_cycle_fraction : t -> float
val slot_utilisation : t -> float

val attributed_total : t -> int
(** Sum of all attribution categories; equals [cycles] by invariant. *)

val attributed_vliw : t -> int
(** Sum of the VLIW-side categories; equals [vliw_cycles] by invariant. *)

val invariant_holds : t -> bool

val schema_version : int

val to_json : t -> Json.t
val to_json_string : t -> string
(** The [--stats-json] document (pretty-printed, newline-terminated). *)
