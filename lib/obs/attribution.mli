(** Cycle attribution: every machine cycle is charged to exactly one typed
    category, with the invariant (test-enforced) that the categories sum to
    [Machine.cycles] and the VLIW-side categories to [Machine.vliw_cycles]. *)

type category =
  | Primary_execute
      (** Primary pipeline cycles: issue, execute latencies, branch and
          load-use bubbles, trap service *)
  | Primary_icache_stall  (** Primary instruction-cache miss penalties *)
  | Primary_dcache_stall  (** Primary data-cache miss penalties *)
  | Switch_to_vliw  (** engine-switch bubble entering the VLIW Engine *)
  | Switch_to_primary
      (** bubble returning to the Primary after a clean block exit with no
          successor block *)
  | Vliw_execute  (** one cycle per long instruction executed *)
  | Vliw_dcache_stall
      (** VLIW data-cache miss penalties, including data-store-list drain *)
  | Next_li_penalty  (** block-chaining fetch penalty (§4.4) *)
  | Mispredict_redirect  (** annulled-fetch bubble on a mispredicted tag *)
  | Recovery_switch
      (** bubble returning to the Primary after an aliasing or
          checkpoint-recovery rollback (§3.10/§3.11) *)

val all : category list
(** Every category, in [index] order. *)

val n_categories : int
val index : category -> int

val name : category -> string
(** Snake-case JSON key. *)

val label : category -> string
(** Human-readable table label. *)

val vliw_categories : category list
(** The categories also counted in [Machine.vliw_cycles]. *)

type t = int array
(** Mutable per-machine accumulator, indexed by {!index}. *)

val create : unit -> t
val charge : t -> category -> int -> unit
val get : t -> category -> int
val snapshot : t -> int array
val total : t -> int

val sum_of : int array -> category list -> int
(** Sum a snapshot over a category subset. *)

val vliw_total : int array -> int
val to_assoc : int array -> (string * int) list
