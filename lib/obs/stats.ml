(** Run statistics: a mutable collector the machine updates while it runs,
    and an immutable snapshot record consolidating every counter the
    simulator maintains — machine, scheduler, VLIW engine, caches and
    tracer — in one typed value.

    The snapshot replaces the loose mutable telemetry fields that used to
    live directly on [Machine.t]; consumers take a [Machine.stats] snapshot
    and derive metrics ({!ipc}, {!vliw_cycle_fraction}, {!slot_utilisation})
    from it instead of poking at machine internals. *)

(** Slot-occupancy classes: the four functional-unit classes plus the
    scheduler-generated copy instructions. *)
let slot_class_names = [| "int"; "mem"; "fp"; "br"; "copy" |]

let n_slot_classes = Array.length slot_class_names

(** The machine-side mutable accumulator. Owned and updated by
    [Dts_core.Machine]; read through [Machine.stats] snapshots. *)
type collector = {
  attr : Attribution.t;  (** cycle attribution accumulator *)
  tracer : Trace.t;  (** event tracer ({!Trace.null} when disabled) *)
  mutable nlp_hits : int;
  mutable nlp_misses : int;
  mutable engine_switches : int;
  mutable blocks_flushed : int;
  mutable slots_filled : int;
  mutable slots_total : int;
  mutable block_lis : int;
  mutable insert_full : int;
      (** scheduling-list-full events (the paper's flush-on-full rule) *)
  mutable pending_high_water : int;
      (** max blocks simultaneously draining to the VLIW Cache *)
  mutable plans_compiled : int;
      (** blocks compiled into execution plans at VLIW-mode entry *)
  mutable plan_hits : int;
      (** VLIW-mode entries served by an already-compiled plan *)
  mutable code_invalidations : int;
      (** cached blocks dropped because a store hit their code words *)
  rr_max : int array;
      (** max renaming registers per kind over all blocks (int/fp/flag/mem) *)
  slots_by_class : int array;
      (** filled slots of flushed blocks, indexed like {!slot_class_names} *)
}

let collector ?(tracer = Trace.null) () =
  {
    attr = Attribution.create ();
    tracer;
    nlp_hits = 0;
    nlp_misses = 0;
    engine_switches = 0;
    blocks_flushed = 0;
    slots_filled = 0;
    slots_total = 0;
    block_lis = 0;
    insert_full = 0;
    pending_high_water = 0;
    plans_compiled = 0;
    plan_hits = 0;
    code_invalidations = 0;
    rr_max = Array.make 4 0;
    slots_by_class = Array.make n_slot_classes 0;
  }

(** One immutable snapshot of everything measured in a run. *)
type t = {
  cycles : int;
  vliw_cycles : int;
  instructions : int;  (** sequential instructions (golden-machine count) *)
  attribution : int array;  (** indexed by {!Attribution.index} *)
  (* machine counters *)
  engine_switches : int;
  blocks_flushed : int;
  block_lis : int;
  slots_filled : int;
  slots_total : int;
  slots_by_class : int array;  (** indexed like {!slot_class_names} *)
  rr_max : int array;  (** int, fp, flag, mem *)
  nlp_hits : int;
  nlp_misses : int;
  insert_full : int;
  pending_high_water : int;
  syncs : int;  (** test-mode golden synchronisation points *)
  (* plan cache (install-time block compilation) *)
  plans_compiled : int;
  plan_hits : int;
  wdelta_variants : int;
      (** shifted window-delta variants built for compiled plans *)
  code_invalidations : int;
      (** cached blocks invalidated by stores to their code words *)
  (* VLIW Engine counters *)
  max_load_list : int;
  max_store_list : int;
  max_recovery_list : int;
  max_data_store_list : int;
  aliasing_exceptions : int;
  deferred_exceptions : int;
  block_exceptions : int;
  mispredicts : int;
  lis_executed : int;
  ops_committed : int;
  copies_committed : int;
  (* caches *)
  icache_hits : int;
  icache_misses : int;
  dcache_hits : int;
  dcache_misses : int;
  vcache_hits : int;
  vcache_misses : int;
  vcache_insertions : int;
  vcache_evictions : int;
  (* tracer *)
  trace_emitted : int;
  trace_dropped : int;
}

(* ------------------------------------------------------------------ *)
(* Derived metrics                                                      *)
(* ------------------------------------------------------------------ *)

let ipc s = float_of_int s.instructions /. float_of_int (max 1 s.cycles)

let vliw_cycle_fraction s =
  float_of_int s.vliw_cycles /. float_of_int (max 1 s.cycles)

let slot_utilisation s =
  float_of_int s.slots_filled /. float_of_int (max 1 s.slots_total)

let attributed_total s = Attribution.total s.attribution
let attributed_vliw s = Attribution.vliw_total s.attribution

(** The cycle-attribution invariant: categories sum to the machine's total
    cycle count and the VLIW categories to its VLIW cycle count. *)
let invariant_holds s =
  attributed_total s = s.cycles && attributed_vliw s = s.vliw_cycles

(* ------------------------------------------------------------------ *)
(* JSON snapshot (the [--stats-json] schema)                            *)
(* ------------------------------------------------------------------ *)

(* v2: adds the "plan" section (install-time block compilation) *)
let schema_version = 2

let to_json s : Json.t =
  let i k v = (k, Json.Int v) in
  let f k v = (k, Json.Float v) in
  Obj
    [
      i "schema_version" schema_version;
      i "cycles" s.cycles;
      i "vliw_cycles" s.vliw_cycles;
      i "instructions" s.instructions;
      f "ipc" (ipc s);
      f "vliw_cycle_fraction" (vliw_cycle_fraction s);
      f "slot_utilisation" (slot_utilisation s);
      ( "attribution",
        Obj (List.map (fun (k, v) -> i k v) (Attribution.to_assoc s.attribution))
      );
      ( "machine",
        Obj
          [
            i "engine_switches" s.engine_switches;
            i "blocks_flushed" s.blocks_flushed;
            i "block_lis" s.block_lis;
            i "slots_filled" s.slots_filled;
            i "slots_total" s.slots_total;
            ( "slots_by_class",
              Obj
                (List.mapi
                   (fun k name -> i name s.slots_by_class.(k))
                   (Array.to_list slot_class_names)) );
            ( "rr_max",
              Obj
                [
                  i "int" s.rr_max.(0);
                  i "fp" s.rr_max.(1);
                  i "flag" s.rr_max.(2);
                  i "mem" s.rr_max.(3);
                ] );
            i "nlp_hits" s.nlp_hits;
            i "nlp_misses" s.nlp_misses;
            i "insert_full" s.insert_full;
            i "pending_high_water" s.pending_high_water;
            i "syncs" s.syncs;
          ] );
      ( "plan",
        Obj
          [
            i "plans_compiled" s.plans_compiled;
            i "plan_hits" s.plan_hits;
            i "wdelta_variants" s.wdelta_variants;
            i "code_invalidations" s.code_invalidations;
          ] );
      ( "engine",
        Obj
          [
            i "max_load_list" s.max_load_list;
            i "max_store_list" s.max_store_list;
            i "max_recovery_list" s.max_recovery_list;
            i "max_data_store_list" s.max_data_store_list;
            i "aliasing_exceptions" s.aliasing_exceptions;
            i "deferred_exceptions" s.deferred_exceptions;
            i "block_exceptions" s.block_exceptions;
            i "mispredicts" s.mispredicts;
            i "lis_executed" s.lis_executed;
            i "ops_committed" s.ops_committed;
            i "copies_committed" s.copies_committed;
          ] );
      ( "caches",
        Obj
          [
            i "icache_hits" s.icache_hits;
            i "icache_misses" s.icache_misses;
            i "dcache_hits" s.dcache_hits;
            i "dcache_misses" s.dcache_misses;
            i "vcache_hits" s.vcache_hits;
            i "vcache_misses" s.vcache_misses;
            i "vcache_insertions" s.vcache_insertions;
            i "vcache_evictions" s.vcache_evictions;
          ] );
      ( "trace",
        Obj [ i "emitted" s.trace_emitted; i "dropped" s.trace_dropped ] );
    ]

let to_json_string s = Json.to_string_pretty (to_json s) ^ "\n"
