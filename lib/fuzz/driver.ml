(** Campaign orchestration: generate → differentially run → shrink → emit
    reproducers.

    Determinism contract: program [i] of a campaign is generated from
    [Sprng.derive seed i], so the sequence of programs — and therefore of
    verdicts — depends only on [(seed, count, max_insns)]. With [~jobs > 1]
    the verdicts are computed on a {!Dts_parallel.Pool}, whose [map] returns
    results in submission order, so campaign output is bit-identical for
    every jobs value. Shrinking and reproducer writing happen sequentially
    in the caller after the fan-out. *)

type failure = {
  f_index : int;  (** program index within the campaign *)
  f_seed : int;  (** derived per-program seed *)
  f_divs : Diff.divergence list;  (** divergences of the original program *)
  f_shrunk : Dts_asm.Program.t;  (** minimised reproducer program *)
  f_live : int;  (** live instructions of the shrunk program *)
  f_path : string option;  (** reproducer file, when an out dir was given *)
}

type summary = {
  s_count : int;
  s_passed : int;
  s_skips : (int * int * string) list;
      (** (index, seed, reason) of programs the golden machine itself did
          not finish cleanly — should be rare; a fault reason here is a
          generator bug *)
  s_instructions : int;  (** total sequential instructions across passes *)
  s_failures : failure list;
}

let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    ensure_dir (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let describe_div (d : Diff.divergence) =
  Printf.sprintf "%s%s: %s" d.d_engine
    (match d.d_first_pc with
    | Some pc -> Printf.sprintf " (first divergent pc %#x)" pc
    | None -> "")
    d.d_detail

(** Shrink a failing program and (optionally) write its reproducer file.
    The reproducer records the divergences of the {e shrunk} program. *)
let process_failure ~geoms ~fuel ~shrink ~out_dir ~index ~seed program divs =
  let shrunk =
    if shrink then
      Shrink.shrink ~check:(fun p -> Diff.diverges ~geoms ~fuel p) program
    else program
  in
  let final_divs =
    match Diff.run ~geoms ~fuel shrunk with Diff.Fail d -> d | _ -> divs
  in
  let path =
    match out_dir with
    | None -> None
    | Some dir ->
      ensure_dir dir;
      let path = Filename.concat dir (Printf.sprintf "seed-%d.srisc" seed) in
      Repro.save ~path ~seed ~geoms:(Diff.geoms_to_string geoms)
        ~notes:(List.map describe_div final_divs)
        shrunk;
      Some path
  in
  {
    f_index = index;
    f_seed = seed;
    f_divs = divs;
    f_shrunk = shrunk;
    f_live = Shrink.live_instructions shrunk;
    f_path = path;
  }

(** Evaluate campaign item [i]: generate program [derive seed i] and run
    it on every engine. Returns [(i, per-program seed, verdict)] — plain
    data, so shards of a campaign can be evaluated in separate processes
    and reassembled by index. *)
let item ~geoms ~max_insns ~seed i =
  let fuel = Gen.dynamic_bound ~max_insns in
  let pseed = Sprng.derive seed i in
  let program = Gen.generate ~max_insns ~seed:pseed () in
  (i, pseed, Diff.run ~geoms ~fuel program)

(** Fold index-ordered verdicts into a campaign {!summary}. Failing
    programs are regenerated from their per-program seed, shrunk and
    (optionally) written out — sequentially, in index order, so the
    summary depends only on the verdict list. *)
let summarize ?(geoms = `All) ?(max_insns = Gen.default_max_insns)
    ?(shrink = true) ?out_dir ~count verdicts =
  let fuel = Gen.dynamic_bound ~max_insns in
  let passed = ref 0 and skips = ref [] and instructions = ref 0 in
  let failures =
    List.filter_map
      (fun (i, pseed, verdict) ->
        match verdict with
        | Diff.Pass { instret } ->
          incr passed;
          instructions := !instructions + instret;
          None
        | Diff.Skip reason ->
          skips := (i, pseed, reason) :: !skips;
          None
        | Diff.Fail divs ->
          let program = Gen.generate ~max_insns ~seed:pseed () in
          Some
            (process_failure ~geoms ~fuel ~shrink ~out_dir ~index:i
               ~seed:pseed program divs))
      verdicts
  in
  {
    s_count = count;
    s_passed = !passed;
    s_skips = List.rev !skips;
    s_instructions = !instructions;
    s_failures = failures;
  }

let run_campaign ?(jobs = 1) ?(geoms = `All) ?(max_insns = Gen.default_max_insns)
    ?(shrink = true) ?out_dir ~seed ~count () =
  let verdicts =
    Dts_parallel.Pool.with_pool ~jobs (fun pool ->
        Dts_parallel.Pool.map pool
          (item ~geoms ~max_insns ~seed)
          (List.init count Fun.id))
  in
  summarize ~geoms ~max_insns ~shrink ?out_dir ~count verdicts

(** Replay a reproducer file on the full roster. *)
let replay ?(geoms = `All) path =
  let program = Repro.load path in
  Diff.run ~geoms ~fuel:5_000_000 program
