(** Multi-engine differential runner.

    One generated program is executed on every engine family of the
    repository — Golden (the reference), the Primary Processor alone, the
    DTSVLIW machine interpreted and through compiled plans on the ideal and
    feasible geometries, and the DIF baseline — and the final architectural
    states are compared: registers and flags ({!Dts_isa.State.regs_equal}),
    memory ({!Dts_mem.Memory.equal}) and the architectural instruction
    count (golden-side sequential retirements).

    The DTSVLIW/DIF machines already co-simulate against their own internal
    golden model and raise {!Dts_core.Machine.Test_mode_mismatch} at the
    first divergent synchronisation point; the runner additionally
    localises divergences to a first divergent PC — by step-lockstep replay
    against a fresh golden machine for the Primary, and by re-running the
    machine with [memcmp_interval = 1] (a full memory comparison at every
    sync point) for the block engines. *)

open Dts_isa

type outcome =
  | Finished of { st : State.t; instret : int }
  | Timeout  (** fuel exhausted without [Halt] *)
  | Mismatch of { cycle : int; pc : int; detail : string }
  | Fault of string  (** an exception escaped the engine *)

type divergence = {
  d_engine : string;
  d_detail : string;
  d_first_pc : int option;  (** first divergent PC, when localisable *)
}

type verdict =
  | Pass of { instret : int }
  | Skip of string
      (** the golden machine itself did not finish cleanly — the program is
          outside the generator's contract and carries no signal *)
  | Fail of divergence list

(** Which DTSVLIW geometries to exercise. *)
type geoms = [ `Ideal | `Feasible | `All ]

let geoms_of_string = function
  | "ideal" -> Some `Ideal
  | "feasible" -> Some `Feasible
  | "all" -> Some `All
  | _ -> None

let geoms_to_string = function
  | `Ideal -> "ideal"
  | `Feasible -> "feasible"
  | `All -> "all"

(* ---------- engines ---------- *)

let perfect_cache () = Dts_core.Config.make_cache Dts_core.Config.Perfect

let run_golden program ~fuel =
  let st = Dts_asm.Program.boot program in
  let g = Dts_golden.Golden.of_state st in
  match Dts_golden.Golden.run ~max_instructions:fuel g with
  | _ ->
    if st.halted then Finished { st; instret = st.instret } else Timeout
  | exception Semantics.Fatal_fault m -> Fault ("Fatal_fault: " ^ m)
  | exception e -> Fault (Printexc.to_string e)

let run_primary program ~fuel =
  let st = Dts_asm.Program.boot program in
  let p =
    Dts_primary.Primary.create ~icache:(perfect_cache ())
      ~dcache:(perfect_cache ()) st
  in
  match Dts_primary.Primary.run ~max_instructions:fuel p with
  | _ -> if st.halted then Finished { st; instret = st.instret } else Timeout
  | exception Dts_primary.Primary.Halted ->
    Finished { st; instret = st.instret }
  | exception Semantics.Fatal_fault m -> Fault ("Fatal_fault: " ^ m)
  | exception e -> Fault (Printexc.to_string e)

let finish_machine (m : Dts_core.Machine.t) =
  if m.halted then
    Finished { st = m.st; instret = (Dts_core.Machine.stats m).instructions }
  else Timeout

let run_machine ~compile ?scheduler ~cfg program ~fuel =
  match
    let m = Dts_core.Machine.create ~compile ?scheduler cfg program in
    ignore (Dts_core.Machine.run ~max_instructions:fuel m);
    m
  with
  | m -> finish_machine m
  | exception Dts_core.Machine.Test_mode_mismatch { cycle; pc; detail } ->
    Mismatch { cycle; pc; detail }
  | exception Semantics.Fatal_fault m -> Fault ("Fatal_fault: " ^ m)
  | exception e -> Fault (Printexc.to_string e)

let run_dif ~cfg program ~fuel =
  match
    let m, _ = Dts_dif.Dif.machine ~machine_cfg:cfg program in
    ignore (Dts_core.Machine.run ~max_instructions:fuel m);
    m
  with
  | m -> finish_machine m
  | exception Dts_core.Machine.Test_mode_mismatch { cycle; pc; detail } ->
    Mismatch { cycle; pc; detail }
  | exception Semantics.Fatal_fault m -> Fault ("Fatal_fault: " ^ m)
  | exception e -> Fault (Printexc.to_string e)

(* ---------- first-divergent-PC localisation ---------- *)

(** Step-lockstep replay: a fresh golden machine and a fresh Primary advance
    one instruction at a time; the first step after which the two
    architectural states disagree (or one halts and the other does not)
    names the divergent PC. *)
let lockstep_primary program ~fuel =
  let stg = Dts_asm.Program.boot program in
  let stp = Dts_asm.Program.boot program in
  let g = Dts_golden.Golden.of_state stg in
  let p =
    Dts_primary.Primary.create ~icache:(perfect_cache ())
      ~dcache:(perfect_cache ()) stp
  in
  let res = ref None in
  (try
     for _ = 1 to fuel do
       let pc = stg.pc in
       let ghalt =
         try
           Dts_golden.Golden.step g;
           false
         with Dts_golden.Golden.Program_halted -> true
       in
       let phalt =
         try
           ignore (Dts_primary.Primary.step p);
           false
         with
         | Dts_primary.Primary.Halted -> true
         | Semantics.Fatal_fault _ -> true
       in
       if ghalt <> phalt || not (State.regs_equal stg stp) then begin
         res := Some pc;
         raise Exit
       end;
       if ghalt then raise Exit
     done
   with Exit -> ());
  !res

(** Re-run a machine engine with a full memory comparison at every
    synchronisation point; the mismatch exception then carries the PC of
    the first divergent sync. *)
let localize_machine ~compile ?scheduler ~cfg program ~fuel =
  let cfg = { cfg with Dts_core.Config.memcmp_interval = 1 } in
  match run_machine ~compile ?scheduler ~cfg program ~fuel with
  | Mismatch { pc; _ } -> Some pc
  | _ -> None

let localize_dif ~cfg program ~fuel =
  let cfg = { cfg with Dts_core.Config.memcmp_interval = 1 } in
  match run_dif ~cfg program ~fuel with
  | Mismatch { pc; _ } -> Some pc
  | _ -> None

(* ---------- the engine roster ---------- *)

type engine = {
  e_name : string;
  e_run : Dts_asm.Program.t -> fuel:int -> outcome;
  e_localize : Dts_asm.Program.t -> fuel:int -> int option;
}

let engines (geoms : geoms) : engine list =
  let cfgs =
    match geoms with
    | `Ideal -> [ ("ideal", Dts_core.Config.ideal ()) ]
    | `Feasible -> [ ("feasible", Dts_core.Config.feasible ()) ]
    | `All ->
      [
        ("ideal", Dts_core.Config.ideal ());
        ("feasible", Dts_core.Config.feasible ());
      ]
  in
  let dif_cfg = Dts_dif.Dif.fig9_machine_cfg () in
  {
    e_name = "primary";
    e_run = run_primary;
    e_localize = (fun p ~fuel -> lockstep_primary p ~fuel);
  }
  :: List.concat_map
       (fun (gname, cfg) ->
         List.map
           (fun compile ->
             {
               e_name =
                 Printf.sprintf "dtsvliw-%s-%s"
                   (if compile then "compiled" else "interpreted")
                   gname;
               e_run = (fun p ~fuel -> run_machine ~compile ~cfg p ~fuel);
               e_localize =
                 (fun p ~fuel -> localize_machine ~compile ~cfg p ~fuel);
             })
           [ false; true ]
         (* The optimality-oracle backend: every block the Scheduler Unit
            finishes is replaced by the branch-and-bound oracle's best
            schedule (rebuilt, tags recomputed, independently re-checked)
            before installation, so the machine executes oracle schedules
            under golden co-simulation. A modelling error in the oracle
            surfaces as a test-mode mismatch, a failed invariant check
            (Fault), or a final-state divergence. Interpreted execution
            only — the plan compiler has its own differential engines. *)
         @ [
             (let scheduler = Dts_opt.Opt.rescheduling_scheduler cfg in
              {
                e_name = Printf.sprintf "dtsvliw-opt-%s" gname;
                e_run =
                  (fun p ~fuel ->
                    run_machine ~compile:false ~scheduler ~cfg p ~fuel);
                e_localize =
                  (fun p ~fuel ->
                    localize_machine ~compile:false ~scheduler ~cfg p ~fuel);
              });
           ])
       cfgs
  @ [
      {
        e_name = "dif";
        e_run = (fun p ~fuel -> run_dif ~cfg:dif_cfg p ~fuel);
        e_localize = (fun p ~fuel -> localize_dif ~cfg:dif_cfg p ~fuel);
      };
    ]

(* ---------- comparison ---------- *)

let compare_to_reference ~(ref_st : State.t) (e : engine) program ~fuel =
  match e.e_run program ~fuel with
  | Finished { st; instret } ->
    let regs_ok = State.regs_equal ref_st st in
    let mem_ok = Dts_mem.Memory.equal ref_st.mem st.mem in
    let count_ok = instret = ref_st.instret in
    if regs_ok && mem_ok && count_ok then None
    else
      let detail =
        Format.asprintf "final state differs (golden vs %s):@ %a%s" e.e_name
          State.pp_diff (ref_st, st)
          (if count_ok then ""
           else Printf.sprintf "instret %d vs %d" ref_st.instret instret)
      in
      Some
        {
          d_engine = e.e_name;
          d_detail = detail;
          d_first_pc = e.e_localize program ~fuel;
        }
  | Timeout ->
    Some
      {
        d_engine = e.e_name;
        d_detail = "did not halt within fuel (golden halted)";
        d_first_pc = None;
      }
  | Mismatch { cycle; pc; detail } ->
    Some
      {
        d_engine = e.e_name;
        d_detail = Printf.sprintf "test-mode mismatch at cycle %d: %s" cycle detail;
        d_first_pc = Some pc;
      }
  | Fault msg ->
    Some { d_engine = e.e_name; d_detail = msg; d_first_pc = None }

(** Run [program] on the full engine roster and compare everything to the
    golden reference. *)
let run ?(geoms = `All) ~fuel program =
  match run_golden program ~fuel with
  | Timeout -> Skip "golden did not halt within fuel"
  | Fault m -> Skip ("golden fault: " ^ m)
  | Mismatch _ -> assert false (* golden does not co-simulate *)
  | Finished { st = ref_st; instret } -> (
    match
      List.filter_map
        (fun e -> compare_to_reference ~ref_st e program ~fuel)
        (engines geoms)
    with
    | [] -> Pass { instret }
    | divs -> Fail divs)

(** [true] iff the program halts cleanly on golden and at least one engine
    diverges — the shrinker's interestingness predicate. *)
let diverges ?geoms ~fuel program =
  match run ?geoms ~fuel program with Fail _ -> true | Pass _ | Skip _ -> false
