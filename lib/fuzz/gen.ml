(** Seeded, constraint-aware random SRISC program generator.

    Programs are built from a tree of structured constructs and then
    flattened to absolute addresses, which makes three properties hold {e by
    construction} rather than by filtering:

    - {b Termination.} The only back-edges are counted loops whose counter
      lives in a reserved global ([%g5]–[%g7]) that no generated instruction
      ever writes; every other construct is forward-only. A program's
      dynamic length is bounded by (product of enclosing loop counts) ×
      static length, and loop counts and nesting are capped.
    - {b Alignment.} Every load/store address is [%g4] (the reserved arena
      base, set once in the prologue and never written again) plus either an
      immediate offset aligned to the access size, or a computed offset
      masked to the arena and shifted into word alignment — so the
      [Fatal_fault] a misaligned access escalates to cannot occur.
    - {b Window balance.} [save]/[restore] only appear as matched pairs
      inside a single construct ([Window], [Deepwin], [Callfn]), so the
      window depth at any program point is control-flow independent and
      restores can never underflow an empty spill stack. Depth runs beyond
      [nwindows - 2] are generated deliberately ([Deepwin]) to exercise the
      overflow/underflow spill-fill microroutine, including inside cached
      blocks.

    Within those constraints the generator aims for scheduler stress:
    icc-setting ALU ops feeding conditional branches, sethi/lo address
    formation, loads/stores confined to a small scratch arena with
    deliberately overlapping (aliasing) pairs, indirect jumps through
    generated jump tables, and loop back-edges so the same code is
    scheduled, cached, and re-executed from the VLIW Cache. *)

open Dts_isa

let arena_base = Layout.heap_base
let arena_bytes = 64
let arena_words = arena_bytes / 4

(* %g4 holds the arena base; %g5-%g7 are loop counters. None is ever the
   destination of a generated instruction outside its dedicated role. *)
let arena_reg = 4
let counter_regs = [ 5; 6; 7 ]

(* Destinations: everything except %g0, the reserved globals, %sp (14),
   %o7/%i7 (15/31: call/return linkage) and %fp (30). *)
let writable =
  [| 1; 2; 3; 8; 9; 10; 11; 12; 13; 16; 17; 18; 19; 20; 21; 22; 23;
     24; 25; 26; 27; 28; 29 |]

(* Sources: any destination, %g0, and the reserved registers (reading a
   live loop counter gives iteration-dependent values). *)
let readable = Array.append writable [| 0; 4; 5; 6; 7 |]

type node =
  | Ops of Instr.t list
  | Skip of { cc_op : Instr.t; cond : Instr.cond; body : node list }
  | Loop of { counter : int; count : int; body : node list }
  | Window of { save : Instr.t; restore : Instr.t; body : node list }
  | Deepwin of int  (** [k] straight-line saves then [k] restores *)
  | Callfn of { restore : Instr.t; body : node list }
  | Dispatch of { sel : int; ti : int; tt : int; bodies : node list list }

let rec size = function
  | Ops l -> List.length l
  | Skip { body; _ } -> 2 + size_list body
  | Loop { body; _ } -> 3 + size_list body
  | Window { body; _ } -> 2 + size_list body
  | Deepwin k -> 2 * k
  | Callfn { body; _ } -> 5 + size_list body
  | Dispatch { bodies; _ } ->
    6 + List.fold_left (fun a b -> a + size_list b + 1) 0 bodies

and size_list l = List.fold_left (fun a n -> a + size n) 0 l

(* ---------- random atoms ---------- *)

let wreg rng = Sprng.choose rng writable
let rreg rng = Sprng.choose rng readable

let operand rng =
  if Sprng.bool rng then Instr.Reg (rreg rng)
  else Instr.Imm (Sprng.range rng (-2048) 2047)

let alu_ops =
  [| Instr.Add; Sub; And; Andn; Or; Orn; Xor; Xnor; Sll; Srl; Sra;
     Smul; Umul; Sdiv; Udiv |]

let conds =
  [| Instr.E; NE; L; LE; G; GE; LU; LEU; GU; GEU; Neg; Pos |]

let gen_alu rng =
  Instr.Alu
    {
      op = Sprng.choose rng alu_ops;
      cc = Sprng.chance rng 1 4;
      rs1 = rreg rng;
      op2 = operand rng;
      rd = wreg rng;
    }

(* Aligned arena offset for an access of [size] bytes. *)
let arena_off rng bytes =
  let slots = arena_bytes / bytes in
  Sprng.int rng slots * bytes

let gen_load rng off size = Instr.Load { size; rs1 = arena_reg; op2 = Imm off; rd = wreg rng }
let gen_store rng off size = Instr.Store { size; rs = rreg rng; rs1 = arena_reg; op2 = Imm off }

let lsizes = [| Instr.Lsb; Lub; Lsh; Luh; Lw |]
let ssizes = [| Instr.Sb; Sh; Sw |]

let lsize_bytes = Instr.lsize_bytes
let ssize_bytes = Instr.ssize_bytes

(* A deliberately overlapping pair of memory accesses: a word-aligned base
   plus sub-word offsets so every combination of widths stays naturally
   aligned while still colliding. *)
let gen_alias_pair rng =
  let base = arena_off rng 4 in
  let acc () =
    if Sprng.bool rng then
      let size = Sprng.choose rng ssizes in
      let delta = Sprng.int rng (4 / ssize_bytes size) * ssize_bytes size in
      gen_store rng (base + delta) size
    else
      let size = Sprng.choose rng lsizes in
      let delta = Sprng.int rng (4 / lsize_bytes size) * lsize_bytes size in
      gen_load rng (base + delta) size
  in
  let a = acc () and b = acc () in
  (* optionally separate the pair so they land in different long
     instructions of a block *)
  if Sprng.chance rng 1 2 then [ a; b ] else [ a; gen_alu rng; b ]

(* A data-dependent, in-arena, word-aligned address: mask a register down
   to a word index, scale it, add the arena base. Sourcing the index from a
   live loop counter (half the time) is what arms the aliasing log: the
   address then changes between iterations, so a block scheduled from a
   trace where two accesses did not collide re-executes with them
   colliding — exactly the speculation the §3.10 runtime check must catch. *)
let gen_computed_mem rng =
  let t = wreg rng in
  let src =
    if Sprng.chance rng 1 2 then 5 + Sprng.int rng 3 (* %g5-%g7 *)
    else rreg rng
  in
  let pre =
    [
      Instr.Alu { op = And; cc = false; rs1 = src;
                  op2 = Imm (arena_words - 1); rd = t };
      Instr.Alu { op = Sll; cc = false; rs1 = t; op2 = Imm 2; rd = t };
      Instr.Alu { op = Add; cc = false; rs1 = t; op2 = Reg arena_reg; rd = t };
    ]
  in
  let access =
    if Sprng.bool rng then
      Instr.Load { size = Lw; rs1 = t; op2 = Imm 0; rd = wreg rng }
    else Instr.Store { size = Sw; rs = rreg rng; rs1 = t; op2 = Imm 0 }
  in
  pre @ [ access ]

(* The aliasing-log stressor: a counter-swept computed access next to a
   fixed-offset access at a low arena address. When this lands inside a
   loop, the trace the block is scheduled from (an early iteration, counter
   high) shows disjoint addresses — so the scheduler is free to reorder the
   pair — while a later VLIW-executed iteration (counter low) makes them
   collide, which the §3.10 runtime order check must catch and roll back.
   Loop counters count down to 1, so a fixed offset of 4 collides exactly
   on the final iteration. *)
let gen_alias_sweep rng =
  let t = wreg rng in
  let ctr = 5 + Sprng.int rng 3 in
  let fixed_off = 4 * Sprng.pick rng [ (4, 1); (1, 2); (1, 3) ] in
  let pre =
    [
      Instr.Alu { op = And; cc = false; rs1 = ctr;
                  op2 = Imm (arena_words - 1); rd = t };
      Instr.Alu { op = Sll; cc = false; rs1 = t; op2 = Imm 2; rd = t };
      Instr.Alu { op = Add; cc = false; rs1 = t; op2 = Reg arena_reg; rd = t };
    ]
  in
  if Sprng.bool rng then
    (* swept store then fixed load: the load may be hoisted above the
       store, and the final iteration makes the pair overlap *)
    pre
    @ [ Instr.Store { size = Sw; rs = rreg rng; rs1 = t; op2 = Imm 0 };
        Instr.Load { size = Lw; rs1 = arena_reg; op2 = Imm fixed_off;
                     rd = wreg rng } ]
  else
    (* swept load then fixed store: the store may be hoisted or split *)
    pre
    @ [ Instr.Load { size = Lw; rs1 = t; op2 = Imm 0; rd = wreg rng };
        Instr.Store { size = Sw; rs = rreg rng; rs1 = arena_reg;
                      op2 = Imm fixed_off } ]

let fpu_ops = [| Instr.Fadd; Fsub; Fmul; Fdiv; Fitos; Fstoi |]

let gen_fpu rng =
  Instr.Fpop
    {
      op = Sprng.choose rng fpu_ops;
      rs1 = Sprng.int rng 32;
      rs2 = Sprng.int rng 32;
      rd = Sprng.int rng 32;
    }

let gen_atom rng =
  Sprng.pick rng
    [
      (10, `Alu);
      (2, `Sethi);
      (6, `Load);
      (6, `Store);
      (6, `Alias);
      (4, `Computed);
      (6, `Sweep);
      (3, `Fpu);
      (2, `Fload);
      (2, `Fstore);
      (1, `Trap);
      (1, `Nop);
    ]
  |> function
  | `Alu -> [ gen_alu rng ]
  | `Sethi -> [ Instr.Sethi { imm = Sprng.int rng 0x400000; rd = wreg rng } ]
  | `Load ->
    let size = Sprng.choose rng lsizes in
    [ gen_load rng (arena_off rng (lsize_bytes size)) size ]
  | `Store ->
    let size = Sprng.choose rng ssizes in
    [ gen_store rng (arena_off rng (ssize_bytes size)) size ]
  | `Alias -> gen_alias_pair rng
  | `Computed -> gen_computed_mem rng
  | `Sweep -> gen_alias_sweep rng
  | `Fpu -> [ gen_fpu rng ]
  | `Fload ->
    [ Instr.Fload { rs1 = arena_reg; op2 = Imm (arena_off rng 4);
                    rd = Sprng.int rng 32 } ]
  | `Fstore ->
    [ Instr.Fstore { rd = Sprng.int rng 32; rs1 = arena_reg;
                     op2 = Imm (arena_off rng 4) } ]
  | `Trap -> [ Instr.Trap (Sprng.int rng 16) ]
  | `Nop -> [ Instr.Nop ]

(* An icc-setting comparison for a conditional branch. *)
let gen_cc_op rng =
  let op = Sprng.pick rng [ (4, Instr.Sub); (2, Add); (1, And); (1, Xor) ] in
  let rd = if Sprng.chance rng 2 3 then 0 else wreg rng in
  Instr.Alu { op; cc = true; rs1 = rreg rng; op2 = operand rng; rd }

let canonical_save = Instr.Save { rs1 = 14; op2 = Imm (-96); rd = 14 }

let gen_restore rng =
  let rd = if Sprng.chance rng 1 2 then 0 else wreg rng in
  Instr.Restore
    { rs1 = rreg rng; op2 = Imm (Sprng.range rng (-64) 64); rd }

(* ---------- construct tree ---------- *)

let rec gen_body rng ~depth ~budget ~counters =
  let nodes = ref [] in
  let budget = ref budget in
  while !budget > 0 do
    let n = gen_construct rng ~depth ~budget:!budget ~counters in
    let s = size n in
    if s <= !budget then begin
      nodes := n :: !nodes;
      budget := !budget - s
    end
    else budget := 0
  done;
  List.rev !nodes

and gen_construct rng ~depth ~budget ~counters =
  let sub_budget overhead =
    Sprng.range rng 3 (min 40 (max 3 (budget - overhead)))
  in
  let choices =
    [ (12, `Atom) ]
    @ (if budget >= 8 && depth < 4 then [ (4, `Skip) ] else [])
    @ (if budget >= 8 && depth < 4 && counters <> [] then [ (4, `Loop) ]
       else [])
    @ (if budget >= 8 && depth < 4 then [ (3, `Window) ] else [])
    @ (if budget >= 8 then [ (1, `Deepwin) ] else [])
    @ (if budget >= 12 && depth < 3 then [ (2, `Callfn) ] else [])
    @ (if budget >= 20 && depth < 3 then [ (2, `Dispatch) ] else [])
  in
  match Sprng.pick rng choices with
  | `Atom -> Ops (gen_atom rng)
  | `Skip ->
    Skip
      {
        cc_op = gen_cc_op rng;
        cond = Sprng.choose rng conds;
        body =
          gen_body rng ~depth:(depth + 1) ~budget:(sub_budget 2) ~counters;
      }
  | `Loop ->
    let counter = List.hd counters in
    Loop
      {
        counter;
        count = Sprng.range rng 2 5;
        body =
          gen_body rng ~depth:(depth + 1) ~budget:(sub_budget 3)
            ~counters:(List.tl counters);
      }
  | `Window ->
    Window
      {
        save = canonical_save;
        restore = gen_restore rng;
        body =
          gen_body rng ~depth:(depth + 1) ~budget:(sub_budget 2) ~counters;
      }
  | `Deepwin ->
    (* mostly shallow; occasionally deeper than nwindows - 2 = 30 resident
       windows so the spill/fill microroutine runs, possibly mid-block *)
    let k_max = min (budget / 2) 36 in
    let k =
      if Sprng.chance rng 1 4 then Sprng.range rng 2 k_max
      else Sprng.range rng 2 (min 6 k_max)
    in
    Deepwin k
  | `Callfn ->
    Callfn
      {
        restore = gen_restore rng;
        body =
          gen_body rng ~depth:(depth + 1) ~budget:(sub_budget 5) ~counters;
      }
  | `Dispatch ->
    let n_bodies = if Sprng.bool rng then 2 else 4 in
    let bodies =
      List.init n_bodies (fun _ ->
          gen_body rng ~depth:(depth + 1)
            ~budget:(Sprng.range rng 2 (max 2 ((budget - 10) / n_bodies)))
            ~counters)
    in
    (* the index and table-base temporaries must be distinct registers:
       the sethi over [tt] would otherwise clobber the computed index *)
    let ti = wreg rng in
    let rec pick_tt () =
      let r = wreg rng in
      if r = ti then pick_tt () else r
    in
    Dispatch { sel = rreg rng; ti; tt = pick_tt (); bodies }

(* ---------- flattening to absolute addresses ---------- *)

type ctx = {
  mutable addr : int;
  mutable code : (int * Instr.t) list;  (** reversed *)
  mutable data : (int * string) list;  (** reversed *)
  mutable data_addr : int;
}

let push ctx i =
  ctx.code <- (ctx.addr, i) :: ctx.code;
  ctx.addr <- ctx.addr + Instr.bytes

let alloc_table ctx words =
  let addr = ctx.data_addr in
  let b = Bytes.create (List.length words * 4) in
  List.iteri
    (fun i w ->
      Bytes.set_uint8 b (i * 4) ((w lsr 24) land 0xFF);
      Bytes.set_uint8 b ((i * 4) + 1) ((w lsr 16) land 0xFF);
      Bytes.set_uint8 b ((i * 4) + 2) ((w lsr 8) land 0xFF);
      Bytes.set_uint8 b ((i * 4) + 3) (w land 0xFF))
    words;
  ctx.data <- (addr, Bytes.to_string b) :: ctx.data;
  ctx.data_addr <- ctx.data_addr + Bytes.length b;
  addr

let rec emit ctx node =
  match node with
  | Ops l -> List.iter (push ctx) l
  | Skip { cc_op; cond; body } ->
    push ctx cc_op;
    let after = ctx.addr + (Instr.bytes * (1 + size_list body)) in
    push ctx (Branch { cond; target = after });
    List.iter (emit ctx) body
  | Loop { counter; count; body } ->
    push ctx (Alu { op = Or; cc = false; rs1 = 0; op2 = Imm count; rd = counter });
    let head = ctx.addr in
    List.iter (emit ctx) body;
    push ctx (Alu { op = Sub; cc = true; rs1 = counter; op2 = Imm 1; rd = counter });
    push ctx (Branch { cond = G; target = head })
  | Window { save; restore; body } ->
    push ctx save;
    List.iter (emit ctx) body;
    push ctx restore
  | Deepwin k ->
    for _ = 1 to k do
      push ctx canonical_save
    done;
    for _ = 1 to k do
      push ctx (Restore { rs1 = 0; op2 = Imm 0; rd = 0 })
    done
  | Callfn { restore; body } ->
    let fn = ctx.addr + (2 * Instr.bytes) in
    let after = fn + (Instr.bytes * (size_list body + 3)) in
    push ctx (Call { target = fn });
    push ctx (Branch { cond = A; target = after });
    push ctx canonical_save;
    List.iter (emit ctx) body;
    push ctx restore;
    (* the caller's %o7 holds the call site again after the restore *)
    push ctx (Jmpl { rs1 = 15; op2 = Imm 4; rd = 0 })
  | Dispatch { sel; ti; tt; bodies } ->
    let n = List.length bodies in
    (* body k starts after the 6-instruction dispatch header, offset by the
       sizes (each +1 for its trailing jump to the join point) of the
       bodies before it *)
    let header_end = ctx.addr + (6 * Instr.bytes) in
    let starts, join =
      List.fold_left
        (fun (starts, a) b ->
          (a :: starts, a + (Instr.bytes * (size_list b + 1))))
        ([], header_end) bodies
    in
    let starts = List.rev starts in
    let table = alloc_table ctx starts in
    push ctx (Alu { op = And; cc = false; rs1 = sel; op2 = Imm (n - 1); rd = ti });
    push ctx (Alu { op = Sll; cc = false; rs1 = ti; op2 = Imm 2; rd = ti });
    push ctx (Sethi { imm = table lsr 10; rd = tt });
    push ctx (Alu { op = Or; cc = false; rs1 = tt; op2 = Imm (table land 0x3FF); rd = tt });
    push ctx (Load { size = Lw; rs1 = tt; op2 = Reg ti; rd = tt });
    push ctx (Jmpl { rs1 = tt; op2 = Imm 0; rd = 0 });
    List.iter
      (fun b ->
        List.iter (emit ctx) b;
        push ctx (Branch { cond = A; target = join }))
      bodies

(* ---------- top level ---------- *)

let default_max_insns = 160

(** The seed-reproducibility contract: the program is a pure function of
    [(seed, max_insns)] and of this module's text — nothing else. *)
let generate ?(max_insns = default_max_insns) ~seed () : Dts_asm.Program.t =
  let rng = Sprng.create seed in
  let ctx =
    { addr = Layout.text_base; code = []; data = [];
      data_addr = Layout.data_base }
  in
  (* prologue: arena base, then seed registers and a few arena words so
     early loads see varied data *)
  push ctx (Sethi { imm = arena_base lsr 10; rd = arena_reg });
  push ctx
    (Alu { op = Or; cc = false; rs1 = arena_reg;
           op2 = Imm (arena_base land 0x3FF); rd = arena_reg });
  let seeded =
    List.init 5 (fun _ ->
        let r = wreg rng in
        push ctx
          (Alu { op = Or; cc = false; rs1 = 0;
                 op2 = Imm (Sprng.range rng (-2048) 2047); rd = r });
        r)
  in
  List.iteri
    (fun i r ->
      push ctx (Store { size = Sw; rs = r; rs1 = arena_reg; op2 = Imm (i * 4) }))
    seeded;
  let body =
    gen_body rng ~depth:0 ~budget:(max 8 max_insns) ~counters:counter_regs
  in
  List.iter (emit ctx) body;
  push ctx Halt;
  {
    entry = Layout.text_base;
    text = Array.of_list (List.rev ctx.code);
    data = List.rev ctx.data;
    symbols = [];
  }

(** Upper bound on the sequential instruction count of any generated
    program: loop counts are at most 5 and at most 3 deep, so no
    instruction runs more than 125 times (plus slack for the prologue). *)
let dynamic_bound ~max_insns = (130 * max_insns) + 10_000
