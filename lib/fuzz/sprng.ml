(** Self-contained splitmix64 PRNG.

    The fuzzer's reproducibility contract is "same seed, same program,
    forever" — including across OCaml releases — so it cannot lean on
    [Stdlib.Random] (whose algorithm and state layout have changed between
    compiler versions). Splitmix64 is 10 lines, well studied, and its
    sequence is fixed by this file alone.

    [derive] gives every program of a campaign an independent stream from
    (campaign seed, program index), which is what makes `--jobs N` runs
    bit-identical to sequential ones: a program's bytes depend only on its
    own derived seed, never on how many programs some worker generated
    before it. *)

type t = { mutable s : int64 }

let gamma = 0x9E3779B97F4A7C15L

(* the splitmix64 finalizer *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { s = mix (Int64.of_int seed) }

let next t =
  t.s <- Int64.add t.s gamma;
  mix t.s

(** A non-negative int covering 62 bits of state. *)
let bits t = Int64.to_int (next t) land max_int

(** Uniform in [0, n). *)
let int t n =
  if n <= 0 then invalid_arg "Sprng.int";
  bits t mod n

(** Uniform in [lo, hi] inclusive. *)
let range t lo hi = lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

(** True with probability [num]/[den]. *)
let chance t num den = int t den < num

let choose t arr = arr.(int t (Array.length arr))

(** Weighted choice over [(weight, value)] pairs (weights > 0). *)
let pick t choices =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 choices in
  let r = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Sprng.pick"
    | (w, v) :: rest -> if r < acc + w then v else go (acc + w) rest
  in
  go 0 choices

(** Independent per-program seed for program [i] of campaign [seed]. *)
let derive seed i =
  Int64.to_int (mix (Int64.add (Int64.of_int seed)
                       (Int64.mul gamma (Int64.of_int (i + 1)))))
  land max_int
