(** Greedy program shrinking.

    Generated programs use absolute branch targets and jump tables of
    absolute addresses, so physically deleting instructions (which would
    shift every following address) is never safe. The shrinker therefore
    only applies two layout-preserving reductions, each re-validated by the
    caller's interestingness predicate:

    - {b truncation}: cut the program at an instruction index, replacing it
      with [Halt] (drops whole tails, including dead jump-table bodies);
    - {b neutralisation}: replace a single instruction with [Nop].

    The predicate is expected to include "the golden machine still halts
    cleanly" (as {!Diff.diverges} does), which automatically rejects
    candidates that a reduction made non-terminating (e.g. nop-ing out a
    loop-counter decrement) or window-unbalanced (nop-ing a [save] but not
    its [restore] ends in a fatal underflow, which golden rejects).

    The size metric is the number of live (non-[Nop], non-[Halt])
    instructions: neutralised slots still occupy addresses but carry no
    behaviour and read as blank lines in the reproducer. *)

open Dts_isa

let live_instructions (p : Dts_asm.Program.t) =
  Array.fold_left
    (fun acc (_, i) ->
      match i with Instr.Nop | Instr.Halt -> acc | _ -> acc + 1)
    0 p.text

let truncate_at (p : Dts_asm.Program.t) i =
  let addr, _ = p.text.(i) in
  { p with text = Array.append (Array.sub p.text 0 i) [| (addr, Instr.Halt) |] }

let nop_at (p : Dts_asm.Program.t) i =
  let text = Array.copy p.text in
  let addr, _ = text.(i) in
  text.(i) <- (addr, Instr.Nop);
  { p with text }

(** [shrink ~check p] greedily minimises [p] while [check] stays [true];
    [check p] must hold on entry. [max_checks] (default 4000) bounds the
    total number of predicate evaluations. *)
let shrink ?(max_checks = 4000) ~check (p0 : Dts_asm.Program.t) =
  let checks = ref 0 in
  let try_check p =
    if !checks >= max_checks then false
    else begin
      incr checks;
      check p
    end
  in
  let p = ref p0 in
  let changed = ref true in
  while !changed && !checks < max_checks do
    changed := false;
    (* shortest truncation first: scan prefixes from the front so the first
       accepted candidate is the smallest one *)
    (try
       let n = Array.length !p.text in
       for i = 1 to n - 2 do
         let cand = truncate_at !p i in
         if try_check cand then begin
           p := cand;
           changed := true;
           raise Exit
         end
       done
     with Exit -> ());
    (* neutralise instructions one at a time, to fixpoint *)
    let pass = ref true in
    while !pass && !checks < max_checks do
      pass := false;
      for i = 0 to Array.length !p.text - 1 do
        (match snd !p.text.(i) with
        | Instr.Nop | Instr.Halt -> ()
        | _ ->
          let cand = nop_at !p i in
          if try_check cand then begin
            p := cand;
            pass := true;
            changed := true
          end)
      done
    done
  done;
  !p
