(** Self-contained reproducer files.

    A reproducer freezes the exact binary image of a failing program —
    independent of the generator's evolution — together with the seed, the
    engine selection and the divergence report, in a line-oriented text
    format:

    {v
    !dtsfuzz reproducer v1
    !seed 42
    !geoms all
    !note dtsvliw-compiled-ideal: test-mode mismatch at cycle 812: ...
    entry 0x1000
    text 0x1000 0x0d100100 ! sethi 0x400, %g4
    text 0x1004 0x8410a000 ! or %g4, 0, %g4
    data 0x100000 00001048000010a0
    v}

    [!]-lines are human-oriented metadata (the disassembly comments on
    [text] lines likewise); the parser rebuilds the program from the
    [entry]/[text]/[data] lines alone, decoding each instruction word at
    its recorded address, so a saved file replays byte-for-byte what the
    failing run executed. *)

open Dts_isa

exception Parse_error of { line : int; msg : string }

let save ~path ?seed ?geoms ?(notes = []) (p : Dts_asm.Program.t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let pr fmt = Printf.fprintf oc fmt in
      pr "!dtsfuzz reproducer v1\n";
      (match seed with Some s -> pr "!seed %d\n" s | None -> ());
      (match geoms with Some g -> pr "!geoms %s\n" g | None -> ());
      List.iter
        (fun n ->
          pr "!note %s\n"
            (String.map (function '\n' | '\r' -> ' ' | c -> c) n))
        notes;
      pr "entry %#x\n" p.entry;
      Array.iter
        (fun (addr, instr) ->
          pr "text %#x 0x%08x ! %s\n" addr
            (Encode.encode ~pc:addr instr)
            (Disasm.to_string instr))
        p.text;
      List.iter
        (fun (addr, bytes) ->
          pr "data %#x " addr;
          String.iter (fun c -> pr "%02x" (Char.code c)) bytes;
          pr "\n")
        p.data)

let bytes_of_hex ~line s =
  if String.length s mod 2 <> 0 then
    raise (Parse_error { line; msg = "odd-length hex data" });
  String.init
    (String.length s / 2)
    (fun i ->
      try Char.chr (int_of_string ("0x" ^ String.sub s (i * 2) 2))
      with _ -> raise (Parse_error { line; msg = "bad hex data" }))

let load path : Dts_asm.Program.t =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let entry = ref None in
      let text = ref [] in
      let data = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let line =
             match String.index_opt line '!' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           match
             String.split_on_char ' ' (String.trim line)
             |> List.filter (fun s -> s <> "")
           with
           | [] -> ()
           | [ "entry"; a ] -> entry := Some (int_of_string a)
           | [ "text"; a; w ] ->
             let addr = int_of_string a in
             let word = int_of_string w in
             text := (addr, Encode.decode ~pc:addr word) :: !text
           | [ "data"; a; hex ] ->
             data :=
               (int_of_string a, bytes_of_hex ~line:!lineno hex) :: !data
           | tok :: _ ->
             raise
               (Parse_error
                  { line = !lineno; msg = "unrecognised line: " ^ tok })
         done
       with
      | End_of_file -> ()
      | Failure _ ->
        raise (Parse_error { line = !lineno; msg = "bad number" })
      | Encode.Decode_error { reason; _ } ->
        raise (Parse_error { line = !lineno; msg = "decode: " ^ reason }));
      match !entry with
      | None -> raise (Parse_error { line = 0; msg = "missing entry line" })
      | Some entry ->
        {
          Dts_asm.Program.entry;
          text = Array.of_list (List.rev !text);
          data = List.rev !data;
          symbols = [];
        })
