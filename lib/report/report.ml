(** Plain-text table and CSV rendering for the experiment harness. *)

let f2 v = Printf.sprintf "%.2f" v
let f1 v = Printf.sprintf "%.1f" v
let pct v = Printf.sprintf "%.1f%%" (100. *. v)

(** Render an aligned table. The first column is left-aligned, the rest
    right-aligned, matching how the paper's tables read. *)
let table ?title ~headers rows =
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure headers;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  (match title with
  | Some t ->
    Buffer.add_string buf t;
    Buffer.add_char buf '\n'
  | None -> ());
  let render_row row =
    List.iteri
      (fun i cell ->
        if i = 0 then Buffer.add_string buf (Printf.sprintf "%-*s" widths.(i) cell)
        else Buffer.add_string buf (Printf.sprintf "  %*s" widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  render_row headers;
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

(* RFC 4180: a cell containing a comma, double quote, CR or LF must be
   quoted, with embedded quotes doubled. *)
let csv_cell s =
  let special = function ',' | '"' | '\n' | '\r' -> true | _ -> false in
  if not (String.exists special s) then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv ~headers rows =
  let buf = Buffer.create 1024 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells) ^ "\n")
  in
  line headers;
  List.iter line rows;
  Buffer.contents buf

(** A labelled series (one line of a figure), rendered as rows of
    [x, y] pairs with a shared x axis. *)
let series_table ?title ~x_label ~x_values lines =
  let nx = List.length x_values in
  let arrays =
    List.map
      (fun (label, ys) ->
        let a = Array.of_list ys in
        if Array.length a < nx then
          invalid_arg
            (Printf.sprintf
               "Report.series_table: series %S has %d values for %d x values"
               label (Array.length a) nx);
        (label, a))
      lines
  in
  let headers = x_label :: List.map fst lines in
  let rows =
    List.mapi (fun i x -> x :: List.map (fun (_, a) -> a.(i)) arrays) x_values
  in
  table ?title ~headers rows
