(** Plain-text table and CSV rendering for the experiment harness. *)

val f2 : float -> string
(** Two decimal places (the paper's IPC precision). *)

val f1 : float -> string
val pct : float -> string
(** Render a fraction as a percentage with one decimal. *)

val table : ?title:string -> headers:string list -> string list list -> string
(** An aligned table: first column left-aligned, the rest right-aligned. *)

val csv : headers:string list -> string list list -> string
(** RFC 4180 CSV: cells containing commas, quotes or newlines are quoted,
    with embedded quotes doubled. *)

val series_table :
  ?title:string ->
  x_label:string ->
  x_values:string list ->
  (string * string list) list ->
  string
(** Render labelled series (the lines of a figure) as a table with a shared
    x axis: [series_table ~x_label ~x_values [(label, ys); ...]].
    @raise Invalid_argument naming the offending series label if a series
    has fewer values than [x_values]. *)
