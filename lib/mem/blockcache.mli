(** Generic set-associative store of scheduled blocks, keyed by the ISA
    address of the first instruction of each block.

    This is the organisational skeleton shared by the paper's VLIW Cache
    (§3.4) and the DIF cache (§3.12): a cache whose "line" payload is a whole
    block of long instructions (['a]). Replacement is true LRU within a
    set. *)

type 'a t

val create : n_sets:int -> assoc:int -> 'a t
(** [n_sets] must be a power of two. *)

val find : 'a t -> int -> 'a option
(** Probe with an ISA address; touches LRU state on a hit. *)

val probe : 'a t -> int -> bool
(** Hit test without touching LRU state. *)

val insert : 'a t -> int -> 'a -> 'a option
(** [insert t addr block] installs [block] under key [addr], evicting the
    LRU entry of the set if full; the evicted payload is returned. Inserting
    an existing key replaces its payload. *)

val invalidate : 'a t -> int -> bool
(** Remove the entry for this address; [true] if it was present. *)

val set_on_drop : 'a t -> (int -> 'a -> unit) -> unit
(** Register the single drop observer, called with (key, payload) whenever
    a resident payload leaves the cache — same-key replacement by
    {!insert}, LRU eviction, {!invalidate} or {!invalidate_all}. Owners of
    state derived from cached payloads (the machine's compiled execution
    plans) release it here. The callback must not mutate the cache. *)

val invalidate_all : 'a t -> unit
val hits : 'a t -> int
val misses : 'a t -> int
val insertions : 'a t -> int
val evictions : 'a t -> int
val reset_stats : 'a t -> unit
val iter : (int -> 'a -> unit) -> 'a t -> unit
val entry_count : 'a t -> int
val capacity : 'a t -> int
