type 'a entry = {
  mutable key : int;
  mutable payload : 'a option;
  mutable stamp : int;
}

type 'a t = {
  sets : 'a entry array array;
  n_sets : int;
  assoc : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable on_drop : (int -> 'a -> unit) option;
      (** notified with (key, payload) whenever a resident payload leaves
          the cache — replacement, eviction or invalidation — so owners of
          state derived from the payload (compiled plans) can release it *)
}

let create ~n_sets ~assoc =
  if n_sets <= 0 || n_sets land (n_sets - 1) <> 0 then
    invalid_arg "Blockcache.create: n_sets must be a power of two";
  let sets =
    Array.init n_sets (fun _ ->
        Array.init assoc (fun _ -> { key = 0; payload = None; stamp = 0 }))
  in
  {
    sets;
    n_sets;
    assoc;
    clock = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    on_drop = None;
  }

let set_on_drop t f = t.on_drop <- Some f

let dropped t key payload =
  match t.on_drop with Some f -> f key payload | None -> ()

(* Blocks are tagged with the word-aligned SPARC-style address of their
   first instruction, so index on addr/4. *)
let set_of t addr = t.sets.((addr lsr 2) land (t.n_sets - 1))

(* Allocation-free lookup: an index loop (no iter closure, no ref) that
   returns the resident [Some] box itself rather than re-wrapping it. *)
let rec find_from t ways addr i n =
  if i >= n then begin
    t.misses <- t.misses + 1;
    None
  end
  else
    let e = Array.unsafe_get ways i in
    if e.payload <> None && e.key = addr then begin
      e.stamp <- t.clock;
      t.hits <- t.hits + 1;
      e.payload
    end
    else find_from t ways addr (i + 1) n

let find t addr =
  t.clock <- t.clock + 1;
  let ways = set_of t addr in
  find_from t ways addr 0 (Array.length ways)

let probe t addr =
  let ways = set_of t addr in
  Array.exists (fun e -> e.payload <> None && e.key = addr) ways

let insert t addr block =
  t.clock <- t.clock + 1;
  t.insertions <- t.insertions + 1;
  let ways = set_of t addr in
  let slot = ref None in
  (* reuse an entry with the same key, else an empty way, else LRU victim *)
  Array.iter
    (fun e -> if e.payload <> None && e.key = addr then slot := Some e)
    ways;
  if !slot = None then
    Array.iter (fun e -> if e.payload = None && !slot = None then slot := Some e) ways;
  let victim_payload = ref None in
  let e =
    match !slot with
    | Some e -> e
    | None ->
      let victim = ref ways.(0) in
      Array.iter (fun e -> if e.stamp < !victim.stamp then victim := e) ways;
      t.evictions <- t.evictions + 1;
      victim_payload := !victim.payload;
      !victim
  in
  (* the chosen way's resident payload (same-key replacement or LRU
     victim) is leaving the cache: notify before overwriting *)
  (match e.payload with Some old -> dropped t e.key old | None -> ());
  e.key <- addr;
  e.payload <- Some block;
  e.stamp <- t.clock;
  !victim_payload

let invalidate t addr =
  let ways = set_of t addr in
  let removed = ref false in
  Array.iter
    (fun e ->
      if e.payload <> None && e.key = addr then begin
        (match e.payload with Some old -> dropped t e.key old | None -> ());
        e.payload <- None;
        removed := true
      end)
    ways;
  !removed

let invalidate_all t =
  Array.iter
    (fun ways ->
      Array.iter
        (fun e ->
          (match e.payload with Some old -> dropped t e.key old | None -> ());
          e.payload <- None)
        ways)
    t.sets

let hits t = t.hits
let misses t = t.misses
let insertions t = t.insertions
let evictions t = t.evictions

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.insertions <- 0;
  t.evictions <- 0

let iter f t =
  Array.iter
    (fun ways ->
      Array.iter
        (fun e -> match e.payload with Some p -> f e.key p | None -> ())
        ways)
    t.sets

let entry_count t =
  let n = ref 0 in
  iter (fun _ _ -> incr n) t;
  !n

let capacity t = t.n_sets * t.assoc
