(** Flat, direct-mapped, byte-addressable main memory.

    Addresses are 32-bit (stored in native [int]); contents are big-endian,
    matching the SPARC heritage of the SRISC ISA. Pages are 4 KiB byte
    buffers held in a page directory indexed by [addr lsr 12], so page
    resolution on the hot path is an array load, not a hash probe; page
    buffers are [Bytes.t] so that whole-page comparison (the co-simulation
    sync's hot operation) is a C [memcmp]. Accesses
    must be naturally aligned — misaligned accesses raise {!Misaligned},
    which the machine layers turn into the [Mem_address_not_aligned]
    trap. *)

type t

exception Misaligned of int
(** Raised with the offending address on a misaligned access. *)

val create : unit -> t
(** A fresh, all-zero memory. Pages are allocated on first write; the
    directory starts small (16 MiB of address space, the whole conventional
    layout) and grows on demand. *)

val copy : t -> t
(** Deep copy (used by the golden-model co-simulation). Hooks, watch bits
    and the dirty journal are not carried over: the copy starts with no
    write or reset hooks, and the source's {e reset} hooks are fired at the
    fork point so that derived caches registered on the source (e.g. the
    pre-decoded instruction store) flush and rebuild rather than risk
    serving entries that a consumer wrongly associates with the copy. *)

val read : t -> addr:int -> size:int -> signed:bool -> int
(** [read m ~addr ~size ~signed] reads [size] bytes (1, 2 or 4) at [addr].
    The result is sign- or zero-extended to a signed 32-bit value stored in
    a native [int]. Raises {!Misaligned} if [addr] is not a multiple of
    [size]. *)

val write : t -> addr:int -> size:int -> int -> unit
(** [write m ~addr ~size v] stores the low [size] bytes of [v] at [addr].
    Raises {!Misaligned} if [addr] is not a multiple of [size]. *)

val read_u8 : t -> int -> int
(** Unsigned byte read. *)

val read_u16 : t -> int -> int
(** Unsigned 16-bit read of an aligned halfword. *)

val read_u32 : t -> int -> int
(** Unsigned 32-bit read of an aligned word (instruction fetch). *)

val read_i32 : t -> int -> int
(** Sign-extended 32-bit read of an aligned word (architectural values are
    kept sign-extended in native [int]s). *)

val write_u8 : t -> int -> int -> unit
(** Byte write (low 8 bits of the value). *)

val write_u16 : t -> int -> int -> unit
(** 16-bit write of an aligned halfword (low 16 bits of the value). *)

val write_u32 : t -> int -> int -> unit
(** 32-bit write of an aligned word. *)

val load_bytes : t -> addr:int -> string -> unit
(** Bulk-copy a string image into memory starting at [addr]. *)

val clear : t -> unit
(** Zero the memory in place, keeping the page buffers and any registered
    hooks and watch bits — for scratch memories recycled wholesale. Only
    pages written since the previous [clear] are swept (the dirty journal
    tracks them), so the cost is proportional to recent use; consequently
    [clear] must not be mixed with {!dirty_clear} on the same memory. Does
    not fire hooks: callers reset their own derived structures. *)

val add_write_hook : t -> (int -> unit) -> unit
(** Register an observer called with the byte address of {e every} mutation
    made through {!write} (once per write — an aligned access never spans a
    32-bit word) or {!load_bytes} (once per touched word). Registering a
    whole-memory hook disables the watched-page fast path: every store pays
    hook dispatch. Prefer {!add_watched_write_hook} + {!watch} when the
    consumer only cares about specific pages. Hooks must not write to the
    memory themselves. {!copy} does not carry hooks over — consumers of the
    copy re-register. *)

val add_watched_write_hook : t -> (int -> unit) -> unit
(** Like {!add_write_hook}, but the hook only fires for stores into pages
    marked with {!watch}. Stores into unwatched pages skip hook dispatch
    entirely — this is the common-path contract that keeps ordinary data
    stores hook-free while SMC invalidation still sees every store into a
    page hosting pre-decoded code or installed blocks. *)

val watch : t -> int -> unit
(** [watch m addr] marks the page containing [addr] so that watched write
    hooks fire for every subsequent store into it. Watching is monotonic
    and per-page; watching an already-watched page is a no-op. *)

val add_reset_hook : t -> (unit -> unit) -> unit
(** Register a cache-flush callback fired when every cache derived from this
    memory must be dropped wholesale — currently on {!copy} (see there). *)

val equal : t -> t -> bool
(** Content equality over all touched pages (zero pages are equal to
    untouched ones). *)

val first_difference : t -> t -> int option
(** Address of the first differing byte, if any — for test-mode
    diagnostics. *)

val dirty_equal : t -> t -> bool
(** Ranged comparison over only the pages either memory wrote since its
    last {!dirty_clear}. Sound as a substitute for {!equal} when the caller
    established equality at the last {!dirty_clear} point: pages unwritten
    by both sides are unchanged on both sides. The co-simulation sync uses
    this instead of a periodic full sweep. *)

val dirty_clear : t -> unit
(** Reset the dirty-page journal — call after a successful comparison
    against the co-simulation partner (on both memories). *)

val dirty_pages : t -> int
(** Number of distinct pages written since the last {!dirty_clear}
    (telemetry/tests). *)

val touched_bytes : t -> int
(** Number of bytes in allocated pages (memory-footprint statistic). *)
