(** Sparse, paged, byte-addressable main memory.

    Addresses are 32-bit (stored in native [int]); contents are big-endian,
    matching the SPARC heritage of the SRISC ISA. Accesses must be naturally
    aligned — misaligned accesses raise {!Misaligned}, which the machine
    layers turn into the [Mem_address_not_aligned] trap. *)

type t

exception Misaligned of int
(** Raised with the offending address on a misaligned access. *)

val create : unit -> t
(** A fresh, all-zero memory. Pages are allocated on first touch. *)

val copy : t -> t
(** Deep copy (used by the golden-model co-simulation). Hooks are not
    carried over: the copy starts with no write or reset hooks, and the
    source's {e reset} hooks are fired at the fork point so that derived
    caches registered on the source (e.g. the pre-decoded instruction
    store) flush and rebuild rather than risk serving entries that a
    consumer wrongly associates with the copy. *)

val read : t -> addr:int -> size:int -> signed:bool -> int
(** [read m ~addr ~size ~signed] reads [size] bytes (1, 2 or 4) at [addr].
    The result is sign- or zero-extended to a signed 32-bit value stored in
    a native [int]. Raises {!Misaligned} if [addr] is not a multiple of
    [size]. *)

val write : t -> addr:int -> size:int -> int -> unit
(** [write m ~addr ~size v] stores the low [size] bytes of [v] at [addr].
    Raises {!Misaligned} if [addr] is not a multiple of [size]. *)

val read_u32 : t -> int -> int
(** Unsigned 32-bit read of an aligned word (instruction fetch). *)

val write_u32 : t -> int -> int -> unit
(** 32-bit write of an aligned word. *)

val load_bytes : t -> addr:int -> string -> unit
(** Bulk-copy a string image into memory starting at [addr]. *)

val add_write_hook : t -> (int -> unit) -> unit
(** Register an observer called with the byte address of every mutation made
    through {!write} (once per write — an aligned access never spans a
    32-bit word) or {!load_bytes} (once per touched word). Used by the
    pre-decoded instruction store to invalidate stale decodes; hooks must
    not write to the memory themselves. {!copy} does not carry hooks over —
    consumers of the copy re-register. *)

val add_reset_hook : t -> (unit -> unit) -> unit
(** Register a cache-flush callback fired when every cache derived from this
    memory must be dropped wholesale — currently on {!copy} (see there). *)

val equal : t -> t -> bool
(** Content equality over all touched pages (zero pages are equal to
    untouched ones). *)

val first_difference : t -> t -> int option
(** Address of the first differing byte, if any — for test-mode
    diagnostics. *)

val touched_bytes : t -> int
(** Number of bytes in allocated pages (memory-footprint statistic). *)
