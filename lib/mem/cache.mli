(** Timing-only set-associative cache model with true-LRU replacement.

    The machine keeps data in {!Memory}; this cache only tracks which lines
    would be resident, so that hit/miss timing (Table 1 / §4.4 of the paper)
    can be charged. A direct-mapped cache is [assoc = 1]. *)

type t

val create :
  size_bytes:int -> line_bytes:int -> assoc:int -> miss_penalty:int -> t
(** [create ~size_bytes ~line_bytes ~assoc ~miss_penalty] builds a cache.
    [size_bytes] must be a multiple of [line_bytes * assoc]. *)

val perfect : unit -> t
(** A cache that always hits with zero penalty (the paper's "perfect
    cache" experimental setting). *)

val access : t -> int -> int
(** [access c addr] touches the line containing [addr] and returns the
    penalty in cycles: [0] on a hit, [miss_penalty] on a miss (the line is
    then filled, evicting the LRU way). *)

val probe : t -> int -> bool
(** Non-allocating lookup: would [addr] hit right now? *)

val invalidate_all : t -> unit

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit

val describe : t -> string
(** e.g. ["32KB 4-way, 32B lines, 8-cycle miss"]. *)
