(* Sparse paged memory. 4 KiB pages allocated on first touch; big-endian. *)

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1
let addr_mask = 0xFFFFFFFF

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable last_idx : int;
      (** page index of [last_page], or -1; only {e materialised} pages
          enter the lookaside — never the shared [zero_page], which a later
          first write to the same page would silently shadow *)
  mutable last_page : Bytes.t;
  mutable write_hooks : (int -> unit) list;
      (** notified with the byte address of every mutation performed through
          {!write} / {!load_bytes}; a naturally aligned write never spans a
          32-bit word, so one callback per write suffices for word-granular
          consumers (the pre-decoded instruction store) *)
  mutable reset_hooks : (unit -> unit) list;
      (** notified when derived caches attached to this memory must drop
          everything — today, when the memory is {!copy}ed *)
}

exception Misaligned of int

let no_page = Bytes.create 0

let create () =
  {
    pages = Hashtbl.create 64;
    last_idx = -1;
    last_page = no_page;
    write_hooks = [];
    reset_hooks = [];
  }

let copy m =
  (* Hooks are observers of the *original* memory; the copy starts clean and
     its own consumers re-register. Because the write hooks are dropped, any
     cache derived from the source (pre-decoded instructions, compiled
     plans) that a caller wrongly re-attaches to the copy could serve stale
     entries without ever being invalidated — so tell every derived cache on
     the source to flush at the fork point. Rebuilding is cheap;
     serving a stale decode is not. *)
  List.iter (fun f -> f ()) m.reset_hooks;
  let pages = Hashtbl.create (Hashtbl.length m.pages) in
  Hashtbl.iter (fun k v -> Hashtbl.replace pages k (Bytes.copy v)) m.pages;
  {
    pages;
    last_idx = -1;
    last_page = no_page;
    write_hooks = [];
    reset_hooks = [];
  }

let add_write_hook m f = m.write_hooks <- f :: m.write_hooks
let add_reset_hook m f = m.reset_hooks <- f :: m.reset_hooks

let notify_write m addr =
  match m.write_hooks with
  | [] -> ()
  | [ f ] -> f addr
  | fs -> List.iter (fun f -> f addr) fs

let zero_page = Bytes.make page_size '\000'

(* Page resolution with a one-entry lookaside over materialised pages. A
   naturally aligned access never crosses a page, so every read/write below
   resolves its page exactly once — the common case is an integer compare
   and two loads. [Hashtbl.find]+[Not_found] instead of [find_opt]: the
   constant exception costs nothing, the [Some] box is a word per miss. *)

let page_ro m idx =
  if idx = m.last_idx then m.last_page
  else
    match Hashtbl.find m.pages idx with
    | p ->
      m.last_idx <- idx;
      m.last_page <- p;
      p
    | exception Not_found -> zero_page

let page_rw m idx =
  if idx = m.last_idx then m.last_page
  else
    match Hashtbl.find m.pages idx with
    | p ->
      m.last_idx <- idx;
      m.last_page <- p;
      p
    | exception Not_found ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.replace m.pages idx p;
      m.last_idx <- idx;
      m.last_page <- p;
      p

let set_u8 m addr v =
  let addr = addr land addr_mask in
  Bytes.set
    (page_rw m (addr lsr page_bits))
    (addr land page_mask)
    (Char.chr (v land 0xFF))

let check_aligned addr size =
  if addr land (size - 1) <> 0 then raise (Misaligned addr)

let sext v bits =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

(* 16-bit lanes compose the 32-bit accessors: [Bytes.get_uint16_be] is a
   non-allocating primitive, unlike the [Int32]-boxing [get_int32_be]. *)

let read m ~addr ~size ~signed =
  check_aligned addr size;
  let addr = addr land addr_mask in
  let p = page_ro m (addr lsr page_bits) in
  let off = addr land page_mask in
  match size with
  | 1 ->
    let v = Char.code (Bytes.unsafe_get p off) in
    if signed then sext v 8 else v
  | 2 ->
    let v = Bytes.get_uint16_be p off in
    if signed then sext v 16 else v
  | 4 ->
    (* 32-bit values are kept sign-extended, signed or not *)
    sext ((Bytes.get_uint16_be p off lsl 16) lor Bytes.get_uint16_be p (off + 2)) 32
  | _ -> invalid_arg "Memory.read: size"

let write m ~addr ~size v =
  check_aligned addr size;
  let addr = addr land addr_mask in
  let p = page_rw m (addr lsr page_bits) in
  let off = addr land page_mask in
  (match size with
  | 1 -> Bytes.unsafe_set p off (Char.unsafe_chr (v land 0xFF))
  | 2 -> Bytes.set_uint16_be p off (v land 0xFFFF)
  | 4 ->
    Bytes.set_uint16_be p off ((v lsr 16) land 0xFFFF);
    Bytes.set_uint16_be p (off + 2) (v land 0xFFFF)
  | _ -> invalid_arg "Memory.write: size");
  notify_write m addr

let read_u32 m addr =
  check_aligned addr 4;
  let addr = addr land addr_mask in
  let p = page_ro m (addr lsr page_bits) in
  let off = addr land page_mask in
  (Bytes.get_uint16_be p off lsl 16) lor Bytes.get_uint16_be p (off + 2)

let write_u32 m addr v = write m ~addr ~size:4 v

let load_bytes m ~addr s =
  String.iteri (fun i c -> set_u8 m (addr + i) (Char.code c)) s;
  if m.write_hooks <> [] && String.length s > 0 then begin
    (* one notification per touched 32-bit word *)
    let first = addr land lnot 3 in
    let last = (addr + String.length s - 1) land lnot 3 in
    let w = ref first in
    while !w <= last do
      notify_write m !w;
      w := !w + 4
    done
  end

let page_indices m =
  Hashtbl.fold (fun k _ acc -> k :: acc) m.pages [] |> List.sort compare

let pages_equal a b = Bytes.equal a b

let equal m1 m2 =
  let idxs =
    List.sort_uniq compare (page_indices m1 @ page_indices m2)
  in
  List.for_all
    (fun i -> pages_equal (page_ro m1 i) (page_ro m2 i))
    idxs

let first_difference m1 m2 =
  let idxs =
    List.sort_uniq compare (page_indices m1 @ page_indices m2)
  in
  let diff_in i =
    let p1 = page_ro m1 i and p2 = page_ro m2 i in
    let rec scan off =
      if off >= page_size then None
      else if Bytes.get p1 off <> Bytes.get p2 off then
        Some ((i lsl page_bits) lor off)
      else scan (off + 1)
    in
    scan 0
  in
  List.fold_left
    (fun acc i -> match acc with Some _ -> acc | None -> diff_in i)
    None idxs

let touched_bytes m = Hashtbl.length m.pages * page_size
