(* Flat direct-mapped paged memory. 4 KiB pages held in a page directory
   indexed by [addr lsr 12]; big-endian contents.

   Pages are [Bytes.t], deliberately: page equality is the hot operation of
   the batched co-simulation sync, and [Bytes.equal] is a C [memcmp], an
   order of magnitude faster than comparing a [Bigarray.Array1] (whose
   polymorphic compare walks bytes one at a time in C). Multi-byte
   accessors use the compiler's unaligned 16/32-bit load/store primitives
   plus byte swap, so a 32-bit read is one load, not four. *)

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1
let addr_mask = 0xFFFFFFFF

(* The 32-bit address space is 2^20 pages. The directory starts at 4096
   entries — enough for the whole conventional [Layout] map (16 MiB) — and
   doubles on demand up to the full space, so a deliberate store near
   0xFFFFFFFC costs one directory growth instead of every memory paying
   for the full space up front. *)
let max_pages = 1 lsl (32 - page_bits)
let initial_pages = 4096

type page = Bytes.t

let make_page () : page = Bytes.make page_size '\000'

(* Shared all-zero page: the directory entry of every never-written page.
   Reads serve from it; the first write to a page replaces it with a fresh
   buffer ({!materialise}). It never enters the one-entry lookaside — the
   lookaside is a write-through cache and [zero_page] must never be
   written. *)
let zero_page : page = make_page ()

(* Unaligned native-endian 16/32-bit access primitives over [Bytes.t], and
   the byte swaps that turn them big-endian. These compile to single
   load/store instructions; the [int32] results/operands are unboxed by
   the compiler when immediately converted, so the accessors below do not
   allocate (the bench's allocation gate enforces this). *)
external unsafe_get_16 : bytes -> int -> int = "%caml_bytes_get16u"
external unsafe_set_16 : bytes -> int -> int -> unit = "%caml_bytes_set16u"
external unsafe_get_32 : bytes -> int -> int32 = "%caml_bytes_get32u"
external unsafe_set_32 : bytes -> int -> int32 -> unit = "%caml_bytes_set32u"
external swap16 : int -> int = "%bswap16"

external swap32 : int32 -> int32 = "%bswap_int32"

exception Misaligned of int

type t = {
  mutable dir : page array;  (** page index -> page; [zero_page] = absent *)
  mutable watched : Bytes.t;
      (** per-page watch bits, parallel to [dir]: write hooks fire only for
          stores into watched pages (or everywhere once {!add_write_hook}
          set [watch_all]). Pages hosting pre-decoded code or installed
          blocks are watched by their consumers; ordinary data stores skip
          hook dispatch entirely. *)
  mutable stamp : int array;
      (** per-page dirty generation stamp, parallel to [dir]:
          [stamp.(ix) = gen] iff page [ix] is in the current dirty list *)
  mutable dirty : int array;  (** page indices written in generation [gen] *)
  mutable dirty_n : int;
  mutable gen : int;
  mutable last_ix : int;
      (** page index of [last_page], or -1; only {e materialised} pages
          enter the lookaside — never the shared [zero_page], which a later
          first write to the same page would silently shadow *)
  mutable last_page : page;
  mutable watch_all : bool;  (** a legacy hook observes every write *)
  mutable write_hooks : (int -> unit) list;
      (** notified with the byte address of every observed mutation made
          through {!write} / {!load_bytes}; a naturally aligned write never
          spans a 32-bit word, so one callback per write suffices for
          word-granular consumers (the pre-decoded instruction store) *)
  mutable reset_hooks : (unit -> unit) list;
      (** notified when derived caches attached to this memory must drop
          everything — today, when the memory is {!copy}ed *)
}

let create () =
  {
    dir = Array.make initial_pages zero_page;
    watched = Bytes.make initial_pages '\000';
    stamp = Array.make initial_pages 0;
    dirty = Array.make 64 0;
    dirty_n = 0;
    gen = 1;
    last_ix = -1;
    last_page = zero_page;
    watch_all = false;
    write_hooks = [];
    reset_hooks = [];
  }

let copy m =
  (* Hooks are observers of the *original* memory; the copy starts clean and
     its own consumers re-register. Because the write hooks are dropped, any
     cache derived from the source (pre-decoded instructions, compiled
     plans) that a caller wrongly re-attaches to the copy could serve stale
     entries without ever being invalidated — so tell every derived cache on
     the source to flush at the fork point. Rebuilding is cheap;
     serving a stale decode is not. *)
  List.iter (fun f -> f ()) m.reset_hooks;
  let n = Array.length m.dir in
  {
    dir =
      Array.map (fun p -> if p == zero_page then zero_page else Bytes.copy p) m.dir;
    watched = Bytes.make n '\000';
    stamp = Array.make n 0;
    dirty = Array.make 64 0;
    dirty_n = 0;
    gen = 1;
    (* the lookaside starts cold: it must never alias a page of the
       source *)
    last_ix = -1;
    last_page = zero_page;
    watch_all = false;
    write_hooks = [];
    reset_hooks = [];
  }

let add_write_hook m f =
  m.write_hooks <- f :: m.write_hooks;
  m.watch_all <- true

let add_watched_write_hook m f = m.write_hooks <- f :: m.write_hooks
let add_reset_hook m f = m.reset_hooks <- f :: m.reset_hooks

let notify_write m addr =
  match m.write_hooks with
  | [] -> ()
  | [ f ] -> f addr
  | fs -> List.iter (fun f -> f addr) fs

(* Grow the directory (and its parallel watch/stamp metadata) to cover page
   index [ix]. *)
let grow m ix =
  if ix >= max_pages then invalid_arg "Memory: page index out of range";
  let old = Array.length m.dir in
  let n = ref old in
  while !n <= ix do
    n := min max_pages (!n * 2)
  done;
  let n = !n in
  let dir = Array.make n zero_page in
  Array.blit m.dir 0 dir 0 old;
  let watched = Bytes.make n '\000' in
  Bytes.blit m.watched 0 watched 0 old;
  let stamp = Array.make n 0 in
  Array.blit m.stamp 0 stamp 0 old;
  m.dir <- dir;
  m.watched <- watched;
  m.stamp <- stamp

let watch m addr =
  let ix = (addr land addr_mask) lsr page_bits in
  if ix >= Array.length m.dir then grow m ix;
  Bytes.unsafe_set m.watched ix '\001'

(* Append page [ix] to the dirty list of the current generation. *)
let[@inline] push_dirty m ix =
  if Array.unsafe_get m.stamp ix <> m.gen then begin
    Array.unsafe_set m.stamp ix m.gen;
    let n = m.dirty_n in
    if n >= Array.length m.dirty then begin
      let d = Array.make (2 * n) 0 in
      Array.blit m.dirty 0 d 0 n;
      m.dirty <- d
    end;
    Array.unsafe_set m.dirty n ix;
    m.dirty_n <- n + 1
  end

(* Record that page [ix] was written: journal it and dispatch hooks if the
   page is watched. *)
let[@inline] note_write m ix addr =
  push_dirty m ix;
  if m.watch_all || Bytes.unsafe_get m.watched ix <> '\000' then
    notify_write m addr

(* Page resolution with a one-entry lookaside over materialised pages. A
   naturally aligned access never crosses a page, so every read/write below
   resolves its page exactly once — the common case is an integer compare
   and two loads. *)

let materialise m ix =
  if ix >= Array.length m.dir then grow m ix;
  let p = Array.unsafe_get m.dir ix in
  if p != zero_page then p
  else begin
    let p = make_page () in
    Array.unsafe_set m.dir ix p;
    p
  end

let page_ro m ix =
  if ix = m.last_ix then m.last_page
  else if ix < Array.length m.dir then begin
    let p = Array.unsafe_get m.dir ix in
    if p == zero_page then zero_page
    else begin
      m.last_ix <- ix;
      m.last_page <- p;
      p
    end
  end
  else zero_page

let page_rw m ix =
  if ix = m.last_ix then m.last_page
  else begin
    let p = materialise m ix in
    m.last_ix <- ix;
    m.last_page <- p;
    p
  end

let check_aligned addr size =
  if addr land (size - 1) <> 0 then raise (Misaligned addr)

let sext v bits =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

(* ---- unsigned direct accessors (the hot-path surface) ---- *)

let[@inline] get8 (p : page) off = Char.code (Bytes.unsafe_get p off)
let[@inline] set8 (p : page) off v = Bytes.unsafe_set p off (Char.unsafe_chr v)

let[@inline] get16_be p off =
  let v = unsafe_get_16 p off in
  if Sys.big_endian then v else swap16 v

let[@inline] set16_be p off v =
  unsafe_set_16 p off (if Sys.big_endian then v else swap16 v)

(* sign-extended: [Int32.to_int] sign-extends, which is exactly the
   representation architectural 32-bit values use in native ints *)
let[@inline] get32_be p off =
  let v = unsafe_get_32 p off in
  Int32.to_int (if Sys.big_endian then v else swap32 v)

let[@inline] set32_be p off v =
  let v = Int32.of_int v in
  unsafe_set_32 p off (if Sys.big_endian then v else swap32 v)

let read_u8 m addr =
  let addr = addr land addr_mask in
  get8 (page_ro m (addr lsr page_bits)) (addr land page_mask)

let read_u16 m addr =
  check_aligned addr 2;
  let addr = addr land addr_mask in
  get16_be (page_ro m (addr lsr page_bits)) (addr land page_mask)

(** Sign-extended 32-bit read (architectural values are kept
    sign-extended). *)
let read_i32 m addr =
  check_aligned addr 4;
  let addr = addr land addr_mask in
  get32_be (page_ro m (addr lsr page_bits)) (addr land page_mask)

let read_u32 m addr = read_i32 m addr land 0xFFFFFFFF

let write_u8 m addr v =
  let addr = addr land addr_mask in
  let ix = addr lsr page_bits in
  set8 (page_rw m ix) (addr land page_mask) (v land 0xFF);
  note_write m ix addr

let write_u16 m addr v =
  check_aligned addr 2;
  let addr = addr land addr_mask in
  let ix = addr lsr page_bits in
  set16_be (page_rw m ix) (addr land page_mask) (v land 0xFFFF);
  note_write m ix addr

let write_u32 m addr v =
  check_aligned addr 4;
  let addr = addr land addr_mask in
  let ix = addr lsr page_bits in
  set32_be (page_rw m ix) (addr land page_mask) v;
  note_write m ix addr

(* ---- generic sized accessors ---- *)

let read m ~addr ~size ~signed =
  match size with
  | 1 ->
    let v = read_u8 m addr in
    if signed then sext v 8 else v
  | 2 ->
    let v = read_u16 m addr in
    if signed then sext v 16 else v
  | 4 ->
    (* 32-bit values are kept sign-extended, signed or not *)
    read_i32 m addr
  | _ -> invalid_arg "Memory.read: size"

let write m ~addr ~size v =
  match size with
  | 1 -> write_u8 m addr v
  | 2 -> write_u16 m addr v
  | 4 -> write_u32 m addr v
  | _ -> invalid_arg "Memory.write: size"

let load_bytes m ~addr s =
  String.iteri
    (fun i c ->
      let a = (addr + i) land addr_mask in
      let ix = a lsr page_bits in
      let p = page_rw m ix in
      set8 p (a land page_mask) (Char.code c);
      (* journal without hook dispatch; notifications below are
         word-granular *)
      push_dirty m ix)
    s;
  if m.write_hooks <> [] && String.length s > 0 then begin
    (* one notification per touched 32-bit word (watched pages only,
       unless a legacy whole-memory hook is registered) *)
    let first = addr land lnot 3 in
    let last = (addr + String.length s - 1) land lnot 3 in
    let w = ref first in
    while !w <= last do
      let ix = (!w land addr_mask) lsr page_bits in
      if
        m.watch_all
        || (ix < Bytes.length m.watched
           && Bytes.unsafe_get m.watched ix <> '\000')
      then notify_write m !w;
      w := !w + 4
    done
  end

(** Zero the memory in place, keeping the page buffers (and any registered
    hooks/watches). Used by scratch memories that are recycled wholesale,
    where reallocating the directory per use would cost more than sweeping
    it. Only pages written since the previous [clear] (the dirty journal)
    are zeroed: every other materialised page was zeroed by an earlier
    [clear] and is untouched since, so the sweep is proportional to recent
    use, not to the memory's lifetime footprint. Callers must therefore
    not mix [clear] with {!dirty_clear} on the same memory. Does not fire
    hooks: callers reset their derived structures themselves. *)
let clear m =
  for i = 0 to m.dirty_n - 1 do
    let ix = Array.unsafe_get m.dirty i in
    let p = Array.unsafe_get m.dir ix in
    if p != zero_page then Bytes.fill p 0 page_size '\000'
  done;
  m.dirty_n <- 0;
  m.gen <- m.gen + 1

(* ---- whole-memory comparison ---- *)

let page_at m ix =
  if ix < Array.length m.dir then Array.unsafe_get m.dir ix else zero_page

(* [Bytes.equal] is a memcmp; physical equality catches the
   absent-page/absent-page case without touching contents. *)
let pages_equal (a : page) (b : page) = a == b || Bytes.equal a b

let equal m1 m2 =
  let n = max (Array.length m1.dir) (Array.length m2.dir) in
  let rec go i =
    i >= n || (pages_equal (page_at m1 i) (page_at m2 i) && go (i + 1))
  in
  go 0

let first_difference m1 m2 =
  let n = max (Array.length m1.dir) (Array.length m2.dir) in
  let diff_in i =
    let p1 = page_at m1 i and p2 = page_at m2 i in
    if pages_equal p1 p2 then None
    else begin
      let rec scan off =
        if off >= page_size then None
        else if get8 p1 off <> get8 p2 off then Some ((i lsl page_bits) lor off)
        else scan (off + 1)
      in
      scan 0
    end
  in
  let rec go i =
    if i >= n then None
    else match diff_in i with Some _ as r -> r | None -> go (i + 1)
  in
  go 0

(* ---- generation-stamped dirty-page comparison (batched test-mode sync) ---- *)

let rec dirty_list_equal a b (d : int array) i n =
  i >= n
  ||
  let ix = Array.unsafe_get d i in
  pages_equal (page_at a ix) (page_at b ix) && dirty_list_equal a b d (i + 1) n

(* Second pass: [b]'s dirty pages, skipping those already compared because
   they are also in [a]'s current dirty list (both sides usually write the
   same working set, so this skip halves the sweep). *)
let rec dirty_list_equal_skip a b (d : int array) i n =
  i >= n
  ||
  let ix = Array.unsafe_get d i in
  (ix < Array.length a.stamp && Array.unsafe_get a.stamp ix = a.gen)
  || pages_equal (page_at a ix) (page_at b ix)
     && dirty_list_equal_skip a b d (i + 1) n

(** Ranged comparison over only the pages either memory wrote since its
    last {!dirty_clear}: sound when the caller established [equal a b] at
    that point — unwritten pages are unchanged on both sides. The
    co-simulation sync uses this instead of a full {!equal} sweep. *)
let dirty_equal a b =
  dirty_list_equal a b a.dirty 0 a.dirty_n
  && dirty_list_equal_skip a b b.dirty 0 b.dirty_n

(** Reset the dirty-page journal — call immediately after a successful
    comparison of this memory against its co-simulation partner. *)
let dirty_clear m =
  m.dirty_n <- 0;
  m.gen <- m.gen + 1

(** Pages written since the last {!dirty_clear} (telemetry/tests). *)
let dirty_pages m = m.dirty_n

let touched_bytes m =
  Array.fold_left
    (fun acc p -> if p == zero_page then acc else acc + page_size)
    0 m.dir
