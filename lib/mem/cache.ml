type way = { mutable tag : int; mutable valid : bool; mutable stamp : int }

type t = {
  sets : way array array; (* [n_sets][assoc]; empty for a perfect cache *)
  n_sets : int;
  line_bits : int;
  miss_penalty : int;
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let log2_exact n =
  let rec go k v = if v = 1 then k else go (k + 1) (v lsr 1) in
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "Cache: sizes must be powers of two"
  else go 0 n

let create ~size_bytes ~line_bytes ~assoc ~miss_penalty =
  if size_bytes mod (line_bytes * assoc) <> 0 then
    invalid_arg "Cache.create: size not a multiple of line_bytes * assoc";
  let n_sets = size_bytes / (line_bytes * assoc) in
  let sets =
    Array.init n_sets (fun _ ->
        Array.init assoc (fun _ -> { tag = 0; valid = false; stamp = 0 }))
  in
  {
    sets;
    n_sets;
    line_bits = log2_exact line_bytes;
    miss_penalty;
    size_bytes;
    line_bytes;
    assoc;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let perfect () =
  {
    sets = [||];
    n_sets = 0;
    line_bits = 0;
    miss_penalty = 0;
    size_bytes = 0;
    line_bytes = 0;
    assoc = 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let is_perfect c = Array.length c.sets = 0

let locate c addr =
  let line = addr lsr c.line_bits in
  let set = line mod c.n_sets in
  let tag = line / c.n_sets in
  (c.sets.(set), tag)

(* Allocation-free access: top-level index loops instead of [Array.iter]
   closures or local recursion (a fresh closure per call under the vanilla
   compiler), and no [locate] tuple. *)
let rec find_way ways tag i n =
  if i >= n then -1
  else
    let w = Array.unsafe_get ways i in
    if w.valid && w.tag = tag then i else find_way ways tag (i + 1) n

(* replace an invalid way if any, else true-LRU by stamp; starting the scan
   at 1 with best = 0 is the identity first iteration of the original
   [Array.iter] pass *)
let rec pick_victim ways i best n =
  if i >= n then best
  else
    let w = Array.unsafe_get ways i and b = Array.unsafe_get ways best in
    let best =
      if not w.valid then (if b.valid then i else best)
      else if b.valid && w.stamp < b.stamp then i
      else best
    in
    pick_victim ways (i + 1) best n

let access c addr =
  if is_perfect c then (
    c.hits <- c.hits + 1;
    0)
  else begin
    c.clock <- c.clock + 1;
    let line = addr lsr c.line_bits in
    let set = line mod c.n_sets in
    let tag = line / c.n_sets in
    let ways = c.sets.(set) in
    let n = Array.length ways in
    let h = find_way ways tag 0 n in
    if h >= 0 then begin
      ways.(h).stamp <- c.clock;
      c.hits <- c.hits + 1;
      0
    end
    else begin
      c.misses <- c.misses + 1;
      let victim = ways.(pick_victim ways 1 0 n) in
      victim.tag <- tag;
      victim.valid <- true;
      victim.stamp <- c.clock;
      c.miss_penalty
    end
  end

let probe c addr =
  if is_perfect c then true
  else
    let ways, tag = locate c addr in
    Array.exists (fun w -> w.valid && w.tag = tag) ways

let invalidate_all c =
  Array.iter (fun ways -> Array.iter (fun w -> w.valid <- false) ways) c.sets

let hits c = c.hits
let misses c = c.misses

let reset_stats c =
  c.hits <- 0;
  c.misses <- 0

let describe c =
  if is_perfect c then "perfect"
  else
    Printf.sprintf "%dKB %d-way, %dB lines, %d-cycle miss"
      (c.size_bytes / 1024) c.assoc c.line_bytes c.miss_penalty
