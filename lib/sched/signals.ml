(** The §3.7 install/split signal equations, implemented independently of
    the behavioural scheduler for cross-validation.

    The paper computes, for every candidate instruction [i], boolean
    dependency signals against the {e installed} instructions of the
    adjacent long instructions (Td, Rd, Od, Ad, Cd) and against the
    {e candidate} of element [i-1] alone (CTd, CRd, COd), then combines them
    with a carry-lookahead-style chain:

    {v
    install(i) = (i = 0)
               | Td(i) | Rd(i)
               | (CTd(i) | CRd(i)) & stay(i-1)
    split(i)   = (i >= 1) & ~install(i)
               & ( Od(i) | Ad(i) | Cd(i) | COd(i) & stay(i-1) )
    stay(i)    = install(i) | split(i)        with stay(0) = true
    v}

    Erratum note: the paper chains through
    [Td(i-1)+Rd(i-1)+CTd(i-1)+CRd(i-1)] — i.e. through install(i-1) only. A
    candidate that {e splits} also leaves its (transformed) companion in
    place, so the conflict with element [i-1]'s candidate persists exactly
    when that candidate installs {e or} splits; we therefore chain through
    [stay(i-1)]. Property tests check this formulation against the
    behavioural scheduler. *)

open Schedtypes

type signals = {
  td : bool;  (** true dependency on installed ops in li i-1 *)
  rd : bool;  (** resource dependency ignoring the i-1 candidate's slot *)
  od : bool;  (** output dependency on installed ops in li i-1 *)
  ad : bool;  (** anti dependency on ops in li i *)
  cd : bool;  (** control dependency: a branch precedes the candidate in li i *)
  ctd : bool;  (** true dependency caused only by the candidate in i-1 *)
  crd : bool;  (** resource conflict only with the candidate in i-1 *)
  cod : bool;  (** output dependency caused only by the candidate in i-1 *)
}

type verdict = V_install | V_split | V_move

(** Raw dependency signals for the candidate at element [i], from the state
    at the start of the cycle. [None] when the element has no candidate or
    is the list head (whose candidate installs unconditionally). *)
let compute (t : Sched_unit.t) i :
    (signals * cand * Dts_isa.Storage.t list * Dts_isa.Storage.t list
    * Dts_isa.Storage.t list)
    option =
  let cur = Sched_unit.element t i in
  match cur.e_cand with
  | None -> None
  | Some _ when i = 0 -> None
  | Some c ->
    let prev = Sched_unit.element t (i - 1) in
    let prev_cand_slot =
      match prev.e_cand with Some pc -> Some pc.c_slot | None -> None
    in
    let width = Array.length prev.e_li.slots in
    let writes_at li k =
      match li.slots.(k) with Some (op, _) -> slot_arch_writes op | None -> []
    in
    let reads_at li k =
      match li.slots.(k) with Some (op, _) -> slot_arch_reads op | None -> []
    in
    let installed_writes = ref [] and cand_writes = ref [] in
    for k = 0 to width - 1 do
      let ws = writes_at prev.e_li k in
      if Some k = prev_cand_slot then cand_writes := ws @ !cand_writes
      else installed_writes := ws @ !installed_writes
    done;
    let reads = c.c_op.reads in
    let eff_writes = slot_arch_writes (Op c.c_op) in
    let cur_reads = ref [] in
    Array.iteri
      (fun k _ ->
        if k <> c.c_slot then cur_reads := reads_at cur.e_li k @ !cur_reads)
      cur.e_li.slots;
    let suitable k =
      match (Sched_unit.cfg t).slot_classes with
      | None -> true
      | Some classes -> (
        match classes.(k) with None -> true | Some cls -> cls = c.c_op.fu)
    in
    let free = ref 0 and cand_slot_suitable = ref false in
    for k = 0 to width - 1 do
      if suitable k then
        if prev.e_li.slots.(k) = None then incr free
        else if Some k = prev_cand_slot then cand_slot_suitable := true
    done;
    let s =
      {
        td = Dts_isa.Storage.any_overlap reads !installed_writes;
        ctd = Dts_isa.Storage.any_overlap reads !cand_writes;
        od = Dts_isa.Storage.any_overlap eff_writes !installed_writes;
        cod = Dts_isa.Storage.any_overlap eff_writes !cand_writes;
        ad = Dts_isa.Storage.any_overlap eff_writes !cur_reads;
        cd = c.c_tag >= 1;
        rd = !free = 0 && not !cand_slot_suitable;
        crd = !free = 0 && !cand_slot_suitable;
      }
    in
    Some (s, c, !installed_writes, !cand_writes, !cur_reads)

(** Evaluate the full lookahead chain for all candidates of [t] at the
    start of a cycle. Returns [(element index, verdict)] for each element
    holding a candidate, mirroring what {!Sched_unit.tick} will decide. *)
let verdicts (t : Sched_unit.t) : (int * verdict) list =
  let n = Sched_unit.length t in
  let stay = Array.make (max n 1) true in
  let out = ref [] in
  for i = 0 to n - 1 do
    let el = Sched_unit.element t i in
    match el.e_cand with
    | None -> stay.(i) <- true
    | Some _ ->
      if i = 0 then begin
        stay.(i) <- true;
        out := (i, V_install) :: !out
      end
      else begin
        match compute t i with
        | None -> ()
        | Some (s, c, installed_writes, cand_writes, cur_reads) ->
          let chain = stay.(i - 1) in
          let install_sig = s.td || s.rd || ((s.ctd || s.crd) && chain) in
          let split_cause = s.od || s.ad || s.cd || (s.cod && chain) in
          let verdict =
            if install_sig then V_install
            else if not split_cause then V_move
            else begin
              (* which positions a split would have to rename, mirroring the
                 behavioural scheduler's rename set *)
              let eff_writes = slot_arch_writes (Op c.c_op) in
              let overlap_any p l =
                List.exists (Dts_isa.Storage.overlaps p) l
              in
              let rename_arch =
                List.filter
                  (fun p ->
                    match p with
                    | Dts_isa.Storage.Ren _ -> false
                    | _ ->
                      s.cd || overlap_any p cur_reads
                      || overlap_any p installed_writes
                      || (chain && overlap_any p cand_writes))
                  eff_writes
              in
              let rechain_needed =
                s.cd && (Sched_unit.cfg t).resplit_on_control
                && List.exists
                     (fun (p, _) -> not (List.mem p rename_arch))
                     c.c_op.redirect
              in
              if
                (not (Sched_unit.cfg t).renaming)
                || List.mem Dts_isa.Storage.Win rename_arch
              then V_install
              else if rename_arch = [] && not rechain_needed then V_move
              else V_split
            end
          in
          stay.(i) <- verdict <> V_move;
          out := (i, verdict) :: !out
      end
  done;
  List.rev !out
